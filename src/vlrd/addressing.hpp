#pragma once
// Device-memory physical-address encoding for the VLRD (paper Fig. 9).
//
//   bit 51..J+1 : VLRD PA space selector (constant base)
//   bit  J..N+1 : VLRD id (multiple routing devices)
//   bit  N..18  : SQI
//   bit  17..12 : page index (up to 32 x 4 KiB pages per SQI)
//   bit  11..6  : 64 B-aligned endpoint offset within the page
//   bit   5..0  : byte offset (always 0 for endpoint addresses)
//
// With 1 VLRD and 64 SQIs, N = 23 and the device space occupies
// 64 SQIs x 32 pages x 4 KiB = 8 MiB of PA space (cf. the paper's example:
// 16 SQIs with N=22, J=26 uses 67 MiB of address space, not memory).

#include <cassert>
#include <cstdint>

#include "common/types.hpp"

namespace vl::vlrd {

inline constexpr int kSqiShift = 18;
inline constexpr int kSqiBits = 6;    // 64 SQIs (Table III linkTab size)
inline constexpr int kPageShift = 12;
inline constexpr int kPageBits = 6;   // up to 32 pages fits; 6 bits reserved
inline constexpr int kVlrdIdShift = kSqiShift + kSqiBits;  // J..N+1
inline constexpr int kVlrdIdBits = 4;

/// Base of the VLRD device PA window (bit 40 set — far above any
/// cacheable allocation the runtime hands out).
inline constexpr Addr kDeviceBase = Addr{1} << 40;

struct DeviceAddr {
  std::uint32_t vlrd_id = 0;
  Sqi sqi = 0;
  std::uint32_t page = 0;
  std::uint32_t slot64 = 0;  ///< 64 B offset index within the page.
};

inline constexpr bool is_device_addr(Addr a) { return (a & kDeviceBase) != 0; }

inline constexpr Addr encode(const DeviceAddr& d) {
  return kDeviceBase |
         (Addr{d.vlrd_id} << kVlrdIdShift) |
         (Addr{d.sqi} << kSqiShift) |
         (Addr{d.page} << kPageShift) |
         (Addr{d.slot64} << kLineShift);
}

inline DeviceAddr decode(Addr a) {
  assert(is_device_addr(a));
  DeviceAddr d;
  d.vlrd_id = static_cast<std::uint32_t>((a >> kVlrdIdShift) &
                                         ((1u << kVlrdIdBits) - 1));
  d.sqi = static_cast<Sqi>((a >> kSqiShift) & ((1u << kSqiBits) - 1));
  d.page = static_cast<std::uint32_t>((a >> kPageShift) &
                                      ((1u << kPageBits) - 1));
  d.slot64 = static_cast<std::uint32_t>((a >> kLineShift) & 0x3f);
  return d;
}

}  // namespace vl::vlrd
