#pragma once
// Multiple routing devices on one coherence network (paper § III-C2):
//
//   "bits J : N+1 could distinguish different VLRDs if more than one VLRD
//    are implemented to serve different VQs independently."
//
// A Cluster owns `num_devices` independent Vlrd instances and routes each
// device-memory access to the device selected by the address's VLRD-id bit
// field (Fig. 9). Every SQI lives on exactly one device, so separate VQs
// never contend for the same prodBuf/consBuf/linkTab or address-mapping
// pipeline — the scaling story the ablation bench (`ablation_multi_vlrd`)
// quantifies for many-channel workloads like halo's 48 channels.

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "mem/hierarchy.hpp"
#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "vlrd/addr_table.hpp"
#include "vlrd/addressing.hpp"
#include "vlrd/vlrd.hpp"

namespace vl::vlrd {

class Cluster {
 public:
  Cluster(sim::EventQueue& eq, mem::Hierarchy& hier,
          const sim::VlrdConfig& cfg);

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(devices_.size());
  }

  Vlrd& device(std::uint32_t id) { return *devices_.at(id); }
  const Vlrd& device(std::uint32_t id) const { return *devices_.at(id); }

  /// The device addressed by a mapped endpoint VA (Fig. 9 bits J:N+1).
  /// Bit-field scheme only; under kAddrTable use resolve().
  Vlrd& route(Addr dev_va) { return device(decode(dev_va).vlrd_id); }

  /// Resolve an endpoint VA to (device, SQI) under the configured
  /// addressing scheme. std::nullopt when a table lookup misses (the
  /// access faults); the bit-field scheme cannot miss.
  std::optional<std::pair<Vlrd*, Sqi>> resolve(Addr dev_va);

  /// The routing CAM (kAddrTable scheme; unused rows otherwise).
  AddrTable& addr_table() { return table_; }
  sim::Addressing addressing() const { return cfg_.addressing; }
  const sim::VlrdConfig& cfg() const { return cfg_; }

  /// Sum of per-device counters (what system-level experiments report).
  VlrdStats total_stats() const;

  // Epoch-boundary knob forwarding (QoS supervisor / fault plane): apply
  // to every device so the cluster keeps one logical policy. The cluster's
  // own cfg_ copy is updated too, so cfg() reflects the live policy.
  void set_class_quota(QosClass cls, std::uint32_t quota) {
    cfg_.class_quota[static_cast<std::size_t>(cls)] = quota;
    for (auto& d : devices_) d->set_class_quota(cls, quota);
  }
  void set_per_sqi_quota(std::uint32_t quota) {
    cfg_.per_sqi_quota = quota;
    for (auto& d : devices_) d->set_per_sqi_quota(quota);
  }
  void set_injector_stalled(bool stalled) {
    for (auto& d : devices_) d->set_injector_stalled(stalled);
  }

 private:
  sim::VlrdConfig cfg_;
  AddrTable table_;
  std::vector<std::unique_ptr<Vlrd>> devices_;
};

}  // namespace vl::vlrd
