#include "vlrd/cluster.hpp"

#include <cassert>

namespace vl::vlrd {

Cluster::Cluster(sim::EventQueue& eq, mem::Hierarchy& hier,
                 const sim::VlrdConfig& cfg)
    : cfg_(cfg), table_(cfg.addr_table_capacity) {
  assert(cfg.num_devices >= 1 &&
         cfg.num_devices <= (1u << kVlrdIdBits) &&
         "device count must fit the Fig. 9 VLRD-id bit field");
  devices_.reserve(cfg.num_devices);
  for (std::uint32_t i = 0; i < cfg.num_devices; ++i)
    devices_.push_back(std::make_unique<Vlrd>(eq, hier, cfg));
}

std::optional<std::pair<Vlrd*, Sqi>> Cluster::resolve(Addr dev_va) {
  if (cfg_.addressing == sim::Addressing::kAddrTable) {
    const auto hit = table_.lookup(dev_va);
    if (!hit) return std::nullopt;  // unmapped device address: fault
    return std::make_pair(&device(hit->vlrd_id), hit->sqi);
  }
  const DeviceAddr d = decode(dev_va);
  return std::make_pair(&device(d.vlrd_id), d.sqi);
}

VlrdStats Cluster::total_stats() const {
  VlrdStats s;
  for (const auto& d : devices_) {
    const VlrdStats& t = d->stats();
    s.pushes += t.pushes;
    s.push_nacks += t.push_nacks;
    s.push_quota_nacks += t.push_quota_nacks;
    s.fetches += t.fetches;
    s.fetch_nacks += t.fetch_nacks;
    s.matches += t.matches;
    s.inject_ok += t.inject_ok;
    s.inject_retry += t.inject_retry;
    s.pipeline_cycles += t.pipeline_cycles;
  }
  return s;
}

}  // namespace vl::vlrd
