#pragma once
// Alternative endpoint addressing via a routing address table (§ III-C2):
//
//   "An alternative addressing scheme that we explored adds an address
//    table to the VLRD (populated on mmap) to map to arbitrary addresses,
//    however, at the cost of an extra cycle to the pipeline § III-A and
//    content addressable memory for the routing table."
//
// Under the default bit-field scheme (addressing.hpp), the SQI is carved
// out of the device PA directly, which burns physical address space:
// 1 VLRD x 64 SQIs x 32 pages x 4 KiB = 8 MiB of PA window per device.
// The table scheme instead hands out *compact* device pages (sequential
// 4 KiB mappings) and resolves page -> (device, SQI) through a bounded CAM,
// paying one extra cycle per vl_push/vl_fetch and one CAM row per mapped
// page. `ablation_addressing` quantifies both sides of the trade.

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "common/types.hpp"
#include "vlrd/addressing.hpp"

namespace vl::vlrd {

/// One CAM row: a mapped 4 KiB device page and the queue it resolves to.
struct AddrTableEntry {
  std::uint32_t vlrd_id = 0;
  Sqi sqi = 0;
};

/// Bounded content-addressable routing table. Associative on the page
/// frame of the incoming device address; capacity models the CAM size.
class AddrTable {
 public:
  explicit AddrTable(std::uint32_t capacity = 256) : capacity_(capacity) {}

  /// Install a page mapping (called on vl_mmap). False when the CAM is
  /// full — the supervisor must fail the mmap.
  bool insert(Addr page_va, std::uint32_t vlrd_id, Sqi sqi);

  /// Remove a mapping (called on vl_munmap). Idempotent.
  void erase(Addr page_va);

  /// Resolve an endpoint VA to its queue. Matches on the page frame, so
  /// any 64 B slot within a mapped page resolves. std::nullopt on miss
  /// (unmapped device address -> the access faults).
  std::optional<AddrTableEntry> lookup(Addr va) const;

  std::uint32_t size() const { return static_cast<std::uint32_t>(map_.size()); }
  std::uint32_t capacity() const { return capacity_; }

  /// PA-window bytes consumed by `pages` mapped pages under this scheme
  /// (compact: one 4 KiB frame each) — compare with bitfield_window_bytes.
  static Addr table_window_bytes(std::uint32_t pages) {
    return Addr{pages} * 4096;
  }

  /// PA-window bytes reserved by the Fig. 9 bit-field scheme for a device
  /// (fixed, whether or not pages are mapped): SQIs x pages x 4 KiB.
  static Addr bitfield_window_bytes() {
    return (Addr{1} << kSqiBits) * (Addr{1} << kPageBits) * 4096;
  }

 private:
  static Addr frame(Addr va) { return va >> 12; }

  std::uint32_t capacity_;
  std::unordered_map<Addr, AddrTableEntry> map_;  // page frame -> entry
};

}  // namespace vl::vlrd
