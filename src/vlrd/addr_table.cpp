#include "vlrd/addr_table.hpp"

namespace vl::vlrd {

bool AddrTable::insert(Addr page_va, std::uint32_t vlrd_id, Sqi sqi) {
  if (auto it = map_.find(frame(page_va)); it != map_.end()) {
    it->second = AddrTableEntry{vlrd_id, sqi};  // re-map in place
    return true;
  }
  if (map_.size() >= capacity_) return false;  // CAM full
  map_.emplace(frame(page_va), AddrTableEntry{vlrd_id, sqi});
  return true;
}

void AddrTable::erase(Addr page_va) { map_.erase(frame(page_va)); }

std::optional<AddrTableEntry> AddrTable::lookup(Addr va) const {
  if (auto it = map_.find(frame(va)); it != map_.end()) return it->second;
  return std::nullopt;
}

}  // namespace vl::vlrd
