#include "vlrd/vlrd.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "obs/tracer.hpp"
#include "vlrd/addressing.hpp"

namespace vl::vlrd {

namespace {
std::string idx_str(std::uint16_t i) {
  return i == kNil ? "NULL" : std::to_string(i);
}

/// Service class of an arriving line: the reserved byte ([7:0]) of its
/// Fig. 10 control region.
QosClass line_class(const mem::Line& data) {
  return qos_class_from_byte(data[kLineCtrlOffset]);
}
}  // namespace

Vlrd::Vlrd(sim::EventQueue& eq, mem::Hierarchy& hier,
           const sim::VlrdConfig& cfg)
    : eq_(eq), hier_(hier), cfg_(cfg) {
  if (cfg_.ideal) {
    ideal_data_.resize(std::size_t{1} << kSqiBits);
    ideal_waiters_.resize(std::size_t{1} << kSqiBits);
  } else {
    link_tab_.resize(cfg_.link_entries);
    prod_buf_.resize(cfg_.prod_entries);
    cons_buf_.resize(cfg_.cons_entries);
  }
}

// --------------------------------------------------------------------------
// Device-port entry points
// --------------------------------------------------------------------------

bool Vlrd::push(Sqi sqi, const mem::Line& data) {
  ++stats_.pushes;
  last_push_nack_ = PushNack::kNone;
  if (cfg_.ideal) return ideal_push(sqi, data);
  assert(sqi < link_tab_.size());

  if (cfg_.coupled_io && pipeline_pending()) {
    // One-packet-per-cycle device (the un-decoupled § III-A design): no
    // input buffering ahead of a busy mapping pipeline, so bursts bounce.
    ++stats_.push_nacks;
    last_push_nack_ = PushNack::kFull;
    return false;
  }
  if (cfg_.per_sqi_quota != 0 &&
      link_tab_[sqi].prod_count >= cfg_.per_sqi_quota) {
    // CAF-style partitioning: this SQI used up its credit; NACK it without
    // letting it squeeze other queues out of the shared buffer.
    ++stats_.push_nacks;
    ++stats_.push_quota_nacks;
    last_push_nack_ = PushNack::kQuota;
    return false;
  }
  const QosClass cls = line_class(data);
  const std::uint32_t cls_quota =
      cfg_.class_quota[static_cast<std::size_t>(cls)];
  if (cls_quota != 0 &&
      link_tab_[sqi].class_count[static_cast<std::size_t>(cls)] >= cls_quota) {
    // QoS partitioning: this service class used up its share of the SQI's
    // buffer space. Back-pressure lands on the over-quota class (bulk
    // floods) while lighter classes keep enqueueing.
    ++stats_.push_nacks;
    ++stats_.push_quota_nacks;
    last_push_nack_ = PushNack::kQuota;
    return false;
  }
  const std::uint16_t idx = alloc_prod_slot();
  if (idx == kNil) {  // back-pressure: buffer full
    ++stats_.push_nacks;
    last_push_nack_ = PushNack::kFull;
    return false;
  }
  ++link_tab_[sqi].prod_count;
  ++link_tab_[sqi].class_count[static_cast<std::size_t>(cls)];
  ProdBufEntry& e = prod_buf_[idx];
  e.valid = true;
  e.sqi = sqi;
  e.cls = cls;
  e.data = data;
  e.next_in = kNil;
  e.next_l = kNil;
  e.out_valid = false;
  append_input(/*consumer=*/false, idx);
  kick_pipeline();
  return true;
}

bool Vlrd::fetch(Sqi sqi, Addr cons_tgt, CoreId cons_core) {
  ++stats_.fetches;
  if (cfg_.ideal) return ideal_fetch(sqi, cons_tgt, cons_core);
  assert(sqi < link_tab_.size());

  // Re-issued requests (the § III-B recovery path after a rejected
  // injection or context switch) are idempotent: if this SQI already has a
  // registered request for the same consumer target, never enqueue a
  // duplicate that could double-deliver into one line. But the re-issue
  // must still be able to claim data: when a rejected injection returned a
  // line to this SQI's data list *after* the request was parked, neither
  // side generates another pipeline event and the pair would sit forever.
  // Recycle the parked request through the pipeline in that case — the
  // § III-B re-issued packet re-entering the mapping stages.
  {
    LinkTabEntry& lt = link_tab_[sqi];
    std::uint16_t prev = kNil;
    for (std::uint16_t i = lt.cons_head; i != kNil;
         prev = i, i = cons_buf_[i].next_l) {
      if (cons_buf_[i].cons_tgt != cons_tgt) continue;
      if (lt.prod_head == kNil) return true;  // nothing to claim: dedupe
      if (cfg_.coupled_io && pipeline_pending()) {
        // Coupled ablation: the re-issued packet is a bus arrival like any
        // other and the un-decoupled pipeline cannot buffer it.
        ++stats_.fetch_nacks;
        if (obs::TraceBuffer* const tb = eq_.trace())
          tb->instant(eq_.now(), obs::kDeviceTid, "vlrd", "fetch_nack", "sqi",
                      sqi);
        return false;
      }
      if (prev == kNil)
        lt.cons_head = cons_buf_[i].next_l;
      else
        cons_buf_[prev].next_l = cons_buf_[i].next_l;
      if (lt.cons_tail == i) lt.cons_tail = prev;
      cons_buf_[i].next_l = kNil;
      cons_buf_[i].next_in = kNil;  // may be stale from its first pass
      append_input(/*consumer=*/true, i);
      kick_pipeline();
      return true;
    }
  }
  // Also idempotent against a registration that was already *matched*: if
  // a mapped line targeting this consumer address sits in the OUT list or
  // in flight at the injector, the re-issue raced the injection. A fresh
  // registration would be stale the moment that injection lands, and the
  // next message mapped to it would stash into a line the consumer has
  // already moved past. The in-flight injection satisfies this re-issue.
  for (const auto& pe : prod_buf_) {
    if (pe.out_valid && pe.cons_tgt == cons_tgt) return true;
  }

  if (cfg_.coupled_io && pipeline_pending()) {
    ++stats_.fetch_nacks;
    if (obs::TraceBuffer* const tb = eq_.trace())
      tb->instant(eq_.now(), obs::kDeviceTid, "vlrd", "fetch_nack", "sqi",
                  sqi);
    return false;
  }
  const std::uint16_t idx = alloc_cons_slot();
  if (idx == kNil) {
    ++stats_.fetch_nacks;
    if (obs::TraceBuffer* const tb = eq_.trace())
      tb->instant(eq_.now(), obs::kDeviceTid, "vlrd", "fetch_nack", "sqi",
                  sqi);
    return false;
  }
  ConsBufEntry& e = cons_buf_[idx];
  e.valid = true;
  e.sqi = sqi;
  e.cons_tgt = cons_tgt;
  e.core = cons_core;
  e.next_l = kNil;
  e.next_in = kNil;
  append_input(/*consumer=*/true, idx);
  kick_pipeline();
  return true;
}

// --------------------------------------------------------------------------
// Free-slot search (PIFR / CIFR rotating registers)
// --------------------------------------------------------------------------

std::uint16_t Vlrd::alloc_prod_slot() {
  const auto n = static_cast<std::uint16_t>(prod_buf_.size());
  for (std::uint16_t k = 0; k < n; ++k) {
    const std::uint16_t i = static_cast<std::uint16_t>((pifr_ + k) % n);
    if (!prod_buf_[i].valid && !prod_buf_[i].out_valid) {
      pifr_ = static_cast<std::uint16_t>((i + 1) % n);
      return i;
    }
  }
  return kNil;
}

std::uint16_t Vlrd::alloc_cons_slot() {
  const auto n = static_cast<std::uint16_t>(cons_buf_.size());
  for (std::uint16_t k = 0; k < n; ++k) {
    const std::uint16_t i = static_cast<std::uint16_t>((cifr_ + k) % n);
    if (!cons_buf_[i].valid) {
      cifr_ = static_cast<std::uint16_t>((i + 1) % n);
      return i;
    }
  }
  return kNil;
}

// --------------------------------------------------------------------------
// Linked-list helpers
// --------------------------------------------------------------------------

void Vlrd::append_input(bool consumer, std::uint16_t idx) {
  auto& head = consumer ? cihr_ : pihr_;
  auto& tail = consumer ? citr_ : pitr_;
  if (head == kNil) {
    head = tail = idx;
  } else {
    if (consumer)
      cons_buf_[tail].next_in = idx;
    else
      prod_buf_[tail].next_in = idx;
    tail = idx;
  }
}

std::uint16_t Vlrd::pop_input(bool consumer) {
  auto& head = consumer ? cihr_ : pihr_;
  auto& tail = consumer ? citr_ : pitr_;
  if (head == kNil) return kNil;
  const std::uint16_t idx = head;
  head = consumer ? cons_buf_[idx].next_in : prod_buf_[idx].next_in;
  if (head == kNil) tail = kNil;
  return idx;
}

void Vlrd::append_wait(LinkTabEntry& lt, bool consumer, std::uint16_t idx) {
  auto& head = consumer ? lt.cons_head : lt.prod_head;
  auto& tail = consumer ? lt.cons_tail : lt.prod_tail;
  if (head == kNil) {
    head = tail = idx;
  } else {
    if (consumer)
      cons_buf_[tail].next_l = idx;
    else
      prod_buf_[tail].next_l = idx;
    tail = idx;
  }
  if (consumer)
    cons_buf_[idx].next_l = kNil;
  else
    prod_buf_[idx].next_l = kNil;
}

std::uint16_t Vlrd::pop_wait(LinkTabEntry& lt, bool consumer) {
  if (cfg_.buffer_mgmt == sim::BufferMgmt::kBitvector)
    return pop_wait_lowest(lt, consumer);
  auto& head = consumer ? lt.cons_head : lt.prod_head;
  auto& tail = consumer ? lt.cons_tail : lt.prod_tail;
  if (head == kNil) return kNil;
  const std::uint16_t idx = head;
  head = consumer ? cons_buf_[idx].next_l : prod_buf_[idx].next_l;
  if (head == kNil) tail = kNil;
  return idx;
}

std::uint16_t Vlrd::pop_wait_lowest(LinkTabEntry& lt, bool consumer) {
  // Bitvector semantics: a priority encoder yields the lowest-index waiting
  // entry, not the oldest. The wait set is still threaded through the list
  // fields (they are just the functional representation of the set); the
  // timing cost of the scan is charged in pipeline_step_cost().
  auto& head = consumer ? lt.cons_head : lt.prod_head;
  auto& tail = consumer ? lt.cons_tail : lt.prod_tail;
  if (head == kNil) return kNil;
  std::uint16_t lowest = head;
  for (std::uint16_t i = head; i != kNil;
       i = consumer ? cons_buf_[i].next_l : prod_buf_[i].next_l)
    lowest = std::min(lowest, i);
  // Unlink `lowest` from the list.
  if (lowest == head) {
    head = consumer ? cons_buf_[lowest].next_l : prod_buf_[lowest].next_l;
    if (head == kNil) tail = kNil;
    return lowest;
  }
  std::uint16_t prev = head;
  while (true) {
    const std::uint16_t next =
        consumer ? cons_buf_[prev].next_l : prod_buf_[prev].next_l;
    if (next == lowest) break;
    prev = next;
  }
  const std::uint16_t after =
      consumer ? cons_buf_[lowest].next_l : prod_buf_[lowest].next_l;
  if (consumer)
    cons_buf_[prev].next_l = after;
  else
    prod_buf_[prev].next_l = after;
  if (after == kNil) tail = prev;
  return lowest;
}

void Vlrd::push_front_data(Sqi sqi, std::uint16_t idx) {
  LinkTabEntry& lt = link_tab_[sqi];
  prod_buf_[idx].next_l = lt.prod_head;
  lt.prod_head = idx;
  if (lt.prod_tail == kNil) lt.prod_tail = idx;
}

void Vlrd::append_out(std::uint16_t idx) {
  prod_buf_[idx].next_out = kNil;
  if (pohr_ == kNil) {
    pohr_ = potr_ = idx;
  } else {
    prod_buf_[potr_].next_out = idx;
    potr_ = idx;
  }
}

std::uint16_t Vlrd::pop_out() {
  if (pohr_ == kNil) return kNil;
  const std::uint16_t idx = pohr_;
  pohr_ = prod_buf_[idx].next_out;
  if (pohr_ == kNil) potr_ = kNil;
  return idx;
}

// --------------------------------------------------------------------------
// Address-mapping pipeline (Table I)
// --------------------------------------------------------------------------

bool Vlrd::pipeline_pending() const {
  return cihr_ != kNil || pihr_ != kNil || s1_out_.valid || s2_out_.valid;
}

Tick Vlrd::pipeline_step_cost() const {
  if (cfg_.buffer_mgmt == sim::BufferMgmt::kLinkedList) return 1;
  // Bitvector scan: a 64-wide priority encoder sweeps the larger buffer
  // once per pipeline step, so the step cost grows with the buffer size —
  // the scalability penalty that led the paper to choose linked lists.
  const std::size_t entries = std::max(prod_buf_.size(), cons_buf_.size());
  return 1 + static_cast<Tick>((entries + 63) / 64);
}

void Vlrd::kick_pipeline() {
  if (pipeline_scheduled_) return;
  if (!pipeline_pending()) {
    // Coupled-I/O devices NACK arrivals while the pipeline has work in
    // flight; it just went idle, so parked producers of any SQI may retry.
    if (cfg_.coupled_io && on_push_retry_) on_push_retry_(std::nullopt);
    return;
  }
  pipeline_scheduled_ = true;
  eq_.schedule_in(pipeline_step_cost(), [this] {
    pipeline_scheduled_ = false;
    pipeline_cycle();
    kick_pipeline();
  });
}

void Vlrd::pipeline_cycle() {
  ++cycle_;
  ++stats_.pipeline_cycles;
  PipeTraceRow row;
  row.cycle = cycle_;

  // Oldest instruction first: Stage 3 commits before Stage 1 reads, which
  // realizes the same-cycle RAW forwarding Table I annotates.
  Latch retiring = s2_out_;
  s2_out_ = Latch{};
  if (retiring.valid) stage3(retiring, trace_ ? &row.stage3 : nullptr);
  row.s3_valid = retiring.valid;
  row.s3_hit = retiring.hit;
  row.s3_consumer = retiring.is_consumer;
  row.s3_idx = retiring.idx;

  Latch deciding = s1_out_;
  s1_out_ = Latch{};
  if (deciding.valid) stage2(deciding, trace_ ? &row.stage2 : nullptr);
  row.s2_valid = deciding.valid;
  row.s2_hit = deciding.hit;
  s2_out_ = deciding;

  if (auto fresh = stage1(trace_ ? &row.stage1 : nullptr)) {
    s1_out_ = *fresh;
    row.s1_valid = true;
    row.s1_consumer = fresh->is_consumer;
    row.s1_idx = fresh->idx;
    row.s1_sqi = fresh->sqi;
    row.s1_head = fresh->head;
    row.s1_tail = fresh->tail;
  }

  if (trace_) trace_(row);
}

std::optional<Vlrd::Latch> Vlrd::stage1(std::string* tr) {
  // Consumer requests drain ahead of producer data (Table I's ordering).
  const bool consumer = cihr_ != kNil;
  const std::uint16_t idx = pop_input(consumer);
  if (idx == kNil) return std::nullopt;

  Latch l;
  l.valid = true;
  l.is_consumer = consumer;
  l.idx = idx;
  l.sqi = consumer ? cons_buf_[idx].sqi : prod_buf_[idx].sqi;
  const LinkTabEntry& lt = link_tab_[l.sqi];
  if (consumer) {
    l.head = lt.prod_head;  // is producer data waiting?
    l.tail = lt.cons_tail;
  } else {
    l.head = lt.cons_head;  // is a consumer request waiting?
    l.tail = lt.prod_tail;
  }
  if (tr) {
    std::ostringstream os;
    os << (consumer ? "prodHead,consTail <- " : "consHead,prodTail <- ")
       << idx_str(l.head) << "," << idx_str(l.tail) << " (linkTab["
       << l.sqi << "] for " << (consumer ? "consBuf[" : "prodBuf[") << idx
       << "])";
    *tr = os.str();
  }
  return l;
}

void Vlrd::stage2(Latch& l, std::string* tr) {
  l.hit = l.head != kNil;
  if (tr) {
    std::ostringstream os;
    if (l.hit) {
      os << "hit: read " << (l.is_consumer ? "prodBuf[" : "consBuf[")
         << l.head << "] for mapping";
    } else {
      os << "miss: append to the linked list in "
         << (l.is_consumer ? "consBuf" : "prodBuf");
    }
    *tr = os.str();
  }
}

void Vlrd::stage3(Latch& l, std::string* tr) {
  LinkTabEntry& lt = link_tab_[l.sqi];
  std::ostringstream os;

  // Revalidate against the current table state: an older in-flight entry on
  // the same SQI may have consumed the head this latch saw in Stage 1.
  if (l.is_consumer) {
    const std::uint16_t data_idx = pop_wait(lt, /*consumer=*/false);
    if (data_idx != kNil) {
      l.hit = true;
      ++stats_.matches;
      ProdBufEntry& p = prod_buf_[data_idx];
      ConsBufEntry& c = cons_buf_[l.idx];
      p.out_valid = true;
      p.valid = false;  // leaves the IN partition
      p.cons_tgt = c.cons_tgt;
      p.cons_core = c.core;
      p.mapped = l.idx;
      c.valid = false;  // request satisfied
      append_out(data_idx);
      if (tr)
        os << "map prodBuf[" << data_idx << "] -> consTgt of consBuf["
           << l.idx << "]; linkTab[" << l.sqi
           << "].prodHead <- " << idx_str(lt.prod_head);
      kick_injector();
    } else {
      l.hit = false;
      append_wait(lt, /*consumer=*/true, l.idx);
      if (tr)
        os << "linkTab[" << l.sqi << "].cons{Head,Tail} <- "
           << idx_str(lt.cons_head) << "," << idx_str(lt.cons_tail);
    }
  } else {
    const std::uint16_t req_idx = pop_wait(lt, /*consumer=*/true);
    if (req_idx != kNil) {
      l.hit = true;
      ++stats_.matches;
      ProdBufEntry& p = prod_buf_[l.idx];
      ConsBufEntry& c = cons_buf_[req_idx];
      p.out_valid = true;
      p.valid = false;
      p.cons_tgt = c.cons_tgt;
      p.cons_core = c.core;
      p.mapped = req_idx;
      c.valid = false;
      append_out(l.idx);
      if (tr)
        os << "linkTab[" << l.sqi << "].consHead <- "
           << idx_str(lt.cons_head) << "; set prodBuf[" << l.idx
           << "].OUT POHR,POTR <- " << pohr_ << "," << potr_;
      kick_injector();
    } else {
      l.hit = false;
      append_wait(lt, /*consumer=*/false, l.idx);
      if (tr)
        os << "linkTab[" << l.sqi << "].prod{Head,Tail} <- "
           << idx_str(lt.prod_head) << "," << idx_str(lt.prod_tail);
    }
  }
  if (tr) *tr = os.str();
}

// --------------------------------------------------------------------------
// Injection engine: drains the OUT list, stashing into consumer L1s
// --------------------------------------------------------------------------

void Vlrd::kick_injector() {
  // Fault plane: a stalled engine starts no new injection; the one already
  // in flight (injector_busy_) completes and its injector_done() re-calls
  // us, landing here again until set_injector_stalled(false) re-kicks.
  if (injector_stalled_) return;
  if (injector_busy_ || pohr_ == kNil) return;
  injector_busy_ = true;
  const std::uint16_t idx = pop_out();
  eq_.schedule_in(cfg_.inject_lat, [this, idx] { injector_done(idx); });
}

bool Vlrd::line_drained(Addr tgt) const {
  // A consumer line is re-armed for injection only once its Fig. 10
  // control word (the line's top 2 bytes) reads zero — i.e. the previous
  // frame was drained. Stashing over an undrained frame would destroy it:
  // the consumer's re-issued vl_select can re-arm the pushable tag in the
  // window between an injection landing and the consumer polling it, and
  // a second mapped message would otherwise overwrite the first.
  return hier_.backing().read(tgt + kLineCtrlOffset, 2) == 0;
}

void Vlrd::injector_done(std::uint16_t idx) {
  ProdBufEntry& p = prod_buf_[idx];
  assert(p.out_valid);
  obs::TraceBuffer* const tb = eq_.trace();
  if (line_drained(p.cons_tgt) &&
      hier_.inject(p.cons_core, p.cons_tgt, p.data.data())) {
    ++stats_.inject_ok;
    if (tb)
      tb->instant(eq_.now(), obs::kDeviceTid, "vlrd", "inject", "sqi", p.sqi);
    p.out_valid = false;  // slot free again
    p.mapped = kNil;
    LinkTabEntry& freed = link_tab_[p.sqi];
    if (freed.prod_count > 0) --freed.prod_count;
    auto& cc = freed.class_count[static_cast<std::size_t>(p.cls)];
    if (cc > 0) --cc;
    // Buffer space / quota freed: parked back-pressured producers of this
    // SQI (and one buffer-space waiter) retry.
    if (on_push_retry_) on_push_retry_(p.sqi);
  } else {
    // Consumer was context-switched / line evicted: the data stays with the
    // VLRD at the head of its SQI list; the consumer's re-issued vl_fetch
    // will map it again (§ III-B).
    ++stats_.inject_retry;
    if (tb)
      tb->instant(eq_.now(), obs::kDeviceTid, "vlrd", "inject_retry", "sqi",
                  p.sqi);
    p.out_valid = false;
    p.valid = true;
    p.mapped = kNil;
    push_front_data(p.sqi, idx);
    // If the consumer already parked a registration for its next line (the
    // common shape of the stale-line reject), recycle that registration
    // through the mapping pipeline so it claims the returned data at the
    // normal stage cost, instead of stranding both sides until the
    // consumer's poll-timeout re-issue. (This is device-internal recovery,
    // not a new bus arrival, so it is not subject to coupled_io NACKing.)
    LinkTabEntry& lt = link_tab_[p.sqi];
    const std::uint16_t req_idx = pop_wait(lt, /*consumer=*/true);
    if (req_idx != kNil) {
      cons_buf_[req_idx].next_l = kNil;
      cons_buf_[req_idx].next_in = kNil;  // may be stale from its first pass
      append_input(/*consumer=*/true, req_idx);
      kick_pipeline();
    }
  }
  injector_busy_ = false;
  kick_injector();
}

// --------------------------------------------------------------------------
// VL(ideal): unbounded, zero-latency reference model
// --------------------------------------------------------------------------

bool Vlrd::ideal_push(Sqi sqi, const mem::Line& data) {
  ideal_data_[sqi].push_back(data);
  ideal_deliver(sqi);
  return true;
}

bool Vlrd::ideal_fetch(Sqi sqi, Addr tgt, CoreId core) {
  for (const auto& w : ideal_waiters_[sqi])
    if (w.tgt == tgt) return true;  // idempotent re-registration
  ideal_waiters_[sqi].push_back(IdealWaiter{tgt, core});
  ideal_deliver(sqi);
  return true;
}

void Vlrd::ideal_deliver(Sqi sqi) {
  auto& data = ideal_data_[sqi];
  auto& waiters = ideal_waiters_[sqi];
  while (!data.empty() && !waiters.empty()) {
    const IdealWaiter w = waiters.front();
    waiters.pop_front();
    ++stats_.matches;
    if (line_drained(w.tgt) && hier_.inject(w.core, w.tgt, data.front().data())) {
      ++stats_.inject_ok;
      data.pop_front();
    } else {
      ++stats_.inject_retry;
      // Data stays queued; the consumer must re-issue its fetch.
    }
  }
}

// --------------------------------------------------------------------------
// Introspection
// --------------------------------------------------------------------------

std::uint32_t Vlrd::prod_free_slots() const {
  if (cfg_.ideal) return UINT32_MAX;
  std::uint32_t n = 0;
  for (const auto& e : prod_buf_)
    if (!e.valid && !e.out_valid) ++n;
  return n;
}

std::uint32_t Vlrd::cons_free_slots() const {
  if (cfg_.ideal) return UINT32_MAX;
  std::uint32_t n = 0;
  for (const auto& e : cons_buf_)
    if (!e.valid) ++n;
  return n;
}

std::uint32_t Vlrd::queued_data(Sqi sqi) const {
  if (cfg_.ideal) return static_cast<std::uint32_t>(ideal_data_[sqi].size());
  std::uint32_t n = 0;
  for (std::uint16_t i = link_tab_[sqi].prod_head; i != kNil;
       i = prod_buf_[i].next_l)
    ++n;
  return n;
}

std::vector<std::vector<mem::Line>> Vlrd::snapshot_resident() const {
  if (cfg_.ideal) {
    std::vector<std::vector<mem::Line>> out(ideal_data_.size());
    for (std::size_t s = 0; s < ideal_data_.size(); ++s)
      out[s].assign(ideal_data_[s].begin(), ideal_data_[s].end());
    return out;
  }
  std::vector<std::vector<mem::Line>> out(link_tab_.size());
  // An entry sits on exactly one of the three lists at a time (push_front
  // returns OUT entries to the wait list), but walk with a seen-map anyway
  // so a snapshot never duplicates a line.
  std::vector<bool> seen(prod_buf_.size(), false);
  auto grab = [&](std::uint16_t i) {
    if (i == kNil || seen[i]) return;
    const ProdBufEntry& e = prod_buf_[i];
    if (!e.valid && !e.out_valid) return;
    seen[i] = true;
    out[e.sqi].push_back(e.data);
  };
  for (std::uint16_t i = pohr_; i != kNil; i = prod_buf_[i].next_out)
    grab(i);
  for (const auto& lt : link_tab_)
    for (std::uint16_t i = lt.prod_head; i != kNil; i = prod_buf_[i].next_l)
      grab(i);
  for (std::uint16_t i = pihr_; i != kNil; i = prod_buf_[i].next_in) grab(i);
  return out;
}

std::uint32_t Vlrd::queued_requests(Sqi sqi) const {
  if (cfg_.ideal)
    return static_cast<std::uint32_t>(ideal_waiters_[sqi].size());
  std::uint32_t n = 0;
  for (std::uint16_t i = link_tab_[sqi].cons_head; i != kNil;
       i = cons_buf_[i].next_l)
    ++n;
  return n;
}

}  // namespace vl::vlrd
