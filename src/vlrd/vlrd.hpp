#pragma once
// The Virtual-Link Routing Device (paper § III-A, Fig. 7).
//
// Structures, faithfully reproduced:
//   linkTab  — per-SQI metadata: head/tail of the producer-data and
//              consumer-request linked lists threaded through the buffers.
//   prodBuf  — shared producer buffer with three partitions:
//                IN   (valid, SQI, 64 B data, nextIn input-order list)
//                LINK (nextL per-SQI list of data waiting for consumers)
//                OUT  (mapped entries: consumer target + consBuf index)
//   consBuf  — shared consumer-request buffer (valid, SQI, consTgt, nextL
//              per-SQI wait list, nextIn input-order list).
//   Registers: PIFR/CIFR rotating free-slot pointers; PIHR/PITR and
//              CIHR/CITR input-order list head/tail; POHR/POTR output list.
//
// A 3-stage address-mapping pipeline (Table I) pairs producer pushes with
// consumer pulls: Stage 1 reads linkTab, Stage 2 makes the hit/miss mapping
// decision, Stage 3 commits writes. Stages execute oldest-first within a
// cycle, which yields the same-cycle RAW forwarding the paper's Table I
// annotates. An injection engine drains the OUT list, stashing lines into
// consumer L1s via mem::Hierarchy::inject(); rejected stashes (pushable bit
// unset) return the data to the head of the SQI's producer list so the
// consumer's re-issued vl_fetch can claim it (§ III-B).
//
// Back-pressure: a push (fetch) is NACKed when prodBuf (consBuf) has no
// free slot — this is the paper's low-overhead back-pressure mechanism.
//
// VL(ideal) mode (cfg.ideal): unbounded buffers and zero-latency transfers,
// used by Figs. 11/12 to bound how much the hardware limits cost.

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/hierarchy.hpp"
#include "sim/config.hpp"
#include "sim/event_queue.hpp"

namespace vl::vlrd {

struct VlrdStats {
  std::uint64_t pushes = 0;
  std::uint64_t push_nacks = 0;
  std::uint64_t push_quota_nacks = 0;  ///< Subset of push_nacks: per-SQI or
                                       ///< per-class quota, not a full buffer.
  std::uint64_t fetches = 0;
  std::uint64_t fetch_nacks = 0;
  std::uint64_t matches = 0;
  std::uint64_t inject_ok = 0;
  std::uint64_t inject_retry = 0;
  std::uint64_t pipeline_cycles = 0;
};

/// One row of pipeline activity, for the Table I trace test. Structured
/// fields mirror what each stage latched/decided; the strings render the
/// same information in Table I's notation.
struct PipeTraceRow {
  std::uint64_t cycle = 0;
  // Stage 1 (linkTab read)
  bool s1_valid = false;
  bool s1_consumer = false;
  std::uint16_t s1_idx = kNil;
  Sqi s1_sqi = 0;
  std::uint16_t s1_head = kNil;  ///< Opposing-list head (prodHead/consHead).
  std::uint16_t s1_tail = kNil;  ///< Own-list tail (consTail/prodTail).
  // Stage 2 (mapping decision)
  bool s2_valid = false;
  bool s2_hit = false;
  // Stage 3 (table/buffer writes)
  bool s3_valid = false;
  bool s3_hit = false;
  bool s3_consumer = false;
  std::uint16_t s3_idx = kNil;
  std::string stage1, stage2, stage3;
};

class Vlrd {
 public:
  Vlrd(sim::EventQueue& eq, mem::Hierarchy& hier, const sim::VlrdConfig& cfg);

  /// Why the most recent push() NACKed. kQuota means a per-SQI or
  /// per-class quota was exhausted — only this SQI draining frees it, so a
  /// back-pressured producer should park on the SQI's wait queue rather
  /// than the global buffer-space one.
  enum class PushNack { kNone, kQuota, kFull };

  // --- device-port entry points (called at packet-arrival tick) ---------

  /// Producer cache-line arrival. `src_core`/`src_line` identify the
  /// producer's user-space line so the copy-over can zero it on success.
  /// Returns false (NACK) when prodBuf is full — the vl_push failure case.
  /// The service class is read from the reserved byte of the line's Fig. 10
  /// control region (cfg.class_quota enforcement).
  bool push(Sqi sqi, const mem::Line& data);

  /// Reason for the last push() returning false. Only valid until the
  /// next push() to this device — callers must read it synchronously
  /// after their push, before suspending (another core's push lands in
  /// any suspension window and overwrites it).
  PushNack last_push_nack() const { return last_push_nack_; }

  /// Consumer request arrival: register demand for `sqi`, targeting the
  /// consumer line `cons_tgt` in `cons_core`'s private cache.
  /// Returns false (NACK) when consBuf is full.
  bool fetch(Sqi sqi, Addr cons_tgt, CoreId cons_core);

  // --- introspection ------------------------------------------------------
  const VlrdStats& stats() const { return stats_; }
  std::uint32_t prod_free_slots() const;
  std::uint32_t cons_free_slots() const;
  /// Entries waiting in a SQI's producer (data) linked list.
  std::uint32_t queued_data(Sqi sqi) const;
  /// Entries waiting in a SQI's consumer (request) linked list.
  std::uint32_t queued_requests(Sqi sqi) const;

  /// Enable pipeline tracing (Table I reproduction).
  void set_pipe_trace(std::function<void(const PipeTraceRow&)> fn) {
    trace_ = std::move(fn);
  }

  /// Warm-restart support (src/replay/warm_restart.hpp): every message
  /// line resident in the device, per SQI, in delivery order — OUT-list
  /// entries first (oldest injection candidates), then the SQI's producer
  /// wait list, then undispatched IN entries in input order. Ideal mode
  /// reads the per-SQI deques directly. Read-only; call only on a
  /// quiesced device (drained event queue, injector idle), never
  /// mid-pipeline.
  std::vector<std::vector<mem::Line>> snapshot_resident() const;

  // --- epoch-boundary knobs (QoS supervisor / fault plane) ---------------
  // All three are safe only between event-queue steps — the supervisor's
  // sampling boundary and the fault plane's scheduled (tick, seq) events —
  // never from inside a pipeline/injector callback.

  /// Re-weight a class's per-SQI prodBuf quota online (0 = unlimited).
  /// Loosening fires the push-retry callback with nullopt ("any SQI may
  /// retry") so every quota-parked producer re-probes under the new quota.
  void set_class_quota(QosClass cls, std::uint32_t quota) {
    const auto c = static_cast<std::size_t>(cls);
    const std::uint32_t old = cfg_.class_quota[c];
    cfg_.class_quota[c] = quota;
    const bool loosened = (quota == 0 && old != 0) || (old != 0 && quota > old);
    if (loosened && on_push_retry_) on_push_retry_(std::nullopt);
  }
  /// Re-size the per-SQI whole-buffer quota online (0 = shared).
  void set_per_sqi_quota(std::uint32_t quota) {
    const std::uint32_t old = cfg_.per_sqi_quota;
    cfg_.per_sqi_quota = quota;
    const bool loosened = (quota == 0 && old != 0) || (old != 0 && quota > old);
    if (loosened && on_push_retry_) on_push_retry_(std::nullopt);
  }
  std::uint32_t class_quota(QosClass cls) const {
    return cfg_.class_quota[static_cast<std::size_t>(cls)];
  }
  std::uint32_t per_sqi_quota() const { return cfg_.per_sqi_quota; }

  /// Fault plane: stall/resume the injection engine. While stalled the
  /// device keeps accepting pushes and mapping them until buffers fill —
  /// then ordinary kFull/kQuota NACK back-pressure parks producers — but
  /// no line leaves the OUT list, so consumers starve. An injection already
  /// in flight completes (the engine pauses, it does not drop). Resume
  /// re-kicks the engine with all table state intact: zero message loss by
  /// construction.
  void set_injector_stalled(bool stalled) {
    injector_stalled_ = stalled;
    if (!stalled) {
      kick_injector();
      // Buffers may have been full for the whole stall window with every
      // producer parked; injections will now free slots and fire per-SQI
      // retries, but kick any coupled-io waiters immediately too.
      if (on_push_retry_) on_push_retry_(std::nullopt);
    }
  }
  bool injector_stalled() const { return injector_stalled_; }

  /// Harness-side notification, fired whenever a condition that NACKed an
  /// earlier push may have cleared. The argument names the SQI whose
  /// injection freed a prodBuf slot (and one unit of that SQI's quota), so
  /// the runtime can wake that SQI's quota-parked producers plus *one*
  /// buffer-space waiter instead of the whole herd; std::nullopt means "any
  /// SQI may retry" (coupled_io pipeline going idle). The runtime parks
  /// back-pressured producers on simulated futexes and uses this to wake
  /// them — zero simulated cost, pure wakeup plumbing.
  void set_push_retry_callback(std::function<void(std::optional<Sqi>)> cb) {
    on_push_retry_ = std::move(cb);
  }

 private:
  // --- hardware tables ----------------------------------------------------
  struct LinkTabEntry {
    std::uint16_t prod_head = kNil, prod_tail = kNil;
    std::uint16_t cons_head = kNil, cons_tail = kNil;
    std::uint16_t prod_count = 0;  ///< prodBuf entries held by this SQI
                                   ///< (quota accounting, cfg.per_sqi_quota).
    std::uint16_t class_count[kQosClasses] = {0, 0, 0};  ///< ...by class
                                   ///< (cfg.class_quota accounting).
  };
  struct ConsBufEntry {
    bool valid = false;
    Sqi sqi = 0;
    Addr cons_tgt = 0;
    CoreId core = 0;
    std::uint16_t next_l = kNil;   // per-SQI wait list
    std::uint16_t next_in = kNil;  // input-order list
  };
  struct ProdBufEntry {
    // IN partition
    bool valid = false;
    Sqi sqi = 0;
    QosClass cls = QosClass::kStandard;  ///< From the line's ctrl byte.
    mem::Line data{};
    std::uint16_t next_in = kNil;
    // LINK partition
    std::uint16_t next_l = kNil;
    // OUT partition
    bool out_valid = false;
    Addr cons_tgt = 0;
    CoreId cons_core = 0;
    std::uint16_t mapped = kNil;   // consBuf index it was paired with
    std::uint16_t next_out = kNil;
  };

  // --- pipeline latches ----------------------------------------------------
  struct Latch {
    bool valid = false;
    bool is_consumer = false;
    std::uint16_t idx = kNil;      // buffer index of the entry in flight
    Sqi sqi = 0;
    std::uint16_t head = kNil;     // opposing list head read in stage 1
    std::uint16_t tail = kNil;     // own list tail read in stage 1
    bool hit = false;              // stage-2 decision
  };

  // pipeline stages (oldest first within a cycle => RAW forwarding)
  void pipeline_cycle();
  void stage3(Latch& l, std::string* tr);
  void stage2(Latch& l, std::string* tr);
  std::optional<Latch> stage1(std::string* tr);
  bool pipeline_pending() const;
  void kick_pipeline();

  // injection engine
  void kick_injector();
  void injector_done(std::uint16_t prod_idx);

  // free-slot search with rotating start (PIFR/CIFR behaviour)
  std::uint16_t alloc_prod_slot();
  std::uint16_t alloc_cons_slot();

  // linked-list helpers
  void append_input(bool consumer, std::uint16_t idx);
  std::uint16_t pop_input(bool consumer);
  void append_wait(LinkTabEntry& lt, bool consumer, std::uint16_t idx);
  std::uint16_t pop_wait(LinkTabEntry& lt, bool consumer);
  std::uint16_t pop_wait_lowest(LinkTabEntry& lt, bool consumer);
  Tick pipeline_step_cost() const;
  void push_front_data(Sqi sqi, std::uint16_t idx);
  bool line_drained(Addr tgt) const;
  void append_out(std::uint16_t idx);
  std::uint16_t pop_out();

  // VL(ideal) fast path
  bool ideal_push(Sqi sqi, const mem::Line& data);
  bool ideal_fetch(Sqi sqi, Addr tgt, CoreId core);
  void ideal_deliver(Sqi sqi);

  sim::EventQueue& eq_;
  mem::Hierarchy& hier_;
  sim::VlrdConfig cfg_;
  VlrdStats stats_;

  std::vector<LinkTabEntry> link_tab_;
  std::vector<ProdBufEntry> prod_buf_;
  std::vector<ConsBufEntry> cons_buf_;

  // registers
  std::uint16_t pifr_ = 0, cifr_ = 0;               // free-slot search
  std::uint16_t pihr_ = kNil, pitr_ = kNil;          // producer input list
  std::uint16_t cihr_ = kNil, citr_ = kNil;          // consumer input list
  std::uint16_t pohr_ = kNil, potr_ = kNil;          // mapped-output list

  Latch s1_out_{}, s2_out_{};  // latches between stages
  bool pipeline_scheduled_ = false;
  bool injector_busy_ = false;
  bool injector_stalled_ = false;  ///< Fault plane: engine paused, state kept.
  std::uint64_t cycle_ = 0;

  std::function<void(const PipeTraceRow&)> trace_;
  std::function<void(std::optional<Sqi>)> on_push_retry_;
  PushNack last_push_nack_ = PushNack::kNone;

  // VL(ideal) storage
  struct IdealWaiter {
    Addr tgt;
    CoreId core;
  };
  std::vector<std::deque<mem::Line>> ideal_data_;
  std::vector<std::deque<IdealWaiter>> ideal_waiters_;
};

}  // namespace vl::vlrd
