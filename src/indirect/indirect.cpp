#include "indirect/indirect.hpp"

#include <cassert>
#include <cstring>

namespace vl::indirect {

namespace {
constexpr Tick kEmptyBackoff = 48;

// Deterministic per-thread/per-attempt jitter; see squeue/zmq.cpp for why a
// deterministic simulator needs jittered backoff (phase-lock avoidance).
Tick jitter(const sim::SimThread& t, std::uint32_t attempt, Tick base) {
  std::uint32_t h = static_cast<std::uint32_t>(t.core->id()) * 2654435761u ^
                    static_cast<std::uint32_t>(t.tid) * 40503u ^
                    attempt * 2246822519u;
  h ^= h >> 15;
  return base + (h % (base + 1));
}

std::size_t round_to_lines(std::size_t bytes) {
  return (bytes + kLineSize - 1) / kLineSize * kLineSize;
}
}  // namespace

// --- RegionPool --------------------------------------------------------------

RegionPool::RegionPool(runtime::Machine& m, std::size_t region_bytes,
                       std::uint32_t count)
    : m_(m), region_bytes_(round_to_lines(region_bytes)), count_(count) {
  assert(count > 0 && count < kNilIdx);
  head_ = m_.alloc(kLineSize);
  next_ = m_.alloc(std::size_t{count} * 8);
  regions_ = m_.alloc(region_bytes_ * count);
  // Pre-run functional init: thread every region onto the free list,
  // region 0 on top (mirrors a freshly set-up VirtIO ring).
  auto& bs = m_.mem().backing();
  for (std::uint32_t i = 0; i < count; ++i)
    bs.write(next_addr(i), i + 1 < count ? i + 1 : kNilIdx, 8);
  bs.write(head_, pack(0, 0), 8);
}

sim::Co<std::optional<Addr>> RegionPool::try_acquire(sim::SimThread t) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    const std::uint64_t h = co_await t.load(head_, 8);
    const std::uint32_t idx = head_idx(h);
    if (idx == kNilIdx) co_return std::nullopt;  // pool exhausted
    const std::uint64_t next = co_await t.load(next_addr(idx), 8);
    const std::uint64_t nh = pack(static_cast<std::uint32_t>(next),
                                  head_ver(h) + 1);
    if (co_await t.cas64(head_, h, nh)) co_return region_addr(idx);
    co_await t.compute(jitter(t, attempt, 4));  // lost the CAS race
  }
}

sim::Co<Addr> RegionPool::acquire(sim::SimThread t) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    auto r = co_await try_acquire(t);
    if (r) co_return *r;
    co_await t.compute(jitter(t, attempt, kEmptyBackoff));
  }
}

sim::Co<void> RegionPool::release(sim::SimThread t, Addr region) {
  const std::uint32_t idx = index_of(region);
  assert(idx < count_ && region_addr(idx) == region);
  for (std::uint32_t attempt = 0;; ++attempt) {
    const std::uint64_t h = co_await t.load(head_, 8);
    co_await t.store(next_addr(idx), head_idx(h), 8);
    if (co_await t.cas64(head_, h, pack(idx, head_ver(h) + 1))) co_return;
    co_await t.compute(jitter(t, attempt, 4));
  }
}

std::uint32_t RegionPool::free_count() const {
  const auto& bs = m_.mem().backing();
  std::uint32_t n = 0;
  std::uint32_t idx = head_idx(bs.read(head_, 8));
  while (idx != kNilIdx && n <= count_) {
    ++n;
    idx = static_cast<std::uint32_t>(bs.read(next_addr(idx), 8));
  }
  return n;
}

// --- ChannelRegionPool -------------------------------------------------------

ChannelRegionPool::ChannelRegionPool(runtime::Machine& m, squeue::Channel& ch,
                                     std::size_t region_bytes,
                                     std::uint32_t count)
    : m_(m), ch_(ch), region_bytes_(round_to_lines(region_bytes)),
      count_(count) {
  assert(count > 0);
  regions_ = m_.alloc(region_bytes_ * count);
}

sim::Co<void> ChannelRegionPool::seed(sim::SimThread t) {
  for (std::uint32_t i = 0; i < count_; ++i)
    co_await ch_.send1(t, regions_ + Addr{i} * region_bytes_);
  seeded_ = true;
}

sim::Co<Addr> ChannelRegionPool::acquire(sim::SimThread t) {
  const Addr a = co_await ch_.recv1(t);
  ++outstanding_;
  co_return a;
}

sim::Co<std::optional<Addr>> ChannelRegionPool::try_acquire(sim::SimThread t) {
  // The Channel interface is blocking-only; a bounded probe emulates
  // try-semantics: if nothing arrives within the poll budget we give up.
  // Channels with depth() support short-circuit immediately.
  if (ch_.depth() == 0) co_return std::nullopt;
  co_return co_await acquire(t);
}

sim::Co<void> ChannelRegionPool::release(sim::SimThread t, Addr region) {
  --outstanding_;
  co_await ch_.send1(t, region);
}

// --- IndirectChannel ---------------------------------------------------------

sim::Co<void> IndirectChannel::send_bytes(
    sim::SimThread t, std::span<const std::uint8_t> payload) {
  assert(payload.size() <= pool_.region_bytes());
  const Addr region = co_await pool_.acquire(t);
  // Stream the payload through the producer core's cache, whole lines at a
  // time (the tail line is zero-padded).
  mem::Line line{};
  std::size_t off = 0;
  while (off < payload.size()) {
    const std::size_t n = std::min(payload.size() - off, kLineSize);
    line.fill(0);
    std::memcpy(line.data(), payload.data() + off, n);
    co_await t.store_line(region + off, line.data());
    off += kLineSize;
  }
  co_await ch_.send(t, Descriptor{region,
                                  static_cast<std::uint32_t>(payload.size())}
                           .to_msg());
}

sim::Co<void> IndirectChannel::send_region(sim::SimThread t,
                                           const Descriptor& d) {
  co_await ch_.send(t, d.to_msg());
}

sim::Co<Descriptor> IndirectChannel::recv_region(sim::SimThread t) {
  const squeue::Msg m = co_await ch_.recv(t);
  co_return Descriptor::from_msg(m);
}

sim::Co<std::vector<std::uint8_t>> IndirectChannel::read_region(
    sim::SimThread t, const Descriptor& d) {
  std::vector<std::uint8_t> out(d.len);
  mem::Line line{};
  std::size_t off = 0;
  while (off < d.len) {
    co_await t.load_line(d.addr + off, line.data());
    const std::size_t n = std::min<std::size_t>(d.len - off, kLineSize);
    std::memcpy(out.data() + off, line.data(), n);
    off += kLineSize;
  }
  co_return out;
}

sim::Co<std::vector<std::uint8_t>> IndirectChannel::recv_bytes(
    sim::SimThread t) {
  const Descriptor d = co_await recv_region(t);
  auto out = co_await read_region(t, d);
  co_await pool_.release(t, d.addr);
  co_return out;
}

// --- chained descriptors ------------------------------------------------------

sim::Co<void> IndirectChannel::send_chained(
    sim::SimThread t, std::span<const std::uint8_t> payload) {
  const std::size_t rb = pool_.region_bytes();
  assert(!payload.empty() && payload.size() <= max_chained_bytes());
  const std::size_t nregions = (payload.size() + rb - 1) / rb;

  squeue::Msg msg;
  msg.w[msg.n++] = payload.size();
  mem::Line line{};
  std::size_t off = 0;
  for (std::size_t r = 0; r < nregions; ++r) {
    const Addr region = co_await pool_.acquire(t);
    msg.w[msg.n++] = region;
    const std::size_t seg = std::min(rb, payload.size() - off);
    for (std::size_t lo = 0; lo < seg; lo += kLineSize) {
      const std::size_t nbytes = std::min(seg - lo, kLineSize);
      line.fill(0);
      std::memcpy(line.data(), payload.data() + off + lo, nbytes);
      co_await t.store_line(region + lo, line.data());
    }
    off += seg;
  }
  co_await ch_.send(t, msg);
}

sim::Co<std::vector<std::uint8_t>> IndirectChannel::recv_chained(
    sim::SimThread t) {
  const squeue::Msg msg = co_await ch_.recv(t);
  assert(msg.n >= 2);
  const std::size_t total = msg.w[0];
  const std::size_t rb = pool_.region_bytes();
  std::vector<std::uint8_t> out(total);
  mem::Line line{};
  std::size_t off = 0;
  for (std::uint8_t r = 1; r < msg.n; ++r) {
    const Addr region = msg.w[r];
    const std::size_t seg = std::min(rb, total - off);
    for (std::size_t lo = 0; lo < seg; lo += kLineSize) {
      co_await t.load_line(region + lo, line.data());
      const std::size_t nbytes = std::min(seg - lo, kLineSize);
      std::memcpy(out.data() + off + lo, line.data(), nbytes);
    }
    off += seg;
    co_await pool_.release(t, region);
  }
  assert(off == total);
  co_return out;
}

}  // namespace vl::indirect
