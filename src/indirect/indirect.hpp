#pragma once
// Indirect buffers for messages larger than one cache line (paper § III-D):
//
//   "Messages larger than a cache line can be incorporated via indirect
//    buffers as pointers. While not demonstrated in this paper, it is
//    trivial to incorporate an existing indirect buffer format such as
//    VirtIO 1.1."
//
// This module supplies that format. A payload lives in a fixed-size region
// drawn from a pool in ordinary cacheable memory; what travels through the
// message channel is a two-word VirtIO-style descriptor {region PA, length}.
// The channel itself can be any backend (VL line, BLFQ/ZMQ ring, CAF
// registers), so the same workload measures how each scheme handles
// pointer-message traffic — exactly the regime of the paper's `pipeline`
// benchmark and the Fig. 15 CAF comparison.
//
// Two region-recycling strategies are provided, because the recycle path is
// itself an M:N queue problem:
//
//   RegionPool        — a Treiber-stack free list in shared coherent memory
//                       (CAS on a versioned head word). This is what a
//                       conventional VirtIO implementation does; it re-
//                       introduces a shared hot word and therefore coherence
//                       traffic, which the ablation bench quantifies.
//   ChannelRegionPool — recycling rides a message channel (for VL: freed
//                       region indices return through the VLRD), keeping
//                       even the free list contention-free. The pool is
//                       pre-seeded by pushing every region's index.
//
// Both honour back-pressure: acquire blocks (with deterministic jittered
// backoff) until a region is free, bounding payload memory exactly like the
// paper's bounded VQ bounds line memory.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "runtime/machine.hpp"
#include "squeue/channel.hpp"

namespace vl::indirect {

/// VirtIO-1.1-flavoured descriptor: one payload region plus its live length.
/// Packs into two channel words, so it fits every backend's message format
/// (and a single VL line could carry up to three descriptors, cf. VirtIO
/// descriptor chaining).
struct Descriptor {
  Addr addr = 0;            ///< Region base PA (line-aligned).
  std::uint32_t len = 0;    ///< Valid payload bytes in the region.

  squeue::Msg to_msg() const {
    return squeue::Msg::words({addr, static_cast<std::uint64_t>(len)});
  }
  static Descriptor from_msg(const squeue::Msg& m) {
    return Descriptor{m.w[0], static_cast<std::uint32_t>(m.w[1])};
  }
};

/// Interface shared by both recycling strategies.
class PoolBase {
 public:
  virtual ~PoolBase() = default;

  /// Blocking acquire of one region (base PA). Applies back-pressure by
  /// retrying with deterministic jittered backoff while the pool is empty.
  virtual sim::Co<Addr> acquire(sim::SimThread t) = 0;

  /// Non-blocking acquire attempt.
  virtual sim::Co<std::optional<Addr>> try_acquire(sim::SimThread t) = 0;

  /// Return a region (must be a base PA previously handed out).
  virtual sim::Co<void> release(sim::SimThread t, Addr region) = 0;

  virtual std::size_t region_bytes() const = 0;
  virtual std::uint32_t capacity() const = 0;

  /// Regions currently free (functional walk; test/diagnostic only).
  virtual std::uint32_t free_count() const = 0;
};

/// Treiber-stack pool: free list threaded through a per-region next-index
/// array, with a versioned head word (index:32 | version:32) to defeat ABA.
/// The head word is the shared hot line every acquire/release CASes.
class RegionPool final : public PoolBase {
 public:
  /// `region_bytes` is rounded up to whole lines. All regions are carved
  /// from one contiguous allocation; all start free.
  RegionPool(runtime::Machine& m, std::size_t region_bytes, std::uint32_t count);

  sim::Co<Addr> acquire(sim::SimThread t) override;
  sim::Co<std::optional<Addr>> try_acquire(sim::SimThread t) override;
  sim::Co<void> release(sim::SimThread t, Addr region) override;

  std::size_t region_bytes() const override { return region_bytes_; }
  std::uint32_t capacity() const override { return count_; }
  std::uint32_t free_count() const override;

  Addr region_addr(std::uint32_t idx) const {
    return regions_ + Addr{idx} * region_bytes_;
  }
  std::uint32_t index_of(Addr region) const {
    return static_cast<std::uint32_t>((region - regions_) / region_bytes_);
  }

 private:
  static constexpr std::uint32_t kNilIdx = 0xffff'ffffu;
  static std::uint64_t pack(std::uint32_t idx, std::uint32_t ver) {
    return (std::uint64_t{ver} << 32) | idx;
  }
  static std::uint32_t head_idx(std::uint64_t h) {
    return static_cast<std::uint32_t>(h);
  }
  static std::uint32_t head_ver(std::uint64_t h) {
    return static_cast<std::uint32_t>(h >> 32);
  }
  Addr next_addr(std::uint32_t idx) const { return next_ + Addr{idx} * 8; }

  runtime::Machine& m_;
  std::size_t region_bytes_;
  std::uint32_t count_;
  Addr head_ = 0;     ///< Versioned head word (its own line).
  Addr next_ = 0;     ///< next-index array, one dword per region.
  Addr regions_ = 0;  ///< Payload storage.
};

/// Channel-recycled pool: region indices circulate through a message
/// channel. With a VL backend the free list touches zero shared coherent
/// state — the recycle path inherits VL's scaling.
class ChannelRegionPool final : public PoolBase {
 public:
  /// The pool recycles region indices through `ch`, which must have
  /// capacity for `count` outstanding single-word messages (VL: sized user
  /// buffers; rings: capacity_hint >= count). Spawn `seed()` and run the
  /// machine (or run it alongside the workload) before/while using the pool.
  ChannelRegionPool(runtime::Machine& m, squeue::Channel& ch, std::size_t region_bytes,
                    std::uint32_t count);

  sim::Co<Addr> acquire(sim::SimThread t) override;
  sim::Co<std::optional<Addr>> try_acquire(sim::SimThread t) override;
  sim::Co<void> release(sim::SimThread t, Addr region) override;

  std::size_t region_bytes() const override { return region_bytes_; }
  std::uint32_t capacity() const override { return count_; }
  std::uint32_t free_count() const override { return count_ - outstanding_; }

  /// Coroutine that pushes every region index into the channel. Spawn it
  /// before (or concurrently with) the first acquire.
  sim::Co<void> seed(sim::SimThread t);
  bool seeded() const { return seeded_; }

 private:
  runtime::Machine& m_;
  squeue::Channel& ch_;
  std::size_t region_bytes_;
  std::uint32_t count_;
  Addr regions_ = 0;
  std::uint32_t outstanding_ = 0;  ///< Regions currently held by users.
  bool seeded_ = false;
};

/// Bulk-payload adapter over any Channel: moves arbitrary byte spans using
/// one descriptor message per payload. Line-granular timing: every payload
/// line is written/read through the calling core's cache hierarchy.
class IndirectChannel {
 public:
  IndirectChannel(runtime::Machine& m, squeue::Channel& ch, PoolBase& pool)
      : m_(m), ch_(ch), pool_(pool) {}

  /// Copy `payload` into a fresh region and send its descriptor.
  /// Blocks on pool back-pressure, then on channel back-pressure.
  sim::Co<void> send_bytes(sim::SimThread t,
                           std::span<const std::uint8_t> payload);

  /// Forward an already-owned region (e.g. one obtained via recv_region)
  /// without copying its payload: only the two-word descriptor moves.
  /// Ownership passes to the receiver, who must recv and release it. Both
  /// channels must share the same pool.
  sim::Co<void> send_region(sim::SimThread t, const Descriptor& d);

  /// Receive one payload by copy; the region is recycled before returning.
  sim::Co<std::vector<std::uint8_t>> recv_bytes(sim::SimThread t);

  /// Zero-copy receive: hands the raw descriptor to the caller, who reads
  /// the region in place and must `release()` it when done.
  sim::Co<Descriptor> recv_region(sim::SimThread t);
  sim::Co<void> release(sim::SimThread t, const Descriptor& d) {
    co_await pool_.release(t, d.addr);
  }

  /// Read a region's payload through `t`'s cache (helper for zero-copy
  /// consumers).
  sim::Co<std::vector<std::uint8_t>> read_region(sim::SimThread t,
                                                 const Descriptor& d);

  // --- chained descriptors (VirtIO 1.1 descriptor chains) -----------------
  // Payloads larger than one region span a chain of regions; the message
  // carries {total length, region0, region1, ...} in one frame, so a chain
  // may hold up to 6 regions (7 payload words per Fig. 10 line, one spent
  // on the length). Regions fill in order; only the last is partial.

  /// Largest payload send_chained accepts for the configured pool.
  std::size_t max_chained_bytes() const {
    return kMaxChain * pool_.region_bytes();
  }

  /// Send a payload of up to max_chained_bytes() across a descriptor chain
  /// (1..6 regions). Blocks on pool and channel back-pressure.
  sim::Co<void> send_chained(sim::SimThread t,
                             std::span<const std::uint8_t> payload);

  /// Receive one chained payload; all regions are recycled before return.
  sim::Co<std::vector<std::uint8_t>> recv_chained(sim::SimThread t);

  PoolBase& pool() { return pool_; }

 private:
  static constexpr std::size_t kMaxChain = 6;

  runtime::Machine& m_;
  squeue::Channel& ch_;
  PoolBase& pool_;
};

}  // namespace vl::indirect
