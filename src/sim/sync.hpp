#pragma once
// Awaitable synchronization primitives for simulated threads.
//
// Workloads mostly communicate through the message channels under test,
// but harness code frequently needs phase structure around them — "start
// all producers at once", "wait until every worker finished the warm-up
// lap", "bound the number of in-flight batches". These primitives provide
// that without touching the modelled memory system: they are *harness*
// constructs, so they cost zero simulated coherence traffic and advance
// time only where an explicit latency is configured.
//
//   Barrier    — classic N-party phase barrier, reusable across phases.
//   Semaphore  — counting semaphore with FIFO wakeup.
//   Event      — one-shot broadcast gate (set() releases all waiters,
//                including future ones).

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/event_queue.hpp"

namespace vl::sim {

/// N-party reusable barrier. The last arriver releases everyone at the
/// same tick (wakeups are scheduled, not inline, so no waiter resumes
/// inside another's arrive()).
class Barrier {
 public:
  Barrier(EventQueue& eq, std::uint32_t parties)
      : eq_(eq), parties_(parties) {}

  /// Awaitable arrival: suspends unless this is the last party.
  auto arrive() {
    struct Awaiter {
      Barrier& b;
      bool await_ready() {
        if (b.waiting_.size() + 1 == b.parties_) {
          b.release_all();
          return true;  // last arriver passes straight through
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        b.waiting_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::uint32_t parties() const { return parties_; }
  std::uint64_t generations() const { return generations_; }

 private:
  void release_all() {
    ++generations_;
    auto batch = std::move(waiting_);
    waiting_.clear();
    for (auto h : batch) eq_.schedule_in(0, [h] { h.resume(); });
  }

  EventQueue& eq_;
  std::uint32_t parties_;
  std::vector<std::coroutine_handle<>> waiting_;
  std::uint64_t generations_ = 0;
};

/// Counting semaphore with FIFO wakeup order.
class Semaphore {
 public:
  Semaphore(EventQueue& eq, std::uint64_t initial)
      : eq_(eq), count_(initial) {}

  auto acquire() {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() {
        if (s.count_ > 0) {
          --s.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        s.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Release one permit; ownership transfers directly to the oldest
  /// waiter if any (so count() stays 0 while a queue exists).
  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      eq_.schedule_in(0, [h] { h.resume(); });
    } else {
      ++count_;
    }
  }

  std::uint64_t count() const { return count_; }
  std::size_t queue_length() const { return waiters_.size(); }

 private:
  EventQueue& eq_;
  std::uint64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// One-shot broadcast gate.
class Event {
 public:
  explicit Event(EventQueue& eq) : eq_(eq) {}

  auto wait() {
    struct Awaiter {
      Event& e;
      bool await_ready() const { return e.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        e.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Release all current waiters; later wait()s pass through. Idempotent.
  void set() {
    if (set_) return;
    set_ = true;
    auto batch = std::move(waiters_);
    waiters_.clear();
    for (auto h : batch) eq_.schedule_in(0, [h] { h.resume(); });
  }

  bool is_set() const { return set_; }

 private:
  EventQueue& eq_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace vl::sim
