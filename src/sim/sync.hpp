#pragma once
// Awaitable synchronization primitives for simulated threads.
//
// Workloads mostly communicate through the message channels under test,
// but harness code frequently needs phase structure around them — "start
// all producers at once", "wait until every worker finished the warm-up
// lap", "bound the number of in-flight batches". These primitives provide
// that without touching the modelled memory system: they are *harness*
// constructs, so they cost zero simulated coherence traffic and advance
// time only where an explicit latency is configured.
//
//   Barrier    — classic N-party phase barrier, reusable across phases.
//   Semaphore  — counting semaphore with FIFO wakeup.
//   Event      — one-shot broadcast gate (set() releases all waiters,
//                including future ones).
//   WaitQueue  — simulated-futex park/wake: blocked threads park instead
//                of polling, and the state-changing side wakes them.
//   ParkAny    — multi-futex park: one coroutine parked on N WaitQueues at
//                once, resumed by the first wake on any of them (the sim
//                layer underneath squeue::Selector's wait-any).

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "sim/event_queue.hpp"

namespace vl::sim {

class WaitQueue;

/// Simulated futex: a FIFO queue of parked coroutines plus a wake epoch.
///
/// The epoch closes the classic lost-wakeup window. The parking side reads
/// `epoch()` *before* checking the guarded state; if a wake lands between
/// that check and the park, the epoch no longer matches and park() falls
/// straight through (a spurious wake the caller absorbs by re-checking its
/// condition — the standard futex contract):
///
///   for (;;) {
///     const auto gate = wq.epoch();
///     if (state_allows_progress()) break;
///     co_await wq.park(gate);     // or t.park(wq, gate) to also yield the
///   }                             //   core's run-queue residency
///
/// Wakes resume waiters through the EventQueue at the current tick, so
/// wake order is FIFO and fully deterministic. Parking itself costs zero
/// simulated time and zero events while blocked — the whole point: a
/// parked thread generates no O(pollers) retry traffic.
class WaitQueue {
 public:
  explicit WaitQueue(EventQueue& eq) : eq_(&eq) {}

  /// Shared state of one multi-queue park (see ParkAny below): the first
  /// queue to wake the group records itself as the winner; entries the
  /// group left on the *other* queues turn stale and are skipped (without
  /// consuming the wake) by wake_one/wake_all.
  struct WaitGroup {
    bool fired = false;
    std::size_t winner = 0;
  };

  std::uint64_t epoch() const { return epoch_; }
  std::size_t parked() const { return waiters_.size(); }
  std::uint64_t wakeups() const { return wakeups_; }

  /// Awaitable park. Suspends unless the epoch already moved past
  /// `expected` (i.e. a wake happened since the caller sampled it).
  auto park(std::uint64_t expected) {
    struct Awaiter {
      WaitQueue& w;
      std::uint64_t expected;
      bool await_ready() const noexcept { return w.epoch_ != expected; }
      void await_suspend(std::coroutine_handle<> h) {
        w.waiters_.push_back({h, nullptr, 0});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, expected};
  }

  /// Wake the oldest parked waiter (FIFO); always advances the epoch, so a
  /// wake with nobody parked is still observed by a concurrent parker.
  /// Stale multi-park entries (their group already fired via another
  /// queue) are discarded without consuming the wake.
  void wake_one() {
    ++epoch_;
    while (!waiters_.empty()) {
      const Waiter w = waiters_.front();
      waiters_.pop_front();
      if (w.group) {
        if (w.group->fired) continue;  // stale: woken through a sibling queue
        w.group->fired = true;
        w.group->winner = w.index;
      }
      ++wakeups_;
      const auto h = w.h;
      eq_->schedule_in(0, [h] { h.resume(); });
      return;
    }
  }

  /// Wake every parked waiter, in FIFO order.
  void wake_all() {
    ++epoch_;
    while (!waiters_.empty()) {
      const Waiter w = waiters_.front();
      waiters_.pop_front();
      if (w.group) {
        if (w.group->fired) continue;
        w.group->fired = true;
        w.group->winner = w.index;
      }
      ++wakeups_;
      const auto h = w.h;
      eq_->schedule_in(0, [h] { h.resume(); });
    }
  }

 private:
  friend class ParkAny;

  struct Waiter {
    std::coroutine_handle<> h;
    WaitGroup* group;   ///< nullptr for a plain single-queue park.
    std::size_t index;  ///< Caller-side endpoint index within the group.
  };

  void enroll(std::coroutine_handle<> h, WaitGroup* g, std::size_t index) {
    waiters_.push_back({h, g, index});
  }
  void remove_group(const WaitGroup* g) {
    for (auto it = waiters_.begin(); it != waiters_.end();) {
      it = it->group == g ? waiters_.erase(it) : it + 1;
    }
  }

  EventQueue* eq_;
  std::uint64_t epoch_ = 0;
  std::uint64_t wakeups_ = 0;
  std::deque<Waiter> waiters_;
};

/// Awaitable multi-futex park: enrolls one coroutine on every queue in
/// `wqs` and resumes on the first wake any of them delivers, returning the
/// index of the waking queue. Falls straight through (returning the lowest
/// mismatching index) if any queue's epoch already moved past its sampled
/// gate — the same lost-wakeup protocol as WaitQueue::park, per queue.
/// After resumption the group's leftover entries on the sibling queues are
/// removed, so no dangling waiter survives the co_await.
class ParkAny {
 public:
  ParkAny(std::span<WaitQueue* const> wqs, std::span<const std::uint64_t> gates)
      : wqs_(wqs), gates_(gates) {
    assert(wqs_.size() == gates_.size());
  }

  bool await_ready() noexcept {
    for (std::size_t i = 0; i < wqs_.size(); ++i) {
      if (wqs_[i]->epoch() != gates_[i]) {
        group_.fired = true;
        group_.winner = i;
        return true;
      }
    }
    return false;
  }
  void await_suspend(std::coroutine_handle<> h) {
    for (std::size_t i = 0; i < wqs_.size(); ++i)
      wqs_[i]->enroll(h, &group_, i);
  }
  std::size_t await_resume() noexcept {
    // The frame is still alive here (we sit inside the co_await), so the
    // sibling queues' stale entries can be unlinked safely.
    for (WaitQueue* wq : wqs_) wq->remove_group(&group_);
    return group_.winner;
  }

 private:
  std::span<WaitQueue* const> wqs_;
  std::span<const std::uint64_t> gates_;
  WaitQueue::WaitGroup group_;
};

/// FIFO credit gate: a counting wake channel for a resource that frees one
/// unit at a time but is consumed in runs (prodBuf slots vs batched line
/// bursts). release(n) adds credits; acquire(want) suspends until the
/// *front* waiter's want is covered, then debits and resumes it — strict
/// FIFO, so a large want accumulates credits while it waits and smaller
/// wants behind it cannot starve it. One wake then carries an n-slot
/// grant, where a plain futex would deliver n one-slot wakes.
///
/// Credits are wake *hints*, not hard resources: the protected state
/// (device buffer occupancy) is only discovered by the retried operation
/// itself. An acquirer whose retry still NACKs re-acquires; credits that
/// turn out stale (the slot was taken by a non-parked fast-path producer)
/// simply cost one spurious probe. Unlike the epoch futex there is no
/// lost-wake window to gate: credits released before the acquire persist
/// in the counter.
class CreditGate {
 public:
  explicit CreditGate(EventQueue& eq) : eq_(eq) {}

  /// Immediate acquisition when no queue exists and credits suffice.
  bool try_acquire(std::uint64_t want) {
    if (waiters_.empty() && credits_ >= want) {
      credits_ -= want;
      return true;
    }
    return false;
  }

  /// Awaitable FIFO acquisition of `want` credits (callers that must also
  /// donate core residency go through SimThread-level helpers and call
  /// try_acquire first).
  auto acquire(std::uint64_t want) {
    struct Awaiter {
      CreditGate& g;
      std::uint64_t want;
      bool await_ready() { return g.try_acquire(want); }
      void await_suspend(std::coroutine_handle<> h) {
        g.waiters_.push_back({h, want});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, want};
  }

  /// Add credits and grant the front of the queue as far as they reach.
  void release(std::uint64_t n = 1) {
    credits_ += n;
    while (!waiters_.empty() && credits_ >= waiters_.front().want) {
      const Waiter w = waiters_.front();
      waiters_.pop_front();
      credits_ -= w.want;
      ++grants_;
      eq_.schedule_in(0, [h = w.h] { h.resume(); });
    }
  }

  /// Resume every waiter without debiting credits — a broadcast "state
  /// changed, re-check" kick (the coupled-I/O idle path). Spurious wakes
  /// are absorbed by the callers' retry loops.
  void kick_all() {
    while (!waiters_.empty()) {
      const Waiter w = waiters_.front();
      waiters_.pop_front();
      ++grants_;
      eq_.schedule_in(0, [h = w.h] { h.resume(); });
    }
  }

  std::uint64_t credits() const { return credits_; }
  std::size_t parked() const { return waiters_.size(); }
  std::uint64_t grants() const { return grants_; }

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    std::uint64_t want;
  };

  EventQueue& eq_;
  std::uint64_t credits_ = 0;
  std::uint64_t grants_ = 0;
  std::deque<Waiter> waiters_;
};

/// N-party reusable barrier. The last arriver releases everyone at the
/// same tick (wakeups are scheduled, not inline, so no waiter resumes
/// inside another's arrive()).
class Barrier {
 public:
  Barrier(EventQueue& eq, std::uint32_t parties)
      : eq_(eq), parties_(parties) {}

  /// Awaitable arrival: suspends unless this is the last party.
  auto arrive() {
    struct Awaiter {
      Barrier& b;
      bool await_ready() {
        if (b.waiting_.size() + 1 == b.parties_) {
          b.release_all();
          return true;  // last arriver passes straight through
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        b.waiting_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::uint32_t parties() const { return parties_; }
  std::uint64_t generations() const { return generations_; }

 private:
  void release_all() {
    ++generations_;
    auto batch = std::move(waiting_);
    waiting_.clear();
    for (auto h : batch) eq_.schedule_in(0, [h] { h.resume(); });
  }

  EventQueue& eq_;
  std::uint32_t parties_;
  std::vector<std::coroutine_handle<>> waiting_;
  std::uint64_t generations_ = 0;
};

/// Counting semaphore with FIFO wakeup order.
class Semaphore {
 public:
  Semaphore(EventQueue& eq, std::uint64_t initial)
      : eq_(eq), count_(initial) {}

  auto acquire() {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() {
        if (s.count_ > 0) {
          --s.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        s.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Release one permit; ownership transfers directly to the oldest
  /// waiter if any (so count() stays 0 while a queue exists).
  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      eq_.schedule_in(0, [h] { h.resume(); });
    } else {
      ++count_;
    }
  }

  std::uint64_t count() const { return count_; }
  std::size_t queue_length() const { return waiters_.size(); }

 private:
  EventQueue& eq_;
  std::uint64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// One-shot broadcast gate.
class Event {
 public:
  explicit Event(EventQueue& eq) : eq_(eq) {}

  auto wait() {
    struct Awaiter {
      Event& e;
      bool await_ready() const { return e.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        e.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Release all current waiters; later wait()s pass through. Idempotent.
  void set() {
    if (set_) return;
    set_ = true;
    auto batch = std::move(waiters_);
    waiters_.clear();
    for (auto h : batch) eq_.schedule_in(0, [h] { h.resume(); });
  }

  bool is_set() const { return set_; }

 private:
  EventQueue& eq_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace vl::sim
