#pragma once
// Awaitable synchronization primitives for simulated threads.
//
// Workloads mostly communicate through the message channels under test,
// but harness code frequently needs phase structure around them — "start
// all producers at once", "wait until every worker finished the warm-up
// lap", "bound the number of in-flight batches". These primitives provide
// that without touching the modelled memory system: they are *harness*
// constructs, so they cost zero simulated coherence traffic and advance
// time only where an explicit latency is configured.
//
//   Barrier    — classic N-party phase barrier, reusable across phases.
//   Semaphore  — counting semaphore with FIFO wakeup.
//   Event      — one-shot broadcast gate (set() releases all waiters,
//                including future ones).
//   WaitQueue  — simulated-futex park/wake: blocked threads park instead
//                of polling, and the state-changing side wakes them.

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/event_queue.hpp"

namespace vl::sim {

/// Simulated futex: a FIFO queue of parked coroutines plus a wake epoch.
///
/// The epoch closes the classic lost-wakeup window. The parking side reads
/// `epoch()` *before* checking the guarded state; if a wake lands between
/// that check and the park, the epoch no longer matches and park() falls
/// straight through (a spurious wake the caller absorbs by re-checking its
/// condition — the standard futex contract):
///
///   for (;;) {
///     const auto gate = wq.epoch();
///     if (state_allows_progress()) break;
///     co_await wq.park(gate);     // or t.park(wq, gate) to also yield the
///   }                             //   core's run-queue residency
///
/// Wakes resume waiters through the EventQueue at the current tick, so
/// wake order is FIFO and fully deterministic. Parking itself costs zero
/// simulated time and zero events while blocked — the whole point: a
/// parked thread generates no O(pollers) retry traffic.
class WaitQueue {
 public:
  explicit WaitQueue(EventQueue& eq) : eq_(&eq) {}

  std::uint64_t epoch() const { return epoch_; }
  std::size_t parked() const { return waiters_.size(); }
  std::uint64_t wakeups() const { return wakeups_; }

  /// Awaitable park. Suspends unless the epoch already moved past
  /// `expected` (i.e. a wake happened since the caller sampled it).
  auto park(std::uint64_t expected) {
    struct Awaiter {
      WaitQueue& w;
      std::uint64_t expected;
      bool await_ready() const noexcept { return w.epoch_ != expected; }
      void await_suspend(std::coroutine_handle<> h) { w.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, expected};
  }

  /// Wake the oldest parked waiter (FIFO); always advances the epoch, so a
  /// wake with nobody parked is still observed by a concurrent parker.
  void wake_one() {
    ++epoch_;
    if (waiters_.empty()) return;
    const auto h = waiters_.front();
    waiters_.pop_front();
    ++wakeups_;
    eq_->schedule_in(0, [h] { h.resume(); });
  }

  /// Wake every parked waiter, in FIFO order.
  void wake_all() {
    ++epoch_;
    while (!waiters_.empty()) {
      const auto h = waiters_.front();
      waiters_.pop_front();
      ++wakeups_;
      eq_->schedule_in(0, [h] { h.resume(); });
    }
  }

 private:
  EventQueue* eq_;
  std::uint64_t epoch_ = 0;
  std::uint64_t wakeups_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// N-party reusable barrier. The last arriver releases everyone at the
/// same tick (wakeups are scheduled, not inline, so no waiter resumes
/// inside another's arrive()).
class Barrier {
 public:
  Barrier(EventQueue& eq, std::uint32_t parties)
      : eq_(eq), parties_(parties) {}

  /// Awaitable arrival: suspends unless this is the last party.
  auto arrive() {
    struct Awaiter {
      Barrier& b;
      bool await_ready() {
        if (b.waiting_.size() + 1 == b.parties_) {
          b.release_all();
          return true;  // last arriver passes straight through
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        b.waiting_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::uint32_t parties() const { return parties_; }
  std::uint64_t generations() const { return generations_; }

 private:
  void release_all() {
    ++generations_;
    auto batch = std::move(waiting_);
    waiting_.clear();
    for (auto h : batch) eq_.schedule_in(0, [h] { h.resume(); });
  }

  EventQueue& eq_;
  std::uint32_t parties_;
  std::vector<std::coroutine_handle<>> waiting_;
  std::uint64_t generations_ = 0;
};

/// Counting semaphore with FIFO wakeup order.
class Semaphore {
 public:
  Semaphore(EventQueue& eq, std::uint64_t initial)
      : eq_(eq), count_(initial) {}

  auto acquire() {
    struct Awaiter {
      Semaphore& s;
      bool await_ready() {
        if (s.count_ > 0) {
          --s.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        s.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Release one permit; ownership transfers directly to the oldest
  /// waiter if any (so count() stays 0 while a queue exists).
  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      eq_.schedule_in(0, [h] { h.resume(); });
    } else {
      ++count_;
    }
  }

  std::uint64_t count() const { return count_; }
  std::size_t queue_length() const { return waiters_.size(); }

 private:
  EventQueue& eq_;
  std::uint64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// One-shot broadcast gate.
class Event {
 public:
  explicit Event(EventQueue& eq) : eq_(eq) {}

  auto wait() {
    struct Awaiter {
      Event& e;
      bool await_ready() const { return e.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        e.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Release all current waiters; later wait()s pass through. Idempotent.
  void set() {
    if (set_) return;
    set_ = true;
    auto batch = std::move(waiters_);
    waiters_.clear();
    for (auto h : batch) eq_.schedule_in(0, [h] { h.resume(); });
  }

  bool is_set() const { return set_; }

 private:
  EventQueue& eq_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace vl::sim
