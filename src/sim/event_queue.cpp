#include "sim/event_queue.hpp"

#include <algorithm>
#include <bit>

namespace vl::sim {

EventQueue::EventQueue() : ring_(kRingSize) {}

void EventQueue::schedule_at(Tick when, Fn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  ++size_;
  if (when - now_ < kRingSize) {
    Bucket& b = ring_[when & kRingMask];
    b.evs.push_back(Ev{seq_++, std::move(fn)});
    set_bit(when & kRingMask);
  } else {
    far_.push_back(FarEv{when, seq_++, std::move(fn)});
    std::push_heap(far_.begin(), far_.end(), FarAfter{});
  }
}

std::optional<Tick> EventQueue::next_ring_tick() const {
  const std::size_t start = now_ & kRingMask;
  // Ring order starting at `start` and wrapping equals tick order, because
  // only ticks in [now, now + kRingSize) can be resident.
  const std::size_t start_word = start >> 6;
  constexpr std::size_t kWords = kRingSize / 64;
  for (std::size_t w = 0; w <= kWords; ++w) {
    const std::size_t word = (start_word + w) % kWords;
    std::uint64_t bits = bits_[word];
    if (w == 0) bits &= ~std::uint64_t{0} << (start & 63);  // at/after start
    if (w == kWords) bits &= (std::uint64_t{1} << (start & 63)) - 1;  // wrapped
    if (!bits) continue;
    const std::size_t idx =
        (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    return now_ + ((idx - start) & kRingMask);
  }
  return std::nullopt;
}

void EventQueue::migrate_far(Tick t) {
  if (far_.empty() || far_.front().when != t) return;
  Bucket& b = ring_[t & kRingMask];
  std::vector<Ev> incoming;  // seq-ascending: heap pops (when, seq) ordered
  while (!far_.empty() && far_.front().when == t) {
    std::pop_heap(far_.begin(), far_.end(), FarAfter{});
    incoming.push_back(Ev{far_.back().seq, std::move(far_.back().fn)});
    far_.pop_back();
  }
  if (b.evs.empty()) {
    b.evs = std::move(incoming);
  } else {
    // Both runs are seq-ascending; merge to preserve global FIFO-per-tick.
    std::vector<Ev> merged;
    merged.reserve(b.evs.size() + incoming.size());
    std::size_t i = 0, j = 0;
    while (i < b.evs.size() && j < incoming.size())
      merged.push_back(b.evs[i].seq < incoming[j].seq
                           ? std::move(b.evs[i++])
                           : std::move(incoming[j++]));
    while (i < b.evs.size()) merged.push_back(std::move(b.evs[i++]));
    while (j < incoming.size()) merged.push_back(std::move(incoming[j++]));
    b.evs = std::move(merged);
  }
  b.cursor = 0;
  set_bit(t & kRingMask);
}

std::optional<Tick> EventQueue::next_event_tick() {
  Bucket& cur = ring_[now_ & kRingMask];
  if (cur.cursor < cur.evs.size()) return now_;
  if (!cur.evs.empty()) {
    cur.evs.clear();  // retains capacity for reuse
    cur.cursor = 0;
    clear_bit(now_ & kRingMask);
  }
  const auto ring_next = next_ring_tick();
  if (!far_.empty() && (!ring_next || far_.front().when < *ring_next))
    return far_.front().when;
  return ring_next;
}

bool EventQueue::step() {
  const auto t = next_event_tick();
  if (!t) return false;
  if (*t != now_) {
    now_ = *t;
    migrate_far(*t);
  }
  Bucket& b = ring_[now_ & kRingMask];
  assert(b.cursor < b.evs.size());
  EventFn fn = std::move(b.evs[b.cursor].fn);
  ++b.cursor;
  --size_;
  ++executed_;
  fn();
  return true;
}

std::uint64_t EventQueue::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

void EventQueue::run_until(Tick t) {
  for (;;) {
    const auto next = next_event_tick();
    if (!next || *next > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace vl::sim
