#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace vl::sim {

void EventQueue::schedule_at(Tick when, Fn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  heap_.push(Ev{when, seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the small header and move the functor by re-popping.
  Ev ev = std::move(const_cast<Ev&>(heap_.top()));
  heap_.pop();
  now_ = ev.when;
  ev.fn();
  return true;
}

std::uint64_t EventQueue::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

void EventQueue::run_until(Tick t) {
  while (!heap_.empty() && heap_.top().when <= t) step();
  if (now_ < t) now_ = t;
}

}  // namespace vl::sim
