#include "sim/sharded.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "obs/tracer.hpp"

namespace vl::sim {

// ---------------------------------------------------------------------------
// Worker pool (threads_ > 1). Persistent threads, one generation counter per
// epoch: the coordinator publishes a horizon and a shard count, workers claim
// shards by stride (worker i steps shards i, i + N, ...) so the assignment is
// static — no work-stealing, no shared mutable state between shards inside an
// epoch, nothing for TSan to object to beyond the epoch hand-off itself.

struct ShardedSim::Pool {
  explicit Pool(ShardedSim& owner, int n) : sim(owner) {
    workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      workers.emplace_back([this, i] { worker(i); });
  }

  ~Pool() {
    {
      std::lock_guard lk(mu);
      stop = true;
      ++gen;
    }
    cv.notify_all();
    for (auto& t : workers) t.join();
  }

  /// Step every shard to `horizon` on the worker threads; blocks until all
  /// are done. Runs on the coordinator thread only.
  void step(Tick h) {
    {
      std::lock_guard lk(mu);
      horizon = h;
      remaining = static_cast<int>(workers.size());
      ++gen;
    }
    cv.notify_all();
    std::unique_lock lk(mu);
    done_cv.wait(lk, [this] { return remaining == 0; });
  }

  void worker(int index) {
    std::uint64_t seen = 0;
    for (;;) {
      Tick h;
      {
        std::unique_lock lk(mu);
        cv.wait(lk, [&] { return gen != seen; });
        seen = gen;
        if (stop) return;
        h = horizon;
      }
      const int n = static_cast<int>(workers.size());
      const int s = sim.shards();
      for (int sh = index; sh < s; sh += n) sim.shards_[sh].eq->run_until(h);
      {
        std::lock_guard lk(mu);
        if (--remaining == 0) done_cv.notify_one();
      }
    }
  }

  ShardedSim& sim;
  std::mutex mu;
  std::condition_variable cv, done_cv;
  std::vector<std::thread> workers;
  std::uint64_t gen = 0;
  Tick horizon = 0;
  int remaining = 0;
  bool stop = false;
};

// ---------------------------------------------------------------------------

ShardedSim::ShardedSim(Tick lookahead, int threads)
    : lookahead_(lookahead), threads_(threads < 1 ? 1 : threads) {
  assert(lookahead_ >= 1 && "lookahead of 0 has no safe horizon");
}

ShardedSim::~ShardedSim() = default;

int ShardedSim::add_shard(EventQueue& eq) {
  const int id = shards();
  shards_.push_back(Shard{&eq, {}, 0});
  in_flight_.assign(shards_.size() * shards_.size(), 0);
  return id;
}

bool ShardedSim::can_post(int src, int dst) {
  // Partitioned link: refuse every post until the fault plane lifts the
  // flag at a later barrier. The sender rides its ordinary window backoff,
  // so a bounded partition delays traffic without losing any of it.
  if (any_link_fault_ &&
      link_down_[static_cast<std::size_t>(src) * shards_.size() + dst]) {
    ++shards_[static_cast<std::size_t>(src)].partition_stalls;
    return false;
  }
  if (link_window_ == 0) return true;
  const bool ok =
      in_flight_[static_cast<std::size_t>(src) * shards_.size() + dst] <
      link_window_;
  if (!ok) ++shards_[static_cast<std::size_t>(src)].window_stalls;
  return ok;
}

void ShardedSim::post(int src, int dst, EventFn deliver) {
  Shard& s = shards_[static_cast<std::size_t>(src)];
  // Latency spike: extra >= 0 keeps arrival >= now + lookahead, so the
  // exchange's safe-horizon invariant holds unchanged.
  const Tick extra =
      any_link_fault_
          ? link_extra_[static_cast<std::size_t>(src) * shards_.size() + dst]
          : 0;
  s.outbox.push_back(OutMsg{s.eq->now() + lookahead_ + extra, s.next_seq++,
                            dst, std::move(deliver)});
  ++in_flight_[static_cast<std::size_t>(src) * shards_.size() + dst];
}

std::uint64_t ShardedSim::posts_pending() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.outbox.size();
  return n;
}

void ShardedSim::exchange() {
  // Gather every outbox, then impose the (arrival, src, seq) total order
  // before scheduling: destination queues see the posts in an order that is
  // independent of shard stepping order, which is what keeps the threaded
  // mode byte-identical to sequential round-robin.
  struct Item {
    Tick arrival;
    int src;
    std::uint64_t seq;
    int dst;
    EventFn fn;
  };
  std::vector<Item> items;
  for (int src = 0; src < shards(); ++src) {
    Shard& s = shards_[static_cast<std::size_t>(src)];
    for (OutMsg& m : s.outbox)
      items.push_back(Item{m.arrival, src, m.seq, m.dst, std::move(m.fn)});
    s.outbox.clear();
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (Item& it : items) {
    EventQueue& dq = *shards_[static_cast<std::size_t>(it.dst)].eq;
    // Safety of the horizon: arrival = src.now() + L >= t_min + L > H, and
    // every queue stands at exactly H after step_all, so this never
    // schedules into a destination's past.
    assert(it.arrival >= dq.now() && "lookahead violated");
    dq.schedule_at(it.arrival, std::move(it.fn));
  }
  stats_.messages += items.size();
  std::fill(in_flight_.begin(), in_flight_.end(), 0);
}

void ShardedSim::step_all(Tick horizon) {
  if (threads_ > 1 && shards() > 1) {
    if (!pool_)
      pool_ = std::make_unique<Pool>(
          *this, std::min(threads_, shards()));
    pool_->step(horizon);
  } else {
    for (Shard& s : shards_) s.eq->run_until(horizon);
  }
}

void ShardedSim::run(BarrierHook hook) {
  assert(shards() > 0 && "run() with no shards");
  for (;;) {
    exchange();
    const bool done = hook ? hook() : true;
    // Earliest pending event anywhere fixes the epoch's safe horizon.
    std::optional<Tick> t_min;
    for (Shard& s : shards_) {
      const auto t = s.eq->peek_next_tick();
      if (t && (!t_min || *t < *t_min)) t_min = t;
    }
    if (!t_min) {
      if (posts_pending() == 0) {
        // Nothing pending anywhere, nothing in flight: finished. A hook
        // still reporting incomplete here is a workload bug (it had its
        // chance to schedule more events this barrier and didn't).
        assert(done && "queues drained with the hook reporting incomplete");
        (void)done;
        break;
      }
      continue;  // exchange the stragglers, then re-probe
    }
    const Tick horizon = *t_min + lookahead_ - 1;
    const std::uint32_t barrier_tid = 0;
    if (trace_)
      trace_->begin(*t_min, barrier_tid, "shard", "epoch", "epoch",
                    stats_.epochs);
    step_all(horizon);
    if (trace_) trace_->end(horizon, barrier_tid, "shard", "epoch");
    ++stats_.epochs;
  }
}

ShardedStats ShardedSim::stats() const {
  ShardedStats s = stats_;
  for (const Shard& sh : shards_) {
    s.window_stalls += sh.window_stalls;
    s.partition_stalls += sh.partition_stalls;
  }
  return s;
}

std::uint64_t ShardedSim::executed() const {
  std::uint64_t n = 0;
  for (const Shard& s : shards_) n += s.eq->executed();
  return n;
}

}  // namespace vl::sim
