#pragma once
// In-order timing core model.
//
// Each Core owns one issue port; software threads bound to the core
// serialize through it (the paper's FIR benchmark runs two threads per core
// and the resulting context switches are what defeat VL cache injection
// there, so thread residency is modelled explicitly). Switching the resident
// thread costs CoreConfig::ctx_switch_cost cycles and fires registered
// hooks — the VL port uses those to drop its latched selection and clear
// "pushable" tag bits, exactly as § III-B requires.
//
// Scheduling is an explicit per-core run-queue with yield-on-block
// semantics: the resident thread keeps the port between its own ops inside
// its timeslice; contenders queue FIFO and are granted either when the
// resident's quantum expires (a preemption timer, the backstop) or
// immediately when the resident blocks — a parked thread donates the rest
// of its slice via yield() instead of spinning it out.

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/mem_port.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace vl::sim {

class Core;

/// A software thread bound to a core. Thin value type passed to every op.
struct SimThread {
  Core* core = nullptr;
  int tid = -1;

  // Convenience forwarding (definitions after Core).
  Co<void> compute(std::uint64_t cycles) const;
  Co<std::uint64_t> load(Addr a, unsigned size = 8) const;
  Co<void> store(Addr a, std::uint64_t v, unsigned size = 8) const;
  Co<bool> cas64(Addr a, std::uint64_t expected, std::uint64_t desired) const;
  Co<std::uint64_t> fetch_add64(Addr a, std::uint64_t delta) const;
  Co<std::uint64_t> swap64(Addr a, std::uint64_t v) const;
  Co<void> load_line(Addr a, void* out) const;
  Co<void> store_line(Addr a, const void* in) const;

  /// Futex-style blocking: donate this thread's core residency (yield) and
  /// park on `wq` unless its epoch already moved past `expected`. Costs no
  /// simulated time and generates no events while parked.
  Co<void> park(WaitQueue& wq, std::uint64_t expected) const;

  /// Multi-futex blocking (select/wait-any): donate residency and park on
  /// every queue in `wqs` at once; resumes on the first wake from any of
  /// them and returns that queue's index. Falls through immediately when
  /// any epoch already moved past its sampled gate.
  Co<std::size_t> park_any(std::span<WaitQueue* const> wqs,
                           std::span<const std::uint64_t> gates) const;

  /// Credit-gate blocking: donate residency and wait FIFO for `want`
  /// credits (no yield when they are immediately available).
  Co<void> acquire_credits(CreditGate& g, std::uint64_t want) const;
};

class Core {
 public:
  using CtxSwitchHook = std::function<void(int old_tid, int new_tid)>;

  Core(EventQueue& eq, CoreId id, MemoryPort& mem, const CoreConfig& cfg)
      : eq_(eq), id_(id), mem_(mem), cfg_(cfg) {}

  EventQueue& eq() { return eq_; }
  CoreId id() const { return id_; }
  const CoreConfig& cfg() const { return cfg_; }

  /// Register a software thread on this core; returns its tid.
  SimThread make_thread() { return SimThread{this, next_tid_++}; }
  int thread_count() const { return next_tid_; }
  int resident_tid() const { return resident_; }

  void add_ctx_switch_hook(CtxSwitchHook h) {
    hooks_.push_back(std::move(h));
  }

  /// Number of context switches taken on this core.
  std::uint64_t ctx_switches() const { return ctx_switches_; }
  /// Times a blocking thread donated its residency via yield().
  std::uint64_t yields() const { return yields_; }
  /// Threads currently queued for the issue port.
  std::size_t run_queue_depth() const { return run_queue_.size(); }

  // --- awaitable operations ------------------------------------------------
  Co<void> compute(int tid, std::uint64_t cycles);
  Co<std::uint64_t> load(int tid, Addr a, unsigned size);
  Co<void> store(int tid, Addr a, std::uint64_t v, unsigned size);
  Co<bool> cas64(int tid, Addr a, std::uint64_t expected, std::uint64_t desired);
  Co<std::uint64_t> fetch_add64(int tid, Addr a, std::uint64_t delta);
  Co<std::uint64_t> swap64(int tid, Addr a, std::uint64_t v);
  Co<void> load_line(int tid, Addr a, void* out);
  Co<void> store_line(int tid, Addr a, const void* in);

  /// Awaitable: acquire the issue port as `tid`, paying a context switch if
  /// the resident thread changes. Used directly by the VL ISA port as well.
  struct PortAwaiter {
    Core& core;
    int tid;
    bool await_ready() { return core.try_acquire_now(tid); }
    void await_suspend(std::coroutine_handle<> h) {
      core.enqueue_waiter(tid, h);
    }
    void await_resume() const noexcept {}
  };
  PortAwaiter acquire_port(int tid) { return PortAwaiter{*this, tid}; }
  void release_port() {
    assert(port_busy_);
    port_busy_ = false;
    maybe_grant();
  }

  /// Yield-on-block: a thread about to park calls this (via SimThread::park)
  /// so the next queued thread is granted the core immediately instead of
  /// waiting out the blocked thread's quantum. No-op if `tid` is not
  /// resident. Must not be called while an op holds the issue port.
  void yield(int tid);

 private:
  friend struct PortAwaiter;

  Co<MemResult> issue(int tid, MemRequest req);

  bool try_acquire_now(int tid);
  void enqueue_waiter(int tid, std::coroutine_handle<> h);
  void maybe_grant();
  void grant_front();
  void arm_preempt_timer(Tick when);
  bool within_slice() const {
    return eq_.now() < resident_since_ + cfg_.sched_quantum;
  }

  struct PortWaiter {
    int tid;
    std::coroutine_handle<> h;
  };

  EventQueue& eq_;
  CoreId id_;
  MemoryPort& mem_;
  CoreConfig cfg_;
  int next_tid_ = 0;
  int resident_ = -1;
  Tick resident_since_ = 0;
  bool port_busy_ = false;        ///< an op currently owns the issue port
  bool resident_blocked_ = false; ///< resident yielded (parked) the core
  bool preempt_armed_ = false;
  std::deque<PortWaiter> run_queue_;
  std::uint64_t ctx_switches_ = 0;
  std::uint64_t yields_ = 0;
  std::vector<CtxSwitchHook> hooks_;
};

// --- SimThread forwarding ----------------------------------------------------
inline Co<void> SimThread::compute(std::uint64_t cycles) const {
  return core->compute(tid, cycles);
}
inline Co<std::uint64_t> SimThread::load(Addr a, unsigned size) const {
  return core->load(tid, a, size);
}
inline Co<void> SimThread::store(Addr a, std::uint64_t v, unsigned size) const {
  return core->store(tid, a, v, size);
}
inline Co<bool> SimThread::cas64(Addr a, std::uint64_t expected,
                                 std::uint64_t desired) const {
  return core->cas64(tid, a, expected, desired);
}
inline Co<std::uint64_t> SimThread::fetch_add64(Addr a,
                                                std::uint64_t delta) const {
  return core->fetch_add64(tid, a, delta);
}
inline Co<std::uint64_t> SimThread::swap64(Addr a, std::uint64_t v) const {
  return core->swap64(tid, a, v);
}
inline Co<void> SimThread::load_line(Addr a, void* out) const {
  return core->load_line(tid, a, out);
}
inline Co<void> SimThread::store_line(Addr a, const void* in) const {
  return core->store_line(tid, a, in);
}

}  // namespace vl::sim
