#pragma once
// FIFO-fair awaitable mutex used to serialize a core's issue port among the
// software threads scheduled on it.

#include <coroutine>
#include <deque>

#include "sim/event_queue.hpp"

namespace vl::sim {

class AsyncMutex {
 public:
  explicit AsyncMutex(EventQueue& eq) : eq_(eq) {}

  auto lock() {
    struct Awaiter {
      AsyncMutex& m;
      bool await_ready() {
        if (!m.locked_) {
          m.locked_ = true;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) { m.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  /// Ownership transfers directly to the oldest waiter, if any.
  void unlock() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      eq_.schedule_in(0, [h] { h.resume(); });
    } else {
      locked_ = false;
    }
  }

  bool locked() const { return locked_; }

 private:
  EventQueue& eq_;
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// RAII-ish scope helper for coroutines (no exceptions cross co_await here,
/// so explicit unlock order is deterministic).
class AsyncLockGuard {
 public:
  explicit AsyncLockGuard(AsyncMutex& m) : m_(&m) {}
  AsyncLockGuard(const AsyncLockGuard&) = delete;
  AsyncLockGuard& operator=(const AsyncLockGuard&) = delete;
  ~AsyncLockGuard() {
    if (m_) m_->unlock();
  }

 private:
  AsyncMutex* m_;
};

}  // namespace vl::sim
