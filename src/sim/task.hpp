#pragma once
// C++20 coroutine plumbing for simulated threads.
//
// Workload code is written as ordinary sequential coroutines:
//
//   vl::sim::Co<void> producer(SimThread& t, Channel& ch) {
//     for (int i = 0; i < 100; ++i) co_await ch.enqueue(t, i);
//   }
//
// `Co<T>` is a lazy, awaitable coroutine with symmetric transfer: awaiting
// a Co suspends the caller, runs the callee, and resumes the caller when
// the callee finishes — all without recursion on the host stack.
//
// `spawn()` turns a Co<void> into a root simulation thread that starts
// executing immediately (simulated time does not advance until it first
// suspends on an awaitable tied to the EventQueue).

#include <cassert>
#include <coroutine>
#include <exception>
#include <memory>
#include <optional>
#include <utility>

#include "sim/event_queue.hpp"

namespace vl::sim {

template <class T>
class Co;

namespace detail {

struct FinalAwaiter {
  bool await_ready() noexcept { return false; }
  template <class P>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
    auto cont = h.promise().continuation;
    return cont ? cont : std::noop_coroutine();
  }
  void await_resume() noexcept {}
};

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  // Simulation code must not leak exceptions across scheduling boundaries;
  // fail fast so bugs surface at the faulting tick.
  void unhandled_exception() noexcept { std::terminate(); }
};

}  // namespace detail

/// Lazy awaitable coroutine returning T.
template <class T>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Co get_return_object() {
      return Co{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  Co() = default;
  Co(Co&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Co& operator=(Co&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() {
    if (h_) h_.destroy();
  }

  bool valid() const { return static_cast<bool>(h_); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      T await_resume() {
        assert(h.promise().value.has_value());
        return std::move(*h.promise().value);
      }
    };
    return Awaiter{h_};
  }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

/// Void specialization.
template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Co get_return_object() {
      return Co{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };

  Co() = default;
  Co(Co&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Co& operator=(Co&& o) noexcept {
    if (this != &o) {
      if (h_) h_.destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() {
    if (h_) h_.destroy();
  }

  bool valid() const { return static_cast<bool>(h_); }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() noexcept {}
    };
    return Awaiter{h_};
  }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : h_(h) {}
  std::coroutine_handle<promise_type> h_;
};

/// Handle to a spawned root coroutine; lets harnesses poll for completion.
class Spawned {
 public:
  Spawned() : done_(std::make_shared<bool>(false)) {}
  bool done() const { return *done_; }
  std::shared_ptr<bool> flag() const { return done_; }

 private:
  std::shared_ptr<bool> done_;
};

namespace detail {
// Eager, self-destroying root coroutine that drives a Co<void> to completion.
struct RootTask {
  struct promise_type {
    RootTask get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() noexcept { std::terminate(); }
  };
};

inline RootTask run_root(Co<void> co, std::shared_ptr<bool> done) {
  co_await std::move(co);
  *done = true;
}
}  // namespace detail

/// Start a simulated thread. The coroutine runs synchronously until its
/// first suspension; thereafter the EventQueue drives it.
inline Spawned spawn(Co<void> co) {
  Spawned s;
  detail::run_root(std::move(co), s.flag());
  return s;
}

/// Awaitable: advance simulated time by `delta` ticks.
class Delay {
 public:
  Delay(EventQueue& eq, Tick delta) : eq_(eq), delta_(delta) {}
  bool await_ready() const noexcept { return delta_ == 0; }
  void await_suspend(std::coroutine_handle<> h) {
    eq_.schedule_in(delta_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  EventQueue& eq_;
  Tick delta_;
};

/// Awaitable: resume at absolute tick `when` (no-op if already past).
class DelayUntil {
 public:
  DelayUntil(EventQueue& eq, Tick when) : eq_(eq), when_(when) {}
  bool await_ready() const noexcept { return when_ <= eq_.now(); }
  void await_suspend(std::coroutine_handle<> h) {
    eq_.schedule_at(when_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  EventQueue& eq_;
  Tick when_;
};

/// Single-shot value slot bridging callback-style device completions into
/// coroutine land. The AsyncOp must outlive the callback (it normally lives
/// in the awaiting coroutine's frame).
template <class T>
class AsyncOp {
 public:
  void complete(T v) {
    assert(!value_.has_value() && "AsyncOp completed twice");
    value_.emplace(std::move(v));
    if (waiter_) {
      auto w = std::exchange(waiter_, nullptr);
      w.resume();
    }
  }

  auto operator co_await() noexcept {
    struct Awaiter {
      AsyncOp& op;
      bool await_ready() const noexcept { return op.value_.has_value(); }
      void await_suspend(std::coroutine_handle<> h) noexcept { op.waiter_ = h; }
      T await_resume() { return std::move(*op.value_); }
    };
    return Awaiter{*this};
  }

 private:
  std::optional<T> value_;
  std::coroutine_handle<> waiter_ = nullptr;
};

}  // namespace vl::sim
