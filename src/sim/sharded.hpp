#pragma once
// Conservative-lookahead sharded simulation (the classic Chandy–Misra /
// null-message discipline, specialised to a fixed link-latency mesh).
//
// A ShardedSim advances S independent EventQueues — one per modelled node
// ("shard") — in lockstep epochs. The only cross-shard interaction is a
// message over an inter-shard link with a fixed hop latency L >= the
// configured lookahead, so an event at tick t on one shard can influence
// another no earlier than t + L. That bound is the safe horizon: if the
// earliest pending event anywhere sits at tick t_min, every shard may run
// independently up to
//
//     H = t_min + L - 1
//
// without ever receiving an event from a peer inside the window — anything
// a peer sends during the epoch arrives at >= t_min + L > H. At the epoch
// barrier the coordinator collects every shard's outbox, sorts the posts
// by (arrival tick, source shard, source sequence) — a total order that
// does not depend on which shard stepped first — and schedules them into
// the destination queues. Per-shard (tick, seq) event order is therefore a
// pure function of the seed: byte-identical across runs and across the
// sequential / threaded stepping modes.
//
// Stepping is sequential round-robin by default (deterministic, no host
// threads — works on a 1-CPU container). With threads > 1 the epoch's
// run_until() calls are spread over a persistent worker pool; shards share
// no mutable state inside an epoch (outboxes are per-source, ingress
// happens only at the single-threaded barrier), so the threaded mode
// produces exactly the sequential result, just faster on real cores.
//
// Idle windows cost nothing: the horizon chases the earliest pending event
// (run_until() fast-forwards now_ over gaps), so a diurnal trough advances
// in one epoch instead of thousands of empty ones.
//
// Links apply back-pressure through a bounded in-flight window: can_post()
// refuses once `link_window` posts from src->dst accumulate in the current
// epoch, and the sender retries after a backoff (its shard keeps running).
// The barrier drains every outbox, so the window resets per epoch —
// in-flight here means "posted but not yet exchanged".

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace vl::sim {

struct ShardedStats {
  std::uint64_t epochs = 0;         ///< Lookahead windows executed.
  std::uint64_t messages = 0;       ///< Cross-shard posts exchanged.
  std::uint64_t window_stalls = 0;  ///< can_post() refusals (window full).
  std::uint64_t partition_stalls = 0;  ///< can_post() refusals (link down).
};

class ShardedSim {
 public:
  /// `lookahead` is the inter-shard link latency in ticks (>= 1): both the
  /// hop delay every post pays and the safe horizon shards run ahead.
  /// `threads` > 1 steps each epoch's shards on that many host threads.
  explicit ShardedSim(Tick lookahead, int threads = 1);
  ~ShardedSim();

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  /// Register a shard's queue (before run()); returns its shard id.
  int add_shard(EventQueue& eq);

  int shards() const { return static_cast<int>(shards_.size()); }
  Tick lookahead() const { return lookahead_; }
  int threads() const { return threads_; }

  /// Bound on posts per (src, dst) link per epoch; 0 = unbounded.
  void set_link_window(std::uint32_t w) { link_window_ = w; }

  /// Fault plane: per-link state, mutable ONLY at the barrier (from the
  /// BarrierHook, single-threaded, all shards time-aligned) so an epoch
  /// sees one immutable link table — that is what keeps fault-injected
  /// runs byte-identical between sequential and threaded stepping.
  ///
  /// `extra` adds hop latency on top of the lookahead (a latency spike:
  /// arrival = now + lookahead + extra, which still satisfies the safe
  /// horizon since extra >= 0). `down` makes can_post() refuse every post
  /// on the link (a bounded partition: senders ride their normal window
  /// backoff until the fault plane lifts the flag at a later barrier).
  void set_link_fault(int src, int dst, Tick extra, bool down) {
    const std::size_t i =
        static_cast<std::size_t>(src) * shards_.size() + static_cast<std::size_t>(dst);
    if (link_extra_.size() != shards_.size() * shards_.size()) {
      link_extra_.assign(shards_.size() * shards_.size(), 0);
      link_down_.assign(shards_.size() * shards_.size(), 0);
    }
    link_extra_[i] = extra;
    link_down_[i] = down ? 1 : 0;
    any_link_fault_ = false;
    for (std::size_t k = 0; k < link_extra_.size(); ++k)
      if (link_extra_[k] != 0 || link_down_[k] != 0) any_link_fault_ = true;
  }

  /// Room on the src->dst link? Senders must check before post() and back
  /// off locally when refused (the refusal is counted in stats).
  bool can_post(int src, int dst);

  /// Cross-shard message: `deliver` runs in dst's queue at
  /// src.now() + lookahead. Only call from code executing on shard `src`
  /// (its outbox is single-writer by construction).
  void post(int src, int dst, EventFn deliver);

  /// Posts sitting in outboxes right now (not yet exchanged).
  std::uint64_t posts_pending() const;

  /// Called at every barrier, after the exchange, with all shards aligned
  /// at the epoch boundary. Return true once the workload is complete;
  /// run() then exits as soon as every queue has drained. The hook may
  /// schedule events (e.g. termination pills) — scheduling keeps run()
  /// going regardless of the returned flag.
  using BarrierHook = std::function<bool()>;

  /// Drive all shards until every queue drains and the hook (if any) has
  /// declared the workload complete.
  void run(BarrierHook hook = {});

  /// Aggregate counters (window stalls are kept per-shard so threaded
  /// stepping races on nothing; summed here).
  ShardedStats stats() const;
  /// Total events executed across every shard's queue.
  std::uint64_t executed() const;
  /// One shard's can_post() refusal count (per-link timeline series).
  std::uint64_t shard_window_stalls(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].window_stalls;
  }
  /// One shard's partition refusals (fault plane, per-shard series).
  std::uint64_t shard_partition_stalls(int shard) const {
    return shards_[static_cast<std::size_t>(shard)].partition_stalls;
  }

  /// Trace sink for barrier epochs (pid = shards(), the synthetic barrier
  /// process): one B/E span per lookahead window, [t_min, horizon]. Written
  /// only on the coordinator thread between epochs.
  void set_trace(obs::TraceBuffer* tb) { trace_ = tb; }

 private:
  struct OutMsg {
    Tick arrival;
    std::uint64_t seq;  ///< Per-source post counter (exchange tie-break).
    int dst;
    EventFn fn;
  };
  struct Shard {
    EventQueue* eq = nullptr;
    std::vector<OutMsg> outbox;      ///< Single-writer: only shard code posts.
    std::uint64_t next_seq = 0;
    std::uint64_t window_stalls = 0;
    std::uint64_t partition_stalls = 0;  ///< Refusals on a down link.
  };
  struct Pool;  // persistent worker threads for threads_ > 1

  void exchange();
  void step_all(Tick horizon);

  Tick lookahead_;
  int threads_;
  std::uint32_t link_window_ = 0;
  std::vector<Shard> shards_;
  std::vector<std::uint32_t> in_flight_;  ///< S*S per-epoch link counters.
  // Per-link fault table (S*S), written only at the barrier, read by shard
  // code during the epoch — immutable within any epoch by contract.
  std::vector<Tick> link_extra_;
  std::vector<std::uint8_t> link_down_;
  bool any_link_fault_ = false;  ///< Fast path: skip lookups when clean.
  ShardedStats stats_;
  std::unique_ptr<Pool> pool_;
  obs::TraceBuffer* trace_ = nullptr;
};

}  // namespace vl::sim
