#pragma once
// System configuration mirroring the paper's Table III gem5 setup:
//
//   Cores   16x AArch64 OoO @ 2 GHz
//   Caches  32 KiB private 2-way L1D, 1 MiB shared 16-way L2 (LLC here)
//   Memory  8 GiB DDR4-2400
//   VLRD    64 entries per prodBuf / consBuf / linkTab (~5 KiB)
//
// One tick == one 2 GHz core cycle (0.5 ns). Latencies are typical values
// for this class of SoC; absolute numbers differ from the authors' testbed
// but the relative costs (L1 << LLC << DRAM, lock round-trips ~ O(100)
// cycles under contention) are what the experiments exercise.

#include <cstdint>

#include "common/types.hpp"

namespace vl::sim {

struct CoreConfig {
  Tick issue_cost = 1;         ///< Port occupancy per issued memory op.
  Tick ctx_switch_cost = 1000; ///< Cycles to swap software threads on a core.
  Tick atomic_extra = 4;       ///< Extra ALU cycles for an RMW op.
  /// Scheduling timeslice: a non-resident thread's op waits until the
  /// resident thread has been on the core this long before forcing the
  /// context switch. Without it, two threads polling on one core would
  /// alternate (and pay ctx_switch_cost) on *every* op — real timeslices
  /// span many instructions, which is what lets a VL select+fetch and the
  /// subsequent injection land inside one residency (§ III-B).
  Tick sched_quantum = 5000;
};

/// Coherence protocol variant (ablation): MESI (the default, matching the
/// paper's gem5 setup) or MOESI, whose Owned state lets a dirty line be
/// shared without the LLC writeback MESI pays on every read-snoop of a
/// Modified line — cheaper producer-written/consumer-read traffic.
enum class Protocol { kMesi, kMoesi };

struct CacheConfig {
  Protocol protocol = Protocol::kMesi;
  std::uint32_t l1_size = 32 * 1024;
  std::uint32_t l1_assoc = 2;
  std::uint32_t llc_size = 1024 * 1024;
  std::uint32_t llc_assoc = 16;

  Tick l1_hit = 2;        ///< L1D hit latency (cycles).
  Tick llc_hit = 20;      ///< Shared L2/LLC access latency.
  Tick c2c_transfer = 36; ///< Dirty-line transfer between private caches.
  Tick snoop_cost = 8;    ///< Added bus cycles when a snoop must be resolved.
  Tick bus_hop = 7;       ///< One direction across the coherence network.
  Tick dram_lat = 160;    ///< DRAM access latency (row-hit average).
  Tick dram_gap = 8;      ///< Minimum spacing between DRAM bursts
                          ///< (bandwidth model: 64 B / gap).
};

/// How endpoint device addresses resolve to (device, SQI) — § III-C2.
enum class Addressing {
  kBitField,   ///< Fig. 9: SQI carved from the PA bit fields (default).
  kAddrTable,  ///< CAM routing table populated on mmap; +1 pipeline cycle,
               ///< but compact PA-window usage and arbitrary addresses.
};

/// How the VLRD tracks which buffer entries belong to which SQI — the
/// § III-A design trade-off ("LL is more scalable for large VLRDs").
enum class BufferMgmt {
  kLinkedList,  ///< Paper design: per-SQI hardware linked lists; O(1) per
                ///< pipeline op and FIFO arrival order preserved.
  kBitvector,   ///< Alternative: per-op scan of the whole buffer through a
                ///< 64-wide priority encoder; cost grows with buffer size
                ///< and arrival order degrades to lowest-index-first.
};

struct VlrdConfig {
  std::uint32_t prod_entries = 64;  ///< prodBuf rows (Table III).
  std::uint32_t cons_entries = 64;  ///< consBuf rows.
  std::uint32_t link_entries = 64;  ///< linkTab rows (max live SQIs).
  std::uint32_t num_devices = 1;    ///< Routing devices (Fig. 9 bits J:N+1).
  Tick device_lat = 14;   ///< Core -> VLRD round trip (paper: ~14 cycles).
  Tick inject_lat = 24;   ///< VLRD -> consumer L1 stash latency.
  bool ideal = false;     ///< VL(ideal): infinite buffers, zero latency.

  Addressing addressing = Addressing::kBitField;
  std::uint32_t addr_table_capacity = 256;  ///< CAM rows (kAddrTable).
  Tick addr_table_extra = 1;  ///< Extra pipeline cycle per op (kAddrTable).

  BufferMgmt buffer_mgmt = BufferMgmt::kLinkedList;

  /// § III-A trade-off 1: the IN partitions decouple bus I/O from the
  /// mapping pipeline so packet bursts can be buffered. With coupling
  /// (true), the device "accepts one packet per clock cycle": an arrival
  /// is NACKed whenever the pipeline already has work in flight.
  bool coupled_io = false;

  /// § V (CAF contrast): the paper's VLRD shares prodBuf across all SQIs,
  /// which lets one hog queue starve the rest; CAF instead partitions
  /// buffers with credit management for QoS. A nonzero quota bounds how
  /// many prodBuf entries any single SQI may occupy (0 = shared, the
  /// paper's design). The QoS ablation quantifies the isolation trade.
  std::uint32_t per_sqi_quota = 0;

  /// Per-class prodBuf quota, indexed by QosClass: bounds how many prodBuf
  /// entries messages of one service class may occupy *within each SQI*
  /// (0 = unlimited, the default). The class of an arriving line is carried
  /// in the reserved byte of its Fig. 10 control region, so the device
  /// needs no out-of-band tenant state. With weighted quotas, a bulk flood
  /// is NACKed early and the buffer keeps headroom for latency-class
  /// traffic sharing the same SQI.
  std::uint32_t class_quota[kQosClasses] = {0, 0, 0};
};

/// CAF queue-management-device knobs (squeue/caf.hpp). The per-class caps
/// mirror the CAF paper's credit management for QoS: class c may occupy at
/// most class_credits[c] of a queue's credit budget (0 = uncapped). All
/// zeros (the default) reproduces the plain fixed-budget device.
struct CafConfig {
  std::uint32_t credits_per_queue = 64;
  std::uint32_t class_credits[kQosClasses] = {0, 0, 0};
};

/// ZMQ-model retry/backoff knobs (squeue/zmq.cpp). The defaults reproduce
/// the previously hard-coded constants bit-for-bit, so existing runs stay
/// byte-identical; fault/supervisor experiments tighten or ablate them
/// (e.g. jitter off re-exposes the deterministic phase-lock livelock the
/// jitter exists to break).
struct ZmqConfig {
  Tick backoff_base = 8;            ///< Base lock-spin backoff (was kSpinBackoff).
  std::uint32_t backoff_cap = 16;   ///< Jitter window modulus (attempt % cap).
  bool backoff_jitter = true;       ///< Mix per-thread/per-attempt jitter in.
  int lock_spin_rounds = 4;         ///< Bounded spin before parking.
};

struct SystemConfig {
  std::uint32_t num_cores = 16;
  double ns_per_tick = 0.5;  ///< 2 GHz.
  CoreConfig core;
  CacheConfig cache;
  VlrdConfig vlrd;
  CafConfig caf;
  ZmqConfig zmq;

  static SystemConfig table3() { return SystemConfig{}; }

  /// Table III machine with `n` routing devices (multi-VLRD ablation).
  static SystemConfig table3_multi(std::uint32_t n) {
    SystemConfig c;
    c.vlrd.num_devices = n;
    return c;
  }

  /// VL(ideal) variant used in Fig. 11/12: infinite capacity, free transfers.
  static SystemConfig table3_ideal() {
    SystemConfig c;
    c.vlrd.ideal = true;
    c.vlrd.prod_entries = 1u << 20;
    c.vlrd.cons_entries = 1u << 20;
    c.vlrd.device_lat = 0;
    c.vlrd.inject_lat = 0;
    return c;
  }
};

}  // namespace vl::sim
