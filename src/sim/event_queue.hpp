#pragma once
// Discrete-event simulation kernel.
//
// A single EventQueue provides the global simulated timeline. Events are
// (tick, sequence) ordered, so two events scheduled for the same tick fire
// in scheduling order — this makes every simulation run fully deterministic.
//
// The implementation is allocation-light:
//
//   * EventFn is a move-only callable with a 96-byte small-buffer: every
//     callback the simulator schedules (coroutine resumes, memory-commit
//     lambdas, device completions) fits inline, so the steady-state event
//     loop performs no heap allocation per event. Oversized callables fall
//     back to the heap transparently.
//   * Near-future events (the overwhelming majority: issue costs, cache
//     latencies, backoffs, context switches) land in a calendar ring of
//     per-tick buckets covering [now, now + 8192). Scheduling and firing
//     are O(1); a two-level occupancy bitmap skips empty ticks in O(1).
//     Bucket vectors are recycled, so their capacity amortises to zero
//     allocations.
//   * Events beyond the ring horizon sit in a small binary min-heap and
//     are merged (by sequence number, preserving global FIFO-per-tick
//     order) into their bucket when the clock reaches them.

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <new>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace vl::obs {
class TraceBuffer;
}

namespace vl::sim {

/// Move-only, fire-once callable with small-buffer storage sized for the
/// simulator's hottest capture set (a MemRequest + completion functor).
class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 96;

  EventFn() noexcept = default;

  template <class F, class D = std::decay_t<F>,
            std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                 std::is_invocable_v<D&>,
                             int> = 0>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      vt_ = &kInlineVt<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      vt_ = &kHeapVt<D>;
    }
  }

  EventFn(EventFn&& o) noexcept { steal(o); }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      steal(o);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  void operator()() {
    assert(vt_ && "invoking an empty EventFn");
    vt_->invoke(buf_);
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-construct the payload into `to` and destroy it in `from`.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void*);
  };

  template <class D>
  inline static const VTable kInlineVt{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* from, void* to) {
        D* f = static_cast<D*>(from);
        ::new (to) D(std::move(*f));
        f->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };

  template <class D>
  inline static const VTable kHeapVt{
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* from, void* to) {
        ::new (to) D*(*static_cast<D**>(from));
      },
      [](void* p) { delete *static_cast<D**>(p); },
  };

  void steal(EventFn& o) noexcept {
    if (o.vt_) {
      o.vt_->relocate(o.buf_, buf_);
      vt_ = std::exchange(o.vt_, nullptr);
    }
  }
  void reset() noexcept {
    if (vt_) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

class EventQueue {
 public:
  using Fn = EventFn;

  EventQueue();

  Tick now() const { return now_; }

  /// Schedule fn at absolute tick `when` (must be >= now()).
  void schedule_at(Tick when, Fn fn);

  /// Schedule fn `delta` ticks from now.
  void schedule_in(Tick delta, Fn fn) { schedule_at(now_ + delta, std::move(fn)); }

  /// Run one event; returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `limit` events have fired.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);

  /// Run until simulated time reaches `t` (events at t still fire) or the
  /// queue drains.
  void run_until(Tick t);

  bool empty() const { return size_ == 0; }
  std::size_t pending() const { return size_; }

  /// Earliest tick (>= now()) holding a pending event, or nullopt when the
  /// queue is empty. Fires nothing (it may retire an internally drained
  /// bucket) — the sharded stepper's safe-horizon probe (sim/sharded.hpp).
  std::optional<Tick> peek_next_tick() { return next_event_tick(); }

  /// Total events executed over the queue's lifetime (throughput metric).
  std::uint64_t executed() const { return executed_; }

#ifndef VL_OBS_NO_TRACE
  /// Trace sink for everything running on this queue's timeline (SimThread
  /// parks, channel bursts, VLRD pipeline). Null unless tracing was
  /// requested; hooks test the pointer and skip. With -DVL_OBS_NO_TRACE=ON
  /// trace() is constexpr nullptr and every hook compiles away.
  obs::TraceBuffer* trace() const { return trace_; }
  void set_trace(obs::TraceBuffer* tb) { trace_ = tb; }
#else
  static constexpr obs::TraceBuffer* trace() { return nullptr; }
  static constexpr void set_trace(obs::TraceBuffer*) {}
#endif

 private:
  // Calendar ring: one bucket per tick over [now, now + kRingSize).
  static constexpr std::size_t kRingBits = 13;
  static constexpr std::size_t kRingSize = std::size_t{1} << kRingBits;
  static constexpr std::size_t kRingMask = kRingSize - 1;

  struct Ev {
    std::uint64_t seq;
    EventFn fn;
  };
  struct Bucket {
    std::vector<Ev> evs;       // seq-ascending (append order)
    std::size_t cursor = 0;    // next event to fire
  };
  struct FarEv {
    Tick when;
    std::uint64_t seq;
    EventFn fn;
  };
  struct FarAfter {  // min-heap ordering on (when, seq)
    bool operator()(const FarEv& a, const FarEv& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  void set_bit(std::size_t i) { bits_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void clear_bit(std::size_t i) {
    bits_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  /// Earliest tick with a pending event, retiring the current bucket if it
  /// has been fully drained. nullopt when nothing is pending anywhere.
  std::optional<Tick> next_event_tick();
  /// Bitmap scan for the earliest occupied ring tick at or after now_.
  std::optional<Tick> next_ring_tick() const;
  /// Merge far-heap events due at tick `t` into its bucket, by seq.
  void migrate_far(Tick t);

  Tick now_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t size_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Bucket> ring_;
  std::array<std::uint64_t, kRingSize / 64> bits_{};
  std::vector<FarEv> far_;  // binary heap under FarAfter
#ifndef VL_OBS_NO_TRACE
  obs::TraceBuffer* trace_ = nullptr;
#endif
};

}  // namespace vl::sim
