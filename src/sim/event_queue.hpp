#pragma once
// Discrete-event simulation kernel.
//
// A single EventQueue provides the global simulated timeline. Events are
// (tick, sequence) ordered, so two events scheduled for the same tick fire
// in scheduling order — this makes every simulation run fully deterministic.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hpp"

namespace vl::sim {

class EventQueue {
 public:
  using Fn = std::function<void()>;

  Tick now() const { return now_; }

  /// Schedule fn at absolute tick `when` (must be >= now()).
  void schedule_at(Tick when, Fn fn);

  /// Schedule fn `delta` ticks from now.
  void schedule_in(Tick delta, Fn fn) { schedule_at(now_ + delta, std::move(fn)); }

  /// Run one event; returns false when the queue is empty.
  bool step();

  /// Run until the queue drains or `limit` events have fired.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);

  /// Run until simulated time reaches `t` (events at t still fire) or the
  /// queue drains.
  void run_until(Tick t);

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Ev {
    Tick when;
    std::uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  Tick now_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Ev, std::vector<Ev>, Later> heap_;
};

}  // namespace vl::sim
