#pragma once
// Abstract memory interface between the core model and the cache hierarchy.
//
// The core issues a request and receives a completion callback at the tick
// the operation commits. Functional effects (the actual data update) happen
// at commit time inside the hierarchy, which — because the event loop is
// single-threaded — gives exact sequential-consistency semantics across
// simulated cores while the MESI model provides the timing and the
// coherence-event counters.

#include <cstdint>
#include <functional>

#include "common/types.hpp"

namespace vl::sim {

enum class MemOp : std::uint8_t {
  kLoad,       ///< Load `size` bytes, result in MemResult::value.
  kStore,      ///< Store `size` bytes of `arg0`.
  kCas64,      ///< Compare-and-swap 8 B: expected=arg0, desired=arg1.
  kFetchAdd64, ///< Atomic fetch-add 8 B: delta=arg0, returns old value.
  kSwap64,     ///< Atomic exchange 8 B: new=arg0, returns old value.
  kLoadLine,   ///< Copy a whole 64 B line into `buf`.
  kStoreLine,  ///< Copy a whole 64 B line from `buf`.
};

struct MemRequest {
  MemOp op;
  Addr addr = 0;
  unsigned size = 8;          // 1/2/4/8 for scalar ops
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  void* buf = nullptr;        // for line ops
  CoreId core = 0;
};

struct MemResult {
  std::uint64_t value = 0;  ///< Loaded / old value for RMW ops.
  bool ok = true;           ///< CAS success flag.
};

class MemoryPort {
 public:
  virtual ~MemoryPort() = default;
  /// Issue a request; `done` fires exactly once, at the commit tick.
  virtual void issue(const MemRequest& req,
                     std::function<void(MemResult)> done) = 0;
};

}  // namespace vl::sim
