#include "sim/core.hpp"

namespace vl::sim {

Co<void> Core::acquire_port(int tid) {
  for (;;) {
    co_await port_.lock();
    if (resident_ == tid) co_return;
    if (resident_ == -1) {
      resident_ = tid;
      resident_since_ = eq_.now();
      co_return;
    }
    // Another thread is resident: it keeps the core until its timeslice
    // expires (otherwise two polling threads would context-switch on every
    // op). Release the port while waiting so the resident thread can run.
    const Tick slice_end = resident_since_ + cfg_.sched_quantum;
    if (eq_.now() < slice_end) {
      port_.unlock();
      co_await DelayUntil(eq_, slice_end);
      continue;
    }
    ++ctx_switches_;
    for (auto& h : hooks_) h(resident_, tid);
    resident_ = tid;
    resident_since_ = eq_.now();
    co_await Delay(eq_, cfg_.ctx_switch_cost);
    co_return;
  }
}

Co<MemResult> Core::issue(int tid, MemRequest req) {
  co_await acquire_port(tid);
  co_await Delay(eq_, cfg_.issue_cost);
  req.core = id_;
  AsyncOp<MemResult> op;
  mem_.issue(req, [&op](MemResult r) { op.complete(r); });
  MemResult r = co_await op;
  release_port();
  co_return r;
}

Co<void> Core::compute(int tid, std::uint64_t cycles) {
  co_await acquire_port(tid);
  co_await Delay(eq_, cycles);
  release_port();
}

Co<std::uint64_t> Core::load(int tid, Addr a, unsigned size) {
  MemResult r = co_await issue(tid, {MemOp::kLoad, a, size, 0, 0, nullptr, id_});
  co_return r.value;
}

Co<void> Core::store(int tid, Addr a, std::uint64_t v, unsigned size) {
  co_await issue(tid, {MemOp::kStore, a, size, v, 0, nullptr, id_});
}

Co<bool> Core::cas64(int tid, Addr a, std::uint64_t expected,
                     std::uint64_t desired) {
  MemRequest req{MemOp::kCas64, a, 8, expected, desired, nullptr, id_};
  co_await Delay(eq_, cfg_.atomic_extra);
  MemResult r = co_await issue(tid, req);
  co_return r.ok;
}

Co<std::uint64_t> Core::fetch_add64(int tid, Addr a, std::uint64_t delta) {
  MemRequest req{MemOp::kFetchAdd64, a, 8, delta, 0, nullptr, id_};
  co_await Delay(eq_, cfg_.atomic_extra);
  MemResult r = co_await issue(tid, req);
  co_return r.value;
}

Co<std::uint64_t> Core::swap64(int tid, Addr a, std::uint64_t v) {
  MemRequest req{MemOp::kSwap64, a, 8, v, 0, nullptr, id_};
  co_await Delay(eq_, cfg_.atomic_extra);
  MemResult r = co_await issue(tid, req);
  co_return r.value;
}

Co<void> Core::load_line(int tid, Addr a, void* out) {
  co_await issue(tid, {MemOp::kLoadLine, a, 64, 0, 0, out, id_});
}

Co<void> Core::store_line(int tid, Addr a, const void* in) {
  co_await issue(tid,
                 {MemOp::kStoreLine, a, 64, 0, 0, const_cast<void*>(in), id_});
}

}  // namespace vl::sim
