#include "sim/core.hpp"

#include "obs/tracer.hpp"

namespace vl::sim {

// --- run-queue scheduling ----------------------------------------------------
//
// Invariants:
//   * port_busy_ is true exactly while one op holds the issue port.
//   * resident_ names the thread whose architectural state is on the core
//     (hooks/ctx cost fire only when it changes); resident_blocked_ marks a
//     resident that parked and donated its slice.
//   * run_queue_ holds suspended acquire_port() callers, FIFO.
//   * Grants always resume through the EventQueue (never inline), so
//     scheduling order is deterministic and re-entrancy free.

bool Core::try_acquire_now(int tid) {
  if (port_busy_) return false;
  if (resident_ == tid) {
    // The resident keeps the core between its own ops inside its slice.
    // Once the slice expired and someone is queued, it must requeue.
    if (!run_queue_.empty() && (!within_slice() || resident_blocked_))
      return false;
    resident_blocked_ = false;
    port_busy_ = true;
    return true;
  }
  if (resident_ == -1 && run_queue_.empty()) {
    resident_ = tid;  // first occupant: free, like the original model
    resident_since_ = eq_.now();
    port_busy_ = true;
    return true;
  }
  return false;
}

void Core::enqueue_waiter(int tid, std::coroutine_handle<> h) {
  run_queue_.push_back(PortWaiter{tid, h});
  maybe_grant();
}

void Core::yield(int tid) {
  if (resident_ != tid) return;
  assert(!port_busy_ && "cannot yield while an op holds the issue port");
  ++yields_;
  resident_blocked_ = true;
  maybe_grant();
}

void Core::maybe_grant() {
  if (port_busy_ || run_queue_.empty()) return;
  const PortWaiter& w = run_queue_.front();
  if (resident_ != -1 && resident_ != w.tid && !resident_blocked_ &&
      within_slice()) {
    // Resident still owns its slice: the backstop timer preempts at its
    // end (the next release_port() past that point also grants).
    arm_preempt_timer(resident_since_ + cfg_.sched_quantum);
    return;
  }
  grant_front();
}

void Core::grant_front() {
  PortWaiter w = run_queue_.front();
  run_queue_.pop_front();
  port_busy_ = true;
  Tick cost = 0;
  if (resident_ != w.tid) {
    if (resident_ != -1) {
      ++ctx_switches_;
      for (auto& h : hooks_) h(resident_, w.tid);
      cost = cfg_.ctx_switch_cost;
    }
    resident_ = w.tid;
    resident_since_ = eq_.now();
  }
  resident_blocked_ = false;
  const auto h = w.h;
  eq_.schedule_in(cost, [h] { h.resume(); });
}

void Core::arm_preempt_timer(Tick when) {
  if (preempt_armed_) return;
  preempt_armed_ = true;
  eq_.schedule_at(when, [this] {
    preempt_armed_ = false;
    maybe_grant();
  });
}

Co<void> SimThread::park(WaitQueue& wq, std::uint64_t expected) const {
  if (wq.epoch() != expected) co_return;  // wake already happened
  EventQueue& eq = core->eq();
  obs::TraceBuffer* const tb = eq.trace();
  const std::uint32_t lane = obs::thread_tid(core->id(), tid);
  if (tb) tb->begin(eq.now(), lane, "sim", "park");
  core->yield(tid);
  co_await wq.park(expected);
  if (tb) tb->end(eq.now(), lane, "sim", "park");
}

Co<void> SimThread::acquire_credits(CreditGate& g, std::uint64_t want) const {
  if (g.try_acquire(want)) co_return;
  EventQueue& eq = core->eq();
  obs::TraceBuffer* const tb = eq.trace();
  const std::uint32_t lane = obs::thread_tid(core->id(), tid);
  if (tb) tb->begin(eq.now(), lane, "sim", "credit_wait", "want", want);
  core->yield(tid);
  co_await g.acquire(want);
  if (tb) tb->end(eq.now(), lane, "sim", "credit_wait");
}

Co<std::size_t> SimThread::park_any(
    std::span<WaitQueue* const> wqs,
    std::span<const std::uint64_t> gates) const {
  // Fall through without yielding when a wake already landed on any queue.
  for (std::size_t i = 0; i < wqs.size(); ++i)
    if (wqs[i]->epoch() != gates[i]) co_return i;
  EventQueue& eq = core->eq();
  obs::TraceBuffer* const tb = eq.trace();
  const std::uint32_t lane = obs::thread_tid(core->id(), tid);
  if (tb) tb->begin(eq.now(), lane, "sim", "park_any", "n", wqs.size());
  core->yield(tid);
  const std::size_t idx = co_await ParkAny(wqs, gates);
  if (tb) tb->end(eq.now(), lane, "sim", "park_any");
  co_return idx;
}

// --- operations --------------------------------------------------------------

Co<MemResult> Core::issue(int tid, MemRequest req) {
  co_await acquire_port(tid);
  co_await Delay(eq_, cfg_.issue_cost);
  req.core = id_;
  AsyncOp<MemResult> op;
  mem_.issue(req, [&op](MemResult r) { op.complete(r); });
  MemResult r = co_await op;
  release_port();
  co_return r;
}

Co<void> Core::compute(int tid, std::uint64_t cycles) {
  co_await acquire_port(tid);
  co_await Delay(eq_, cycles);
  release_port();
}

Co<std::uint64_t> Core::load(int tid, Addr a, unsigned size) {
  MemResult r = co_await issue(tid, {MemOp::kLoad, a, size, 0, 0, nullptr, id_});
  co_return r.value;
}

Co<void> Core::store(int tid, Addr a, std::uint64_t v, unsigned size) {
  co_await issue(tid, {MemOp::kStore, a, size, v, 0, nullptr, id_});
}

Co<bool> Core::cas64(int tid, Addr a, std::uint64_t expected,
                     std::uint64_t desired) {
  MemRequest req{MemOp::kCas64, a, 8, expected, desired, nullptr, id_};
  co_await Delay(eq_, cfg_.atomic_extra);
  MemResult r = co_await issue(tid, req);
  co_return r.ok;
}

Co<std::uint64_t> Core::fetch_add64(int tid, Addr a, std::uint64_t delta) {
  MemRequest req{MemOp::kFetchAdd64, a, 8, delta, 0, nullptr, id_};
  co_await Delay(eq_, cfg_.atomic_extra);
  MemResult r = co_await issue(tid, req);
  co_return r.value;
}

Co<std::uint64_t> Core::swap64(int tid, Addr a, std::uint64_t v) {
  MemRequest req{MemOp::kSwap64, a, 8, v, 0, nullptr, id_};
  co_await Delay(eq_, cfg_.atomic_extra);
  MemResult r = co_await issue(tid, req);
  co_return r.value;
}

Co<void> Core::load_line(int tid, Addr a, void* out) {
  co_await issue(tid, {MemOp::kLoadLine, a, 64, 0, 0, out, id_});
}

Co<void> Core::store_line(int tid, Addr a, const void* in) {
  co_await issue(tid,
                 {MemOp::kStoreLine, a, 64, 0, 0, const_cast<void*>(in), id_});
}

}  // namespace vl::sim
