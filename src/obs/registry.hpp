#pragma once
// Telemetry registry: the counter tables every component publishes into and
// every consumer (timeline sampler, CSV export, the planned QoS supervisor)
// reads out of — the sonic-swss orchagent counter-table shape, specialised
// to the simulator.
//
// Three kinds of entries, all read out uniformly by name:
//
//   * owned counters  — Counter cells allocated by the registry. Handles
//     are pointer-stable (deque-backed: registering more counters never
//     moves an existing cell), so a hot path holds the Counter& once and
//     every increment is a single relaxed atomic add — no map lookup, no
//     lock, no string hashing. Relaxed is sufficient: within one shard the
//     event loop is single-threaded, and under ShardedSim's threaded
//     stepping each shard only ever touches its own registry; the barrier
//     (a mutex hand-off) orders the reads.
//   * links           — read-only views over counters that already live as
//     plain struct fields in device/kernel code (VlrdStats, MemStats, the
//     EventQueue's executed counter). Those hot paths already increment a
//     plain field; linking makes the value registry-visible without moving
//     it or adding a second write.
//   * gauges          — closures evaluated at snapshot time, for derived or
//     aggregated values (cluster-total device stats, per-class occupancy).
//
// Snapshots export as vl::StatSet, so everything downstream of a snapshot —
// diff around a region of interest, merge across shards, to_string — is the
// existing StatSet machinery. StatSet is thereby demoted to what it is good
// at (a cold snapshot/diff/merge view over a std::map); the registry is the
// layer hot paths and pollers talk to. Per-shard registries merge post-join
// exactly like the sharded engine's other counters: snapshot each shard,
// StatSet::merge the snapshots.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "common/stats.hpp"

namespace vl::obs {

/// A pointer-stable monotonic counter cell. Hot paths hold the reference
/// and pay one relaxed add per increment.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Registry {
 public:
  /// Owned counter handle for `name` (hierarchical dot-separated names by
  /// convention: "vlrd.push_nacks"). Idempotent: re-registering a name
  /// returns the same cell. The reference stays valid for the registry's
  /// lifetime regardless of later registrations.
  Counter& counter(const std::string& name);

  /// Registry-visible view over an existing 64-bit counter field. The
  /// referent must outlive the registry or be dropped via clear_readers().
  void link(const std::string& name, const std::uint64_t* src);
  /// Same, over a 32-bit field (CAF occupancy arrays and friends).
  void link32(const std::string& name, const std::uint32_t* src);

  /// Derived value, evaluated at read/snapshot time.
  void gauge(const std::string& name, std::function<std::uint64_t()> fn);

  /// Read one entry by name (0 for unknown names). Cold path.
  std::uint64_t value(const std::string& name) const;
  bool contains(const std::string& name) const {
    return index_.count(name) != 0;
  }
  std::size_t size() const { return index_.size(); }

  /// Snapshot every entry into a StatSet (names prefixed with `prefix`) —
  /// the diff/merge/to_string view. Deterministic: StatSet's map orders by
  /// name regardless of registration order.
  StatSet snapshot(const std::string& prefix = {}) const;
  /// Merge a snapshot into an existing set (per-shard post-join fold).
  void merge_into(StatSet& out, const std::string& prefix = {}) const;

  /// Drop every link and gauge (owned counters stay). Call when referents
  /// (a run's context, a dead machine) are about to go away while the
  /// registry itself lives on.
  void clear_readers();

 private:
  struct Entry {
    Counter* owned = nullptr;
    const std::uint64_t* link64 = nullptr;
    const std::uint32_t* link32 = nullptr;
    std::function<std::uint64_t()> fn;
    std::uint64_t read() const;
  };

  std::deque<Counter> cells_;  // deque: growth never moves existing cells
  std::map<std::string, Entry> index_;
};

}  // namespace vl::obs
