#include "obs/timeline.hpp"

#include <cstdio>
#include <cstring>

namespace vl::obs {

namespace {

// Matches metrics.cpp's fmt_double: fixed 3 decimals, trailing zeros kept,
// so timeline CSV values diff cleanly against ScenarioMetrics CSV values.
std::string fmt_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

void Timeline::add_series(std::string name, std::function<double()> fn) {
  names_.push_back(std::move(name));
  series_.push_back(std::move(fn));
}

void Timeline::sample(Tick tick) {
  Epoch e;
  e.index = next_index_++;
  e.tick = tick;
  e.values.reserve(series_.size());
  for (auto& fn : series_) e.values.push_back(fn ? fn() : 0.0);
  ring_.push_back(std::move(e));
  if (ring_.size() > cap_) {
    if (auto_coarsen_) {
      // Halve the retained history instead of evicting the oldest epoch:
      // keep every other stored epoch, parity anchored at the back so the
      // newest sample (what last() reads) always survives. Repeated
      // halvings yield full-run coverage at cadence x 2^coarsenings.
      std::deque<Epoch> kept;
      const std::size_t n = ring_.size();
      for (std::size_t i = 0; i < n; ++i)
        if ((n - 1 - i) % 2 == 0) kept.push_back(std::move(ring_[i]));
      ring_ = std::move(kept);
      ++coarsenings_;
    } else {
      ring_.pop_front();
      ++dropped_;
    }
  }
}

void Timeline::detach() {
  for (auto& fn : series_) fn = nullptr;
}

double Timeline::last(const std::string& name) const {
  if (ring_.empty()) return 0.0;
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (names_[i] == name) return ring_.back().values[i];
  return 0.0;
}

std::string Timeline::csv() const {
  std::string out = "epoch,tick,series,value\n";
  for (const Epoch& e : ring_) {
    for (std::size_t i = 0; i < names_.size(); ++i) {
      out += std::to_string(e.index);
      out += ',';
      out += std::to_string(e.tick);
      out += ',';
      out += names_[i];
      out += ',';
      out += fmt_value(e.values[i]);
      out += '\n';
    }
  }
  return out;
}

std::string Timeline::json() const {
  std::string out = "{\n  \"series\": [";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (i) out += ", ";
    out += '"';
    out += names_[i];
    out += '"';
  }
  out += "],\n  \"dropped\": " + std::to_string(dropped_);
  out += ",\n  \"epochs\": [\n";
  bool first = true;
  for (const Epoch& e : ring_) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"epoch\": " + std::to_string(e.index) +
           ", \"tick\": " + std::to_string(e.tick) + ", \"values\": [";
    for (std::size_t i = 0; i < e.values.size(); ++i) {
      if (i) out += ", ";
      out += fmt_value(e.values[i]);
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool Timeline::write(const std::string& path) const {
  const bool as_json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string body = as_json ? json() : csv();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace vl::obs
