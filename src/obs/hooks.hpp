#pragma once
// Observability hook bundle passed into the traffic engines. Every pointer
// is optional; a default-constructed RunHooks (or nullptr) means "observe
// nothing" and the engines behave byte-identically to a build without obs.

#include "common/types.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"

namespace vl::replay {
class TraceRecorder;
}

namespace vl::obs {

struct RunHooks {
  /// Sampled every `sample_every` ticks (classic engine) or at every
  /// lookahead barrier (sharded engine), plus one final cumulative sample
  /// at end of run. Series are registered by the engine.
  Timeline* timeline = nullptr;
  Tick sample_every = 10000;

  /// Flag-gated Chrome-trace sink. The engine wires per-shard buffers into
  /// each EventQueue; hooks in sim/squeue/vlrd test the queue's pointer.
  Tracer* tracer = nullptr;

  /// Send-boundary trace tap (src/replay/): the engines call begin() with
  /// the run's shape and on_send() per message copy. Recording schedules
  /// nothing — runs stay byte-identical with it on or off.
  replay::TraceRecorder* recorder = nullptr;

  bool any() const { return timeline || tracer || recorder; }
};

}  // namespace vl::obs
