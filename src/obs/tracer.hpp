#pragma once
// Chrome-trace (chrome://tracing / Perfetto "Trace Event Format") tracer.
//
// Event model: duration begin/end pairs (ph "B"/"E") and instants (ph "i"),
// mapped onto the simulator as
//     pid = shard id (0 for the classic single-machine engine; the sharded
//           engine adds one synthetic pid past the last shard for barrier
//           epochs, named "barrier"),
//     tid = actor lane: core_id * kTidStride + sim-thread id for SimThreads
//           (unique per coroutine, so B/E spans nest correctly per lane),
//           or kDeviceTid for device-side events (VLRD pipeline),
//     ts  = simulated tick (1 "us" in the viewer = 1 tick).
//
// Determinism and threading: events are appended to per-shard TraceBuffers
// hung off each shard's EventQueue, written only while that shard steps —
// under ShardedSim's host-thread stepping each buffer stays single-writer,
// and within a shard events land in (tick, seq) execution order, so the
// serialized output is identical run-to-run and identical sequential vs
// threaded. The barrier buffer is written only at the single-threaded
// barrier. No locks, no sorting pass, no timestamps from the host clock.
//
// Overhead: hooks test a TraceBuffer* that is nullptr unless --trace is
// given; configuring with -DVL_OBS_NO_TRACE=ON compiles the pointer away
// entirely (EventQueue::trace() becomes constexpr nullptr and every hook
// folds to nothing).
//
// Strings: cat/name/arg_name are const char* and must be string literals
// (or otherwise outlive the tracer) — events store the pointer, not a copy,
// keeping the record trivially copyable and the hot path free of
// allocation.

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace vl::obs {

inline constexpr std::uint32_t kTidStride = 4096;  // tids per core lane block
inline constexpr std::uint32_t kDeviceTid = 0xD000;  // device-side events

/// Viewer lane for SimThread `tid` on core `core_id`.
inline std::uint32_t thread_tid(int core_id, int tid) {
  return static_cast<std::uint32_t>(core_id) * kTidStride +
         static_cast<std::uint32_t>(tid);
}

struct TraceEvent {
  Tick ts;
  std::uint32_t tid;
  char ph;               // 'B', 'E', or 'i'
  const char* cat;       // literal
  const char* name;      // literal
  const char* arg_name;  // literal or nullptr (no args)
  std::uint64_t arg;
};

/// Single-writer append-only event sink for one pid (shard).
class TraceBuffer {
 public:
  void begin(Tick ts, std::uint32_t tid, const char* cat, const char* name,
             const char* arg_name = nullptr, std::uint64_t arg = 0) {
    ev_.push_back({ts, tid, 'B', cat, name, arg_name, arg});
  }
  void end(Tick ts, std::uint32_t tid, const char* cat, const char* name) {
    ev_.push_back({ts, tid, 'E', cat, name, nullptr, 0});
  }
  void instant(Tick ts, std::uint32_t tid, const char* cat, const char* name,
               const char* arg_name = nullptr, std::uint64_t arg = 0) {
    ev_.push_back({ts, tid, 'i', cat, name, arg_name, arg});
  }

  std::size_t size() const { return ev_.size(); }
  const std::vector<TraceEvent>& events() const { return ev_; }

 private:
  std::vector<TraceEvent> ev_;
};

/// Owns one TraceBuffer per pid and serializes the whole set as Trace
/// Event Format JSON. All buffers must be created (buffer(pid) called)
/// before threaded stepping starts; after that, growth of the deque never
/// invalidates handed-out references and each buffer has one writer.
class Tracer {
 public:
  /// Buffer for `pid`, created on first use (with any intermediate pids).
  TraceBuffer& buffer(std::uint32_t pid);

  /// Viewer label for `pid` (emitted as a process_name metadata event).
  void set_process_name(std::uint32_t pid, std::string name);

  std::size_t total_events() const;

  /// Full trace document: {"traceEvents": [...], "displayTimeUnit": "ns"}.
  /// Events serialize buffer-by-buffer (pid order), each buffer already in
  /// execution order — the viewer sorts by ts itself; run-to-run output is
  /// byte-identical.
  std::string json() const;
  bool write(const std::string& path) const;

 private:
  std::deque<TraceBuffer> bufs_;  // deque: reference-stable growth
  std::vector<std::string> proc_names_;
};

}  // namespace vl::obs
