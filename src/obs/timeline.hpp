#pragma once
// Epoch time-series sampler: the time axis the end-of-run aggregates lack.
//
// Consumers register named series as closures over live counters/metrics
// (registry entries, TenantMetrics fields, device stats). sample(tick)
// evaluates every series once and appends one row per series into a bounded
// ring — when the ring fills, the oldest epoch is dropped and `dropped()`
// says so, so long runs degrade to "most recent window" instead of OOM.
//
// The sampler never touches the event queue: it neither schedules events
// nor consumes (tick, seq) numbers, so a sampled run replays the exact
// event sequence of an unsampled one. The engines call sample() from
// outside the data path — the classic engine from an external stepping
// loop between events, the sharded engine from the lookahead barrier
// (which is already a global synchronization point).
//
// Export is long format — epoch,tick,series,value — one row per
// (epoch, series), because downstream tools (pandas, gnuplot, the PR-8
// supervisor's decision log) pivot long data trivially while wide CSV
// would hard-code the series set into the header.

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace vl::obs {

class Timeline {
 public:
  /// `cap`: maximum retained epochs (oldest dropped beyond it).
  explicit Timeline(std::size_t cap = 4096) : cap_(cap ? cap : 1) {}

  /// Register a series. Values are doubles so percentile/attainment series
  /// fit next to integer counters. Registration order fixes column order
  /// in every epoch (deterministic output).
  void add_series(std::string name, std::function<double()> fn);

  std::size_t series_count() const { return series_.size(); }

  /// Evaluate every series at simulated time `tick` and append an epoch.
  void sample(Tick tick);

  /// Drop every series closure (retained samples stay). Call before the
  /// closed-over state (engine contexts, machines) is destroyed or moved.
  void detach();

  struct Epoch {
    std::uint64_t index;  // absolute epoch number, survives ring eviction
    Tick tick;
    std::vector<double> values;  // parallel to names()
  };

  /// On overflow, halve the retained history (drop every other stored
  /// epoch) instead of evicting the oldest: the ring then covers the whole
  /// run at a coarser effective cadence, which is what a plot or a
  /// post-hoc SLO analysis wants. dropped() stays 0 in this mode;
  /// coarsenings() counts the halvings (effective cadence is
  /// sample-every x 2^coarsenings).
  void set_auto_coarsen(bool on) { auto_coarsen_ = on; }
  std::uint64_t coarsenings() const { return coarsenings_; }

  std::size_t size() const { return ring_.size(); }
  const Epoch& at(std::size_t i) const { return ring_[i]; }
  std::uint64_t epochs() const { return next_index_; }   // total sampled
  std::uint64_t dropped() const { return dropped_; }     // evicted by cap
  const std::vector<std::string>& names() const { return names_; }

  /// Value of `name` in the most recent epoch (0 if never sampled or
  /// unknown). The determinism test uses this to check that the final
  /// epoch's cumulative series equal the end-of-run ScenarioMetrics.
  double last(const std::string& name) const;

  /// Long-format CSV: "epoch,tick,series,value\n" rows.
  std::string csv() const;
  /// JSON: {"series": [...], "epochs": [{"epoch":..,"tick":..,"values":[..]}]}
  std::string json() const;
  /// Write csv() or json() to `path`, picking by extension (".json" → JSON).
  bool write(const std::string& path) const;

 private:
  std::size_t cap_;
  std::vector<std::string> names_;
  std::vector<std::function<double()>> series_;
  std::deque<Epoch> ring_;
  std::uint64_t next_index_ = 0;
  std::uint64_t dropped_ = 0;
  bool auto_coarsen_ = false;
  std::uint64_t coarsenings_ = 0;
};

}  // namespace vl::obs
