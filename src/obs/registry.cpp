#include "obs/registry.hpp"

namespace vl::obs {

std::uint64_t Registry::Entry::read() const {
  if (owned) return owned->get();
  if (link64) return *link64;
  if (link32) return *link32;
  if (fn) return fn();
  return 0;
}

Counter& Registry::counter(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end() && it->second.owned) return *it->second.owned;
  Counter& c = cells_.emplace_back();
  Entry e;
  e.owned = &c;
  index_[name] = e;  // overwrite: an owned cell supersedes a reader entry
  return c;
}

void Registry::link(const std::string& name, const std::uint64_t* src) {
  Entry e;
  e.link64 = src;
  index_[name] = e;
}

void Registry::link32(const std::string& name, const std::uint32_t* src) {
  Entry e;
  e.link32 = src;
  index_[name] = e;
}

void Registry::gauge(const std::string& name,
                     std::function<std::uint64_t()> fn) {
  Entry e;
  e.fn = std::move(fn);
  index_[name] = std::move(e);
}

std::uint64_t Registry::value(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? 0 : it->second.read();
}

StatSet Registry::snapshot(const std::string& prefix) const {
  StatSet out;
  merge_into(out, prefix);
  return out;
}

void Registry::merge_into(StatSet& out, const std::string& prefix) const {
  for (const auto& [name, e] : index_) out.add(prefix + name, e.read());
}

void Registry::clear_readers() {
  for (auto it = index_.begin(); it != index_.end();) {
    if (it->second.owned) {
      ++it;
    } else {
      it = index_.erase(it);
    }
  }
}

}  // namespace vl::obs
