#include "obs/tracer.hpp"

#include <cstdio>

namespace vl::obs {

TraceBuffer& Tracer::buffer(std::uint32_t pid) {
  while (bufs_.size() <= pid) bufs_.emplace_back();
  return bufs_[pid];
}

void Tracer::set_process_name(std::uint32_t pid, std::string name) {
  if (proc_names_.size() <= pid) proc_names_.resize(pid + 1);
  proc_names_[pid] = std::move(name);
}

std::size_t Tracer::total_events() const {
  std::size_t n = 0;
  for (const auto& b : bufs_) n += b.size();
  return n;
}

std::string Tracer::json() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  for (std::uint32_t pid = 0; pid < proc_names_.size(); ++pid) {
    if (proc_names_[pid].empty()) continue;
    sep();
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" +
           proc_names_[pid] + "\"}}";
  }
  char buf[256];
  for (std::uint32_t pid = 0; pid < bufs_.size(); ++pid) {
    for (const TraceEvent& e : bufs_[pid].events()) {
      sep();
      if (e.ph == 'E') {
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"E\",\"pid\":%u,\"tid\":%u,\"ts\":%llu,"
                      "\"cat\":\"%s\",\"name\":\"%s\"}",
                      pid, e.tid, static_cast<unsigned long long>(e.ts),
                      e.cat, e.name);
      } else if (e.arg_name) {
        std::snprintf(
            buf, sizeof buf,
            "{\"ph\":\"%c\",\"pid\":%u,\"tid\":%u,\"ts\":%llu,"
            "\"cat\":\"%s\",\"name\":\"%s\"%s,\"args\":{\"%s\":%llu}}",
            e.ph, pid, e.tid, static_cast<unsigned long long>(e.ts), e.cat,
            e.name, e.ph == 'i' ? ",\"s\":\"t\"" : "", e.arg_name,
            static_cast<unsigned long long>(e.arg));
      } else {
        std::snprintf(buf, sizeof buf,
                      "{\"ph\":\"%c\",\"pid\":%u,\"tid\":%u,\"ts\":%llu,"
                      "\"cat\":\"%s\",\"name\":\"%s\"%s}",
                      e.ph, pid, e.tid,
                      static_cast<unsigned long long>(e.ts), e.cat, e.name,
                      e.ph == 'i' ? ",\"s\":\"t\"" : "");
      }
      out += buf;
    }
  }
  out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return out;
}

bool Tracer::write(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string body = json();
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace vl::obs
