// param-server (new, bsp-native): one parameter-server round per two
// supersteps over a star graph. Workers push gradients (queue sends) to
// the server; the server folds them into the model and broadcasts the new
// weight back with var puts — gradient push / weight pull, the classic
// data-parallel training loop. Convergecast-in, broadcast-out every round
// makes this the queue-mechanism stress the paper's incast and allreduce
// each show half of.
//
// Deterministic integer gradients give a closed-form final weight, checked
// both by every worker each round (the broadcast it just received) and by
// the harness at the end — identical on all five backends.

#include "bsp/world.hpp"
#include "workloads/runner.hpp"

namespace vl::workloads {

namespace {

using sim::Co;

constexpr int kPsWorkers = 8;
constexpr Tick kGradCompute = 25;  // per-round gradient computation
constexpr Tick kApplyCost = 4;     // server cost per applied gradient

// Worker w contributes w*31 + r in round r; the post-round weight is
// sum_{q<=r} sum_{w} (w*31 + q) = 1116*(r+1) + 4*r*(r+1) for 8 workers.
std::uint64_t expect_after(int r) {
  const auto rr = static_cast<std::uint64_t>(r);
  return 1116 * (rr + 1) + 4 * rr * (rr + 1);
}

Co<void> server(bsp::Proc& p, bsp::Queue grads, bsp::Var weight, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    co_await p.sync();  // gradients land
    std::uint64_t sum = 0;
    for (const bsp::QMsg& qm : p.inbox(grads)) sum += qm.w[0];
    co_await p.compute(p.inbox(grads).size(), kApplyCost);
    p.local(weight) += sum;
    for (int w = 1; w <= kPsWorkers; ++w) p.put(w, weight, p.local(weight));
    co_await p.sync();  // weight broadcast
  }
}

Co<void> worker(bsp::Proc& p, bsp::Queue grads, bsp::Var weight, int rounds,
                bool* ok) {
  for (int r = 0; r < rounds; ++r) {
    co_await p.compute(1, kGradCompute);
    p.send(0, grads,
           {static_cast<std::uint64_t>(p.id()) * 31 +
            static_cast<std::uint64_t>(r)});
    co_await p.sync();
    co_await p.sync();
    if (p.local(weight) != expect_after(r)) *ok = false;
  }
}

}  // namespace

WorkloadResult run_param_server(runtime::Machine& m,
                                squeue::ChannelFactory& f, int scale) {
  bsp::World w(m, f, bsp::Topology::star(1 + kPsWorkers), "ps", 64);
  const bsp::Queue grads = w.queue();
  const bsp::Var weight = w.var();
  const int rounds = 30 * scale;
  bool ok = true;

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  sim::spawn(server(w.proc(0), grads, weight, rounds));
  for (int pid = 1; pid <= kPsWorkers; ++pid)
    sim::spawn(worker(w.proc(pid), grads, weight, rounds, &ok));
  m.run();

  WorkloadResult r;
  r.workload = "param-server";
  r.backend = squeue::to_string(f.backend());
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = w.messages();  // 8 gradients + 8 weight puts per round
  r.mem = m.mem().stats().diff(mem0);
  r.vlrd = m.vlrd_stats();
  if (!ok || w.value(weight, 0) != expect_after(rounds - 1))
    r.workload += "!";
  return r;
}

namespace {
const WorkloadRegistrar kReg{
    {"param-server", 10,
     [](runtime::Machine& m, squeue::ChannelFactory& f, const RunConfig& rc) {
       return run_param_server(m, f, rc.scale);
     },
     nullptr, RunConfig{},
     "gradient push / weight broadcast on a 16-edge star (bsp::World)"}};
}  // namespace

}  // namespace vl::workloads
