#pragma once
// Benchmark workloads (paper Table II) over the backend-agnostic Channel
// API, plus the STREAM interference composite (Fig. 14).
//
//   ping-pong  data back and forth between two threads          (1:1) x2
//   halo       exchange with grid neighbours                    (1:1) x48
//   sweep      wavefront corner-to-corner (and back)            (1:1) x48
//   incast     15 producers -> 1 master                         (15:1) x1
//   FIR        32-stage filter pipeline, 2 threads/core         (1:1) x31
//   bitonic    master/worker bitonic sort                       (1:N)+(M:1)
//   pipeline   4-stage packet pipeline, 2 KiB payloads          (1:4)+(4:4)+(4:1)+(1:1)
//
// Every run builds a fresh Table III machine, executes the kernel, and
// reports simulated time plus coherence/DRAM/device counters.

#include <memory>

#include "runtime/machine.hpp"
#include "squeue/factory.hpp"
#include "workloads/result.hpp"

namespace vl::workloads {

enum class Kind {
  kPingPong,
  kHalo,
  kSweep,
  kIncast,
  kFir,
  kBitonic,
  kPipeline,
  kAllreduce,       // extension: tree reduce + broadcast
  kScatterGather,   // extension: fork/join rounds
};

const char* to_string(Kind k);

struct RunConfig {
  squeue::Backend backend = squeue::Backend::kBlfq;
  int scale = 1;            ///< Message-count multiplier (tests use small).
  int bitonic_workers = 15; ///< Worker threads for bitonic (Fig. 12 sweep).
};

/// Build a machine for `backend`, run the kernel, return measurements.
WorkloadResult run(Kind kind, const RunConfig& rc);

// Relay-cycle channel counts, exported by the kernels that consume one SQI
// while producing another (chained stages, fork/join relays). run() feeds
// them through runtime::size_quotas so the per-SQI prodBuf carve is derived
// from the kernel's actual channel graph — there is no hand-maintained
// count to drift when a kernel grows a stage.
std::uint32_t fir_channel_count();             ///< kStages-1 chained channels.
std::uint32_t pipeline_channel_count();        ///< c1+c2+per-S3-queues+credits.
std::uint32_t scatter_gather_channel_count();  ///< scatter + per-worker gathers.

// Individual kernels, composable on an existing machine (fig. 14 needs
// STREAM co-scheduled with ping-pong on one system).
WorkloadResult run_pingpong(runtime::Machine& m, squeue::ChannelFactory& f,
                            int scale, int msg_words = 7);
WorkloadResult run_halo(runtime::Machine& m, squeue::ChannelFactory& f,
                        int scale);
WorkloadResult run_sweep(runtime::Machine& m, squeue::ChannelFactory& f,
                         int scale);
WorkloadResult run_incast(runtime::Machine& m, squeue::ChannelFactory& f,
                          int scale);
WorkloadResult run_fir(runtime::Machine& m, squeue::ChannelFactory& f,
                       int scale);
WorkloadResult run_bitonic(runtime::Machine& m, squeue::ChannelFactory& f,
                           int scale, int workers);
WorkloadResult run_pipeline(runtime::Machine& m, squeue::ChannelFactory& f,
                            int scale);
WorkloadResult run_allreduce(runtime::Machine& m, squeue::ChannelFactory& f,
                             int scale);
WorkloadResult run_scatter_gather(runtime::Machine& m,
                                  squeue::ChannelFactory& f, int scale);

/// STREAM triad kernel (no queues): `threads` cores stream three arrays of
/// `lines_per_array` cache lines, `iters` times.
struct StreamParams {
  int threads = 4;
  std::size_t lines_per_array = 8192;  // 3 x 512 KiB: well past the LLC
  int iters = 1;
  CoreId first_core = 2;  // leave cores 0/1 for the ping-pong pair
};
WorkloadResult run_stream(runtime::Machine& m, const StreamParams& p);

/// Fig. 14 composite: STREAM co-scheduled with a ping-pong pair using the
/// given backend (or STREAM alone when `with_pingpong` is false).
struct InterferenceResult {
  WorkloadResult stream;
  std::uint64_t pingpong_msgs = 0;
};
InterferenceResult run_stream_interference(squeue::Backend backend,
                                           bool with_pingpong, int scale = 1);

}  // namespace vl::workloads
