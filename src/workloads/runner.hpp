#pragma once
// Benchmark workloads (paper Table II plus extensions) over the
// backend-agnostic Channel API, dispatched through a self-registering
// registry: each kernel TU registers name -> {kernel fn, channel-count fn,
// default config} and `run("halo", rc)` works by name — no central enum to
// extend, no name->kind maps duplicated across benches. See
// src/workloads/README.md.
//
//   ping-pong  data back and forth between two threads          (1:1) x2
//   halo       exchange with grid neighbours (bsp::World)       48-edge grid
//   sweep      wavefront corner-to-corner (and back)            (1:1) x48
//   incast     15 producers -> 1 master                         (15:1) x1
//   FIR        32-stage filter pipeline, 2 threads/core         (1:1) x31
//   bitonic    master/worker bitonic sort (bsp::World)          16-edge star
//   pipeline   4-stage packet pipeline, 2 KiB payloads          (1:4)+(4:4)+(4:1)+(1:1)
//   allreduce  tree reduce + broadcast (bsp::World)             14-edge tree
//   scatter-gather fork/join rounds (bsp::World)                12-edge star
//   stencil    Jacobi sweep w/ ghost-cell puts (bsp::World)     grid + probe
//   param-server gradient push / weight broadcast (bsp::World)  16-edge star
//
// Every run builds a fresh Table III machine, executes the kernel, and
// reports simulated time plus coherence/DRAM/device counters.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/machine.hpp"
#include "squeue/factory.hpp"
#include "workloads/result.hpp"

namespace vl::workloads {

struct RunConfig {
  squeue::Backend backend = squeue::Backend::kBlfq;
  int scale = 1;            ///< Message-count multiplier (tests use small).
  int bitonic_workers = 15; ///< Worker threads for bitonic (Fig. 12 sweep).
  /// Superstep compute cost per compared element in bitonic (through the
  /// bsp compute hook). 2 matches the seed kernel's per-pair compute; the
  /// Fig. 12 calibration runs at kFig12CompareCost.
  Tick bitonic_compare_cost = 2;
};

/// Per-element compare cost that calibrates bitonic against Fig. 12's
/// *absolute* speedup curve (communication amortized over a realistic
/// comparison, not the seed's token cost). Shared by the fig12 bench and
/// the absolute-speedup test.
inline constexpr Tick kFig12CompareCost = 24;

/// A registered workload: the kernel, how many channels its graph uses
/// (for the VLRD per-SQI quota carve; null when the kernel has no relay
/// cycle), and the config `run(name)` uses when the caller passes none.
struct WorkloadInfo {
  const char* name;
  int order;  ///< Display order: Table II first, extensions after.
  WorkloadResult (*kernel)(runtime::Machine&, squeue::ChannelFactory&,
                           const RunConfig&);
  std::uint32_t (*channel_count)(const RunConfig&);
  RunConfig defaults;
  const char* summary = "";  ///< One-line description for --list output.
};

/// Constructing one of these (namespace-scope static in the kernel's TU)
/// adds the workload to the registry before main().
class WorkloadRegistrar {
 public:
  explicit WorkloadRegistrar(const WorkloadInfo& info);
};

/// All registered workloads, sorted by (order, name).
const std::vector<const WorkloadInfo*>& all_workloads();
/// Lookup by name; nullptr when unknown.
const WorkloadInfo* find_workload(std::string_view name);
/// Registered names, in all_workloads() order.
std::vector<std::string> workload_names();
/// The registry entry's default RunConfig (aborts on unknown name).
RunConfig default_config(std::string_view name);

/// Build a machine for `rc.backend` (applying the kernel's own quota carve
/// on VL when it declares a relay-cycle channel count), run the kernel,
/// return measurements. Aborts on an unknown name.
WorkloadResult run(std::string_view name, const RunConfig& rc);
WorkloadResult run(std::string_view name);  ///< With the registry defaults.

// Individual kernels, composable on an existing machine (fig. 14 needs
// STREAM co-scheduled with ping-pong on one system; ablations re-wire
// machines). These are also the registry's link anchors: referencing them
// pulls each kernel TU — and its registrar — out of the static archive.
WorkloadResult run_pingpong(runtime::Machine& m, squeue::ChannelFactory& f,
                            int scale, int msg_words = 7);
WorkloadResult run_halo(runtime::Machine& m, squeue::ChannelFactory& f,
                        int scale);
WorkloadResult run_sweep(runtime::Machine& m, squeue::ChannelFactory& f,
                         int scale);
WorkloadResult run_incast(runtime::Machine& m, squeue::ChannelFactory& f,
                          int scale);
WorkloadResult run_fir(runtime::Machine& m, squeue::ChannelFactory& f,
                       int scale);
WorkloadResult run_bitonic(runtime::Machine& m, squeue::ChannelFactory& f,
                           int scale, int workers, Tick compare_cost = 2);
WorkloadResult run_pipeline(runtime::Machine& m, squeue::ChannelFactory& f,
                            int scale);
WorkloadResult run_allreduce(runtime::Machine& m, squeue::ChannelFactory& f,
                             int scale);
WorkloadResult run_scatter_gather(runtime::Machine& m,
                                  squeue::ChannelFactory& f, int scale);
WorkloadResult run_stencil(runtime::Machine& m, squeue::ChannelFactory& f,
                           int scale);
WorkloadResult run_param_server(runtime::Machine& m,
                                squeue::ChannelFactory& f, int scale);

/// STREAM triad kernel (no queues): `threads` cores stream three arrays of
/// `lines_per_array` cache lines, `iters` times.
struct StreamParams {
  int threads = 4;
  std::size_t lines_per_array = 8192;  // 3 x 512 KiB: well past the LLC
  int iters = 1;
  CoreId first_core = 2;  // leave cores 0/1 for the ping-pong pair
};
WorkloadResult run_stream(runtime::Machine& m, const StreamParams& p);

/// Fig. 14 composite: STREAM co-scheduled with a ping-pong pair using the
/// given backend (or STREAM alone when `with_pingpong` is false).
struct InterferenceResult {
  WorkloadResult stream;
  std::uint64_t pingpong_msgs = 0;
};
InterferenceResult run_stream_interference(squeue::Backend backend,
                                           bool with_pingpong, int scale = 1);

}  // namespace vl::workloads
