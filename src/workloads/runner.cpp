#include "workloads/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "runtime/qos_supervisor.hpp"

namespace vl::workloads {

namespace {

// Construct-on-first-use so registrar statics in other TUs can run in any
// order relative to this TU's own globals.
std::vector<WorkloadInfo>& registry() {
  static std::vector<WorkloadInfo> r;
  return r;
}

// vl_core is a static archive: an object file only joins the link when one
// of its symbols is referenced. Taking every kernel's address here — from
// the TU that defines run() — ties each kernel TU, and therefore its
// namespace-scope WorkloadRegistrar, to any binary that dispatches by
// name. [[gnu::used]] keeps the table (and its relocations) alive.
[[gnu::used]] const void* const kKernelTuAnchors[] = {
    reinterpret_cast<const void*>(&run_pingpong),
    reinterpret_cast<const void*>(&run_halo),
    reinterpret_cast<const void*>(&run_sweep),
    reinterpret_cast<const void*>(&run_incast),
    reinterpret_cast<const void*>(&run_fir),
    reinterpret_cast<const void*>(&run_bitonic),
    reinterpret_cast<const void*>(&run_pipeline),
    reinterpret_cast<const void*>(&run_allreduce),
    reinterpret_cast<const void*>(&run_scatter_gather),
    reinterpret_cast<const void*>(&run_stencil),
    reinterpret_cast<const void*>(&run_param_server),
};

}  // namespace

WorkloadRegistrar::WorkloadRegistrar(const WorkloadInfo& info) {
  registry().push_back(info);
}

const std::vector<const WorkloadInfo*>& all_workloads() {
  static const std::vector<const WorkloadInfo*> sorted = [] {
    std::vector<const WorkloadInfo*> v;
    v.reserve(registry().size());
    for (const WorkloadInfo& w : registry()) v.push_back(&w);
    std::sort(v.begin(), v.end(),
              [](const WorkloadInfo* a, const WorkloadInfo* b) {
                return a->order != b->order
                           ? a->order < b->order
                           : std::string_view(a->name) < b->name;
              });
    return v;
  }();
  return sorted;
}

const WorkloadInfo* find_workload(std::string_view name) {
  for (const WorkloadInfo* w : all_workloads())
    if (name == w->name) return w;
  return nullptr;
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  for (const WorkloadInfo* w : all_workloads()) names.emplace_back(w->name);
  return names;
}

namespace {

const WorkloadInfo& find_or_die(std::string_view name) {
  const WorkloadInfo* w = find_workload(name);
  if (!w) {
    std::fprintf(stderr, "workloads::run: unknown workload '%.*s'\n",
                 static_cast<int>(name.size()), name.data());
    std::abort();
  }
  return *w;
}

}  // namespace

RunConfig default_config(std::string_view name) {
  return find_or_die(name).defaults;
}

WorkloadResult run(std::string_view name, const RunConfig& rc) {
  const WorkloadInfo& w = find_or_die(name);
  sim::SystemConfig cfg = squeue::config_for(rc.backend);
  if (rc.backend == squeue::Backend::kVl && w.channel_count) {
    // Kernels that consume one SQI while producing another (chained stages,
    // fork/join relays), all through the one shared prodBuf. Left
    // unbounded, upstream stages fill every slot and the relays' pushes
    // NACK forever — the § V starvation hazard CAF answers with credit
    // partitioning. Bound per-SQI occupancy so total demand stays below
    // capacity (num_channels * quota < prod_entries); quota NACKs then
    // always resolve through the final consumer and the chain cannot
    // deadlock. The channel counts come from the kernels' own graphs (a
    // bsp::World reports its topology's edge count), so a kernel growing a
    // stage — or an edge — re-sizes its own quota.
    runtime::ChannelDemand d;
    d.relay_channels = w.channel_count(rc);
    cfg.vlrd.per_sqi_quota = runtime::size_quotas(cfg, d).per_sqi_quota;
  }
  runtime::Machine m(cfg);
  squeue::ChannelFactory f(m, rc.backend);
  const std::uint64_t ev0 = m.eq().executed();
  WorkloadResult r = w.kernel(m, f, rc);
  r.events = m.eq().executed() - ev0;
  return r;
}

WorkloadResult run(std::string_view name) {
  return run(name, find_or_die(name).defaults);
}

namespace {

using squeue::Channel;
using sim::Co;
using sim::SimThread;

// Fig. 14 ping-pong pair that runs until told to stop (when STREAM ends).
Co<void> interf_ping(Channel& fwd, Channel& bwd, SimThread t,
                     const bool* stop, std::uint64_t* msgs) {
  while (!*stop) {
    co_await fwd.send1(t, 1);
    (void)co_await bwd.recv1(t);
    *msgs += 2;
  }
  co_await fwd.send1(t, ~std::uint64_t{0});  // release the pong side
}

Co<void> interf_pong(Channel& fwd, Channel& bwd, SimThread t) {
  for (;;) {
    const std::uint64_t v = co_await fwd.recv1(t);
    if (v == ~std::uint64_t{0}) co_return;
    co_await bwd.send1(t, v);
  }
}

}  // namespace

InterferenceResult run_stream_interference(squeue::Backend backend,
                                           bool with_pingpong, int scale) {
  runtime::Machine m(squeue::config_for(backend));
  squeue::ChannelFactory f(m, backend);

  StreamParams sp;
  sp.iters = scale;

  InterferenceResult out;
  if (!with_pingpong) {
    out.stream = run_stream(m, sp);
    return out;
  }

  auto fwd = f.make("if_fwd");
  auto bwd = f.make("if_bwd");
  bool stop = false;

  // Spawn the ping-pong pair first; STREAM completion flips the stop flag.
  sim::spawn(interf_ping(*fwd, *bwd, m.thread_on(0), &stop,
                         &out.pingpong_msgs));
  sim::spawn(interf_pong(*fwd, *bwd, m.thread_on(1)));

  // Inline STREAM with a completion hook: run_stream() drives the event
  // loop itself, so replicate its body with the stop flag at the end.
  const std::size_t per_thread = sp.lines_per_array / sp.threads;
  const Addr a = m.alloc(sp.lines_per_array * kLineSize);
  const Addr b = m.alloc(sp.lines_per_array * kLineSize);
  const Addr c = m.alloc(sp.lines_per_array * kLineSize);

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  int remaining = sp.threads;
  Tick stream_end = 0;
  for (int th = 0; th < sp.threads; ++th) {
    const Addr off = th * per_thread * kLineSize;
    sim::spawn([](SimThread t, Addr a, Addr b, Addr c, std::size_t lines,
                  int iters, int* remaining, bool* stop,
                  Tick* end) -> Co<void> {
      for (int it = 0; it < iters; ++it) {
        for (std::size_t i = 0; i < lines; ++i) {
          const Addr o = i * kLineSize;
          const std::uint64_t vb = co_await t.load(b + o, 8);
          const std::uint64_t vc = co_await t.load(c + o, 8);
          co_await t.compute(1);
          co_await t.store(a + o, vb + 3 * vc, 8);
        }
      }
      if (--*remaining == 0) {
        *stop = true;
        *end = t.core->eq().now();
      }
    }(m.thread_on(sp.first_core + static_cast<CoreId>(th)), a + off, b + off,
      c + off, per_thread, sp.iters, &remaining, &stop, &stream_end));
  }
  m.run();

  out.stream.workload = "STREAM+pingpong";
  out.stream.backend = squeue::to_string(backend);
  out.stream.ticks = stream_end - t0;
  out.stream.ns = m.ns(out.stream.ticks);
  out.stream.mem = m.mem().stats().diff(mem0);
  return out;
}

}  // namespace vl::workloads
