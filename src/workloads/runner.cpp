#include "workloads/runner.hpp"

#include <algorithm>
#include <memory>

#include "runtime/qos_supervisor.hpp"

namespace vl::workloads {

const char* to_string(Kind k) {
  switch (k) {
    case Kind::kPingPong: return "ping-pong";
    case Kind::kHalo: return "halo";
    case Kind::kSweep: return "sweep";
    case Kind::kIncast: return "incast";
    case Kind::kFir: return "FIR";
    case Kind::kBitonic: return "bitonic";
    case Kind::kPipeline: return "pipeline";
    case Kind::kAllreduce: return "allreduce";
    case Kind::kScatterGather: return "scatter-gather";
  }
  return "?";
}

WorkloadResult run(Kind kind, const RunConfig& rc) {
  sim::SystemConfig cfg = squeue::config_for(rc.backend);
  if (rc.backend == squeue::Backend::kVl &&
      (kind == Kind::kFir || kind == Kind::kPipeline ||
       kind == Kind::kScatterGather)) {
    // Kernels that consume one SQI while producing another (chained stages,
    // fork/join relays), all through the one shared prodBuf. Left
    // unbounded, upstream stages fill every slot and the relays' pushes
    // NACK forever — the § V starvation hazard CAF answers with credit
    // partitioning. Bound per-SQI occupancy so total demand stays below
    // capacity (num_channels * quota < prod_entries); quota NACKs then
    // always resolve through the final consumer and the chain cannot
    // deadlock. The channel counts come from the kernels themselves
    // (fir_channel_count() etc.), so a kernel growing a stage re-sizes its
    // own quota.
    runtime::ChannelDemand d;
    d.relay_channels = kind == Kind::kFir ? fir_channel_count()
                       : kind == Kind::kPipeline
                           ? pipeline_channel_count()
                           : scatter_gather_channel_count();
    cfg.vlrd.per_sqi_quota = runtime::size_quotas(cfg, d).per_sqi_quota;
  }
  runtime::Machine m(cfg);
  squeue::ChannelFactory f(m, rc.backend);
  switch (kind) {
    case Kind::kPingPong: return run_pingpong(m, f, rc.scale);
    case Kind::kHalo: return run_halo(m, f, rc.scale);
    case Kind::kSweep: return run_sweep(m, f, rc.scale);
    case Kind::kIncast: return run_incast(m, f, rc.scale);
    case Kind::kFir: return run_fir(m, f, rc.scale);
    case Kind::kBitonic:
      return run_bitonic(m, f, rc.scale, rc.bitonic_workers);
    case Kind::kPipeline: return run_pipeline(m, f, rc.scale);
    case Kind::kAllreduce: return run_allreduce(m, f, rc.scale);
    case Kind::kScatterGather: return run_scatter_gather(m, f, rc.scale);
  }
  return {};
}

namespace {

using squeue::Channel;
using sim::Co;
using sim::SimThread;

// Fig. 14 ping-pong pair that runs until told to stop (when STREAM ends).
Co<void> interf_ping(Channel& fwd, Channel& bwd, SimThread t,
                     const bool* stop, std::uint64_t* msgs) {
  while (!*stop) {
    co_await fwd.send1(t, 1);
    (void)co_await bwd.recv1(t);
    *msgs += 2;
  }
  co_await fwd.send1(t, ~std::uint64_t{0});  // release the pong side
}

Co<void> interf_pong(Channel& fwd, Channel& bwd, SimThread t) {
  for (;;) {
    const std::uint64_t v = co_await fwd.recv1(t);
    if (v == ~std::uint64_t{0}) co_return;
    co_await bwd.send1(t, v);
  }
}

}  // namespace

InterferenceResult run_stream_interference(squeue::Backend backend,
                                           bool with_pingpong, int scale) {
  runtime::Machine m(squeue::config_for(backend));
  squeue::ChannelFactory f(m, backend);

  StreamParams sp;
  sp.iters = scale;

  InterferenceResult out;
  if (!with_pingpong) {
    out.stream = run_stream(m, sp);
    return out;
  }

  auto fwd = f.make("if_fwd");
  auto bwd = f.make("if_bwd");
  bool stop = false;

  // Spawn the ping-pong pair first; STREAM completion flips the stop flag.
  sim::spawn(interf_ping(*fwd, *bwd, m.thread_on(0), &stop,
                         &out.pingpong_msgs));
  sim::spawn(interf_pong(*fwd, *bwd, m.thread_on(1)));

  // Inline STREAM with a completion hook: run_stream() drives the event
  // loop itself, so replicate its body with the stop flag at the end.
  const std::size_t per_thread = sp.lines_per_array / sp.threads;
  const Addr a = m.alloc(sp.lines_per_array * kLineSize);
  const Addr b = m.alloc(sp.lines_per_array * kLineSize);
  const Addr c = m.alloc(sp.lines_per_array * kLineSize);

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  int remaining = sp.threads;
  Tick stream_end = 0;
  for (int th = 0; th < sp.threads; ++th) {
    const Addr off = th * per_thread * kLineSize;
    sim::spawn([](SimThread t, Addr a, Addr b, Addr c, std::size_t lines,
                  int iters, int* remaining, bool* stop,
                  Tick* end) -> Co<void> {
      for (int it = 0; it < iters; ++it) {
        for (std::size_t i = 0; i < lines; ++i) {
          const Addr o = i * kLineSize;
          const std::uint64_t vb = co_await t.load(b + o, 8);
          const std::uint64_t vc = co_await t.load(c + o, 8);
          co_await t.compute(1);
          co_await t.store(a + o, vb + 3 * vc, 8);
        }
      }
      if (--*remaining == 0) {
        *stop = true;
        *end = t.core->eq().now();
      }
    }(m.thread_on(sp.first_core + static_cast<CoreId>(th)), a + off, b + off,
      c + off, per_thread, sp.iters, &remaining, &stop, &stream_end));
  }
  m.run();

  out.stream.workload = "STREAM+pingpong";
  out.stream.backend = squeue::to_string(backend);
  out.stream.ticks = stream_end - t0;
  out.stream.ns = m.ns(out.stream.ticks);
  out.stream.mem = m.mem().stats().diff(mem0);
  return out;
}

}  // namespace vl::workloads
