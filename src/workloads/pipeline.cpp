// pipeline: 4-stage network-packet processing (the CAF paper's workload):
//   S1 (1 thread)  --(1:4)-->  S2 (4 threads)  --(4:4)-->  S3 (4 threads)
//   --(4x 1:1)-->  S4 (1 thread)  --(1:1 credits)-->  S1
// Messages carry pointers to 2 KiB packet payloads that live in ordinary
// cacheable memory; S2 parses (reads) the payload, S3 rewrites it. A fixed
// pool of packet buffers cycles via the credit channel, so the workload
// mixes queue traffic with heavy payload coherence traffic.
// Poison-pill termination: one sentinel per worker flows down the pipe.
//
// Channel API v2 shape: each S3 worker owns a private completion queue and
// the S4 sink services all four with a Selector — wait-any over the
// completion queues replaces the shared 4:1 merge channel, the standard
// multi-queue NIC/completion-ring service pattern.

#include <memory>
#include <vector>

#include "squeue/selector.hpp"
#include "workloads/runner.hpp"

namespace vl::workloads {

namespace {

using squeue::Channel;
using squeue::Selector;
using sim::Co;
using sim::SimThread;

constexpr std::uint64_t kPoison = ~std::uint64_t{0};
constexpr int kStage2 = 4, kStage3 = 4;
constexpr std::size_t kPacketLines = 32;  // 2 KiB payload
constexpr int kPoolPackets = 8;

Co<void> s1_source(Channel& out, Channel& credits, SimThread t, int packets,
                   const std::vector<Addr>* pool) {
  for (int i = 0; i < packets; ++i) {
    // Reuse a pooled buffer; after the first lap, wait for its credit.
    if (i >= kPoolPackets) (void)co_await credits.recv1(t);
    const Addr pkt = (*pool)[i % kPoolPackets];
    co_await t.store(pkt, static_cast<std::uint64_t>(i), 8);  // header
    co_await out.send1(t, pkt);
  }
  for (int w = 0; w < kStage2; ++w) co_await out.send1(t, kPoison);
  // Drain remaining credits so the run quiesces deterministically.
  for (int i = 0; i < std::min(packets, kPoolPackets); ++i)
    (void)co_await credits.recv1(t);
}

Co<void> s2_parse(Channel& in, Channel& out, SimThread t) {
  for (;;) {
    const std::uint64_t v = co_await in.recv1(t);
    if (v == kPoison) {
      co_await out.send1(t, kPoison);
      co_return;
    }
    // Parse: read the whole payload.
    std::uint64_t acc = 0;
    for (std::size_t l = 0; l < kPacketLines; ++l)
      acc += co_await t.load(v + l * kLineSize, 8);
    co_await t.compute(100);
    (void)acc;
    co_await out.send1(t, v);
  }
}

Co<void> s3_rewrite(Channel& in, Channel& out, SimThread t) {
  for (;;) {
    const std::uint64_t v = co_await in.recv1(t);
    if (v == kPoison) {
      co_await out.send1(t, kPoison);
      co_return;
    }
    for (std::size_t l = 0; l < kPacketLines; ++l)
      co_await t.store(v + l * kLineSize, l, 8);
    co_await t.compute(100);
    co_await out.send1(t, v);
  }
}

Co<void> s4_sink(Selector& in, Channel& credits, SimThread t, int* done) {
  // Wait-any across the S3 completion queues: one poison per queue ends it.
  int poisons = 0;
  while (poisons < kStage3) {
    const Selector::Item item = co_await in.recv_any(t);
    const std::uint64_t v = item.msg.w[0];
    if (v == kPoison) {
      ++poisons;
      continue;
    }
    ++*done;
    co_await t.compute(40);
    co_await credits.send1(t, v);  // return the buffer to S1
  }
}

}  // namespace

WorkloadResult run_pipeline(runtime::Machine& m, squeue::ChannelFactory& f,
                            int scale) {
  auto c1 = f.make("pipe_c1", /*capacity_hint=*/256);
  auto c2 = f.make("pipe_c2", /*capacity_hint=*/256);
  std::vector<std::unique_ptr<Channel>> c3;
  Selector done_q;
  for (int w = 0; w < kStage3; ++w) {
    c3.push_back(f.make("pipe_c3_" + std::to_string(w), /*capacity_hint=*/64));
    done_q.add(*c3.back());
  }
  auto credits = f.make("pipe_credits", /*capacity_hint=*/64);

  std::vector<Addr> pool;
  for (int i = 0; i < kPoolPackets; ++i)
    pool.push_back(m.alloc(kPacketLines * kLineSize));

  const int packets = 40 * scale;
  int done = 0;

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  // Cores: S1 on 0; S2 on 1..4; S3 on 5..8; S4 on 9.
  sim::spawn(s1_source(*c1, *credits, m.thread_on(0), packets, &pool));
  for (int w = 0; w < kStage2; ++w)
    sim::spawn(s2_parse(*c1, *c2, m.thread_on(static_cast<CoreId>(1 + w))));
  for (int w = 0; w < kStage3; ++w)
    sim::spawn(s3_rewrite(*c2, *c3[static_cast<std::size_t>(w)],
                          m.thread_on(static_cast<CoreId>(5 + w))));
  sim::spawn(s4_sink(done_q, *credits, m.thread_on(9), &done));
  m.run();

  WorkloadResult r;
  r.workload = done == packets ? "pipeline" : "pipeline(LOST PACKETS!)";
  r.backend = squeue::to_string(f.backend());
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = static_cast<std::uint64_t>(packets) * 4;
  r.mem = m.mem().stats().diff(mem0);
  r.vlrd = m.vlrd_stats();
  return r;
}

namespace {
const WorkloadRegistrar kReg{
    {"pipeline", 6,
     [](runtime::Machine& m, squeue::ChannelFactory& f, const RunConfig& rc) {
       return run_pipeline(m, f, rc.scale);
     },
     // pipe_c1 + pipe_c2 + one completion queue per S3 worker +
     // pipe_credits: the fork/join relay cycle the quota carve covers.
     [](const RunConfig&) { return static_cast<std::uint32_t>(2 + kStage3 + 1); },
     RunConfig{},
     "4-stage packet pipeline with 2 KiB payloads (1:4 fork, 4:1 join)"}};
}  // namespace

}  // namespace vl::workloads
