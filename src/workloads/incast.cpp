// incast (Ember): 15 producers firehose one master consumer over a single
// 15:1 channel. The consumer is the bottleneck, so occupancy builds up:
// BLFQ (no back-pressure) spills its growing ring past the LLC into DRAM,
// while ZMQ's high-water mark and VL's bounded routing-device buffers keep
// data on the fast path — the Fig. 11c effect.

#include "workloads/runner.hpp"

namespace vl::workloads {

namespace {

using squeue::Channel;
using sim::Co;
using sim::SimThread;

constexpr int kProducers = 15;
constexpr Tick kProduceCompute = 12;
constexpr Tick kConsumeCompute = 220;  // consumer is the service bottleneck

Co<void> producer(Channel& ch, SimThread t, int id, int per) {
  for (int i = 0; i < per; ++i) {
    co_await t.compute(kProduceCompute);
    co_await ch.send1(t, static_cast<std::uint64_t>(id) * 1'000'000 + i);
  }
}

Co<void> master(Channel& ch, SimThread t, int total, std::uint64_t* checksum) {
  for (int i = 0; i < total; ++i) {
    const std::uint64_t v = co_await ch.recv1(t);
    *checksum += v;
    co_await t.compute(kConsumeCompute);
  }
}

}  // namespace

WorkloadResult run_incast(runtime::Machine& m, squeue::ChannelFactory& f,
                          int scale) {
  // Deep ring for the unbounded-BLFQ behaviour; bounded backends ignore
  // excess and apply their own back-pressure.
  auto ch = f.make("incast", /*capacity_hint=*/16384);
  const int per = 600 * scale;
  std::uint64_t checksum = 0;

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  for (int p = 0; p < kProducers; ++p)
    sim::spawn(producer(*ch, m.thread_on(static_cast<CoreId>(p)), p, per));
  sim::spawn(master(*ch, m.thread_on(15), kProducers * per, &checksum));
  m.run();

  WorkloadResult r;
  r.workload = "incast";
  r.backend = squeue::to_string(f.backend());
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = static_cast<std::uint64_t>(kProducers) * per;
  r.mem = m.mem().stats().diff(mem0);
  r.vlrd = m.vlrd_stats();
  return r;
}

namespace {
const WorkloadRegistrar kReg{
    {"incast", 3,
     [](runtime::Machine& m, squeue::ChannelFactory& f, const RunConfig& rc) {
       return run_incast(m, f, rc.scale);
     },
     nullptr, RunConfig{},
     "15 producers fan in to 1 master over one shared queue"}};
}  // namespace

}  // namespace vl::workloads
