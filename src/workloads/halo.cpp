// halo (Ember): each thread in a 4x4 grid exchanges boundary data with its
// neighbours every iteration — 48 directed edges, one superstep per
// iteration on bsp::World. Latency-bound small messages; the application
// additionally maintains its own double-buffered halo regions (the paper
// notes those app-managed buffers are why VL does not reduce memory
// traffic here), so the kernel keeps the seed's store pattern: two lines
// refreshed per neighbour plus one merge store per received message.

#include <vector>

#include "bsp/world.hpp"
#include "workloads/runner.hpp"

namespace vl::workloads {

namespace {

using sim::Co;

constexpr int kDim = 4;

Co<void> halo_thread(bsp::Proc& p, bsp::Queue q, int iters, Addr dbuf) {
  const std::vector<int>& nbrs = p.world().neighbors_out(p.id());
  for (int it = 0; it < iters; ++it) {
    // Refresh the app-managed double buffer for this iteration (two lines
    // per neighbour, alternating halves).
    const Addr base =
        dbuf + static_cast<Addr>(it % 2) * (nbrs.size() * 2 * kLineSize);
    for (std::size_t n = 0; n < nbrs.size(); ++n) {
      co_await p.thread().store(base + n * 2 * kLineSize,
                                static_cast<std::uint64_t>(it), 8);
      co_await p.thread().store(base + n * 2 * kLineSize + kLineSize,
                                static_cast<std::uint64_t>(p.id()), 8);
    }
    // Exchange: one staged send per neighbour, delivered at the superstep
    // boundary; merge each received boundary into the halo region.
    for (int v : nbrs) p.send(v, q, {static_cast<std::uint64_t>(it)});
    co_await p.sync();
    for (const bsp::QMsg& qm : p.inbox(q))
      co_await p.thread().store(base + kLineSize / 2, qm.w[0], 8);
  }
}

}  // namespace

WorkloadResult run_halo(runtime::Machine& m, squeue::ChannelFactory& f,
                        int scale) {
  bsp::World w(m, f, bsp::Topology::grid(kDim, kDim), "halo", 64);
  const bsp::Queue q = w.queue();
  const int iters = 10 * scale;

  // App-managed double buffers: 2 halves x (<=4 neighbours x 2 lines).
  std::vector<Addr> dbufs;
  for (int id = 0; id < kDim * kDim; ++id)
    dbufs.push_back(m.alloc(2 * 4 * 2 * kLineSize));

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  for (int id = 0; id < kDim * kDim; ++id)
    sim::spawn(halo_thread(w.proc(id), q, iters, dbufs[id]));
  m.run();

  WorkloadResult r;
  r.workload = "halo";
  r.backend = squeue::to_string(f.backend());
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = w.messages();  // 48 per iteration
  r.mem = m.mem().stats().diff(mem0);
  r.vlrd = m.vlrd_stats();
  return r;
}

namespace {
const WorkloadRegistrar kReg{
    {"halo", 1,
     [](runtime::Machine& m, squeue::ChannelFactory& f, const RunConfig& rc) {
       return run_halo(m, f, rc.scale);
     },
     nullptr, RunConfig{},
     "exchange with grid neighbours, 48-edge grid (bsp::World)"}};
}  // namespace

}  // namespace vl::workloads
