// halo (Ember): each thread in a 4x4 grid exchanges boundary data with its
// neighbours every iteration — 48 directed 1:1 channels. Latency-bound
// small messages; the application additionally maintains its own
// double-buffered halo regions (the paper notes those app-managed buffers
// are why VL does not reduce memory traffic here).

#include <map>
#include <vector>

#include "workloads/runner.hpp"

namespace vl::workloads {

namespace {

using squeue::Channel;
using sim::Co;
using sim::SimThread;

constexpr int kDim = 4;

int cell(int r, int c) { return r * kDim + c; }

struct Grid {
  // channels[{u,v}]: directed channel u -> v.
  std::map<std::pair<int, int>, std::unique_ptr<Channel>> ch;
  std::vector<std::vector<int>> neighbors{kDim * kDim};
};

Grid build_grid(squeue::ChannelFactory& f, const char* prefix) {
  Grid g;
  const int dr[4] = {-1, 1, 0, 0};
  const int dc[4] = {0, 0, -1, 1};
  for (int r = 0; r < kDim; ++r) {
    for (int c = 0; c < kDim; ++c) {
      for (int d = 0; d < 4; ++d) {
        const int nr = r + dr[d], nc = c + dc[d];
        if (nr < 0 || nr >= kDim || nc < 0 || nc >= kDim) continue;
        const int u = cell(r, c), v = cell(nr, nc);
        g.neighbors[u].push_back(v);
        g.ch[{u, v}] = f.make(std::string(prefix) + std::to_string(u) + "_" +
                                  std::to_string(v),
                              /*capacity_hint=*/64);
      }
    }
  }
  return g;
}

Co<void> halo_thread(Grid& g, runtime::Machine& m, SimThread t, int id,
                     int iters, Addr dbuf) {
  for (int it = 0; it < iters; ++it) {
    // Refresh the app-managed double buffer for this iteration (two lines
    // per neighbour, alternating halves).
    const Addr base = dbuf + static_cast<Addr>(it % 2) *
                                 (g.neighbors[id].size() * 2 * kLineSize);
    for (std::size_t n = 0; n < g.neighbors[id].size(); ++n) {
      co_await t.store(base + n * 2 * kLineSize, static_cast<std::uint64_t>(it), 8);
      co_await t.store(base + n * 2 * kLineSize + kLineSize,
                       static_cast<std::uint64_t>(id), 8);
    }
    // Exchange: send to all neighbours, then collect from all.
    for (int v : g.neighbors[id])
      co_await g.ch[{id, v}]->send1(t, static_cast<std::uint64_t>(it));
    for (int v : g.neighbors[id]) {
      const std::uint64_t got = co_await g.ch[{v, id}]->recv1(t);
      co_await t.store(base + kLineSize / 2, got, 8);  // merge into halo
    }
  }
  (void)m;
}

}  // namespace

WorkloadResult run_halo(runtime::Machine& m, squeue::ChannelFactory& f,
                        int scale) {
  Grid g = build_grid(f, "halo_");
  const int iters = 10 * scale;

  // App-managed double buffers: 2 halves x (<=4 neighbours x 2 lines).
  std::vector<Addr> dbufs;
  for (int id = 0; id < kDim * kDim; ++id)
    dbufs.push_back(m.alloc(2 * 4 * 2 * kLineSize));

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  for (int id = 0; id < kDim * kDim; ++id)
    sim::spawn(halo_thread(g, m, m.thread_on(static_cast<CoreId>(id)), id,
                           iters, dbufs[id]));
  m.run();

  WorkloadResult r;
  r.workload = "halo";
  r.backend = squeue::to_string(f.backend());
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = static_cast<std::uint64_t>(48 * iters);
  r.mem = m.mem().stats().diff(mem0);
  r.vlrd = m.vlrd_stats();
  return r;
}

}  // namespace vl::workloads
