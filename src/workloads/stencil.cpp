// stencil (new, bsp-native): a 5-point Jacobi-style sweep over a 4x4
// processor grid. Each processor owns one aggregate cell value (standing in
// for a 64-cell subdomain whose per-cell update cost goes through the
// superstep compute hook), publishes it to its grid neighbours as
// ghost-cell coarray puts, and advances an integer recurrence from its own
// value plus the ghosts — one superstep per sweep. Every 4th sweep the
// root probes the far-corner processor with a one-sided get() over a
// dedicated probe edge (the BSP phase-B path exercised by a real kernel,
// not just tests).
//
// This kernel is the "cheap to add" dividend of the BSP layer: no channel
// wiring, no termination protocol — the communication section is four
// lines. Results are validated against a sequential replica of the same
// recurrence, so every backend must produce identical cell values and
// probe sums.

#include <algorithm>
#include <vector>

#include "bsp/world.hpp"
#include "workloads/runner.hpp"

namespace vl::workloads {

namespace {

using sim::Co;

constexpr int kDim = 4;
constexpr int kProbePeer = kDim * kDim - 1;  // far corner, probed by pid 0
constexpr int kCellsPerProc = 64;  // modelled subdomain size per processor
constexpr Tick kCellCost = 3;      // per-cell update cost per sweep

std::vector<int> grid_nbrs(int pid) {
  const int r = pid / kDim, c = pid % kDim;
  std::vector<int> out;
  if (r > 0) out.push_back(pid - kDim);
  if (c > 0) out.push_back(pid - 1);
  if (c + 1 < kDim) out.push_back(pid + 1);
  if (r + 1 < kDim) out.push_back(pid + kDim);
  std::sort(out.begin(), out.end());
  return out;
}

Co<void> cell_proc(bsp::Proc& p, bsp::Var u, bsp::Coarray ghost, int sweeps,
                   std::uint64_t* probe_sum) {
  const std::vector<int> nbrs = grid_nbrs(p.id());
  for (int s = 0; s < sweeps; ++s) {
    co_await p.compute(kCellsPerProc, kCellCost);
    for (int v : nbrs) p.put(v, ghost, p.id(), p.local(u));
    bsp::GetHandle h{};
    const bool probing = p.id() == 0 && s % 4 == 3;
    if (probing) h = p.get(kProbePeer, u);
    co_await p.sync();
    if (probing) *probe_sum += p.got(h);  // peer's value as of sweep start
    std::uint64_t acc = p.local(u);
    for (int v : nbrs) acc += p.local(ghost, v);
    p.local(u) = (acc >> 1) + static_cast<std::uint64_t>(p.id()) + 1;
  }
}

}  // namespace

WorkloadResult run_stencil(runtime::Machine& m, squeue::ChannelFactory& f,
                           int scale) {
  bsp::Topology topo = bsp::Topology::grid(kDim, kDim);
  topo.biconnect(0, kProbePeer);  // the get() probe link
  bsp::World w(m, f, topo, "st", 64);
  const bsp::Var u = w.var();
  const bsp::Coarray ghost = w.coarray(kDim * kDim);
  const int sweeps = 12 * scale;
  std::uint64_t probe_sum = 0;

  for (int pid = 0; pid < kDim * kDim; ++pid)
    w.value(u, pid) = static_cast<std::uint64_t>(pid);

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  for (int pid = 0; pid < kDim * kDim; ++pid)
    sim::spawn(cell_proc(w.proc(pid), u, ghost, sweeps, &probe_sum));
  m.run();

  WorkloadResult r;
  r.workload = "stencil";
  r.backend = squeue::to_string(f.backend());
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = w.messages();  // 48 puts/sweep + get/reply per probe
  r.mem = m.mem().stats().diff(mem0);
  r.vlrd = m.vlrd_stats();

  // Sequential replica of the recurrence: every backend must match it
  // exactly (cell values and probe sum alike).
  std::uint64_t ref[kDim * kDim], expect_probe = 0;
  for (int pid = 0; pid < kDim * kDim; ++pid)
    ref[pid] = static_cast<std::uint64_t>(pid);
  for (int s = 0; s < sweeps; ++s) {
    std::uint64_t prev[kDim * kDim];
    std::copy(std::begin(ref), std::end(ref), std::begin(prev));
    if (s % 4 == 3) expect_probe += prev[kProbePeer];
    for (int pid = 0; pid < kDim * kDim; ++pid) {
      std::uint64_t acc = prev[pid];
      for (int v : grid_nbrs(pid)) acc += prev[v];
      ref[pid] = (acc >> 1) + static_cast<std::uint64_t>(pid) + 1;
    }
  }
  bool ok = probe_sum == expect_probe;
  for (int pid = 0; pid < kDim * kDim; ++pid)
    if (w.value(u, pid) != ref[pid]) ok = false;
  if (!ok) r.workload += "!";
  return r;
}

namespace {
const WorkloadRegistrar kReg{
    {"stencil", 9,
     [](runtime::Machine& m, squeue::ChannelFactory& f, const RunConfig& rc) {
       return run_stencil(m, f, rc.scale);
     },
     nullptr, RunConfig{},
     "Jacobi sweep with ghost-cell puts, grid + convergence probe"}};
}  // namespace

}  // namespace vl::workloads
