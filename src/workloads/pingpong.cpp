// ping-pong (Ember): one message bounces between two threads through a
// pair of 1:1 channels. The paper's biggest VL win (11.36x over BLFQ):
// round-trip latency is pure queue overhead, and VL's path is one line
// push + one stash with zero shared state.

#include "workloads/runner.hpp"

namespace vl::workloads {

namespace {

using squeue::Channel;
using squeue::Msg;
using sim::Co;
using sim::SimThread;

Co<void> ping(Channel& fwd, Channel& bwd, SimThread t, int rounds,
              int msg_words) {
  Msg msg;
  msg.n = static_cast<std::uint8_t>(msg_words);
  for (int r = 0; r < rounds; ++r) {
    for (int w = 0; w < msg_words; ++w)
      msg.w[w] = static_cast<std::uint64_t>(r) * 8 + w;
    co_await fwd.send(t, msg);
    const Msg back = co_await bwd.recv(t);
    (void)back;
  }
}

Co<void> pong(Channel& fwd, Channel& bwd, SimThread t, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    Msg msg = co_await fwd.recv(t);
    co_await bwd.send(t, msg);  // echo
  }
}

}  // namespace

WorkloadResult run_pingpong(runtime::Machine& m, squeue::ChannelFactory& f,
                            int scale, int msg_words) {
  auto fwd = f.make("pp_fwd", 0, static_cast<std::uint8_t>(msg_words));
  auto bwd = f.make("pp_bwd", 0, static_cast<std::uint8_t>(msg_words));
  const int rounds = 200 * scale;

  const auto mem0 = m.mem().stats();
  const auto vlrd0 = m.vlrd_stats();
  const Tick t0 = m.now();

  sim::spawn(ping(*fwd, *bwd, m.thread_on(0), rounds, msg_words));
  sim::spawn(pong(*fwd, *bwd, m.thread_on(1), rounds));
  m.run();

  WorkloadResult r;
  r.workload = "ping-pong";
  r.backend = squeue::to_string(f.backend());
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = static_cast<std::uint64_t>(2 * rounds);
  r.mem = m.mem().stats().diff(mem0);
  r.vlrd = m.vlrd_stats();
  (void)vlrd0;
  return r;
}

namespace {
const WorkloadRegistrar kReg{
    {"ping-pong", 0,
     [](runtime::Machine& m, squeue::ChannelFactory& f, const RunConfig& rc) {
       return run_pingpong(m, f, rc.scale);
     },
     nullptr, RunConfig{},
     "data bounced between two threads over a 1:1 channel pair"}};
}  // namespace

}  // namespace vl::workloads
