// FIR: samples stream through a 32-stage filter pipeline — 32 threads on
// 16 cores (two per core), 31 1:1 channels. The per-core thread pair
// context-switches constantly, which clears VL's "pushable" bits and makes
// the VLRD's injection attempts fail and retry; the paper calls FIR out as
// the one benchmark where VL's snoop traffic is not lower than software
// queues for exactly this reason.

#include <memory>
#include <vector>

#include "workloads/runner.hpp"

namespace vl::workloads {

namespace {

using squeue::Channel;
using sim::Co;
using sim::SimThread;

constexpr int kStages = 32;
constexpr Tick kMacCompute = 16;  // taps per stage

Co<void> source(Channel& out, SimThread t, int samples) {
  for (int i = 0; i < samples; ++i) {
    co_await t.compute(kMacCompute);
    co_await out.send1(t, static_cast<std::uint64_t>(i));
  }
}

Co<void> stage(Channel& in, Channel& out, SimThread t, int id, int samples) {
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t v = co_await in.recv1(t);
    co_await t.compute(kMacCompute);  // multiply-accumulate against taps
    co_await out.send1(t, v + static_cast<std::uint64_t>(id));
  }
}

Co<void> sink(Channel& in, SimThread t, int samples, std::uint64_t* acc) {
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t v = co_await in.recv1(t);
    co_await t.compute(kMacCompute);
    *acc += v;
  }
}

}  // namespace

WorkloadResult run_fir(runtime::Machine& m, squeue::ChannelFactory& f,
                       int scale) {
  std::vector<std::unique_ptr<Channel>> ch;
  for (int i = 0; i < kStages - 1; ++i)
    ch.push_back(f.make("fir_" + std::to_string(i), /*capacity_hint=*/1024));

  const int samples = 60 * scale;
  std::uint64_t acc = 0;

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  // Stage j runs on core j/2: two pipeline stages share each core.
  sim::spawn(source(*ch[0], m.thread_on(0), samples));
  for (int j = 1; j < kStages - 1; ++j)
    sim::spawn(stage(*ch[j - 1], *ch[j],
                     m.thread_on(static_cast<CoreId>(j / 2)), j, samples));
  sim::spawn(sink(*ch[kStages - 2], m.thread_on((kStages - 1) / 2), samples,
                  &acc));
  m.run();

  WorkloadResult r;
  r.workload = "FIR";
  r.backend = squeue::to_string(f.backend());
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = static_cast<std::uint64_t>(kStages - 1) * samples;
  r.mem = m.mem().stats().diff(mem0);
  r.vlrd = m.vlrd_stats();
  return r;
}

namespace {
const WorkloadRegistrar kReg{
    {"FIR", 4,
     [](runtime::Machine& m, squeue::ChannelFactory& f, const RunConfig& rc) {
       return run_fir(m, f, rc.scale);
     },
     // kStages-1 chained channels, each consuming one SQI while producing
     // another — the relay cycle the VLRD quota carve must cover.
     [](const RunConfig&) { return static_cast<std::uint32_t>(kStages - 1); },
     RunConfig{},
     "32-stage filter pipeline, 2 threads/core, chained channels"}};
}  // namespace

}  // namespace vl::workloads
