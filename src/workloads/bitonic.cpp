// bitonic: Batcher's bitonic sorting network over a fixed-size array, with
// a master processor dispatching per-phase chunks to a variable pool of
// workers over a bsp::World star graph — two supersteps per (k, j) phase:
// tasks out, completions back. This is the paper's scalability study
// (Figs. 12/13): fixed work, 1/3/7/15 workers + 1 master.
//
// Every compare-exchange touches the shared array through the coherence
// model, and every phase costs 2 messages per worker, so as workers grow
// the queue mechanism's synchronization cost is what decides scaling. The
// per-element comparison cost goes through the superstep compute hook
// (`rc.bitonic_compare_cost`): the seed's token value of 2 keeps the
// legacy relative-scaling behaviour, and kFig12CompareCost calibrates the
// *absolute* speedup curve against Fig. 12.

#include <algorithm>
#include <vector>

#include "bsp/world.hpp"
#include "common/rng.hpp"
#include "workloads/runner.hpp"

namespace vl::workloads {

namespace {

using sim::Co;

std::uint64_t phase_count(std::uint64_t n) {
  std::uint64_t phases = 0;
  for (std::uint64_t k = 2; k <= n; k <<= 1)
    for (std::uint64_t j = k >> 1; j > 0; j >>= 1) ++phases;
  return phases;
}

/// One worker: each phase, take this superstep's {k, j, lo, hi} task,
/// compare-exchange indices in [lo, hi), report a completion carrying the
/// swap count. The comparison cost is charged once per compared pair
/// through the compute hook.
Co<void> worker(bsp::Proc& p, bsp::Queue tasks, bsp::Queue done,
                Addr array, std::uint64_t nphases, Tick compare_cost) {
  for (std::uint64_t ph = 0; ph < nphases; ++ph) {
    co_await p.sync();  // this phase's tasks land
    for (const bsp::QMsg& qm : p.inbox(tasks)) {
      const std::uint64_t k = qm.w[0], j = qm.w[1];
      const std::uint64_t lo = qm.w[2], hi = qm.w[3];
      std::uint64_t pairs = 0, swaps = 0;
      for (std::uint64_t i = lo; i < hi; ++i) {
        const std::uint64_t partner = i ^ j;
        if (partner <= i) continue;  // each pair handled once, by its low end
        const bool ascending = (i & k) == 0;
        const std::uint64_t a = co_await p.thread().load(array + i * 8, 8);
        const std::uint64_t b =
            co_await p.thread().load(array + partner * 8, 8);
        ++pairs;
        if ((a > b) == ascending) {
          co_await p.thread().store(array + i * 8, b, 8);
          co_await p.thread().store(array + partner * 8, a, 8);
          ++swaps;
        }
      }
      co_await p.compute(pairs, compare_cost);
      p.send(0, done, {swaps});
    }
    co_await p.sync();  // completions travel back
  }
}

/// Master: walk the bitonic network, fan each phase out as `workers`
/// index-range chunks; the superstep barrier is the phase barrier, and the
/// workers' completion messages land in the done inbox it drains.
Co<void> master(bsp::Proc& p, bsp::Queue tasks, bsp::Queue done,
                std::uint64_t n, int workers, std::uint64_t* total_swaps) {
  for (std::uint64_t k = 2; k <= n; k <<= 1) {
    for (std::uint64_t j = k >> 1; j > 0; j >>= 1) {
      const std::uint64_t chunk =
          (n + static_cast<std::uint64_t>(workers) - 1) /
          static_cast<std::uint64_t>(workers);
      for (int w = 0; w < workers; ++w) {
        const std::uint64_t lo = static_cast<std::uint64_t>(w) * chunk;
        if (lo >= n) break;
        p.send(1 + w, tasks, {k, j, lo, std::min(n, lo + chunk)});
      }
      co_await p.sync();  // dispatch
      co_await p.sync();  // completions
      for (const bsp::QMsg& qm : p.inbox(done)) *total_swaps += qm.w[0];
      co_await p.compute(1, 120);  // master's per-phase bookkeeping
    }
  }
}

}  // namespace

WorkloadResult run_bitonic(runtime::Machine& m, squeue::ChannelFactory& f,
                           int scale, int workers, Tick compare_cost) {
  const std::uint64_t n = 256u * static_cast<std::uint64_t>(scale);
  // Queue payload is the 4-word task descriptor -> 5 wire words.
  bsp::World w(m, f, bsp::Topology::star(1 + workers), "bitonic", 64,
               /*msg_words=*/5);
  const bsp::Queue tasks = w.queue();
  const bsp::Queue done = w.queue();

  const Addr array = m.alloc(n * 8);
  Xoshiro256 rng(7);
  for (std::uint64_t i = 0; i < n; ++i)
    m.mem().backing().write(array + i * 8, rng.next() >> 1, 8);

  const std::uint64_t nphases = phase_count(n);
  std::uint64_t total_swaps = 0;
  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  sim::spawn(master(w.proc(0), tasks, done, n, workers, &total_swaps));
  for (int pid = 1; pid <= workers; ++pid)
    sim::spawn(worker(w.proc(pid), tasks, done, array, nphases,
                      compare_cost));
  m.run();

  // Validate: the array must be sorted (the workload is real, not a mock).
  std::uint64_t prev = 0;
  bool sorted = true;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t v = m.mem().backing().read(array + i * 8, 8);
    if (v < prev) sorted = false;
    prev = v;
  }

  WorkloadResult r;
  r.workload = sorted && total_swaps > 0 ? "bitonic" : "bitonic(UNSORTED!)";
  r.backend = squeue::to_string(f.backend());
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = w.messages();  // 2 per active worker per phase
  r.mem = m.mem().stats().diff(mem0);
  r.vlrd = m.vlrd_stats();
  return r;
}

namespace {
const WorkloadRegistrar kReg{
    {"bitonic", 5,
     [](runtime::Machine& m, squeue::ChannelFactory& f, const RunConfig& rc) {
       return run_bitonic(m, f, rc.scale, rc.bitonic_workers,
                          rc.bitonic_compare_cost);
     },
     nullptr, RunConfig{},
     "master/worker bitonic sort on a 16-edge star (bsp::World)"}};
}  // namespace

}  // namespace vl::workloads
