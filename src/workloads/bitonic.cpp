// bitonic: Batcher's bitonic sorting network over a fixed-size array, with
// a master thread dispatching per-phase chunks to a variable pool of
// worker threads (1:N dispatch channel + M:1 completion channel). This is
// the paper's scalability study (Figs. 12/13): fixed work, 1/3/7/15
// workers + 1 master.
//
// Every compare-exchange touches the shared array through the coherence
// model, and every phase costs 2 messages per worker, so as workers grow
// the queue mechanism's synchronization cost is what decides scaling.

#include <vector>

#include "common/rng.hpp"
#include "workloads/runner.hpp"

namespace vl::workloads {

namespace {

using squeue::Channel;
using squeue::Msg;
using sim::Co;
using sim::SimThread;

constexpr std::uint64_t kStop = ~std::uint64_t{0};

/// One worker: pull {k, j, lo, hi} tasks, compare-exchange indices in
/// [lo, hi), report completion. Exits on the kStop sentinel.
Co<void> worker(Channel& dispatch, Channel& done, SimThread t, Addr array) {
  for (;;) {
    const Msg task = co_await dispatch.recv(t);
    if (task.w[0] == kStop) co_return;
    const std::uint64_t k = task.w[0], j = task.w[1];
    const std::uint64_t lo = task.w[2], hi = task.w[3];
    for (std::uint64_t i = lo; i < hi; ++i) {
      const std::uint64_t partner = i ^ j;
      if (partner <= i) continue;  // each pair handled once, by its low end
      const bool ascending = (i & k) == 0;
      const std::uint64_t a = co_await t.load(array + i * 8, 8);
      const std::uint64_t b = co_await t.load(array + partner * 8, 8);
      co_await t.compute(2);
      if ((a > b) == ascending) {
        co_await t.store(array + i * 8, b, 8);
        co_await t.store(array + partner * 8, a, 8);
      }
    }
    co_await done.send1(t, 1);
  }
}

/// Master: walk the bitonic network, fan each phase out as `workers`
/// index-range chunks, barrier on completions, then poison the pool.
Co<void> master(Channel& dispatch, Channel& done, SimThread t,
                std::uint64_t n, int workers) {
  for (std::uint64_t k = 2; k <= n; k <<= 1) {
    for (std::uint64_t j = k >> 1; j > 0; j >>= 1) {
      const std::uint64_t chunk = (n + workers - 1) / workers;
      int sent = 0;
      for (int w = 0; w < workers; ++w) {
        const std::uint64_t lo = w * chunk;
        if (lo >= n) break;
        const std::uint64_t hi = std::min(n, lo + chunk);
        Msg task;
        task.n = 4;
        task.w = {k, j, lo, hi, 0, 0, 0};
        co_await dispatch.send(t, task);
        ++sent;
      }
      for (int w = 0; w < sent; ++w) (void)co_await done.recv1(t);
      co_await t.compute(120);  // master's per-phase bookkeeping
    }
  }
  for (int w = 0; w < workers; ++w) {
    Msg stop;
    stop.n = 4;
    stop.w = {kStop, 0, 0, 0, 0, 0, 0};
    co_await dispatch.send(t, stop);
  }
}

}  // namespace

WorkloadResult run_bitonic(runtime::Machine& m, squeue::ChannelFactory& f,
                           int scale, int workers) {
  const std::uint64_t n = 256u * static_cast<std::uint64_t>(scale);
  auto dispatch = f.make("bitonic_dispatch", /*capacity_hint=*/64,
                         /*msg_words=*/4);
  auto done = f.make("bitonic_done", /*capacity_hint=*/64);

  const Addr array = m.alloc(n * 8);
  Xoshiro256 rng(7);
  for (std::uint64_t i = 0; i < n; ++i)
    m.mem().backing().write(array + i * 8, rng.next() >> 1, 8);

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  sim::spawn(master(*dispatch, *done, m.thread_on(0), n, workers));
  for (int w = 0; w < workers; ++w)
    sim::spawn(worker(*dispatch, *done, m.thread_on(static_cast<CoreId>(1 + w)),
                      array));
  m.run();

  // Validate: the array must be sorted (the workload is real, not a mock).
  std::uint64_t phases = 0, prev = 0;
  bool sorted = true;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t v = m.mem().backing().read(array + i * 8, 8);
    if (v < prev) sorted = false;
    prev = v;
  }
  for (std::uint64_t k = 2; k <= n; k <<= 1)
    for (std::uint64_t j = k >> 1; j > 0; j >>= 1) ++phases;

  WorkloadResult r;
  r.workload = sorted ? "bitonic" : "bitonic(UNSORTED!)";
  r.backend = squeue::to_string(f.backend());
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = phases * static_cast<std::uint64_t>(2 * workers);
  r.mem = m.mem().stats().diff(mem0);
  r.vlrd = m.vlrd_stats();
  return r;
}

}  // namespace vl::workloads
