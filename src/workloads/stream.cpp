// STREAM triad (McCalpin): a[i] = b[i] + s*c[i] over arrays sized well past
// the LLC, used by Fig. 14 to measure how much each message-channel
// implementation perturbs a memory-bound bystander.

#include "workloads/runner.hpp"

namespace vl::workloads {

namespace {

using sim::Co;
using sim::SimThread;

Co<void> triad(SimThread t, Addr a, Addr b, Addr c, std::size_t lines,
               int iters) {
  for (int it = 0; it < iters; ++it) {
    for (std::size_t i = 0; i < lines; ++i) {
      const Addr off = i * kLineSize;
      const std::uint64_t vb = co_await t.load(b + off, 8);
      const std::uint64_t vc = co_await t.load(c + off, 8);
      co_await t.compute(1);
      co_await t.store(a + off, vb + 3 * vc, 8);
    }
  }
}

}  // namespace

WorkloadResult run_stream(runtime::Machine& m, const StreamParams& p) {
  const std::size_t per_thread = p.lines_per_array / p.threads;
  const Addr a = m.alloc(p.lines_per_array * kLineSize);
  const Addr b = m.alloc(p.lines_per_array * kLineSize);
  const Addr c = m.alloc(p.lines_per_array * kLineSize);

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  for (int th = 0; th < p.threads; ++th) {
    const Addr off = th * per_thread * kLineSize;
    sim::spawn(triad(m.thread_on(p.first_core + static_cast<CoreId>(th)),
                     a + off, b + off, c + off, per_thread, p.iters));
  }
  m.run();

  WorkloadResult r;
  r.workload = "STREAM";
  r.backend = "-";
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = 0;
  r.mem = m.mem().stats().diff(mem0);
  return r;
}

}  // namespace vl::workloads
