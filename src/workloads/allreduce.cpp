// allreduce (Ember-style extension): a binary-tree reduction followed by a
// broadcast, written as bsp::World supersteps. Every worker contributes one
// value per round; partial sums flow up the tree level by level (one
// superstep per level), then the total fans back down. The pattern mixes
// convergecast pressure (like incast, but staged) with broadcast fan-out,
// and its critical path is 2·log2(N) channel hops — so per-hop latency,
// which VL attacks, dominates at small message sizes. Message count is
// identical to the hand-rolled version this replaced: 2·(N-1) per round.

#include "workloads/runner.hpp"

#include "bsp/world.hpp"

namespace vl::workloads {

namespace {

using sim::Co;

constexpr int kWorkers = 8;           // nodes of the 3-level binary tree
constexpr Tick kLocalCompute = 40;    // per-round contribution cost
constexpr Tick kCombineCompute = 10;  // one add at each internal node

int level_of(int pid) {
  int l = 0;
  while (pid > 0) {
    pid = (pid - 1) / 2;
    ++l;
  }
  return l;
}

// One tree node. The up-sweep runs deepest level first — at superstep l the
// level-l nodes send their partials to their parents — then the down-sweep
// broadcasts the total back out, one level per superstep. Every processor
// executes the same number of sync() calls (BSP collectives).
Co<void> node(bsp::Proc& p, bsp::Queue up, bsp::Queue down, int rounds,
              std::uint64_t* result_sink) {
  const int self = p.id();
  const int parent = (self - 1) / 2;
  const int left = 2 * self + 1, right = 2 * self + 2;
  const int lvl = level_of(self);
  const int depth = level_of(kWorkers - 1);
  for (int r = 0; r < rounds; ++r) {
    co_await p.compute(1, kLocalCompute);
    std::uint64_t acc = static_cast<std::uint64_t>(self + 1) * (r + 1);
    for (int l = depth; l >= 1; --l) {
      if (lvl == l) p.send(parent, up, {acc});
      co_await p.sync();
      if (lvl == l - 1) {
        for (const bsp::QMsg& qm : p.inbox(up)) {
          acc += qm.w[0];
          co_await p.compute(1, kCombineCompute);
        }
      }
    }
    std::uint64_t total = acc;  // the global sum, at the root
    for (int l = 0; l < depth; ++l) {
      if (lvl == l) {
        if (left < kWorkers) p.send(left, down, {total});
        if (right < kWorkers) p.send(right, down, {total});
      }
      co_await p.sync();
      if (lvl == l + 1) total = p.inbox(down)[0].w[0];
    }
    if (self == 0) *result_sink = total;
  }
}

}  // namespace

WorkloadResult run_allreduce(runtime::Machine& m, squeue::ChannelFactory& f,
                             int scale) {
  bsp::World w(m, f, bsp::Topology::tree(kWorkers), "ar", 16);
  const bsp::Queue up = w.queue();
  const bsp::Queue down = w.queue();
  const int rounds = 60 * scale;
  std::uint64_t result = 0;

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  for (int pid = 0; pid < kWorkers; ++pid)
    sim::spawn(node(w.proc(pid), up, down, rounds, &result));
  m.run();

  WorkloadResult r;
  r.workload = "allreduce";
  r.backend = squeue::to_string(f.backend());
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = w.messages();  // (N-1) partials up + (N-1) totals down / round
  r.mem = m.mem().stats().diff(mem0);
  r.vlrd = m.vlrd_stats();
  // Functional check rides in the workload name (the harness convention):
  // the final global sum for round `rounds` is sum_{w}(w+1)*rounds.
  std::uint64_t expect = 0;
  for (int pid = 0; pid < kWorkers; ++pid)
    expect += static_cast<std::uint64_t>(pid + 1) * rounds;
  if (result != expect) r.workload += "!";
  return r;
}

namespace {
const WorkloadRegistrar kReg{
    {"allreduce", 7,
     [](runtime::Machine& m, squeue::ChannelFactory& f, const RunConfig& rc) {
       return run_allreduce(m, f, rc.scale);
     },
     nullptr, RunConfig{},
     "tree reduce + broadcast over a 14-edge binary tree (bsp::World)"}};
}  // namespace

}  // namespace vl::workloads
