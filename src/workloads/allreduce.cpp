// allreduce (Ember-style extension): a binary-tree reduction followed by a
// broadcast. Every worker contributes one value per round; partial sums
// flow up a tree of 1:1 channels to the root, then the result fans back
// down. The pattern mixes convergecast pressure (like incast, but staged)
// with broadcast fan-out, and its critical path is 2·log2(N) channel hops —
// so per-hop latency, which VL attacks, dominates at small message sizes.

#include "workloads/runner.hpp"

#include <memory>
#include <vector>

namespace vl::workloads {

namespace {

using squeue::Channel;
using sim::Co;
using sim::SimThread;

constexpr int kWorkers = 8;            // leaves of the 3-level tree
constexpr Tick kLocalCompute = 40;     // per-round contribution cost
constexpr Tick kCombineCompute = 10;   // one add at each internal node

// Worker w (0-based) reduces with parent (w-1)/2 over up[w]; results come
// back over down[w]. Node 0 is the root. Each node owns at most two
// children: 2w+1 and 2w+2.
struct Tree {
  std::vector<std::unique_ptr<Channel>> up;    // child -> parent
  std::vector<std::unique_ptr<Channel>> down;  // parent -> child
};

Co<void> node(Tree& tree, SimThread t, int self, int rounds,
              std::uint64_t* result_sink) {
  const int left = 2 * self + 1, right = 2 * self + 2;
  for (int r = 0; r < rounds; ++r) {
    co_await t.compute(kLocalCompute);
    std::uint64_t acc = static_cast<std::uint64_t>(self + 1) * (r + 1);
    if (left < kWorkers) {
      acc += co_await tree.up[left]->recv1(t);
      co_await t.compute(kCombineCompute);
    }
    if (right < kWorkers) {
      acc += co_await tree.up[right]->recv1(t);
      co_await t.compute(kCombineCompute);
    }
    std::uint64_t total;
    if (self == 0) {
      total = acc;  // root holds the global sum
    } else {
      co_await tree.up[self]->send1(t, acc);
      total = co_await tree.down[self]->recv1(t);  // broadcast down
    }
    if (left < kWorkers) co_await tree.down[left]->send1(t, total);
    if (right < kWorkers) co_await tree.down[right]->send1(t, total);
    if (self == 0) *result_sink = total;
  }
}

}  // namespace

WorkloadResult run_allreduce(runtime::Machine& m, squeue::ChannelFactory& f,
                             int scale) {
  Tree tree;
  tree.up.resize(kWorkers);
  tree.down.resize(kWorkers);
  for (int w = 1; w < kWorkers; ++w) {
    tree.up[w] = f.make("ar_up_" + std::to_string(w), 16);
    tree.down[w] = f.make("ar_down_" + std::to_string(w), 16);
  }
  const int rounds = 60 * scale;
  std::uint64_t result = 0;

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  for (int w = 0; w < kWorkers; ++w)
    sim::spawn(node(tree, m.thread_on(static_cast<CoreId>(w)), w, rounds,
                    &result));
  m.run();

  // Each round moves (N-1) partial sums up and (N-1) totals down.
  WorkloadResult r;
  r.workload = "allreduce";
  r.backend = squeue::to_string(f.backend());
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = static_cast<std::uint64_t>(rounds) * 2 * (kWorkers - 1);
  r.mem = m.mem().stats().diff(mem0);
  r.vlrd = m.vlrd_stats();
  // Functional check rides in the workload name (the harness convention):
  // the final global sum for round `rounds` is sum_{w}(w+1)*rounds.
  std::uint64_t expect = 0;
  for (int w = 0; w < kWorkers; ++w)
    expect += static_cast<std::uint64_t>(w + 1) * rounds;
  if (result != expect) r.workload += "!";
  return r;
}

}  // namespace vl::workloads
