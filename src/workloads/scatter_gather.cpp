// scatter-gather (Ember-style extension): a master scatters task
// descriptors to a worker pool over one 1:N channel and gathers results
// over per-worker N:1 return queues — the fork/join idiom behind
// bulk-synchronous phases. Unlike bitonic (which also uses 1:N + M:1), the
// workers here are stateless and the master re-balances every round, so
// *queue* throughput — not worker compute — bounds the fork/join rate at
// small grain sizes.
//
// Channel API v2 shape: the master injects each round's tasks as one
// batched send_many (the backend amortizes its per-message device cost
// across the burst) and gathers with a Selector parked across all worker
// return queues — wait-any replaces the hand-rolled "drain one shared
// channel" loop, and the per-worker queues expose which worker finished,
// the way a real fork/join pool services completion queues.

#include <vector>

#include "squeue/selector.hpp"
#include "workloads/runner.hpp"

namespace vl::workloads {

namespace {

using squeue::Channel;
using squeue::Msg;
using squeue::Selector;
using sim::Co;
using sim::SimThread;

constexpr int kWorkers = 6;
constexpr Tick kGrainCompute = 120;  // per-task work (fine-grained)
constexpr Tick kMasterCompute = 15;  // per-result integration

Co<void> worker(Channel& scatter, Channel& gather, SimThread t, int tasks) {
  for (int i = 0; i < tasks; ++i) {
    const std::uint64_t task = co_await scatter.recv1(t);
    co_await t.compute(kGrainCompute);
    co_await gather.send1(t, task * 2 + 1);  // a recognizable transform
  }
}

Co<void> master(Channel& scatter, Selector& gather, SimThread t, int rounds,
                int tasks_per_round, std::uint64_t* checksum) {
  std::vector<Msg> batch(static_cast<std::size_t>(tasks_per_round));
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < tasks_per_round; ++i)
      batch[static_cast<std::size_t>(i)] =
          Msg::one(static_cast<std::uint64_t>(r) * tasks_per_round + i);
    co_await scatter.send_many(t, batch);  // one batched injection per round
    for (int i = 0; i < tasks_per_round; ++i) {
      const Selector::Item item = co_await gather.recv_any(t);
      *checksum += item.msg.w[0];
      co_await t.compute(kMasterCompute);
    }
  }
}

}  // namespace

WorkloadResult run_scatter_gather(runtime::Machine& m,
                                  squeue::ChannelFactory& f, int scale) {
  auto scatter = f.make("sg_scatter", 256);
  std::vector<std::unique_ptr<Channel>> gathers;
  Selector gather;
  for (int w = 0; w < kWorkers; ++w) {
    gathers.push_back(f.make("sg_gather" + std::to_string(w), 64));
    gather.add(*gathers.back());
  }
  const int rounds = 25 * scale;
  const int tasks_per_round = 24;  // 4 tasks per worker per round
  std::uint64_t checksum = 0;

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  const int per_worker = rounds * tasks_per_round / kWorkers;
  for (int w = 0; w < kWorkers; ++w)
    sim::spawn(worker(*scatter, *gathers[static_cast<std::size_t>(w)],
                      m.thread_on(static_cast<CoreId>(1 + w)), per_worker));
  sim::spawn(master(*scatter, gather, m.thread_on(0), rounds,
                    tasks_per_round, &checksum));
  m.run();

  WorkloadResult r;
  r.workload = "scatter-gather";
  r.backend = squeue::to_string(f.backend());
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = static_cast<std::uint64_t>(rounds) * tasks_per_round * 2;
  r.mem = m.mem().stats().diff(mem0);
  r.vlrd = m.vlrd_stats();
  // Checksum: sum over all tasks of (task*2 + 1).
  const std::uint64_t n = static_cast<std::uint64_t>(rounds) * tasks_per_round;
  const std::uint64_t expect = n * (n - 1) + n;  // sum(2k+1, k=0..n-1) = n^2
  if (checksum != expect) r.workload += "!";
  return r;
}

std::uint32_t scatter_gather_channel_count() { return 1 + kWorkers; }

}  // namespace vl::workloads
