// scatter-gather (Ember-style extension): a master scatters task
// descriptors to a worker pool and gathers transformed results — the
// fork/join idiom behind bulk-synchronous phases, now literally written as
// two bsp::World supersteps per round (scatter lands; results land).
// Unlike bitonic (which also fans out), the workers here are stateless and
// the master re-balances every round, so *queue* throughput — not worker
// compute — bounds the fork/join rate at small grain sizes.
//
// The World flushes each processor's staged sends as one Channel-v2
// send_many burst per neighbor and drains with a Selector parked across
// the return edges — exactly the batched-injection + wait-any shape the
// hand-rolled version built by hand. On VL the star graph's 12 directed
// edges (reported by the World itself) feed runtime::size_quotas so the
// shared prodBuf is carved to keep the fork/join relay deadlock-free.

#include "bsp/world.hpp"
#include "workloads/runner.hpp"

namespace vl::workloads {

namespace {

using sim::Co;

constexpr int kWorkers = 6;
constexpr Tick kGrainCompute = 120;  // per-task work (fine-grained)
constexpr Tick kMasterCompute = 15;  // per-result integration

bsp::Topology sg_topology() { return bsp::Topology::star(1 + kWorkers); }

Co<void> worker(bsp::Proc& p, bsp::Queue tasks, bsp::Queue results,
                int rounds) {
  for (int r = 0; r < rounds; ++r) {
    co_await p.sync();  // this round's tasks land
    for (const bsp::QMsg& qm : p.inbox(tasks)) {
      co_await p.compute(1, kGrainCompute);
      p.send(0, results, {qm.w[0] * 2 + 1});  // a recognizable transform
    }
    co_await p.sync();  // results travel back
  }
}

Co<void> master(bsp::Proc& p, bsp::Queue tasks, bsp::Queue results,
                int rounds, int tasks_per_round, std::uint64_t* checksum) {
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < tasks_per_round; ++i)
      p.send(1 + i % kWorkers, tasks,
             {static_cast<std::uint64_t>(r) * tasks_per_round + i});
    co_await p.sync();  // scatter
    co_await p.sync();  // gather
    for (const bsp::QMsg& qm : p.inbox(results)) {
      *checksum += qm.w[0];
      co_await p.compute(1, kMasterCompute);
    }
  }
}

}  // namespace

WorkloadResult run_scatter_gather(runtime::Machine& m,
                                  squeue::ChannelFactory& f, int scale) {
  bsp::World w(m, f, sg_topology(), "sg", 256);
  const bsp::Queue tasks = w.queue();
  const bsp::Queue results = w.queue();
  const int rounds = 25 * scale;
  const int tasks_per_round = 24;  // 4 tasks per worker per round
  std::uint64_t checksum = 0;

  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  for (int pid = 1; pid <= kWorkers; ++pid)
    sim::spawn(worker(w.proc(pid), tasks, results, rounds));
  sim::spawn(master(w.proc(0), tasks, results, rounds, tasks_per_round,
                    &checksum));
  m.run();

  WorkloadResult r;
  r.workload = "scatter-gather";
  r.backend = squeue::to_string(f.backend());
  r.ticks = m.now() - t0;
  r.ns = m.ns(r.ticks);
  r.messages = w.messages();  // tasks out + results back
  r.mem = m.mem().stats().diff(mem0);
  r.vlrd = m.vlrd_stats();
  // Checksum: sum over all tasks of (task*2 + 1).
  const std::uint64_t n = static_cast<std::uint64_t>(rounds) * tasks_per_round;
  const std::uint64_t expect = n * (n - 1) + n;  // sum(2k+1, k=0..n-1) = n^2
  if (checksum != expect) r.workload += "!";
  return r;
}

namespace {
const WorkloadRegistrar kReg{
    {"scatter-gather", 8,
     [](runtime::Machine& m, squeue::ChannelFactory& f, const RunConfig& rc) {
       return run_scatter_gather(m, f, rc.scale);
     },
     // The quota carve is fed by the World's own graph — the star's
     // directed edge count — never a hand-maintained constant.
     [](const RunConfig&) { return sg_topology().channel_count(); },
     RunConfig{},
     "fork/join rounds on a 12-edge star (bsp::World)"}};
}  // namespace

}  // namespace vl::workloads
