#pragma once
// Per-run measurement record: simulated wall time plus the coherence and
// device counters the paper's figures plot.

#include <cstdint>
#include <sstream>
#include <string>

#include "mem/stats.hpp"
#include "vlrd/vlrd.hpp"

namespace vl::workloads {

struct WorkloadResult {
  std::string workload;
  std::string backend;
  Tick ticks = 0;
  double ns = 0;
  std::uint64_t messages = 0;
  std::uint64_t events = 0;  ///< Simulator events executed by the run.
  mem::MemStats mem;         ///< Diffed over the region of interest.
  vlrd::VlrdStats vlrd;

  double ns_per_msg() const {
    return messages ? ns / static_cast<double>(messages) : 0.0;
  }
  double events_per_msg() const {
    return messages ? static_cast<double>(events) / static_cast<double>(messages)
                    : 0.0;
  }

  /// One-line deterministic fingerprint (determinism smokes compare these
  /// across runs; wall-clock fields are deliberately absent).
  std::string digest() const {
    std::ostringstream os;
    os << workload << '/' << backend << " ticks=" << ticks
       << " events=" << events << " messages=" << messages;
    return os.str();
  }
};

}  // namespace vl::workloads
