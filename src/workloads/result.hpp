#pragma once
// Per-run measurement record: simulated wall time plus the coherence and
// device counters the paper's figures plot.

#include <cstdint>
#include <string>

#include "mem/stats.hpp"
#include "vlrd/vlrd.hpp"

namespace vl::workloads {

struct WorkloadResult {
  std::string workload;
  std::string backend;
  Tick ticks = 0;
  double ns = 0;
  std::uint64_t messages = 0;
  mem::MemStats mem;         ///< Diffed over the region of interest.
  vlrd::VlrdStats vlrd;

  double ns_per_msg() const {
    return messages ? ns / static_cast<double>(messages) : 0.0;
  }
};

}  // namespace vl::workloads
