// sweep (Ember): a wavefront propagates from the top-left corner of a 4x4
// grid to the bottom-right, then sweeps back — each cell waits for its
// upstream neighbours, computes, and feeds its downstream neighbours.
// 48 directed 1:1 channels (24 forward + 24 backward); the dependency
// chain serializes most of the communication, which is why queue choice
// matters least here (paper: VL only 1.10x on sweep).

#include <map>
#include <memory>

#include "workloads/runner.hpp"

namespace vl::workloads {

namespace {

using squeue::Channel;
using sim::Co;
using sim::SimThread;

constexpr int kDim = 4;
constexpr Tick kCellCompute = 60;

int cell(int r, int c) { return r * kDim + c; }

using ChanMap = std::map<std::pair<int, int>, std::unique_ptr<Channel>>;

Co<void> sweep_thread(ChanMap& ch, SimThread t, int r, int c, int sweeps) {
  const int id = cell(r, c);
  for (int s = 0; s < sweeps; ++s) {
    // Forward wave: wait for up and left, feed down and right.
    std::uint64_t acc = static_cast<std::uint64_t>(s);
    if (r > 0) acc += co_await ch[{cell(r - 1, c), id}]->recv1(t);
    if (c > 0) acc += co_await ch[{cell(r, c - 1), id}]->recv1(t);
    co_await t.compute(kCellCompute);
    if (r < kDim - 1) co_await ch[{id, cell(r + 1, c)}]->send1(t, acc);
    if (c < kDim - 1) co_await ch[{id, cell(r, c + 1)}]->send1(t, acc);

    // Backward wave: wait for down and right, feed up and left.
    std::uint64_t back = acc;
    if (r < kDim - 1) back += co_await ch[{cell(r + 1, c), id}]->recv1(t);
    if (c < kDim - 1) back += co_await ch[{cell(r, c + 1), id}]->recv1(t);
    co_await t.compute(kCellCompute);
    if (r > 0) co_await ch[{id, cell(r - 1, c)}]->send1(t, back);
    if (c > 0) co_await ch[{id, cell(r, c - 1)}]->send1(t, back);
  }
}

}  // namespace

WorkloadResult run_sweep(runtime::Machine& m, squeue::ChannelFactory& f,
                         int scale) {
  ChanMap ch;
  int links = 0;
  for (int r = 0; r < kDim; ++r) {
    for (int c = 0; c < kDim; ++c) {
      const int id = cell(r, c);
      // Forward (down, right) and backward (up, left) edges.
      const int tr[4] = {r + 1, r, r - 1, r};
      const int tc[4] = {c, c + 1, c, c - 1};
      for (int d = 0; d < 4; ++d) {
        if (tr[d] < 0 || tr[d] >= kDim || tc[d] < 0 || tc[d] >= kDim) continue;
        const int v = cell(tr[d], tc[d]);
        ch[{id, v}] = f.make("sweep_" + std::to_string(id) + "_" +
                                 std::to_string(v),
                             /*capacity_hint=*/64);
        ++links;
      }
    }
  }

  const int sweeps = 10 * scale;
  const auto mem0 = m.mem().stats();
  const Tick t0 = m.now();
  for (int r = 0; r < kDim; ++r)
    for (int c = 0; c < kDim; ++c)
      sim::spawn(sweep_thread(ch, m.thread_on(static_cast<CoreId>(cell(r, c))),
                              r, c, sweeps));
  m.run();

  WorkloadResult res;
  res.workload = "sweep";
  res.backend = squeue::to_string(f.backend());
  res.ticks = m.now() - t0;
  res.ns = m.ns(res.ticks);
  res.messages = static_cast<std::uint64_t>(links) * sweeps;
  res.mem = m.mem().stats().diff(mem0);
  res.vlrd = m.vlrd_stats();
  return res;
}

namespace {
const WorkloadRegistrar kReg{
    {"sweep", 2,
     [](runtime::Machine& m, squeue::ChannelFactory& f, const RunConfig& rc) {
       return run_sweep(m, f, rc.scale);
     },
     nullptr, RunConfig{},
     "wavefront corner-to-corner and back over 48 1:1 channels"}};
}  // namespace

}  // namespace vl::workloads
