#include "bsp/world.hpp"

#include <algorithm>

namespace vl::bsp {
namespace {

// Backoff when a flush burst is refused and no opportunistic drain made
// progress — same order as the backends' discovery cadence.
constexpr Tick kFlushBackoff = 16;

}  // namespace

// ---------------------------------------------------------------------------
// Topology

Topology Topology::grid(int rows, int cols) {
  Topology t(rows * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const int u = r * cols + c;
      if (r + 1 < rows) t.biconnect(u, (r + 1) * cols + c);
      if (c + 1 < cols) t.biconnect(u, r * cols + c + 1);
    }
  }
  return t;
}

Topology Topology::tree(int nprocs) {
  Topology t(nprocs);
  for (int i = 1; i < nprocs; ++i) t.biconnect((i - 1) / 2, i);
  return t;
}

Topology Topology::star(int nprocs) {
  Topology t(nprocs);
  for (int i = 1; i < nprocs; ++i) t.biconnect(0, i);
  return t;
}

void Topology::connect(int src, int dst) {
  assert(src >= 0 && src < n_ && dst >= 0 && dst < n_ && src != dst);
  const auto e = std::make_pair(src, dst);
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
  if (it == edges_.end() || *it != e) edges_.insert(it, e);
}

// ---------------------------------------------------------------------------
// World construction

World::World(runtime::Machine& m, squeue::ChannelFactory& f, Topology topo,
             std::string name, std::size_t capacity_hint,
             std::uint8_t msg_words)
    : m_(m),
      topo_(std::move(topo)),
      msg_words_(msg_words),
      barrier_(m.eq(), static_cast<std::uint32_t>(topo_.nprocs())) {
  assert(msg_words_ >= 2 && msg_words_ <= 7);
  const int n = topo_.nprocs();
  chans_.reserve(topo_.edges().size());
  for (const auto& [u, v] : topo_.edges()) {
    chans_.push_back(f.make(
        name + "_" + std::to_string(u) + "_" + std::to_string(v),
        capacity_hint, msg_words_));
  }
  pp_.reserve(static_cast<std::size_t>(n));
  procs_.reserve(static_cast<std::size_t>(n));
  for (int pid = 0; pid < n; ++pid) {
    auto pp = std::make_unique<PerProc>();
    pp->pid = pid;
    pp->t = m.thread_on(static_cast<CoreId>(
        static_cast<std::uint32_t>(pid) % m.num_cores()));
    pp_.push_back(std::move(pp));
    procs_.push_back(Proc(this, pid, pp_.back()->t));
  }
  // Edge lists are sorted (src, dst), so per-proc out/in lists built in
  // edge order come out ascending by peer pid — the deterministic selector
  // and inbox order.
  for (std::size_t e = 0; e < topo_.edges().size(); ++e) {
    const auto& [u, v] = topo_.edges()[e];
    PerProc& pu = *pp_[static_cast<std::size_t>(u)];
    pu.out.push_back(v);
    pu.out_edge.push_back(e);
    PerProc& pv = *pp_[static_cast<std::size_t>(v)];
    pv.in.push_back(u);
    pv.in_edge.push_back(e);
  }
  for (auto& pp : pp_) {
    pp->staged.resize(pp->out.size());
    for (std::size_t i = 0; i < pp->in.size(); ++i)
      pp->sel.add(*chans_[pp->in_edge[i]]);
  }
  for (auto& buf : sent_cnt_) buf.assign(topo_.edges().size(), 0);
  for (auto& buf : reply_cnt_) buf.assign(topo_.edges().size(), 0);
  for (auto& buf : gets_staged_) buf.assign(static_cast<std::size_t>(n), 0);
}

World::~World() = default;

Var World::var(std::uint64_t init) {
  const auto slot = static_cast<std::uint16_t>(vars_.size());
  vars_.emplace_back(static_cast<std::size_t>(topo_.nprocs()), init);
  return Var{slot};
}

Coarray World::coarray(std::size_t len, std::uint64_t init) {
  assert(len > 0);
  const auto slot = static_cast<std::uint16_t>(arrays_.size());
  arrays_.emplace_back(static_cast<std::size_t>(topo_.nprocs()) * len, init);
  array_len_.push_back(len);
  return Coarray{slot};
}

Queue World::queue() {
  const Queue q{static_cast<std::uint16_t>(nqueues_++)};
  for (auto& pp : pp_) pp->inbox.resize(nqueues_);
  return q;
}

runtime::ChannelDemand World::demand() const {
  runtime::ChannelDemand d;
  d.relay_channels = channel_count();
  return d;
}

std::vector<int>& World::neighbors_out(int pid) {
  return pp_.at(static_cast<std::size_t>(pid))->out;
}

std::vector<int>& World::neighbors_in(int pid) {
  return pp_.at(static_cast<std::size_t>(pid))->in;
}

std::uint64_t World::supersteps() const { return pp_.front()->step; }

std::uint64_t& World::value(Var v, int pid) {
  return vars_.at(v.slot).at(static_cast<std::size_t>(pid));
}

std::uint64_t& World::value(Coarray a, int pid, std::size_t i) {
  assert(i < array_len_.at(a.slot));
  return arrays_.at(a.slot).at(
      static_cast<std::size_t>(pid) * array_len_[a.slot] + i);
}

// ---------------------------------------------------------------------------
// Wire format: w[0] is a header word —
//   bits [0,3)  OpKind        bits [8,16)  step (mod 256)
//   bit  3      phase (0 = requests/puts/queue, 1 = get replies)
//   bits [16,32) slot/queue id  bits [32,36) queue payload words
// Payload words follow in w[1..]. The source pid is never on the wire: the
// receiver derives it from which channel (selector index) delivered.

std::uint64_t World::pack_hdr(OpKind k, int phase, std::uint64_t step,
                              std::uint32_t id, std::uint8_t nwords) {
  return static_cast<std::uint64_t>(k) |
         (static_cast<std::uint64_t>(phase & 1) << 3) | ((step & 0xff) << 8) |
         (static_cast<std::uint64_t>(id & 0xffff) << 16) |
         (static_cast<std::uint64_t>(nwords & 0xf) << 32);
}

bool World::tag_matches(const squeue::Msg& msg, std::uint64_t step,
                        int phase) {
  const std::uint64_t hdr = msg.w[0];
  return ((hdr >> 8) & 0xff) == (step & 0xff) &&
         static_cast<int>((hdr >> 3) & 1) == phase;
}

// ---------------------------------------------------------------------------
// Staging (free host bookkeeping; Proc forwards here)

void World::stage(int pid, int dst, const squeue::Msg& msg) {
  PerProc& me = *pp_[static_cast<std::size_t>(pid)];
  // Wire frames are fixed-size (CAF transfers exactly `words_` register
  // trips per frame; the trailing pad words are zero) — the payload width
  // a receiver should read travels in the header, not in Msg::n.
  squeue::Msg m = msg;
  m.n = msg_words_;
  if (dst == pid) {
    me.staged_self.push_back(m);
    return;
  }
  me.staged[out_index(me, dst)].push_back(m);
}

std::size_t World::out_index(const PerProc& me, int dst) const {
  const auto it = std::lower_bound(me.out.begin(), me.out.end(), dst);
  assert(it != me.out.end() && *it == dst &&
         "bsp: put/get/send target is not a topology neighbor");
  return static_cast<std::size_t>(it - me.out.begin());
}

GetHandle World::stage_get(int pid, int src, OpKind kind, std::uint16_t slot,
                           std::uint64_t index) {
  PerProc& me = *pp_[static_cast<std::size_t>(pid)];
  const GetHandle h{me.staged_gets++};
  squeue::Msg msg;
  msg.w[0] = pack_hdr(kind, 0, me.step, slot);
  msg.w[1] = h.index;
  msg.w[2] = index;
  msg.n = 3;
  stage(pid, src, msg);
  return h;
}

// ---------------------------------------------------------------------------
// Delivery

void World::dispatch(PerProc& me, int src, const squeue::Msg& msg) {
  const std::uint64_t hdr = msg.w[0];
  const auto kind = static_cast<OpKind>(hdr & 7);
  const auto id = static_cast<std::uint16_t>((hdr >> 16) & 0xffff);
  switch (kind) {
    case OpKind::kPutVar:
      me.puts.push_back({src, kind, id, 0, msg.w[1]});
      break;
    case OpKind::kPutElem:
      me.puts.push_back({src, kind, id, msg.w[1], msg.w[2]});
      break;
    case OpKind::kGetVar:
      me.replies.push_back(
          {src, kind, id, static_cast<std::uint32_t>(msg.w[1]), 0});
      break;
    case OpKind::kGetElem:
      me.replies.push_back(
          {src, kind, id, static_cast<std::uint32_t>(msg.w[1]), msg.w[2]});
      break;
    case OpKind::kReply:
      me.get_vals.at(msg.w[1]) = msg.w[2];
      break;
    case OpKind::kQueue: {
      QMsg qm;
      qm.src = src;
      qm.n = static_cast<std::uint8_t>((hdr >> 32) & 0xf);
      for (std::uint8_t i = 0; i < qm.n; ++i) qm.w[i] = msg.w[1 + i];
      me.inbox.at(id).push_back(qm);
      break;
    }
  }
}

void World::stage_replies(PerProc& me) {
  // Canonical reply order (requester, handle) — replies are keyed by
  // handle so this is purely for a backend-independent staging order.
  std::stable_sort(me.replies.begin(), me.replies.end(),
                   [](const ReplyDue& a, const ReplyDue& b) {
                     return a.requester != b.requester
                                ? a.requester < b.requester
                                : a.handle < b.handle;
                   });
  for (const ReplyDue& rd : me.replies) {
    const std::uint64_t value =
        rd.kind == OpKind::kGetVar
            ? vars_.at(rd.slot)[static_cast<std::size_t>(me.pid)]
            : arrays_.at(rd.slot)[static_cast<std::size_t>(me.pid) *
                                      array_len_[rd.slot] +
                                  rd.index];
    if (rd.requester == me.pid) {
      me.get_vals.at(rd.handle) = value;
      continue;
    }
    squeue::Msg msg;
    msg.w[0] = pack_hdr(OpKind::kReply, 1, me.step, rd.slot);
    msg.w[1] = rd.handle;
    msg.w[2] = value;
    msg.n = msg_words_;  // fixed-size wire frame, zero-padded
    me.staged[out_index(me, rd.requester)].push_back(msg);
  }
  me.replies.clear();
}

void World::apply_puts(PerProc& me) {
  // Source order; within one source, arrival order == send order (FIFO
  // channels) — so the application order is backend-independent.
  std::stable_sort(
      me.puts.begin(), me.puts.end(),
      [](const PendingPut& a, const PendingPut& b) { return a.src < b.src; });
  for (const PendingPut& p : me.puts) {
    if (p.kind == OpKind::kPutVar) {
      vars_.at(p.slot)[static_cast<std::size_t>(me.pid)] = p.value;
    } else {
      arrays_.at(p.slot)[static_cast<std::size_t>(me.pid) *
                             array_len_[p.slot] +
                         p.index] = p.value;
    }
  }
  me.puts.clear();
}

// ---------------------------------------------------------------------------
// The superstep protocol. Per sync() call, every processor:
//
//   1. publishes its per-edge staged counts (parity slot step%2) and its
//      staged-get count, dispatches self-ops, flushes each per-neighbor
//      batch as try_send_many bursts;
//   2. arrives at the sim::Barrier (suspends; zero events while waiting);
//   3. drains phase A: consumes exactly the published counts off its
//      in-channels via Selector wait-any, buffering any early messages
//      from a neighbor already in its *next* superstep;
//   4. if anyone staged a get this superstep (the parity-slot sums are a
//      consistent snapshot — every writer wrote before the barrier), all
//      processors run a phase B: stage replies reading pre-put slot
//      values, publish reply counts, flush, barrier again, drain replies;
//   5. applies buffered puts in source order and sorts inboxes.
//
// A neighbor's flush for superstep s+1 can land while a slow processor is
// still draining superstep s (flushes precede barriers) — that is what the
// early buffer and the (step, phase) header tag absorb. Nothing from
// superstep s+2 can arrive before the slow processor finishes s: its
// sender would first have to pass a barrier that needs *this* processor's
// arrival.

sim::Co<void> World::sync(int pid) {
  PerProc& me = *pp_[static_cast<std::size_t>(pid)];
  const std::size_t par = static_cast<std::size_t>(me.step & 1);

  // The previous superstep's deliveries die at this boundary.
  for (auto& box : me.inbox) box.clear();
  me.get_vals.assign(me.staged_gets, 0);
  gets_staged_[par][static_cast<std::size_t>(pid)] = me.staged_gets;
  me.staged_gets = 0;

  for (std::size_t i = 0; i < me.out.size(); ++i)
    sent_cnt_[par][me.out_edge[i]] =
        static_cast<std::uint32_t>(me.staged[i].size());
  for (const squeue::Msg& msg : me.staged_self) dispatch(me, pid, msg);
  me.staged_self.clear();
  co_await flush(me);

  co_await barrier_.arrive();
  co_await drain(me, /*phase=*/0);

  std::uint64_t total_gets = 0;
  for (int p = 0; p < topo_.nprocs(); ++p)
    total_gets += gets_staged_[par][static_cast<std::size_t>(p)];
  if (total_gets > 0) {
    stage_replies(me);
    for (std::size_t i = 0; i < me.out.size(); ++i)
      reply_cnt_[par][me.out_edge[i]] =
          static_cast<std::uint32_t>(me.staged[i].size());
    co_await flush(me);
    co_await barrier_.arrive();
    co_await drain(me, /*phase=*/1);
  }

  apply_puts(me);
  for (auto& box : me.inbox)
    std::stable_sort(box.begin(), box.end(),
                     [](const QMsg& a, const QMsg& b) { return a.src < b.src; });
  ++me.step;
}

sim::Co<void> World::flush(PerProc& me) {
  for (std::size_t i = 0; i < me.out.size(); ++i) {
    std::vector<squeue::Msg>& batch = me.staged[i];
    if (batch.empty()) continue;
    squeue::Channel& ch = *chans_[me.out_edge[i]];
    std::size_t done = 0;
    while (done < batch.size()) {
      const squeue::SendManyResult r = co_await ch.try_send_many(
          me.t, std::span<const squeue::Msg>(batch).subspan(done));
      done += r.sent;
      if (done >= batch.size()) break;
      if (r.status == squeue::SendStatus::kOk) continue;  // lap boundary
      // Device buffers full (VL's shared prodBuf, CAF credits): drain our
      // own in-channels opportunistically so cross-processor flushes
      // cannot deadlock on shared device capacity, else back off one
      // discovery interval.
      if (!(co_await drain_once(me))) co_await me.t.compute(kFlushBackoff);
    }
    messages_ += batch.size();
    batch.clear();
  }
}

sim::Co<bool> World::drain_once(PerProc& me) {
  bool any = false;
  for (std::size_t i = 0; i < me.in.size(); ++i) {
    const squeue::RecvResult r = co_await chans_[me.in_edge[i]]->try_recv(me.t);
    if (r.ok()) {
      me.early.push_back({me.in[i], r.msg});
      any = true;
    }
  }
  co_return any;
}

sim::Co<void> World::drain(PerProc& me, int phase) {
  const std::size_t par = static_cast<std::size_t>(me.step & 1);
  const std::vector<std::uint32_t>& cnt =
      (phase == 0 ? sent_cnt_ : reply_cnt_)[par];
  std::uint64_t remaining = 0;
  for (std::size_t i = 0; i < me.in.size(); ++i) remaining += cnt[me.in_edge[i]];

  // Early arrivals buffered during a flush stall or a previous drain
  // count first; a fully early-satisfied (or empty) drain never touches
  // the selector at all.
  for (auto it = me.early.begin(); it != me.early.end() && remaining > 0;) {
    if (tag_matches(it->msg, me.step, phase)) {
      dispatch(me, it->src, it->msg);
      --remaining;
      it = me.early.erase(it);
    } else {
      ++it;
    }
  }
  while (remaining > 0) {
    const squeue::Selector::Item item = co_await me.sel.recv_any(me.t);
    const int src = me.in[item.index];
    if (tag_matches(item.msg, me.step, phase)) {
      dispatch(me, src, item.msg);
      --remaining;
    } else {
      me.early.push_back({src, item.msg});
    }
  }
}

// ---------------------------------------------------------------------------
// Proc forwarding

int Proc::nprocs() const { return w_->nprocs(); }

std::uint64_t& Proc::local(Var v) { return w_->value(v, pid_); }

std::uint64_t& Proc::local(Coarray a, std::size_t i) {
  return w_->value(a, pid_, i);
}

void Proc::put(int dst, Var v, std::uint64_t value) {
  squeue::Msg m;
  m.w[0] = World::pack_hdr(World::OpKind::kPutVar, 0,
                           w_->pp_[static_cast<std::size_t>(pid_)]->step,
                           v.slot);
  m.w[1] = value;
  m.n = 2;
  w_->stage(pid_, dst, m);
}

void Proc::put(int dst, Coarray a, std::size_t i, std::uint64_t value) {
  squeue::Msg m;
  m.w[0] = World::pack_hdr(World::OpKind::kPutElem, 0,
                           w_->pp_[static_cast<std::size_t>(pid_)]->step,
                           a.slot);
  m.w[1] = i;
  m.w[2] = value;
  m.n = 3;
  w_->stage(pid_, dst, m);
}

GetHandle Proc::get(int src, Var v) {
  return w_->stage_get(pid_, src, World::OpKind::kGetVar, v.slot, 0);
}

GetHandle Proc::get(int src, Coarray a, std::size_t i) {
  return w_->stage_get(pid_, src, World::OpKind::kGetElem, a.slot, i);
}

std::uint64_t Proc::got(GetHandle h) const {
  return w_->pp_[static_cast<std::size_t>(pid_)]->get_vals.at(h.index);
}

void Proc::send(int dst, Queue q, std::span<const std::uint64_t> words) {
  assert(words.size() <= 6 &&
         words.size() + 1 <= static_cast<std::size_t>(w_->msg_words_));
  squeue::Msg m;
  m.w[0] = World::pack_hdr(World::OpKind::kQueue, 0,
                           w_->pp_[static_cast<std::size_t>(pid_)]->step,
                           q.id, static_cast<std::uint8_t>(words.size()));
  for (std::size_t i = 0; i < words.size(); ++i) m.w[1 + i] = words[i];
  m.n = static_cast<std::uint8_t>(1 + words.size());
  w_->stage(pid_, dst, m);
}

const std::vector<QMsg>& Proc::inbox(Queue q) const {
  return w_->pp_[static_cast<std::size_t>(pid_)]->inbox.at(q.id);
}

sim::Co<void> Proc::sync() { return w_->sync(pid_); }

sim::Co<void> Proc::compute(std::uint64_t n_elems, Tick cost_per_elem) {
  const std::uint64_t total = n_elems * cost_per_elem;
  w_->compute_charged_ += total;
  if (total > 0) co_await t_.compute(total);
}

}  // namespace vl::bsp
