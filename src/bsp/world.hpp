#pragma once
// bsp::World — a Bulk-style bulk-synchronous (BSP) collective layer over
// Channel v2 and squeue::Selector (ROADMAP item 5; Bulk's var/put/get/sync
// is the model, SNIPPETS.md #2).
//
// A World is spawned over an existing runtime::Machine: one SimThread per
// processor (pid -> core pid % num_cores, so master-on-0 layouts survive).
// Between two sync() calls a processor *stages* communication — put() into
// a registered Var/Coarray slot on a peer, get() a peer's slot value,
// send() into a peer's message Queue — and none of it touches a channel
// until sync() flushes each per-neighbor batch as one Channel-v2
// try_send_many burst. The superstep barrier itself is sim::Barrier
// (suspended coroutines; zero events while waiting) and the delivery
// drains are Selector wait-any loops — park/wake on ZMQ, one bounded probe
// pass per backend discovery cadence elsewhere — never a busy-poll.
//
// Cost model: staging is free (host bookkeeping); simulated time is charged
// by (a) the channel operations of the flush/drain, (b) loads/stores the
// kernel issues itself, and (c) the explicit superstep compute hook
// `proc.compute(n_elems, cost_per_elem)` — the knob that makes Fig. 12's
// *absolute* speedup claim testable (bitonic charges compare cost per
// element through it).
//
// Determinism: inboxes are sorted by source pid (per-source order is send
// order, channels are FIFO), puts apply in source order, gets are
// slot-addressed — so kernel *results* are identical across all five
// backends, and whole runs are byte-identical for a fixed (backend, seed).
// See src/bsp/README.md for the superstep protocol and its correctness
// argument.

#include <array>
#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/qos_supervisor.hpp"
#include "squeue/factory.hpp"
#include "squeue/selector.hpp"

namespace vl::bsp {

class World;
class Proc;

/// Directed communication graph over P processors. put/get/send to pid v
/// from pid u requires the edge u->v (get also needs v->u for the reply);
/// one channel per directed edge. channel_count() is what feeds the QoS
/// quota carve (runtime::size_quotas) — the graph itself is the source of
/// truth, never a hand-maintained constant.
class Topology {
 public:
  explicit Topology(int nprocs) : n_(nprocs) { assert(nprocs > 0); }

  /// rows x cols grid, 4-neighbor, both directions per adjacent pair.
  static Topology grid(int rows, int cols);
  /// Binary-heap tree over pids 0..n-1 (parent (i-1)/2), both directions.
  static Topology tree(int nprocs);
  /// Hub-and-spoke: pid 0 <-> every other pid.
  static Topology star(int nprocs);

  void connect(int src, int dst);
  void biconnect(int a, int b) {
    connect(a, b);
    connect(b, a);
  }

  int nprocs() const { return n_; }
  std::uint32_t channel_count() const {
    return static_cast<std::uint32_t>(edges_.size());
  }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

 private:
  int n_ = 0;
  std::vector<std::pair<int, int>> edges_;  // sorted, unique
};

/// Registered slot handles. Created on the World before spawning kernels;
/// cheap value types a kernel captures by copy.
struct Var {
  std::uint16_t slot = 0;
};
struct Coarray {
  std::uint16_t slot = 0;
};
struct Queue {
  std::uint16_t id = 0;
};
/// Ticket for a staged get(); redeem with Proc::got() after the sync.
struct GetHandle {
  std::uint32_t index = 0;
};

/// One queue message as delivered into a superstep inbox.
struct QMsg {
  int src = 0;
  std::uint8_t n = 0;
  std::array<std::uint64_t, 6> w{};
};

/// A processor's view of the World: the handle kernels program against.
class Proc {
 public:
  int id() const { return pid_; }
  int nprocs() const;
  sim::SimThread thread() const { return t_; }
  World& world() { return *w_; }

  /// This processor's image of a registered slot (host reference — reads
  /// and writes are free, like Bulk's `var.value()`).
  std::uint64_t& local(Var v);
  std::uint64_t& local(Coarray a, std::size_t i);

  // --- staged communication (free; lands at the next sync) ---------------
  void put(int dst, Var v, std::uint64_t value);
  void put(int dst, Coarray a, std::size_t i, std::uint64_t value);
  GetHandle get(int src, Var v);
  GetHandle get(int src, Coarray a, std::size_t i);
  /// Value fetched by `h` — as of the peer's superstep *start* (BSP get
  /// semantics: reads see the state before this superstep's puts).
  std::uint64_t got(GetHandle h) const;
  void send(int dst, Queue q, std::span<const std::uint64_t> words);
  void send(int dst, Queue q, std::initializer_list<std::uint64_t> words) {
    send(dst, q, std::span<const std::uint64_t>(words.begin(), words.size()));
  }

  /// Messages delivered into `q` last sync, sorted by source pid (within
  /// one source: send order). Valid until this processor's next sync().
  const std::vector<QMsg>& inbox(Queue q) const;

  /// Superstep boundary. Every processor of the World must call sync()
  /// the same number of times (collective, like Bulk).
  sim::Co<void> sync();

  /// The superstep compute-cost hook: charge `n_elems * cost_per_elem`
  /// simulated ticks of local work to this processor.
  sim::Co<void> compute(std::uint64_t n_elems, Tick cost_per_elem);

 private:
  friend class World;
  Proc(World* w, int pid, sim::SimThread t) : w_(w), pid_(pid), t_(t) {}

  World* w_;
  int pid_;
  sim::SimThread t_;
};

class World {
 public:
  /// Builds one channel per directed topology edge ("<name>_u_v") and one
  /// SimThread per processor. `msg_words` fixes the wire frame (header
  /// word + payload; 3 covers var puts/gets/replies and 2-word queue
  /// sends — raise it for wider queue messages).
  World(runtime::Machine& m, squeue::ChannelFactory& f, Topology topo,
        std::string name = "bsp", std::size_t capacity_hint = 256,
        std::uint8_t msg_words = 3);
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  ~World();

  int nprocs() const { return topo_.nprocs(); }
  Proc& proc(int pid) { return procs_.at(static_cast<std::size_t>(pid)); }

  // --- slot registration (before spawning kernels) ------------------------
  Var var(std::uint64_t init = 0);
  Coarray coarray(std::size_t len, std::uint64_t init = 0);
  Queue queue();

  // --- the graph as the quota-carve source of truth -----------------------
  std::uint32_t channel_count() const { return topo_.channel_count(); }
  const Topology& topology() const { return topo_; }
  /// Channel demand for runtime::size_quotas — this is what workloads feed
  /// into the VLRD per-SQI quota carve.
  runtime::ChannelDemand demand() const;

  std::vector<int>& neighbors_out(int pid);
  std::vector<int>& neighbors_in(int pid);

  // --- counters -----------------------------------------------------------
  /// Payload messages actually sent over channels (puts + gets + replies +
  /// queue sends; self-ops short-circuit and are not counted).
  std::uint64_t messages() const { return messages_; }
  /// Completed supersteps (sync generations of pid 0).
  std::uint64_t supersteps() const;
  /// Total ticks charged through the compute hook (all processors).
  std::uint64_t compute_charged() const { return compute_charged_; }

  /// Host-side access to a processor's slot image (setup / validation).
  std::uint64_t& value(Var v, int pid);
  std::uint64_t& value(Coarray a, int pid, std::size_t i);

 private:
  friend class Proc;

  enum class OpKind : std::uint8_t {
    kPutVar = 0,
    kPutElem = 1,
    kGetVar = 2,
    kGetElem = 3,
    kReply = 4,
    kQueue = 5,
  };

  struct PendingPut {
    int src = 0;
    OpKind kind = OpKind::kPutVar;
    std::uint16_t slot = 0;
    std::uint64_t index = 0;
    std::uint64_t value = 0;
  };
  struct ReplyDue {
    int requester = 0;
    OpKind kind = OpKind::kGetVar;
    std::uint16_t slot = 0;
    std::uint32_t handle = 0;
    std::uint64_t index = 0;
  };
  struct Early {
    int src = 0;
    squeue::Msg msg{};
  };

  struct PerProc {
    int pid = 0;
    sim::SimThread t{};
    std::vector<int> out;               // dst pids, ascending
    std::vector<std::size_t> out_edge;  // topology edge index per out dst
    std::vector<int> in;                // src pids, ascending
    std::vector<std::size_t> in_edge;
    squeue::Selector sel;  // over in channels, same order as `in`
    std::vector<std::vector<squeue::Msg>> staged;  // per out index
    std::vector<squeue::Msg> staged_self;
    std::uint32_t staged_gets = 0;
    std::vector<std::uint64_t> get_vals;
    std::vector<PendingPut> puts;
    std::vector<ReplyDue> replies;
    std::vector<std::vector<QMsg>> inbox;  // per queue id
    std::vector<Early> early;
    std::uint64_t step = 0;
  };

  static std::uint64_t pack_hdr(OpKind k, int phase, std::uint64_t step,
                                std::uint32_t id, std::uint8_t nwords = 0);
  static bool tag_matches(const squeue::Msg& msg, std::uint64_t step,
                          int phase);

  void stage(int pid, int dst, const squeue::Msg& msg);
  GetHandle stage_get(int pid, int src, OpKind kind, std::uint16_t slot,
                      std::uint64_t index);
  std::size_t out_index(const PerProc& me, int dst) const;
  void dispatch(PerProc& me, int src, const squeue::Msg& msg);
  void stage_replies(PerProc& me);
  void apply_puts(PerProc& me);

  sim::Co<void> sync(int pid);
  sim::Co<void> flush(PerProc& me);
  sim::Co<bool> drain_once(PerProc& me);
  sim::Co<void> drain(PerProc& me, int phase);

  runtime::Machine& m_;
  Topology topo_;
  std::uint8_t msg_words_;
  std::vector<std::unique_ptr<squeue::Channel>> chans_;  // per edge
  std::vector<std::unique_ptr<PerProc>> pp_;
  std::vector<Proc> procs_;

  std::vector<std::vector<std::uint64_t>> vars_;    // [slot][pid]
  std::vector<std::vector<std::uint64_t>> arrays_;  // [slot][pid*len + i]
  std::vector<std::size_t> array_len_;
  std::uint32_t nqueues_ = 0;

  sim::Barrier barrier_;
  // Superstep count tables, double-buffered by step parity: a writer's
  // next write to the same parity slot is two barriers away, which
  // transitively orders it after every reader of the current value (the
  // reader must arrive at the intervening barrier first). Single-buffered
  // tables race: a fast processor can reach superstep s+1's publish while
  // a slow one is still reading superstep s's counts.
  std::array<std::vector<std::uint32_t>, 2> sent_cnt_;    // per edge
  std::array<std::vector<std::uint32_t>, 2> reply_cnt_;   // per edge
  std::array<std::vector<std::uint32_t>, 2> gets_staged_;  // per pid

  std::uint64_t messages_ = 0;
  std::uint64_t compute_charged_ = 0;
};

}  // namespace vl::bsp
