#include "runtime/machine.hpp"

#include <cassert>

namespace vl::runtime {

Machine::Machine(const sim::SystemConfig& cfg) : cfg_(cfg) {
  hier_ = std::make_unique<mem::Hierarchy>(eq_, cfg_.num_cores, cfg_.cache);
  cluster_ = std::make_unique<vlrd::Cluster>(eq_, *hier_, cfg_.vlrd);
  cores_.reserve(cfg_.num_cores);
  ports_.reserve(cfg_.num_cores);
  for (CoreId i = 0; i < cfg_.num_cores; ++i) {
    cores_.push_back(std::make_unique<sim::Core>(eq_, i, *hier_, cfg_.core));
    ports_.push_back(std::make_unique<isa::VlPort>(*cores_.back(), *hier_,
                                                   *cluster_, cfg_.vlrd));
  }
  // Back-pressured producers park on vl_space_wq_; any device freeing
  // producer-buffer space wakes them all (they re-attempt the push, and
  // whoever still finds no room re-parks).
  for (std::uint32_t d = 0; d < cluster_->size(); ++d)
    cluster_->device(d).set_push_retry_callback(
        [this] { vl_space_wq_.wake_all(); });
}

Addr Machine::alloc(std::size_t bytes, std::size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0 && "align must be pow2");
  brk_ = (brk_ + align - 1) & ~static_cast<Addr>(align - 1);
  const Addr p = brk_;
  brk_ += bytes;
  assert(!vlrd::is_device_addr(brk_) && "heap grew into the device window");
  return p;
}

}  // namespace vl::runtime
