#include "runtime/machine.hpp"

#include <cassert>

namespace vl::runtime {

Machine::Machine(const sim::SystemConfig& cfg) : cfg_(cfg) {
  hier_ = std::make_unique<mem::Hierarchy>(eq_, cfg_.num_cores, cfg_.cache);
  cluster_ = std::make_unique<vlrd::Cluster>(eq_, *hier_, cfg_.vlrd);
  cores_.reserve(cfg_.num_cores);
  ports_.reserve(cfg_.num_cores);
  for (CoreId i = 0; i < cfg_.num_cores; ++i) {
    cores_.push_back(std::make_unique<sim::Core>(eq_, i, *hier_, cfg_.core));
    ports_.push_back(std::make_unique<isa::VlPort>(*cores_.back(), *hier_,
                                                   *cluster_, cfg_.vlrd));
  }
  // Back-pressured producers park on vl_space_wq_ (buffer full) or on a
  // per-(device, SQI) quota futex; injections route wakeups accordingly.
  for (std::uint32_t d = 0; d < cluster_->size(); ++d)
    cluster_->device(d).set_push_retry_callback(
        [this, d](std::optional<Sqi> sqi) { vl_push_retry(d, sqi); });
  register_obs();
}

void Machine::register_obs() {
  // Kernel: the event loop's lifetime throughput counter.
  obs_.gauge("eq.executed", [this] { return eq_.executed(); });

  // VLRD cluster totals. Gauges (not links) because multi-device configs
  // sum per-device stats; total_stats() is a cheap struct fold.
  obs_.gauge("vlrd.pushes", [this] { return vlrd_stats().pushes; });
  obs_.gauge("vlrd.push_nacks", [this] { return vlrd_stats().push_nacks; });
  obs_.gauge("vlrd.push_quota_nacks",
             [this] { return vlrd_stats().push_quota_nacks; });
  obs_.gauge("vlrd.fetches", [this] { return vlrd_stats().fetches; });
  obs_.gauge("vlrd.fetch_nacks", [this] { return vlrd_stats().fetch_nacks; });
  obs_.gauge("vlrd.matches", [this] { return vlrd_stats().matches; });
  obs_.gauge("vlrd.inject_ok", [this] { return vlrd_stats().inject_ok; });
  obs_.gauge("vlrd.inject_retry",
             [this] { return vlrd_stats().inject_retry; });

  // Memory hierarchy: pointer-stable fields (hier_ is heap-allocated and
  // owned by the machine), so plain links suffice.
  const mem::MemStats& ms = hier_->stats();
  obs_.link("mem.l1_hits", &ms.l1_hits);
  obs_.link("mem.l1_misses", &ms.l1_misses);
  obs_.link("mem.llc_hits", &ms.llc_hits);
  obs_.link("mem.llc_misses", &ms.llc_misses);
  obs_.link("mem.snoops", &ms.snoops);
  obs_.link("mem.c2c_transfers", &ms.c2c_transfers);
  obs_.link("mem.dram_reads", &ms.dram_reads);
  obs_.link("mem.dram_writes", &ms.dram_writes);
  obs_.link("mem.injections", &ms.injections);
  obs_.link("mem.inject_rejects", &ms.inject_rejects);

  // Scheduler pressure, summed over cores.
  obs_.gauge("core.ctx_switches", [this] {
    std::uint64_t n = 0;
    for (const auto& c : cores_) n += c->ctx_switches();
    return n;
  });
  obs_.gauge("core.yields", [this] {
    std::uint64_t n = 0;
    for (const auto& c : cores_) n += c->yields();
    return n;
  });
}

sim::WaitQueue& Machine::vl_quota_wq(std::uint32_t device, Sqi sqi) {
  const std::uint64_t key = (static_cast<std::uint64_t>(device) << 32) | sqi;
  auto it = vl_quota_wqs_.find(key);
  if (it == vl_quota_wqs_.end())
    it = vl_quota_wqs_.emplace(key, std::make_unique<sim::WaitQueue>(eq_))
             .first;
  return *it->second;
}

void Machine::vl_push_retry(std::uint32_t device, std::optional<Sqi> sqi) {
  if (sqi) {
    // One prodBuf slot (and one unit of this SQI's quota) freed. Quota
    // waiters are all of this SQI — a small set, every one may now be
    // eligible — while the freed slot itself becomes one space credit:
    // the gate's FIFO front collects credits until its declared burst
    // want is covered, so one wake hands a whole run to one producer.
    // This replaces the old wake_all-per-freed-slot thundering herd: at
    // high fan-in, N-1 of N woken producers used to lose the race and
    // re-park, burning O(N) events per slot.
    //
    // find(), not the creating accessor: this runs per injected line on
    // every VL workload, and an SQI that never quota-parked a producer
    // has no queue to wake — don't allocate one just to no-op it.
    const std::uint64_t key =
        (static_cast<std::uint64_t>(device) << 32) | *sqi;
    const auto it = vl_quota_wqs_.find(key);
    if (it != vl_quota_wqs_.end()) it->second->wake_all();
    vl_space_.release(1);
  } else {
    // Coupled-I/O pipeline went idle: any SQI's arrival may now be
    // accepted, so everything parked retries.
    for (auto& [key, wq] : vl_quota_wqs_) {
      (void)key;
      wq->wake_all();
    }
    vl_space_.kick_all();
  }
}

Addr Machine::alloc(std::size_t bytes, std::size_t align) {
  assert(align != 0 && (align & (align - 1)) == 0 && "align must be pow2");
  brk_ = (brk_ + align - 1) & ~static_cast<Addr>(align - 1);
  const Addr p = brk_;
  brk_ += bytes;
  assert(!vlrd::is_device_addr(brk_) && "heap grew into the device window");
  return p;
}

}  // namespace vl::runtime
