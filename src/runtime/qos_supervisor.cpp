#include "runtime/qos_supervisor.hpp"

#include <algorithm>
#include <cmath>

#include "squeue/caf.hpp"
#include "vlrd/cluster.hpp"

namespace vl::runtime {

QuotaPlan size_quotas(const sim::SystemConfig& cfg, const ChannelDemand& d) {
  QuotaPlan plan;
  if (d.relay_channels > 0)
    plan.per_sqi_quota =
        std::max(1u, (cfg.vlrd.prod_entries - 1) / d.relay_channels);
  if (d.qos) {
    double sum = 0.0;
    for (std::size_t c = 0; c < kQosClasses; ++c) sum += d.weights[c];
    const std::uint32_t sqis = std::max(d.payload_sqis, 1u);
    const std::uint32_t vl_budget = cfg.vlrd.prod_entries - 1;
    const std::uint32_t caf_budget = cfg.caf.credits_per_queue;
    for (std::size_t c = 0; c < kQosClasses; ++c) {
      if (d.weights[c] > 0.0 && sum > 0.0) {
        // All operands are far below 2^26, so these products and quotients
        // are exact in double; std::floor therefore reproduces the historic
        // integer division bit-for-bit when the weights are integral.
        plan.vl_class_quota[c] = std::max(
            1u, static_cast<std::uint32_t>(
                    std::floor(vl_budget * d.weights[c] / (sum * sqis))));
        plan.caf_class_credits[c] = std::max(
            1u, static_cast<std::uint32_t>(
                    std::floor(caf_budget * d.weights[c] / sum)));
      } else {
        plan.vl_class_quota[c] = 1;
        plan.caf_class_credits[c] = 1;
      }
    }
  }
  return plan;
}

void base_weights(ChannelDemand& d, const bool present[kQosClasses]) {
  for (std::size_t c = 0; c < kQosClasses; ++c)
    d.weights[c] =
        present[c] ? static_cast<double>(qos_weight(static_cast<QosClass>(c)))
                   : 0.0;
}

QosSupervisor::QosSupervisor(const Config& cfg, const bool present[kQosClasses])
    : cfg_(cfg) {
  for (std::size_t c = 0; c < kQosClasses; ++c) {
    present_[c] = present[c];
    base_[c] = present[c]
                   ? static_cast<double>(qos_weight(static_cast<QosClass>(c)))
                   : 0.0;
    w_[c] = base_[c];
  }
}

void QosSupervisor::attach(const sim::SystemConfig& syscfg,
                           const ChannelDemand& demand, vlrd::Cluster* vl,
                           squeue::CafDevice* caf) {
  actuators_.push_back(Actuator{syscfg, demand, vl, caf});
}

void QosSupervisor::register_series(obs::Timeline& tl) {
  for (std::size_t c = 0; c < kQosClasses; ++c)
    tl.add_series(std::string("sup.weight.") +
                      to_string(static_cast<QosClass>(c)),
                  [this, c] { return w_[c]; });
  tl.add_series("sup.violations",
                [this] { return static_cast<double>(violations_); });
  tl.add_series("sup.decreases",
                [this] { return static_cast<double>(decreases_); });
  tl.add_series("sup.increases",
                [this] { return static_cast<double>(increases_); });
}

void QosSupervisor::actuate() {
  for (auto& a : actuators_) {
    if (!a.demand.qos) continue;
    ChannelDemand d = a.demand;
    for (std::size_t c = 0; c < kQosClasses; ++c)
      d.weights[c] = present_[c] ? w_[c] : 0.0;
    const QuotaPlan p = size_quotas(a.cfg, d);
    // The latency class's weight never moves, so its row re-applies
    // unchanged — a no-op on both knob paths.
    for (std::size_t c = 0; c < kQosClasses; ++c) {
      if (a.vl)
        a.vl->set_class_quota(static_cast<QosClass>(c), p.vl_class_quota[c]);
      if (a.caf)
        a.caf->set_class_credit(static_cast<QosClass>(c),
                                p.caf_class_credits[c]);
    }
  }
}

void QosSupervisor::on_epoch(const obs::Timeline& tl) {
  ++epochs_;
  const double delivered = tl.last("class.latency.delivered");
  const double within = tl.last("class.latency.slo_within");
  const double blocked = tl.last("class.latency.blocked_ticks");
  const double d_del = delivered - prev_delivered_;
  const double d_within = within - prev_within_;
  d_blocked_ = blocked - prev_blocked_;
  prev_delivered_ = delivered;
  prev_within_ = within;
  prev_blocked_ = blocked;

  // Accumulate deliveries until the window is judgeable: low-rate latency
  // traffic then yields a verdict every few epochs instead of never
  // clearing the min_window bar within any single epoch.
  acc_del_ += d_del;
  acc_within_ += d_within;
  bool violation = false;
  bool panic = false;
  if (acc_del_ >= static_cast<double>(cfg_.min_window)) {
    const double att_pct = 100.0 * acc_within_ / acc_del_;
    if (att_pct + 1e-9 < cfg_.slo_target_pct) violation = true;
    if (att_pct < cfg_.panic_frac * cfg_.slo_target_pct) panic = true;
    acc_del_ = acc_within_ = 0.0;
  }
  // Blocked-ticks spike: sudden queueing ahead of the latency class is a
  // leading indicator — react before the attainment window even closes.
  if (!violation && epochs_ > 1 && blocked_ewma_ >= 1.0 &&
      d_blocked_ > cfg_.blocked_spike * blocked_ewma_)
    violation = true;
  blocked_ewma_ = epochs_ == 1 ? d_blocked_
                               : (3.0 * blocked_ewma_ + d_blocked_) / 4.0;

  if (violation) {
    ++violations_;
    clean_epochs_ = 0;
    // Multiplicative decrease, bulk first; standard only once bulk is
    // already pinned at its floor. The latency class is never touched.
    // In panic (attainment far below target) every adjustable class drops
    // straight to its floor — a deep breach is unambiguous and needs
    // one-epoch convergence, not one class step per epoch.
    bool changed = false;
    for (QosClass cls : {QosClass::kBulk, QosClass::kStandard}) {
      const auto c = static_cast<std::size_t>(cls);
      if (!present_[c]) continue;
      const double fl = cfg_.floor * base_[c];
      if (w_[c] > fl + 1e-12) {
        w_[c] = panic ? fl : std::max(fl, w_[c] * cfg_.decrease);
        changed = true;
        if (!panic) break;
      }
    }
    if (changed) {
      ++decreases_;
      actuate();
    }
  } else if (++clean_epochs_ >= cfg_.recovery_epochs) {
    clean_epochs_ = 0;
    // Probe capacity back one class at a time, standard before bulk, so
    // a failed probe costs a single shallow dip.
    bool changed = false;
    for (QosClass cls : {QosClass::kStandard, QosClass::kBulk}) {
      const auto c = static_cast<std::size_t>(cls);
      if (!present_[c] || w_[c] >= base_[c] - 1e-12) continue;
      w_[c] = std::min(base_[c], w_[c] + cfg_.increase * base_[c]);
      changed = true;
      break;
    }
    if (changed) {
      ++increases_;
      actuate();
    }
  }
}

}  // namespace vl::runtime
