#include "runtime/supervisor.hpp"

#include <cassert>

namespace vl::runtime {

Supervisor::Supervisor(std::uint32_t num_devices) {
  assert(num_devices >= 1 && num_devices <= (1u << vlrd::kVlrdIdBits));
  sqi_used_.resize(num_devices);
  for (auto& dev : sqi_used_) dev.fill(false);
}

int Supervisor::shm_open(const std::string& name) {
  if (auto it = names_.find(name); it != names_.end()) return it->second;
  // Round-robin placement across devices; fall through to any device with
  // a free SQI when the preferred one is full.
  const std::uint32_t n = num_devices();
  for (std::uint32_t probe = 0; probe < n; ++probe) {
    const std::uint32_t dev = (next_device_ + probe) % n;
    for (int s = 0; s < kMaxSqi; ++s) {
      if (!sqi_used_[dev][s]) {
        sqi_used_[dev][s] = true;
        const int desc = static_cast<int>(dev) * kMaxSqi + s;
        names_[name] = desc;
        next_device_ = (dev + 1) % n;
        return desc;
      }
    }
  }
  return -1;  // every device's linkTab is exhausted
}

void Supervisor::shm_unlink(const std::string& name) {
  auto it = names_.find(name);
  if (it == names_.end()) return;
  const int desc = it->second;
  names_.erase(it);
  // Recycle only when no pages still reference the queue.
  for (const auto& [va, pg] : pages_)
    if (pg.vlrd_id == desc_device(desc) && pg.sqi == desc_sqi(desc)) return;
  sqi_used_[desc_device(desc)][desc_sqi(desc)] = false;
  next_page_.erase(desc);
}

std::optional<Addr> Supervisor::vl_mmap(int desc, Prot prot) {
  if (!sqi_open(desc)) return std::nullopt;
  std::uint32_t& next = next_page_[desc];
  if (next >= kPagesPerSqi) return std::nullopt;
  const std::uint32_t dev = desc_device(desc);
  const Sqi sqi = desc_sqi(desc);
  Addr va;
  if (table_mode()) {
    // Compact allocation: sequential 4 KiB frames, CAM row per page.
    va = vlrd::kDeviceBase + Addr{compact_pages_} * 4096;
    if (!table_->insert(va, dev, sqi)) return std::nullopt;  // CAM full
    ++compact_pages_;
  } else {
    va = vlrd::encode({dev, sqi, next, /*slot64=*/0});
  }
  const std::uint32_t page = next++;
  pages_[va] = MappedPage{dev, sqi, prot, page, 0};
  return va;
}

std::optional<Addr> Supervisor::alloc_endpoint(Addr page_va) {
  auto it = pages_.find(page_va);
  if (it == pages_.end()) return std::nullopt;
  MappedPage& pg = it->second;
  for (std::uint32_t slot = 0; slot < 64; ++slot) {
    if (!(pg.used & (std::uint64_t{1} << slot))) {
      pg.used |= std::uint64_t{1} << slot;
      // The 64 B slot offset occupies the address bits below the page
      // frame under both addressing schemes (Fig. 9 bits 11:6).
      return page_va + (Addr{slot} << kLineShift);
    }
  }
  return std::nullopt;  // page fully sub-allocated
}

void Supervisor::free_endpoint(Addr endpoint_va) {
  const Addr page_va = endpoint_va & ~Addr{0xfff};
  const std::uint32_t slot =
      static_cast<std::uint32_t>((endpoint_va >> kLineShift) & 0x3f);
  auto it = pages_.find(page_va);
  if (it == pages_.end()) return;
  it->second.used &= ~(std::uint64_t{1} << slot);
}

void Supervisor::vl_munmap(Addr page_va) {
  auto it = pages_.find(page_va);
  if (it == pages_.end()) return;
  assert(it->second.used == 0 && "unmapping a page with live endpoints");
  if (table_mode()) table_->erase(page_va);
  pages_.erase(it);
}

Addr Supervisor::pa_window_bytes() const {
  if (table_mode()) return vlrd::AddrTable::table_window_bytes(compact_pages_);
  return Addr{num_devices()} * vlrd::AddrTable::bitfield_window_bytes();
}

}  // namespace vl::runtime
