#pragma once
// Closed-loop QoS supervision: quota auto-sizing + AIMD re-weighting.
//
// Two pieces, deliberately decoupled from the data path (the sonic-swss
// orchagent shape: a control daemon that reads counter tables and writes
// config state, never touching packets):
//
//   * size_quotas() — the one quota-sizing policy. Given a SystemConfig
//     and a ChannelDemand (the channel graph summarized to what sizing
//     needs: relay-cycle channel count, payload SQIs per device, per-class
//     weights), it carves the hardware enqueue budgets: VLRD per-SQI
//     prodBuf quotas, VLRD per-class quotas, CAF per-class credit caps.
//     traffic::machine_config_for, workloads::run, and the supervisor all
//     call this one function, so the initial static carve and every online
//     re-carve are the same arithmetic — there is no second hand-carved
//     table to drift out of sync.
//
//   * QosSupervisor — the closed loop. Invoked at epoch boundaries (the
//     classic engine's sampling loop, the sharded engine's lookahead
//     barrier — both between event-queue steps, where knob mutation is
//     safe by construction), it reads the epoch's obs::Timeline cut of the
//     latency class (windowed SLO attainment, blocked-ticks trend) and
//     AIMD-adjusts the class weights: multiplicative decrease of the
//     bulk-side weights when the latency class misses its windowed SLO
//     target or its blocked_ticks spike, additive increase back toward the
//     base weights after consecutive clean epochs. Each adjustment re-runs
//     size_quotas() per attached machine and actuates via the
//     epoch-boundary-safe knobs (Cluster::set_class_quota,
//     CafDevice::set_class_credit).
//
// The supervisor reads *only* timeline series the engines already publish
// ("class.latency.delivered" / "slo_within" / "blocked_ticks"), so its
// decisions are a pure function of the sampled cut — deterministic across
// runs and across sequential/threaded sharded stepping.

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "obs/timeline.hpp"
#include "sim/config.hpp"

namespace vl::vlrd {
class Cluster;
}
namespace vl::squeue {
class CafDevice;
}

namespace vl::runtime {

/// The channel graph summarized to what quota sizing needs.
struct ChannelDemand {
  /// Channels alive in a produce-while-consume cycle (pipeline relays,
  /// closed-loop acks, chained kernel stages) sharing one prodBuf;
  /// 0 = no relay cycle, leave the per-SQI quota unbounded.
  std::uint32_t relay_channels = 0;
  /// Payload SQIs per routing device (the per-class carve divisor on VL:
  /// quotas guard each device's own prodBuf).
  std::uint32_t payload_sqis = 1;
  /// Apply the per-class carve at all?
  bool qos = false;
  /// Per-class weights; 0 = class absent (gets a token quota of 1 so
  /// stray untagged messages — termination pills — still flow).
  double weights[kQosClasses] = {0.0, 0.0, 0.0};
};

/// The carved budgets. Fields are only meaningful where the corresponding
/// demand asked for them (per_sqi_quota when relay_channels > 0, class
/// rows when qos).
struct QuotaPlan {
  std::uint32_t per_sqi_quota = 0;  ///< 0 = unbounded.
  std::uint32_t vl_class_quota[kQosClasses] = {1, 1, 1};
  std::uint32_t caf_class_credits[kQosClasses] = {1, 1, 1};
};

/// Carve `cfg`'s enqueue budgets for `d`. Pure function; with integral
/// weights it reproduces the historic hand-carved tables bit-for-bit
/// (integer truncation and double flooring agree on these magnitudes).
QuotaPlan size_quotas(const sim::SystemConfig& cfg, const ChannelDemand& d);

/// Base AIMD weights for a demand: qos_weight() for present classes.
void base_weights(ChannelDemand& d, const bool present[kQosClasses]);

class QosSupervisor {
 public:
  struct Config {
    /// Windowed latency-class SLO attainment target (percent).
    double slo_target_pct = 95.0;
    /// Multiplicative decrease applied to bulk-side weights on violation.
    double decrease = 0.5;
    /// Additive recovery step per clean epoch run, as a fraction of the
    /// class's base weight. One class per step (standard first, bulk
    /// last), so a probe that turns out too aggressive costs one shallow
    /// dip instead of a compound overshoot.
    double increase = 0.125;
    /// Weight floor as a fraction of the base weight (never starve a
    /// class to zero — its producers must keep draining).
    double floor = 0.125;
    /// Minimum latency-class deliveries in a window to judge it (smaller
    /// windows are noise, not evidence).
    std::uint64_t min_window = 8;
    /// Blocked-ticks spike threshold: violation when the latency class's
    /// per-epoch blocked delta exceeds this multiple of its EWMA.
    double blocked_spike = 8.0;
    /// Clean epochs required before an additive-increase step.
    int recovery_epochs = 8;
    /// Panic threshold: when windowed attainment is below this fraction
    /// of the target, every adjustable class drops straight to its floor
    /// in the same epoch (convergence in one epoch instead of one class
    /// step per epoch — the difference between losing 3% and 10% of a
    /// run's latency traffic to the transient).
    double panic_frac = 0.5;
  };

  /// `present[c]`: which classes the workload uses (absent classes keep
  /// their token quota and are never adjusted).
  QosSupervisor(const Config& cfg, const bool present[kQosClasses]);

  /// Attach one machine's actuators. `vl`/`caf` may each be null (the
  /// machine's backend decides which knob is live); `syscfg`/`demand` are
  /// that machine's sizing inputs — per-shard machines differ.
  void attach(const sim::SystemConfig& syscfg, const ChannelDemand& demand,
              vlrd::Cluster* vl, squeue::CafDevice* caf);

  /// Publish the decision series ("sup.weight.<class>", "sup.decreases",
  /// "sup.increases", "sup.violations") — the --timeline export of every
  /// per-epoch weight vector.
  void register_series(obs::Timeline& tl);

  /// One control epoch: read the latest cut in `tl` (sample() must have
  /// run), decide, and actuate on change. Call only between event-queue
  /// steps / at the sharded barrier.
  void on_epoch(const obs::Timeline& tl);

  /// Apply the current weights to every attached machine (also called
  /// from on_epoch; public so engines can force an initial actuation).
  void actuate();

  double weight(QosClass c) const {
    return w_[static_cast<std::size_t>(c)];
  }
  std::uint64_t decreases() const { return decreases_; }
  std::uint64_t increases() const { return increases_; }
  std::uint64_t violations() const { return violations_; }
  /// Latency-class blocked-ticks delta observed in the last epoch — the
  /// SLO-aware pressure signal the sharded rebalancer folds into its
  /// per-shard load estimate.
  double last_blocked_delta() const { return d_blocked_; }

 private:
  struct Actuator {
    sim::SystemConfig cfg;
    ChannelDemand demand;
    vlrd::Cluster* vl = nullptr;
    squeue::CafDevice* caf = nullptr;
  };

  Config cfg_;
  bool present_[kQosClasses] = {false, false, false};
  double base_[kQosClasses] = {0, 0, 0};
  double w_[kQosClasses] = {0, 0, 0};
  std::vector<Actuator> actuators_;

  // Previous-epoch cumulative readings (windowed deltas).
  double prev_delivered_ = 0, prev_within_ = 0, prev_blocked_ = 0;
  double acc_del_ = 0, acc_within_ = 0;  // pending (unjudged) window
  double d_blocked_ = 0;
  double blocked_ewma_ = 0;
  int clean_epochs_ = 0;
  std::uint64_t decreases_ = 0, increases_ = 0, violations_ = 0;
  std::uint64_t epochs_ = 0;
};

}  // namespace vl::runtime
