#pragma once
// Machine: the assembled simulated system — event queue, cache hierarchy,
// cores, the VLRD, and one VL ISA port per core — configured per the
// paper's Table III. Every experiment builds one of these.

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "isa/vl_port.hpp"
#include "mem/hierarchy.hpp"
#include "obs/registry.hpp"
#include "sim/config.hpp"
#include "sim/core.hpp"
#include "sim/event_queue.hpp"
#include "sim/sync.hpp"
#include "vlrd/cluster.hpp"
#include "vlrd/vlrd.hpp"

namespace vl::runtime {

class Machine {
 public:
  explicit Machine(const sim::SystemConfig& cfg = sim::SystemConfig::table3());

  sim::EventQueue& eq() { return eq_; }
  mem::Hierarchy& mem() { return *hier_; }
  /// Routing device 0 (the common single-VLRD Table III configuration).
  vlrd::Vlrd& vlrd() { return cluster_->device(0); }
  /// All routing devices (multi-VLRD configurations, Fig. 9 bits J:N+1).
  vlrd::Cluster& cluster() { return *cluster_; }
  /// Aggregate device counters across the cluster.
  vlrd::VlrdStats vlrd_stats() const { return cluster_->total_stats(); }
  sim::Core& core(CoreId c) { return *cores_.at(c); }
  isa::VlPort& vl_port(CoreId c) { return *ports_.at(c); }
  std::uint32_t num_cores() const {
    return static_cast<std::uint32_t>(cores_.size());
  }
  const sim::SystemConfig& cfg() const { return cfg_; }

  /// Create a software thread pinned to core `c` (affinity per § IV-A).
  sim::SimThread thread_on(CoreId c) { return core(c).make_thread(); }

  /// Credit gate for VL producer back-pressure of the *buffer full* kind:
  /// every prodBuf slot the injector frees releases one credit, and a
  /// parked producer declares how many slots its staged burst wants —
  /// FIFO, so one wake carries an n-slot grant instead of n one-slot
  /// wakes (no thundering herd, and batched pushes stay batched under
  /// saturation). Credits are wake hints: the retried vl_push is the
  /// arbiter, and producers return credits their push could not use.
  sim::CreditGate& vl_space() { return vl_space_; }

  /// Per-(device, SQI) futex for producers NACKed on a per-SQI or
  /// per-class quota: only that SQI draining can free the quota, so these
  /// waiters are woken exclusively by that SQI's injections, never by
  /// unrelated buffer churn. Lazily created by the parking side;
  /// deterministic (ordered map).
  sim::WaitQueue& vl_quota_wq(std::uint32_t device, Sqi sqi);

  /// Bump-allocate simulated cacheable memory (line-aligned by default).
  Addr alloc(std::size_t bytes, std::size_t align = kLineSize);

  /// Drive the simulation until all events drain.
  void run() { eq_.run(); }
  Tick now() const { return eq_.now(); }
  double ns(Tick t) const { return static_cast<double>(t) * cfg_.ns_per_tick; }

  /// The machine's telemetry tables (src/obs/README.md): every device
  /// counter — eq.executed, vlrd.*, mem.*, core.* — registered at
  /// construction. The timeline sampler and the PR-8 supervisor poll
  /// these; components never pay more than the increments they already do
  /// (links/gauges read existing fields at snapshot time).
  obs::Registry& obs() { return obs_; }
  const obs::Registry& obs() const { return obs_; }
  /// Full counter-table snapshot as a StatSet (diff/merge/to_string view).
  StatSet statset() const { return obs_.snapshot(); }

 private:
  void vl_push_retry(std::uint32_t device, std::optional<Sqi> sqi);
  void register_obs();

  sim::SystemConfig cfg_;
  sim::EventQueue eq_;
  sim::CreditGate vl_space_{eq_};
  std::map<std::uint64_t, std::unique_ptr<sim::WaitQueue>> vl_quota_wqs_;
  std::unique_ptr<mem::Hierarchy> hier_;
  std::unique_ptr<vlrd::Cluster> cluster_;
  std::vector<std::unique_ptr<sim::Core>> cores_;
  std::vector<std::unique_ptr<isa::VlPort>> ports_;
  obs::Registry obs_;
  Addr brk_ = 0x1000'0000;  // heap base; far below the device window
};

}  // namespace vl::runtime
