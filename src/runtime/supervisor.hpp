#pragma once
// The "supervisor" / kernel-module emulation (paper § III-C, Fig. 8b).
//
// SQIs behave like POSIX shared-memory file handles: a named shm_open with
// the VL_QUEUE flag allocates (or reopens) a SQI; vl_mmap maps a device
// page for that SQI into the caller's "address space" and the user-space
// wrapper sub-divides the 4 KiB page into 64 B-aligned endpoint addresses
// tracked by a bit-vector (Fig. 9). PROT_WRITE pages are producer
// endpoints, PROT_READ pages are consumer endpoints.

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "vlrd/addr_table.hpp"
#include "vlrd/addressing.hpp"

namespace vl::runtime {

enum class Prot { kRead, kWrite };  // consumer / producer endpoint pages

/// One mapped device page with its 64-slot endpoint allocation bit-vector.
struct MappedPage {
  std::uint32_t vlrd_id = 0;
  Sqi sqi = 0;
  Prot prot = Prot::kRead;
  std::uint32_t page = 0;
  std::uint64_t used = 0;  // bit i set => slot i allocated
};

class Supervisor {
 public:
  static constexpr int kMaxSqi = 1 << vlrd::kSqiBits;

  /// `num_devices` routing devices share the queue namespace; fresh queues
  /// are placed on devices round-robin (each device has its own linkTab,
  /// so its own kMaxSqi SQIs).
  explicit Supervisor(std::uint32_t num_devices = 1);

  /// shm_open(name, O_RDWR, VL_QUEUE): returns a queue descriptor (device
  /// id and SQI packed as `vlrd_id * kMaxSqi + sqi`; with one device this
  /// is simply the SQI), allocating a fresh queue on first open of `name`.
  /// Returns -1 when every device's linkTab is exhausted.
  int shm_open(const std::string& name);

  /// Split a descriptor into its device id / SQI halves.
  static std::uint32_t desc_device(int desc) {
    return static_cast<std::uint32_t>(desc) / kMaxSqi;
  }
  static Sqi desc_sqi(int desc) {
    return static_cast<Sqi>(static_cast<std::uint32_t>(desc) % kMaxSqi);
  }

  /// shm_unlink: removes the name; the SQI is recycled once all pages for
  /// it have been unmapped.
  void shm_unlink(const std::string& name);

  /// Switch to the § III-C2 address-table scheme: pages come from a compact
  /// bump allocator and each mmap installs a CAM row in `table`. The table
  /// must outlive the supervisor. Call before the first vl_mmap.
  void attach_addr_table(vlrd::AddrTable* table) { table_ = table; }
  bool table_mode() const { return table_ != nullptr; }

  /// mmap(nullptr, 4 KiB, prot, VL_QUEUE, desc, 0): returns the device VA
  /// of a fresh page mapping for this queue descriptor. std::nullopt when
  /// the 32-page budget (Fig. 9 bits 17:12) is exhausted, or — in table
  /// mode — when the routing CAM is full.
  std::optional<Addr> vl_mmap(int desc, Prot prot);

  /// Device PA-window bytes reserved under the current scheme (the
  /// § III-C2 address-space cost): the full fixed bit-field window, or
  /// 4 KiB per actually-mapped page in table mode.
  Addr pa_window_bytes() const;

  /// Sub-allocate one 64 B endpoint address within a mapped page.
  std::optional<Addr> alloc_endpoint(Addr page_va);

  /// Release one endpoint address (munmap of a sub-range).
  void free_endpoint(Addr endpoint_va);

  /// Unmap a whole page.
  void vl_munmap(Addr page_va);

  bool sqi_open(int desc) const {
    const std::uint32_t dev = desc_device(desc);
    return desc >= 0 && dev < sqi_used_.size() &&
           sqi_used_[dev][desc_sqi(desc)];
  }
  std::uint32_t num_devices() const {
    return static_cast<std::uint32_t>(sqi_used_.size());
  }
  std::size_t page_count() const { return pages_.size(); }

 private:
  static constexpr std::uint32_t kPagesPerSqi = 32;

  std::map<std::string, int> names_;               // name -> descriptor
  std::vector<std::array<bool, kMaxSqi>> sqi_used_;  // [device][sqi]
  std::uint32_t next_device_ = 0;                  // round-robin placement
  std::map<Addr, MappedPage> pages_;               // page VA -> state
  std::map<int, std::uint32_t> next_page_;         // per-descriptor pages
  vlrd::AddrTable* table_ = nullptr;               // kAddrTable scheme
  std::uint32_t compact_pages_ = 0;                // bump allocator (table)
};

}  // namespace vl::runtime
