#pragma once
// User-space VL queue library (paper § III-C3/III-D, Figs. 8b & 10).
//
// Message line format (Fig. 10): a 2 B control region at the most
// significant bytes (offsets 62..63) of each transported 64 B line; the
// remaining 62 B carry payload. Within the control region, 2 bits encode
// the element size, 6 bits a line-relative offset/head pointer, and one
// byte is reserved. Valid data fills the data region from higher addresses
// toward the LSB. Up to 7 doublewords fit per line.
//
// Each endpoint owns a small circular buffer of cacheable user-space lines
// (posix_memalign-style allocation), kept cache-local: producers reuse
// lines the hardware zeroed after copy-over; consumers re-arm lines after
// draining them.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/supervisor.hpp"

namespace vl::runtime {

// --- Fig. 10 control-region codec -----------------------------------------

inline constexpr std::size_t kCtrlOffset = kLineCtrlOffset;  ///< @ line MSBs
inline constexpr std::size_t kMaxWordsPerLine = 7;

/// Size codes (2 bits): byte / half / word / doubleword.
enum class ElemSize : std::uint8_t { kByte = 0, kHalf = 1, kWord = 2, kDword = 3 };

/// Bytes per element for a size code.
inline constexpr std::size_t elem_bytes(ElemSize sz) {
  return std::size_t{1} << static_cast<std::uint8_t>(sz);
}

/// Elements of `sz` that fit in the 62 B data region.
inline constexpr std::uint8_t max_elems(ElemSize sz) {
  return static_cast<std::uint8_t>(kCtrlOffset / elem_bytes(sz));
}

/// Pack control: [15:14] size code, [13:8] offset/head (here: element
/// count), [7:0] reserved — repurposed to carry the message's QosClass so
/// the routing device can enforce per-class quotas with no out-of-band
/// tenant state (untagged traffic reads 0 == kStandard). A zero control
/// word means "line empty/clean".
inline constexpr std::uint16_t pack_ctrl(ElemSize sz, std::uint8_t count,
                                         QosClass qos = QosClass::kStandard) {
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(sz) << 14) |
      (static_cast<std::uint16_t>(count & 0x3f) << 8) |
      static_cast<std::uint16_t>(qos));
}
inline constexpr QosClass ctrl_qos(std::uint16_t ctrl) {
  return qos_class_from_byte(static_cast<std::uint8_t>(ctrl & 0xff));
}
inline constexpr std::uint8_t ctrl_count(std::uint16_t ctrl) {
  return static_cast<std::uint8_t>((ctrl >> 8) & 0x3f);
}
inline constexpr ElemSize ctrl_size(std::uint16_t ctrl) {
  return static_cast<ElemSize>((ctrl >> 14) & 0x3);
}
/// Payload offset of element i of n (size `sz`): valid data fills the data
/// region from the higher addresses toward the LSB, so the n used slots
/// occupy the top of the region (a 1-element frame sits just under the
/// control word) and lower slots stay clean.
inline constexpr std::size_t elem_offset(ElemSize sz, std::uint8_t i,
                                         std::uint8_t n) {
  return (max_elems(sz) - n + i) * elem_bytes(sz);
}

/// Dword special case (the common framing).
inline constexpr std::size_t dword_offset(std::uint8_t i, std::uint8_t n) {
  return elem_offset(ElemSize::kDword, i, n);
}

// --- endpoints --------------------------------------------------------------

/// Handle for an open VL queue: queue descriptor (routing device + SQI)
/// plus producer/consumer page mappings. Obtained from VlQueueLib::open().
struct QueueHandle {
  int desc = 0;                ///< Supervisor descriptor (device*kMaxSqi+sqi).
  std::uint32_t vlrd_id = 0;   ///< Routing device serving this queue.
  Sqi sqi = 0;                 ///< SQI within that device's linkTab.
  Addr prod_page = 0;
  Addr cons_page = 0;
};

/// One message line's worth of payload for a burst enqueue: a borrowed
/// view of up to 7 dwords plus the service class stamped into the line's
/// control byte.
struct LineView {
  const std::uint64_t* w = nullptr;
  std::uint8_t n = 0;
  QosClass qos = QosClass::kStandard;
};

/// Outcome of a burst enqueue: how many leading lines the device accepted
/// and, when short, the vl_push status that stopped the run.
struct BurstResult {
  std::size_t accepted = 0;
  int rc = 0;  ///< isa::kVlOk when every line went.
};

/// Producer endpoint: local circular buffer + mapped device address.
class Producer {
 public:
  Producer(Machine& m, const QueueHandle& q, Supervisor& sup,
           sim::SimThread thread, std::size_t buf_lines = 8);

  /// Enqueue up to 7 doublewords as one message line. Non-blocking attempt;
  /// false when the VLRD NACKs (back-pressure).
  sim::Co<bool> try_enqueue(std::span<const std::uint64_t> words);

  /// Burst enqueue (Channel API v2 fast path): stage up to buf_lines
  /// message lines in the endpoint ring and push the run to the routing
  /// device in ONE fused port transaction — one selection sequence, one
  /// bus transit, one device arrival at which the VLRD admits the run
  /// under a single prodBuf/quota acquisition, one response. Non-blocking:
  /// the device accepts a prefix and the NACK status of the stopper is
  /// reported for the caller's parking decision.
  sim::Co<BurstResult> try_enqueue_burst(std::span<const LineView> lines);

  /// Split form for back-pressure retry loops: stage_burst() writes up to
  /// buf_lines lines into the endpoint ring ONCE (returns the count
  /// staged); push_staged() then pushes the staged run's not-yet-accepted
  /// suffix in one fused port transaction and may be retried after a NACK
  /// without re-writing any payload — a parked producer that wakes re-pays
  /// only the push, not the stores. The staged run stays valid until its
  /// lines are accepted (accepted lines recycle through the ring).
  sim::Co<std::size_t> stage_burst(std::span<const LineView> lines);
  sim::Co<BurstResult> push_staged(std::size_t offset, std::size_t count);

  /// Enqueue elements of any Fig. 10 size code (byte/half/word/dword) —
  /// values are truncated to the element width; up to max_elems(sz) per
  /// line. Non-blocking attempt.
  sim::Co<bool> try_enqueue_elems(ElemSize sz,
                                  std::span<const std::uint64_t> elems);

  /// Blocking enqueue: on back-pressure (device NACK) the thread parks on
  /// the machine's VL space futex and is woken when buffer space frees.
  sim::Co<void> enqueue(std::span<const std::uint64_t> words);
  sim::Co<void> enqueue1(std::uint64_t w);
  sim::Co<void> enqueue_elems(ElemSize sz,
                              std::span<const std::uint64_t> elems);

  /// OS thread migration: subsequent enqueues issue from `to`'s core. A
  /// producer holds no cross-call device state (the selection latch is
  /// per-op), so migration is just a rebind.
  void migrate(sim::SimThread to) { t_ = to; }

  /// Service class stamped into every subsequent frame's control region
  /// (the endpoint-level QoS knob, like a socket priority).
  void set_qos(QosClass c) { qos_ = c; }
  QosClass qos() const { return qos_; }

  std::uint64_t retries() const { return retries_; }
  Addr endpoint_va() const { return dev_va_; }
  sim::SimThread thread() const { return t_; }

  /// Attempt returning the raw vl_push status (isa::VlStatus), so callers
  /// can tell a quota NACK (park per-SQI) from a full buffer (park global).
  sim::Co<int> try_enqueue_raw(ElemSize sz,
                               std::span<const std::uint64_t> elems);

 private:
  Machine& m_;
  sim::SimThread t_;
  Addr dev_va_ = 0;
  std::uint32_t vlrd_id_ = 0;  ///< Routing device (quota futex key)…
  Sqi sqi_ = 0;                ///< …and SQI within it.
  QosClass qos_ = QosClass::kStandard;
  std::vector<Addr> buf_;  // user-space lines (circular)
  std::size_t cur_ = 0;
  std::vector<Addr> staged_;  ///< Ring lines of the current staged burst.
  std::uint64_t retries_ = 0;
};

/// One decoded message line: the Fig. 10 size code and its elements
/// (values zero-extended to 64 bits), plus the service class carried in
/// the control region's reserved byte.
struct Frame {
  ElemSize size = ElemSize::kDword;
  QosClass qos = QosClass::kStandard;
  std::vector<std::uint64_t> elems;
};

/// Consumer endpoint.
class Consumer {
 public:
  Consumer(Machine& m, const QueueHandle& q, Supervisor& sup,
           sim::SimThread thread, std::size_t buf_lines = 8);

  /// Blocking dequeue of one message line (1..7 dwords). Registers demand
  /// with the VLRD, then polls the line's control region; after a context
  /// switch (or long silence) the request is re-issued, which is safe
  /// because VLRD registration is idempotent per consumer target.
  sim::Co<std::vector<std::uint64_t>> dequeue();
  sim::Co<std::uint64_t> dequeue1();

  /// Blocking dequeue decoding any Fig. 10 element size.
  sim::Co<Frame> dequeue_frame();

  /// Non-blocking probe: one fetch registration + bounded poll.
  sim::Co<std::optional<std::vector<std::uint64_t>>> try_dequeue(
      int poll_budget = 64);

  /// Cheapest non-blocking probe (Channel API v2 core): one control-word
  /// poll of the current ring line, arming demand lazily — the fetch
  /// registration is issued only when the line is not armed yet, and
  /// re-issued after kRefetchThreshold misses (the § III-B recovery path),
  /// so repeated probes cost one load each instead of a device round trip.
  sim::Co<std::optional<Frame>> try_dequeue_once();

  /// Register demand for up to `k` ring lines ahead (k capped at the ring
  /// size) in ONE fused port transaction, so a burst of queued messages is
  /// injected into consecutive lines and then drained by pure local polls.
  /// Demand registered ahead pins messages to this endpoint, so a sharer
  /// must treat it as a LEASE: drain, then release_ahead() + sweep_landed()
  /// so unclaimed messages recover to the other consumers (§ III-B).
  sim::Co<void> arm_ahead(std::size_t k);

  /// Release the demand lease: drop every pushable tag this endpoint
  /// armed (migrate()'s mechanism without the thread rebind). In-flight
  /// injections aimed at our lines are rejected and their data recovers
  /// through the device's § III-B path to whoever holds live demand.
  void release_ahead();

  /// Scan the ring — current line first — for a frame that already landed,
  /// regardless of arrival order. A rejected injection makes the device
  /// recycle the *next* waiting registration for the returned data, so a
  /// message can land one line ahead of the poll cursor; at a traffic tail
  /// no later message refills the skipped line and an in-order-only poll
  /// would wait forever. On a hit the cursor resynchronizes past the line.
  sim::Co<std::optional<Frame>> sweep_landed();

  /// OS thread migration (§ III-B): clears every "pushable" tag this
  /// endpoint armed on the old core, so in-flight injections are rejected
  /// and their data stays with the VLRD; the next dequeue from `to`'s core
  /// re-registers demand and recovers the message. Lines already injected
  /// into the endpoint buffer remain readable — the new core pulls them
  /// through ordinary coherence.
  void migrate(sim::SimThread to);

  std::uint64_t refetches() const { return refetches_; }
  Addr endpoint_va() const { return dev_va_; }
  sim::SimThread thread() const { return t_; }

 private:
  sim::Co<std::optional<Frame>> poll_once(Addr line);

  Machine& m_;
  sim::SimThread t_;
  Addr dev_va_ = 0;
  std::vector<Addr> buf_;
  std::vector<bool> armed_;  ///< Lines with a live fetch registration.
  std::size_t cur_ = 0;
  int polls_since_fetch_ = 0;  ///< try_dequeue_once() refetch counter.
  std::uint64_t refetches_ = 0;
};

/// Library facade tying Supervisor + endpoints together (Fig. 8b flow).
class VlQueueLib {
 public:
  explicit VlQueueLib(Machine& m)
      : m_(m), sup_(m.cfg().vlrd.num_devices) {
    if (m.cfg().vlrd.addressing == sim::Addressing::kAddrTable)
      sup_.attach_addr_table(&m.cluster().addr_table());
  }

  /// Steps (1)-(5) of Fig. 8b: shm_open the name, mmap producer and
  /// consumer pages.
  QueueHandle open(const std::string& name);

  Producer make_producer(const QueueHandle& q, sim::SimThread t,
                         std::size_t buf_lines = 8) {
    return Producer(m_, q, sup_, t, buf_lines);
  }
  Consumer make_consumer(const QueueHandle& q, sim::SimThread t,
                         std::size_t buf_lines = 8) {
    return Consumer(m_, q, sup_, t, buf_lines);
  }

  Supervisor& supervisor() { return sup_; }
  Machine& machine() { return m_; }

 private:
  Machine& m_;
  Supervisor sup_;
};

}  // namespace vl::runtime
