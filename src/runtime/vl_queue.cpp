#include "runtime/vl_queue.hpp"

#include <cassert>

namespace vl::runtime {

namespace {
constexpr Tick kPollInterval = 16;     ///< Cycles between control-word polls.
constexpr int kRefetchThreshold = 64;  ///< Polls before re-issuing vl_fetch.
}  // namespace

// --- Producer ----------------------------------------------------------------

Producer::Producer(Machine& m, const QueueHandle& q, Supervisor& sup,
                   sim::SimThread thread, std::size_t buf_lines)
    : m_(m), t_(thread), vlrd_id_(q.vlrd_id), sqi_(q.sqi) {
  auto ep = sup.alloc_endpoint(q.prod_page);
  assert(ep && "producer page out of endpoint slots");
  dev_va_ = *ep;
  buf_.reserve(buf_lines);
  for (std::size_t i = 0; i < buf_lines; ++i)
    buf_.push_back(m_.alloc(kLineSize));
}

sim::Co<bool> Producer::try_enqueue(std::span<const std::uint64_t> words) {
  co_return co_await try_enqueue_elems(ElemSize::kDword, words);
}

sim::Co<bool> Producer::try_enqueue_elems(
    ElemSize sz, std::span<const std::uint64_t> elems) {
  const int rc = co_await try_enqueue_raw(sz, elems);
  co_return rc == isa::kVlOk;
}

sim::Co<int> Producer::try_enqueue_raw(ElemSize sz,
                                       std::span<const std::uint64_t> elems) {
  assert(!elems.empty() && elems.size() <= max_elems(sz));
  const Addr line = buf_[cur_];
  const auto n = static_cast<std::uint8_t>(elems.size());
  const auto width = static_cast<unsigned>(elem_bytes(sz));

  // Fill the data region high-to-low, then arm the control word (Fig. 10),
  // its reserved byte carrying the endpoint's service class.
  for (std::uint8_t i = 0; i < n; ++i)
    co_await t_.store(line + elem_offset(sz, i, n), elems[i], width);
  co_await t_.store(line + kCtrlOffset, pack_ctrl(sz, n, qos_), 2);

  // Fused select+push: under core oversubscription, issuing them as two
  // port transactions lets the sibling thread's ops interleave and the
  // resulting context switch clears the selection latch every time.
  const int rc =
      co_await m_.vl_port(t_.core->id()).vl_select_push(t_.tid, line, dev_va_);
  if (rc == isa::kVlOk) {
    cur_ = (cur_ + 1) % buf_.size();  // hardware zeroed the line for reuse
    co_return rc;
  }
  ++retries_;
  co_return rc;  // data still in the line; caller may retry the push
}

sim::Co<void> Producer::enqueue(std::span<const std::uint64_t> words) {
  co_await enqueue_elems(ElemSize::kDword, words);
}

sim::Co<void> Producer::enqueue1(std::uint64_t w) {
  const std::uint64_t one[1] = {w};
  co_await enqueue(std::span<const std::uint64_t>(one, 1));
}

sim::Co<void> Producer::enqueue_elems(ElemSize sz,
                                      std::span<const std::uint64_t> elems) {
  sim::WaitQueue& quota_wq = m_.vl_quota_wq(vlrd_id_, sqi_);
  bool holds_space_baton = false;  // consumed a counted space wake last lap
  for (;;) {
    // Futex protocol: sample both wake epochs before the attempt so an
    // injection completing mid-push is never lost as a wakeup.
    // NB: the await must not sit in the loop condition — GCC 12 destroys
    // condition temporaries before the suspended callee resumes, which
    // tears down the in-flight coroutine (silent no-op).
    const std::uint64_t gate_space = m_.vl_space_wq().epoch();
    const std::uint64_t gate_quota = quota_wq.epoch();
    const int rc = co_await try_enqueue_raw(sz, elems);
    if (rc == isa::kVlOk) break;
    if (rc == isa::kVlNackQuota) {
      // Our SQI's (or class's) quota is exhausted: only this SQI draining
      // helps, so park on its futex. If a counted buffer-space wake routed
      // the freed slot to us, pass the baton on — some other SQI's
      // space-parked producer may be able to take the slot we cannot.
      if (holds_space_baton) {
        holds_space_baton = false;
        m_.vl_space_wq().wake_one();
      }
      co_await t_.park(quota_wq, gate_quota);
    } else {
      // Buffer full: park until a routing device frees producer-buffer
      // space, donating the core instead of spinning a backoff timer.
      co_await t_.park(m_.vl_space_wq(), gate_space);
      holds_space_baton = true;
    }
  }
}

// --- Consumer ----------------------------------------------------------------

Consumer::Consumer(Machine& m, const QueueHandle& q, Supervisor& sup,
                   sim::SimThread thread, std::size_t buf_lines)
    : m_(m), t_(thread) {
  auto ep = sup.alloc_endpoint(q.cons_page);
  assert(ep && "consumer page out of endpoint slots");
  dev_va_ = *ep;
  buf_.reserve(buf_lines);
  for (std::size_t i = 0; i < buf_lines; ++i)
    buf_.push_back(m_.alloc(kLineSize));
}

sim::Co<std::optional<Frame>> Consumer::poll_once(Addr line) {
  const auto ctrl =
      static_cast<std::uint16_t>(co_await t_.load(line + kCtrlOffset, 2));
  if (ctrl == 0) co_return std::nullopt;
  Frame f;
  f.size = ctrl_size(ctrl);
  const std::uint8_t n = ctrl_count(ctrl);
  const auto width = static_cast<unsigned>(elem_bytes(f.size));
  f.elems.reserve(n);
  for (std::uint8_t i = 0; i < n; ++i)
    f.elems.push_back(
        co_await t_.load(line + elem_offset(f.size, i, n), width));
  // Mark the line clean so the next injection is distinguishable, and
  // disarm its pushable tag. The tag was already consumed by the injection
  // itself, but a re-issued vl_select can have re-armed it in the window
  // between the injection landing and this poll observing it — in which
  // case a stale registration for this line is also parked in the device,
  // and an armed line would let the *next* message be silently injected
  // here after we advance to a new ring line. Disarmed, that stale
  // injection is rejected and the data recovers through the § III-B
  // re-fetch path into the line we are actually watching.
  co_await t_.store(line + kCtrlOffset, 0, 2);
  m_.mem().set_pushable(t_.core->id(), line, false);
  co_return f;
}

sim::Co<Frame> Consumer::dequeue_frame() {
  const Addr line = buf_[cur_];
  // Data may already have landed from a previous registration.
  if (auto got = co_await poll_once(line)) {
    cur_ = (cur_ + 1) % buf_.size();
    co_return *got;
  }
  // Fused select+fetch (see Producer::try_enqueue_elems for why).
  isa::VlPort& port = m_.vl_port(t_.core->id());
  co_await port.vl_select_fetch(t_.tid, line, dev_va_);

  int polls = 0;
  for (;;) {
    if (auto got = co_await poll_once(line)) {
      cur_ = (cur_ + 1) % buf_.size();
      co_return *got;
    }
    co_await t_.compute(kPollInterval);
    if (++polls >= kRefetchThreshold) {
      // Re-issue the request (sets the pushable tag again); registration is
      // idempotent per consumer target so this is loss-free (§ III-B).
      polls = 0;
      ++refetches_;
      co_await port.vl_select_fetch(t_.tid, line, dev_va_);
    }
  }
}

void Consumer::migrate(sim::SimThread to) {
  const CoreId old_core = t_.core->id();
  if (to.core->id() != old_core) {
    // The OS migration path unsets the pushable flag before the thread can
    // run elsewhere (§ III-B), exactly like a context switch would.
    for (const Addr line : buf_)
      m_.mem().set_pushable(old_core, line, false);
  }
  t_ = to;
}

sim::Co<std::vector<std::uint64_t>> Consumer::dequeue() {
  Frame f = co_await dequeue_frame();
  co_return std::move(f.elems);
}

sim::Co<std::uint64_t> Consumer::dequeue1() {
  std::vector<std::uint64_t> v = co_await dequeue();
  assert(v.size() == 1);
  co_return v[0];
}

sim::Co<std::optional<std::vector<std::uint64_t>>> Consumer::try_dequeue(
    int poll_budget) {
  const Addr line = buf_[cur_];
  if (auto got = co_await poll_once(line)) {
    cur_ = (cur_ + 1) % buf_.size();
    co_return std::move(got->elems);
  }
  isa::VlPort& port = m_.vl_port(t_.core->id());
  co_await port.vl_select_fetch(t_.tid, line, dev_va_);
  for (int i = 0; i < poll_budget; ++i) {
    if (auto got = co_await poll_once(line)) {
      cur_ = (cur_ + 1) % buf_.size();
      co_return std::move(got->elems);
    }
    co_await t_.compute(kPollInterval);
  }
  co_return std::nullopt;
}

// --- VlQueueLib ---------------------------------------------------------------

QueueHandle VlQueueLib::open(const std::string& name) {
  const int desc = sup_.shm_open(name);
  assert(desc >= 0 && "out of SQIs");
  QueueHandle q;
  q.desc = desc;
  q.sqi = Supervisor::desc_sqi(desc);
  q.vlrd_id = Supervisor::desc_device(desc);
  auto pp = sup_.vl_mmap(desc, Prot::kWrite);
  auto cp = sup_.vl_mmap(desc, Prot::kRead);
  assert(pp && cp);
  q.prod_page = *pp;
  q.cons_page = *cp;
  return q;
}

}  // namespace vl::runtime
