#include "runtime/vl_queue.hpp"

#include <algorithm>
#include <cassert>

namespace vl::runtime {

namespace {
constexpr Tick kPollInterval = 16;     ///< Cycles between control-word polls.
constexpr int kRefetchThreshold = 64;  ///< Polls before re-issuing vl_fetch.
}  // namespace

// --- Producer ----------------------------------------------------------------

Producer::Producer(Machine& m, const QueueHandle& q, Supervisor& sup,
                   sim::SimThread thread, std::size_t buf_lines)
    : m_(m), t_(thread), vlrd_id_(q.vlrd_id), sqi_(q.sqi) {
  auto ep = sup.alloc_endpoint(q.prod_page);
  assert(ep && "producer page out of endpoint slots");
  dev_va_ = *ep;
  buf_.reserve(buf_lines);
  for (std::size_t i = 0; i < buf_lines; ++i)
    buf_.push_back(m_.alloc(kLineSize));
}

sim::Co<bool> Producer::try_enqueue(std::span<const std::uint64_t> words) {
  co_return co_await try_enqueue_elems(ElemSize::kDword, words);
}

sim::Co<std::size_t> Producer::stage_burst(std::span<const LineView> lines) {
  const std::size_t k = std::min(lines.size(), buf_.size());
  // Stage the run: fill each ring line's data region and arm its control
  // word (Fig. 10), exactly as the single-line path does — the savings are
  // all in the fused port/device transaction of push_staged().
  staged_.clear();
  for (std::size_t i = 0; i < k; ++i) {
    const LineView& lv = lines[i];
    assert(lv.n >= 1 && lv.n <= kMaxWordsPerLine);
    const Addr line = buf_[(cur_ + i) % buf_.size()];
    for (std::uint8_t j = 0; j < lv.n; ++j)
      co_await t_.store(line + dword_offset(j, lv.n), lv.w[j], 8);
    co_await t_.store(line + kCtrlOffset,
                      pack_ctrl(ElemSize::kDword, lv.n, lv.qos), 2);
    staged_.push_back(line);
  }
  co_return k;
}

sim::Co<BurstResult> Producer::push_staged(std::size_t offset,
                                           std::size_t count) {
  BurstResult r;
  r.rc = isa::kVlOk;
  assert(offset + count <= staged_.size());
  if (count == 0) co_return r;
  std::size_t accepted = 0;
  const int rc =
      co_await m_.vl_port(t_.core->id())
          .vl_select_push_burst(
              t_.tid,
              std::span<const Addr>(staged_.data() + offset, count), dev_va_,
              &accepted);
  cur_ = (cur_ + accepted) % buf_.size();  // hardware zeroed accepted lines
  r.accepted = accepted;
  if (accepted < count) {
    ++retries_;  // unaccepted lines keep their data; caller may re-push
    r.rc = rc;
  }
  co_return r;
}

sim::Co<BurstResult> Producer::try_enqueue_burst(
    std::span<const LineView> lines) {
  if (lines.empty()) co_return BurstResult{0, isa::kVlOk};
  const std::size_t k = co_await stage_burst(lines);
  co_return co_await push_staged(0, k);
}

sim::Co<bool> Producer::try_enqueue_elems(
    ElemSize sz, std::span<const std::uint64_t> elems) {
  const int rc = co_await try_enqueue_raw(sz, elems);
  co_return rc == isa::kVlOk;
}

sim::Co<int> Producer::try_enqueue_raw(ElemSize sz,
                                       std::span<const std::uint64_t> elems) {
  assert(!elems.empty() && elems.size() <= max_elems(sz));
  const Addr line = buf_[cur_];
  const auto n = static_cast<std::uint8_t>(elems.size());
  const auto width = static_cast<unsigned>(elem_bytes(sz));

  // Fill the data region high-to-low, then arm the control word (Fig. 10),
  // its reserved byte carrying the endpoint's service class.
  for (std::uint8_t i = 0; i < n; ++i)
    co_await t_.store(line + elem_offset(sz, i, n), elems[i], width);
  co_await t_.store(line + kCtrlOffset, pack_ctrl(sz, n, qos_), 2);

  // Fused select+push: under core oversubscription, issuing them as two
  // port transactions lets the sibling thread's ops interleave and the
  // resulting context switch clears the selection latch every time.
  const int rc =
      co_await m_.vl_port(t_.core->id()).vl_select_push(t_.tid, line, dev_va_);
  if (rc == isa::kVlOk) {
    cur_ = (cur_ + 1) % buf_.size();  // hardware zeroed the line for reuse
    co_return rc;
  }
  ++retries_;
  co_return rc;  // data still in the line; caller may retry the push
}

sim::Co<void> Producer::enqueue(std::span<const std::uint64_t> words) {
  co_await enqueue_elems(ElemSize::kDword, words);
}

sim::Co<void> Producer::enqueue1(std::uint64_t w) {
  const std::uint64_t one[1] = {w};
  co_await enqueue(std::span<const std::uint64_t>(one, 1));
}

sim::Co<void> Producer::enqueue_elems(ElemSize sz,
                                      std::span<const std::uint64_t> elems) {
  sim::WaitQueue& quota_wq = m_.vl_quota_wq(vlrd_id_, sqi_);
  bool holds_credit = false;  // granted a space credit last lap
  for (;;) {
    // Futex protocol (quota side): sample the wake epoch before the
    // attempt so an injection completing mid-push is never lost as a
    // wakeup. The space side is a credit gate — credits persist, so no
    // epoch gate is needed there.
    // NB: the await must not sit in the loop condition — GCC 12 destroys
    // condition temporaries before the suspended callee resumes, which
    // tears down the in-flight coroutine (silent no-op).
    const std::uint64_t gate_quota = quota_wq.epoch();
    const int rc = co_await try_enqueue_raw(sz, elems);
    if (rc == isa::kVlOk) break;
    if (rc == isa::kVlNackQuota) {
      // Our SQI's (or class's) quota is exhausted: only this SQI draining
      // helps, so park on its futex. A slot credit we were granted but
      // cannot use goes back to the gate — some other SQI's space-parked
      // producer may be able to take the slot we cannot.
      if (holds_credit) {
        holds_credit = false;
        m_.vl_space().release(1);
      }
      co_await t_.park(quota_wq, gate_quota);
    } else {
      // Buffer full: wait for a freed-slot credit from the routing device,
      // donating the core instead of spinning a backoff timer. (A held
      // credit that still NACKed was stale — taken by a fast-path push —
      // and is simply dropped.)
      co_await t_.acquire_credits(m_.vl_space(), 1);
      holds_credit = true;
    }
  }
}

// --- Consumer ----------------------------------------------------------------

Consumer::Consumer(Machine& m, const QueueHandle& q, Supervisor& sup,
                   sim::SimThread thread, std::size_t buf_lines)
    : m_(m), t_(thread) {
  auto ep = sup.alloc_endpoint(q.cons_page);
  assert(ep && "consumer page out of endpoint slots");
  dev_va_ = *ep;
  buf_.reserve(buf_lines);
  for (std::size_t i = 0; i < buf_lines; ++i)
    buf_.push_back(m_.alloc(kLineSize));
  armed_.assign(buf_lines, false);
}

sim::Co<std::optional<Frame>> Consumer::poll_once(Addr line) {
  const auto ctrl =
      static_cast<std::uint16_t>(co_await t_.load(line + kCtrlOffset, 2));
  if (ctrl == 0) co_return std::nullopt;
  Frame f;
  f.size = ctrl_size(ctrl);
  f.qos = ctrl_qos(ctrl);
  const std::uint8_t n = ctrl_count(ctrl);
  const auto width = static_cast<unsigned>(elem_bytes(f.size));
  f.elems.reserve(n);
  for (std::uint8_t i = 0; i < n; ++i)
    f.elems.push_back(
        co_await t_.load(line + elem_offset(f.size, i, n), width));
  // Mark the line clean so the next injection is distinguishable, and
  // disarm its pushable tag. The tag was already consumed by the injection
  // itself, but a re-issued vl_select can have re-armed it in the window
  // between the injection landing and this poll observing it — in which
  // case a stale registration for this line is also parked in the device,
  // and an armed line would let the *next* message be silently injected
  // here after we advance to a new ring line. Disarmed, that stale
  // injection is rejected and the data recovers through the § III-B
  // re-fetch path into the line we are actually watching.
  co_await t_.store(line + kCtrlOffset, 0, 2);
  m_.mem().set_pushable(t_.core->id(), line, false);
  co_return f;
}

sim::Co<std::optional<Frame>> Consumer::try_dequeue_once() {
  const Addr line = buf_[cur_];
  // Data may already have landed from an earlier registration.
  if (auto got = co_await poll_once(line)) {
    armed_[cur_] = false;
    polls_since_fetch_ = 0;
    cur_ = (cur_ + 1) % buf_.size();
    co_return got;
  }
  isa::VlPort& port = m_.vl_port(t_.core->id());
  if (!armed_[cur_]) {
    // Fused select+fetch (see Producer::try_enqueue_elems for why).
    co_await port.vl_select_fetch(t_.tid, line, dev_va_);
    armed_[cur_] = true;
    polls_since_fetch_ = 0;
    // Backlogged data can inject during the fetch's response window — one
    // immediate poll catches it without waiting out a discovery interval.
    if (auto got = co_await poll_once(line)) {
      armed_[cur_] = false;
      cur_ = (cur_ + 1) % buf_.size();
      co_return got;
    }
  } else if (++polls_since_fetch_ >= kRefetchThreshold) {
    polls_since_fetch_ = 0;
    // A rejected injection can have diverted this line's message into a
    // later armed ring line (the device recycles the next waiting
    // registration for returned data, § III-B): look for an out-of-order
    // landing before concluding the registration was lost.
    if (auto got = co_await sweep_landed()) co_return got;
    // A context switch may have cleared the pushable tag: re-issue the
    // request (sets it again); registration is idempotent per consumer
    // target so this is loss-free (§ III-B).
    ++refetches_;
    co_await port.vl_select_fetch(t_.tid, line, dev_va_);
    armed_[cur_] = true;
  }
  co_return std::nullopt;
}

sim::Co<void> Consumer::arm_ahead(std::size_t k) {
  if (k > buf_.size()) k = buf_.size();
  // Demand must stay a contiguous ring-order prefix so injections land in
  // the order the polls visit the lines; registrations always extend the
  // armed run and stop at the device's first refusal.
  std::vector<Addr> want;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t idx = (cur_ + i) % buf_.size();
    if (!armed_[idx]) want.push_back(buf_[idx]);
  }
  if (want.empty()) co_return;
  std::size_t registered = 0;
  co_await m_.vl_port(t_.core->id())
      .vl_select_fetch_burst(t_.tid, want, dev_va_, &registered);
  std::size_t marked = 0;
  for (std::size_t i = 0; i < k && marked < registered; ++i) {
    const std::size_t idx = (cur_ + i) % buf_.size();
    if (!armed_[idx]) {
      armed_[idx] = true;
      ++marked;
    }
  }
}

void Consumer::release_ahead() {
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    if (!armed_[i]) continue;
    m_.mem().set_pushable(t_.core->id(), buf_[i], false);
    armed_[i] = false;
  }
  polls_since_fetch_ = 0;
}

sim::Co<std::optional<Frame>> Consumer::sweep_landed() {
  for (std::size_t k = 0; k < buf_.size(); ++k) {
    const std::size_t idx = (cur_ + k) % buf_.size();
    if (auto got = co_await poll_once(buf_[idx])) {
      armed_[idx] = false;
      polls_since_fetch_ = 0;
      cur_ = (idx + 1) % buf_.size();
      co_return got;
    }
  }
  co_return std::nullopt;
}

sim::Co<Frame> Consumer::dequeue_frame() {
  for (;;) {
    if (auto got = co_await try_dequeue_once()) co_return *got;
    co_await t_.compute(kPollInterval);
  }
}

void Consumer::migrate(sim::SimThread to) {
  const CoreId old_core = t_.core->id();
  if (to.core->id() != old_core) {
    // The OS migration path unsets the pushable flag before the thread can
    // run elsewhere (§ III-B), exactly like a context switch would. Drop
    // the armed bookkeeping with it so the next probe re-registers demand
    // from the new core immediately instead of waiting out the refetch
    // threshold.
    for (const Addr line : buf_)
      m_.mem().set_pushable(old_core, line, false);
    armed_.assign(buf_.size(), false);
    polls_since_fetch_ = 0;
  }
  t_ = to;
}

sim::Co<std::vector<std::uint64_t>> Consumer::dequeue() {
  Frame f = co_await dequeue_frame();
  co_return std::move(f.elems);
}

sim::Co<std::uint64_t> Consumer::dequeue1() {
  std::vector<std::uint64_t> v = co_await dequeue();
  assert(v.size() == 1);
  co_return v[0];
}

sim::Co<std::optional<std::vector<std::uint64_t>>> Consumer::try_dequeue(
    int poll_budget) {
  for (int i = 0;; ++i) {
    if (auto got = co_await try_dequeue_once())
      co_return std::move(got->elems);
    if (i >= poll_budget) co_return std::nullopt;
    co_await t_.compute(kPollInterval);
  }
}

// --- VlQueueLib ---------------------------------------------------------------

QueueHandle VlQueueLib::open(const std::string& name) {
  const int desc = sup_.shm_open(name);
  assert(desc >= 0 && "out of SQIs");
  QueueHandle q;
  q.desc = desc;
  q.sqi = Supervisor::desc_sqi(desc);
  q.vlrd_id = Supervisor::desc_device(desc);
  auto pp = sup_.vl_mmap(desc, Prot::kWrite);
  auto cp = sup_.vl_mmap(desc, Prot::kRead);
  assert(pp && cp);
  q.prod_page = *pp;
  q.cons_page = *cp;
  return q;
}

}  // namespace vl::runtime
