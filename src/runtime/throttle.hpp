#pragma once
// Software response to back-pressure (paper § II):
//
//   "Likewise, when arrival rates are greater than consumer service rates,
//    back-pressure enables software to perform adjustments such as changing
//    the PE configuration, or throttling compute kernels."
//
// Throttle is that adjustment policy, packaged: an AIMD (additive-increase
// / multiplicative-decrease) controller driven purely by the local
// success/NACK outcome of each enqueue attempt — no shared state, in
// keeping with VL's zero-sharing design. Producers call `pace()` before
// producing and report each attempt's outcome; the controller converges on
// the largest inter-send gap-free rate the consumer side sustains, instead
// of hammering the device with NACK/retry traffic.
//
// The same policy object also works over software channels: anything that
// exposes a try-style send can drive it.

#include <cstdint>

#include "sim/core.hpp"

namespace vl::runtime {

struct ThrottleConfig {
  Tick min_gap = 0;        ///< Fastest allowed pace (no delay).
  Tick max_gap = 4096;     ///< Ceiling on the inter-send gap.
  Tick increase = 16;      ///< Additive gap growth per NACK.
  double decrease = 0.5;   ///< Multiplicative gap shrink per success.
  std::uint32_t warmup = 4;  ///< Successes before shrinking starts.
};

class Throttle {
 public:
  explicit Throttle(const ThrottleConfig& cfg = {}) : cfg_(cfg) {}

  /// Wait out the current pacing gap (no-op while un-throttled).
  sim::Co<void> pace(sim::SimThread t) {
    if (gap_ > 0) co_await t.compute(gap_);
  }

  /// Report an enqueue outcome; adjusts the gap AIMD-style.
  void on_result(bool accepted) {
    if (accepted) {
      ++accepted_;
      ++streak_;
      if (streak_ >= cfg_.warmup) {
        gap_ = static_cast<Tick>(static_cast<double>(gap_) * cfg_.decrease);
        if (gap_ < cfg_.min_gap) gap_ = cfg_.min_gap;
      }
    } else {
      ++nacks_;
      streak_ = 0;
      gap_ += cfg_.increase;
      if (gap_ > cfg_.max_gap) gap_ = cfg_.max_gap;
    }
  }

  Tick gap() const { return gap_; }
  std::uint64_t nacks() const { return nacks_; }
  std::uint64_t accepted() const { return accepted_; }

 private:
  ThrottleConfig cfg_;
  Tick gap_ = 0;
  std::uint32_t streak_ = 0;     ///< Consecutive successes.
  std::uint64_t accepted_ = 0;
  std::uint64_t nacks_ = 0;
};

}  // namespace vl::runtime
