#pragma once
// Deterministic fault-injection plane.
//
// A FaultPlane turns a FaultSpec into live faults without breaking the
// simulator's determinism contract. Every injection mechanism rides the
// existing (tick, seq) machinery:
//
//   * device stalls   — ordinary events scheduled on the target machine's
//                       EventQueue before the run starts pause/resume the
//                       VLRD injectors (Vlrd::set_injector_stalled). The
//                       injector finishes its in-flight line, then parks;
//                       producers back-pressure through the normal NACK /
//                       park paths, so no message is ever lost — a stall
//                       window is a pure latency event.
//   * link faults     — per-link extra latency and down flags on the
//                       ShardedSim, applied ONLY at the lookahead barrier
//                       (apply_links from the BarrierHook): each epoch sees
//                       one immutable link table, which keeps fault runs
//                       byte-identical between sequential and threaded
//                       stepping.
//   * channel loss/dup— the traffic engines consult chan_copies() at the
//                       send boundary (before a message joins its
//                       sub-batch), for software backends only. Mutating
//                       the batch *before* it is counted keeps the pill
//                       drain counts and the conservation identity
//                       (generated == delivered + dropped) exact.
//   * flash crowds    — scale_gap() rescales a producer's arrival gap as a
//                       pure function of (shard, class, tick), so the load
//                       mutation is deterministic and seed-independent.
//
// All mutable state is per-shard (ordinal counters, fault counters), so
// threaded shard stepping races on nothing. Activations surface three
// ways: owned obs::Registry counters on each machine ("fault.*"), optional
// obs::Timeline series (register_series), and obs::Tracer instants on the
// affected shard's lane.

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "fault/spec.hpp"
#include "obs/registry.hpp"
#include "obs/timeline.hpp"
#include "obs/tracer.hpp"

namespace vl::runtime {
class Machine;
}
namespace vl::sim {
class ShardedSim;
}

namespace vl::fault {

class FaultPlane {
 public:
  /// `shards`: how many shards the run has (1 for the classic engine).
  /// Event shard/link indices are clamped modulo this, so one spec is
  /// meaningful at any scale.
  FaultPlane(const FaultSpec& spec, int shards);

  const FaultSpec& spec() const { return spec_; }
  int shards() const { return shards_; }

  /// Arm one shard's machine: registers the "fault.*" counters in its
  /// telemetry registry and schedules the device-stall window events on
  /// its queue. Call once per shard, before the run starts, in shard-id
  /// order (the scheduling order is part of the deterministic replay).
  void arm_machine(runtime::Machine& m, int shard);

  /// Aggregate fault series for a run timeline (sampled like any other).
  void register_series(obs::Timeline& tl);

  /// Producer pacing hook: the arrival gap after any active flash-crowd
  /// windows for (shard, class) at `now`. Pure function of its arguments
  /// and the spec.
  Tick scale_gap(int shard, QosClass cls, Tick now, Tick gap);

  /// Channel-level fault fate for the next payload message leaving a
  /// producer on `shard`: 0 = drop (count it as shed), 1 = send once,
  /// 2 = send twice. Advances the shard's deterministic ordinal counter.
  int chan_copies(int shard, Tick now);
  /// Any loss/dup events in the spec at all (engines gate the per-message
  /// hook on this and on the backend being a software one).
  bool mutates_channels() const { return chan_events_; }
  bool has_flash() const { return flash_events_; }

  /// Apply the tick-`now` link-fault table to the sharded sim. Call ONLY
  /// from the barrier hook (single-threaded, shards aligned). Emits one
  /// tracer instant per link transition into `tb` when given.
  void apply_links(sim::ShardedSim& ssim, Tick now,
                   obs::TraceBuffer* tb = nullptr);

  // Totals across shards (tests and end-of-run reports).
  std::uint64_t lost() const;
  std::uint64_t duped() const;
  std::uint64_t stall_windows() const;
  std::uint64_t flash_rescales() const;
  std::uint64_t link_transitions() const { return link_transitions_; }

 private:
  struct ShardState {
    std::uint64_t lost = 0;
    std::uint64_t duped = 0;
    std::uint64_t stalls = 0;        ///< Stall windows entered.
    std::uint64_t flash_scaled = 0;  ///< Gaps rescaled by a flash window.
    std::uint64_t chan_seq = 0;      ///< Loss/dup ordinal counter.
    // Mirrors owned by the machine's registry (survive the plane).
    obs::Counter* c_lost = nullptr;
    obs::Counter* c_duped = nullptr;
    obs::Counter* c_flash = nullptr;
  };

  int clamp(int idx) const {
    return idx < 0 ? -1 : idx % (shards_ < 1 ? 1 : shards_);
  }
  bool shard_match(const FaultEvent& e, int shard) const {
    return e.shard < 0 || clamp(e.shard) == shard;
  }

  FaultSpec spec_;
  int shards_;
  std::vector<ShardState> st_;
  bool chan_events_ = false;
  bool flash_events_ = false;
  // Currently-applied S*S link table (apply_links diffs against it).
  std::vector<Tick> cur_extra_;
  std::vector<std::uint8_t> cur_down_;
  std::uint64_t link_transitions_ = 0;
};

}  // namespace vl::fault
