#pragma once
// Deterministic fault schedules.
//
// A FaultSpec is a plain list of timed fault windows — *what* goes wrong,
// *where*, and *when* — with no behaviour of its own. The FaultPlane
// (fault/plane.hpp) turns a spec into scheduled (tick, seq) events and
// per-shard injection state; keeping the schedule a dumb value type is
// what lets it ride inside a ScenarioSpec, print in a --list line, and be
// compared across runs.
//
// Everything is a closed window [start, start + duration): faults always
// lift, so a chaos run's tail is a recovery measurement, not a hang. All
// parameters are explicit ticks/counts — no wall clock, no host RNG — so
// the same spec replays the same fault sequence byte-for-byte, including
// under the sharded engine's threaded stepping.
//
// Text grammar (CLI `--faults`, semicolon-separated clauses):
//
//   spike@START+DUR:extra=T[,src=A][,dst=B]   link latency spike (sharded)
//   partition@START+DUR[:src=A][,dst=B]       link down, bounded (sharded)
//   stall@START+DUR[:shard=K]                 VLRD injector pause + resume
//   loss@START+DUR:every=N[,shard=K]          drop every Nth send (sw backends)
//   dup@START+DUR:every=N[,shard=K]           duplicate every Nth send
//   flash@START+DUR:factor=F[,class=C][,shard=K]
//                                             scale arrival gaps by F
//                                             (F < 1 = flash crowd)
//   rand:SEED[,COUNT[,HORIZON]]               expand COUNT pseudo-random
//                                             clauses from SEED (defaults
//                                             8 events over 200000 ticks)
//
// Omitted src/dst/shard mean "every link/shard"; class is the QosClass
// index (0 standard, 1 latency, 2 bulk), -1 = all classes. A `rand:`
// clause expands deterministically at parse time — the expansion is part
// of the spec's value, so two parses of the same string are equal.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace vl::fault {

enum class FaultKind : std::uint8_t {
  kLinkSpike,    ///< Extra latency on inter-shard link(s).
  kPartition,    ///< Inter-shard link(s) refuse posts for the window.
  kDeviceStall,  ///< VLRD injector paused; state intact, resumes after.
  kChanLoss,     ///< Drop every Nth message at the channel send boundary.
  kChanDup,      ///< Duplicate every Nth message at the send boundary.
  kFlashCrowd,   ///< Multiply a class's arrival gaps by `factor`.
};

const char* to_string(FaultKind k);

struct FaultEvent {
  FaultKind kind = FaultKind::kDeviceStall;
  Tick start = 0;
  Tick duration = 0;  ///< Active window is [start, start + duration).
  int src = -1;       ///< Link faults: source shard (-1 = all).
  int dst = -1;       ///< Link faults: destination shard (-1 = all).
  int shard = -1;     ///< Stall/loss/dup/flash target shard (-1 = all).
  Tick extra = 0;     ///< kLinkSpike: added hop latency.
  std::uint32_t every = 0;  ///< kChanLoss/kChanDup: ordinal period.
  int cls = -1;       ///< kFlashCrowd: QosClass index (-1 = all).
  double factor = 1.0;  ///< kFlashCrowd: gap multiplier (< 1 floods).

  bool active_at(Tick now) const {
    return now >= start && now < start + duration;
  }
};

struct FaultSpec {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  bool has(FaultKind k) const;
  /// Last tick any window is still active (0 for an empty spec).
  Tick end_tick() const;
  /// One-line rendering in the parse grammar (round-trips through parse()).
  std::string summary() const;

  /// Parse the grammar above. Throws std::invalid_argument with a
  /// position-annotated message on malformed input.
  static FaultSpec parse(const std::string& text);

  /// Deterministic pseudo-random schedule: `count` events drawn from
  /// `seed` over [horizon/8, horizon). Shard/link indices are drawn in
  /// [0, 8) and clamped modulo the actual shard count by the FaultPlane,
  /// so one spec is meaningful at any scale.
  static FaultSpec random(std::uint64_t seed, int count = 8,
                          Tick horizon = 200000);
};

}  // namespace vl::fault
