#include "fault/spec.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"

namespace vl::fault {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkSpike: return "spike";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kDeviceStall: return "stall";
    case FaultKind::kChanLoss: return "loss";
    case FaultKind::kChanDup: return "dup";
    case FaultKind::kFlashCrowd: return "flash";
  }
  return "?";
}

bool FaultSpec::has(FaultKind k) const {
  for (const auto& e : events)
    if (e.kind == k) return true;
  return false;
}

Tick FaultSpec::end_tick() const {
  Tick end = 0;
  for (const auto& e : events) end = std::max(end, e.start + e.duration);
  return end;
}

std::string FaultSpec::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& e = events[i];
    if (i) os << ";";
    os << to_string(e.kind) << "@" << e.start << "+" << e.duration;
    std::vector<std::string> kv;
    auto add = [&kv](const std::string& k, const std::string& v) {
      kv.push_back(k + "=" + v);
    };
    if (e.kind == FaultKind::kLinkSpike) add("extra", std::to_string(e.extra));
    if ((e.kind == FaultKind::kLinkSpike || e.kind == FaultKind::kPartition)) {
      if (e.src >= 0) add("src", std::to_string(e.src));
      if (e.dst >= 0) add("dst", std::to_string(e.dst));
    }
    if (e.kind == FaultKind::kChanLoss || e.kind == FaultKind::kChanDup)
      add("every", std::to_string(e.every));
    if (e.kind == FaultKind::kFlashCrowd) {
      std::ostringstream f;
      f << e.factor;
      add("factor", f.str());
      if (e.cls >= 0) add("class", std::to_string(e.cls));
    }
    if (e.shard >= 0 && e.kind != FaultKind::kLinkSpike &&
        e.kind != FaultKind::kPartition)
      add("shard", std::to_string(e.shard));
    for (std::size_t k = 0; k < kv.size(); ++k)
      os << (k ? "," : ":") << kv[k];
  }
  return os.str();
}

namespace {

[[noreturn]] void fail(const std::string& clause, const std::string& why) {
  throw std::invalid_argument("bad fault clause '" + clause + "': " + why);
}

std::uint64_t parse_u64(const std::string& clause, const std::string& s) {
  if (s.empty() || s.find_first_not_of("0123456789") != std::string::npos)
    fail(clause, "expected a non-negative integer, got '" + s + "'");
  return std::stoull(s);
}

double parse_f64(const std::string& clause, const std::string& s) {
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    if (used != s.size()) throw std::invalid_argument(s);
    return v;
  } catch (const std::exception&) {
    fail(clause, "expected a number, got '" + s + "'");
  }
}

FaultEvent parse_clause(const std::string& clause) {
  const auto at = clause.find('@');
  if (at == std::string::npos) fail(clause, "missing '@start+duration'");
  const std::string kind_s = clause.substr(0, at);
  const auto colon = clause.find(':', at);
  const std::string when =
      clause.substr(at + 1, (colon == std::string::npos ? clause.size()
                                                        : colon) - at - 1);
  const auto plus = when.find('+');
  if (plus == std::string::npos) fail(clause, "window must be START+DURATION");

  FaultEvent e;
  if (kind_s == "spike") e.kind = FaultKind::kLinkSpike;
  else if (kind_s == "partition") e.kind = FaultKind::kPartition;
  else if (kind_s == "stall") e.kind = FaultKind::kDeviceStall;
  else if (kind_s == "loss") e.kind = FaultKind::kChanLoss;
  else if (kind_s == "dup") e.kind = FaultKind::kChanDup;
  else if (kind_s == "flash") e.kind = FaultKind::kFlashCrowd;
  else fail(clause, "unknown fault kind '" + kind_s + "'");

  e.start = parse_u64(clause, when.substr(0, plus));
  e.duration = parse_u64(clause, when.substr(plus + 1));
  if (e.duration < 1) fail(clause, "duration must be >= 1");

  if (colon != std::string::npos) {
    std::string params = clause.substr(colon + 1);
    std::istringstream ps(params);
    std::string kv;
    while (std::getline(ps, kv, ',')) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos) fail(clause, "parameter '" + kv +
                                                    "' is not key=value");
      const std::string k = kv.substr(0, eq), v = kv.substr(eq + 1);
      if (k == "src") e.src = static_cast<int>(parse_u64(clause, v));
      else if (k == "dst") e.dst = static_cast<int>(parse_u64(clause, v));
      else if (k == "shard") e.shard = static_cast<int>(parse_u64(clause, v));
      else if (k == "extra") e.extra = parse_u64(clause, v);
      else if (k == "every")
        e.every = static_cast<std::uint32_t>(parse_u64(clause, v));
      else if (k == "class") e.cls = static_cast<int>(parse_u64(clause, v));
      else if (k == "factor") e.factor = parse_f64(clause, v);
      else fail(clause, "unknown parameter '" + k + "'");
    }
  }

  switch (e.kind) {
    case FaultKind::kLinkSpike:
      if (e.extra < 1) fail(clause, "spike needs extra >= 1");
      break;
    case FaultKind::kChanLoss:
    case FaultKind::kChanDup:
      if (e.every < 1) fail(clause, "loss/dup need every >= 1");
      break;
    case FaultKind::kFlashCrowd:
      if (e.factor <= 0.0) fail(clause, "flash needs factor > 0");
      if (e.cls >= static_cast<int>(kQosClasses))
        fail(clause, "class index out of range");
      break;
    default: break;
  }
  return e;
}

}  // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::istringstream ss(text);
  std::string clause;
  while (std::getline(ss, clause, ';')) {
    // Trim surrounding whitespace so shell-quoted lists read naturally.
    const auto b = clause.find_first_not_of(" \t");
    if (b == std::string::npos) continue;
    clause = clause.substr(b, clause.find_last_not_of(" \t") - b + 1);
    if (clause.rfind("rand:", 0) == 0) {
      std::istringstream rs(clause.substr(5));
      std::string part;
      std::vector<std::uint64_t> args;
      while (std::getline(rs, part, ','))
        args.push_back(parse_u64(clause, part));
      if (args.empty()) fail(clause, "rand needs a seed");
      const int count = args.size() > 1 ? static_cast<int>(args[1]) : 8;
      const Tick horizon = args.size() > 2 ? args[2] : 200000;
      const FaultSpec r = random(args[0], count, horizon);
      spec.events.insert(spec.events.end(), r.events.begin(), r.events.end());
      continue;
    }
    spec.events.push_back(parse_clause(clause));
  }
  return spec;
}

FaultSpec FaultSpec::random(std::uint64_t seed, int count, Tick horizon) {
  if (horizon < 64) horizon = 64;
  FaultSpec spec;
  Xoshiro256 rng(seed ^ 0xfa017ull * 0x9e3779b97f4a7c15ull);
  for (int i = 0; i < count; ++i) {
    FaultEvent e;
    e.kind = static_cast<FaultKind>(rng.below(6));
    e.start = horizon / 8 + rng.below(horizon / 2);
    e.duration = 1 + horizon / 16 + rng.below(horizon / 8);
    switch (e.kind) {
      case FaultKind::kLinkSpike:
        e.src = static_cast<int>(rng.below(8));
        e.dst = static_cast<int>(rng.below(8));
        e.extra = 64 + rng.below(1024);
        break;
      case FaultKind::kPartition:
        e.src = static_cast<int>(rng.below(8));
        e.dst = static_cast<int>(rng.below(8));
        break;
      case FaultKind::kDeviceStall:
        e.shard = static_cast<int>(rng.below(8));
        break;
      case FaultKind::kChanLoss:
      case FaultKind::kChanDup:
        e.every = 2 + static_cast<std::uint32_t>(rng.below(6));
        e.shard = static_cast<int>(rng.below(8));
        break;
      case FaultKind::kFlashCrowd:
        e.factor = static_cast<double>(1 + rng.below(6)) / 8.0;
        e.cls = static_cast<int>(rng.below(kQosClasses));
        break;
    }
    spec.events.push_back(e);
  }
  return spec;
}

}  // namespace vl::fault
