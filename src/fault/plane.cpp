#include "fault/plane.hpp"

#include "runtime/machine.hpp"
#include "sim/sharded.hpp"

namespace vl::fault {

FaultPlane::FaultPlane(const FaultSpec& spec, int shards)
    : spec_(spec), shards_(shards < 1 ? 1 : shards) {
  st_.resize(static_cast<std::size_t>(shards_));
  for (const auto& e : spec_.events) {
    if (e.kind == FaultKind::kChanLoss || e.kind == FaultKind::kChanDup)
      chan_events_ = true;
    if (e.kind == FaultKind::kFlashCrowd) flash_events_ = true;
  }
  const std::size_t n =
      static_cast<std::size_t>(shards_) * static_cast<std::size_t>(shards_);
  cur_extra_.assign(n, 0);
  cur_down_.assign(n, 0);
}

void FaultPlane::arm_machine(runtime::Machine& m, int shard) {
  ShardState& s = st_[static_cast<std::size_t>(shard)];
  obs::Registry& reg = m.obs();
  // Owned registry counters: they outlive the plane, so a post-run
  // statset() snapshot never dangles. The plane mirrors them in plain
  // fields for its own timeline series.
  s.c_lost = &reg.counter("fault.chan_lost");
  s.c_duped = &reg.counter("fault.chan_duped");
  s.c_flash = &reg.counter("fault.flash_rescales");
  obs::Counter& c_stalls = reg.counter("fault.device_stalls");

  sim::EventQueue* eq = &m.eq();
  vlrd::Cluster* cl = &m.cluster();
  for (const auto& e : spec_.events) {
    if (e.kind != FaultKind::kDeviceStall) continue;
    if (!shard_match(e, shard)) continue;
    ShardState* sp = &s;
    obs::Counter* cs = &c_stalls;
    // Entry and exit are ordinary events: they consume (tick, seq)
    // numbers like any workload event, so two identical invocations
    // replay the exact same stream. Overlapping stall windows coalesce
    // conservatively — the earliest end resumes the injectors.
    eq->schedule_at(e.start, [eq, cl, sp, cs] {
      cl->set_injector_stalled(true);
      ++sp->stalls;
      cs->inc();
      if (auto* tb = eq->trace())
        tb->instant(eq->now(), obs::kDeviceTid, "fault", "device_stall_begin");
    });
    eq->schedule_at(e.start + e.duration, [eq, cl] {
      cl->set_injector_stalled(false);
      if (auto* tb = eq->trace())
        tb->instant(eq->now(), obs::kDeviceTid, "fault", "device_stall_end");
    });
  }
}

void FaultPlane::register_series(obs::Timeline& tl) {
  tl.add_series("fault.chan_lost",
                [this] { return static_cast<double>(lost()); });
  tl.add_series("fault.chan_duped",
                [this] { return static_cast<double>(duped()); });
  tl.add_series("fault.device_stalls",
                [this] { return static_cast<double>(stall_windows()); });
  tl.add_series("fault.flash_rescales",
                [this] { return static_cast<double>(flash_rescales()); });
  tl.add_series("fault.link_transitions", [this] {
    return static_cast<double>(link_transitions_);
  });
}

Tick FaultPlane::scale_gap(int shard, QosClass cls, Tick now, Tick gap) {
  if (!flash_events_ || gap == 0) return gap;
  double g = static_cast<double>(gap);
  bool scaled = false;
  for (const auto& e : spec_.events) {
    if (e.kind != FaultKind::kFlashCrowd || !e.active_at(now)) continue;
    if (!shard_match(e, shard)) continue;
    if (e.cls >= 0 && e.cls != static_cast<int>(cls)) continue;
    g *= e.factor;
    scaled = true;
  }
  if (!scaled) return gap;
  ShardState& s = st_[static_cast<std::size_t>(shard)];
  ++s.flash_scaled;
  if (s.c_flash) s.c_flash->inc();
  return static_cast<Tick>(g);
}

int FaultPlane::chan_copies(int shard, Tick now) {
  ShardState& s = st_[static_cast<std::size_t>(shard)];
  const std::uint64_t seq = s.chan_seq++;
  int copies = 1;
  for (const auto& e : spec_.events) {
    if (!e.active_at(now) || !shard_match(e, shard)) continue;
    if (e.kind == FaultKind::kChanLoss && e.every && seq % e.every == 0)
      copies = 0;
    else if (e.kind == FaultKind::kChanDup && copies == 1 && e.every &&
             seq % e.every == 1)
      copies = 2;
  }
  if (copies == 0) {
    ++s.lost;
    if (s.c_lost) s.c_lost->inc();
  } else if (copies == 2) {
    ++s.duped;
    if (s.c_duped) s.c_duped->inc();
  }
  return copies;
}

void FaultPlane::apply_links(sim::ShardedSim& ssim, Tick now,
                             obs::TraceBuffer* tb) {
  const int S = shards_;
  if (S < 2) return;
  // Desired table at `now`: spikes accumulate extra latency, any active
  // partition downs the link. Wildcard src/dst (-1) expand to every shard.
  std::vector<Tick> extra(cur_extra_.size(), 0);
  std::vector<std::uint8_t> down(cur_down_.size(), 0);
  for (const auto& e : spec_.events) {
    if ((e.kind != FaultKind::kLinkSpike && e.kind != FaultKind::kPartition) ||
        !e.active_at(now))
      continue;
    const int s0 = e.src < 0 ? 0 : clamp(e.src);
    const int s1 = e.src < 0 ? S - 1 : clamp(e.src);
    const int d0 = e.dst < 0 ? 0 : clamp(e.dst);
    const int d1 = e.dst < 0 ? S - 1 : clamp(e.dst);
    for (int s = s0; s <= s1; ++s)
      for (int d = d0; d <= d1; ++d) {
        if (s == d) continue;
        const std::size_t i =
            static_cast<std::size_t>(s) * static_cast<std::size_t>(S) +
            static_cast<std::size_t>(d);
        if (e.kind == FaultKind::kLinkSpike) extra[i] += e.extra;
        else down[i] = 1;
      }
  }
  for (int s = 0; s < S; ++s)
    for (int d = 0; d < S; ++d) {
      const std::size_t i =
          static_cast<std::size_t>(s) * static_cast<std::size_t>(S) +
          static_cast<std::size_t>(d);
      if (extra[i] == cur_extra_[i] && down[i] == cur_down_[i]) continue;
      ssim.set_link_fault(s, d, extra[i], down[i] != 0);
      cur_extra_[i] = extra[i];
      cur_down_[i] = down[i];
      ++link_transitions_;
      if (tb)
        tb->instant(now, 0, "fault",
                    down[i] ? "link_partition" : "link_latency",
                    "src_dst",
                    (static_cast<std::uint64_t>(s) << 32) |
                        static_cast<std::uint32_t>(d));
    }
}

std::uint64_t FaultPlane::lost() const {
  std::uint64_t n = 0;
  for (const auto& s : st_) n += s.lost;
  return n;
}
std::uint64_t FaultPlane::duped() const {
  std::uint64_t n = 0;
  for (const auto& s : st_) n += s.duped;
  return n;
}
std::uint64_t FaultPlane::stall_windows() const {
  std::uint64_t n = 0;
  for (const auto& s : st_) n += s.stalls;
  return n;
}
std::uint64_t FaultPlane::flash_rescales() const {
  std::uint64_t n = 0;
  for (const auto& s : st_) n += s.flash_scaled;
  return n;
}

}  // namespace vl::fault
