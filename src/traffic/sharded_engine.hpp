#pragma once
// Sharded traffic engine: one ScenarioSpec over a mesh of S shards.
//
// Each shard is a complete modelled node — its own sim::EventQueue,
// runtime::Machine (cores, memory, VLRD/CAF devices), channels, and
// consumers — the paper's § III-C2 multi-VLRD partitioning taken to its
// logical end: disjoint virtual queues never share state, so the simulator
// need not share a calendar either. A consistent-hash ShardRouter maps a
// logical tenant population (spec.sharding.population ids — far more
// tenants than producer threads; producers draw a destination tenant per
// message) onto shards; messages whose destination lives on the producing
// shard inject locally, the rest cross a modelled inter-shard link (fixed
// sharding.link_latency hop, sharding.link_window in-flight bound) and are
// injected by the destination shard's relay thread.
//
// Shards advance under sim::ShardedSim's conservative lookahead, so a run
// is deterministic — byte-identical CSV and per-shard event digests for a
// fixed (spec, backend, seed, shards) — in both sequential round-robin and
// `sim_threads > 1` stepping.
//
// Scaling story (the perf_opt): at S=1 every producer, consumer, and SQI
// lands on one 16-core machine — heavy run-queue oversubscription, one
// shared prodBuf NACK-churning across all channels, one calendar carrying
// every event. At S=8 each node runs a handful of threads and SQIs, so
// events-per-message collapses and the (sequential) wall clock with it.

#include <cstdint>
#include <string>
#include <vector>

#include "squeue/factory.hpp"
#include "traffic/engine.hpp"
#include "traffic/metrics.hpp"
#include "traffic/scenario.hpp"

namespace vl::traffic {

struct ShardedOptions {
  int shards = 1;
  /// >1: step each epoch's shards on this many host threads. Results are
  /// byte-identical to sequential stepping (see sim/sharded.hpp).
  int sim_threads = 1;
  std::uint64_t population = 0;  ///< Override spec.sharding.population.
  std::uint64_t messages = 0;    ///< Override spec.sharding.messages_total.
  /// Optional observability (src/obs/): a Timeline is sampled at every
  /// lookahead barrier (plus a final cumulative epoch); a Tracer gets one
  /// buffer per shard (pid = shard id) and a barrier-epoch lane
  /// (pid = shards). Observation schedules nothing: digests and metrics
  /// are byte-identical with it on or off.
  const obs::RunHooks* obs = nullptr;
};

struct ShardedResult {
  /// Merged per-class metrics + summed kernel events; csv()/table() come
  /// from here and match single-shard column semantics.
  EngineResult engine;
  int shards = 1;
  int sim_threads = 1;
  std::uint64_t cross_shard = 0;    ///< Messages that crossed a link.
  std::uint64_t epochs = 0;         ///< Lookahead windows executed.
  std::uint64_t window_stalls = 0;  ///< Link back-pressure events.
  std::uint64_t rebalanced = 0;     ///< Tenants moved off hot shards.
  /// FNV-1a fold over every shard's delivery/ingress event stream
  /// (tick, stamp) — the determinism witness tests compare.
  std::vector<std::uint64_t> shard_digests;
  std::vector<std::uint64_t> shard_delivered;
};

/// Run `spec` across opts.shards shards. Requires a fan-out/mesh topology
/// (one consumer per channel), open loop, and a sharding block with
/// population > 0 and messages_total > 0 (after opts overrides). The
/// global message budget is spread over spec.producers producers
/// regardless of shard count, so delivered counts match across S — the
/// equal-work basis of the 1-vs-8-shard comparison. Throws
/// std::invalid_argument on an unshardable spec.
ShardedResult run_sharded(const ScenarioSpec& spec, squeue::Backend backend,
                          std::uint64_t seed, const ShardedOptions& opts,
                          int scale = 1);

}  // namespace vl::traffic
