#include "traffic/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "common/table.hpp"

namespace vl::traffic {

namespace {

// 64 exact unit buckets, then 32 sub-buckets per octave up to 2^63.
constexpr std::uint32_t kOctaves = 64 - (LogHistogram::kSubBits + 1);
constexpr std::uint32_t kBucketCount =
    LogHistogram::kLinearMax + kOctaves * LogHistogram::kSubBuckets;

}  // namespace

LogHistogram::LogHistogram() : buckets_(kBucketCount, 0) {}

std::uint32_t LogHistogram::bucket_index(std::uint64_t v) {
  if (v < kLinearMax) return static_cast<std::uint32_t>(v);
  // Highest set bit is at position w-1 >= kSubBits+1; the kSubBits bits
  // below it select the sub-bucket within the octave.
  const std::uint32_t w = std::bit_width(v);
  const std::uint32_t octave = w - (kSubBits + 1);  // 1 for v in [64,128)
  const std::uint32_t sub = static_cast<std::uint32_t>(
      (v >> (w - 1 - kSubBits)) & (kSubBuckets - 1));
  const std::uint32_t idx = kLinearMax + (octave - 1) * kSubBuckets + sub;
  return idx < kBucketCount ? idx : kBucketCount - 1;
}

std::uint64_t LogHistogram::bucket_upper(std::uint32_t i) {
  if (i < kLinearMax) return i;
  const std::uint32_t octave = (i - kLinearMax) / kSubBuckets + 1;
  const std::uint32_t sub = (i - kLinearMax) % kSubBuckets;
  const std::uint32_t shift = octave;  // sub-bucket width = 2^octave
  const std::uint64_t base = std::uint64_t{kSubBuckets} << octave;
  return base + (std::uint64_t{sub + 1} << shift) - 1;
}

void LogHistogram::record(std::uint64_t v, std::uint64_t count) {
  if (count == 0) return;
  buckets_[bucket_index(v)] += count;
  total_ += count;
  sum_ += static_cast<double>(v) * static_cast<double>(count);
  if (v > max_) max_ = v;
  if (v < min_) min_ = v;
}

void LogHistogram::merge(const LogHistogram& other) {
  for (std::uint32_t i = 0; i < kBucketCount; ++i)
    buckets_[i] += other.buckets_[i];
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
}

std::uint64_t LogHistogram::percentile(double p) const {
  if (total_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: smallest bucket whose cumulative count reaches rank.
  const double exact = p / 100.0 * static_cast<double>(total_);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(exact));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (std::uint32_t i = 0; i < kBucketCount; ++i) {
    cum += buckets_[i];
    if (cum >= rank) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

void TenantMetrics::merge(const TenantMetrics& o) {
  generated += o.generated;
  sent += o.sent;
  delivered += o.delivered;
  dropped += o.dropped;
  blocked_ticks += o.blocked_ticks;
  latency.merge(o.latency);
}

std::uint64_t ScenarioMetrics::total_generated() const {
  std::uint64_t n = 0;
  for (const auto& t : tenants) n += t.generated;
  return n;
}

std::uint64_t ScenarioMetrics::total_delivered() const {
  std::uint64_t n = 0;
  for (const auto& t : tenants) n += t.delivered;
  return n;
}

std::uint64_t ScenarioMetrics::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& t : tenants) n += t.dropped;
  return n;
}

std::vector<std::string> ScenarioMetrics::csv_header() {
  return {"tenant",    "generated",   "sent",    "delivered",
          "dropped",   "blocked_ticks",          "lat_p50",
          "lat_p95",   "lat_p99",     "lat_p999", "lat_max",
          "lat_mean",  "mmsgs_per_s"};
}

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

std::vector<std::string> tenant_row(const TenantMetrics& t, double ns) {
  const double secs = ns * 1e-9;
  const double rate =
      secs > 0.0 ? static_cast<double>(t.delivered) / secs / 1e6 : 0.0;
  return {t.tenant,
          std::to_string(t.generated),
          std::to_string(t.sent),
          std::to_string(t.delivered),
          std::to_string(t.dropped),
          std::to_string(t.blocked_ticks),
          std::to_string(t.latency.percentile(50)),
          std::to_string(t.latency.percentile(95)),
          std::to_string(t.latency.percentile(99)),
          std::to_string(t.latency.percentile(99.9)),
          std::to_string(t.latency.max()),
          fmt_double(t.latency.mean()),
          fmt_double(rate)};
}

}  // namespace

std::vector<std::vector<std::string>> ScenarioMetrics::csv_rows() const {
  std::vector<std::vector<std::string>> rows;
  TenantMetrics all;
  all.tenant = "*";
  for (const auto& t : tenants) {
    rows.push_back(tenant_row(t, ns));
    all.merge(t);
  }
  if (tenants.size() > 1) rows.push_back(tenant_row(all, ns));
  return rows;
}

std::string ScenarioMetrics::table() const {
  TextTable tt(csv_header());
  for (auto& row : csv_rows()) tt.add_row(row);
  std::string out = tt.render();
  if (!depths.empty()) {
    TextTable dt({"channel", "depth_samples", "depth_mean", "depth_max"});
    for (const auto& d : depths)
      dt.add_row({d.channel, std::to_string(d.samples),
                  TextTable::num(d.depth.mean()), TextTable::num(d.depth.max())});
    out += "\n" + dt.render();
  }
  return out;
}

}  // namespace vl::traffic
