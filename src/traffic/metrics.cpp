#include "traffic/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "common/table.hpp"

namespace vl::traffic {

namespace {

// 64 exact unit buckets, then 32 sub-buckets per octave up to 2^63.
constexpr std::uint32_t kOctaves = 64 - (LogHistogram::kSubBits + 1);
constexpr std::uint32_t kBucketCount =
    LogHistogram::kLinearMax + kOctaves * LogHistogram::kSubBuckets;

}  // namespace

LogHistogram::LogHistogram() : buckets_(kBucketCount, 0) {}

std::uint32_t LogHistogram::bucket_index(std::uint64_t v) {
  if (v < kLinearMax) return static_cast<std::uint32_t>(v);
  // Highest set bit is at position w-1 >= kSubBits+1; the kSubBits bits
  // below it select the sub-bucket within the octave.
  const std::uint32_t w = std::bit_width(v);
  const std::uint32_t octave = w - (kSubBits + 1);  // 1 for v in [64,128)
  const std::uint32_t sub = static_cast<std::uint32_t>(
      (v >> (w - 1 - kSubBits)) & (kSubBuckets - 1));
  const std::uint32_t idx = kLinearMax + (octave - 1) * kSubBuckets + sub;
  return idx < kBucketCount ? idx : kBucketCount - 1;
}

std::uint64_t LogHistogram::bucket_upper(std::uint32_t i) {
  if (i < kLinearMax) return i;
  const std::uint32_t octave = (i - kLinearMax) / kSubBuckets + 1;
  const std::uint32_t sub = (i - kLinearMax) % kSubBuckets;
  const std::uint32_t shift = octave;  // sub-bucket width = 2^octave
  const std::uint64_t base = std::uint64_t{kSubBuckets} << octave;
  return base + (std::uint64_t{sub + 1} << shift) - 1;
}

void LogHistogram::record(std::uint64_t v, std::uint64_t count) {
  if (count == 0) return;
  buckets_[bucket_index(v)] += count;
  total_ += count;
  sum_ += static_cast<double>(v) * static_cast<double>(count);
  if (v > max_) max_ = v;
  if (v < min_) min_ = v;
}

void LogHistogram::merge(const LogHistogram& other) {
  for (std::uint32_t i = 0; i < kBucketCount; ++i)
    buckets_[i] += other.buckets_[i];
  total_ += other.total_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
}

std::uint64_t LogHistogram::count_le(std::uint64_t v) const {
  if (total_ == 0) return 0;
  if (v >= max_) return total_;
  const std::uint32_t last = bucket_index(v);
  std::uint64_t cum = 0;
  for (std::uint32_t i = 0; i <= last; ++i) cum += buckets_[i];
  return cum;
}

std::uint64_t LogHistogram::percentile(double p) const {
  if (total_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: smallest bucket whose cumulative count reaches rank.
  const double exact = p / 100.0 * static_cast<double>(total_);
  std::uint64_t rank = static_cast<std::uint64_t>(std::ceil(exact));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (std::uint32_t i = 0; i < kBucketCount; ++i) {
    cum += buckets_[i];
    if (cum >= rank) return std::min(bucket_upper(i), max_);
  }
  return max_;
}

double TenantMetrics::slo_attained_pct() const {
  if (!slo_p99 || !delivered) return 100.0;
  return 100.0 * static_cast<double>(slo_within()) /
         static_cast<double>(delivered);
}

void TenantMetrics::merge(const TenantMetrics& o) {
  generated += o.generated;
  sent += o.sent;
  delivered += o.delivered;
  dropped += o.dropped;
  blocked_ticks += o.blocked_ticks;
  latency.merge(o.latency);
}

void ScenarioMetrics::merge(const ScenarioMetrics& o) {
  for (const auto& ot : o.tenants) {
    auto it = std::find_if(tenants.begin(), tenants.end(),
                           [&](const TenantMetrics& t) {
                             return t.tenant == ot.tenant;
                           });
    if (it != tenants.end())
      it->merge(ot);
    else
      tenants.push_back(ot);
  }
  for (const auto& d : o.depths) depths.push_back(d);
  ticks = std::max(ticks, o.ticks);
  ns = std::max(ns, o.ns);
}

double ClassAgg::slo_attained_pct() const {
  if (!slo_delivered) return 100.0;
  return 100.0 * static_cast<double>(slo_within) /
         static_cast<double>(slo_delivered);
}

std::uint64_t ScenarioMetrics::total_generated() const {
  std::uint64_t n = 0;
  for (const auto& t : tenants) n += t.generated;
  return n;
}

std::uint64_t ScenarioMetrics::total_delivered() const {
  std::uint64_t n = 0;
  for (const auto& t : tenants) n += t.delivered;
  return n;
}

std::uint64_t ScenarioMetrics::total_dropped() const {
  std::uint64_t n = 0;
  for (const auto& t : tenants) n += t.dropped;
  return n;
}

std::size_t ScenarioMetrics::distinct_classes() const {
  bool present[kQosClasses] = {};
  for (const auto& t : tenants) present[static_cast<std::size_t>(t.qos)] = true;
  std::size_t n = 0;
  for (bool p : present) n += p;
  return n;
}

std::vector<ClassAgg> ScenarioMetrics::by_class() const {
  std::vector<ClassAgg> out;
  for (std::size_t c = 0; c < kQosClasses; ++c) {
    const auto cls = static_cast<QosClass>(c);
    ClassAgg agg;
    agg.cls = cls;
    agg.agg.tenant = to_string(cls);
    agg.agg.qos = cls;
    bool any = false;
    for (const auto& t : tenants) {
      if (t.qos != cls) continue;
      any = true;
      agg.agg.merge(t);
      if (t.slo_p99) {
        agg.slo_delivered += t.delivered;
        agg.slo_within += t.slo_within();
      }
    }
    if (any) out.push_back(std::move(agg));
  }
  return out;
}

std::vector<std::string> ScenarioMetrics::csv_header() {
  return {"tenant",    "qos",         "slo_p99", "slo_att_pct",
          "generated", "sent",        "delivered",
          "dropped",   "blocked_ticks",          "lat_p50",
          "lat_p95",   "lat_p99",     "lat_p999", "lat_max",
          "lat_mean",  "mmsgs_per_s"};
}

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

/// Shared row shape for tenant, class-aggregate, and "*" rows. `qos_label`
/// distinguishes them ("-" for mixed-class aggregates); `att` is "-" when
/// no SLO applies.
std::vector<std::string> metrics_row(const TenantMetrics& t, double ns,
                                     const std::string& qos_label,
                                     Tick slo_p99, const std::string& att) {
  const double secs = ns * 1e-9;
  const double rate =
      secs > 0.0 ? static_cast<double>(t.delivered) / secs / 1e6 : 0.0;
  return {t.tenant,
          qos_label,
          std::to_string(slo_p99),
          att,
          std::to_string(t.generated),
          std::to_string(t.sent),
          std::to_string(t.delivered),
          std::to_string(t.dropped),
          std::to_string(t.blocked_ticks),
          std::to_string(t.latency.percentile(50)),
          std::to_string(t.latency.percentile(95)),
          std::to_string(t.latency.percentile(99)),
          std::to_string(t.latency.percentile(99.9)),
          std::to_string(t.latency.max()),
          fmt_double(t.latency.mean()),
          fmt_double(rate)};
}

std::vector<std::string> tenant_row(const TenantMetrics& t, double ns) {
  return metrics_row(t, ns, to_string(t.qos), t.slo_p99,
                     t.slo_p99 ? fmt_double(t.slo_attained_pct()) : "-");
}

}  // namespace

std::vector<std::vector<std::string>> ScenarioMetrics::csv_rows() const {
  std::vector<std::vector<std::string>> rows;
  TenantMetrics all;
  all.tenant = "*";
  for (const auto& t : tenants) {
    rows.push_back(tenant_row(t, ns));
    all.merge(t);
  }
  // Per-class aggregate rows once the scenario actually mixes classes.
  if (distinct_classes() > 1)
    for (const auto& c : by_class())
      rows.push_back(metrics_row(
          c.agg, ns, std::string("class:") + to_string(c.cls), 0,
          c.slo_delivered ? fmt_double(c.slo_attained_pct()) : "-"));
  if (tenants.size() > 1)
    rows.push_back(metrics_row(all, ns, "-", 0, "-"));
  return rows;
}

namespace {

/// One tenant-shaped JSON object (tenants and class aggregates share it).
std::string metrics_json_obj(const TenantMetrics& t, double ns,
                             const std::string& label,
                             const std::string& qos_label, Tick slo_p99,
                             double slo_att_pct, bool has_slo) {
  std::string o = "{\"name\": \"" + label + "\", \"qos\": \"" + qos_label +
                  "\", \"slo_p99\": " + std::to_string(slo_p99);
  o += ", \"slo_att_pct\": ";
  o += has_slo ? fmt_double(slo_att_pct) : std::string("null");
  o += ", \"generated\": " + std::to_string(t.generated);
  o += ", \"sent\": " + std::to_string(t.sent);
  o += ", \"delivered\": " + std::to_string(t.delivered);
  o += ", \"dropped\": " + std::to_string(t.dropped);
  o += ", \"blocked_ticks\": " + std::to_string(t.blocked_ticks);
  o += ", \"lat_p50\": " + std::to_string(t.latency.percentile(50));
  o += ", \"lat_p95\": " + std::to_string(t.latency.percentile(95));
  o += ", \"lat_p99\": " + std::to_string(t.latency.percentile(99));
  o += ", \"lat_p999\": " + std::to_string(t.latency.percentile(99.9));
  o += ", \"lat_max\": " + std::to_string(t.latency.max());
  o += ", \"lat_mean\": " + fmt_double(t.latency.mean());
  const double secs = ns * 1e-9;
  const double rate =
      secs > 0.0 ? static_cast<double>(t.delivered) / secs / 1e6 : 0.0;
  o += ", \"mmsgs_per_s\": " + fmt_double(rate) + "}";
  return o;
}

}  // namespace

std::string ScenarioMetrics::json() const {
  std::string out = "{\n  \"ticks\": " + std::to_string(ticks) +
                    ",\n  \"ns\": " + fmt_double(ns);
  out += ",\n  \"generated\": " + std::to_string(total_generated());
  out += ",\n  \"delivered\": " + std::to_string(total_delivered());
  out += ",\n  \"dropped\": " + std::to_string(total_dropped());
  out += ",\n  \"tenants\": [\n";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantMetrics& t = tenants[i];
    if (i) out += ",\n";
    out += "    " + metrics_json_obj(t, ns, t.tenant, to_string(t.qos),
                                     t.slo_p99, t.slo_attained_pct(),
                                     t.slo_p99 != 0);
  }
  out += "\n  ],\n  \"classes\": [\n";
  const auto classes = by_class();
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const ClassAgg& c = classes[i];
    if (i) out += ",\n";
    out += "    " + metrics_json_obj(c.agg, ns, c.agg.tenant,
                                     to_string(c.cls), 0,
                                     c.slo_attained_pct(),
                                     c.slo_delivered != 0);
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string ScenarioMetrics::table() const {
  TextTable tt(csv_header());
  for (auto& row : csv_rows()) tt.add_row(row);
  std::string out = tt.render();
  if (!depths.empty()) {
    TextTable dt({"channel", "depth_samples", "depth_mean", "depth_max"});
    for (const auto& d : depths)
      dt.add_row({d.channel, std::to_string(d.samples),
                  TextTable::num(d.depth.mean()), TextTable::num(d.depth.max())});
    out += "\n" + dt.render();
  }
  return out;
}

}  // namespace vl::traffic
