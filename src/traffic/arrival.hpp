#pragma once
// Arrival processes on the simulated clock.
//
// A traffic producer asks its ArrivalProcess for the gap (in ticks) until
// its next message. All stochastic processes draw from common/rng seeded by
// the scenario runner, so a (scenario, seed) pair replays the exact same
// arrival sequence on every backend — cross-backend comparisons see
// identical offered load.
//
// Four process families cover the scenario space:
//   kDeterministic  fixed inter-arrival gap (closed-form offered rate)
//   kPoisson        exponential gaps — memoryless "many independent users"
//   kBursty         2-state MMPP: exponential dwell in a burst state (fast
//                   gaps) and an idle state (slow gaps); models on/off
//                   tenants and incast micro-bursts
//   kDiurnal        Poisson whose rate is modulated sinusoidally over a
//                   cycle — a compressed day/night load ramp

#include <cmath>
#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace vl::traffic {

enum class ArrivalKind { kDeterministic, kPoisson, kBursty, kDiurnal };

const char* to_string(ArrivalKind k);

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kDeterministic;
  /// Mean inter-arrival gap in ticks (for kBursty: the gap in burst state).
  double mean_gap = 100.0;
  // --- kBursty ---
  double idle_gap = 1000.0;    ///< Mean gap while idle.
  double burst_dwell = 2000.0; ///< Mean ticks spent bursting before idling.
  double idle_dwell = 4000.0;  ///< Mean ticks idling before the next burst.
  // --- kDiurnal ---
  double amplitude = 0.8;      ///< Rate swing fraction in [0, 1).
  double cycle = 50000.0;      ///< Ticks per full diurnal cycle.

  static ArrivalSpec deterministic(double gap) {
    return {ArrivalKind::kDeterministic, gap, 0, 0, 0, 0, 0};
  }
  static ArrivalSpec poisson(double gap) {
    return {ArrivalKind::kPoisson, gap, 0, 0, 0, 0, 0};
  }
  static ArrivalSpec bursty(double burst_gap, double idle_gap,
                            double burst_dwell, double idle_dwell) {
    return {ArrivalKind::kBursty, burst_gap, idle_gap, burst_dwell,
            idle_dwell, 0, 0};
  }
  static ArrivalSpec diurnal(double gap, double amplitude, double cycle) {
    return {ArrivalKind::kDiurnal, gap, 0, 0, 0, amplitude, cycle};
  }
};

/// Gap generator; `now` is the producer's current simulated tick so that
/// time-varying processes (diurnal) can evaluate their rate envelope.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual Tick next_gap(Tick now) = 0;
};

namespace detail {

/// Exponential variate with the given mean, floored at 1 tick so producers
/// always make forward progress on the event queue.
inline Tick exp_gap(Xoshiro256& rng, double mean) {
  const double u = rng.uniform();  // [0, 1)
  const double g = -mean * std::log1p(-u);
  return g < 1.0 ? Tick{1} : static_cast<Tick>(g);
}

}  // namespace detail

class DeterministicArrival final : public ArrivalProcess {
 public:
  explicit DeterministicArrival(double gap)
      : gap_(gap < 1.0 ? Tick{1} : static_cast<Tick>(gap)) {}
  Tick next_gap(Tick) override { return gap_; }

 private:
  Tick gap_;
};

class PoissonArrival final : public ArrivalProcess {
 public:
  PoissonArrival(double mean_gap, std::uint64_t seed)
      : mean_(mean_gap), rng_(seed) {}
  Tick next_gap(Tick) override { return detail::exp_gap(rng_, mean_); }

 private:
  double mean_;
  Xoshiro256 rng_;
};

/// 2-state Markov-modulated Poisson process. State dwell times are
/// exponential; gaps are exponential with the current state's mean. A gap
/// that crosses the state boundary is re-drawn in the new state starting
/// from the boundary (the standard MMPP thinning-free construction).
class MmppArrival final : public ArrivalProcess {
 public:
  MmppArrival(const ArrivalSpec& s, std::uint64_t seed)
      : spec_(s), rng_(seed) {
    state_end_ = 0;  // forces a dwell draw on the first call
  }

  Tick next_gap(Tick now) override {
    Tick t = now;
    Tick gap = 0;
    for (;;) {
      if (t >= state_end_) {
        bursting_ = state_end_ == 0 ? true : !bursting_;
        const double dwell =
            bursting_ ? spec_.burst_dwell : spec_.idle_dwell;
        state_end_ = t + detail::exp_gap(rng_, dwell);
      }
      const double mean = bursting_ ? spec_.mean_gap : spec_.idle_gap;
      const Tick g = detail::exp_gap(rng_, mean);
      if (t + g <= state_end_) return gap + g;
      // Arrival would land past the state switch: advance to the boundary
      // and continue drawing in the new state.
      gap += state_end_ - t;
      t = state_end_;
    }
  }

  bool bursting() const { return bursting_; }

 private:
  ArrivalSpec spec_;
  Xoshiro256 rng_;
  bool bursting_ = false;
  Tick state_end_ = 0;
};

/// Non-homogeneous Poisson with sinusoidal rate envelope:
///   rate(t) = (1 / mean_gap) * (1 + amplitude * sin(2*pi*t / cycle))
/// sampled by drawing an exponential gap at the instantaneous rate — an
/// adequate approximation while gaps are short relative to the cycle.
class DiurnalArrival final : public ArrivalProcess {
 public:
  DiurnalArrival(const ArrivalSpec& s, std::uint64_t seed)
      : spec_(s), rng_(seed) {}

  double rate_at(Tick now) const {
    const double phase =
        2.0 * M_PI * static_cast<double>(now) / spec_.cycle;
    return (1.0 / spec_.mean_gap) *
           (1.0 + spec_.amplitude * std::sin(phase));
  }

  Tick next_gap(Tick now) override {
    const double r = rate_at(now);
    // Rate can approach zero at the trough; clamp the local mean gap so a
    // single draw cannot stall a producer for more than a cycle.
    double mean = r > 0.0 ? 1.0 / r : spec_.cycle;
    if (mean > spec_.cycle) mean = spec_.cycle;
    return detail::exp_gap(rng_, mean);
  }

 private:
  ArrivalSpec spec_;
  Xoshiro256 rng_;
};

/// Instantiate the process a spec describes. `seed` should already be
/// stream-split per producer (see traffic::Engine) so no two producers
/// share an RNG sequence.
inline std::unique_ptr<ArrivalProcess> make_arrival(const ArrivalSpec& s,
                                                    std::uint64_t seed) {
  switch (s.kind) {
    case ArrivalKind::kDeterministic:
      return std::make_unique<DeterministicArrival>(s.mean_gap);
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonArrival>(s.mean_gap, seed);
    case ArrivalKind::kBursty:
      return std::make_unique<MmppArrival>(s, seed);
    case ArrivalKind::kDiurnal:
      return std::make_unique<DiurnalArrival>(s, seed);
  }
  return nullptr;
}

inline const char* to_string(ArrivalKind k) {
  switch (k) {
    case ArrivalKind::kDeterministic: return "deterministic";
    case ArrivalKind::kPoisson: return "poisson";
    case ArrivalKind::kBursty: return "bursty";
    case ArrivalKind::kDiurnal: return "diurnal";
  }
  return "?";
}

}  // namespace vl::traffic
