#pragma once
// The traffic engine: instantiates a ScenarioSpec over a ChannelFactory,
// spawns producer / relay / consumer SimThreads, drives open- or
// closed-loop load, and collects per-tenant latency + queue-depth metrics.
//
// Message framing: word 0 of every payload message carries
//   [63:56] tenant id   [55:48] producer id   [47:0] send tick
// so any final-stage consumer can attribute latency to a tenant and route
// closed-loop acks back to the producer, with no out-of-band lookup state.
// Remaining words are deterministic filler to the tenant's msg_words.
//
// Termination uses pilot pills: when the last producer finishes, a
// coordinator thread enqueues one poison pill per first-stage consumer;
// a pipeline stage's last-to-finish worker forwards pills to the next
// stage. Since every backend's queue object delivers accepted messages in
// arrival order, pills enqueued strictly after all payload sends complete
// are delivered last, so no payload is stranded behind a stopped worker.

#include <cstdint>
#include <string>

#include "obs/hooks.hpp"
#include "runtime/machine.hpp"
#include "runtime/qos_supervisor.hpp"
#include "squeue/factory.hpp"
#include "traffic/metrics.hpp"
#include "traffic/scenario.hpp"

namespace vl::traffic {

struct EngineResult {
  std::string scenario;
  std::string backend;
  std::uint64_t seed = 0;
  int scale = 1;
  std::uint64_t events = 0;  ///< Kernel events executed during the run.
  ScenarioMetrics metrics;
  /// End-of-run snapshot of the machine's telemetry tables (Machine::obs());
  /// per-shard snapshots merged on sharded runs. Diff/merge/to_string via
  /// the StatSet view.
  StatSet device_stats;

  /// Per-tenant CSV (header + rows). Fully deterministic for a fixed
  /// (scenario, backend, seed, scale): byte-identical across runs.
  std::string csv() const;
  /// Aligned text tables for terminal consumption.
  std::string table() const;
};

class Engine {
 public:
  Engine(runtime::Machine& m, squeue::ChannelFactory& f) : m_(m), f_(f) {}

  /// Run `spec` (already scaled) to completion on this machine. The
  /// machine must be freshly constructed — the engine assumes an empty
  /// event queue and takes over thread placement.
  ///
  /// `obs` (optional) attaches the observability layer: a Timeline gets
  /// per-class delivered/p99/SLO/blocked series plus device counters
  /// sampled every obs->sample_every ticks, a Tracer gets the machine's
  /// event stream (pid 0). Observation is external to the event loop — it
  /// schedules nothing and consumes no (tick, seq) numbers — so results
  /// are byte-identical with and without it.
  EngineResult run(const ScenarioSpec& spec, std::uint64_t seed,
                   int scale = 1, const obs::RunHooks* obs = nullptr);

 private:
  runtime::Machine& m_;
  squeue::ChannelFactory& f_;
};

/// System configuration for running `spec` on `backend`. Mostly
/// config_for(backend), but scenarios whose threads consume one channel
/// while producing another (pipeline relays, closed-loop acks) get a
/// per-SQI prodBuf quota on the VL backend: with the buffer fully shared,
/// upstream stages can occupy every slot and deadlock the relays, the § V
/// starvation hazard CAF answers with credit partitioning. The quota keeps
/// total per-SQI demand below capacity so chains always drain.
sim::SystemConfig machine_config_for(const ScenarioSpec& spec,
                                     squeue::Backend backend);

/// Summarize `spec`'s channel graph into the quota-sizing inputs
/// (runtime::size_quotas). `cfg` must already carry the provisioned device
/// count (machine_config_for computes it before calling this); the QoS
/// supervisor reuses the same demand to re-carve quotas online, so static
/// and dynamic sizing can never drift apart.
runtime::ChannelDemand channel_demand_for(const ScenarioSpec& spec,
                                          squeue::Backend backend,
                                          const sim::SystemConfig& cfg);

/// Build a fresh machine + factory for `backend` (using machine_config_for,
/// so TenantSpec QoS classes map onto the hardware knobs when spec.qos is
/// set) and run `spec` at `scale`. The spec-level entry point for QoS
/// on/off experiments. Throws std::invalid_argument for an invalid spec.
EngineResult run_spec(const ScenarioSpec& spec, squeue::Backend backend,
                      std::uint64_t seed, int scale = 1,
                      const obs::RunHooks* obs = nullptr);

/// Convenience: run_spec over the named preset. Throws
/// std::invalid_argument for an unknown scenario or invalid spec.
EngineResult run_scenario(const std::string& name, squeue::Backend backend,
                          std::uint64_t seed, int scale = 1,
                          const obs::RunHooks* obs = nullptr);

/// Copy of `spec` with every tenant's injection batch overridden — the
/// bench CLIs' `--batch` knob (TenantSpec::batch).
ScenarioSpec with_batch(const ScenarioSpec& spec, std::uint32_t batch);

}  // namespace vl::traffic
