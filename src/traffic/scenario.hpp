#pragma once
// Declarative traffic scenarios.
//
// A ScenarioSpec describes *what* load to offer — topology, tenants, their
// arrival processes, message sizes, loop mode — independent of *which*
// queue backend carries it. The engine (traffic/engine.hpp) instantiates a
// spec over any squeue::ChannelFactory, so one scenario definition sweeps
// all five paper backends.
//
// A small named-preset registry captures the scenarios the bench CLI and
// tests exercise; new presets are one table entry.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "fault/spec.hpp"
#include "replay/lifecycle.hpp"
#include "traffic/arrival.hpp"

namespace vl::replay {
struct Trace;
}

namespace vl::traffic {

/// How producers, channels, and consumers are wired.
enum class Topology {
  kFanIn,     ///< All producers share one channel; `consumers` drain it.
  kFanOut,    ///< `consumers` channels, one consumer each; every producer
              ///< sprays across all of them.
  kMesh,      ///< Like kFanOut but producers pick the target channel
              ///< pseudo-randomly per message (M:N any-to-any).
  kPipeline,  ///< `stages` chained channels; stage workers relay messages
              ///< so latency is end-to-end across the chain.
};

const char* to_string(Topology t);

/// One tenant's contribution to the offered load.
struct TenantSpec {
  std::string name = "t0";
  double share = 1.0;        ///< Fraction of `producers` this tenant gets
                             ///< (largest-remainder split, min 1).
  ArrivalSpec arrival;       ///< Inter-arrival process per producer.
  std::uint8_t msg_words = 1;           ///< Payload words (1..7).
  std::uint64_t messages_per_producer = 200;  ///< At scale 1.
  /// Producer-side injection batch: messages are accumulated (each still
  /// pacing on the arrival process and stamped at generation time) and
  /// injected with one batched Channel::send_many — the backend amortizes
  /// its per-message device cost across the run (VL: one port/quota
  /// acquisition per run of lines; CAF: one multi-frame credit grant;
  /// ZMQ/BLFQ: one lock hold / index CAS per ring run). 1 = per-message
  /// injection (the classic paper shape). Closed-loop runs cap the
  /// effective batch at the window.
  std::uint32_t batch = 1;
  /// Producer-side load shedding: generated messages are dropped (counted,
  /// not sent) while the target channel's depth() is at or above this
  /// bound. 0 disables shedding — every generated message is sent.
  std::uint64_t drop_depth = 0;
  /// Service class. With ScenarioSpec::qos set, the class maps onto the
  /// hardware QoS knobs (CAF per-class credit caps, VLRD per-class prodBuf
  /// quotas) so latency-class tenants keep enqueue headroom while bulk
  /// absorbs the back-pressure; without it the class is still recorded in
  /// the metrics but not enforced anywhere.
  QosClass qos = QosClass::kStandard;
  /// SLO target: the p99 end-to-end latency budget, in ticks (0 = no SLO).
  /// Reported as the percentage of delivered messages within the budget.
  Tick slo_p99 = 0;
};

/// Parameters for sharded runs (traffic/sharded_engine.hpp): a logical
/// tenant population routed over a consistent-hash ring onto S shards,
/// each a full Machine, synchronised by conservative lookahead. The
/// classic single-machine engine ignores this block entirely — a preset
/// carrying it still runs (small) on one machine, which is what keeps
/// sharded presets inside the every-preset regression tests.
struct ShardingSpec {
  std::uint64_t population = 0;      ///< Tenant ids on the hash ring.
  std::uint64_t messages_total = 0;  ///< Global message budget at scale 1.
  Tick link_latency = 512;           ///< Inter-shard hop; also the lookahead.
  std::uint32_t link_window = 4096;  ///< Max in-flight posts per link/epoch.
  bool rebalance = false;            ///< Overload-triggered tenant moves.
};

struct ScenarioSpec {
  std::string name;
  std::string summary;       ///< One-line description for --list.
  Topology topology = Topology::kFanIn;
  int producers = 4;         ///< Total producer threads across tenants.
  int consumers = 1;         ///< Consumers (kFanIn) or channels (kFanOut /
                             ///< kMesh, one consumer each).
  int stages = 1;            ///< kPipeline chain length (>= 2 meaningful).
  std::size_t capacity_hint = 0;   ///< Ring sizing for software backends.
  bool closed_loop = false;  ///< Producers cap in-flight messages…
  int window = 4;            ///< …at this many, via per-producer ack
                             ///< channels from the final consumers.
  Tick produce_compute = 0;  ///< Core cycles of work before each send.
  Tick consume_compute = 0;  ///< Core cycles of work per delivery.
  Tick depth_sample_period = 500;  ///< Queue-depth sampling cadence.
  /// Enforce tenant QoS classes in hardware: weighted per-class credit
  /// caps on the CAF device and weighted per-class prodBuf quotas on the
  /// VLRD (see traffic::machine_config_for). Software backends (BLFQ/ZMQ)
  /// have no enforcement knob and ignore it.
  bool qos = false;
  /// Run the closed-loop QoS supervisor (runtime/qos_supervisor.hpp): an
  /// epoch-boundary AIMD controller that re-weights the per-class quotas
  /// from the timeline's latency-class SLO cut. Only meaningful with
  /// `qos` on a hardware backend; CLIs override it with --no-supervisor.
  bool supervisor = false;
  /// Deterministic fault schedule (fault/spec.hpp); empty = no faults.
  /// CLIs override it with --faults.
  fault::FaultSpec faults;
  /// Deterministic lifecycle schedule (replay/lifecycle.hpp): tenant
  /// join/leave churn and SQI re-registration events. Empty = static run.
  /// Classic engine only; run_sharded rejects specs that carry one. CLIs
  /// override it with --churn / --reconfig.
  replay::LifecycleSpec lifecycle;
  /// Replay source (replay/trace.hpp): when set, every producer ignores
  /// its tenant's arrival/size/count parameters and re-offers the trace's
  /// recorded per-producer (tick, class, size, destination) stream
  /// verbatim. The trace must match the spec's shape (producer count,
  /// sharded flag); the engine validates and throws otherwise. Not owned.
  const replay::Trace* replay = nullptr;
  /// Sharded-run parameters; population == 0 means the preset was not
  /// designed for sharding (run_sharded rejects it).
  ShardingSpec sharding;
  std::vector<TenantSpec> tenants;
};

/// Empty string when the spec is runnable; otherwise a description of the
/// first problem found.
std::string validate(const ScenarioSpec& s);

/// Copy of `s` with per-producer message counts multiplied by `scale`.
ScenarioSpec scaled(const ScenarioSpec& s, int scale);

/// Deterministic producer split across tenants (largest remainder, each
/// tenant at least one producer). Sum equals s.producers unless more
/// tenants than producers exist, in which case each tenant still gets one.
std::vector<int> tenant_producer_split(const ScenarioSpec& s);

// --- preset registry ---------------------------------------------------------

/// All registered preset names, in registry order.
std::vector<std::string> scenario_names();

/// Look up a preset; nullptr when unknown.
const ScenarioSpec* find_scenario(const std::string& name);

}  // namespace vl::traffic
