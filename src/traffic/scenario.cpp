#include "traffic/scenario.hpp"

#include <algorithm>
#include <cmath>

namespace vl::traffic {

const char* to_string(Topology t) {
  switch (t) {
    case Topology::kFanIn: return "fan-in";
    case Topology::kFanOut: return "fan-out";
    case Topology::kMesh: return "mesh";
    case Topology::kPipeline: return "pipeline";
  }
  return "?";
}

std::string validate(const ScenarioSpec& s) {
  if (s.name.empty()) return "scenario name is empty";
  if (s.producers < 1) return "producers must be >= 1";
  if (s.consumers < 1) return "consumers must be >= 1";
  if (s.tenants.empty()) return "scenario has no tenants";
  if (s.producers < static_cast<int>(s.tenants.size()))
    return "fewer producers than tenants (every tenant needs one)";
  if (s.topology == Topology::kPipeline) {
    if (s.stages < 2) return "pipeline needs stages >= 2";
  } else if (s.stages != 1) {
    return "stages != 1 only makes sense for the pipeline topology";
  }
  if (s.closed_loop && s.window < 1) return "closed loop needs window >= 1";
  if (s.replay && s.closed_loop)
    return "replay drives recorded send ticks; closed-loop pacing would "
           "fight them — record an open-loop scenario instead";
  for (const auto& e : s.lifecycle.events) {
    if (e.kind == replay::LifecycleEvent::Kind::kReconfig) continue;
    bool known = false;
    for (const auto& t : s.tenants)
      if (t.name == e.tenant) known = true;
    if (!known)
      return "lifecycle event names unknown tenant '" + e.tenant + "'";
  }
  for (const auto& t : s.tenants) {
    if (t.name.empty()) return "tenant name is empty";
    if (t.share <= 0.0) return "tenant '" + t.name + "': share must be > 0";
    if (t.msg_words < 1 || t.msg_words > 7)
      return "tenant '" + t.name + "': msg_words must be in 1..7";
    if (t.batch < 1 || t.batch > 64)
      return "tenant '" + t.name + "': batch must be in 1..64";
    if (t.messages_per_producer < 1)
      return "tenant '" + t.name + "': messages_per_producer must be >= 1";
    if (t.arrival.mean_gap < 1.0)
      return "tenant '" + t.name + "': mean_gap must be >= 1 tick";
    if (t.arrival.kind == ArrivalKind::kBursty &&
        (t.arrival.idle_gap < 1.0 || t.arrival.burst_dwell < 1.0 ||
         t.arrival.idle_dwell < 1.0))
      return "tenant '" + t.name + "': bursty dwell/idle params must be >= 1";
    if (t.arrival.kind == ArrivalKind::kDiurnal &&
        (t.arrival.cycle < 1.0 || t.arrival.amplitude < 0.0 ||
         t.arrival.amplitude >= 1.0))
      return "tenant '" + t.name + "': diurnal needs cycle >= 1, amplitude in [0,1)";
  }
  return {};
}

ScenarioSpec scaled(const ScenarioSpec& s, int scale) {
  ScenarioSpec out = s;
  if (scale > 1)
    for (auto& t : out.tenants)
      t.messages_per_producer *= static_cast<std::uint64_t>(scale);
  return out;
}

std::vector<int> tenant_producer_split(const ScenarioSpec& s) {
  const int nt = static_cast<int>(s.tenants.size());
  std::vector<int> alloc(nt, 1);
  int extra = s.producers - nt;
  if (extra <= 0) return alloc;

  double total_share = 0.0;
  for (const auto& t : s.tenants) total_share += t.share;
  std::vector<std::pair<double, int>> frac(nt);  // (fractional part, index)
  int assigned = 0;
  for (int i = 0; i < nt; ++i) {
    const double want = extra * s.tenants[i].share / total_share;
    const int whole = static_cast<int>(want);
    alloc[i] += whole;
    assigned += whole;
    frac[i] = {want - whole, i};
  }
  // Largest remainder, ties broken toward the lower tenant index.
  std::stable_sort(frac.begin(), frac.end(), [](const auto& a, const auto& b) {
    return a.first > b.first;
  });
  for (int k = 0; k < extra - assigned; ++k) ++alloc[frac[k].second];
  return alloc;
}

// --- preset registry ---------------------------------------------------------

namespace {

std::vector<ScenarioSpec> build_registry() {
  std::vector<ScenarioSpec> reg;

  {
    // The paper's incast kernel generalized: a bursty tenant and a steady
    // tenant share an 8:1 channel into one bottleneck consumer.
    ScenarioSpec s;
    s.name = "incast-burst";
    s.summary = "8:1 fan-in, bursty + steady tenants, bottleneck consumer";
    s.topology = Topology::kFanIn;
    s.producers = 8;
    s.consumers = 1;
    s.capacity_hint = 4096;
    s.consume_compute = 40;
    TenantSpec burst;
    burst.name = "burst";
    burst.share = 0.5;
    burst.arrival = ArrivalSpec::bursty(/*burst_gap=*/20, /*idle_gap=*/2000,
                                        /*burst_dwell=*/1500,
                                        /*idle_dwell=*/3000);
    burst.msg_words = 4;
    burst.messages_per_producer = 150;
    TenantSpec steady;
    steady.name = "steady";
    steady.share = 0.5;
    steady.arrival = ArrivalSpec::poisson(150);
    steady.msg_words = 2;
    steady.messages_per_producer = 150;
    s.tenants = {burst, steady};
    reg.push_back(std::move(s));
  }

  {
    // Day/night ramp sprayed across four consumer channels.
    ScenarioSpec s;
    s.name = "diurnal-fanout";
    s.summary = "2 producers spray 4 channels under a sinusoidal load ramp";
    s.topology = Topology::kFanOut;
    s.producers = 2;
    s.consumers = 4;
    TenantSpec web;
    web.name = "web";
    web.arrival = ArrivalSpec::diurnal(/*gap=*/60, /*amplitude=*/0.9,
                                       /*cycle=*/20000);
    web.msg_words = 3;
    web.messages_per_producer = 250;
    s.tenants = {web};
    reg.push_back(std::move(s));
  }

  {
    // Three service classes with different rates and payload sizes over an
    // any-to-any mesh.
    ScenarioSpec s;
    s.name = "multitenant-mesh";
    s.summary = "6x3 mesh, gold/silver/bronze tenants at staggered rates";
    s.topology = Topology::kMesh;
    s.producers = 6;
    s.consumers = 3;
    s.consume_compute = 15;
    TenantSpec gold, silver, bronze;
    gold.name = "gold";
    gold.share = 0.5;
    gold.arrival = ArrivalSpec::poisson(80);
    gold.msg_words = 2;
    gold.messages_per_producer = 120;
    silver.name = "silver";
    silver.share = 0.33;
    silver.arrival = ArrivalSpec::poisson(160);
    silver.msg_words = 4;
    silver.messages_per_producer = 120;
    bronze.name = "bronze";
    bronze.share = 0.17;
    bronze.arrival = ArrivalSpec::poisson(320);
    bronze.msg_words = 7;
    bronze.messages_per_producer = 120;
    s.tenants = {gold, silver, bronze};
    reg.push_back(std::move(s));
  }

  {
    // Four chained stages; latency is measured end-to-end across the chain.
    ScenarioSpec s;
    s.name = "steady-pipeline";
    s.summary = "2 producers through a 4-stage relay pipeline";
    s.topology = Topology::kPipeline;
    s.producers = 2;
    s.consumers = 1;
    s.stages = 4;
    s.produce_compute = 5;
    s.consume_compute = 10;
    TenantSpec feed;
    feed.name = "feed";
    feed.arrival = ArrivalSpec::deterministic(120);
    feed.msg_words = 5;
    feed.messages_per_producer = 150;
    s.tenants = {feed};
    reg.push_back(std::move(s));
  }

  {
    // Closed loop: each producer keeps at most `window` requests in flight,
    // paced by acks from the consumer — a latency-bound RPC client pool.
    ScenarioSpec s;
    s.name = "closed-loop-incast";
    s.summary = "4:1 fan-in, window-4 closed loop with consumer acks";
    s.topology = Topology::kFanIn;
    s.producers = 4;
    s.consumers = 1;
    s.closed_loop = true;
    s.window = 4;
    s.consume_compute = 30;
    TenantSpec rpc;
    rpc.name = "rpc";
    rpc.arrival = ArrivalSpec::poisson(50);
    rpc.messages_per_producer = 150;
    s.tenants = {rpc};
    reg.push_back(std::move(s));
  }

  {
    // Overload with producer-side shedding: generated load far exceeds the
    // consumer's service rate, so producers drop once depth() crosses the
    // bound — exercises Channel::depth() and the conservation accounting.
    ScenarioSpec s;
    s.name = "lossy-incast";
    s.summary = "8:1 overload with depth-triggered producer-side drops";
    s.topology = Topology::kFanIn;
    s.producers = 8;
    s.consumers = 1;
    s.capacity_hint = 4096;
    s.consume_compute = 120;
    TenantSpec flood;
    flood.name = "flood";
    flood.arrival = ArrivalSpec::bursty(/*burst_gap=*/10, /*idle_gap=*/500,
                                        /*burst_dwell=*/4000,
                                        /*idle_dwell=*/1000);
    flood.msg_words = 2;
    flood.messages_per_producer = 120;
    flood.drop_depth = 48;
    s.tenants = {flood};
    reg.push_back(std::move(s));
  }

  {
    // QoS flavour of the incast kernel: a latency-class RPC tenant shares
    // the 8:1 bottleneck with a standard tenant and a bulk flood. With
    // s.qos set, the hardware knobs (CAF class credit caps, VLRD class
    // quotas) bound how much of the queue the flood may occupy, so the
    // latency tenant's messages never sit behind a full buffer of bulk.
    ScenarioSpec s;
    s.name = "qos-incast";
    s.summary = "8:1 fan-in, latency/standard/bulk classes, QoS enforced";
    s.topology = Topology::kFanIn;
    s.producers = 8;
    s.consumers = 1;
    s.capacity_hint = 4096;
    s.consume_compute = 40;
    s.qos = true;
    TenantSpec rt;
    rt.name = "rt";
    rt.qos = QosClass::kLatency;
    rt.share = 0.25;
    rt.arrival = ArrivalSpec::poisson(400);
    rt.msg_words = 2;
    rt.messages_per_producer = 150;
    // Attainable with QoS enforced on both hardware backends (p99 ~1.4k on
    // CAF, ~9k on VL across seeds) and violated on VL without it (~10.5k).
    rt.slo_p99 = 10000;
    TenantSpec web;
    web.name = "web";
    web.qos = QosClass::kStandard;
    web.share = 0.25;
    web.arrival = ArrivalSpec::poisson(250);
    web.msg_words = 2;
    web.messages_per_producer = 150;
    web.slo_p99 = 20000;
    TenantSpec bulk;
    bulk.name = "bulk";
    bulk.qos = QosClass::kBulk;
    bulk.share = 0.5;
    bulk.arrival = ArrivalSpec::bursty(/*burst_gap=*/15, /*idle_gap=*/1500,
                                       /*burst_dwell=*/2500,
                                       /*idle_dwell=*/1500);
    bulk.msg_words = 4;
    bulk.messages_per_producer = 150;
    s.tenants = {rt, web, bulk};
    reg.push_back(std::move(s));
  }

  {
    // Adversarial flavour of qos-incast: the bulk tenant turns hostile —
    // near-saturation bursts in large batched frames, tuned so the static
    // weight carve alone cannot hold the latency tenant's SLO. The preset
    // ships with the closed-loop supervisor on; the PR-8 bench gate pins
    // the supervisor's gain by re-running it with --no-supervisor.
    ScenarioSpec s;
    s.name = "qos-adversarial-bulk";
    s.summary = "8:1 fan-in, hostile batched bulk flood vs latency SLO, "
                "closed-loop supervisor";
    s.topology = Topology::kFanIn;
    s.producers = 8;
    s.consumers = 1;
    s.capacity_hint = 4096;
    s.consume_compute = 90;
    s.qos = true;
    s.supervisor = true;
    TenantSpec rt;
    rt.name = "rt";
    rt.qos = QosClass::kLatency;
    rt.share = 0.25;
    rt.arrival = ArrivalSpec::poisson(400);
    rt.msg_words = 2;
    rt.messages_per_producer = 500;
    rt.slo_p99 = 4000;
    TenantSpec web;
    web.name = "web";
    web.qos = QosClass::kStandard;
    web.share = 0.25;
    web.arrival = ArrivalSpec::poisson(250);
    web.msg_words = 2;
    web.messages_per_producer = 600;
    web.slo_p99 = 20000;
    TenantSpec bulk;
    bulk.name = "bulk";
    bulk.qos = QosClass::kBulk;
    bulk.share = 0.5;
    bulk.arrival = ArrivalSpec::bursty(/*burst_gap=*/5, /*idle_gap=*/400,
                                       /*burst_dwell=*/6000,
                                       /*idle_dwell=*/800);
    bulk.msg_words = 7;
    bulk.batch = 16;
    bulk.messages_per_producer = 250;
    s.tenants = {rt, web, bulk};
    reg.push_back(std::move(s));
  }

  {
    // Class mix under a day/night ramp over an any-to-any mesh: the
    // latency-class API tenant rides the diurnal cycle, a bulk backfill
    // tenant grinds continuously, and QoS keeps the backfill from crowding
    // the API's peak out of the queues.
    ScenarioSpec s;
    s.name = "qos-diurnal-mix";
    s.summary = "6x3 mesh, diurnal latency API over a steady bulk backfill";
    s.topology = Topology::kMesh;
    s.producers = 6;
    s.consumers = 3;
    s.consume_compute = 25;
    s.qos = true;
    TenantSpec api;
    api.name = "api";
    api.qos = QosClass::kLatency;
    api.share = 0.34;
    api.arrival = ArrivalSpec::diurnal(/*gap=*/150, /*amplitude=*/0.8,
                                       /*cycle=*/20000);
    api.msg_words = 2;
    api.messages_per_producer = 150;
    api.slo_p99 = 8000;
    TenantSpec batch;
    batch.name = "batch";
    batch.qos = QosClass::kBulk;
    batch.share = 0.66;
    batch.arrival = ArrivalSpec::poisson(60);
    batch.msg_words = 6;
    batch.messages_per_producer = 200;
    s.tenants = {api, batch};
    reg.push_back(std::move(s));
  }

  {
    // The sharding workhorse (ROADMAP item 2): three service classes under
    // a day/night ramp, fanned out one channel per consumer, designed to
    // run across a shard mesh. The classic engine runs it too (small —
    // messages_per_producer below — so the every-preset regression stays
    // cheap); run_sharded ignores messages_per_producer and spreads
    // sharding.messages_total over the producers against a
    // sharding.population-sized tenant ring instead.
    ScenarioSpec s;
    s.name = "shard-diurnal";
    s.summary = "32x32 fan-out, 3-class diurnal mix over a 100k-tenant ring";
    s.topology = Topology::kFanOut;
    s.producers = 32;
    s.consumers = 32;
    s.capacity_hint = 4096;
    s.consume_compute = 20;
    s.qos = true;
    s.sharding.population = 100000;
    s.sharding.messages_total = 32768;
    s.sharding.link_latency = 512;
    s.sharding.link_window = 4096;
    TenantSpec web;
    web.name = "web";
    web.qos = QosClass::kLatency;
    web.share = 0.4;
    web.arrival = ArrivalSpec::diurnal(/*gap=*/40, /*amplitude=*/0.8,
                                       /*cycle=*/40000);
    web.msg_words = 2;
    web.messages_per_producer = 20;
    web.batch = 8;
    web.slo_p99 = 20000;
    TenantSpec api;
    api.name = "api";
    api.qos = QosClass::kStandard;
    api.share = 0.3;
    api.arrival = ArrivalSpec::poisson(60);
    api.msg_words = 3;
    api.messages_per_producer = 20;
    api.batch = 8;
    TenantSpec bulk;
    bulk.name = "bulk";
    bulk.qos = QosClass::kBulk;
    bulk.share = 0.3;
    bulk.arrival = ArrivalSpec::bursty(/*burst_gap=*/20, /*idle_gap=*/2000,
                                       /*burst_dwell=*/3000,
                                       /*idle_dwell=*/2000);
    bulk.msg_words = 5;
    bulk.messages_per_producer = 20;
    bulk.batch = 8;
    s.tenants = {web, api, bulk};
    reg.push_back(std::move(s));
  }

  return reg;
}

const std::vector<ScenarioSpec>& registry() {
  static const std::vector<ScenarioSpec> reg = build_registry();
  return reg;
}

}  // namespace

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  for (const auto& s : registry()) names.push_back(s.name);
  return names;
}

const ScenarioSpec* find_scenario(const std::string& name) {
  for (const auto& s : registry()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace vl::traffic
