#pragma once
// Traffic-engine metrics: HDR-style log-bucketed latency histograms with
// percentile queries, per-tenant counters, and queue-depth summaries.
//
// common/stats.hpp's Samples stores every observation for exact
// percentiles, which is fine for bounded Table-II kernels but not for
// scenario runs that push millions of messages; and its linear Histogram
// needs the value range up front. LogHistogram covers the full uint64
// latency range in fixed memory: values < 64 land in exact unit buckets,
// larger values in 32 log-linear sub-buckets per power of two, bounding
// the relative quantile error at 1/32 (~3.1%).

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace vl::traffic {

/// Log-linear histogram over [0, 2^63) with bounded relative error.
class LogHistogram {
 public:
  static constexpr std::uint32_t kSubBits = 5;             ///< 32 sub-buckets.
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;
  static constexpr std::uint32_t kLinearMax = 2 * kSubBuckets;  ///< exact < 64

  LogHistogram();

  void record(std::uint64_t v, std::uint64_t count = 1);
  void merge(const LogHistogram& other);

  std::uint64_t count() const { return total_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t min() const { return total_ ? min_ : 0; }
  double mean() const {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }

  /// Nearest-rank percentile, p in [0, 100]; returns the upper edge of the
  /// bucket holding the rank (clamped to the recorded max). 0 when empty.
  std::uint64_t percentile(double p) const;

  /// Index of the bucket a value lands in (exposed for tests).
  static std::uint32_t bucket_index(std::uint64_t v);
  /// Largest value mapping to bucket `i`.
  static std::uint64_t bucket_upper(std::uint32_t i);

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  double sum_ = 0.0;
};

/// Counters + latency distribution for one tenant's traffic.
struct TenantMetrics {
  std::string tenant;
  std::uint64_t generated = 0;  ///< Messages the arrival process produced.
  std::uint64_t sent = 0;       ///< Accepted by a channel send.
  std::uint64_t delivered = 0;  ///< Received at a final-stage consumer.
  std::uint64_t dropped = 0;    ///< Shed at the producer (queue over limit).
  /// Open-loop overload signal: total ticks this tenant's producers spent
  /// inside blocking send() calls — time-in-backpressure. Under light load
  /// this is just per-message transfer cost; when the offered rate exceeds
  /// service it grows with every parked/blocked send.
  std::uint64_t blocked_ticks = 0;
  LogHistogram latency;         ///< End-to-end latency, ticks.

  void merge(const TenantMetrics& o);
};

/// Periodic queue-depth observations for one channel.
struct DepthSeries {
  std::string channel;
  Summary depth;                ///< Streaming mean/max over samples.
  std::uint64_t samples = 0;
};

/// Everything one scenario run measured.
struct ScenarioMetrics {
  std::vector<TenantMetrics> tenants;
  std::vector<DepthSeries> depths;
  Tick ticks = 0;               ///< Simulated duration of the run.
  double ns = 0.0;

  std::uint64_t total_generated() const;
  std::uint64_t total_delivered() const;
  std::uint64_t total_dropped() const;

  /// Per-tenant CSV rows (stable column set, deterministic formatting);
  /// `prefix` columns (scenario, backend, seed, scale) are prepended by
  /// the engine.
  static std::vector<std::string> csv_header();
  std::vector<std::vector<std::string>> csv_rows() const;

  /// Aligned-text rendering for terminal output.
  std::string table() const;
};

}  // namespace vl::traffic
