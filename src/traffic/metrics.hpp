#pragma once
// Traffic-engine metrics: HDR-style log-bucketed latency histograms with
// percentile queries, per-tenant counters, and queue-depth summaries.
//
// common/stats.hpp's Samples stores every observation for exact
// percentiles, which is fine for bounded Table-II kernels but not for
// scenario runs that push millions of messages; and its linear Histogram
// needs the value range up front. LogHistogram covers the full uint64
// latency range in fixed memory: values < 64 land in exact unit buckets,
// larger values in 32 log-linear sub-buckets per power of two, bounding
// the relative quantile error at 1/32 (~3.1%).

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace vl::traffic {

/// Log-linear histogram over [0, 2^63) with bounded relative error.
class LogHistogram {
 public:
  static constexpr std::uint32_t kSubBits = 5;             ///< 32 sub-buckets.
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBits;
  static constexpr std::uint32_t kLinearMax = 2 * kSubBuckets;  ///< exact < 64

  LogHistogram();

  void record(std::uint64_t v, std::uint64_t count = 1);
  void merge(const LogHistogram& other);

  std::uint64_t count() const { return total_; }
  std::uint64_t max() const { return max_; }
  std::uint64_t min() const { return total_ ? min_ : 0; }
  double mean() const {
    return total_ ? sum_ / static_cast<double>(total_) : 0.0;
  }

  /// Nearest-rank percentile, p in [0, 100]; returns the upper edge of the
  /// bucket holding the rank (clamped to the recorded max). 0 when empty.
  std::uint64_t percentile(double p) const;

  /// Observations <= v, at bucket granularity (values sharing v's bucket
  /// count as within — same ~3.1% relative error as percentile()). The
  /// basis of SLO attainment: count_le(budget) / count().
  std::uint64_t count_le(std::uint64_t v) const;

  /// Index of the bucket a value lands in (exposed for tests).
  static std::uint32_t bucket_index(std::uint64_t v);
  /// Largest value mapping to bucket `i`.
  static std::uint64_t bucket_upper(std::uint32_t i);

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = ~std::uint64_t{0};
  double sum_ = 0.0;
};

/// Counters + latency distribution for one tenant's traffic.
struct TenantMetrics {
  std::string tenant;
  QosClass qos = QosClass::kStandard;  ///< Service class (TenantSpec::qos).
  Tick slo_p99 = 0;             ///< p99 latency budget, ticks (0 = no SLO).
  std::uint64_t generated = 0;  ///< Messages the arrival process produced.
  std::uint64_t sent = 0;       ///< Accepted by a channel send.
  std::uint64_t delivered = 0;  ///< Received at a final-stage consumer.
  std::uint64_t dropped = 0;    ///< Shed at the producer (queue over limit).
  /// Open-loop overload signal: total ticks this tenant's producers spent
  /// inside blocking send() calls — time-in-backpressure. Under light load
  /// this is just per-message transfer cost; when the offered rate exceeds
  /// service it grows with every parked/blocked send.
  std::uint64_t blocked_ticks = 0;
  LogHistogram latency;         ///< End-to-end latency, ticks.

  /// Delivered messages within this tenant's SLO budget (0 when no SLO).
  std::uint64_t slo_within() const {
    return slo_p99 ? latency.count_le(slo_p99) : 0;
  }
  /// % of delivered messages within the budget; 100 with no SLO set or
  /// nothing delivered (an SLO over zero traffic is vacuously met).
  double slo_attained_pct() const;

  /// Accumulates the counters and histogram; qos and slo_p99 are left
  /// untouched (an aggregate of mixed classes has no single class/budget —
  /// callers label aggregates themselves).
  void merge(const TenantMetrics& o);
};

/// One service class's aggregate across the tenants that belong to it.
/// SLO attainment is accumulated per member tenant against *its own*
/// budget before merging, so classes mixing different budgets still report
/// a meaningful percentage.
struct ClassAgg {
  QosClass cls = QosClass::kStandard;
  TenantMetrics agg;                 ///< tenant field = class name
  std::uint64_t slo_delivered = 0;   ///< delivered by SLO-carrying tenants
  std::uint64_t slo_within = 0;      ///< ...of which within budget
  double slo_attained_pct() const;   ///< 100 when no member has an SLO
};

/// Periodic queue-depth observations for one channel.
struct DepthSeries {
  std::string channel;
  Summary depth;                ///< Streaming mean/max over samples.
  std::uint64_t samples = 0;
};

/// Everything one scenario run measured.
struct ScenarioMetrics {
  std::vector<TenantMetrics> tenants;
  std::vector<DepthSeries> depths;
  Tick ticks = 0;               ///< Simulated duration of the run.
  double ns = 0.0;

  std::uint64_t total_generated() const;
  std::uint64_t total_delivered() const;
  std::uint64_t total_dropped() const;

  /// Fold another run's metrics in — the per-shard aggregation the sharded
  /// engine uses. Tenants are matched by name (histograms merged, counters
  /// summed; unmatched tenants appended), depth series are appended, and
  /// ticks/ns take the max: shards run the same virtual clock, so the
  /// merged duration is the latest finisher, not the sum.
  void merge(const ScenarioMetrics& o);

  /// Per-class aggregation, ascending class order, classes present only.
  std::vector<ClassAgg> by_class() const;
  /// Distinct service classes among the tenants.
  std::size_t distinct_classes() const;

  /// Per-tenant CSV rows (stable column set, deterministic formatting);
  /// `prefix` columns (scenario, backend, seed, scale) are prepended by
  /// the engine.
  static std::vector<std::string> csv_header();
  std::vector<std::vector<std::string>> csv_rows() const;

  /// Aligned-text rendering for terminal output.
  std::string table() const;

  /// Machine-readable dump: tenants, per-class aggregates, totals, and
  /// run duration — the scenario_runner --metrics-json payload, so tools
  /// stop parsing the human table.
  std::string json() const;
};

}  // namespace vl::traffic
