#include "traffic/shard_router.hpp"

#include <algorithm>
#include <cassert>

namespace vl::traffic {

std::uint64_t ShardRouter::hash(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

ShardRouter::ShardRouter(int shards) : shards_(shards) {
  assert(shards_ >= 1);
  rebuild_ring();
}

void ShardRouter::rebuild_ring() {
  ring_.clear();
  ring_.reserve(static_cast<std::size_t>(shards_) * kVnodes);
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(shards_); ++s)
    for (std::uint32_t r = 0; r < kVnodes; ++r)
      ring_.emplace_back(hash((std::uint64_t{s} << 32) | r), s);
  std::sort(ring_.begin(), ring_.end());
}

int ShardRouter::shard_for(std::uint64_t tenant) const {
  if (!overrides_.empty()) {
    const auto it = overrides_.find(tenant);
    if (it != overrides_.end()) return static_cast<int>(it->second);
  }
  const std::uint64_t point = hash(tenant);
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), point,
      [](std::uint64_t p, const auto& node) { return p < node.first; });
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return static_cast<int>(it->second);
}

void ShardRouter::add_shard() {
  ++shards_;
  rebuild_ring();  // existing points are unchanged; only new arcs move
}

std::vector<std::uint64_t> ShardRouter::census(
    std::uint64_t population) const {
  std::vector<std::uint64_t> n(static_cast<std::size_t>(shards_), 0);
  for (std::uint64_t t = 0; t < population; ++t)
    ++n[static_cast<std::size_t>(shard_for(t))];
  return n;
}

std::size_t ShardRouter::rebalance(const std::vector<std::uint64_t>& load,
                                   std::uint64_t population, double ratio,
                                   std::size_t max_moves) {
  assert(load.size() == static_cast<std::size_t>(shards_));
  std::uint64_t total = 0;
  for (const std::uint64_t l : load) total += l;
  if (total == 0 || shards_ < 2) return 0;
  const double mean = static_cast<double>(total) / shards_;

  // Hottest / coldest with lowest-id tie-break: deterministic for the
  // simulations that call this from a barrier hook.
  std::size_t hot = 0, cold = 0;
  for (std::size_t s = 1; s < load.size(); ++s) {
    if (load[s] > load[hot]) hot = s;
    if (load[s] < load[cold]) cold = s;
  }
  if (static_cast<double>(load[hot]) <= ratio * mean || hot == cold) return 0;

  // Move tenants in proportion to the hot shard's excess over the mean,
  // assuming load tracks population on that shard.
  const auto counts = census(population);
  const double excess_frac =
      (static_cast<double>(load[hot]) - mean) / static_cast<double>(load[hot]);
  std::size_t target = static_cast<std::size_t>(
      static_cast<double>(counts[hot]) * excess_frac);
  target = std::min(target, max_moves);
  if (target == 0) return 0;

  std::size_t moved = 0;
  for (std::uint64_t t = 0; t < population && moved < target; ++t) {
    if (shard_for(t) != static_cast<int>(hot)) continue;
    overrides_[t] = static_cast<std::uint32_t>(cold);
    ++moved;
  }
  return moved;
}

}  // namespace vl::traffic
