#pragma once
// Consistent-hash tenant -> shard routing.
//
// The paper's § III-C2 observation — address bits J:N+1 partition VQs over
// multiple VLRDs with zero shared state — is a sharding primitive; this
// router supplies the tenant-side half of it. Each shard owns kVnodes
// points on a 64-bit hash ring; a tenant maps to the owner of the first
// ring point clockwise from its own hash. Growing the mesh from S to S+1
// shards therefore reassigns only the tenants whose arcs the new shard's
// vnodes capture — in expectation 1/(S+1), and the stability test pins
// <= 2/S — instead of rehashing everyone the way `tenant % S` would.
//
// Routing is pure arithmetic (no per-tenant table), so a 1M-tenant
// population costs zero resident state. The only stored state is the
// override map written by rebalance(): when one shard runs persistently
// hotter than the mesh average, a bounded set of its tenants is pinned to
// the coldest shard. Overrides are an ordinary std::map keyed by tenant id,
// so iteration — and therefore every simulation that consults the router —
// stays deterministic.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace vl::traffic {

class ShardRouter {
 public:
  static constexpr int kVnodes = 64;  ///< ring points per shard

  explicit ShardRouter(int shards);

  int shards() const { return shards_; }

  /// Owning shard for a tenant id (override map first, then the ring).
  int shard_for(std::uint64_t tenant) const;

  /// Grow the mesh by one shard (vnodes inserted, overrides kept).
  void add_shard();

  /// Tenants per shard over ids [0, population) — census for tests and for
  /// rebalance()'s move sizing. O(population) ring walks.
  std::vector<std::uint64_t> census(std::uint64_t population) const;

  /// Overload-triggered rebalance: when the hottest shard's load exceeds
  /// `ratio` times the mesh mean, pin enough of its tenants (lowest ids
  /// first, at most `max_moves`) onto the coldest shard to shave the
  /// excess. `load` is any per-shard pressure signal — queued backlog,
  /// blocked ticks — with one entry per shard. Returns tenants moved.
  std::size_t rebalance(const std::vector<std::uint64_t>& load,
                        std::uint64_t population, double ratio = 1.5,
                        std::size_t max_moves = 4096);

  std::size_t overrides() const { return overrides_.size(); }

  /// splitmix64 finalizer — the ring's (and callers' channel-spreading)
  /// hash. Good avalanche on sequential ids.
  static std::uint64_t hash(std::uint64_t x);

 private:
  void rebuild_ring();

  int shards_;
  /// (ring point, shard id), sorted by point.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
  std::map<std::uint64_t, std::uint32_t> overrides_;
};

}  // namespace vl::traffic
