#include "traffic/sharded_engine.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "fault/plane.hpp"
#include "replay/trace.hpp"
#include "runtime/qos_supervisor.hpp"
#include "sim/sharded.hpp"
#include "sim/task.hpp"
#include "traffic/shard_router.hpp"

namespace vl::traffic {

namespace {

using squeue::Channel;
using squeue::Msg;
using sim::Co;
using sim::SimThread;

constexpr std::uint64_t kTickMask = (std::uint64_t{1} << 48) - 1;
constexpr std::uint64_t kPillTenant = 0xff;
constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr Tick kWindowBackoff = 32;  ///< Retry gap when a link is full.
constexpr std::uint64_t kRebalancePeriod = 64;  ///< Barriers between checks.

std::uint64_t split_seed(std::uint64_t seed, std::uint64_t salt) {
  return seed ^ (0x9e3779b97f4a7c15ull * (salt + 1));
}

/// Same framing as the classic engine, with the class index in the tenant
/// byte: logical tenants are a population of ids, so metrics aggregate per
/// service class rather than per id.
std::uint64_t stamp(int cls, int pid, Tick now) {
  return (static_cast<std::uint64_t>(cls) << 56) |
         (static_cast<std::uint64_t>(pid & 0xff) << 48) | (now & kTickMask);
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// A message in flight on an inter-shard link, bound for channel `ch` of
/// the destination shard.
struct InMsg {
  Msg msg;
  int ch;
};

struct ShardCtx {
  int id = 0;
  std::unique_ptr<runtime::Machine> m;
  std::unique_ptr<squeue::ChannelFactory> f;
  std::vector<std::unique_ptr<Channel>> channels;

  /// Link landing zone: cross-shard deliveries append here (on this
  /// shard's event queue) and the relay thread injects them into channels.
  std::deque<InMsg> ingress;
  std::unique_ptr<sim::WaitQueue> ingress_wq;
  bool stop = false;  ///< All producers (mesh-wide) done; relay may poison.

  int producers_remaining = 0;
  int workers_remaining = 0;
  bool all_done = false;  ///< Final worker exited; sampler unwinds.

  std::vector<TenantMetrics> classes;  ///< One per spec tenant (class).
  std::vector<DepthSeries> depths;
  std::uint64_t digest = kFnvBasis;  ///< (tick, stamp) event-stream fold.
  std::uint64_t cross_in = 0;        ///< Messages that arrived over links.
  std::uint64_t delivered = 0;

  /// Payload messages fed into each channel (local producer flushes +
  /// relay injections). Final before the relay poisons, so each pill can
  /// carry its channel's exact drain target.
  std::vector<std::uint64_t> chan_sent;
};

struct Mesh {
  const ScenarioSpec& spec;
  squeue::Backend backend;
  std::uint64_t seed;
  std::uint64_t population;
  sim::ShardedSim& ssim;
  ShardRouter& router;
  std::vector<std::unique_ptr<ShardCtx>>& shards;

  /// Fault plane (null on clean runs); `chan_faults` pre-gates the
  /// per-message loss/dup hook to software backends.
  fault::FaultPlane* fp = nullptr;
  bool chan_faults = false;

  /// Send-boundary trace tap (null unless recording). Per-gpid streams are
  /// preallocated by begin(), so threaded shards appending to their own
  /// producers' streams never race.
  replay::TraceRecorder* rec = nullptr;
  /// Replay source: producers re-offer the trace's per-gpid streams; the
  /// recorded dst is the *logical destination tenant*, so the router
  /// re-resolves shard/channel placement at replay time. Null on live runs.
  const replay::Trace* trace = nullptr;

  std::uint8_t payload_words(const TenantSpec& t) const {
    return backend == squeue::Backend::kCaf ? std::uint8_t{1} : t.msg_words;
  }
  /// Termination pill; the stamp bits [47:0] carry the channel's payload
  /// count so the worker drains to the count rather than trusting arrival
  /// order (VL's injection-retry recovery can surface the pill ahead of a
  /// straggling payload line).
  Msg make_pill(std::uint64_t count) const {
    Msg p;
    p.n = 1;
    p.w[0] = (kPillTenant << 56) | (count & kTickMask);
    return p;
  }
};

/// One producer thread on shard `home`. Each message draws a destination
/// tenant from the population; the router decides which shard (and the
/// tenant hash which channel) serves it. Local messages accumulate into
/// per-channel sub-batches flushed at lap end; remote messages post onto
/// the inter-shard link as they are generated (the destination relay does
/// the batched injection).
Co<void> producer(Mesh& mesh, ShardCtx& cx, SimThread t, int cls, int gpid,
                  std::uint64_t target) {
  const TenantSpec& ts = mesh.spec.tenants[static_cast<std::size_t>(cls)];
  auto arrival = make_arrival(ts.arrival, split_seed(mesh.seed, 0x5000 + gpid));
  Xoshiro256 dest_rng(split_seed(mesh.seed, 0x6000 + gpid));
  auto& eq = cx.m->eq();
  auto& tm = cx.classes[static_cast<std::size_t>(cls)];
  const std::uint8_t words = mesh.payload_words(ts);
  const std::uint64_t batch = std::max<std::uint32_t>(ts.batch, 1);
  const int home = cx.id;

  std::vector<std::vector<Msg>> sub(cx.channels.size());
  for (std::uint64_t i = 0; i < target;) {
    // One lap: accumulate up to `batch` messages, each paced by the
    // arrival process and routed individually — local ones into
    // per-channel sub-batches, remote ones straight onto their link.
    for (std::uint64_t b = 0; b < batch && i < target; ++b, ++i) {
      Tick gap = arrival->next_gap(eq.now());
      if (mesh.fp) gap = mesh.fp->scale_gap(home, ts.qos, eq.now(), gap);
      if (gap) co_await sim::Delay(eq, gap);
      if (mesh.spec.produce_compute)
        co_await t.compute(mesh.spec.produce_compute);

      ++tm.generated;
      // Channel-level fault fate, decided before the message joins a
      // sub-batch or a link — what was dropped is never counted as sent,
      // so the pill drain counts stay exact.
      int copies = 1;
      if (mesh.chan_faults) {
        copies = mesh.fp->chan_copies(home, eq.now());
        if (copies == 0) {
          ++tm.dropped;
          continue;
        }
      }
      const std::uint64_t dest = dest_rng.below(mesh.population);
      const int dst = mesh.router.shard_for(dest);
      const int nch_dst =
          static_cast<int>(mesh.shards[static_cast<std::size_t>(dst)]
                               ->channels.size());
      const int ch = static_cast<int>(ShardRouter::hash(dest) %
                                      static_cast<std::uint64_t>(nch_dst));
      Msg msg;
      msg.n = words;
      msg.qos = ts.qos;
      msg.w[0] = stamp(cls, gpid, eq.now());
      for (std::uint8_t w = 1; w < words; ++w)
        msg.w[w] = (static_cast<std::uint64_t>(cls) << 32) | i;
      if (mesh.rec)
        for (int k = 0; k < copies; ++k)
          mesh.rec->on_send(static_cast<std::uint16_t>(gpid),
                            static_cast<std::uint16_t>(cls), msg.qos, msg.n,
                            dest, eq.now());

      if (dst == home) {
        for (int k = 0; k < copies; ++k)
          sub[static_cast<std::size_t>(ch)].push_back(msg);
        continue;
      }
      // Remote: respect the link's in-flight window, then hand the
      // message to the destination's ingress at now + link latency.
      for (int k = 0; k < copies; ++k) {
        while (!mesh.ssim.can_post(home, dst)) {
          co_await sim::Delay(eq, kWindowBackoff);
          tm.blocked_ticks += kWindowBackoff;
        }
        ShardCtx* d = mesh.shards[static_cast<std::size_t>(dst)].get();
        mesh.ssim.post(home, dst, [d, msg, ch] {
          d->digest = fnv1a(d->digest, d->m->now());
          d->digest = fnv1a(d->digest, msg.w[0]);
          ++d->cross_in;
          d->ingress.push_back(InMsg{msg, ch});
          d->ingress_wq->wake_one();
        });
        ++tm.sent;
      }
    }
    // Flush the lap's local sub-batches, ascending channel order.
    for (std::size_t c = 0; c < sub.size(); ++c) {
      if (sub[c].empty()) continue;
      const Tick send_start = eq.now();
      co_await cx.channels[c]->send_many(t, sub[c]);
      tm.blocked_ticks += eq.now() - send_start;
      tm.sent += sub[c].size();
      cx.chan_sent[c] += sub[c].size();
      sub[c].clear();
    }
  }
  --cx.producers_remaining;  // the barrier hook polls this
}

/// Replay-mode producer: re-offers the trace's per-gpid stream. Pacing
/// reconstructs each record's absolute generation tick; the recorded dst
/// is the logical destination tenant, re-resolved through the router, so
/// a replay under a different shard count (or with rebalancing) still
/// delivers the same per-class message set.
Co<void> replay_producer(Mesh& mesh, ShardCtx& cx, SimThread t, int cls,
                         int gpid) {
  const TenantSpec& ts = mesh.spec.tenants[static_cast<std::size_t>(cls)];
  auto& eq = cx.m->eq();
  auto& tm = cx.classes[static_cast<std::size_t>(cls)];
  const std::uint64_t batch = std::max<std::uint32_t>(ts.batch, 1);
  const int home = cx.id;
  replay::TraceArrival rep(*mesh.trace, static_cast<std::uint16_t>(gpid));

  std::vector<std::vector<Msg>> sub(cx.channels.size());
  while (!rep.done()) {
    for (std::uint64_t b = 0; b < batch && !rep.done(); ++b) {
      const Tick gap = rep.next_gap(eq.now());
      if (gap) co_await sim::Delay(eq, gap);
      const replay::TraceRecord& r0 = rep.record();
      ++tm.generated;
      const std::uint64_t dest = r0.dst % mesh.population;
      const int dst = mesh.router.shard_for(dest);
      const int nch_dst =
          static_cast<int>(mesh.shards[static_cast<std::size_t>(dst)]
                               ->channels.size());
      const int ch = static_cast<int>(ShardRouter::hash(dest) %
                                      static_cast<std::uint64_t>(nch_dst));
      Msg msg;
      msg.n = mesh.backend == squeue::Backend::kCaf ? std::uint8_t{1}
                                                    : r0.words;
      msg.qos = r0.cls;
      msg.w[0] = stamp(cls, gpid, eq.now());
      for (std::uint8_t w = 1; w < msg.n; ++w)
        msg.w[w] = (static_cast<std::uint64_t>(cls) << 32) | b;
      if (mesh.rec)  // re-recording a replay reproduces the trace
        mesh.rec->on_send(static_cast<std::uint16_t>(gpid),
                          static_cast<std::uint16_t>(cls), msg.qos, msg.n,
                          dest, eq.now());
      rep.advance();

      if (dst == home) {
        sub[static_cast<std::size_t>(ch)].push_back(msg);
        continue;
      }
      while (!mesh.ssim.can_post(home, dst)) {
        co_await sim::Delay(eq, kWindowBackoff);
        tm.blocked_ticks += kWindowBackoff;
      }
      ShardCtx* d = mesh.shards[static_cast<std::size_t>(dst)].get();
      mesh.ssim.post(home, dst, [d, msg, ch] {
        d->digest = fnv1a(d->digest, d->m->now());
        d->digest = fnv1a(d->digest, msg.w[0]);
        ++d->cross_in;
        d->ingress.push_back(InMsg{msg, ch});
        d->ingress_wq->wake_one();
      });
      ++tm.sent;
    }
    for (std::size_t c = 0; c < sub.size(); ++c) {
      if (sub[c].empty()) continue;
      const Tick send_start = eq.now();
      co_await cx.channels[c]->send_many(t, sub[c]);
      tm.blocked_ticks += eq.now() - send_start;
      tm.sent += sub[c].size();
      cx.chan_sent[c] += sub[c].size();
      sub[c].clear();
    }
  }
  --cx.producers_remaining;
}

/// Per-shard link relay: drains the ingress deque into per-channel
/// sub-batches and injects them with one send_many per channel. Once the
/// stop flag is up (all producers mesh-wide finished — every delivery is
/// already scheduled, and same-tick events fire in schedule order, so the
/// flag can never overtake payload) and the ingress is dry, it poisons
/// each channel's sole worker.
Co<void> relay(Mesh& mesh, ShardCtx& cx, SimThread t) {
  std::vector<std::vector<Msg>> sub(cx.channels.size());
  for (;;) {
    const auto gate = cx.ingress_wq->epoch();
    if (cx.ingress.empty()) {
      if (cx.stop) break;
      co_await t.park(*cx.ingress_wq, gate);
      continue;
    }
    while (!cx.ingress.empty()) {
      const InMsg& im = cx.ingress.front();
      sub[static_cast<std::size_t>(im.ch)].push_back(im.msg);
      cx.ingress.pop_front();
    }
    for (std::size_t c = 0; c < sub.size(); ++c) {
      if (sub[c].empty()) continue;
      co_await cx.channels[c]->send_many(t, sub[c]);
      cx.chan_sent[c] += sub[c].size();
      sub[c].clear();
    }
  }
  for (std::size_t c = 0; c < cx.channels.size(); ++c)
    co_await cx.channels[c]->send(t, mesh.make_pill(cx.chan_sent[c]));
}

/// Sole consumer of one channel: batched opportunistic drain, per-class
/// delivery accounting, digest fold per delivery.
Co<void> worker(Mesh& mesh, ShardCtx& cx, SimThread t, int ci) {
  Channel& ch = *cx.channels[static_cast<std::size_t>(ci)];
  auto& eq = cx.m->eq();
  constexpr std::size_t kWindow = 8;
  std::vector<Msg> drained(kWindow);
  std::uint64_t expected = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t received = 0;

  while (received < expected) {
    const std::size_t got =
        co_await ch.recv_many(t, std::span<Msg>(drained.data(), kWindow), 1);
    for (std::size_t k = 0; k < got; ++k) {
      const Msg& msg = drained[k];
      const std::uint64_t cls = msg.w[0] >> 56;
      if (cls == kPillTenant) {
        expected = msg.w[0] & kTickMask;  // drain target; keep going
        continue;
      }
      if (mesh.spec.consume_compute)
        co_await t.compute(mesh.spec.consume_compute);
      auto& tm = cx.classes[static_cast<std::size_t>(cls)];
      ++tm.delivered;
      tm.latency.record((eq.now() - msg.w[0]) & kTickMask);
      ++cx.delivered;
      cx.digest = fnv1a(cx.digest, eq.now());
      cx.digest = fnv1a(cx.digest, msg.w[0]);
      ++received;
    }
  }
  if (--cx.workers_remaining == 0) cx.all_done = true;
}

Co<void> depth_sampler(Mesh& mesh, ShardCtx& cx) {
  for (;;) {
    for (std::size_t c = 0; c < cx.channels.size(); ++c) {
      auto& d = cx.depths[c];
      d.depth.record(static_cast<double>(cx.channels[c]->depth()));
      ++d.samples;
    }
    if (cx.all_done) break;
    co_await sim::Delay(cx.m->eq(), mesh.spec.depth_sample_period);
  }
}

/// Mesh-wide timeline series: the classic engine's per-class set folded
/// over every shard, plus the sharded-only signals (per-shard link window
/// stalls, cross-link ingress). Closures are evaluated only at the
/// single-threaded barrier, so threaded stepping races on nothing.
void register_sharded_series(obs::Timeline& tl, Mesh& mesh) {
  auto& shards = mesh.shards;
  tl.add_series("eq.executed", [&mesh] {
    return static_cast<double>(mesh.ssim.executed());
  });
  tl.add_series("chan.depth", [&shards] {
    std::uint64_t d = 0;
    for (const auto& cx : shards)
      for (const auto& ch : cx->channels) d += ch->depth();
    return static_cast<double>(d);
  });
  tl.add_series("cross_shard.ingress", [&shards] {
    std::uint64_t n = 0;
    for (const auto& cx : shards) n += cx->cross_in;
    return static_cast<double>(n);
  });
  tl.add_series("vlrd.push_quota_nacks", [&shards] {
    std::uint64_t n = 0;
    for (const auto& cx : shards) n += cx->m->vlrd_stats().push_quota_nacks;
    return static_cast<double>(n);
  });
  tl.add_series("vlrd.fetch_nacks", [&shards] {
    std::uint64_t n = 0;
    for (const auto& cx : shards) n += cx->m->vlrd_stats().fetch_nacks;
    return static_cast<double>(n);
  });
  if (mesh.backend == squeue::Backend::kCaf) {
    for (std::size_t c = 0; c < kQosClasses; ++c) {
      const auto cls = static_cast<QosClass>(c);
      tl.add_series(std::string("caf.occupancy.") + to_string(cls),
                    [&shards, cls] {
                      std::uint64_t n = 0;
                      for (const auto& cx : shards)
                        n += cx->f->caf_device().class_occupancy(cls);
                      return static_cast<double>(n);
                    });
    }
  }
  for (int sh = 0; sh < static_cast<int>(shards.size()); ++sh) {
    tl.add_series("shard" + std::to_string(sh) + ".window_stalls",
                  [&mesh, sh] {
                    return static_cast<double>(
                        mesh.ssim.shard_window_stalls(sh));
                  });
    tl.add_series("shard" + std::to_string(sh) + ".partition_stalls",
                  [&mesh, sh] {
                    return static_cast<double>(
                        mesh.ssim.shard_partition_stalls(sh));
                  });
  }

  bool present[kQosClasses] = {};
  for (const auto& t : mesh.spec.tenants)
    present[static_cast<std::size_t>(t.qos)] = true;
  for (std::size_t ci = 0; ci < kQosClasses; ++ci) {
    if (!present[ci]) continue;
    const auto cls = static_cast<QosClass>(ci);
    const std::string base = std::string("class.") + to_string(cls) + ".";
    auto fold = [&shards, cls](auto&& view) {
      double acc = 0.0;
      for (const auto& cx : shards)
        for (const auto& t : cx->classes)
          if (t.qos == cls) acc += view(t);
      return acc;
    };
    tl.add_series(base + "delivered", [fold] {
      return fold([](const TenantMetrics& t) {
        return static_cast<double>(t.delivered);
      });
    });
    tl.add_series(base + "sent", [fold] {
      return fold(
          [](const TenantMetrics& t) { return static_cast<double>(t.sent); });
    });
    tl.add_series(base + "blocked_ticks", [fold] {
      return fold([](const TenantMetrics& t) {
        return static_cast<double>(t.blocked_ticks);
      });
    });
    tl.add_series(base + "p99", [&shards, cls] {
      LogHistogram h;
      for (const auto& cx : shards)
        for (const auto& t : cx->classes)
          if (t.qos == cls) h.merge(t.latency);
      return static_cast<double>(h.percentile(99));
    });
    tl.add_series(base + "slo_within", [&shards, cls] {
      // Raw in-SLO delivery counter; the QoS supervisor windows it against
      // `delivered` for a per-epoch attainment signal.
      std::uint64_t within = 0;
      for (const auto& cx : shards)
        for (const auto& t : cx->classes)
          if (t.qos == cls && t.slo_p99) within += t.slo_within();
      return static_cast<double>(within);
    });
    tl.add_series(base + "slo_att_pct", [&shards, cls] {
      std::uint64_t slo_delivered = 0, slo_within = 0;
      for (const auto& cx : shards)
        for (const auto& t : cx->classes) {
          if (t.qos != cls || !t.slo_p99) continue;
          slo_delivered += t.delivered;
          slo_within += t.slo_within();
        }
      if (!slo_delivered) return 100.0;
      return 100.0 * static_cast<double>(slo_within) /
             static_cast<double>(slo_delivered);
    });
  }
}

}  // namespace

ShardedResult run_sharded(const ScenarioSpec& raw, squeue::Backend backend,
                          std::uint64_t seed, const ShardedOptions& opts,
                          int scale) {
  const std::string err = validate(raw);
  if (!err.empty())
    throw std::invalid_argument("invalid scenario '" + raw.name + "': " + err);
  const ScenarioSpec& spec = raw;  // sharded budget scales globally, below

  const std::uint64_t population =
      opts.population ? opts.population : spec.sharding.population;
  const std::uint64_t messages_total =
      (opts.messages ? opts.messages : spec.sharding.messages_total) *
      static_cast<std::uint64_t>(std::max(scale, 1));
  const int S = opts.shards;
  if (S < 1) throw std::invalid_argument("shards must be >= 1");
  if (population == 0)
    throw std::invalid_argument("scenario '" + spec.name +
                                "' has no sharding population");
  if (messages_total == 0)
    throw std::invalid_argument("scenario '" + spec.name +
                                "' has no sharding message budget");
  if (spec.topology != Topology::kFanOut && spec.topology != Topology::kMesh)
    throw std::invalid_argument(
        "sharded runs need a fan-out/mesh topology (channel per consumer)");
  if (spec.closed_loop)
    throw std::invalid_argument("sharded runs are open-loop only");
  if (spec.consumers < S)
    throw std::invalid_argument(
        "need at least one consumer per shard (consumers >= shards)");
  if (!spec.lifecycle.empty())
    throw std::invalid_argument(
        "lifecycle events (churn/reconfig) run on the classic engine only");
  if (spec.replay) {
    if (!spec.replay->sharded)
      throw std::invalid_argument(
          "replay: trace '" + spec.replay->scenario +
          "' was recorded by the classic engine; replay it via traffic::run");
    if (spec.replay->producers !=
            static_cast<std::uint32_t>(spec.producers) ||
        spec.replay->tenants != spec.tenants.size())
      throw std::invalid_argument(
          "replay: trace shape (producers=" +
          std::to_string(spec.replay->producers) +
          ", tenants=" + std::to_string(spec.replay->tenants) +
          ") does not match scenario '" + spec.name + "'");
  }

  ShardRouter router(S);
  sim::ShardedSim ssim(spec.sharding.link_latency, opts.sim_threads);
  ssim.set_link_window(spec.sharding.link_window);

  // Producers and channels are dealt round-robin: global producer p lives
  // on shard p % S, global channel c on shard c % S.
  std::vector<int> np(static_cast<std::size_t>(S), 0);
  std::vector<int> nch(static_cast<std::size_t>(S), 0);
  for (int p = 0; p < spec.producers; ++p) ++np[static_cast<std::size_t>(p % S)];
  for (int c = 0; c < spec.consumers; ++c)
    ++nch[static_cast<std::size_t>(c % S)];

  std::vector<std::unique_ptr<ShardCtx>> shards;

  // Fault plane + QoS supervisor, created before the shards so each
  // machine is armed / attached as it is built, in shard-id order.
  std::unique_ptr<fault::FaultPlane> plane;
  if (!spec.faults.empty())
    plane = std::make_unique<fault::FaultPlane>(spec.faults, S);
  const bool want_sup = spec.supervisor && spec.qos &&
                        (backend == squeue::Backend::kVl ||
                         backend == squeue::Backend::kCaf);
  std::unique_ptr<runtime::QosSupervisor> sup;
  if (want_sup) {
    bool present[kQosClasses] = {};
    for (const auto& t : spec.tenants)
      present[static_cast<std::size_t>(t.qos)] = true;
    sup = std::make_unique<runtime::QosSupervisor>(
        runtime::QosSupervisor::Config{}, present);
  }

  std::uint8_t frame = 1;
  for (const auto& t : spec.tenants)
    frame = std::max(frame, backend == squeue::Backend::kCaf
                                ? std::uint8_t{1}
                                : t.msg_words);
  for (int sh = 0; sh < S; ++sh) {
    auto cx = std::make_unique<ShardCtx>();
    cx->id = sh;
    // Each shard's hardware knobs (QoS quota carve, per-SQI splits) are
    // sized for the channels *it* hosts, exactly as a standalone node's
    // would be.
    ScenarioSpec node = spec;
    node.producers = std::max(np[static_cast<std::size_t>(sh)], 1);
    node.consumers = nch[static_cast<std::size_t>(sh)];
    cx->m = std::make_unique<runtime::Machine>(
        machine_config_for(node, backend));
    cx->f = std::make_unique<squeue::ChannelFactory>(*cx->m, backend);
    if (plane) plane->arm_machine(*cx->m, sh);
    if (sup)
      sup->attach(cx->m->cfg(), channel_demand_for(node, backend, cx->m->cfg()),
                  backend == squeue::Backend::kVl ? &cx->m->cluster() : nullptr,
                  backend == squeue::Backend::kCaf ? &cx->f->caf_device()
                                                   : nullptr);
    for (int c = 0; c < nch[static_cast<std::size_t>(sh)]; ++c) {
      const std::string label =
          "sh" + std::to_string(sh) + "c" + std::to_string(c);
      cx->channels.push_back(cx->f->make(label, spec.capacity_hint, frame));
      DepthSeries d;
      d.channel = label;
      cx->depths.push_back(std::move(d));
    }
    cx->ingress_wq = std::make_unique<sim::WaitQueue>(cx->m->eq());
    cx->chan_sent.assign(cx->channels.size(), 0);
    for (const auto& t : spec.tenants) {
      TenantMetrics tm;
      tm.tenant = t.name;
      tm.qos = t.qos;
      tm.slo_p99 = t.slo_p99;
      cx->classes.push_back(std::move(tm));
    }
    cx->producers_remaining = np[static_cast<std::size_t>(sh)];
    cx->workers_remaining = nch[static_cast<std::size_t>(sh)];
    ssim.add_shard(cx->m->eq());
    shards.push_back(std::move(cx));
  }

  Mesh mesh{spec, backend, seed, population, ssim, router, shards};
  mesh.fp = plane.get();
  mesh.chan_faults = plane && plane->mutates_channels() &&
                     (backend == squeue::Backend::kBlfq ||
                      backend == squeue::Backend::kZmq);
  mesh.trace = spec.replay;
  if (opts.obs && opts.obs->recorder) {
    mesh.rec = opts.obs->recorder;
    mesh.rec->begin(spec.name, squeue::to_string(backend), seed,
                    static_cast<std::uint32_t>(spec.producers),
                    static_cast<std::uint32_t>(spec.tenants.size()),
                    /*sharded=*/true);
  }

  // --- observability hookup -------------------------------------------------
  // A supervised run samples even without caller hooks — into a private
  // local timeline the supervisor reads at each barrier.
  obs::Timeline local_tl;
  obs::Timeline* tl = opts.obs ? opts.obs->timeline : nullptr;
  if (sup && !tl) tl = &local_tl;
  if (tl) {
    register_sharded_series(*tl, mesh);
    if (plane) plane->register_series(*tl);
    if (sup) sup->register_series(*tl);
  }
  obs::TraceBuffer* barrier_tb = nullptr;
  if (opts.obs && opts.obs->tracer) {
    obs::Tracer& tr = *opts.obs->tracer;
    // All buffers are created here, before any (possibly threaded)
    // stepping: each shard's queue writes only its own buffer while that
    // shard steps, and the barrier lane (pid = S) only between epochs.
    for (int sh = 0; sh < S; ++sh) {
      shards[static_cast<std::size_t>(sh)]->m->eq().set_trace(
          &tr.buffer(static_cast<std::uint32_t>(sh)));
      tr.set_process_name(static_cast<std::uint32_t>(sh),
                          "shard" + std::to_string(sh));
    }
    ssim.set_trace(&tr.buffer(static_cast<std::uint32_t>(S)));
    tr.set_process_name(static_cast<std::uint32_t>(S), "barrier");
    barrier_tb = &tr.buffer(static_cast<std::uint32_t>(S));
  }

  // Global message budget over global producer ids (largest remainder),
  // classes assigned by the same split as the classic engine — both are
  // shard-count-invariant, which is what makes delivered counts equal
  // across S.
  const std::vector<int> split = tenant_producer_split(spec);
  std::vector<int> cls_of(static_cast<std::size_t>(spec.producers), 0);
  {
    int p = 0;
    for (std::size_t ti = 0; ti < split.size(); ++ti)
      for (int k = 0; k < split[ti] && p < spec.producers; ++k)
        cls_of[static_cast<std::size_t>(p++)] = static_cast<int>(ti);
  }
  const std::uint64_t per =
      messages_total / static_cast<std::uint64_t>(spec.producers);
  const std::uint64_t rem =
      messages_total % static_cast<std::uint64_t>(spec.producers);

  for (int sh = 0; sh < S; ++sh) {
    ShardCtx& cx = *shards[static_cast<std::size_t>(sh)];
    CoreId core = 0;
    auto next_thread = [&] {
      const CoreId c = core;
      core = (core + 1) % cx.m->num_cores();
      return cx.m->thread_on(c);
    };
    sim::spawn(relay(mesh, cx, next_thread()));
    for (int c = 0; c < static_cast<int>(cx.channels.size()); ++c)
      sim::spawn(worker(mesh, cx, next_thread(), c));
    for (int p = sh; p < spec.producers; p += S) {
      if (mesh.trace) {
        // Replay flavour: the per-gpid stream is the budget (an empty
        // stream returns immediately and decrements the barrier count).
        sim::spawn(replay_producer(mesh, cx, next_thread(),
                                   cls_of[static_cast<std::size_t>(p)], p));
        continue;
      }
      const std::uint64_t target =
          per + (static_cast<std::uint64_t>(p) < rem ? 1 : 0);
      if (target)
        sim::spawn(producer(mesh, cx, next_thread(),
                            cls_of[static_cast<std::size_t>(p)], p, target));
      else
        --cx.producers_remaining;
    }
    sim::spawn(depth_sampler(mesh, cx));
  }

  // Barrier hook: once every producer mesh-wide has finished (their posts
  // were drained by this barrier's exchange), raise each shard's stop flag
  // one lookahead out — deliveries landing on that same tick were
  // scheduled first, so relays always drain payload before poisoning.
  // Until then, optionally rebalance the ring off persistently hot shards.
  bool stop_sent = false;
  std::uint64_t rebalanced = 0;
  std::uint64_t barriers = 0;
  std::vector<std::uint64_t> prev_lat_blocked(static_cast<std::size_t>(S), 0);
  auto hook = [&]() -> bool {
    // Link-fault table first (single-threaded here, shards tick-aligned):
    // each epoch then steps under one immutable table, which keeps fault
    // runs byte-identical between sequential and threaded stepping. Runs
    // before the stop check so partitions lift during the drain phase.
    if (plane)
      plane->apply_links(ssim, shards.front()->m->now(), barrier_tb);
    // Timeline epoch: after the exchange every shard stands at the same
    // tick, so one sample captures a consistent mesh-wide cut. Sampling
    // reads counters only — it never schedules — so the run's (tick, seq)
    // stream is untouched.
    if (tl) tl->sample(shards.front()->m->now());
    // Supervisor control epoch: reads the cut just taken, re-carves the
    // per-class quotas via the epoch-boundary-safe knobs.
    if (sup) sup->on_epoch(*tl);
    if (stop_sent) return true;
    bool producers_done = true;
    for (const auto& cx : shards)
      if (cx->producers_remaining > 0) {
        producers_done = false;
        break;
      }
    if (producers_done) {
      for (auto& cx : shards) {
        ShardCtx* p = cx.get();
        p->m->eq().schedule_at(p->m->now() + spec.sharding.link_latency, [p] {
          p->stop = true;
          p->ingress_wq->wake_one();
        });
      }
      stop_sent = true;
      return true;
    }
    if (spec.sharding.rebalance && ++barriers % kRebalancePeriod == 0) {
      std::vector<std::uint64_t> load;
      load.reserve(shards.size());
      for (std::size_t si = 0; si < shards.size(); ++si) {
        const auto& cx = shards[si];
        std::uint64_t l = cx->ingress.size();
        for (const auto& ch : cx->channels) l += ch->depth();
        if (sup) {
          // SLO-aware pressure: a shard whose latency class spent this
          // window blocked is hotter than its queue depths alone say, so
          // fold the blocked-ticks growth into its load estimate (scaled
          // down to queue-depth units).
          std::uint64_t bl = 0;
          for (const auto& t : cx->classes)
            if (t.qos == QosClass::kLatency) bl += t.blocked_ticks;
          l += (bl - prev_lat_blocked[si]) / 64;
          prev_lat_blocked[si] = bl;
        }
        load.push_back(l);
      }
      rebalanced += router.rebalance(load, population);
    }
    return false;
  };

  ssim.run(hook);

  if (tl) {
    // Final cumulative epoch, taken before the per-shard metrics move out
    // of the contexts: its class.* values equal the merged end-of-run
    // ScenarioMetrics (same counters, same aggregation).
    Tick end = 0;
    for (const auto& cx : shards) end = std::max(end, cx->m->now());
    tl->sample(end);
    tl->detach();
  }
  for (auto& cx : shards) cx->m->eq().set_trace(nullptr);

  ShardedResult r;
  r.engine.scenario = spec.name;
  r.engine.backend = squeue::to_string(backend);
  r.engine.seed = seed;
  r.engine.scale = scale;
  r.engine.events = ssim.executed();
  r.shards = S;
  r.sim_threads = opts.sim_threads;
  r.epochs = ssim.stats().epochs;
  r.cross_shard = ssim.stats().messages;
  r.window_stalls = ssim.stats().window_stalls;
  r.rebalanced = rebalanced;
  for (auto& cx : shards) {
    ScenarioMetrics sm;
    sm.tenants = std::move(cx->classes);
    sm.depths = std::move(cx->depths);
    sm.ticks = cx->m->now();
    sm.ns = cx->m->ns(sm.ticks);
    r.engine.metrics.merge(sm);
    r.engine.device_stats.merge(cx->m->statset());
    r.shard_digests.push_back(cx->digest);
    r.shard_delivered.push_back(cx->delivered);
  }
  return r;
}

}  // namespace vl::traffic
