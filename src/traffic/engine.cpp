#include "traffic/engine.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/csv.hpp"
#include "common/rng.hpp"
#include "fault/plane.hpp"
#include "replay/lifecycle.hpp"
#include "replay/trace.hpp"
#include "runtime/qos_supervisor.hpp"
#include "sim/task.hpp"

namespace vl::traffic {

namespace {

using squeue::Channel;
using squeue::Msg;
using sim::Co;
using sim::SimThread;

constexpr std::uint64_t kTickMask = (std::uint64_t{1} << 48) - 1;
constexpr std::uint64_t kPillTenant = 0xff;

std::uint64_t stamp(int tenant, int pid, Tick now) {
  return (static_cast<std::uint64_t>(tenant) << 56) |
         (static_cast<std::uint64_t>(pid) << 48) | (now & kTickMask);
}

/// Derive an independent RNG stream for one actor of the run. Xoshiro
/// seeding splitmixes the value, so consecutive salts give uncorrelated
/// streams.
std::uint64_t split_seed(std::uint64_t seed, std::uint64_t salt) {
  return seed ^ (0x9e3779b97f4a7c15ull * (salt + 1));
}

struct StageChannel {
  std::unique_ptr<Channel> ch;
  int workers = 1;
  std::string label;
  /// Payload messages fed into this channel (producer flushes + upstream
  /// relays). Final by the time its termination pill is built, so the pill
  /// can carry the exact drain target for the channel's sole worker.
  std::uint64_t fed = 0;
};

struct Stage {
  std::vector<StageChannel> channels;
  int workers_remaining = 0;
};

struct Ctx {
  runtime::Machine& m;
  const ScenarioSpec& spec;
  squeue::Backend backend;
  std::uint64_t seed;

  std::vector<Stage> stages;
  std::vector<std::unique_ptr<Channel>> acks;  // per producer, closed loop
  std::vector<TenantMetrics> tenants;
  std::vector<DepthSeries> depths;  // parallel to flattened stage channels

  int producers_remaining = 0;
  sim::AsyncOp<int> producers_done;
  int consumers_remaining = 0;  // final-stage workers
  bool all_done = false;

  /// Fault plane (null on clean runs). `chan_faults` pre-gates the
  /// per-message loss/dup hook: spec has loss/dup events AND the backend
  /// is a software one (hardware backends model reliable interconnects).
  fault::FaultPlane* fp = nullptr;
  bool chan_faults = false;

  /// Send-boundary trace tap (null unless the caller's RunHooks carry a
  /// recorder). Recording is a pure observation — no events scheduled.
  replay::TraceRecorder* rec = nullptr;
  /// Replay source: producers re-offer this trace's per-pid record streams
  /// instead of their tenants' arrival processes. Null on live runs.
  const replay::Trace* trace = nullptr;
  /// Lifecycle plane (null on static runs): tenant churn windows and
  /// one-shot SQI reconfig events, consulted by producers and workers.
  replay::LifecyclePlane* lp = nullptr;

  std::uint8_t payload_words(const TenantSpec& t) const {
    // CAF channels carry fixed single-word frames (multi-word register
    // sequences interleave under M:N sharing), so CAF runs stamp-only.
    return backend == squeue::Backend::kCaf ? std::uint8_t{1} : t.msg_words;
  }

  /// Termination pill. The stamp bits [47:0] — meaningless for a pill —
  /// carry the channel's exact payload count, so a sole worker can drain
  /// to the count instead of trusting arrival order: VL's § III-B
  /// injection-retry recovery can land a straggler *after* a younger line
  /// (the registration recycle maps returned data to the next armed ring
  /// line), so "pill seen" does not imply "channel empty".
  Msg make_pill(std::uint64_t count = 0) const {
    Msg p;
    p.n = 1;
    p.w[0] = (kPillTenant << 56) | (count & kTickMask);
    return p;
  }
};

Co<void> producer(Ctx& cx, SimThread t, int tenant_id, int pid) {
  const TenantSpec& ts = cx.spec.tenants[static_cast<std::size_t>(tenant_id)];
  auto arrival = make_arrival(ts.arrival, split_seed(cx.seed, pid));
  Xoshiro256 route_rng(split_seed(cx.seed, 0x4000 + pid));
  Channel* ack = cx.spec.closed_loop
                     ? cx.acks[static_cast<std::size_t>(pid)].get()
                     : nullptr;
  auto& eq = cx.m.eq();
  auto& tm = cx.tenants[static_cast<std::size_t>(tenant_id)];
  Stage& s0 = cx.stages.front();
  const auto nch = static_cast<std::uint64_t>(s0.channels.size());
  const std::uint8_t words = cx.payload_words(ts);
  const std::uint64_t target = ts.messages_per_producer;
  // Closed loops cap the effective batch at the window — a producer may
  // never hold more unacked messages than its in-flight budget.
  const std::uint64_t batch =
      ack ? std::min<std::uint64_t>(ts.batch, cx.spec.window)
          : std::max<std::uint32_t>(ts.batch, 1);
  int outstanding = 0;
  // Per-channel sub-batches: every message routes individually (fan-out
  // rotates per message, mesh redraws per message) and accumulates into
  // its channel's sub-batch; at lap end the non-empty sub-batches flush in
  // ascending channel order, one send_many per channel touched. This keeps
  // batched injection (the per-lap accumulation trade) without pinning a
  // whole burst to one consumer. With batch == 1 a lap is one message, so
  // the rotation counter and mesh RNG draws replay the historic per-lap
  // routing draw for draw and BENCH baselines are unaffected.
  std::vector<std::vector<Msg>> sub(nch);
  std::uint64_t seq = 0;  // routing counter: advances per generated message

  for (std::uint64_t i = 0; i < target;) {
    // Assemble up to `batch` messages: each paces on the arrival process
    // and is stamped at its generation instant, so batching adds the
    // producer-side accumulation delay to the measured latency — exactly
    // the trade batched injection makes.
    std::uint64_t assembled = 0;
    while (assembled < batch && i < target) {
      if (cx.lp && cx.lp->tenant_has_events(tenant_id)) {
        Tick at;
        while ((at = cx.lp->next_active(tenant_id, eq.now())) != 0) {
          if (at == replay::LifecyclePlane::kNever) {
            // Departed for good: the rest of the budget is forfeited, not
            // dropped — never generated, so conservation stays exact and
            // the count-carrying pills still match what was fed.
            cx.lp->note_forfeit(target - i);
            i = target;
            break;
          }
          co_await sim::Delay(eq, at - eq.now());
        }
        if (i >= target) break;
      }
      Tick gap = arrival->next_gap(eq.now());
      if (cx.fp) gap = cx.fp->scale_gap(0, ts.qos, eq.now(), gap);
      if (gap) co_await sim::Delay(eq, gap);
      if (cx.spec.produce_compute) co_await t.compute(cx.spec.produce_compute);

      ++tm.generated;
      std::uint64_t c = 0;
      if (nch > 1)
        c = cx.spec.topology == Topology::kFanOut ? seq % nch
                                                  : route_rng.below(nch);
      ++seq;  // dropped messages advance the rotation too
      Channel& ch = *s0.channels[c].ch;
      if (ts.drop_depth && ch.depth() >= ts.drop_depth) {
        ++tm.dropped;
        ++i;
        continue;
      }
      // Channel-level fault fate, decided before the message joins its
      // sub-batch: a dropped/duplicated message never desyncs the `fed`
      // pill counts, because only what actually lands in the batch is
      // counted at flush time.
      int copies = 1;
      if (cx.chan_faults) {
        copies = cx.fp->chan_copies(0, eq.now());
        if (copies == 0) {
          ++tm.dropped;
          ++i;
          continue;
        }
      }
      Msg msg;
      msg.n = words;
      msg.qos = ts.qos;
      msg.w[0] = stamp(tenant_id, pid, eq.now());
      for (std::uint8_t w = 1; w < words; ++w)
        msg.w[w] = (static_cast<std::uint64_t>(tenant_id) << 32) | i;
      for (int k = 0; k < copies; ++k) sub[c].push_back(msg);
      if (cx.rec)
        for (int k = 0; k < copies; ++k)
          cx.rec->on_send(static_cast<std::uint16_t>(pid),
                          static_cast<std::uint16_t>(tenant_id), msg.qos,
                          msg.n, c, eq.now());
      ++i;
      ++assembled;
    }
    // Flush the lap: ascending channel order, closed-loop window re-checked
    // per sub-batch so outstanding never exceeds the in-flight budget.
    for (std::uint64_t c = 0; c < nch; ++c) {
      auto& b = sub[c];
      if (b.empty()) continue;
      if (ack)
        while (outstanding + static_cast<int>(b.size()) > cx.spec.window) {
          co_await ack->recv1(t);
          --outstanding;
        }
      const Tick send_start = eq.now();
      co_await s0.channels[c].ch->send_many(t, b);  // one batched injection
      tm.blocked_ticks += eq.now() - send_start;  // time-in-backpressure
      tm.sent += b.size();
      s0.channels[c].fed += b.size();
      if (ack) outstanding += static_cast<int>(b.size());
      b.clear();
    }
  }
  if (ack)
    while (outstanding > 0) {
      co_await ack->recv1(t);
      --outstanding;
    }
  if (--cx.producers_remaining == 0) cx.producers_done.complete(0);
}

/// Replay-mode producer: re-offers the trace's per-pid record stream.
/// Pacing reconstructs each record's absolute generation tick
/// (TraceArrival::next_gap), and class / payload width / destination come
/// from the record instead of the spec's RNG draws. The trace is the
/// post-shed stream, so drop_depth, fault loss/dup, and produce_compute
/// are all skipped — their effects are already in the recorded ticks.
/// Batching follows the tenant's spec batch, reproducing the recorded
/// run's accumulate-then-flush injection shape.
Co<void> replay_producer(Ctx& cx, SimThread t, int tenant_id, int pid) {
  const TenantSpec& ts = cx.spec.tenants[static_cast<std::size_t>(tenant_id)];
  auto& eq = cx.m.eq();
  auto& tm = cx.tenants[static_cast<std::size_t>(tenant_id)];
  Stage& s0 = cx.stages.front();
  const auto nch = static_cast<std::uint64_t>(s0.channels.size());
  const std::uint64_t batch = std::max<std::uint32_t>(ts.batch, 1);
  replay::TraceArrival rep(*cx.trace, static_cast<std::uint16_t>(pid));
  std::vector<std::vector<Msg>> sub(nch);

  while (!rep.done()) {
    std::uint64_t assembled = 0;
    while (assembled < batch && !rep.done()) {
      const Tick gap = rep.next_gap(eq.now());
      if (gap) co_await sim::Delay(eq, gap);
      const replay::TraceRecord& r0 = rep.record();
      ++tm.generated;
      const std::uint64_t c = nch > 1 ? r0.dst % nch : 0;
      Msg msg;
      // CAF carries single-word frames (see payload_words); a VL-recorded
      // trace replayed onto CAF clamps like a live run would.
      msg.n = cx.backend == squeue::Backend::kCaf ? std::uint8_t{1}
                                                  : r0.words;
      msg.qos = r0.cls;
      msg.w[0] = stamp(tenant_id, pid, eq.now());
      for (std::uint8_t w = 1; w < msg.n; ++w)
        msg.w[w] = (static_cast<std::uint64_t>(tenant_id) << 32) | assembled;
      sub[c].push_back(msg);
      if (cx.rec)  // re-recording a replay reproduces the trace
        cx.rec->on_send(static_cast<std::uint16_t>(pid),
                        static_cast<std::uint16_t>(tenant_id), msg.qos, msg.n,
                        c, eq.now());
      rep.advance();
      ++assembled;
    }
    for (std::uint64_t c = 0; c < nch; ++c) {
      auto& b = sub[c];
      if (b.empty()) continue;
      const Tick send_start = eq.now();
      co_await s0.channels[c].ch->send_many(t, b);
      tm.blocked_ticks += eq.now() - send_start;
      tm.sent += b.size();
      s0.channels[c].fed += b.size();
      b.clear();
    }
  }
  if (--cx.producers_remaining == 0) cx.producers_done.complete(0);
}

Co<void> worker(Ctx& cx, SimThread t, int stage_idx, int chan_idx) {
  Stage& st = cx.stages[static_cast<std::size_t>(stage_idx)];
  StageChannel& sc = st.channels[static_cast<std::size_t>(chan_idx)];
  Channel& ch = *sc.ch;
  const bool final_stage =
      stage_idx + 1 == static_cast<int>(cx.stages.size());
  auto& eq = cx.m.eq();
  // Flattened channel ordinal (the reconfig@:channel= numbering — same
  // order as the depth series).
  int flat = chan_idx;
  for (int s = 0; s < stage_idx; ++s)
    flat += static_cast<int>(cx.stages[static_cast<std::size_t>(s)]
                                 .channels.size());

  // A channel's sole worker drains opportunistically in batches and
  // terminates on the exact payload count its pill carries — arrival order
  // is not trusted, because VL's injection-retry recovery can surface the
  // pill ahead of a straggling payload line. Shared channels stay on
  // one-message receives and first-pill semantics: the coordinator sends
  // one pill per worker, and their payload split is not knowable up front.
  const std::size_t window = sc.workers == 1 ? std::size_t{8} : 1;
  std::vector<Msg> drained(window);
  std::vector<Msg> relay;
  std::uint64_t expected = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t received = 0;

  while (received < expected) {
    // SQI re-registration (reconfig@): between receive laps the consumer
    // drops its armed demand and re-registers — § III-B migration onto the
    // same thread. Landed frames stay readable, so no message is lost.
    if (cx.lp && cx.lp->take_reconfig(flat, eq.now()) && ch.reconfigure(t))
      cx.lp->note_reconfig_applied();
    const std::size_t got =
        co_await ch.recv_many(t, std::span<Msg>(drained.data(), window), 1);
    relay.clear();
    for (std::size_t k = 0; k < got; ++k) {
      Msg& msg = drained[k];
      const std::uint64_t tenant = msg.w[0] >> 56;
      if (tenant == kPillTenant) {
        if (sc.workers == 1) {
          expected = msg.w[0] & kTickMask;  // drain target; keep going
          continue;
        }
        expected = received;  // shared channel: this pill is ours, stop
        break;
      }
      if (cx.spec.consume_compute) co_await t.compute(cx.spec.consume_compute);
      if (final_stage) {
        auto& tm = cx.tenants[static_cast<std::size_t>(tenant)];
        ++tm.delivered;
        tm.latency.record((eq.now() - msg.w[0]) & kTickMask);
        if (cx.spec.closed_loop) {
          const auto pid = static_cast<std::size_t>((msg.w[0] >> 48) & 0xff);
          co_await cx.acks[pid]->send1(t, 1);
        }
      } else {
        // Pipeline relay: preserve the stamp so latency stays end-to-end.
        relay.push_back(msg);
      }
      ++received;
    }
    if (!relay.empty()) {
      Stage& next = cx.stages[static_cast<std::size_t>(stage_idx) + 1];
      co_await next.channels.front()
          .ch->send_many(t, relay);  // relay the drained run as one batch
      next.channels.front().fed += relay.size();
    }
  }

  if (--st.workers_remaining == 0 && !final_stage) {
    // Last worker of this stage: all payload is already enqueued
    // downstream, so pills sent now arrive after it.
    Stage& next = cx.stages[static_cast<std::size_t>(stage_idx) + 1];
    for (auto& nc : next.channels)
      for (int k = 0; k < nc.workers; ++k)
        co_await nc.ch->send(t, cx.make_pill(nc.workers == 1 ? nc.fed : 0));
  }
  if (final_stage && --cx.consumers_remaining == 0) cx.all_done = true;
}

Co<void> coordinator(Ctx& cx, SimThread t) {
  co_await cx.producers_done;
  for (auto& sc : cx.stages.front().channels)
    for (int k = 0; k < sc.workers; ++k)
      co_await sc.ch->send(t, cx.make_pill(sc.workers == 1 ? sc.fed : 0));
}

Co<void> depth_sampler(Ctx& cx) {
  for (;;) {
    std::size_t i = 0;
    for (auto& st : cx.stages)
      for (auto& sc : st.channels) {
        auto& d = cx.depths[i++];
        d.depth.record(static_cast<double>(sc.ch->depth()));
        ++d.samples;
      }
    if (cx.all_done) break;
    co_await sim::Delay(cx.m.eq(), cx.spec.depth_sample_period);
  }
}

/// Register the run's timeline series: per-class cumulative traffic
/// counters (aggregated over the class's tenants exactly the way
/// ScenarioMetrics::by_class() does, so the final epoch equals the
/// end-of-run report), plus the kernel/device counters the QoS supervisor
/// watches. Closures read cx/machine state in place — call
/// Timeline::detach() before cx's metrics are moved out.
void register_series(obs::Timeline& tl, Ctx& cx, runtime::Machine& m,
                     squeue::ChannelFactory& f) {
  tl.add_series("eq.executed",
                [&m] { return static_cast<double>(m.eq().executed()); });
  tl.add_series("chan.depth", [&cx] {
    std::uint64_t d = 0;
    for (auto& st : cx.stages)
      for (auto& sc : st.channels) d += sc.ch->depth();
    return static_cast<double>(d);
  });
  tl.add_series("vlrd.push_quota_nacks", [&m] {
    return static_cast<double>(m.vlrd_stats().push_quota_nacks);
  });
  tl.add_series("vlrd.fetch_nacks", [&m] {
    return static_cast<double>(m.vlrd_stats().fetch_nacks);
  });
  if (f.backend() == squeue::Backend::kCaf) {
    squeue::CafDevice& dev = f.caf_device();
    for (std::size_t c = 0; c < kQosClasses; ++c) {
      const auto cls = static_cast<QosClass>(c);
      tl.add_series(std::string("caf.occupancy.") + to_string(cls),
                    [&dev, cls] {
                      return static_cast<double>(dev.class_occupancy(cls));
                    });
    }
  }

  bool present[kQosClasses] = {};
  for (const auto& t : cx.tenants) present[static_cast<std::size_t>(t.qos)] = true;
  for (std::size_t c = 0; c < kQosClasses; ++c) {
    if (!present[c]) continue;
    const auto cls = static_cast<QosClass>(c);
    const std::string base = std::string("class.") + to_string(cls) + ".";
    auto fold = [&cx, cls](auto&& view) {
      double acc = 0.0;
      for (const auto& t : cx.tenants)
        if (t.qos == cls) acc += view(t);
      return acc;
    };
    tl.add_series(base + "delivered", [fold] {
      return fold([](const TenantMetrics& t) {
        return static_cast<double>(t.delivered);
      });
    });
    tl.add_series(base + "sent", [fold] {
      return fold(
          [](const TenantMetrics& t) { return static_cast<double>(t.sent); });
    });
    tl.add_series(base + "blocked_ticks", [fold] {
      return fold([](const TenantMetrics& t) {
        return static_cast<double>(t.blocked_ticks);
      });
    });
    tl.add_series(base + "p99", [&cx, cls] {
      LogHistogram h;
      for (const auto& t : cx.tenants)
        if (t.qos == cls) h.merge(t.latency);
      return static_cast<double>(h.percentile(99));
    });
    tl.add_series(base + "slo_within", [&cx, cls] {
      // Cumulative in-SLO deliveries — the raw counter behind slo_att_pct.
      // The QoS supervisor differences consecutive epochs of this and of
      // `delivered` to get a *windowed* attainment, which reacts to the
      // current epoch instead of averaging over the whole run.
      std::uint64_t within = 0;
      for (const auto& t : cx.tenants)
        if (t.qos == cls && t.slo_p99) within += t.slo_within();
      return static_cast<double>(within);
    });
    tl.add_series(base + "slo_att_pct", [&cx, cls] {
      // ClassAgg::slo_attained_pct over the class's SLO-carrying tenants.
      std::uint64_t slo_delivered = 0, slo_within = 0;
      for (const auto& t : cx.tenants) {
        if (t.qos != cls || !t.slo_p99) continue;
        slo_delivered += t.delivered;
        slo_within += t.slo_within();
      }
      if (!slo_delivered) return 100.0;
      return 100.0 * static_cast<double>(slo_within) /
             static_cast<double>(slo_delivered);
    });
  }
}

/// Drive the queue to completion, sampling the timeline at every
/// `period`-tick boundary. Replays the exact event sequence m.run() would:
/// events step one at a time, boundary samples happen *between* events
/// (all events <= the boundary have fired, the next lies beyond it), and
/// now_ is never fast-forwarded past the last event — run_until() would
/// inflate the run's measured ticks when the queue drains mid-window.
void run_sampled(runtime::Machine& m, obs::Timeline& tl, Tick period,
                 const std::function<void()>& on_epoch = {}) {
  if (period == 0) period = 1;
  sim::EventQueue& eq = m.eq();
  Tick next = m.now() + period;
  for (;;) {
    const auto nt = eq.peek_next_tick();
    if (!nt) break;
    while (*nt > next) {
      tl.sample(next);
      // Epoch-boundary control (QoS supervisor): runs between events, so
      // knob writes are safe and consume no (tick, seq) numbers.
      if (on_epoch) on_epoch();
      next += period;
    }
    eq.step();
  }
}

}  // namespace

EngineResult Engine::run(const ScenarioSpec& raw, std::uint64_t seed,
                         int scale, const obs::RunHooks* obs) {
  const std::string err = validate(raw);
  if (!err.empty())
    throw std::invalid_argument("invalid scenario '" + raw.name + "': " + err);
  const ScenarioSpec spec = scaled(raw, scale);

  Ctx cx{m_, spec, f_.backend(), seed, {}, {}, {}, {}, 0, {}, 0, false};

  // Fault plane: armed before any actor is spawned, so its stall events
  // hold fixed positions in the deterministic (tick, seq) stream.
  std::unique_ptr<fault::FaultPlane> plane;
  if (!spec.faults.empty()) {
    plane = std::make_unique<fault::FaultPlane>(spec.faults, 1);
    plane->arm_machine(m_, 0);
    cx.fp = plane.get();
    cx.chan_faults = plane->mutates_channels() &&
                     (f_.backend() == squeue::Backend::kBlfq ||
                      f_.backend() == squeue::Backend::kZmq);
  }

  // --- replay / record / lifecycle hookup -----------------------------------
  // All wired before any actor spawns: the spawn site picks the producer
  // flavour, and the recorder must be live before the first send.
  cx.trace = spec.replay;
  if (cx.trace) {
    if (cx.trace->sharded)
      throw std::invalid_argument(
          "replay: trace '" + cx.trace->scenario +
          "' was recorded by the sharded engine; replay it via run_sharded");
    if (cx.trace->producers != static_cast<std::uint32_t>(spec.producers) ||
        cx.trace->tenants != spec.tenants.size())
      throw std::invalid_argument(
          "replay: trace shape (producers=" +
          std::to_string(cx.trace->producers) +
          ", tenants=" + std::to_string(cx.trace->tenants) +
          ") does not match scenario '" + spec.name + "' (producers=" +
          std::to_string(spec.producers) +
          ", tenants=" + std::to_string(spec.tenants.size()) + ")");
  }
  if (obs && obs->recorder) {
    cx.rec = obs->recorder;
    cx.rec->begin(spec.name, squeue::to_string(f_.backend()), seed,
                  static_cast<std::uint32_t>(spec.producers),
                  static_cast<std::uint32_t>(spec.tenants.size()),
                  /*sharded=*/false);
  }
  std::unique_ptr<replay::LifecyclePlane> lplane;
  if (!spec.lifecycle.empty()) {
    if (spec.lifecycle.has_reconfig() &&
        f_.backend() != squeue::Backend::kVl &&
        f_.backend() != squeue::Backend::kVlIdeal)
      throw std::invalid_argument(
          "lifecycle: reconfig@ is SQI re-registration — only the VL "
          "backends have a registration to drop; backend '" +
          std::string(squeue::to_string(f_.backend())) + "' does not");
    std::vector<std::string> names;
    for (const auto& t : spec.tenants) names.push_back(t.name);
    lplane = std::make_unique<replay::LifecyclePlane>(spec.lifecycle, names);
    cx.lp = lplane.get();
    // Quota re-carve at every churn boundary: recompute the per-class
    // carve over the classes still active, so hardware budgets track the
    // live tenant mix (runtime::size_quotas — the same arithmetic as the
    // static carve and the QoS supervisor, so nothing drifts).
    if (spec.qos && (f_.backend() == squeue::Backend::kVl ||
                     f_.backend() == squeue::Backend::kCaf)) {
      for (const Tick at : cx.lp->churn_boundaries()) {
        m_.eq().schedule_at(at, [this, &cx, &spec, at] {
          bool present[kQosClasses] = {};
          bool any = false;
          for (std::size_t ti = 0; ti < spec.tenants.size(); ++ti) {
            if (!cx.lp->tenant_active_at(static_cast<int>(ti), at)) continue;
            present[static_cast<std::size_t>(spec.tenants[ti].qos)] = true;
            any = true;
          }
          if (!any) return;  // everyone gone — leave the carve alone
          runtime::ChannelDemand d =
              channel_demand_for(spec, f_.backend(), m_.cfg());
          runtime::base_weights(d, present);
          const runtime::QuotaPlan plan = runtime::size_quotas(m_.cfg(), d);
          for (std::size_t c = 0; c < kQosClasses; ++c) {
            if (f_.backend() == squeue::Backend::kVl)
              m_.cluster().set_class_quota(static_cast<QosClass>(c),
                                           plan.vl_class_quota[c]);
            else
              f_.caf_device().set_class_credit(static_cast<QosClass>(c),
                                               plan.caf_class_credits[c]);
          }
          cx.lp->note_recarve();
        });
      }
    }
  }

  // --- wire the topology ----------------------------------------------------
  std::uint8_t frame = 1;
  for (const auto& t : spec.tenants)
    frame = std::max(frame, cx.payload_words(t));
  // A foreign trace may carry wider payloads than the spec. CAF stays at
  // its single-word frame: the replay producer clamps record widths to 1
  // there (see payload_words), so widening the channel would desynchronize
  // the fixed frame length from the messages actually sent.
  if (cx.trace && cx.backend != squeue::Backend::kCaf)
    for (const auto& r : cx.trace->records) frame = std::max(frame, r.words);

  const int nstages = spec.topology == Topology::kPipeline ? spec.stages : 1;
  for (int s = 0; s < nstages; ++s) {
    Stage st;
    const int nchan =
        (spec.topology == Topology::kFanOut || spec.topology == Topology::kMesh)
            ? spec.consumers
            : 1;
    const int workers_per_chan = nchan == 1 ? spec.consumers : 1;
    for (int c = 0; c < nchan; ++c) {
      StageChannel sc;
      sc.label = "s" + std::to_string(s) + "c" + std::to_string(c);
      sc.ch = f_.make(sc.label, spec.capacity_hint, frame);
      sc.workers = workers_per_chan;
      st.workers_remaining += workers_per_chan;
      st.channels.push_back(std::move(sc));
    }
    cx.stages.push_back(std::move(st));
  }
  for (auto& st : cx.stages)
    for (auto& sc : st.channels) {
      DepthSeries d;
      d.channel = sc.label;
      cx.depths.push_back(std::move(d));
    }

  if (spec.closed_loop)
    for (int p = 0; p < spec.producers; ++p)
      cx.acks.push_back(f_.make("ack" + std::to_string(p), 0, 1));

  for (const auto& t : spec.tenants) {
    TenantMetrics tm;
    tm.tenant = t.name;
    tm.qos = t.qos;
    tm.slo_p99 = t.slo_p99;
    cx.tenants.push_back(std::move(tm));
  }

  // --- spawn the actors -----------------------------------------------------
  const std::vector<int> split = tenant_producer_split(spec);
  cx.producers_remaining = 0;
  for (int n : split) cx.producers_remaining += n;
  cx.consumers_remaining = cx.stages.back().workers_remaining;

  CoreId core = 0;
  auto next_thread = [&] {
    const CoreId c = core;
    core = (core + 1) % m_.num_cores();
    return m_.thread_on(c);
  };

  int pid = 0;
  for (std::size_t ti = 0; ti < split.size(); ++ti)
    for (int k = 0; k < split[ti]; ++k) {
      if (cx.trace)
        sim::spawn(replay_producer(cx, next_thread(), static_cast<int>(ti),
                                   pid++));
      else
        sim::spawn(producer(cx, next_thread(), static_cast<int>(ti), pid++));
    }
  for (std::size_t s = 0; s < cx.stages.size(); ++s)
    for (std::size_t c = 0; c < cx.stages[s].channels.size(); ++c)
      for (int w = 0; w < cx.stages[s].channels[c].workers; ++w)
        sim::spawn(worker(cx, next_thread(), static_cast<int>(s),
                          static_cast<int>(c)));
  sim::spawn(coordinator(cx, next_thread()));
  sim::spawn(depth_sampler(cx));

  // --- observability hookup (zero-perturbation: see run_sampled) ------------
  // The supervisor consumes timeline cuts, so a supervised run without
  // caller-provided hooks still samples — into a private local timeline.
  const bool want_sup = spec.supervisor && spec.qos &&
                        (f_.backend() == squeue::Backend::kVl ||
                         f_.backend() == squeue::Backend::kCaf);
  obs::Timeline local_tl;
  obs::Timeline* tl = obs ? obs->timeline : nullptr;
  if (want_sup && !tl) tl = &local_tl;
  if (tl) register_series(*tl, cx, m_, f_);
  if (tl && cx.fp) cx.fp->register_series(*tl);

  std::unique_ptr<runtime::QosSupervisor> sup;
  if (want_sup) {
    bool present[kQosClasses] = {};
    for (const auto& t : spec.tenants)
      present[static_cast<std::size_t>(t.qos)] = true;
    sup = std::make_unique<runtime::QosSupervisor>(
        runtime::QosSupervisor::Config{}, present);
    sup->attach(m_.cfg(), channel_demand_for(spec, f_.backend(), m_.cfg()),
                f_.backend() == squeue::Backend::kVl ? &m_.cluster() : nullptr,
                f_.backend() == squeue::Backend::kCaf ? &f_.caf_device()
                                                      : nullptr);
    sup->register_series(*tl);
  }
  if (obs && obs->tracer) {
    m_.eq().set_trace(&obs->tracer->buffer(0));
    obs->tracer->set_process_name(0, "machine");
  }

  const Tick t0 = m_.now();
  const std::uint64_t ev0 = m_.eq().executed();
  if (tl) {
    // Control cadence when no external sampling is requested: 2500 ticks
    // keeps the supervisor's reaction time (a few epochs) well inside one
    // bulk burst dwell.
    const Tick period = obs ? obs->sample_every : Tick{2500};
    std::function<void()> on_epoch;
    if (sup) on_epoch = [&] { sup->on_epoch(*tl); };
    run_sampled(m_, *tl, period, on_epoch);
  } else {
    m_.run();
  }
  if (tl) {
    // Final cumulative sample: the last epoch's class series equal the
    // end-of-run ScenarioMetrics by construction (same aggregation, same
    // source counters). Then detach — the closures dangle once cx's
    // metrics move into the result.
    tl->sample(m_.now());
    tl->detach();
  }
  m_.eq().set_trace(nullptr);

  // --- collect --------------------------------------------------------------
  EngineResult r;
  r.scenario = spec.name;
  r.backend = squeue::to_string(f_.backend());
  r.seed = seed;
  r.scale = scale;
  r.events = m_.eq().executed() - ev0;
  r.metrics.tenants = std::move(cx.tenants);
  r.metrics.depths = std::move(cx.depths);
  r.metrics.ticks = m_.now() - t0;
  r.metrics.ns = m_.ns(r.metrics.ticks);
  r.device_stats = m_.statset();
  return r;
}

std::string EngineResult::csv() const {
  std::vector<std::string> header = {"scenario", "backend", "seed", "scale"};
  for (auto& col : ScenarioMetrics::csv_header()) header.push_back(col);
  CsvWriter w(header);
  for (auto& row : metrics.csv_rows()) {
    std::vector<std::string> full = {scenario, backend, std::to_string(seed),
                                     std::to_string(scale)};
    for (auto& cell : row) full.push_back(cell);
    w.row(std::move(full));
  }
  return w.str();
}

std::string EngineResult::table() const {
  return "scenario=" + scenario + " backend=" + backend +
         " seed=" + std::to_string(seed) + " scale=" + std::to_string(scale) +
         " ticks=" + std::to_string(metrics.ticks) + "\n" + metrics.table();
}

sim::SystemConfig machine_config_for(const ScenarioSpec& spec,
                                     squeue::Backend backend) {
  sim::SystemConfig cfg = squeue::config_for(backend);

  // Provision routing devices for wide fan-outs (paper § III-C2: address
  // bits J:N+1 spread virtual queues across VLRDs with zero shared state).
  // One device's prodBuf/consBuf/linkTab saturate around 4-8 heavily
  // consumed SQIs — beyond that, consumer arm-ahead registrations exceed
  // the consBuf and the fetch-retry traffic starves injection into a
  // livelock. Cap at 4 SQIs per device; queue descriptors round-robin
  // across devices, so consecutive channels land on distinct VLRDs.
  const int payload_sqis =
      (spec.topology == Topology::kFanOut || spec.topology == Topology::kMesh)
          ? spec.consumers
          : 1;
  if (backend == squeue::Backend::kVl && payload_sqis > 4)
    cfg.vlrd.num_devices = std::min<std::uint32_t>(
        (static_cast<std::uint32_t>(payload_sqis) + 3) / 4,
        1u << vlrd::kVlrdIdBits);

  // Summarize the channel graph into a ChannelDemand and let the one
  // sizing policy (runtime::size_quotas — shared with workloads::run and
  // the online QoS supervisor) carve the budgets. With the base integral
  // weights this reproduces the historic hand-carved tables bit-for-bit.
  const runtime::ChannelDemand d = channel_demand_for(spec, backend, cfg);
  const runtime::QuotaPlan plan = runtime::size_quotas(cfg, d);
  if (backend == squeue::Backend::kVl && d.relay_channels > 0)
    cfg.vlrd.per_sqi_quota = plan.per_sqi_quota;
  if (d.qos) {
    for (std::size_t c = 0; c < kQosClasses; ++c) {
      if (backend == squeue::Backend::kVl)
        cfg.vlrd.class_quota[c] = plan.vl_class_quota[c];
      else
        cfg.caf.class_credits[c] = plan.caf_class_credits[c];
    }
  }
  return cfg;
}

runtime::ChannelDemand channel_demand_for(const ScenarioSpec& spec,
                                          squeue::Backend backend,
                                          const sim::SystemConfig& cfg) {
  runtime::ChannelDemand d;

  // Relay cycles (pipeline stages, closed-loop acks) share one prodBuf
  // while consuming and producing at once — the § V starvation hazard. The
  // per-SQI quota keeps total demand below capacity so chains drain.
  const bool has_relay_cycle =
      spec.topology == Topology::kPipeline || spec.closed_loop;
  if (backend == squeue::Backend::kVl && has_relay_cycle) {
    std::uint32_t channels =
        spec.topology == Topology::kPipeline ? static_cast<std::uint32_t>(
                                                   std::max(spec.stages, 1))
        : (spec.topology == Topology::kFanOut ||
           spec.topology == Topology::kMesh)
            ? static_cast<std::uint32_t>(std::max(spec.consumers, 1))
            : 1u;
    if (spec.closed_loop)
      channels += static_cast<std::uint32_t>(std::max(spec.producers, 0));
    d.relay_channels = channels;
  }

  // QoS enforcement: partition the hardware enqueue budget (CAF per-queue
  // credits, VLRD prodBuf share) across the service classes the scenario
  // actually uses, proportionally to qos_weight(). The latency class ends
  // up with 4x the bulk class's share, so a bulk flood is NACKed (and its
  // producers parked) long before it can fill the queue ahead of latency
  // traffic. Classes no tenant uses get a token quota of 1 so stray
  // untagged messages (termination pills) still flow.
  //
  // CAF caps are per device queue, so the weighted split applies as-is
  // (payload_sqis stays 1). VLRD quotas are enforced per SQI but drawn
  // from the one shared prodBuf, so the split is further divided by the
  // number of payload channels (SQIs) the topology opens *per device* —
  // otherwise a class could hold quota x SQIs entries and crowd the shared
  // buffer anyway. (Closed-loop ack channels are not counted: their
  // occupancy is window-bounded and tiny next to payload flows.)
  if (spec.qos &&
      (backend == squeue::Backend::kVl || backend == squeue::Backend::kCaf)) {
    d.qos = true;
    bool present[kQosClasses] = {};
    for (const auto& t : spec.tenants)
      present[static_cast<std::size_t>(t.qos)] = true;
    runtime::base_weights(d, present);
    if (backend == squeue::Backend::kVl) {
      if (spec.topology == Topology::kPipeline)
        d.payload_sqis = static_cast<std::uint32_t>(std::max(spec.stages, 1));
      else if (spec.topology == Topology::kFanOut ||
               spec.topology == Topology::kMesh)
        d.payload_sqis =
            (static_cast<std::uint32_t>(std::max(spec.consumers, 1)) +
             cfg.vlrd.num_devices - 1) /
            cfg.vlrd.num_devices;
    }
  }
  return d;
}

EngineResult run_spec(const ScenarioSpec& spec, squeue::Backend backend,
                      std::uint64_t seed, int scale,
                      const obs::RunHooks* obs) {
  runtime::Machine m(machine_config_for(spec, backend));
  squeue::ChannelFactory f(m, backend);
  Engine eng(m, f);
  return eng.run(spec, seed, scale, obs);
}

EngineResult run_scenario(const std::string& name, squeue::Backend backend,
                          std::uint64_t seed, int scale,
                          const obs::RunHooks* obs) {
  const ScenarioSpec* spec = find_scenario(name);
  if (!spec) throw std::invalid_argument("unknown scenario: " + name);
  return run_spec(*spec, backend, seed, scale, obs);
}

ScenarioSpec with_batch(const ScenarioSpec& spec, std::uint32_t batch) {
  ScenarioSpec out = spec;
  for (auto& t : out.tenants) t.batch = batch;
  return out;
}

}  // namespace vl::traffic
