#pragma once
// Core-side model of the three VL ISA extensions (paper § III-B):
//
//   vl_select Rt     — translate + latch the PA of the cache line at VA Rt,
//                      bringing it into L1D in Exclusive state (like a store
//                      miss would). The latch is a system register, not
//                      context state: it clears on context switch.
//   vl_push Rs, Rt   — conditionally write the selected line to the VLRD
//                      device address in Rt. Rs=0 on success; nonzero when
//                      no selection was made or the VLRD NACKs (full).
//                      On success the producer line is zeroed and left
//                      Exclusive, ready for the next enqueue.
//   vl_fetch Rs, Rt  — register consumer demand: sets the "pushable" tag
//                      bit on the selected line and sends (target PA,
//                      core-id) to the VLRD. Rs=0 when the request was
//                      registered (or data is already on the way).
//
// Both vl_push and vl_fetch hold the core's issue port until the device
// response arrives, modelling the paper's guarantee that no context swap or
// interrupt can occur before Rs receives the result. Context switches clear
// the per-thread selection latch and all pushable bits in the core's L1.

#include <span>
#include <unordered_map>

#include "mem/hierarchy.hpp"
#include "sim/core.hpp"
#include "vlrd/addressing.hpp"
#include "vlrd/cluster.hpp"
#include "vlrd/vlrd.hpp"

namespace vl::isa {

/// vl_push / vl_fetch result codes (values written to Rs).
enum VlStatus : int {
  kVlOk = 0,
  kVlNoSelection = 1,  ///< No preceding vl_select (or cleared by ctx swap).
  kVlNack = 2,         ///< VLRD out of buffer capacity (back-pressure).
  kVlEvicted = 3,      ///< Selected line left the L1 before vl_fetch.
  kVlFault = 4,        ///< Device address missed the routing table
                       ///< (kAddrTable scheme only).
  kVlNackQuota = 5,    ///< VLRD NACK for a per-SQI / per-class quota rather
                       ///< than a full buffer: retrying is pointless until
                       ///< *this* SQI drains, so callers park on the SQI's
                       ///< wait queue instead of the global space futex.
};

class VlPort {
 public:
  VlPort(sim::Core& core, mem::Hierarchy& hier, vlrd::Cluster& devs,
         const sim::VlrdConfig& cfg);

  sim::Co<void> vl_select(int tid, Addr va);
  sim::Co<int> vl_push(int tid, Addr dev_va);
  sim::Co<int> vl_fetch(int tid, Addr dev_va);

  // Fused select+op pairs: the two instructions issue back-to-back in one
  // scheduling quantum (one port hold), the way a real thread executes
  // them. Issuing them as separate port transactions is also legal — but
  // when two endpoint threads time-share a core, the FIFO issue port then
  // interleaves their ops, and every context switch clears the selection
  // latch before the second instruction reads it: neither thread can ever
  // complete a pair (a livelock the paper's FIR discussion does not
  // intend — real timeslices span many instructions).
  sim::Co<int> vl_select_push(int tid, Addr va, Addr dev_va);
  sim::Co<int> vl_select_fetch(int tid, Addr va, Addr dev_va);

  // Burst forms (Channel API v2 batching): the select+op pair sequence for
  // a run of lines issues as one macro-op — one port hold, one bus transit,
  // one device arrival, one response. The device admits the run under a
  // single prodBuf/quota acquisition, NACKing at the first line that does
  // not fit; `*accepted` / `*registered` receive the length of the admitted
  // prefix. The per-line work that carries the paper's cost model — cache
  // fills of each selected line, per-line device buffer occupancy — is
  // unchanged; only the per-message instruction/transit overhead amortizes.
  sim::Co<int> vl_select_push_burst(int tid, std::span<const Addr> vas,
                                    Addr dev_va, std::size_t* accepted);
  sim::Co<int> vl_select_fetch_burst(int tid, std::span<const Addr> vas,
                                     Addr dev_va, std::size_t* registered);

  /// True if `tid` currently holds a selection (test helper).
  bool has_selection(int tid) const { return latched_.count(tid) != 0; }

 private:
  /// vl_push tail: the port is already held and `line` latched.
  sim::Co<int> push_selected(Addr line, Addr dev_va);
  /// vl_fetch tail: the port is already held and `line` latched.
  sim::Co<int> fetch_selected(Addr line, Addr dev_va);

  sim::Core& core_;
  mem::Hierarchy& hier_;
  vlrd::Cluster& devs_;  ///< Routed per-access by the VA's VLRD-id bits.
  sim::VlrdConfig cfg_;
  std::unordered_map<int, Addr> latched_;  ///< tid -> selected line PA.
};

}  // namespace vl::isa
