#include "isa/vl_port.hpp"

namespace vl::isa {

VlPort::VlPort(sim::Core& core, mem::Hierarchy& hier, vlrd::Cluster& devs,
               const sim::VlrdConfig& cfg)
    : core_(core), hier_(hier), devs_(devs), cfg_(cfg) {
  // On context swap the latched PA is cleared (§ III-B) and every pushable
  // bit in this core's private cache drops, so in-flight injections
  // targeting the outgoing thread are rejected rather than clobbering state.
  core_.add_ctx_switch_hook([this](int old_tid, int /*new_tid*/) {
    latched_.erase(old_tid);
    hier_.clear_pushable(core_.id());
  });
}

sim::Co<void> VlPort::vl_select(int tid, Addr va) {
  co_await core_.acquire_port(tid);
  co_await sim::Delay(core_.eq(), core_.cfg().issue_cost);
  // Brings the line into L1D in an exclusive state, "just as any store
  // would" — a miss pays the normal fill latency.
  const Tick lat = hier_.select_line(core_.id(), line_of(va));
  co_await sim::Delay(core_.eq(), lat);
  latched_[tid] = line_of(va);
  core_.release_port();
}

sim::Co<int> VlPort::vl_push(int tid, Addr dev_va) {
  co_await core_.acquire_port(tid);
  co_await sim::Delay(core_.eq(), core_.cfg().issue_cost);
  auto it = latched_.find(tid);
  if (it == latched_.end()) {
    core_.release_port();
    co_return kVlNoSelection;
  }
  const Addr line = it->second;
  latched_.erase(it);  // selection ends on completion either way
  const int rc = co_await push_selected(line, dev_va);
  core_.release_port();
  co_return rc;
}

sim::Co<int> VlPort::vl_select_push(int tid, Addr va, Addr dev_va) {
  co_await core_.acquire_port(tid);
  co_await sim::Delay(core_.eq(), core_.cfg().issue_cost);
  latched_.erase(tid);  // the select overwrites any earlier latch
  const Tick lat = hier_.select_line(core_.id(), line_of(va));
  co_await sim::Delay(core_.eq(), lat);
  co_await sim::Delay(core_.eq(), core_.cfg().issue_cost);
  const int rc = co_await push_selected(line_of(va), dev_va);
  core_.release_port();
  co_return rc;
}

sim::Co<int> VlPort::push_selected(Addr line, Addr dev_va) {
  mem::Line data;
  hier_.peek_line(line, data.data());
  // Resolve the endpoint address; the CAM scheme costs one extra pipeline
  // cycle per access and can fault on an unmapped page (§ III-C2).
  if (cfg_.addressing == sim::Addressing::kAddrTable)
    co_await sim::Delay(core_.eq(), cfg_.addr_table_extra);
  const auto res = devs_.resolve(dev_va);
  if (!res) co_return kVlFault;
  vlrd::Vlrd& dev = *res->first;
  const Sqi sqi = res->second;

  bool ack;
  vlrd::Vlrd::PushNack nack = vlrd::Vlrd::PushNack::kNone;
  if (cfg_.ideal) {
    ack = dev.push(sqi, data);  // zero-latency reference model
  } else {
    // Non-snooping device write: one bus hop out, bounded device response.
    const Tick arrive = hier_.device_hop(0);
    co_await sim::DelayUntil(core_.eq(), arrive);
    ack = dev.push(sqi, data);
    // Latch the NACK reason before suspending for the response delay —
    // another core's push to the same device lands in that window and
    // overwrites the device-side status.
    if (!ack) nack = dev.last_push_nack();
    const Tick resp = cfg_.device_lat > hier_.cfg().bus_hop
                          ? cfg_.device_lat - hier_.cfg().bus_hop
                          : 0;
    co_await sim::Delay(core_.eq(), resp);
  }

  if (ack) {
    // Copy-over leaves the producer line zeroed and Exclusive, ready for
    // the next enqueue without any further coherence traffic.
    hier_.zero_and_exclusive(core_.id(), line);
    co_return kVlOk;
  }
  co_return nack == vlrd::Vlrd::PushNack::kQuota ? kVlNackQuota : kVlNack;
}

sim::Co<int> VlPort::vl_select_push_burst(int tid, std::span<const Addr> vas,
                                          Addr dev_va,
                                          std::size_t* accepted) {
  *accepted = 0;
  if (vas.empty()) co_return kVlOk;
  co_await core_.acquire_port(tid);
  co_await sim::Delay(core_.eq(), core_.cfg().issue_cost);
  latched_.erase(tid);  // burst completion leaves no latched selection
  // Select every line of the run: each fill into Exclusive is real cache
  // work and is paid per line, burst or not.
  for (const Addr va : vas) {
    const Tick lat = hier_.select_line(core_.id(), line_of(va));
    co_await sim::Delay(core_.eq(), lat);
  }
  co_await sim::Delay(core_.eq(), core_.cfg().issue_cost);
  if (cfg_.addressing == sim::Addressing::kAddrTable)
    co_await sim::Delay(core_.eq(), cfg_.addr_table_extra);
  const auto res = devs_.resolve(dev_va);
  if (!res) {
    core_.release_port();
    co_return kVlFault;
  }
  vlrd::Vlrd& dev = *res->first;
  const Sqi sqi = res->second;

  vlrd::Vlrd::PushNack nack = vlrd::Vlrd::PushNack::kNone;
  if (!cfg_.ideal) {
    // One bus transit for the whole run — the burst's amortization.
    const Tick arrive = hier_.device_hop(0);
    co_await sim::DelayUntil(core_.eq(), arrive);
  }
  for (const Addr va : vas) {
    mem::Line data;
    hier_.peek_line(line_of(va), data.data());
    if (!dev.push(sqi, data)) {
      nack = dev.last_push_nack();
      break;
    }
    // Copy-over leaves the producer line zeroed and Exclusive, ready for
    // the next enqueue without any further coherence traffic.
    hier_.zero_and_exclusive(core_.id(), line_of(va));
    ++*accepted;
  }
  if (!cfg_.ideal) {
    const Tick resp = cfg_.device_lat > hier_.cfg().bus_hop
                          ? cfg_.device_lat - hier_.cfg().bus_hop
                          : 0;
    co_await sim::Delay(core_.eq(), resp);
  }
  core_.release_port();
  if (*accepted == vas.size()) co_return kVlOk;
  co_return nack == vlrd::Vlrd::PushNack::kQuota ? kVlNackQuota : kVlNack;
}

sim::Co<int> VlPort::vl_select_fetch_burst(int tid, std::span<const Addr> vas,
                                           Addr dev_va,
                                           std::size_t* registered) {
  *registered = 0;
  if (vas.empty()) co_return kVlOk;
  co_await core_.acquire_port(tid);
  co_await sim::Delay(core_.eq(), core_.cfg().issue_cost);
  latched_.erase(tid);
  for (const Addr va : vas) {
    const Tick lat = hier_.select_line(core_.id(), line_of(va));
    co_await sim::Delay(core_.eq(), lat);
  }
  co_await sim::Delay(core_.eq(), core_.cfg().issue_cost);
  if (cfg_.addressing == sim::Addressing::kAddrTable)
    co_await sim::Delay(core_.eq(), cfg_.addr_table_extra);
  const auto res = devs_.resolve(dev_va);
  if (!res) {
    core_.release_port();
    co_return kVlFault;
  }
  vlrd::Vlrd& dev = *res->first;
  const Sqi sqi = res->second;

  if (!cfg_.ideal) {
    const Tick arrive = hier_.device_hop(0);
    co_await sim::DelayUntil(core_.eq(), arrive);
  }
  // Register demand in line order, stopping at the first refusal so the
  // device's request FIFO stays a contiguous ring-order prefix (injections
  // must land in the order the consumer's polls visit the lines).
  int rc = kVlOk;
  for (const Addr va : vas) {
    const Addr line = line_of(va);
    if (!hier_.set_pushable(core_.id(), line, true)) {
      rc = kVlEvicted;  // line left the cache since its select
      break;
    }
    if (!dev.fetch(sqi, line, core_.id())) {
      hier_.set_pushable(core_.id(), line, false);
      rc = kVlNack;  // consBuf full
      break;
    }
    ++*registered;
  }
  if (!cfg_.ideal) {
    const Tick resp = cfg_.device_lat > hier_.cfg().bus_hop
                          ? cfg_.device_lat - hier_.cfg().bus_hop
                          : 0;
    co_await sim::Delay(core_.eq(), resp);
  }
  core_.release_port();
  co_return *registered == vas.size() ? kVlOk : rc;
}

sim::Co<int> VlPort::vl_fetch(int tid, Addr dev_va) {
  co_await core_.acquire_port(tid);
  co_await sim::Delay(core_.eq(), core_.cfg().issue_cost);
  auto it = latched_.find(tid);
  if (it == latched_.end()) {
    core_.release_port();
    co_return kVlNoSelection;
  }
  const Addr line = it->second;
  latched_.erase(it);
  const int rc = co_await fetch_selected(line, dev_va);
  core_.release_port();
  co_return rc;
}

sim::Co<int> VlPort::vl_select_fetch(int tid, Addr va, Addr dev_va) {
  co_await core_.acquire_port(tid);
  co_await sim::Delay(core_.eq(), core_.cfg().issue_cost);
  latched_.erase(tid);  // the select overwrites any earlier latch
  const Tick lat = hier_.select_line(core_.id(), line_of(va));
  co_await sim::Delay(core_.eq(), lat);
  co_await sim::Delay(core_.eq(), core_.cfg().issue_cost);
  const int rc = co_await fetch_selected(line_of(va), dev_va);
  core_.release_port();
  co_return rc;
}

sim::Co<int> VlPort::fetch_selected(Addr line, Addr dev_va) {
  if (!hier_.set_pushable(core_.id(), line, true))
    co_return kVlEvicted;  // line left the cache since vl_select
  if (cfg_.addressing == sim::Addressing::kAddrTable)
    co_await sim::Delay(core_.eq(), cfg_.addr_table_extra);
  const auto res = devs_.resolve(dev_va);
  if (!res) {
    hier_.set_pushable(core_.id(), line, false);
    co_return kVlFault;
  }
  vlrd::Vlrd& dev = *res->first;
  const Sqi sqi = res->second;

  bool ack;
  if (cfg_.ideal) {
    ack = dev.fetch(sqi, line, core_.id());
  } else {
    const Tick arrive = hier_.device_hop(0);
    co_await sim::DelayUntil(core_.eq(), arrive);
    ack = dev.fetch(sqi, line, core_.id());
    const Tick resp = cfg_.device_lat > hier_.cfg().bus_hop
                          ? cfg_.device_lat - hier_.cfg().bus_hop
                          : 0;
    co_await sim::Delay(core_.eq(), resp);
  }

  if (!ack) hier_.set_pushable(core_.id(), line, false);
  co_return ack ? kVlOk : kVlNack;
}

}  // namespace vl::isa
