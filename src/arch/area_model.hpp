#pragma once
// Analytical VLRD area estimation (paper § IV-B "Area estimation").
//
// The authors synthesized RTL with Synopsys DC on FreePDK45 and scaled to
// 16 nm with Stillmaker & Baas's equations, reporting:
//   buffers 0.142 mm^2, total (with control logic) 0.155 mm^2,
//   ~13% of one Arm A-72 core (1.15 mm^2 @ 16FF), <1% of a 16-core SoC
//   (~18.4 mm^2 excluding L2 and wires).
// We cannot synthesize here, so this model counts the storage bits of each
// VLRD structure exactly as laid out in § III-A and applies an effective
// area-per-bit coefficient (multi-ported SRAM incl. periphery/routing)
// calibrated so the Table III configuration lands on the published buffer
// area; the control-logic adder is the published delta. The value of the
// model is the *scaling*: how area moves with buffer depth/width for the
// ablation sweeps, with the paper's numbers as the anchor point.

#include <cstdint>

#include "sim/config.hpp"

namespace vl::arch {

struct AreaBreakdown {
  std::uint64_t prod_buf_bits = 0;
  std::uint64_t cons_buf_bits = 0;
  std::uint64_t link_tab_bits = 0;
  std::uint64_t total_bits = 0;
  double buffers_mm2 = 0.0;
  double control_mm2 = 0.0;
  double total_mm2 = 0.0;
  double pct_of_a72 = 0.0;       ///< vs one Arm A-72 @ 16FF.
  double pct_of_16core = 0.0;    ///< vs a 16 x A-72 SoC (cores only).
};

class AreaModel {
 public:
  // Published anchors.
  static constexpr double kA72CoreMm2 = 1.15;       // [43] in the paper
  static constexpr double kPaperBufferMm2 = 0.142;  // § IV-B
  static constexpr double kPaperTotalMm2 = 0.155;

  // Field widths from § III-A / Fig. 7 (Table III geometry: 64 entries).
  static constexpr unsigned kAddrBits = 48;   // consTgt physical address
  static constexpr unsigned kCoreIdBits = 8;

  explicit AreaModel(const sim::VlrdConfig& cfg) : cfg_(cfg) {}

  AreaBreakdown estimate() const;

  /// Effective mm^2 per storage bit at 16 nm, calibrated so the Table III
  /// VLRD's buffers land on the published 0.142 mm^2.
  static double calibrated_mm2_per_bit();

 private:
  std::uint64_t prod_entry_bits() const;
  std::uint64_t cons_entry_bits() const;
  std::uint64_t link_entry_bits() const;
  unsigned index_bits() const;  // width of a buffer index

  sim::VlrdConfig cfg_;
};

}  // namespace vl::arch
