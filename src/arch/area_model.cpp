#include "arch/area_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace vl::arch {

unsigned AreaModel::index_bits() const {
  const std::uint32_t n =
      std::max({cfg_.prod_entries, cfg_.cons_entries, cfg_.link_entries});
  return std::max(1u, static_cast<unsigned>(std::bit_width(n - 1)));
}

std::uint64_t AreaModel::prod_entry_bits() const {
  // IN: valid + SQI + 64 B data + nextIn; LINK: nextL;
  // OUT: out_valid + consTgt + core + mapped + nextOut.
  const unsigned idx = index_bits();
  const unsigned sqi = static_cast<unsigned>(
      std::max(1u, static_cast<unsigned>(std::bit_width(cfg_.link_entries - 1))));
  return 1 + sqi + 512 + idx   // IN
         + idx                 // LINK
         + 1 + kAddrBits + kCoreIdBits + idx + idx;  // OUT
}

std::uint64_t AreaModel::cons_entry_bits() const {
  const unsigned idx = index_bits();
  const unsigned sqi = static_cast<unsigned>(
      std::max(1u, static_cast<unsigned>(std::bit_width(cfg_.link_entries - 1))));
  return 1 + sqi + kAddrBits + kCoreIdBits + idx + idx;  // valid..nextIn
}

std::uint64_t AreaModel::link_entry_bits() const {
  return 4ull * index_bits();  // prodHead/prodTail/consHead/consTail
}

double AreaModel::calibrated_mm2_per_bit() {
  // Bits of the Table III configuration (computed once with this model's
  // own layout so calibration and estimation stay consistent).
  static const double per_bit = [] {
    AreaModel anchor{sim::VlrdConfig{}};
    const AreaBreakdown raw = [&] {
      AreaBreakdown b;
      b.prod_buf_bits = anchor.prod_entry_bits() * anchor.cfg_.prod_entries;
      b.cons_buf_bits = anchor.cons_entry_bits() * anchor.cfg_.cons_entries;
      b.link_tab_bits = anchor.link_entry_bits() * anchor.cfg_.link_entries;
      b.total_bits = b.prod_buf_bits + b.cons_buf_bits + b.link_tab_bits;
      return b;
    }();
    return kPaperBufferMm2 / static_cast<double>(raw.total_bits);
  }();
  return per_bit;
}

AreaBreakdown AreaModel::estimate() const {
  AreaBreakdown b;
  b.prod_buf_bits = prod_entry_bits() * cfg_.prod_entries;
  b.cons_buf_bits = cons_entry_bits() * cfg_.cons_entries;
  b.link_tab_bits = link_entry_bits() * cfg_.link_entries;
  b.total_bits = b.prod_buf_bits + b.cons_buf_bits + b.link_tab_bits;

  b.buffers_mm2 = static_cast<double>(b.total_bits) * calibrated_mm2_per_bit();
  // Control logic: the published delta, held constant (pipeline control does
  // not grow with buffer depth to first order).
  b.control_mm2 = kPaperTotalMm2 - kPaperBufferMm2;
  b.total_mm2 = b.buffers_mm2 + b.control_mm2;
  b.pct_of_a72 = 100.0 * b.total_mm2 / kA72CoreMm2;
  b.pct_of_16core = 100.0 * b.total_mm2 / (16.0 * kA72CoreMm2);
  return b;
}

}  // namespace vl::arch
