#pragma once
// Cache-line padded wrappers: the first rule of scalable shared state is
// that unrelated hot variables never share a 64 B line.

#include <atomic>
#include <cstddef>
#include <new>

namespace vl::native {

inline constexpr std::size_t kCacheLine = 64;

template <class T>
struct alignas(kCacheLine) Padded {
  T value{};
  char pad[kCacheLine - (sizeof(T) % kCacheLine ? sizeof(T) % kCacheLine
                                                : kCacheLine)];
};

template <class T>
struct alignas(kCacheLine) PaddedAtomic {
  std::atomic<T> value{};
  char pad[kCacheLine - (sizeof(std::atomic<T>) % kCacheLine
                             ? sizeof(std::atomic<T>) % kCacheLine
                             : kCacheLine)];
};

static_assert(sizeof(PaddedAtomic<std::uint64_t>) == kCacheLine);

}  // namespace vl::native
