#pragma once
// Bounded lock-free MPMC queue for real host threads (Vyukov's algorithm),
// the native stand-in for Boost.Lockfree's queue in the Fig. 1/Fig. 4
// reproductions: producers contend on one shared tail counter with CAS,
// consumers on one shared head counter — the shared-state pattern whose
// coherence cost the paper measures.
//
// Guarantees: MPMC-safe, per-producer FIFO, no allocation after
// construction, wait-free fast path when uncontended.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "native/padded.hpp"

namespace vl::native {

template <class T>
class MpmcQueue {
 public:
  /// capacity must be a power of two >= 2.
  explicit MpmcQueue(std::size_t capacity)
      : mask_(capacity - 1), cells_(new Cell[capacity]) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    for (std::size_t i = 0; i < capacity; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Non-blocking push; false when the queue is full.
  bool try_push(T v) {
    std::uint64_t pos = tail_.value.load(std::memory_order_relaxed);
    for (;;) {
      Cell& c = cells_[pos & mask_];
      const std::uint64_t seq = c.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq - pos);
      if (dif == 0) {
        if (tail_.value.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
          c.value = std::move(v);
          c.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = tail_.value.load(std::memory_order_relaxed);
      }
    }
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::uint64_t pos = head_.value.load(std::memory_order_relaxed);
    for (;;) {
      Cell& c = cells_[pos & mask_];
      const std::uint64_t seq = c.seq.load(std::memory_order_acquire);
      const auto dif = static_cast<std::int64_t>(seq - (pos + 1));
      if (dif == 0) {
        if (head_.value.compare_exchange_weak(pos, pos + 1,
                                              std::memory_order_relaxed)) {
          T out = std::move(c.value);
          c.seq.store(pos + mask_ + 1, std::memory_order_release);
          return out;
        }
      } else if (dif < 0) {
        return std::nullopt;  // empty
      } else {
        pos = head_.value.load(std::memory_order_relaxed);
      }
    }
  }

  /// Blocking push (spins).
  void push(T v) {
    while (!try_push(std::move(v))) cpu_relax();
  }

  /// Blocking pop (spins).
  T pop() {
    for (;;) {
      if (auto v = try_pop()) return std::move(*v);
      cpu_relax();
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Approximate occupancy (racy; diagnostics only).
  std::size_t size_approx() const {
    const std::uint64_t t = tail_.value.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.value.load(std::memory_order_relaxed);
    return t >= h ? static_cast<std::size_t>(t - h) : 0;
  }

  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
  }

 private:
  struct alignas(kCacheLine) Cell {
    std::atomic<std::uint64_t> seq;
    T value;
  };

  std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  PaddedAtomic<std::uint64_t> tail_;  ///< The shared producer hot word.
  PaddedAtomic<std::uint64_t> head_;  ///< The shared consumer hot word.
};

}  // namespace vl::native
