#include "native/lockhammer.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "native/locks.hpp"

namespace vl::native {

const char* to_string(LockKind k) {
  switch (k) {
    case LockKind::kCas: return "cas_lock";
    case LockKind::kSpin: return "spin_lock";
    case LockKind::kTicket: return "ticket_lock";
    case LockKind::kMcs: return "mcs_lock";
  }
  return "?";
}

namespace {

void spin_work(std::uint64_t n) {
  for (volatile std::uint64_t i = 0; i < n; ++i) {
  }
}

template <class Lock>
LockhammerResult hammer(LockKind kind, int threads,
                        std::uint64_t ops_per_thread, std::uint64_t hold,
                        std::uint64_t post) {
  Lock lock;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  pool.reserve(threads);

  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) CasLock::cpu_relax();
      for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
        lock.lock();
        spin_work(hold);
        lock.unlock();
        spin_work(post);
      }
    });
  }
  while (ready.load() != threads) CasLock::cpu_relax();

  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  LockhammerResult r;
  r.kind = kind;
  r.threads = threads;
  r.total_ops = ops_per_thread * static_cast<std::uint64_t>(threads);
  const double ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count();
  r.ns_per_op = ns / static_cast<double>(r.total_ops);
  return r;
}

}  // namespace

LockhammerResult run_lockhammer(LockKind kind, int threads,
                                std::uint64_t ops_per_thread,
                                std::uint64_t hold_spins,
                                std::uint64_t post_spins) {
  switch (kind) {
    case LockKind::kCas:
      return hammer<CasLock>(kind, threads, ops_per_thread, hold_spins,
                             post_spins);
    case LockKind::kSpin:
      return hammer<SpinLock>(kind, threads, ops_per_thread, hold_spins,
                              post_spins);
    case LockKind::kTicket:
      return hammer<TicketLock>(kind, threads, ops_per_thread, hold_spins,
                                post_spins);
    case LockKind::kMcs:
      return hammer<McsLock>(kind, threads, ops_per_thread, hold_spins,
                             post_spins);
  }
  return {};
}

}  // namespace vl::native
