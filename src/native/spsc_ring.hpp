#pragma once
// Wait-free single-producer/single-consumer ring with cached index copies
// (each side re-reads the other's index only when its cached copy says the
// ring looks full/empty — the standard trick that keeps the hot path free
// of cross-core traffic). The native analogue of one VL 1:1 channel.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>

#include "native/padded.hpp"

namespace vl::native {

template <class T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : mask_(capacity - 1), buf_(new T[capacity]) {
    assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  bool try_push(T v) {
    const std::uint64_t t = tail_.value.load(std::memory_order_relaxed);
    if (t - head_cache_ > mask_) {
      head_cache_ = head_.value.load(std::memory_order_acquire);
      if (t - head_cache_ > mask_) return false;  // really full
    }
    buf_[t & mask_] = std::move(v);
    tail_.value.store(t + 1, std::memory_order_release);
    return true;
  }

  std::optional<T> try_pop() {
    const std::uint64_t h = head_.value.load(std::memory_order_relaxed);
    if (h == tail_cache_) {
      tail_cache_ = tail_.value.load(std::memory_order_acquire);
      if (h == tail_cache_) return std::nullopt;  // really empty
    }
    T out = std::move(buf_[h & mask_]);
    head_.value.store(h + 1, std::memory_order_release);
    return out;
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::size_t mask_;
  std::unique_ptr<T[]> buf_;
  PaddedAtomic<std::uint64_t> head_;
  PaddedAtomic<std::uint64_t> tail_;
  // Single-threaded cached copies (one per side, so no sharing).
  alignas(kCacheLine) std::uint64_t head_cache_ = 0;
  alignas(kCacheLine) std::uint64_t tail_cache_ = 0;
};

}  // namespace vl::native
