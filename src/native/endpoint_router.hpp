#pragma once
// Software analogue of the Virtual-Link architecture for real host threads.
//
// The paper's structural insight is that M:N queue *state* need not be
// shared: give every producer and every consumer a private endpoint, and
// let a routing device match them. On stock hardware there is no VLRD, but
// the topology can be emulated: each endpoint is a wait-free SPSC ring
// whose far side is a router thread — producers push into their own ring,
// the router moves messages into consumer rings, consumers pop from their
// own ring. No producer or consumer ever CASes a word another producer or
// consumer touches; the cost is the router hop (a store-load through two
// rings) instead of VL's in-interconnect copy-over.
//
// This is the "EndpointRouter" series the extended Fig. 1 bench plots next
// to the shared-state Vyukov MPMC: as producers are added, the MPMC's tail
// CAS degrades while the router's per-producer rings stay flat until the
// router thread itself saturates — the same asymptote VL's hardware router
// removes.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "native/spsc_ring.hpp"

namespace vl::native {

template <class T>
class EndpointRouter {
 public:
  /// All endpoints must be created before start(). `ring_capacity` is the
  /// per-endpoint buffer (power of two).
  explicit EndpointRouter(std::size_t ring_capacity = 256)
      : cap_(ring_capacity) {}

  ~EndpointRouter() { stop(); }
  EndpointRouter(const EndpointRouter&) = delete;
  EndpointRouter& operator=(const EndpointRouter&) = delete;

  /// A producer's private endpoint. try_push fails (back-pressure) when the
  /// endpoint ring is full — the router is draining too slowly.
  class Producer {
   public:
    bool try_push(T v) { return ring_.try_push(std::move(v)); }
    void push(T v) {
      while (!try_push(v)) cpu_relax();
    }

   private:
    friend class EndpointRouter;
    explicit Producer(std::size_t cap) : ring_(cap) {}
    SpscRing<T> ring_;
  };

  /// A consumer's private endpoint.
  class Consumer {
   public:
    std::optional<T> try_pop() { return ring_.try_pop(); }
    T pop() {
      for (;;) {
        if (auto v = try_pop()) return std::move(*v);
        cpu_relax();
      }
    }

   private:
    friend class EndpointRouter;
    explicit Consumer(std::size_t cap) : ring_(cap) {}
    SpscRing<T> ring_;
  };

  Producer& add_producer() {
    producers_.push_back(std::unique_ptr<Producer>(new Producer(cap_)));
    return *producers_.back();
  }
  Consumer& add_consumer() {
    consumers_.push_back(std::unique_ptr<Consumer>(new Consumer(cap_)));
    return *consumers_.back();
  }

  /// Launch the router thread (the software VLRD). Requires at least one
  /// consumer endpoint; producers/consumers must not be added afterwards.
  void start() {
    assert(!consumers_.empty() && "router needs a consumer to place into");
    running_.store(true, std::memory_order_release);
    router_ = std::thread([this] { route(); });
  }

  /// Drain-and-stop: the router keeps forwarding until every producer ring
  /// is empty, then exits.
  void stop() {
    if (!router_.joinable()) return;
    running_.store(false, std::memory_order_release);
    router_.join();
  }

  std::uint64_t routed() const {
    return routed_.load(std::memory_order_relaxed);
  }

 private:
  static void cpu_relax() {
#if defined(__x86_64__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::this_thread::yield();
#endif
  }

  void route() {
    std::size_t next_consumer = 0;
    std::uint64_t local_routed = 0;
    // A message popped from a producer but not yet placed (all consumer
    // rings full) is carried here so nothing is dropped.
    std::optional<T> carry;
    for (;;) {
      bool moved = false;
      for (auto& p : producers_) {
        if (!carry) {
          carry = p->ring_.try_pop();
          if (!carry) continue;
        }
        // Round-robin placement, skipping full consumer rings.
        for (std::size_t k = 0; k < consumers_.size(); ++k) {
          auto& c = consumers_[(next_consumer + k) % consumers_.size()];
          if (c->ring_.try_push(std::move(*carry))) {
            next_consumer = (next_consumer + k + 1) % consumers_.size();
            carry.reset();
            ++local_routed;
            moved = true;
            break;
          }
        }
        if (carry) break;  // every consumer full: stall on this message
      }
      if (!moved) {
        if (!running_.load(std::memory_order_acquire) && !carry &&
            all_drained())
          break;
        routed_.store(local_routed, std::memory_order_relaxed);
        cpu_relax();
      }
    }
    routed_.store(local_routed, std::memory_order_relaxed);
  }

  bool all_drained() {
    for (auto& p : producers_)
      if (auto v = p->ring_.try_pop()) {
        // Rare race: a producer pushed right at shutdown; don't lose it.
        for (;;) {
          auto& c = consumers_[0];
          if (c->ring_.try_push(std::move(*v))) break;
          cpu_relax();
        }
        return false;
      }
    return true;
  }

  std::size_t cap_;
  std::vector<std::unique_ptr<Producer>> producers_;
  std::vector<std::unique_ptr<Consumer>> consumers_;
  std::thread router_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> routed_{0};
};

}  // namespace vl::native
