#pragma once
// The three lock flavours the paper's Fig. 2 sweeps with lockhammer:
// a bare CAS lock, a test-and-test-and-set spin lock, and a ticket lock.
// All satisfy BasicLockable so they compose with std::lock_guard.

#include <atomic>
#include <cstdint>

#include "native/padded.hpp"

namespace vl::native {

/// CAS(0 -> 1) retry loop; every attempt is an RFO on the lock line.
class CasLock {
 public:
  void lock() {
    std::uint32_t expected = 0;
    while (!state_.value.compare_exchange_weak(expected, 1,
                                               std::memory_order_acquire,
                                               std::memory_order_relaxed)) {
      expected = 0;
      cpu_relax();
    }
  }
  bool try_lock() {
    std::uint32_t expected = 0;
    return state_.value.compare_exchange_strong(expected, 1,
                                                std::memory_order_acquire);
  }
  void unlock() { state_.value.store(0, std::memory_order_release); }

  static void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
  }

 private:
  PaddedAtomic<std::uint32_t> state_;
};

/// Test-and-test-and-set: spin locally on a Shared copy before retrying
/// the exchange, cutting the invalidate storm relative to CasLock.
class SpinLock {
 public:
  void lock() {
    for (;;) {
      if (!state_.value.exchange(1, std::memory_order_acquire)) return;
      while (state_.value.load(std::memory_order_relaxed)) CasLock::cpu_relax();
    }
  }
  bool try_lock() {
    return !state_.value.exchange(1, std::memory_order_acquire);
  }
  void unlock() { state_.value.store(0, std::memory_order_release); }

 private:
  PaddedAtomic<std::uint32_t> state_;
};

/// FIFO ticket lock; next/serving share a line (the classic layout whose
/// bouncing Fig. 3 illustrates).
class TicketLock {
 public:
  void lock() {
    const std::uint32_t ticket =
        next_.fetch_add(1, std::memory_order_relaxed);
    while (serving_.load(std::memory_order_acquire) != ticket)
      CasLock::cpu_relax();
  }
  void unlock() {
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_release);
  }

 private:
  alignas(kCacheLine) std::atomic<std::uint32_t> next_{0};
  std::atomic<std::uint32_t> serving_{0};  // same line as next_: intended
};

/// MCS queue lock (extension, mirrors the simulated SimMcsLock): each
/// waiter enqueues a node with one exchange on the tail and spins on its
/// *own* cache line, so contention adds no shared-line traffic. Nodes are
/// thread_local, so lock() and unlock() must be called by the same thread
/// (which BasicLockable use implies anyway), and a thread may hold at most
/// one McsLock at a time (the node is shared across instances).
class McsLock {
 public:
  void lock() {
    Node& me = node();
    me.locked.store(true, std::memory_order_relaxed);
    me.next.store(nullptr, std::memory_order_relaxed);
    Node* pred = tail_.value.exchange(&me, std::memory_order_acq_rel);
    if (!pred) return;  // uncontended
    pred->next.store(&me, std::memory_order_release);
    while (me.locked.load(std::memory_order_acquire)) CasLock::cpu_relax();
  }

  void unlock() {
    Node& me = node();
    Node* succ = me.next.load(std::memory_order_acquire);
    if (!succ) {
      Node* expect = &me;
      if (tail_.value.compare_exchange_strong(expect, nullptr,
                                              std::memory_order_acq_rel))
        return;  // no successor: lock free again
      // A successor is mid-enqueue; wait for its link.
      do {
        CasLock::cpu_relax();
        succ = me.next.load(std::memory_order_acquire);
      } while (!succ);
    }
    succ->locked.store(false, std::memory_order_release);
  }

 private:
  struct alignas(kCacheLine) Node {
    std::atomic<bool> locked{false};
    std::atomic<Node*> next{nullptr};
  };
  static Node& node() {
    static thread_local Node n;
    return n;
  }

  PaddedAtomic<Node*> tail_{};
};

}  // namespace vl::native
