#include "native/harness.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "native/endpoint_router.hpp"
#include "native/mpmc_queue.hpp"

namespace vl::native {

QueueScalingResult mpmc_push_scaling(int producers,
                                     std::uint64_t msgs_per_producer) {
  // 64 B payload per message, like a cache-line-sized queue element.
  struct Item {
    std::array<std::uint64_t, 8> words;
  };
  MpmcQueue<Item> q(4096);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> push_ns_total{0};

  const std::uint64_t total =
      msgs_per_producer * static_cast<std::uint64_t>(producers);

  std::thread consumer([&] {
    for (std::uint64_t i = 0; i < total; ++i) (void)q.pop();
  });

  std::vector<std::thread> pool;
  for (int p = 0; p < producers; ++p) {
    pool.emplace_back([&, p] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) MpmcQueue<Item>::cpu_relax();
      Item item{};
      item.words[0] = static_cast<std::uint64_t>(p);
      const auto t0 = std::chrono::steady_clock::now();
      for (std::uint64_t i = 0; i < msgs_per_producer; ++i) {
        item.words[1] = i;
        q.push(item);
      }
      const auto t1 = std::chrono::steady_clock::now();
      push_ns_total.fetch_add(static_cast<std::uint64_t>(
          std::chrono::duration<double, std::nano>(t1 - t0).count()));
    });
  }
  while (ready.load() != producers) MpmcQueue<Item>::cpu_relax();
  go.store(true, std::memory_order_release);
  for (auto& t : pool) t.join();
  consumer.join();

  QueueScalingResult r;
  r.producers = producers;
  r.total_msgs = total;
  r.ns_per_push = static_cast<double>(push_ns_total.load()) /
                  static_cast<double>(total);
  return r;
}

QueueScalingResult router_push_scaling(int producers,
                                       std::uint64_t msgs_per_producer) {
  struct Item {
    std::array<std::uint64_t, 8> words;
  };
  EndpointRouter<Item> router(1024);
  std::vector<EndpointRouter<Item>::Producer*> eps;
  for (int p = 0; p < producers; ++p) eps.push_back(&router.add_producer());
  auto& cons = router.add_consumer();
  router.start();

  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> push_ns_total{0};
  const std::uint64_t total =
      msgs_per_producer * static_cast<std::uint64_t>(producers);

  std::thread consumer([&] {
    for (std::uint64_t i = 0; i < total; ++i) (void)cons.pop();
  });

  std::vector<std::thread> pool;
  for (int p = 0; p < producers; ++p) {
    pool.emplace_back([&, p] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) MpmcQueue<Item>::cpu_relax();
      Item item{};
      item.words[0] = static_cast<std::uint64_t>(p);
      const auto t0 = std::chrono::steady_clock::now();
      for (std::uint64_t i = 0; i < msgs_per_producer; ++i) {
        item.words[1] = i;
        eps[static_cast<std::size_t>(p)]->push(item);
      }
      const auto t1 = std::chrono::steady_clock::now();
      push_ns_total.fetch_add(static_cast<std::uint64_t>(
          std::chrono::duration<double, std::nano>(t1 - t0).count()));
    });
  }
  while (ready.load() != producers) MpmcQueue<Item>::cpu_relax();
  go.store(true, std::memory_order_release);
  for (auto& t : pool) t.join();
  consumer.join();
  router.stop();

  QueueScalingResult r;
  r.producers = producers;
  r.total_msgs = total;
  r.ns_per_push = static_cast<double>(push_ns_total.load()) /
                  static_cast<double>(total);
  return r;
}

double line_transfer_floor_ns(std::uint64_t rounds) {
  struct alignas(64) LineBuf {
    std::array<std::uint64_t, 8> words;
  };
  LineBuf buf{};
  std::atomic<std::uint64_t> seq{0};  // even: writer's turn, odd: reader's

  std::thread reader([&] {
    std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < rounds; ++i) {
      while (seq.load(std::memory_order_acquire) != 2 * i + 1)
        MpmcQueue<int>::cpu_relax();
      for (auto w : buf.words) sink += w;
      seq.store(2 * i + 2, std::memory_order_release);
    }
    (void)sink;
  });

  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < rounds; ++i) {
    while (seq.load(std::memory_order_acquire) != 2 * i)
      MpmcQueue<int>::cpu_relax();
    for (auto& w : buf.words) w = i;
    seq.store(2 * i + 1, std::memory_order_release);
  }
  reader.join();
  const auto t1 = std::chrono::steady_clock::now();

  // Each round is two one-way transfers (line + flag each way).
  const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  return ns / static_cast<double>(2 * rounds);
}

}  // namespace vl::native
