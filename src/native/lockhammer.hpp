#pragma once
// Native lockhammer harness (paper Fig. 2): T threads hammer one lock with
// an empty critical section; reports mean ns per acquire/release pair.
//
// Caveat recorded in EXPERIMENTS.md: inside this container the host may
// expose few cores, so threads beyond the core count timeshare; the
// contention trend vs. thread count is still the quantity of interest.

#include <cstdint>
#include <string>

namespace vl::native {

enum class LockKind { kCas, kSpin, kTicket, kMcs };

const char* to_string(LockKind k);

struct LockhammerResult {
  LockKind kind;
  int threads = 0;
  std::uint64_t total_ops = 0;
  double ns_per_op = 0.0;
};

/// Run `threads` hammer threads, each performing `ops_per_thread`
/// acquire/release pairs with `hold_ns`/`post_ns` artificial work inside/
/// outside the critical section (0 = empty section, as in Fig. 2).
LockhammerResult run_lockhammer(LockKind kind, int threads,
                                std::uint64_t ops_per_thread,
                                std::uint64_t hold_spins = 0,
                                std::uint64_t post_spins = 0);

}  // namespace vl::native
