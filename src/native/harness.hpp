#pragma once
// Native measurement harnesses for the paper's real-machine figures:
//   Fig. 1 — MPMC push cost vs. producer count, against the unsynchronized
//            single-line transfer floor (the dashed line).

#include <cstdint>

namespace vl::native {

struct QueueScalingResult {
  int producers = 0;
  std::uint64_t total_msgs = 0;
  double ns_per_push = 0.0;
};

/// Fig. 1 point: `producers` threads push `msgs_per_producer` items each
/// into one MpmcQueue drained by one consumer; reports mean ns per push.
QueueScalingResult mpmc_push_scaling(int producers,
                                     std::uint64_t msgs_per_producer);

/// Fig. 1 dashed line: unsynchronized cache-line handoff between two
/// threads (writer fills a 64 B buffer and releases a flag; reader acquires
/// and reads). Reports mean one-way ns per line.
double line_transfer_floor_ns(std::uint64_t rounds);

/// Extension series: the same M:1 sweep through an EndpointRouter (the
/// software-VLRD topology — per-producer SPSC rings plus a router thread),
/// showing the shared-state CAS cost removed in software.
QueueScalingResult router_push_scaling(int producers,
                                       std::uint64_t msgs_per_producer);

}  // namespace vl::native
