#pragma once
// Selector: wait-any / select over N channel endpoints for one consumer.
//
// Replaces hand-rolled multi-queue poll loops: the consumer probes its
// endpoints in a deterministic rotating order and, when all are empty,
// blocks *once* for all of them —
//
//   * If every endpoint publishes a consumer-readiness futex (recv_wq():
//     the ZMQ rings), the consumer parks on all N WaitQueues at once via
//     the sim layer's ParkAny and is resumed by the first wake any of them
//     delivers; readiness epochs are sampled before the probes, so a
//     publish landing mid-probe falls through the park (no lost wakeup).
//     A parked selector costs zero events while blocked.
//   * Otherwise (VL's § III-B control-word discovery, CAF/BLFQ register or
//     ring polling) it polls the whole set at the backends' discovery
//     cadence — one bounded pass per interval instead of N independent
//     spinning consumers.
//
// Wake handling is deterministic: probes always scan from the slot after
// the last served endpoint (rotating fairness), so two identical runs
// serve identical sequences — the property the selector determinism test
// pins down.

#include <cstddef>
#include <vector>

#include "squeue/channel.hpp"

namespace vl::squeue {

class Selector {
 public:
  Selector() = default;

  /// Add an endpoint; returns its index (stable, in add order).
  std::size_t add(Channel& ch) {
    chans_.push_back(&ch);
    return chans_.size() - 1;
  }

  std::size_t size() const { return chans_.size(); }
  Channel& channel(std::size_t i) { return *chans_.at(i); }

  struct Item {
    std::size_t index = 0;  ///< Which endpoint delivered.
    Msg msg{};
  };

  /// Block until any endpoint has a message and receive it. Fair and
  /// deterministic: the probe order rotates one past the last served
  /// endpoint.
  sim::Co<Item> recv_any(sim::SimThread t) {
    assert(!chans_.empty());
    const std::size_t n = chans_.size();
    for (;;) {
      // Futex protocol, per endpoint: sample every readiness epoch before
      // probing so a publish during the probe pass is never lost.
      bool all_parkable = true;
      wqs_.clear();
      gates_.clear();
      for (Channel* ch : chans_) {
        sim::WaitQueue* wq = ch->recv_wq();
        if (!wq) {
          all_parkable = false;
          break;
        }
        wqs_.push_back(wq);
        gates_.push_back(wq->epoch());
      }
      for (std::size_t k = 0; k < n; ++k) {
        const std::size_t i = (next_ + k) % n;
        RecvResult r = co_await chans_[i]->try_recv(t);
        if (r.ok()) {
          next_ = (i + 1) % n;
          co_return Item{i, r.msg};
        }
      }
      if (all_parkable)
        co_await t.park_any(wqs_, gates_);
      else
        co_await t.compute(kPollInterval);
    }
  }

  /// Block until any endpoint is ready, without consuming: returns the
  /// index whose try_recv delivered into `*out`. (Peeking is not part of
  /// the backend contract — a ready probe must take the message — so this
  /// is recv_any under a different return shape for callers that route on
  /// the index.)
  sim::Co<std::size_t> wait_any(sim::SimThread t, Msg* out) {
    const Item it = co_await recv_any(t);
    *out = it.msg;
    co_return it.index;
  }

 private:
  /// Poll cadence when any endpoint lacks a readiness futex — the VL
  /// consumer's control-word discovery interval.
  static constexpr Tick kPollInterval = 16;

  std::vector<Channel*> chans_;
  std::size_t next_ = 0;  ///< Rotating probe start (fairness).
  // Scratch for the park pass (avoids per-block reallocation).
  std::vector<sim::WaitQueue*> wqs_;
  std::vector<std::uint64_t> gates_;
};

}  // namespace vl::squeue
