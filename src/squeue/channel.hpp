#pragma once
// Uniform M:N message-channel abstraction over every queue implementation
// the paper compares (BLFQ / ZMQ / VL / VL-ideal / CAF), so each benchmark
// workload runs unmodified over all of them.
//
// A message is 1..7 doublewords — the largest payload a single VL line
// carries alongside its 2 B control region (Fig. 10). How a backend moves
// those words is its own business: BLFQ/ZMQ copy them into shared ring
// cells, VL packs them into one pushed line, CAF transfers them one 64-bit
// register value at a time through its queue-management device.

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/core.hpp"
#include "sim/task.hpp"

namespace vl::squeue {

struct Msg {
  std::array<std::uint64_t, 7> w{};
  std::uint8_t n = 0;
  /// Service class, honoured by the backends that model hardware QoS (CAF
  /// per-class credit caps, VL per-class prodBuf quotas); software rings
  /// ignore it. Not part of equality — it routes, it is not payload.
  QosClass qos = QosClass::kStandard;

  static Msg one(std::uint64_t v) {
    Msg m;
    m.w[0] = v;
    m.n = 1;
    return m;
  }
  static Msg words(std::initializer_list<std::uint64_t> ws) {
    Msg m;
    assert(ws.size() >= 1 && ws.size() <= 7);
    for (auto v : ws) m.w[m.n++] = v;
    return m;
  }
  bool operator==(const Msg& o) const {
    if (n != o.n) return false;
    for (std::uint8_t i = 0; i < n; ++i)
      if (w[i] != o.w[i]) return false;
    return true;
  }
};

class Channel {
 public:
  virtual ~Channel() = default;

  /// Blocking send (applies the backend's back-pressure policy, if any).
  virtual sim::Co<void> send(sim::SimThread t, Msg msg) = 0;

  /// Blocking receive of one message.
  virtual sim::Co<Msg> recv(sim::SimThread t) = 0;

  /// Current queued-message estimate (test/diagnostic only; 0 if unknown).
  virtual std::uint64_t depth() const { return 0; }

  // Single-word convenience wrappers.
  sim::Co<void> send1(sim::SimThread t, std::uint64_t v) {
    co_await send(t, Msg::one(v));
  }
  sim::Co<std::uint64_t> recv1(sim::SimThread t) {
    const Msg m = co_await recv(t);
    co_return m.w[0];
  }
};

}  // namespace vl::squeue
