#pragma once
// Channel API v2: the uniform M:N message-channel abstraction over every
// queue implementation the paper compares (BLFQ / ZMQ / VL / VL-ideal /
// CAF), so each benchmark workload runs unmodified over all of them.
//
// A message is 1..7 doublewords — the largest payload a single VL line
// carries alongside its 2 B control region (Fig. 10). How a backend moves
// those words is its own business: BLFQ/ZMQ copy them into shared ring
// cells, VL packs them into one pushed line, CAF transfers them one 64-bit
// register value at a time through its queue-management device.
//
// The v2 core each backend implements is *non-blocking and typed*:
//
//   try_send / try_recv       one-message attempts returning SendResult /
//                             RecvResult — a refusal says *why* (ring/buffer
//                             full vs per-SQI/per-class quota NACK vs empty),
//                             so callers can shed, retry, or park on the
//                             right futex.
//   try_send_many/try_recv_many  batched attempts over std::span<Msg>.
//                             Backends amortize their per-message device
//                             cost: VL packs a run of lines under one
//                             prodBuf quota acquisition and one port
//                             transaction, CAF opens a multi-frame credit
//                             grant once, ZMQ/BLFQ reserve a contiguous
//                             ring run under one lock / one CAS claim. The
//                             base-class fallback loops the single-message
//                             core, so a backend that cannot batch is still
//                             correct.
//
// Blocking send/recv/send_many/recv_many are thin wrappers over that core:
// a retry loop around the try_* attempt plus a backend-directed blocking
// policy (send_blocked/recv_blocked) — park on the backend's futex where
// one exists (ZMQ rings, CAF credits, VL quota/space), poll where the paper
// says the backend polls (BLFQ, the VL consumer's § III-B control-word
// discovery, CAF empty dequeues).
//
// Wait-any/select over N channels lives in squeue/selector.hpp, built on
// recv_wq() (the consumer-readiness futex, where the backend has one) and
// the sim layer's ParkAny.

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "obs/tracer.hpp"
#include "sim/core.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace vl::squeue {

struct Msg {
  std::array<std::uint64_t, 7> w{};
  std::uint8_t n = 0;
  /// Service class, honoured by the backends that model hardware QoS (CAF
  /// per-class credit caps, VL per-class prodBuf quotas) and carried
  /// through the software rings so per-class accounting stays truthful on
  /// BLFQ/ZMQ too. Not part of equality — it routes, it is not payload.
  QosClass qos = QosClass::kStandard;

  static Msg one(std::uint64_t v) {
    Msg m;
    m.w[0] = v;
    m.n = 1;
    return m;
  }
  static Msg words(std::initializer_list<std::uint64_t> ws) {
    Msg m;
    assert(ws.size() >= 1 && ws.size() <= 7);
    for (auto v : ws) m.w[m.n++] = v;
    return m;
  }
  bool operator==(const Msg& o) const {
    if (n != o.n) return false;
    for (std::uint8_t i = 0; i < n; ++i)
      if (w[i] != o.w[i]) return false;
    return true;
  }
};

/// Why a try_send refused. kFull is capacity back-pressure (ring at its
/// high-water mark, prodBuf out of slots, CAF queue budget exhausted):
/// any drain may clear it. kQuota is a per-SQI or per-class quota NACK
/// (isa::kVlNackQuota, CAF class caps): only *this* queue's (or class's)
/// drain clears it, so parking on the global space futex would be wrong.
enum class SendStatus : std::uint8_t { kOk = 0, kFull, kQuota };

struct SendResult {
  SendStatus status = SendStatus::kOk;
  bool ok() const { return status == SendStatus::kOk; }
};

enum class RecvStatus : std::uint8_t { kOk = 0, kEmpty };

struct RecvResult {
  RecvStatus status = RecvStatus::kEmpty;
  Msg msg{};
  bool ok() const { return status == RecvStatus::kOk; }
};

/// Outcome of a batched send attempt: how much of the span was accepted,
/// and — when short — why the batch stopped.
struct SendManyResult {
  std::size_t sent = 0;
  SendStatus status = SendStatus::kOk;  ///< kOk iff the whole span went.
};

class Channel {
 public:
  virtual ~Channel() = default;

  // --- v2 non-blocking core -------------------------------------------------

  /// One-message non-blocking send attempt.
  virtual sim::Co<SendResult> try_send(sim::SimThread t, const Msg& msg) = 0;

  /// One-message non-blocking receive attempt.
  virtual sim::Co<RecvResult> try_recv(sim::SimThread t) = 0;

  /// Batched non-blocking send: accepts a prefix of `msgs` (possibly
  /// empty). Backends override with their amortized fast path; this
  /// fallback loops the single-message core.
  virtual sim::Co<SendManyResult> try_send_many(sim::SimThread t,
                                                std::span<const Msg> msgs) {
    SendManyResult r;
    for (const Msg& m : msgs) {
      const SendResult s = co_await try_send(t, m);
      if (!s.ok()) {
        r.status = s.status;
        co_return r;
      }
      ++r.sent;
    }
    co_return r;
  }

  /// Batched non-blocking receive: fills a prefix of `out`, returns the
  /// count. Stops at the first empty probe.
  virtual sim::Co<std::size_t> try_recv_many(sim::SimThread t,
                                             std::span<Msg> out) {
    std::size_t got = 0;
    for (Msg& slot : out) {
      const RecvResult r = co_await try_recv(t);
      if (!r.ok()) break;
      slot = r.msg;
      ++got;
    }
    co_return got;
  }

  /// Current queued-message estimate (device-resident backlog for VL —
  /// the quantity back-pressure acts on; exact ring/buffer occupancy for
  /// the software and CAF backends).
  virtual std::uint64_t depth() const = 0;

  /// Consumer-readiness futex: woken when a message may have become
  /// receivable. nullptr for backends whose consumers discover data by
  /// polling (BLFQ, the VL § III-B control word, CAF register reads) —
  /// Selector and the blocking wrappers then poll at kPollBackoff.
  virtual sim::WaitQueue* recv_wq() { return nullptr; }

  /// Consumer-side endpoint re-registration (the lifecycle plane's
  /// reconfig@ event): drop and re-arm whatever receive-side device state
  /// the calling thread's endpoint holds, without losing messages. VL
  /// channels implement it as Consumer::migrate() onto the same thread —
  /// the paper's § III-B recovery path. Returns false where the backend
  /// has no such state (software rings, CAF): nothing to re-register.
  virtual bool reconfigure(sim::SimThread) { return false; }

  // --- blocking wrappers over the core -------------------------------------
  // Virtual so instrumentation wrappers (LatencyChannel) can interpose, but
  // every backend inherits these: the backend-specific part is only the
  // blocking *policy* below.

  /// Blocking send (applies the backend's back-pressure policy).
  virtual sim::Co<void> send(sim::SimThread t, Msg msg) {
    sim::EventQueue& eq = t.core->eq();
    obs::TraceBuffer* const tb = eq.trace();
    const std::uint32_t lane = obs::thread_tid(t.core->id(), t.tid);
    if (tb) tb->begin(eq.now(), lane, "chan", "send");
    BlockGates g;
    for (;;) {
      sample_send_gates(g, msg);  // futex protocol: epochs before the attempt
      const SendResult r = co_await try_send(t, msg);
      if (r.ok()) break;
      if (tb)
        tb->instant(eq.now(), lane, "chan",
                    r.status == SendStatus::kQuota ? "nack_quota"
                                                   : "nack_full",
                    "qos", static_cast<std::uint64_t>(msg.qos));
      co_await send_blocked(t, r.status, g, msg);
    }
    if (tb) tb->end(eq.now(), lane, "chan", "send");
  }

  /// Blocking receive of one message.
  virtual sim::Co<Msg> recv(sim::SimThread t) {
    sim::EventQueue& eq = t.core->eq();
    obs::TraceBuffer* const tb = eq.trace();
    const std::uint32_t lane = obs::thread_tid(t.core->id(), t.tid);
    if (tb) tb->begin(eq.now(), lane, "chan", "recv");
    for (;;) {
      const std::uint64_t gate = sample_recv_gate();
      RecvResult r = co_await try_recv(t);
      if (r.ok()) {
        if (tb) tb->end(eq.now(), lane, "chan", "recv");
        co_return r.msg;
      }
      co_await recv_blocked(t, gate);
    }
  }

  /// Blocking batched send: delivers the whole span, batching as far as
  /// the backend's fast path allows per lap and applying the blocking
  /// policy between laps.
  virtual sim::Co<void> send_many(sim::SimThread t, std::span<const Msg> msgs) {
    sim::EventQueue& eq = t.core->eq();
    obs::TraceBuffer* const tb = eq.trace();
    const std::uint32_t lane = obs::thread_tid(t.core->id(), t.tid);
    if (tb) tb->begin(eq.now(), lane, "chan", "send_many", "n", msgs.size());
    BlockGates g;
    std::size_t done = 0;
    while (done < msgs.size()) {
      sample_send_gates(g, msgs[done]);
      const SendManyResult r = co_await try_send_many(t, msgs.subspan(done));
      done += r.sent;
      // Park only on an actual refusal; a short lap with status kOk (a
      // backend batching boundary, e.g. a CAF class-run end) retries
      // immediately.
      if (done < msgs.size() && r.status != SendStatus::kOk) {
        if (tb)
          tb->instant(eq.now(), lane, "chan",
                      r.status == SendStatus::kQuota ? "nack_quota"
                                                     : "nack_full",
                      "qos", static_cast<std::uint64_t>(msgs[done].qos));
        co_await send_blocked(t, r.status, g, msgs[done]);
      }
    }
    if (tb) tb->end(eq.now(), lane, "chan", "send_many");
  }

  /// Blocking batched receive: waits until at least `min_n` messages were
  /// received (min_n >= 1, capped at out.size()), then keeps draining
  /// opportunistically — without further blocking — up to out.size().
  virtual sim::Co<std::size_t> recv_many(sim::SimThread t, std::span<Msg> out,
                                         std::size_t min_n = 1) {
    if (out.empty()) co_return 0;
    if (min_n < 1) min_n = 1;
    if (min_n > out.size()) min_n = out.size();
    sim::EventQueue& eq = t.core->eq();
    obs::TraceBuffer* const tb = eq.trace();
    const std::uint32_t lane = obs::thread_tid(t.core->id(), t.tid);
    if (tb) tb->begin(eq.now(), lane, "chan", "recv_many", "cap", out.size());
    std::size_t got = 0;
    for (;;) {
      const std::uint64_t gate = sample_recv_gate();
      got += co_await try_recv_many(t, out.subspan(got));
      if (got >= min_n) {
        if (tb) tb->end(eq.now(), lane, "chan", "recv_many");
        co_return got;
      }
      co_await recv_blocked(t, gate);
    }
  }

  // Single-word convenience wrappers.
  sim::Co<void> send1(sim::SimThread t, std::uint64_t v) {
    co_await send(t, Msg::one(v));
  }
  sim::Co<std::uint64_t> recv1(sim::SimThread t) {
    const Msg m = co_await recv(t);
    co_return m.w[0];
  }

 protected:
  /// Wake epochs a blocking sender samples *before* its attempt, so a
  /// drain landing mid-attempt is never lost as a wakeup (the standard
  /// futex gate protocol). `baton` is VL's counted-space-wake baton (see
  /// VlChannel::send_blocked); other backends ignore it.
  struct BlockGates {
    std::uint64_t full = 0;
    std::uint64_t quota = 0;
    bool baton = false;
  };

  /// Default blocking-policy backoff for polling backends, and the
  /// Selector's poll cadence over futex-less channels. Matches the VL
  /// consumer's control-word poll interval.
  static constexpr Tick kPollBackoff = 16;

  /// The message is passed so a class-aware backend (CAF class caps) can
  /// sample / park on its per-class credit futex.
  virtual void sample_send_gates(BlockGates&, const Msg&) {}
  virtual std::uint64_t sample_recv_gate() {
    sim::WaitQueue* wq = recv_wq();
    return wq ? wq->epoch() : 0;
  }

  /// Applied when a blocking send's attempt refused: park on the right
  /// backend futex, or poll. Default: plain poll backoff.
  virtual sim::Co<void> send_blocked(sim::SimThread t, SendStatus,
                                     BlockGates&, const Msg&) {
    co_await t.compute(kPollBackoff);
  }

  /// Applied when a blocking receive's attempt found nothing. Default:
  /// park on recv_wq() when the backend has one, else poll.
  virtual sim::Co<void> recv_blocked(sim::SimThread t, std::uint64_t gate) {
    if (sim::WaitQueue* wq = recv_wq())
      co_await t.park(*wq, gate);
    else
      co_await t.compute(kPollBackoff);
  }
};

}  // namespace vl::squeue
