#pragma once
// SimBlfq: the Boost-Lock-Free-Queue baseline executed through the
// simulated coherence hierarchy.
//
// Structure: a bounded MPMC ring with per-cell sequence numbers
// (Dmitry Vyukov's algorithm — the same shared-state pattern as BLFQ:
// producers CAS a shared tail index, consumers CAS a shared head index).
// Those two hot words are what Fig. 1/3/4 are about: every CAS needs
// exclusive ownership, so N contenders drive ~N invalidations and S->M
// upgrades per operation through the cache model — organically, because
// every access below is a real simulated load/store/CAS.
//
// Each cell spans two cache lines: a metadata line (sequence word) and a
// payload line, mirroring a 64 B-payload node in a real queue. BLFQ has no
// back-pressure (it is node-based/unbounded in the paper); we size the ring
// large enough that incast/FIR occupancy spills past the LLC exactly the
// way the paper's Fig. 11c shows. If the ring does fill, producers poll —
// by then the experiment's point has long been made.
//
// Channel v2 batching: a producer claims a contiguous run of cells with a
// single CAS on the shared tail (consumers likewise on the head). The
// per-cell payload traffic is unchanged — the batch amortizes only the
// contended index CAS, which is exactly the shared state the figures
// measure.

#include "squeue/channel.hpp"
#include "runtime/machine.hpp"

namespace vl::squeue {

class SimBlfq : public Channel {
 public:
  /// `capacity` must be a power of two.
  SimBlfq(runtime::Machine& m, std::size_t capacity);

  sim::Co<SendResult> try_send(sim::SimThread t, const Msg& msg) override;
  sim::Co<RecvResult> try_recv(sim::SimThread t) override;
  sim::Co<SendManyResult> try_send_many(sim::SimThread t,
                                        std::span<const Msg> msgs) override;
  sim::Co<std::size_t> try_recv_many(sim::SimThread t,
                                     std::span<Msg> out) override;
  std::uint64_t depth() const override;

 protected:
  sim::Co<void> send_blocked(sim::SimThread t, SendStatus,
                             BlockGates&, const Msg&) override;
  sim::Co<void> recv_blocked(sim::SimThread t, std::uint64_t) override;

 private:
  Addr cell_meta(std::uint64_t pos) const {
    return cells_ + (pos & mask_) * kCellStride;
  }
  Addr cell_data(std::uint64_t pos) const {
    return cell_meta(pos) + kLineSize;
  }
  sim::Co<void> store_cell(sim::SimThread t, std::uint64_t pos,
                           const Msg& msg);
  sim::Co<Msg> load_cell(sim::SimThread t, std::uint64_t pos);

  static constexpr Addr kCellStride = 2 * kLineSize;
  /// Longest contiguous run one index CAS may claim.
  static constexpr std::size_t kMaxRun = 8;

  runtime::Machine& m_;
  std::size_t cap_;
  std::uint64_t mask_;
  Addr tail_ = 0;   ///< shared enqueue index (its own line)
  Addr head_ = 0;   ///< shared dequeue index (its own line)
  Addr cells_ = 0;
};

}  // namespace vl::squeue
