#include "squeue/zmq.hpp"

#include <cassert>

namespace vl::squeue {

namespace {
constexpr Tick kSpinBackoff = 8;
constexpr Tick kFullBackoff = 64;

// The simulation is fully deterministic, so identical fixed backoffs can
// phase-lock contending spinners into a periodic schedule where one class of
// threads (e.g. empty-polling consumers) holds the lock at every instant the
// other class attempts its CAS — a livelock no real machine exhibits, because
// real timing noise breaks the phase. Mix a per-thread, per-attempt jitter
// into every backoff to restore that asymmetry deterministically.
Tick jitter(const sim::SimThread& t, std::uint32_t attempt, Tick base) {
  std::uint32_t h = static_cast<std::uint32_t>(t.core->id()) * 2654435761u ^
                    static_cast<std::uint32_t>(t.tid) * 40503u ^
                    attempt * 2246822519u;
  h ^= h >> 15;
  return base + (h % (base + attempt % 16 + 1));
}

// Empty-queue / high-water retries additionally back off exponentially:
// with enough pollers (e.g. 7 consumers against 2 producers), per-attempt
// jitter alone still lets the polling class occupy the lock at every free
// instant. Growing the idle class's sleep opens windows the other class is
// guaranteed to hit. Real ZeroMQ parks blocked sockets on a futex for the
// same reason.
Tick retry_backoff(const sim::SimThread& t, std::uint32_t attempt) {
  const Tick scaled = kFullBackoff
                      << (attempt < 6 ? attempt : std::uint32_t{6});
  return jitter(t, attempt, scaled);
}
}  // namespace

SimZmq::SimZmq(runtime::Machine& m, std::size_t hwm, Tick sw_overhead)
    : m_(m), hwm_(hwm), mask_(hwm - 1), overhead_(sw_overhead) {
  assert(hwm >= 2 && (hwm & (hwm - 1)) == 0);
  lock_ = m_.alloc(kLineSize);
  meta_ = m_.alloc(kLineSize);
  cells_ = m_.alloc(hwm * kCellStride);
}

sim::Co<void> SimZmq::lock(sim::SimThread t) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (co_await t.cas64(lock_, 0, 1)) co_return;
    // Test-and-test-and-set: spin on a local (Shared) copy.
    std::uint64_t v;
    do {
      co_await t.compute(jitter(t, ++attempt, kSpinBackoff));
      v = co_await t.load(lock_, 8);
    } while (v != 0);
  }
}

sim::Co<void> SimZmq::unlock(sim::SimThread t) {
  co_await t.store(lock_, 0, 8);
}

sim::Co<void> SimZmq::send(sim::SimThread t, Msg msg) {
  co_await t.compute(overhead_);  // socket/envelope software path
  for (std::uint32_t attempt = 0;; ++attempt) {
    co_await lock(t);
    const std::uint64_t head = co_await t.load(meta_, 8);
    const std::uint64_t tail = co_await t.load(meta_ + 8, 8);
    if (tail - head >= hwm_) {
      // High-water mark: release and wait (the back-pressure path).
      co_await unlock(t);
      co_await t.compute(retry_backoff(t, attempt));
      continue;
    }
    const Addr data = cell(tail);
    co_await t.store(data, msg.n, 1);
    for (std::uint8_t i = 0; i < msg.n; ++i)
      co_await t.store(data + 8 + i * 8, msg.w[i], 8);
    co_await t.store(meta_ + 8, tail + 1, 8);
    co_await unlock(t);
    co_return;
  }
}

sim::Co<Msg> SimZmq::recv(sim::SimThread t) {
  co_await t.compute(overhead_);
  for (std::uint32_t attempt = 0;; ++attempt) {
    co_await lock(t);
    const std::uint64_t head = co_await t.load(meta_, 8);
    const std::uint64_t tail = co_await t.load(meta_ + 8, 8);
    if (head == tail) {  // empty
      co_await unlock(t);
      co_await t.compute(retry_backoff(t, attempt));
      continue;
    }
    const Addr data = cell(head);
    Msg msg;
    msg.n = static_cast<std::uint8_t>(co_await t.load(data, 1));
    for (std::uint8_t i = 0; i < msg.n; ++i)
      msg.w[i] = co_await t.load(data + 8 + i * 8, 8);
    co_await t.store(meta_, head + 1, 8);
    co_await unlock(t);
    co_return msg;
  }
}

std::uint64_t SimZmq::depth() const {
  const std::uint64_t head = m_.mem().backing().read(meta_, 8);
  const std::uint64_t tail = m_.mem().backing().read(meta_ + 8, 8);
  return tail - head;
}

}  // namespace vl::squeue
