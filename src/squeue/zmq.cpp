#include "squeue/zmq.hpp"

#include <algorithm>
#include <cassert>

namespace vl::squeue {

namespace {
// The simulation is fully deterministic, so identical fixed backoffs can
// phase-lock contending spinners into a periodic schedule where one class of
// threads holds the lock at every instant the other class attempts its CAS —
// a livelock no real machine exhibits, because real timing noise breaks the
// phase. Mix a per-thread, per-attempt jitter into the lock-spin backoff to
// restore that asymmetry deterministically. (Empty/full waits no longer
// spin at all — they park on the channel's WaitQueues.) Base, cap, and the
// jitter switch come from SystemConfig::zmq; the defaults reproduce the
// pre-config constants bit-for-bit.
Tick jitter(const sim::SimThread& t, std::uint32_t attempt,
            const sim::ZmqConfig& cfg) {
  if (!cfg.backoff_jitter) return cfg.backoff_base;
  std::uint32_t h = static_cast<std::uint32_t>(t.core->id()) * 2654435761u ^
                    static_cast<std::uint32_t>(t.tid) * 40503u ^
                    attempt * 2246822519u;
  h ^= h >> 15;
  const std::uint32_t cap = cfg.backoff_cap ? cfg.backoff_cap : 1;
  return cfg.backoff_base +
         (h % (static_cast<std::uint32_t>(cfg.backoff_base) + attempt % cap +
               1));
}

std::uint64_t pack_hdr(const Msg& msg) {
  return static_cast<std::uint64_t>(msg.n) |
         (static_cast<std::uint64_t>(msg.qos) << 8);
}
}  // namespace

SimZmq::SimZmq(runtime::Machine& m, std::size_t hwm, Tick sw_overhead)
    : m_(m), hwm_(hwm), mask_(hwm - 1), overhead_(sw_overhead),
      not_empty_(m.eq()), not_full_(m.eq()), lock_wq_(m.eq()) {
  assert(hwm >= 2 && (hwm & (hwm - 1)) == 0);
  lock_ = m_.alloc(kLineSize);
  meta_ = m_.alloc(kLineSize);
  cells_ = m_.alloc(hwm * kCellStride);
}

sim::Co<void> SimZmq::lock(sim::SimThread t) {
  // Bounded lock spin before parking (adaptive-mutex discipline): short
  // holds are still grabbed out of the spin and generate the shared-line
  // traffic Fig. 13 measures; long waits park and cost O(1) events.
  const sim::ZmqConfig& zc = m_.cfg().zmq;
  for (std::uint32_t attempt = 0;;) {
    if (co_await t.cas64(lock_, 0, 1)) co_return;
    // Test-and-test-and-set: spin on a local (Shared) copy, bounded.
    bool saw_free = false;
    for (int spin = 0; spin < zc.lock_spin_rounds && !saw_free; ++spin) {
      co_await t.compute(jitter(t, ++attempt, zc));
      saw_free = co_await t.load(lock_, 8) == 0;
    }
    if (saw_free) continue;
    // Still held after the spin budget: park until the holder releases
    // (epoch sampled before the final check closes the wakeup race).
    const std::uint64_t gate = lock_wq_.epoch();
    if (co_await t.load(lock_, 8) == 0) continue;
    co_await t.park(lock_wq_, gate);
  }
}

sim::Co<void> SimZmq::unlock(sim::SimThread t) {
  co_await t.store(lock_, 0, 8);
  lock_wq_.wake_one();
}

sim::Co<void> SimZmq::store_cell(sim::SimThread t, std::uint64_t pos,
                                 const Msg& msg) {
  const Addr data = cell(pos);
  // Header: element count + service class (carried through the software
  // ring so per-class accounting stays truthful on ZMQ too).
  co_await t.store(data, pack_hdr(msg), 2);
  for (std::uint8_t i = 0; i < msg.n; ++i)
    co_await t.store(data + 8 + i * 8, msg.w[i], 8);
}

sim::Co<Msg> SimZmq::load_cell(sim::SimThread t, std::uint64_t pos) {
  const Addr data = cell(pos);
  Msg msg;
  const auto hdr = co_await t.load(data, 2);
  msg.n = static_cast<std::uint8_t>(hdr & 0xff);
  msg.qos = qos_class_from_byte(static_cast<std::uint8_t>(hdr >> 8));
  for (std::uint8_t i = 0; i < msg.n; ++i)
    msg.w[i] = co_await t.load(data + 8 + i * 8, 8);
  co_return msg;
}

sim::Co<SendResult> SimZmq::try_send(sim::SimThread t, const Msg& msg) {
  co_await t.compute(overhead_);  // socket/envelope software path
  co_await lock(t);
  const std::uint64_t head = co_await t.load(meta_, 8);
  const std::uint64_t tail = co_await t.load(meta_ + 8, 8);
  if (tail - head >= hwm_) {
    co_await unlock(t);
    co_return SendResult{SendStatus::kFull};  // at the high-water mark
  }
  co_await store_cell(t, tail, msg);
  co_await t.store(meta_ + 8, tail + 1, 8);
  co_await unlock(t);
  not_empty_.wake_one();
  co_return SendResult{SendStatus::kOk};
}

sim::Co<RecvResult> SimZmq::try_recv(sim::SimThread t) {
  co_await t.compute(overhead_);
  co_await lock(t);
  const std::uint64_t head = co_await t.load(meta_, 8);
  const std::uint64_t tail = co_await t.load(meta_ + 8, 8);
  if (head == tail) {
    co_await unlock(t);
    co_return RecvResult{};  // empty
  }
  RecvResult r;
  r.status = RecvStatus::kOk;
  r.msg = co_await load_cell(t, head);
  co_await t.store(meta_, head + 1, 8);
  co_await unlock(t);
  not_full_.wake_one();
  co_return r;
}

sim::Co<SendManyResult> SimZmq::try_send_many(sim::SimThread t,
                                              std::span<const Msg> msgs) {
  SendManyResult r;
  while (r.sent < msgs.size()) {
    // One socket software pass and one lock hold cover the whole run —
    // the envelope/lock cost is amortized across the batch.
    co_await t.compute(overhead_);
    co_await lock(t);
    const std::uint64_t head = co_await t.load(meta_, 8);
    const std::uint64_t tail = co_await t.load(meta_ + 8, 8);
    const std::uint64_t free = hwm_ - (tail - head);
    const std::size_t run =
        std::min({msgs.size() - r.sent, static_cast<std::size_t>(free),
                  kMaxRun});
    if (run == 0) {
      co_await unlock(t);
      r.status = SendStatus::kFull;
      co_return r;
    }
    for (std::size_t i = 0; i < run; ++i)
      co_await store_cell(t, tail + i, msgs[r.sent + i]);
    co_await t.store(meta_ + 8, tail + run, 8);
    co_await unlock(t);
    for (std::size_t i = 0; i < run; ++i) not_empty_.wake_one();
    r.sent += run;
  }
  co_return r;
}

sim::Co<std::size_t> SimZmq::try_recv_many(sim::SimThread t,
                                           std::span<Msg> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    co_await t.compute(overhead_);
    co_await lock(t);
    const std::uint64_t head = co_await t.load(meta_, 8);
    const std::uint64_t tail = co_await t.load(meta_ + 8, 8);
    const std::size_t run =
        std::min({out.size() - got, static_cast<std::size_t>(tail - head),
                  kMaxRun});
    if (run == 0) {
      co_await unlock(t);
      co_return got;
    }
    for (std::size_t i = 0; i < run; ++i)
      out[got + i] = co_await load_cell(t, head + i);
    co_await t.store(meta_, head + run, 8);
    co_await unlock(t);
    for (std::size_t i = 0; i < run; ++i) not_full_.wake_one();
    got += run;
  }
  co_return got;
}

std::uint64_t SimZmq::depth() const {
  const std::uint64_t head = m_.mem().backing().read(meta_, 8);
  const std::uint64_t tail = m_.mem().backing().read(meta_ + 8, 8);
  return tail - head;
}

}  // namespace vl::squeue
