#pragma once
// SimCaf: model of CAF, the "Core to Core Communication Acceleration
// Framework" (Wang et al., PACT'16) the paper compares against in Fig. 15.
//
// The two architectural differences the paper calls out (§ IV-B):
//   i.  CAF partitions buffer space between queues and applies credit
//       management for QoS — modelled as a fixed per-queue credit budget;
//       an enqueue with no credit is NACKed and the producer retries.
//   ii. Enqueue/dequeue transfer 64-bit register values between the core
//       and the central Queue Management Device — so a 64 B message costs
//       ~8 device round trips where VL pushes one whole cache line.
//
// The device stores queued words in internal SRAM (no cache/DRAM traffic
// for queued payloads, like VL), but its register-granularity interface is
// the bottleneck Fig. 15's ping-pong exposes.
//
// Channel v2: the credit manager grants a whole frame's credits (or a
// batch of frames' — the multi-frame grant) atomically with the first
// register write of the frame, so a producer never parks mid-frame and the
// frame-grant mutex is held only for the bounded transfer itself. The
// per-word register round trips — the architectural bottleneck — are
// unchanged.

#include <algorithm>
#include <cassert>
#include <deque>
#include <memory>
#include <vector>

#include "sim/async_mutex.hpp"
#include "sim/sync.hpp"
#include "squeue/channel.hpp"
#include "runtime/machine.hpp"

namespace vl::squeue {

/// The central Queue Management Device: one per machine, shared by all
/// CAF channels. Each device queue carries a simulated-futex WaitQueue for
/// its credit grant: a producer whose frame-open is NACKed for lack of
/// credits parks and is woken by the consumer-side register read that
/// frees one, instead of hammering the device with retries. (Consumers
/// polling an *empty* queue keep polling — that register-read discovery
/// latency is part of the Fig. 15 model.)
class CafDevice {
 public:
  /// Credit-grant outcome of a frame-open register write.
  enum class Grant : std::uint8_t { kOk, kFull, kQuota };

  /// The config is the single source of both budgets: credits_per_queue
  /// caps each queue as a whole, class_credits caps how much of that
  /// budget each service class may occupy (0 = uncapped). All-zero class
  /// caps — the default — reproduce the plain fixed-budget device
  /// byte-for-byte.
  CafDevice(runtime::Machine& m, const sim::CafConfig& cfg)
      : m_(m), credits_(cfg.credits_per_queue) {
    for (std::size_t c = 0; c < kQosClasses; ++c)
      class_credits_[c] = cfg.class_credits[c];
  }
  /// Plain fixed-budget device (no class caps).
  explicit CafDevice(runtime::Machine& m, std::uint32_t credits_per_queue = 64)
      : CafDevice(m, sim::CafConfig{credits_per_queue, {0, 0, 0}}) {}

  /// Allocate a device queue id.
  std::uint32_t open_queue() {
    queues_.push_back(std::make_unique<DevQueue>(m_.eq()));
    return static_cast<std::uint32_t>(queues_.size() - 1);
  }

  /// One 64-bit enqueue register write. False = out of credits — either
  /// the queue's whole budget or the word's class cap.
  bool enq(std::uint32_t q, std::uint64_t v,
           QosClass cls = QosClass::kStandard) {
    DevQueue& dq = *queues_.at(q);
    const auto c = static_cast<std::size_t>(cls);
    if (dq.data.size() + dq.reserved_total >= credits_) return false;
    if (class_credits_[c] != 0 &&
        dq.used[c] + dq.reserved[c] >= class_credits_[c])
      return false;
    dq.data.push_back({v, cls});
    ++dq.used[c];
    return true;
  }

  /// Frame-open register write: atomically grants the credits for up to
  /// `max_frames` frames of `frame_words` words each (all of class `cls`)
  /// and enqueues the frame's first word `v`. The grant rides the same
  /// register round trip as the word, so a single-frame open costs exactly
  /// what a plain enq() does. `*granted` receives the number of frames
  /// whose credits were reserved (0 on refusal); the return status names
  /// the constraint that bounded the grant (kOk when every requested
  /// frame fit).
  Grant enq_open(std::uint32_t q, std::uint64_t v, QosClass cls,
                 std::uint32_t frame_words, std::uint32_t max_frames,
                 std::uint32_t* granted) {
    DevQueue& dq = *queues_.at(q);
    const auto c = static_cast<std::size_t>(cls);
    const std::uint64_t used_total = dq.data.size() + dq.reserved_total;
    const std::uint64_t budget_free =
        used_total < credits_ ? credits_ - used_total : 0;
    std::uint64_t class_free = budget_free;
    bool class_bound = false;
    if (class_credits_[c] != 0) {
      const std::uint64_t cu = dq.used[c] + dq.reserved[c];
      class_free = cu < class_credits_[c] ? class_credits_[c] - cu : 0;
      class_bound = class_free < budget_free;
    }
    const std::uint64_t free_words = class_bound ? class_free : budget_free;
    const auto fit = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(max_frames, free_words / frame_words));
    *granted = fit;
    if (fit == 0) return class_bound ? Grant::kQuota : Grant::kFull;
    // Reserve everything granted, then immediately consume one reserved
    // credit for the word carried by this register write.
    const std::uint32_t words = fit * frame_words;
    dq.reserved_total += words - 1;
    dq.reserved[c] += words - 1;
    dq.data.push_back({v, cls});
    ++dq.used[c];
    return fit == max_frames ? Grant::kOk
                             : (class_bound ? Grant::kQuota : Grant::kFull);
  }

  /// Enqueue register write consuming a credit reserved by enq_open();
  /// never NACKs.
  void enq_reserved(std::uint32_t q, std::uint64_t v, QosClass cls) {
    DevQueue& dq = *queues_.at(q);
    const auto c = static_cast<std::size_t>(cls);
    assert(dq.reserved_total > 0 && dq.reserved[c] > 0);
    --dq.reserved_total;
    --dq.reserved[c];
    dq.data.push_back({v, cls});
    ++dq.used[c];
  }

  /// One 64-bit dequeue register read. False = queue empty. `cls`, when
  /// given, receives the dequeued word's service class (the device tracks
  /// it for its per-class occupancy counters anyway).
  bool deq(std::uint32_t q, std::uint64_t& out, QosClass* cls = nullptr) {
    DevQueue& dq = *queues_.at(q);
    if (dq.data.empty()) return false;
    out = dq.data.front().v;
    if (cls) *cls = dq.data.front().cls;
    const auto freed = static_cast<std::size_t>(dq.data.front().cls);
    --dq.used[freed];
    dq.data.pop_front();
    // A credit freed: wake parked producers, split by NACK reason (the
    // same discipline that killed VL's wake_all thundering herd). The
    // freed word loosens both the queue's whole budget and its class's
    // cap, so wake one budget-parked waiter and — when caps are active —
    // one waiter parked on *this* class's cap; each re-checks and at most
    // one loses the race and re-parks, instead of the whole herd probing
    // the device per freed credit.
    dq.space.wake_one();
    if (class_credits_[freed] != 0) dq.class_space[freed].wake_one();
    return true;
  }

  std::uint64_t depth(std::uint32_t q) const {
    return queues_.at(q)->data.size();
  }
  /// Words of class `cls` currently queued (diagnostics/tests).
  std::uint64_t class_depth(std::uint32_t q, QosClass cls) const {
    return queues_.at(q)->used[static_cast<std::size_t>(cls)];
  }
  std::uint32_t class_credit(QosClass cls) const {
    return class_credits_[static_cast<std::size_t>(cls)];
  }
  /// Re-weight one class's credit cap online (0 = uncapped). Safe only at
  /// epoch boundaries — between event-queue steps — which is where the QoS
  /// supervisor runs. Loosening the cap wakes every producer parked on the
  /// class's cap futexes so they re-probe under the new budget; tightening
  /// wakes nobody (queued words drain under the old occupancy and new
  /// enqueues see the smaller cap on their next probe).
  void set_class_credit(QosClass cls, std::uint32_t cap) {
    const auto c = static_cast<std::size_t>(cls);
    const std::uint32_t old = class_credits_[c];
    class_credits_[c] = cap;
    const bool loosened = (cap == 0 && old != 0) || (old != 0 && cap > old);
    if (loosened)
      for (auto& q : queues_) q->class_space[c].wake_all();
  }
  /// Device-wide credit occupancy of class `cls` (queued words across all
  /// queues) — the timeline's caf.occupancy.<class> series.
  std::uint64_t class_occupancy(QosClass cls) const {
    const auto c = static_cast<std::size_t>(cls);
    std::uint64_t n = 0;
    for (const auto& q : queues_) n += q->used[c];
    return n;
  }
  /// Queues opened so far (warm-restart snapshot walks them by id —
  /// open_queue() hands out ids in creation order, so a rebuilt device
  /// whose channels open in the same order reproduces the id map).
  std::uint32_t num_queues() const {
    return static_cast<std::uint32_t>(queues_.size());
  }
  /// Warm-restart support: dump one queue's resident words in FIFO order.
  /// Call only on a quiesced device with no open frame grants (asserts
  /// reserved_total == 0 — a snapshot taken mid-frame would tear it).
  std::vector<std::pair<std::uint64_t, QosClass>> snapshot_queue(
      std::uint32_t q) const {
    const DevQueue& dq = *queues_.at(q);
    assert(dq.reserved_total == 0);
    std::vector<std::pair<std::uint64_t, QosClass>> out;
    out.reserve(dq.data.size());
    for (const Word& w : dq.data) out.emplace_back(w.v, w.cls);
    return out;
  }
  /// Budget waiters: producers NACKed because the queue's whole credit
  /// budget was exhausted (SendStatus::kFull).
  sim::WaitQueue& space_wq(std::uint32_t q) { return queues_.at(q)->space; }
  /// Class-cap waiters: producers NACKed on `cls`'s credit cap
  /// (SendStatus::kQuota) — woken only by that class draining.
  sim::WaitQueue& class_wq(std::uint32_t q, QosClass cls) {
    return queues_.at(q)->class_space[static_cast<std::size_t>(cls)];
  }
  runtime::Machine& machine() { return m_; }

 private:
  struct Word {
    std::uint64_t v;
    QosClass cls;
  };
  struct DevQueue {
    explicit DevQueue(sim::EventQueue& eq)
        : space(eq), class_space{sim::WaitQueue(eq), sim::WaitQueue(eq),
                                 sim::WaitQueue(eq)} {}
    std::deque<Word> data;
    std::uint32_t used[kQosClasses] = {0, 0, 0};  ///< occupancy by class
    std::uint32_t reserved[kQosClasses] = {0, 0, 0};  ///< open-frame grants
    std::uint32_t reserved_total = 0;
    sim::WaitQueue space;  ///< budget waiters, woken per freed credit
    sim::WaitQueue class_space[kQosClasses];  ///< class-cap waiters
  };

  runtime::Machine& m_;
  std::uint32_t credits_;
  std::uint32_t class_credits_[kQosClasses] = {0, 0, 0};
  std::vector<std::unique_ptr<DevQueue>> queues_;
};

/// CAF channel with a fixed frame length (`msg_words` register transfers
/// per message). CAF's native transfer unit is one 64-bit value; wider
/// messages are a sequence of transfers. The device's credit manager hands
/// a whole frame's worth of transfers to one endpoint at a time, modelled
/// here as per-direction frame mutexes — without them, concurrent M:N
/// producers would interleave words inside each other's frames, which the
/// real hardware's per-queue credit grant forbids. 1:1 channels (the
/// paper's Fig. 15 ping-pong) never contend on them. Because frame credits
/// are granted atomically at frame-open, the mutexes are held only for the
/// bounded register-transfer sequence — never across a credit park.
class SimCaf : public Channel {
 public:
  SimCaf(CafDevice& dev, std::uint8_t msg_words = 1, Tick device_lat = 14)
      : dev_(dev),
        q_(dev.open_queue()),
        words_(msg_words),
        lat_(device_lat),
        send_mu_(dev.machine().eq()),
        recv_mu_(dev.machine().eq()) {}

  sim::Co<SendResult> try_send(sim::SimThread t, const Msg& msg) override;
  sim::Co<RecvResult> try_recv(sim::SimThread t) override;
  sim::Co<SendManyResult> try_send_many(sim::SimThread t,
                                        std::span<const Msg> msgs) override;
  sim::Co<std::size_t> try_recv_many(sim::SimThread t,
                                     std::span<Msg> out) override;
  std::uint64_t depth() const override { return dev_.depth(q_) / words_; }

 protected:
  void sample_send_gates(BlockGates& g, const Msg& msg) override {
    g.full = dev_.space_wq(q_).epoch();
    g.quota = dev_.class_wq(q_, msg.qos).epoch();
  }
  sim::Co<void> send_blocked(sim::SimThread t, SendStatus why,
                             BlockGates& g, const Msg& msg) override {
    // Out of credits: park until the consumer-side register read frees
    // one — on the class-cap futex when the NACK named our class's cap,
    // on the whole-budget futex otherwise (the VL-style reason split).
    sim::EventQueue& eq = t.core->eq();
    obs::TraceBuffer* const tb = eq.trace();
    const std::uint32_t lane = obs::thread_tid(t.core->id(), t.tid);
    if (tb)
      tb->begin(eq.now(), lane, "caf", "credit_wait", "qos",
                static_cast<std::uint64_t>(msg.qos));
    if (why == SendStatus::kQuota)
      co_await t.park(dev_.class_wq(q_, msg.qos), g.quota);
    else
      co_await t.park(dev_.space_wq(q_), g.full);
    if (tb) tb->end(eq.now(), lane, "caf", "credit_wait");
  }
  sim::Co<void> recv_blocked(sim::SimThread t, std::uint64_t) override;

 private:
  /// One frame-open device round trip (grant + first word).
  sim::Co<CafDevice::Grant> dev_open(sim::SimThread t, std::uint64_t v,
                                     QosClass cls, std::uint32_t max_frames,
                                     std::uint32_t* granted);
  /// One reserved-credit enqueue round trip (never NACKs).
  sim::Co<void> dev_enq_reserved(sim::SimThread t, std::uint64_t v,
                                 QosClass cls);
  sim::Co<bool> dev_deq(sim::SimThread t, std::uint64_t& out, QosClass* cls);
  /// Transfer the tail of a frame batch whose credits are already granted.
  sim::Co<void> transfer_reserved(sim::SimThread t, std::span<const Msg> msgs,
                                  std::size_t frames, QosClass cls);
  /// Receive one whole frame; the leading word is already dequeued.
  sim::Co<void> finish_frame(sim::SimThread t, Msg& msg);

  CafDevice& dev_;
  std::uint32_t q_;
  std::uint8_t words_;
  Tick lat_;
  sim::AsyncMutex send_mu_;  ///< Frame-grant serialization, producer side.
  sim::AsyncMutex recv_mu_;  ///< Frame-grant serialization, consumer side.
};

}  // namespace vl::squeue
