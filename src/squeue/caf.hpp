#pragma once
// SimCaf: model of CAF, the "Core to Core Communication Acceleration
// Framework" (Wang et al., PACT'16) the paper compares against in Fig. 15.
//
// The two architectural differences the paper calls out (§ IV-B):
//   i.  CAF partitions buffer space between queues and applies credit
//       management for QoS — modelled as a fixed per-queue credit budget;
//       an enqueue with no credit is NACKed and the producer retries.
//   ii. Enqueue/dequeue transfer 64-bit register values between the core
//       and the central Queue Management Device — so a 64 B message costs
//       ~8 device round trips where VL pushes one whole cache line.
//
// The device stores queued words in internal SRAM (no cache/DRAM traffic
// for queued payloads, like VL), but its register-granularity interface is
// the bottleneck Fig. 15's ping-pong exposes.

#include <deque>
#include <memory>
#include <vector>

#include "sim/async_mutex.hpp"
#include "sim/sync.hpp"
#include "squeue/channel.hpp"
#include "runtime/machine.hpp"

namespace vl::squeue {

/// The central Queue Management Device: one per machine, shared by all
/// CAF channels. Each device queue carries a simulated-futex WaitQueue for
/// its credit grant: a producer whose enqueue is NACKed for lack of
/// credits parks and is woken by the consumer-side register read that
/// frees one, instead of hammering the device with retries. (Consumers
/// polling an *empty* queue keep polling — that register-read discovery
/// latency is part of the Fig. 15 model.)
class CafDevice {
 public:
  /// The config is the single source of both budgets: credits_per_queue
  /// caps each queue as a whole, class_credits caps how much of that
  /// budget each service class may occupy (0 = uncapped). All-zero class
  /// caps — the default — reproduce the plain fixed-budget device
  /// byte-for-byte.
  CafDevice(runtime::Machine& m, const sim::CafConfig& cfg)
      : m_(m), credits_(cfg.credits_per_queue) {
    for (std::size_t c = 0; c < kQosClasses; ++c)
      class_credits_[c] = cfg.class_credits[c];
  }
  /// Plain fixed-budget device (no class caps).
  explicit CafDevice(runtime::Machine& m, std::uint32_t credits_per_queue = 64)
      : CafDevice(m, sim::CafConfig{credits_per_queue, {0, 0, 0}}) {}

  /// Allocate a device queue id.
  std::uint32_t open_queue() {
    queues_.push_back(std::make_unique<DevQueue>(m_.eq()));
    return static_cast<std::uint32_t>(queues_.size() - 1);
  }

  /// One 64-bit enqueue register write. False = out of credits — either
  /// the queue's whole budget or the word's class cap.
  bool enq(std::uint32_t q, std::uint64_t v,
           QosClass cls = QosClass::kStandard) {
    DevQueue& dq = *queues_.at(q);
    const auto c = static_cast<std::size_t>(cls);
    if (dq.data.size() >= credits_) return false;
    if (class_credits_[c] != 0 && dq.used[c] >= class_credits_[c])
      return false;
    dq.data.push_back({v, cls});
    ++dq.used[c];
    return true;
  }

  /// One 64-bit dequeue register read. False = queue empty.
  bool deq(std::uint32_t q, std::uint64_t& out) {
    DevQueue& dq = *queues_.at(q);
    if (dq.data.empty()) return false;
    out = dq.data.front().v;
    --dq.used[static_cast<std::size_t>(dq.data.front().cls)];
    dq.data.pop_front();
    // A credit freed: wake a parked producer. With class caps active the
    // FIFO front may be blocked on a *different* class's cap than the one
    // just freed, so wake everyone and let the futex recheck sort it out
    // (the herd is bounded by the queue's producer count); without caps a
    // single wake suffices — any waiter can take the freed credit.
    if (qos_active())
      dq.space.wake_all();
    else
      dq.space.wake_one();
    return true;
  }

  std::uint64_t depth(std::uint32_t q) const {
    return queues_.at(q)->data.size();
  }
  /// Words of class `cls` currently queued (diagnostics/tests).
  std::uint64_t class_depth(std::uint32_t q, QosClass cls) const {
    return queues_.at(q)->used[static_cast<std::size_t>(cls)];
  }
  std::uint32_t class_credit(QosClass cls) const {
    return class_credits_[static_cast<std::size_t>(cls)];
  }
  sim::WaitQueue& space_wq(std::uint32_t q) { return queues_.at(q)->space; }
  runtime::Machine& machine() { return m_; }

 private:
  bool qos_active() const {
    for (std::size_t c = 0; c < kQosClasses; ++c)
      if (class_credits_[c] != 0) return true;
    return false;
  }

  struct Word {
    std::uint64_t v;
    QosClass cls;
  };
  struct DevQueue {
    explicit DevQueue(sim::EventQueue& eq) : space(eq) {}
    std::deque<Word> data;
    std::uint32_t used[kQosClasses] = {0, 0, 0};  ///< occupancy by class
    sim::WaitQueue space;  ///< woken when a credit frees (deq)
  };

  runtime::Machine& m_;
  std::uint32_t credits_;
  std::uint32_t class_credits_[kQosClasses] = {0, 0, 0};
  std::vector<std::unique_ptr<DevQueue>> queues_;
};

/// CAF channel with a fixed frame length (`msg_words` register transfers
/// per message). CAF's native transfer unit is one 64-bit value; wider
/// messages are a sequence of transfers. The device's credit manager hands
/// a whole frame's worth of transfers to one endpoint at a time, modelled
/// here as per-direction frame mutexes — without them, concurrent M:N
/// producers would interleave words inside each other's frames, which the
/// real hardware's per-queue credit grant forbids. 1:1 channels (the
/// paper's Fig. 15 ping-pong) never contend on them.
class SimCaf : public Channel {
 public:
  SimCaf(CafDevice& dev, std::uint8_t msg_words = 1, Tick device_lat = 14)
      : dev_(dev),
        q_(dev.open_queue()),
        words_(msg_words),
        lat_(device_lat),
        send_mu_(dev.machine().eq()),
        recv_mu_(dev.machine().eq()) {}

  sim::Co<void> send(sim::SimThread t, Msg msg) override;
  sim::Co<Msg> recv(sim::SimThread t) override;
  std::uint64_t depth() const override { return dev_.depth(q_) / words_; }

 private:
  /// One register-granularity device round trip.
  sim::Co<bool> dev_enq(sim::SimThread t, std::uint64_t v, QosClass cls);
  sim::Co<bool> dev_deq(sim::SimThread t, std::uint64_t& out);

  CafDevice& dev_;
  std::uint32_t q_;
  std::uint8_t words_;
  Tick lat_;
  sim::AsyncMutex send_mu_;  ///< Frame-grant serialization, producer side.
  sim::AsyncMutex recv_mu_;  ///< Frame-grant serialization, consumer side.
};

}  // namespace vl::squeue
