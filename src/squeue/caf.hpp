#pragma once
// SimCaf: model of CAF, the "Core to Core Communication Acceleration
// Framework" (Wang et al., PACT'16) the paper compares against in Fig. 15.
//
// The two architectural differences the paper calls out (§ IV-B):
//   i.  CAF partitions buffer space between queues and applies credit
//       management for QoS — modelled as a fixed per-queue credit budget;
//       an enqueue with no credit is NACKed and the producer retries.
//   ii. Enqueue/dequeue transfer 64-bit register values between the core
//       and the central Queue Management Device — so a 64 B message costs
//       ~8 device round trips where VL pushes one whole cache line.
//
// The device stores queued words in internal SRAM (no cache/DRAM traffic
// for queued payloads, like VL), but its register-granularity interface is
// the bottleneck Fig. 15's ping-pong exposes.

#include <deque>
#include <memory>
#include <vector>

#include "sim/async_mutex.hpp"
#include "sim/sync.hpp"
#include "squeue/channel.hpp"
#include "runtime/machine.hpp"

namespace vl::squeue {

/// The central Queue Management Device: one per machine, shared by all
/// CAF channels. Each device queue carries a simulated-futex WaitQueue for
/// its credit grant: a producer whose enqueue is NACKed for lack of
/// credits parks and is woken by the consumer-side register read that
/// frees one, instead of hammering the device with retries. (Consumers
/// polling an *empty* queue keep polling — that register-read discovery
/// latency is part of the Fig. 15 model.)
class CafDevice {
 public:
  CafDevice(runtime::Machine& m, std::uint32_t credits_per_queue = 64)
      : m_(m), credits_(credits_per_queue) {}

  /// Allocate a device queue id.
  std::uint32_t open_queue() {
    queues_.push_back(std::make_unique<DevQueue>(m_.eq()));
    return static_cast<std::uint32_t>(queues_.size() - 1);
  }

  /// One 64-bit enqueue register write. False = out of credits.
  bool enq(std::uint32_t q, std::uint64_t v) {
    DevQueue& dq = *queues_.at(q);
    if (dq.data.size() >= credits_) return false;
    dq.data.push_back(v);
    return true;
  }

  /// One 64-bit dequeue register read. False = queue empty.
  bool deq(std::uint32_t q, std::uint64_t& out) {
    DevQueue& dq = *queues_.at(q);
    if (dq.data.empty()) return false;
    out = dq.data.front();
    dq.data.pop_front();
    dq.space.wake_one();  // a credit freed: wake a parked producer
    return true;
  }

  std::uint64_t depth(std::uint32_t q) const { return queues_.at(q)->data.size(); }
  sim::WaitQueue& space_wq(std::uint32_t q) { return queues_.at(q)->space; }
  runtime::Machine& machine() { return m_; }

 private:
  struct DevQueue {
    explicit DevQueue(sim::EventQueue& eq) : space(eq) {}
    std::deque<std::uint64_t> data;
    sim::WaitQueue space;  ///< woken when a credit frees (deq)
  };

  runtime::Machine& m_;
  std::uint32_t credits_;
  std::vector<std::unique_ptr<DevQueue>> queues_;
};

/// CAF channel with a fixed frame length (`msg_words` register transfers
/// per message). CAF's native transfer unit is one 64-bit value; wider
/// messages are a sequence of transfers. The device's credit manager hands
/// a whole frame's worth of transfers to one endpoint at a time, modelled
/// here as per-direction frame mutexes — without them, concurrent M:N
/// producers would interleave words inside each other's frames, which the
/// real hardware's per-queue credit grant forbids. 1:1 channels (the
/// paper's Fig. 15 ping-pong) never contend on them.
class SimCaf : public Channel {
 public:
  SimCaf(CafDevice& dev, std::uint8_t msg_words = 1, Tick device_lat = 14)
      : dev_(dev),
        q_(dev.open_queue()),
        words_(msg_words),
        lat_(device_lat),
        send_mu_(dev.machine().eq()),
        recv_mu_(dev.machine().eq()) {}

  sim::Co<void> send(sim::SimThread t, Msg msg) override;
  sim::Co<Msg> recv(sim::SimThread t) override;
  std::uint64_t depth() const override { return dev_.depth(q_) / words_; }

 private:
  /// One register-granularity device round trip.
  sim::Co<bool> dev_enq(sim::SimThread t, std::uint64_t v);
  sim::Co<bool> dev_deq(sim::SimThread t, std::uint64_t& out);

  CafDevice& dev_;
  std::uint32_t q_;
  std::uint8_t words_;
  Tick lat_;
  sim::AsyncMutex send_mu_;  ///< Frame-grant serialization, producer side.
  sim::AsyncMutex recv_mu_;  ///< Frame-grant serialization, consumer side.
};

}  // namespace vl::squeue
