#pragma once
// VlChannel: the Channel adapter over the VL runtime library. Each calling
// thread lazily opens its own endpoint (unique 64 B device-address offset +
// private user-space line buffer) the first time it sends or receives —
// exactly the paper's model where every producer/consumer owns endpoint
// state and *no* queue state is shared between threads.
//
// Channel v2 fast paths: try_send_many stages a run of message lines in
// the endpoint ring and pushes them with one fused port transaction under
// one prodBuf/quota acquisition (Producer::try_enqueue_burst); on a
// single-consumer channel try_recv_many registers demand for a run of
// lines at once (Consumer::arm_ahead) so a queued burst injects into
// consecutive lines and drains by pure local control-word polls. Blocking
// sends park on the machine's VL futexes split by NACK reason — the
// per-(device,SQI) quota queue vs the global buffer-space queue, with the
// counted-wake baton pass-back (see sim/README.md).

#include <map>
#include <memory>

#include "isa/vl_port.hpp"
#include "runtime/vl_queue.hpp"
#include "squeue/channel.hpp"

namespace vl::squeue {

class VlChannel : public Channel {
 public:
  VlChannel(runtime::VlQueueLib& lib, const std::string& name,
            std::size_t buf_lines = 8)
      : lib_(lib), q_(lib.open(name)), buf_lines_(buf_lines) {}

  sim::Co<SendResult> try_send(sim::SimThread t, const Msg& msg) override;
  sim::Co<RecvResult> try_recv(sim::SimThread t) override;
  sim::Co<SendManyResult> try_send_many(sim::SimThread t,
                                        std::span<const Msg> msgs) override;
  sim::Co<std::size_t> try_recv_many(sim::SimThread t,
                                     std::span<Msg> out) override;

  /// Blocking batched send, specialised over the split stage/push surface:
  /// each lap of lines is written into the endpoint ring ONCE, and only
  /// the fused push is retried after a back-pressure park — a woken
  /// producer re-pays one port transaction, not the payload stores.
  sim::Co<void> send_many(sim::SimThread t, std::span<const Msg> msgs) override;

  /// Message lines queued in the routing device for this channel's SQI
  /// (one line == one message). Lines already injected into a consumer's
  /// endpoint buffer but not yet drained are not counted — depth() is the
  /// device-resident backlog, the quantity back-pressure acts on.
  std::uint64_t depth() const override;

  std::uint64_t producer_retries() const;

  /// SQI re-registration (lifecycle reconfig@): Consumer::migrate() onto
  /// the same thread — every pushable tag this endpoint armed drops, an
  /// in-flight injection rejects and its line recovers through the
  /// device's § III-B path, and the next receive re-registers demand.
  /// Frames already landed in the endpoint ring stay readable (the
  /// landed-frame sweep covers out-of-order landings), so no message is
  /// lost or duplicated.
  bool reconfigure(sim::SimThread t) override;

 protected:
  void sample_send_gates(BlockGates& g, const Msg&) override;
  sim::Co<void> send_blocked(sim::SimThread t, SendStatus why,
                             BlockGates& g, const Msg&) override;
  // recv_blocked: inherited poll at kPollBackoff — the § III-B control-word
  // discovery interval; the VLRD does not wake consumers.

 private:
  using Key = std::pair<CoreId, int>;  // (core, tid)
  runtime::Producer& producer_for(sim::SimThread t);
  runtime::Consumer& consumer_for(sim::SimThread t);
  static SendStatus status_from(int rc) {
    return rc == isa::kVlNackQuota ? SendStatus::kQuota : SendStatus::kFull;
  }

  runtime::VlQueueLib& lib_;
  runtime::QueueHandle q_;
  std::size_t buf_lines_;
  std::map<Key, std::unique_ptr<runtime::Producer>> producers_;
  std::map<Key, std::unique_ptr<runtime::Consumer>> consumers_;
};

}  // namespace vl::squeue
