#pragma once
// VlChannel: the Channel adapter over the VL runtime library. Each calling
// thread lazily opens its own endpoint (unique 64 B device-address offset +
// private user-space line buffer) the first time it sends or receives —
// exactly the paper's model where every producer/consumer owns endpoint
// state and *no* queue state is shared between threads.

#include <map>
#include <memory>

#include "runtime/vl_queue.hpp"
#include "squeue/channel.hpp"

namespace vl::squeue {

class VlChannel : public Channel {
 public:
  VlChannel(runtime::VlQueueLib& lib, const std::string& name,
            std::size_t buf_lines = 8)
      : lib_(lib), q_(lib.open(name)), buf_lines_(buf_lines) {}

  sim::Co<void> send(sim::SimThread t, Msg msg) override;
  sim::Co<Msg> recv(sim::SimThread t) override;

  /// Message lines queued in the routing device for this channel's SQI
  /// (one line == one message). Lines already injected into a consumer's
  /// endpoint buffer but not yet drained are not counted — depth() is the
  /// device-resident backlog, the quantity back-pressure acts on.
  std::uint64_t depth() const override;

  std::uint64_t producer_retries() const;

 private:
  using Key = std::pair<CoreId, int>;  // (core, tid)
  runtime::Producer& producer_for(sim::SimThread t);
  runtime::Consumer& consumer_for(sim::SimThread t);

  runtime::VlQueueLib& lib_;
  runtime::QueueHandle q_;
  std::size_t buf_lines_;
  std::map<Key, std::unique_ptr<runtime::Producer>> producers_;
  std::map<Key, std::unique_ptr<runtime::Consumer>> consumers_;
};

}  // namespace vl::squeue
