#pragma once
// Simulated lock primitives for the lockhammer reproduction (paper Fig. 2):
// a CAS-based lock, a ticket lock, and a test-and-test-and-set spin lock,
// all operating on shared coherent memory so the contention cost emerges
// from the cache model (line bouncing, invalidations) rather than from a
// hand-tuned constant.
//
// Waiting is adaptive, like a glibc futex mutex: a contender spins a
// bounded number of rounds (generating exactly the coherence traffic the
// Fig. 2 sweep measures), then parks on the lock's WaitQueue and donates
// its core residency; release wakes the parked waiter. Long waits thus
// cost O(1) events instead of O(wait/Pause) polls, while short-hold
// contention behaves as before.
//
// Note: SimCaf multi-word messages and these locks are exercised by the
// lockhammer and pipeline benchmarks; see bench/fig02_lockhammer.

#include <map>
#include <memory>
#include <utility>

#include "runtime/machine.hpp"
#include "sim/core.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace vl::squeue {

/// Abstract lock so the lockhammer harness can sweep implementations.
class SimLock {
 public:
  virtual ~SimLock() = default;
  virtual sim::Co<void> acquire(sim::SimThread t) = 0;
  virtual sim::Co<void> release(sim::SimThread t) = 0;
  virtual const char* name() const = 0;
};

/// Plain CAS lock: bounded CAS(0 -> 1) retry, then park.
class SimCasLock : public SimLock {
 public:
  explicit SimCasLock(runtime::Machine& m)
      : a_(m.alloc(kLineSize)), wq_(m.eq()) {}
  sim::Co<void> acquire(sim::SimThread t) override;
  sim::Co<void> release(sim::SimThread t) override;
  const char* name() const override { return "cas_lock"; }

 private:
  Addr a_;
  sim::WaitQueue wq_;
};

/// Test-and-test-and-set spin lock: spin on a Shared copy, then park.
class SimSpinLock : public SimLock {
 public:
  explicit SimSpinLock(runtime::Machine& m)
      : a_(m.alloc(kLineSize)), wq_(m.eq()) {}
  sim::Co<void> acquire(sim::SimThread t) override;
  sim::Co<void> release(sim::SimThread t) override;
  const char* name() const override { return "spin_lock"; }

 private:
  Addr a_;
  sim::WaitQueue wq_;
};

/// Ticket lock: FIFO-fair; next-ticket and now-serving words share a line
/// (the classic layout — and the classic bounce). The holder of the next
/// ticket spins; everyone further back parks and is woken (broadcast) on
/// each release to re-check now-serving.
class SimTicketLock : public SimLock {
 public:
  explicit SimTicketLock(runtime::Machine& m)
      : a_(m.alloc(kLineSize)), wq_(m.eq()) {}
  sim::Co<void> acquire(sim::SimThread t) override;
  sim::Co<void> release(sim::SimThread t) override;
  const char* name() const override { return "ticket_lock"; }

 private:
  Addr a_;  // +0: next ticket, +8: now serving
  sim::WaitQueue wq_;
};

/// MCS queue lock (extension): contenders enqueue a per-thread node with a
/// swap on the tail pointer and then spin on *their own* node's flag, so
/// waiting generates no shared-line bouncing — the scalable contrast to
/// the three locks above in the Fig. 2 sweep. Each node occupies its own
/// cache line (+0 locked flag, +8 next pointer); each node also carries a
/// private WaitQueue so the releaser wakes exactly its successor.
class SimMcsLock : public SimLock {
 public:
  explicit SimMcsLock(runtime::Machine& m) : m_(m), tail_(m.alloc(kLineSize)) {}
  sim::Co<void> acquire(sim::SimThread t) override;
  sim::Co<void> release(sim::SimThread t) override;
  const char* name() const override { return "mcs_lock"; }

 private:
  struct Node {
    Addr addr = 0;
    std::unique_ptr<sim::WaitQueue> wq;
  };
  Node& node_for(sim::SimThread t);

  runtime::Machine& m_;
  Addr tail_;
  std::map<std::pair<CoreId, int>, Node> nodes_;  // (core, tid) -> node
  std::map<Addr, sim::WaitQueue*> wq_by_node_;    // successor lookup
};

}  // namespace vl::squeue
