#include "squeue/blfq.hpp"

#include <cassert>

namespace vl::squeue {

namespace {
constexpr Tick kEmptyBackoff = 32;
constexpr Tick kContendedBackoff = 4;
}  // namespace

SimBlfq::SimBlfq(runtime::Machine& m, std::size_t capacity)
    : m_(m), cap_(capacity), mask_(capacity - 1) {
  assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
  tail_ = m_.alloc(kLineSize);
  head_ = m_.alloc(kLineSize);
  cells_ = m_.alloc(capacity * kCellStride);
  // Sequence initialization (functional, pre-run): cell i starts at seq i.
  for (std::uint64_t i = 0; i < capacity; ++i)
    m_.mem().backing().write(cell_meta(i), i, 8);
}

sim::Co<void> SimBlfq::send(sim::SimThread t, Msg msg) {
  for (;;) {
    const std::uint64_t pos = co_await t.load(tail_, 8);
    const std::uint64_t seq = co_await t.load(cell_meta(pos), 8);
    const auto dif = static_cast<std::int64_t>(seq - pos);
    if (dif == 0) {
      // Claim the slot by advancing the shared tail — the contended CAS.
      if (co_await t.cas64(tail_, pos, pos + 1)) {
        const Addr data = cell_data(pos);
        co_await t.store(data, msg.n, 1);
        for (std::uint8_t i = 0; i < msg.n; ++i)
          co_await t.store(data + 8 + i * 8, msg.w[i], 8);
        // Publish: consumers wait for seq == pos + 1.
        co_await t.store(cell_meta(pos), pos + 1, 8);
        co_return;
      }
      co_await t.compute(kContendedBackoff);
    } else if (dif < 0) {
      co_await t.compute(kEmptyBackoff);  // ring wrapped: slot still in use
    } else {
      co_await t.compute(kContendedBackoff);  // lost the race; reload tail
    }
  }
}

sim::Co<Msg> SimBlfq::recv(sim::SimThread t) {
  for (;;) {
    const std::uint64_t pos = co_await t.load(head_, 8);
    const std::uint64_t seq = co_await t.load(cell_meta(pos), 8);
    const auto dif = static_cast<std::int64_t>(seq - (pos + 1));
    if (dif == 0) {
      if (co_await t.cas64(head_, pos, pos + 1)) {
        const Addr data = cell_data(pos);
        Msg msg;
        msg.n = static_cast<std::uint8_t>(co_await t.load(data, 1));
        for (std::uint8_t i = 0; i < msg.n; ++i)
          msg.w[i] = co_await t.load(data + 8 + i * 8, 8);
        // Recycle the slot for the producer one lap ahead.
        co_await t.store(cell_meta(pos), pos + cap_, 8);
        co_return msg;
      }
      co_await t.compute(kContendedBackoff);
    } else if (dif < 0) {
      co_await t.compute(kEmptyBackoff);  // empty
    } else {
      co_await t.compute(kContendedBackoff);
    }
  }
}

std::uint64_t SimBlfq::depth() const {
  const std::uint64_t tail = m_.mem().backing().read(tail_, 8);
  const std::uint64_t head = m_.mem().backing().read(head_, 8);
  return tail >= head ? tail - head : 0;
}

}  // namespace vl::squeue
