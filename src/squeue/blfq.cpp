#include "squeue/blfq.hpp"

#include <algorithm>
#include <cassert>

namespace vl::squeue {

namespace {
constexpr Tick kEmptyBackoff = 32;
constexpr Tick kContendedBackoff = 4;

std::uint64_t pack_hdr(const Msg& msg) {
  return static_cast<std::uint64_t>(msg.n) |
         (static_cast<std::uint64_t>(msg.qos) << 8);
}
}  // namespace

SimBlfq::SimBlfq(runtime::Machine& m, std::size_t capacity)
    : m_(m), cap_(capacity), mask_(capacity - 1) {
  assert(capacity >= 2 && (capacity & (capacity - 1)) == 0);
  tail_ = m_.alloc(kLineSize);
  head_ = m_.alloc(kLineSize);
  cells_ = m_.alloc(capacity * kCellStride);
  // Sequence initialization (functional, pre-run): cell i starts at seq i.
  for (std::uint64_t i = 0; i < capacity; ++i)
    m_.mem().backing().write(cell_meta(i), i, 8);
}

sim::Co<void> SimBlfq::store_cell(sim::SimThread t, std::uint64_t pos,
                                  const Msg& msg) {
  const Addr data = cell_data(pos);
  // Header word: element count plus the service class, so per-class
  // accounting stays truthful through the software ring.
  co_await t.store(data, pack_hdr(msg), 2);
  for (std::uint8_t i = 0; i < msg.n; ++i)
    co_await t.store(data + 8 + i * 8, msg.w[i], 8);
  // Publish: consumers wait for seq == pos + 1.
  co_await t.store(cell_meta(pos), pos + 1, 8);
}

sim::Co<Msg> SimBlfq::load_cell(sim::SimThread t, std::uint64_t pos) {
  const Addr data = cell_data(pos);
  Msg msg;
  const auto hdr = co_await t.load(data, 2);
  msg.n = static_cast<std::uint8_t>(hdr & 0xff);
  msg.qos = qos_class_from_byte(static_cast<std::uint8_t>(hdr >> 8));
  for (std::uint8_t i = 0; i < msg.n; ++i)
    msg.w[i] = co_await t.load(data + 8 + i * 8, 8);
  // Recycle the slot for the producer one lap ahead.
  co_await t.store(cell_meta(pos), pos + cap_, 8);
  co_return msg;
}

sim::Co<SendResult> SimBlfq::try_send(sim::SimThread t, const Msg& msg) {
  for (;;) {
    const std::uint64_t pos = co_await t.load(tail_, 8);
    const std::uint64_t seq = co_await t.load(cell_meta(pos), 8);
    const auto dif = static_cast<std::int64_t>(seq - pos);
    if (dif == 0) {
      // Claim the slot by advancing the shared tail — the contended CAS.
      if (co_await t.cas64(tail_, pos, pos + 1)) {
        co_await store_cell(t, pos, msg);
        co_return SendResult{SendStatus::kOk};
      }
      co_await t.compute(kContendedBackoff);  // lost the race; reload
    } else if (dif < 0) {
      // Ring wrapped: the slot one lap behind is still occupied. BLFQ has
      // no back-pressure wake — the caller polls.
      co_return SendResult{SendStatus::kFull};
    } else {
      co_await t.compute(kContendedBackoff);  // tail moved on; reload
    }
  }
}

sim::Co<RecvResult> SimBlfq::try_recv(sim::SimThread t) {
  for (;;) {
    const std::uint64_t pos = co_await t.load(head_, 8);
    const std::uint64_t seq = co_await t.load(cell_meta(pos), 8);
    const auto dif = static_cast<std::int64_t>(seq - (pos + 1));
    if (dif == 0) {
      if (co_await t.cas64(head_, pos, pos + 1)) {
        RecvResult r;
        r.status = RecvStatus::kOk;
        r.msg = co_await load_cell(t, pos);
        co_return r;
      }
      co_await t.compute(kContendedBackoff);
    } else if (dif < 0) {
      co_return RecvResult{};  // empty
    } else {
      co_await t.compute(kContendedBackoff);
    }
  }
}

sim::Co<SendManyResult> SimBlfq::try_send_many(sim::SimThread t,
                                               std::span<const Msg> msgs) {
  SendManyResult r;
  while (r.sent < msgs.size()) {
    const std::uint64_t pos = co_await t.load(tail_, 8);
    // Find the longest claimable run: producer-ready cells are contiguous
    // from the tail (consumers recycle in head order), so probing the
    // run's *last* cell suffices; shrink until it reads ready.
    std::size_t k = std::min(msgs.size() - r.sent, kMaxRun);
    bool raced = false;
    while (k >= 1) {
      const std::uint64_t want = pos + k - 1;
      const std::uint64_t seq = co_await t.load(cell_meta(want), 8);
      const auto dif = static_cast<std::int64_t>(seq - want);
      if (dif == 0) break;
      if (dif > 0) {  // tail already advanced past our snapshot
        raced = true;
        break;
      }
      if (k == 1) {  // even one slot is still occupied a lap behind: full
        r.status = SendStatus::kFull;
        co_return r;
      }
      k /= 2;
    }
    if (raced) {
      co_await t.compute(kContendedBackoff);
      continue;
    }
    // One CAS claims the whole run — the batched amortization of the
    // contended shared-tail ownership transfer.
    if (!co_await t.cas64(tail_, pos, pos + k)) {
      co_await t.compute(kContendedBackoff);
      continue;
    }
    for (std::size_t i = 0; i < k; ++i) {
      // A consumer one lap behind may still be recycling an inner cell
      // (recycles can complete out of order); its store is already in
      // flight, so this wait is memory-latency-bounded, not queue-state
      // blocking.
      for (;;) {
        const std::uint64_t p = pos + i;
        if (co_await t.load(cell_meta(p), 8) == p) break;
        co_await t.compute(kContendedBackoff);
      }
      co_await store_cell(t, pos + i, msgs[r.sent + i]);
    }
    r.sent += k;
  }
  co_return r;
}

sim::Co<std::size_t> SimBlfq::try_recv_many(sim::SimThread t,
                                            std::span<Msg> out) {
  std::size_t got = 0;
  while (got < out.size()) {
    const std::uint64_t pos = co_await t.load(head_, 8);
    std::size_t k = std::min(out.size() - got, kMaxRun);
    bool raced = false;
    while (k >= 1) {
      const std::uint64_t want = pos + k - 1;
      const std::uint64_t seq = co_await t.load(cell_meta(want), 8);
      const auto dif = static_cast<std::int64_t>(seq - (want + 1));
      if (dif == 0) break;
      if (dif > 0) {
        raced = true;
        break;
      }
      if (k == 1) co_return got;  // nothing (more) published
      k /= 2;
    }
    if (raced) {
      co_await t.compute(kContendedBackoff);
      continue;
    }
    if (!co_await t.cas64(head_, pos, pos + k)) {
      co_await t.compute(kContendedBackoff);
      continue;
    }
    for (std::size_t i = 0; i < k; ++i) {
      for (;;) {  // producers may publish inner cells out of order
        const std::uint64_t p = pos + i;
        if (co_await t.load(cell_meta(p), 8) == p + 1) break;
        co_await t.compute(kContendedBackoff);
      }
      out[got + i] = co_await load_cell(t, pos + i);
    }
    got += k;
  }
  co_return got;
}

sim::Co<void> SimBlfq::send_blocked(sim::SimThread t, SendStatus,
                                    BlockGates&, const Msg&) {
  co_await t.compute(kEmptyBackoff);  // no wake source: poll the wrap
}

sim::Co<void> SimBlfq::recv_blocked(sim::SimThread t, std::uint64_t) {
  co_await t.compute(kEmptyBackoff);
}

std::uint64_t SimBlfq::depth() const {
  const std::uint64_t tail = m_.mem().backing().read(tail_, 8);
  const std::uint64_t head = m_.mem().backing().read(head_, 8);
  return tail >= head ? tail - head : 0;
}

}  // namespace vl::squeue
