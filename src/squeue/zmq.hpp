#pragma once
// SimZmq: ZeroMQ-style comparison queue (§ IV-A, "ZMQ 4.2.1").
//
// Behavioural model, matching the two properties Fig. 11 exercises:
//   1. More per-message software overhead than BLFQ (ZeroMQ's socket layer,
//      message envelopes, batching logic) — modelled as fixed extra compute
//      cycles around each operation. This is why ZMQ loses on the
//      latency-bound halo/bitonic kernels.
//   2. A high-water-mark back-pressure mechanism: producers block when the
//      channel holds `hwm` messages, so incast/FIR occupancy never spills
//      to DRAM. This is why ZMQ beats BLFQ on those two.
// Synchronization is a spin lock over the channel state (lock word, ring
// indices and cells in shared, coherent memory), which yields the elevated
// snoop/upgrade traffic Fig. 13 measures for ZMQ.
//
// Blocked endpoints do not poll: like real ZeroMQ parking a blocked socket
// on a futex, an empty-queue consumer (or full-queue producer) parks on a
// simulated WaitQueue and is woken by the state-changing side, so a blocked
// thread generates zero events and donates its core residency while it
// waits. The short-lived channel lock still spins (that coherence traffic
// is the Fig. 13 effect being modelled).
//
// Channel v2 batching mirrors real ZeroMQ's message batching: one socket
// software pass and one channel-lock acquisition move a contiguous run of
// ring cells, so the per-message lock/unlock and envelope cost is paid once
// per batch.

#include "sim/sync.hpp"
#include "squeue/channel.hpp"
#include "runtime/machine.hpp"

namespace vl::squeue {

class SimZmq : public Channel {
 public:
  /// `hwm` (power of two) is the high-water mark / ring capacity.
  SimZmq(runtime::Machine& m, std::size_t hwm, Tick sw_overhead = 250);

  sim::Co<SendResult> try_send(sim::SimThread t, const Msg& msg) override;
  sim::Co<RecvResult> try_recv(sim::SimThread t) override;
  sim::Co<SendManyResult> try_send_many(sim::SimThread t,
                                        std::span<const Msg> msgs) override;
  sim::Co<std::size_t> try_recv_many(sim::SimThread t,
                                     std::span<Msg> out) override;
  std::uint64_t depth() const override;
  sim::WaitQueue* recv_wq() override { return &not_empty_; }

 protected:
  void sample_send_gates(BlockGates& g, const Msg&) override {
    g.full = not_full_.epoch();
  }
  sim::Co<void> send_blocked(sim::SimThread t, SendStatus,
                             BlockGates& g, const Msg&) override {
    // High-water mark: park until a consumer frees a slot (the
    // back-pressure path) instead of burning events polling.
    co_await t.park(not_full_, g.full);
  }

 private:
  sim::Co<void> lock(sim::SimThread t);
  sim::Co<void> unlock(sim::SimThread t);
  sim::Co<void> store_cell(sim::SimThread t, std::uint64_t pos,
                           const Msg& msg);
  sim::Co<Msg> load_cell(sim::SimThread t, std::uint64_t pos);
  Addr cell(std::uint64_t pos) const {
    return cells_ + (pos & mask_) * kCellStride;
  }

  static constexpr Addr kCellStride = 2 * kLineSize;
  /// Longest run moved under one lock hold / software pass.
  static constexpr std::size_t kMaxRun = 8;

  runtime::Machine& m_;
  std::size_t hwm_;
  std::uint64_t mask_;
  Tick overhead_;
  Addr lock_ = 0;   ///< spin-lock word (own line)
  Addr meta_ = 0;   ///< head (+0) and tail (+8), lock-protected, one line
  Addr cells_ = 0;
  sim::WaitQueue not_empty_;  ///< consumers park here when head == tail
  sim::WaitQueue not_full_;   ///< producers park here at the high-water mark
  sim::WaitQueue lock_wq_;    ///< adaptive channel-lock wait (spin, then park)
};

}  // namespace vl::squeue
