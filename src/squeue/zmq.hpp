#pragma once
// SimZmq: ZeroMQ-style comparison queue (§ IV-A, "ZMQ 4.2.1").
//
// Behavioural model, matching the two properties Fig. 11 exercises:
//   1. More per-message software overhead than BLFQ (ZeroMQ's socket layer,
//      message envelopes, batching logic) — modelled as fixed extra compute
//      cycles around each operation. This is why ZMQ loses on the
//      latency-bound halo/bitonic kernels.
//   2. A high-water-mark back-pressure mechanism: producers block when the
//      channel holds `hwm` messages, so incast/FIR occupancy never spills
//      to DRAM. This is why ZMQ beats BLFQ on those two.
// Synchronization is a spin lock over the channel state (lock word, ring
// indices and cells in shared, coherent memory), which yields the elevated
// snoop/upgrade traffic Fig. 13 measures for ZMQ.

#include "squeue/channel.hpp"
#include "runtime/machine.hpp"

namespace vl::squeue {

class SimZmq : public Channel {
 public:
  /// `hwm` (power of two) is the high-water mark / ring capacity.
  SimZmq(runtime::Machine& m, std::size_t hwm, Tick sw_overhead = 250);

  sim::Co<void> send(sim::SimThread t, Msg msg) override;
  sim::Co<Msg> recv(sim::SimThread t) override;
  std::uint64_t depth() const override;

 private:
  sim::Co<void> lock(sim::SimThread t);
  sim::Co<void> unlock(sim::SimThread t);
  Addr cell(std::uint64_t pos) const {
    return cells_ + (pos & mask_) * kCellStride;
  }

  static constexpr Addr kCellStride = 2 * kLineSize;

  runtime::Machine& m_;
  std::size_t hwm_;
  std::uint64_t mask_;
  Tick overhead_;
  Addr lock_ = 0;   ///< spin-lock word (own line)
  Addr meta_ = 0;   ///< head (+0) and tail (+8), lock-protected, one line
  Addr cells_ = 0;
};

}  // namespace vl::squeue
