#include "squeue/caf.hpp"

#include <cassert>

namespace vl::squeue {

namespace {
constexpr Tick kRetryBackoff = 48;  ///< Empty-dequeue register-poll pause.
}

sim::Co<bool> SimCaf::dev_enq(sim::SimThread t, std::uint64_t v,
                              QosClass cls) {
  co_await t.core->acquire_port(t.tid);
  auto& m = dev_.machine();
  const Tick arrive = m.mem().device_hop(0);
  co_await sim::DelayUntil(m.eq(), arrive);
  const bool ok = dev_.enq(q_, v, cls);
  const Tick resp =
      lat_ > m.cfg().cache.bus_hop ? lat_ - m.cfg().cache.bus_hop : 0;
  co_await sim::Delay(m.eq(), resp);
  t.core->release_port();
  co_return ok;
}

sim::Co<bool> SimCaf::dev_deq(sim::SimThread t, std::uint64_t& out) {
  co_await t.core->acquire_port(t.tid);
  auto& m = dev_.machine();
  const Tick arrive = m.mem().device_hop(0);
  co_await sim::DelayUntil(m.eq(), arrive);
  const bool ok = dev_.deq(q_, out);
  const Tick resp =
      lat_ > m.cfg().cache.bus_hop ? lat_ - m.cfg().cache.bus_hop : 0;
  co_await sim::Delay(m.eq(), resp);
  t.core->release_port();
  co_return ok;
}

sim::Co<void> SimCaf::send(sim::SimThread t, Msg msg) {
  // One register transfer per payload word — the cost of a register-
  // granularity interface. Frame length is fixed per channel.
  assert(msg.n == words_ && "SimCaf channels carry fixed-size frames");
  co_await send_mu_.lock();  // device frame grant: no producer interleaving
  for (std::uint8_t i = 0; i < msg.n; ++i) {
    for (;;) {
      // Sample the credit futex before the attempt so a dequeue landing
      // mid-round-trip is never lost; NACK means out of credits -> park
      // until the consumer side frees one.
      // NB: the await must not sit in the loop condition — GCC 12 destroys
      // condition temporaries before the suspended callee resumes, which
      // tears down the in-flight coroutine (silent no-op).
      const std::uint64_t gate = dev_.space_wq(q_).epoch();
      const bool ok = co_await dev_enq(t, msg.w[i], msg.qos);
      if (ok) break;
      co_await t.park(dev_.space_wq(q_), gate);
    }
  }
  send_mu_.unlock();
}

sim::Co<Msg> SimCaf::recv(sim::SimThread t) {
  Msg msg;
  msg.n = words_;
  co_await recv_mu_.lock();  // device frame grant: no consumer interleaving
  for (std::uint8_t i = 0; i < words_; ++i) {
    std::uint64_t v = 0;
    for (;;) {
      const bool ok = co_await dev_deq(t, v);  // see send() re loop conditions
      if (ok) break;
      // Empty queue: CAF's dequeue *is* a polling register read — the
      // discovery latency Fig. 15 measures — so the consumer keeps
      // polling on a fixed pause rather than parking.
      co_await t.compute(kRetryBackoff);
    }
    msg.w[i] = v;
  }
  recv_mu_.unlock();
  co_return msg;
}

}  // namespace vl::squeue
