#include "squeue/caf.hpp"

#include <cassert>

namespace vl::squeue {

namespace {
constexpr Tick kRetryBackoff = 48;  ///< Empty-dequeue register-poll pause.
}

// Every device access is a register-granularity round trip: hold the issue
// port, one bus hop out, device-side operation, bounded response.

sim::Co<CafDevice::Grant> SimCaf::dev_open(sim::SimThread t, std::uint64_t v,
                                           QosClass cls,
                                           std::uint32_t max_frames,
                                           std::uint32_t* granted) {
  co_await t.core->acquire_port(t.tid);
  auto& m = dev_.machine();
  const Tick arrive = m.mem().device_hop(0);
  co_await sim::DelayUntil(m.eq(), arrive);
  const CafDevice::Grant g =
      dev_.enq_open(q_, v, cls, words_, max_frames, granted);
  const Tick resp =
      lat_ > m.cfg().cache.bus_hop ? lat_ - m.cfg().cache.bus_hop : 0;
  co_await sim::Delay(m.eq(), resp);
  t.core->release_port();
  co_return g;
}

sim::Co<void> SimCaf::dev_enq_reserved(sim::SimThread t, std::uint64_t v,
                                       QosClass cls) {
  co_await t.core->acquire_port(t.tid);
  auto& m = dev_.machine();
  const Tick arrive = m.mem().device_hop(0);
  co_await sim::DelayUntil(m.eq(), arrive);
  dev_.enq_reserved(q_, v, cls);
  const Tick resp =
      lat_ > m.cfg().cache.bus_hop ? lat_ - m.cfg().cache.bus_hop : 0;
  co_await sim::Delay(m.eq(), resp);
  t.core->release_port();
}

sim::Co<bool> SimCaf::dev_deq(sim::SimThread t, std::uint64_t& out,
                              QosClass* cls) {
  co_await t.core->acquire_port(t.tid);
  auto& m = dev_.machine();
  const Tick arrive = m.mem().device_hop(0);
  co_await sim::DelayUntil(m.eq(), arrive);
  const bool ok = dev_.deq(q_, out, cls);
  const Tick resp =
      lat_ > m.cfg().cache.bus_hop ? lat_ - m.cfg().cache.bus_hop : 0;
  co_await sim::Delay(m.eq(), resp);
  t.core->release_port();
  co_return ok;
}

sim::Co<void> SimCaf::transfer_reserved(sim::SimThread t,
                                        std::span<const Msg> msgs,
                                        std::size_t frames, QosClass cls) {
  // One register transfer per payload word — the cost of a register-
  // granularity interface. The first word of the first frame rode the
  // frame-open write, so it is skipped here.
  for (std::size_t f = 0; f < frames; ++f) {
    const Msg& m = msgs[f];
    assert(m.n == words_ && "SimCaf channels carry fixed-size frames");
    for (std::uint8_t i = (f == 0 ? 1 : 0); i < m.n; ++i)
      co_await dev_enq_reserved(t, m.w[i], cls);
  }
}

sim::Co<SendResult> SimCaf::try_send(sim::SimThread t, const Msg& msg) {
  assert(msg.n == words_ && "SimCaf channels carry fixed-size frames");
  // Device frame grant: no producer interleaving. Credits are granted
  // atomically at frame-open, so the hold is bounded by the transfer.
  co_await send_mu_.lock();
  std::uint32_t granted = 0;
  const CafDevice::Grant g =
      co_await dev_open(t, msg.w[0], msg.qos, 1, &granted);
  if (granted == 0) {
    send_mu_.unlock();
    co_return SendResult{g == CafDevice::Grant::kQuota ? SendStatus::kQuota
                                                       : SendStatus::kFull};
  }
  co_await transfer_reserved(t, std::span<const Msg>(&msg, 1), 1, msg.qos);
  send_mu_.unlock();
  co_return SendResult{SendStatus::kOk};
}

sim::Co<SendManyResult> SimCaf::try_send_many(sim::SimThread t,
                                              std::span<const Msg> msgs) {
  SendManyResult r;
  if (msgs.empty()) co_return r;
  // The multi-frame credit grant covers a run of same-class frames (the
  // grant is per class, so a class change ends the run).
  std::size_t run = 1;
  while (run < msgs.size() && msgs[run].qos == msgs[0].qos) ++run;
  assert(msgs[0].n == words_ && "SimCaf channels carry fixed-size frames");

  co_await send_mu_.lock();
  std::uint32_t granted = 0;
  const CafDevice::Grant g = co_await dev_open(
      t, msgs[0].w[0], msgs[0].qos, static_cast<std::uint32_t>(run), &granted);
  if (granted == 0) {
    send_mu_.unlock();
    r.status = g == CafDevice::Grant::kQuota ? SendStatus::kQuota
                                             : SendStatus::kFull;
    co_return r;
  }
  co_await transfer_reserved(t, msgs, granted, msgs[0].qos);
  send_mu_.unlock();
  r.sent = granted;
  // Status kOk means "no refusal": a run that merely ended at a class
  // boundary (full grant, more messages of another class behind it) must
  // NOT read as back-pressure, or the blocking wrapper would park on the
  // credit futex with credits to spare.
  if (granted < run)
    r.status = g == CafDevice::Grant::kQuota ? SendStatus::kQuota
                                             : SendStatus::kFull;
  co_return r;
}

sim::Co<void> SimCaf::finish_frame(sim::SimThread t, Msg& msg) {
  for (std::uint8_t i = 1; i < words_; ++i) {
    std::uint64_t v = 0;
    for (;;) {
      // The producer transfers its whole frame without parking (credits
      // were pre-granted), so trailing words are at most a few register
      // round trips behind the first — poll them in.
      // NB: the await must not sit in the loop condition — GCC 12 destroys
      // condition temporaries before the suspended callee resumes, which
      // tears down the in-flight coroutine (silent no-op).
      const bool ok = co_await dev_deq(t, v, nullptr);
      if (ok) break;
      co_await t.compute(kRetryBackoff);
    }
    msg.w[i] = v;
  }
}

sim::Co<RecvResult> SimCaf::try_recv(sim::SimThread t) {
  co_await recv_mu_.lock();  // device frame grant: no consumer interleaving
  std::uint64_t v = 0;
  QosClass cls = QosClass::kStandard;
  const bool ok = co_await dev_deq(t, v, &cls);
  if (!ok) {
    recv_mu_.unlock();
    co_return RecvResult{};  // empty — the Fig. 15 discovery register read
  }
  RecvResult r;
  r.status = RecvStatus::kOk;
  r.msg.n = words_;
  r.msg.qos = cls;
  r.msg.w[0] = v;
  co_await finish_frame(t, r.msg);
  recv_mu_.unlock();
  co_return r;
}

sim::Co<std::size_t> SimCaf::try_recv_many(sim::SimThread t,
                                           std::span<Msg> out) {
  std::size_t got = 0;
  co_await recv_mu_.lock();  // one consumer-side grant covers the run
  while (got < out.size()) {
    std::uint64_t v = 0;
    QosClass cls = QosClass::kStandard;
    const bool ok = co_await dev_deq(t, v, &cls);
    if (!ok) break;
    Msg& m = out[got];
    m.n = words_;
    m.qos = cls;
    m.w[0] = v;
    co_await finish_frame(t, m);
    ++got;
  }
  recv_mu_.unlock();
  co_return got;
}

sim::Co<void> SimCaf::recv_blocked(sim::SimThread t, std::uint64_t) {
  // Empty queue: CAF's dequeue *is* a polling register read — the
  // discovery latency Fig. 15 measures — so the consumer keeps polling on
  // a fixed pause rather than parking.
  co_await t.compute(kRetryBackoff);
}

}  // namespace vl::squeue
