#include "squeue/locks.hpp"

namespace vl::squeue {

namespace {
constexpr Tick kPause = 6;
/// Adaptive-mutex spin budget before a waiter parks: enough rounds that a
/// short-held lock is still grabbed out of the spin (and the Fig. 2
/// line-bouncing shows up in the cache model), few enough that long waits
/// cost O(1) events.
constexpr int kSpinRounds = 4;
}  // namespace

sim::Co<void> SimCasLock::acquire(sim::SimThread t) {
  for (;;) {
    for (int spin = 0; spin < kSpinRounds; ++spin) {
      // NB: the await must not sit in the loop condition — GCC 12 destroys
      // condition temporaries before the suspended callee resumes, which
      // tears down the in-flight coroutine (silent no-op).
      const bool ok = co_await t.cas64(a_, 0, 1);
      if (ok) co_return;
      co_await t.compute(kPause);
    }
    // Spin budget exhausted: park until the holder releases. Epoch sampled
    // before the final state check so a release in between is never lost.
    const std::uint64_t gate = wq_.epoch();
    const std::uint64_t v = co_await t.load(a_, 8);
    if (v == 0) continue;  // freed while we were spinning: retry the CAS
    co_await t.park(wq_, gate);
  }
}

sim::Co<void> SimCasLock::release(sim::SimThread t) {
  co_await t.store(a_, 0, 8);
  wq_.wake_one();
}

sim::Co<void> SimSpinLock::acquire(sim::SimThread t) {
  for (;;) {
    if (co_await t.swap64(a_, 1) == 0) co_return;
    // Test-and-test-and-set: spin on a local (Shared) copy, bounded.
    bool saw_free = false;
    for (int spin = 0; spin < kSpinRounds && !saw_free; ++spin) {
      co_await t.compute(kPause);
      saw_free = co_await t.load(a_, 8) == 0;
    }
    if (saw_free) continue;
    const std::uint64_t gate = wq_.epoch();
    const std::uint64_t v = co_await t.load(a_, 8);
    if (v == 0) continue;
    co_await t.park(wq_, gate);
  }
}

sim::Co<void> SimSpinLock::release(sim::SimThread t) {
  co_await t.store(a_, 0, 8);
  wq_.wake_one();
}

sim::Co<void> SimTicketLock::acquire(sim::SimThread t) {
  const std::uint64_t ticket = co_await t.fetch_add64(a_, 1);
  for (;;) {
    const std::uint64_t gate = wq_.epoch();
    const std::uint64_t serving = co_await t.load(a_ + 8, 8);
    if (serving == ticket) co_return;
    if (ticket - serving == 1) {
      // Next in line: stay hot, proportional pause like the classic loop.
      co_await t.compute(kPause);
      continue;
    }
    // Further back: park; every release broadcasts so waiters re-check
    // now-serving (only the next ticket proceeds, the rest re-park).
    co_await t.park(wq_, gate);
  }
}

sim::Co<void> SimTicketLock::release(sim::SimThread t) {
  const std::uint64_t serving = co_await t.load(a_ + 8, 8);
  co_await t.store(a_ + 8, serving + 1, 8);
  wq_.wake_all();
}

SimMcsLock::Node& SimMcsLock::node_for(sim::SimThread t) {
  const auto key = std::make_pair(t.core->id(), t.tid);
  auto it = nodes_.find(key);
  if (it == nodes_.end()) {
    Node n;
    n.addr = m_.alloc(kLineSize);
    n.wq = std::make_unique<sim::WaitQueue>(m_.eq());
    wq_by_node_[n.addr] = n.wq.get();
    it = nodes_.emplace(key, std::move(n)).first;
  }
  return it->second;
}

sim::Co<void> SimMcsLock::acquire(sim::SimThread t) {
  Node& n = node_for(t);
  const Addr node = n.addr;
  co_await t.store(node, 1, 8);      // locked flag armed
  co_await t.store(node + 8, 0, 8);  // next = nil
  const Addr pred = co_await t.swap64(tail_, node);
  if (pred == 0) co_return;  // uncontended: we own the lock
  co_await t.store(pred + 8, node, 8);  // link behind the predecessor
  // Local spin: only this thread's own node line is read, so waiting adds
  // no traffic on any shared line — the MCS property. After the spin
  // budget, park on the node's private queue; the releaser wakes exactly
  // this successor.
  for (;;) {
    for (int spin = 0; spin < kSpinRounds; ++spin) {
      const std::uint64_t locked = co_await t.load(node, 8);
      if (locked == 0) co_return;
      co_await t.compute(kPause);
    }
    const std::uint64_t gate = n.wq->epoch();
    const std::uint64_t locked = co_await t.load(node, 8);
    if (locked == 0) co_return;
    co_await t.park(*n.wq, gate);
  }
}

sim::Co<void> SimMcsLock::release(sim::SimThread t) {
  const Addr node = node_for(t).addr;
  std::uint64_t next = co_await t.load(node + 8, 8);
  if (next == 0) {
    // No visible successor: try to swing the tail back to empty.
    if (co_await t.cas64(tail_, node, 0)) co_return;
    // A successor is mid-enqueue; wait for its link to appear (bounded by
    // the successor's two stores, so plain spinning is fine).
    do {
      co_await t.compute(kPause);
      next = co_await t.load(node + 8, 8);
    } while (next == 0);
  }
  co_await t.store(next, 0, 8);  // hand the lock to the successor
  const auto it = wq_by_node_.find(next);
  if (it != wq_by_node_.end()) it->second->wake_one();
}

}  // namespace vl::squeue
