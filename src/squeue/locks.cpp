#include "squeue/locks.hpp"

namespace vl::squeue {

namespace {
constexpr Tick kPause = 6;
}

sim::Co<void> SimCasLock::acquire(sim::SimThread t) {
  for (;;) {
    // NB: the await must not sit in the loop condition — GCC 12 destroys
    // condition temporaries before the suspended callee resumes, which
    // tears down the in-flight coroutine (silent no-op).
    const bool ok = co_await t.cas64(a_, 0, 1);
    if (ok) co_return;
    co_await t.compute(kPause);
  }
}

sim::Co<void> SimCasLock::release(sim::SimThread t) {
  co_await t.store(a_, 0, 8);
}

sim::Co<void> SimSpinLock::acquire(sim::SimThread t) {
  for (;;) {
    if (co_await t.swap64(a_, 1) == 0) co_return;
    std::uint64_t v;
    do {
      co_await t.compute(kPause);
      v = co_await t.load(a_, 8);  // local spin: line stays Shared
    } while (v != 0);
  }
}

sim::Co<void> SimSpinLock::release(sim::SimThread t) {
  co_await t.store(a_, 0, 8);
}

sim::Co<void> SimTicketLock::acquire(sim::SimThread t) {
  const std::uint64_t ticket = co_await t.fetch_add64(a_, 1);
  for (;;) {
    const std::uint64_t serving = co_await t.load(a_ + 8, 8);
    if (serving == ticket) co_return;
    co_await t.compute(kPause * (ticket - serving));  // proportional backoff
  }
}

sim::Co<void> SimTicketLock::release(sim::SimThread t) {
  const std::uint64_t serving = co_await t.load(a_ + 8, 8);
  co_await t.store(a_ + 8, serving + 1, 8);
}

Addr SimMcsLock::node_for(sim::SimThread t) {
  const auto key = std::make_pair(t.core->id(), t.tid);
  auto it = nodes_.find(key);
  if (it == nodes_.end())
    it = nodes_.emplace(key, m_.alloc(kLineSize)).first;
  return it->second;
}

sim::Co<void> SimMcsLock::acquire(sim::SimThread t) {
  const Addr node = node_for(t);
  co_await t.store(node, 1, 8);      // locked flag armed
  co_await t.store(node + 8, 0, 8);  // next = nil
  const Addr pred = co_await t.swap64(tail_, node);
  if (pred == 0) co_return;  // uncontended: we own the lock
  co_await t.store(pred + 8, node, 8);  // link behind the predecessor
  // Local spin: only this thread's own node line is read, so waiting adds
  // no traffic on any shared line — the MCS property.
  for (;;) {
    const std::uint64_t locked = co_await t.load(node, 8);
    if (locked == 0) co_return;
    co_await t.compute(kPause);
  }
}

sim::Co<void> SimMcsLock::release(sim::SimThread t) {
  const Addr node = node_for(t);
  std::uint64_t next = co_await t.load(node + 8, 8);
  if (next == 0) {
    // No visible successor: try to swing the tail back to empty.
    if (co_await t.cas64(tail_, node, 0)) co_return;
    // A successor is mid-enqueue; wait for its link to appear.
    do {
      co_await t.compute(kPause);
      next = co_await t.load(node + 8, 8);
    } while (next == 0);
  }
  co_await t.store(next, 0, 8);  // hand the lock to the successor
}

}  // namespace vl::squeue
