#pragma once
// Backend selection: one factory hands out channels for whichever queue
// scheme an experiment sweeps, so workloads are backend-agnostic.

#include <memory>
#include <string>

#include "runtime/machine.hpp"
#include "runtime/vl_queue.hpp"
#include "squeue/caf.hpp"
#include "squeue/channel.hpp"

namespace vl::squeue {

enum class Backend { kBlfq, kZmq, kVl, kVlIdeal, kCaf };

const char* to_string(Backend b);

/// System configuration appropriate for a backend (VL-ideal flips the
/// VLRD into its unbounded zero-latency mode; everything else is Table III).
sim::SystemConfig config_for(Backend b);

class ChannelFactory {
 public:
  ChannelFactory(runtime::Machine& m, Backend b);

  /// Create an M:N channel. `capacity_hint` sizes software rings (0 picks
  /// the backend default); `name` must be unique per machine (it becomes
  /// the VL shm handle); `msg_words` fixes the frame length for register-
  /// granularity backends (CAF).
  std::unique_ptr<Channel> make(const std::string& name,
                                std::size_t capacity_hint = 0,
                                std::uint8_t msg_words = 1);

  Backend backend() const { return backend_; }
  runtime::Machine& machine() { return m_; }
  /// The machine's CAF queue-management device (per-class occupancy is a
  /// timeline series on CAF runs).
  CafDevice& caf_device() { return caf_dev_; }

 private:
  runtime::Machine& m_;
  Backend backend_;
  runtime::VlQueueLib vl_lib_;
  CafDevice caf_dev_;
};

}  // namespace vl::squeue
