#pragma once
// Per-message latency instrumentation for any Channel backend.
//
// § II motivates VL with queueing behaviour — transient rate mismatches,
// bursty occupancy, Little's-law pressure on buffers — all of which show up
// in the *distribution* of message latencies, not just aggregate runtime.
// LatencyChannel wraps a backend and timestamps every message: the send
// side appends the current tick as an extra payload word; the receive side
// strips it and records (now - sent) in an exact sample store.
// `bench/latency_tail` prints mean/P50/P99 per backend from this wrapper.
//
// The timestamp occupies one payload word, so wrapped messages may carry at
// most 6 user dwords (the Fig. 10 line fits 7).
//
// The wrapper interposes on the whole Channel v2 surface: every call is
// forwarded to the inner backend with stamped copies, so the backend's
// batching fast paths and blocking (park/poll) policies stay in force.
// Blocking sends stamp at call start, so producer-side blocking counts
// toward the recorded latency — Little's-law pressure includes the time a
// message waits for enqueue headroom.

#include <algorithm>
#include <array>

#include "common/stats.hpp"
#include "squeue/channel.hpp"

namespace vl::squeue {

class LatencyChannel : public Channel {
 public:
  /// `ns_per_tick` scales recorded latencies into nanoseconds
  /// (SystemConfig::ns_per_tick); pass 1.0 to record raw ticks.
  LatencyChannel(Channel& inner, sim::EventQueue& eq, double ns_per_tick)
      : inner_(inner), eq_(eq), ns_per_tick_(ns_per_tick) {}

  sim::Co<SendResult> try_send(sim::SimThread t, const Msg& msg) override {
    co_return co_await inner_.try_send(t, stamped(msg));
  }

  sim::Co<RecvResult> try_recv(sim::SimThread t) override {
    RecvResult r = co_await inner_.try_recv(t);
    if (r.ok()) unstamp(r.msg);
    co_return r;
  }

  sim::Co<SendManyResult> try_send_many(sim::SimThread t,
                                        std::span<const Msg> msgs) override {
    // Stamp into a frame-local chunk (no heap per call; a shared member
    // scratch would race between senders suspended mid-batch). Chunking
    // caps the copy at the backends' own run length.
    SendManyResult out;
    while (out.sent < msgs.size()) {
      std::array<Msg, kChunk> chunk;
      const std::size_t n =
          std::min<std::size_t>(kChunk, msgs.size() - out.sent);
      for (std::size_t i = 0; i < n; ++i)
        chunk[i] = stamped(msgs[out.sent + i]);
      const SendManyResult r = co_await inner_.try_send_many(
          t, std::span<const Msg>(chunk.data(), n));
      out.sent += r.sent;
      out.status = r.status;
      if (r.sent < n) break;
    }
    co_return out;
  }

  sim::Co<std::size_t> try_recv_many(sim::SimThread t,
                                     std::span<Msg> out) override {
    const std::size_t got = co_await inner_.try_recv_many(t, out);
    for (std::size_t i = 0; i < got; ++i) unstamp(out[i]);
    co_return got;
  }

  sim::Co<void> send(sim::SimThread t, Msg msg) override {
    co_await inner_.send(t, stamped(msg));
  }

  sim::Co<Msg> recv(sim::SimThread t) override {
    Msg m = co_await inner_.recv(t);
    unstamp(m);
    co_return m;
  }

  sim::Co<void> send_many(sim::SimThread t, std::span<const Msg> msgs) override {
    for (std::size_t at = 0; at < msgs.size(); at += kChunk) {
      std::array<Msg, kChunk> chunk;
      const std::size_t n = std::min<std::size_t>(kChunk, msgs.size() - at);
      for (std::size_t i = 0; i < n; ++i) chunk[i] = stamped(msgs[at + i]);
      co_await inner_.send_many(t, std::span<const Msg>(chunk.data(), n));
    }
  }

  sim::Co<std::size_t> recv_many(sim::SimThread t, std::span<Msg> out,
                                 std::size_t min_n = 1) override {
    const std::size_t got = co_await inner_.recv_many(t, out, min_n);
    for (std::size_t i = 0; i < got; ++i) unstamp(out[i]);
    co_return got;
  }

  std::uint64_t depth() const override { return inner_.depth(); }
  sim::WaitQueue* recv_wq() override { return inner_.recv_wq(); }

  /// Recorded end-to-end latencies (enqueue call to dequeue completion).
  const Samples& latencies() const { return latencies_; }
  Samples& latencies() { return latencies_; }

 private:
  /// Batch-stamping chunk size — matches the backends' run length (kMaxRun
  /// / endpoint ring), so chunking never shortens an inner fast-path run.
  static constexpr std::size_t kChunk = 8;

  Msg stamped(Msg m) const {
    assert(m.n < 7 && "latency stamping needs one free payload word");
    m.w[m.n++] = eq_.now();
    return m;
  }
  void unstamp(Msg& m) {
    assert(m.n >= 1);
    const Tick sent = m.w[--m.n];
    latencies_.record(static_cast<double>(eq_.now() - sent) * ns_per_tick_);
  }

  Channel& inner_;
  sim::EventQueue& eq_;
  double ns_per_tick_;
  Samples latencies_;
};

}  // namespace vl::squeue
