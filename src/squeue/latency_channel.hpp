#pragma once
// Per-message latency instrumentation for any Channel backend.
//
// § II motivates VL with queueing behaviour — transient rate mismatches,
// bursty occupancy, Little's-law pressure on buffers — all of which show up
// in the *distribution* of message latencies, not just aggregate runtime.
// LatencyChannel wraps a backend and timestamps every message: send()
// appends the current tick as an extra payload word; recv() strips it and
// records (now - sent) in an exact sample store. `bench/latency_tail`
// prints mean/P50/P99 per backend from this wrapper.
//
// The timestamp occupies one payload word, so wrapped messages may carry at
// most 6 user dwords (the Fig. 10 line fits 7).

#include "common/stats.hpp"
#include "squeue/channel.hpp"

namespace vl::squeue {

class LatencyChannel : public Channel {
 public:
  /// `ns_per_tick` scales recorded latencies into nanoseconds
  /// (SystemConfig::ns_per_tick); pass 1.0 to record raw ticks.
  LatencyChannel(Channel& inner, sim::EventQueue& eq, double ns_per_tick)
      : inner_(inner), eq_(eq), ns_per_tick_(ns_per_tick) {}

  sim::Co<void> send(sim::SimThread t, Msg msg) override {
    assert(msg.n < 7 && "latency stamping needs one free payload word");
    msg.w[msg.n++] = eq_.now();
    co_await inner_.send(t, msg);
  }

  sim::Co<Msg> recv(sim::SimThread t) override {
    Msg msg = co_await inner_.recv(t);
    assert(msg.n >= 1);
    const Tick sent = msg.w[--msg.n];
    latencies_.record(static_cast<double>(eq_.now() - sent) * ns_per_tick_);
    co_return msg;
  }

  std::uint64_t depth() const override { return inner_.depth(); }

  /// Recorded end-to-end latencies (enqueue call to dequeue completion).
  const Samples& latencies() const { return latencies_; }
  Samples& latencies() { return latencies_; }

 private:
  Channel& inner_;
  sim::EventQueue& eq_;
  double ns_per_tick_;
  Samples latencies_;
};

}  // namespace vl::squeue
