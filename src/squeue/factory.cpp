#include "squeue/factory.hpp"

#include "squeue/blfq.hpp"
#include "squeue/vl_channel.hpp"
#include "squeue/zmq.hpp"

namespace vl::squeue {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kBlfq: return "BLFQ";
    case Backend::kZmq: return "ZMQ";
    case Backend::kVl: return "VL64";
    case Backend::kVlIdeal: return "VL(ideal)";
    case Backend::kCaf: return "CAF";
  }
  return "?";
}

sim::SystemConfig config_for(Backend b) {
  return b == Backend::kVlIdeal ? sim::SystemConfig::table3_ideal()
                                : sim::SystemConfig::table3();
}

ChannelFactory::ChannelFactory(runtime::Machine& m, Backend b)
    : m_(m), backend_(b), vl_lib_(m), caf_dev_(m, m.cfg().caf) {}

std::unique_ptr<Channel> ChannelFactory::make(const std::string& name,
                                              std::size_t capacity_hint,
                                              std::uint8_t msg_words) {
  switch (backend_) {
    case Backend::kBlfq:
      // BLFQ is unbounded in the paper; a deep ring lets occupancy grow
      // past the LLC on incast/FIR the way a node-based queue would.
      return std::make_unique<SimBlfq>(m_, capacity_hint ? capacity_hint
                                                         : 4096);
    case Backend::kZmq:
      // ZeroMQ's default high-water mark is 1000 messages; round to pow2.
      return std::make_unique<SimZmq>(m_, capacity_hint ? capacity_hint
                                                        : 1024);
    case Backend::kVl:
    case Backend::kVlIdeal:
      return std::make_unique<VlChannel>(vl_lib_, name);
    case Backend::kCaf:
      return std::make_unique<SimCaf>(caf_dev_, msg_words);
  }
  return nullptr;
}

}  // namespace vl::squeue
