#include "squeue/vl_channel.hpp"

namespace vl::squeue {

runtime::Producer& VlChannel::producer_for(sim::SimThread t) {
  const Key k{t.core->id(), t.tid};
  auto it = producers_.find(k);
  if (it == producers_.end()) {
    it = producers_
             .emplace(k, std::make_unique<runtime::Producer>(
                             lib_.machine(), q_, lib_.supervisor(), t,
                             buf_lines_))
             .first;
  }
  return *it->second;
}

runtime::Consumer& VlChannel::consumer_for(sim::SimThread t) {
  const Key k{t.core->id(), t.tid};
  auto it = consumers_.find(k);
  if (it == consumers_.end()) {
    it = consumers_
             .emplace(k, std::make_unique<runtime::Consumer>(
                             lib_.machine(), q_, lib_.supervisor(), t,
                             buf_lines_))
             .first;
  }
  return *it->second;
}

sim::Co<void> VlChannel::send(sim::SimThread t, Msg msg) {
  runtime::Producer& p = producer_for(t);
  p.set_qos(msg.qos);  // endpoint class tag, carried in the frame's ctrl byte
  co_await p.enqueue(std::span<const std::uint64_t>(msg.w.data(), msg.n));
}

sim::Co<Msg> VlChannel::recv(sim::SimThread t) {
  runtime::Consumer& c = consumer_for(t);
  const std::vector<std::uint64_t> words = co_await c.dequeue();
  Msg msg;
  msg.n = static_cast<std::uint8_t>(words.size());
  for (std::uint8_t i = 0; i < msg.n; ++i) msg.w[i] = words[i];
  co_return msg;
}

std::uint64_t VlChannel::depth() const {
  return lib_.machine().cluster().device(q_.vlrd_id).queued_data(q_.sqi);
}

std::uint64_t VlChannel::producer_retries() const {
  std::uint64_t n = 0;
  for (const auto& [k, p] : producers_) n += p->retries();
  return n;
}

}  // namespace vl::squeue
