#include "squeue/vl_channel.hpp"

#include <algorithm>
#include <vector>

namespace vl::squeue {

runtime::Producer& VlChannel::producer_for(sim::SimThread t) {
  const Key k{t.core->id(), t.tid};
  auto it = producers_.find(k);
  if (it == producers_.end()) {
    it = producers_
             .emplace(k, std::make_unique<runtime::Producer>(
                             lib_.machine(), q_, lib_.supervisor(), t,
                             buf_lines_))
             .first;
  }
  return *it->second;
}

runtime::Consumer& VlChannel::consumer_for(sim::SimThread t) {
  const Key k{t.core->id(), t.tid};
  auto it = consumers_.find(k);
  if (it == consumers_.end()) {
    it = consumers_
             .emplace(k, std::make_unique<runtime::Consumer>(
                             lib_.machine(), q_, lib_.supervisor(), t,
                             buf_lines_))
             .first;
  }
  return *it->second;
}

sim::Co<SendResult> VlChannel::try_send(sim::SimThread t, const Msg& msg) {
  runtime::Producer& p = producer_for(t);
  p.set_qos(msg.qos);  // endpoint class tag, carried in the frame's ctrl byte
  const int rc = co_await p.try_enqueue_raw(
      runtime::ElemSize::kDword,
      std::span<const std::uint64_t>(msg.w.data(), msg.n));
  co_return SendResult{rc == isa::kVlOk ? SendStatus::kOk : status_from(rc)};
}

sim::Co<SendManyResult> VlChannel::try_send_many(sim::SimThread t,
                                                 std::span<const Msg> msgs) {
  runtime::Producer& p = producer_for(t);
  SendManyResult r;
  while (r.sent < msgs.size()) {
    std::vector<runtime::LineView> views;
    const std::size_t lap = std::min<std::size_t>(msgs.size() - r.sent, 8);
    views.reserve(lap);
    for (std::size_t i = 0; i < lap; ++i) {
      const Msg& m = msgs[r.sent + i];
      views.push_back({m.w.data(), m.n, m.qos});
    }
    const runtime::BurstResult b = co_await p.try_enqueue_burst(views);
    r.sent += b.accepted;
    if (b.rc != isa::kVlOk) {
      r.status = status_from(b.rc);
      co_return r;
    }
  }
  co_return r;
}

sim::Co<void> VlChannel::send_many(sim::SimThread t,
                                   std::span<const Msg> msgs) {
  runtime::Machine& m = lib_.machine();
  runtime::Producer& p = producer_for(t);
  sim::WaitQueue& quota_wq = m.vl_quota_wq(q_.vlrd_id, q_.sqi);
  std::size_t done = 0;
  while (done < msgs.size()) {
    std::vector<runtime::LineView> views;
    const std::size_t lap =
        std::min<std::size_t>(msgs.size() - done, buf_lines_);
    views.reserve(lap);
    for (std::size_t i = 0; i < lap; ++i) {
      const Msg& msg = msgs[done + i];
      views.push_back({msg.w.data(), msg.n, msg.qos});
    }
    // Each lap's lines are written into the endpoint ring ONCE; only the
    // fused push retries after back-pressure. On a full-buffer NACK the
    // producer asks the machine's credit gate for the whole remaining
    // run, so one wake carries an n-slot grant and the re-push re-injects
    // the run in one transaction — batched injection stays batched under
    // saturation instead of degrading to slot-at-a-time wakes.
    const std::size_t staged = co_await p.stage_burst(views);
    std::size_t pushed = 0;
    std::size_t held = 0;  // space credits granted for the remaining run
    while (pushed < staged) {
      const std::uint64_t gate_quota = quota_wq.epoch();
      const runtime::BurstResult b =
          co_await p.push_staged(pushed, staged - pushed);
      pushed += b.accepted;
      held -= std::min(held, b.accepted);  // consumed with the slots
      if (pushed == staged) break;
      if (b.rc == isa::kVlNackQuota) {
        // Only this SQI draining helps; slot credits we cannot convert go
        // back to the gate for producers of other SQIs.
        if (held) {
          m.vl_space().release(held);
          held = 0;
        }
        co_await t.park(quota_wq, gate_quota);
      } else {
        // Full buffer: any credits we still held were stale (their slots
        // went to a fast-path push) — drop them and wait for a grant
        // covering the rest of the run.
        held = staged - pushed;
        co_await t.acquire_credits(m.vl_space(), held);
      }
    }
    done += staged;
  }
}

sim::Co<RecvResult> VlChannel::try_recv(sim::SimThread t) {
  runtime::Consumer& c = consumer_for(t);
  auto got = co_await c.try_dequeue_once();
  if (!got) co_return RecvResult{};
  RecvResult r;
  r.status = RecvStatus::kOk;
  r.msg.n = static_cast<std::uint8_t>(got->elems.size());
  r.msg.qos = got->qos;
  for (std::uint8_t i = 0; i < r.msg.n; ++i) r.msg.w[i] = got->elems[i];
  co_return r;
}

sim::Co<std::size_t> VlChannel::try_recv_many(sim::SimThread t,
                                              std::span<Msg> out) {
  runtime::Consumer& c = consumer_for(t);
  // Burst demand registration pins the run of messages to this endpoint,
  // so only the channel's sole consumer may hold registrations across
  // calls. A sharer's demand is a per-call LEASE: it probes one
  // registration at a time (queued data injects inside the fetch's
  // response window, so backlog still drains at full batch width) and
  // releases whatever stayed armed before returning, so no message can be
  // pinned to a ring nobody is polling.
  const bool sole = consumers_.size() == 1;
  if (sole && out.size() > 1)
    co_await c.arm_ahead(std::min<std::size_t>(out.size(), buf_lines_));
  std::size_t got = 0;
  auto take = [&out, &got](const runtime::Frame& f) {
    Msg& m = out[got++];
    m.n = static_cast<std::uint8_t>(f.elems.size());
    m.qos = f.qos;
    for (std::uint8_t i = 0; i < m.n; ++i) m.w[i] = f.elems[i];
  };
  while (got < out.size()) {
    auto f = co_await c.try_dequeue_once();
    // A sharer registers demand one line at a time, and its in-flight
    // injection needs the device's stash latency to land. Give that one
    // injection a bounded window before concluding the queue is dry —
    // otherwise the lease release below would bounce it on every call and
    // the caller could starve with data queued.
    constexpr int kLeasePolls = 5;
    constexpr Tick kLeasePollGap = 16;
    for (int w = 0; !f && !sole && w < kLeasePolls; ++w) {
      co_await t.compute(kLeasePollGap);
      f = co_await c.try_dequeue_once();
    }
    if (!f) break;
    take(*f);
  }
  if (!sole) {
    c.release_ahead();
    // Injections that landed in our lines while the lease was live are
    // already ours — sweep them out before handing demand back.
    while (got < out.size()) {
      auto f = co_await c.sweep_landed();
      if (!f) break;
      take(*f);
    }
  }
  co_return got;
}

void VlChannel::sample_send_gates(BlockGates& g, const Msg&) {
  // The space side is a credit gate (credits persist — no epoch needed);
  // only the per-SQI quota futex needs the lost-wake gate.
  g.quota = lib_.machine().vl_quota_wq(q_.vlrd_id, q_.sqi).epoch();
}

sim::Co<void> VlChannel::send_blocked(sim::SimThread t, SendStatus why,
                                      BlockGates& g, const Msg&) {
  runtime::Machine& m = lib_.machine();
  if (why == SendStatus::kQuota) {
    // Our SQI's (or class's) quota is exhausted: only this SQI draining
    // helps, so park on its futex. A slot credit we were granted but
    // cannot convert goes back to the gate — some other SQI's
    // space-parked producer may be able to take the slot we cannot.
    if (g.baton) {
      g.baton = false;
      m.vl_space().release(1);
    }
    co_await t.park(m.vl_quota_wq(q_.vlrd_id, q_.sqi), g.quota);
  } else {
    // Buffer full: wait for a freed-slot credit from the routing device,
    // donating the core instead of spinning a backoff timer. (A held
    // credit that still NACKed was stale and is dropped.)
    g.baton = false;
    co_await t.acquire_credits(m.vl_space(), 1);
    g.baton = true;
  }
}

bool VlChannel::reconfigure(sim::SimThread t) {
  // migrate() onto the same thread is exactly the re-registration
  // ceremony: every pushable tag drops (in-flight injections reject and
  // recover device-side via § III-B) and the next dequeue from this
  // thread re-registers demand. Landed-but-unread ring lines survive —
  // try_dequeue_once / sweep_landed still read them.
  consumer_for(t).migrate(t);
  return true;
}

std::uint64_t VlChannel::depth() const {
  return lib_.machine().cluster().device(q_.vlrd_id).queued_data(q_.sqi);
}

std::uint64_t VlChannel::producer_retries() const {
  std::uint64_t n = 0;
  for (const auto& [k, p] : producers_) n += p->retries();
  return n;
}

}  // namespace vl::squeue
