#pragma once
// Set-associative tag store with LRU replacement, shared by the private L1
// model and the LLC model. Holds MESI state plus the single "pushable" tag
// bit that VL's ISA extension adds to private caches (§ III-B).

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace vl::mem {

/// Coherence states. kOwned exists only under the MOESI protocol variant
/// (CacheConfig::protocol): a dirty line that is being shared, with this
/// cache responsible for sourcing it — read-snoops of Modified lines then
/// skip the LLC writeback MESI pays.
enum class Mesi : std::uint8_t {
  kInvalid,
  kShared,
  kExclusive,
  kModified,
  kOwned,
};

inline const char* to_string(Mesi s) {
  switch (s) {
    case Mesi::kInvalid: return "I";
    case Mesi::kShared: return "S";
    case Mesi::kExclusive: return "E";
    case Mesi::kModified: return "M";
    case Mesi::kOwned: return "O";
  }
  return "?";
}

/// States whose data must be written back when the line leaves the cache.
inline bool holds_dirty(Mesi s) {
  return s == Mesi::kModified || s == Mesi::kOwned;
}

struct TagEntry {
  Addr line = 0;
  Mesi state = Mesi::kInvalid;
  bool pushable = false;  ///< VL injection permission bit (L1 only).
  bool dirty = false;     ///< LLC only: needs DRAM writeback on eviction.
  std::uint64_t lru = 0;

  bool valid() const { return state != Mesi::kInvalid; }
};

class TagStore {
 public:
  /// size/assoc in bytes/ways; line size fixed at kLineSize.
  TagStore(std::uint32_t size_bytes, std::uint32_t assoc);

  /// Find the entry holding `line_addr`, or nullptr.
  TagEntry* find(Addr line_addr);
  const TagEntry* find(Addr line_addr) const;

  /// Pick the victim frame in line_addr's set (an invalid way if available,
  /// else LRU). Never null. Does not modify the entry.
  TagEntry* victim(Addr line_addr);

  /// Mark recently used.
  void touch(TagEntry& e) { e.lru = ++clock_; }

  std::uint32_t num_sets() const { return sets_; }
  std::uint32_t assoc() const { return assoc_; }

  /// Iterate over all valid entries (used for flush/invalidate-all).
  template <class Fn>
  void for_each_valid(Fn&& fn) {
    for (auto& e : frames_)
      if (e.valid()) fn(e);
  }

 private:
  std::uint32_t set_of(Addr line_addr) const {
    return static_cast<std::uint32_t>((line_addr >> kLineShift) % sets_);
  }

  std::uint32_t sets_;
  std::uint32_t assoc_;
  std::uint64_t clock_ = 0;
  std::vector<TagEntry> frames_;  // sets_ * assoc_, set-major
};

}  // namespace vl::mem
