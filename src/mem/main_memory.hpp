#pragma once
// Functional backing store for the simulated flat physical address space.
//
// All committed data lives here; caches carry only tags/states for timing
// and coherence-event accounting (see DESIGN.md, "functional/timing split").
// Lines are allocated lazily and zero-initialized, mirroring fresh pages.

#include <array>
#include <cstdint>
#include <cstring>
#include <unordered_map>

#include "common/types.hpp"

namespace vl::mem {

using Line = std::array<std::uint8_t, kLineSize>;

class MainMemory {
 public:
  /// Mutable access to a whole line (lazily created, zeroed).
  Line& line(Addr a);

  /// Scalar access; must not cross a line boundary. size in {1,2,4,8}.
  std::uint64_t read(Addr a, unsigned size) const;
  void write(Addr a, std::uint64_t v, unsigned size);

  void read_line(Addr a, void* out) const;
  void write_line(Addr a, const void* in);
  void zero_line(Addr a);

  std::size_t resident_lines() const { return lines_.size(); }

 private:
  static const Line kZeroLine;
  std::unordered_map<Addr, Line> lines_;
};

}  // namespace vl::mem
