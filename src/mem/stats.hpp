#pragma once
// Coherence/memory event counters. These are exactly the quantities the
// paper's figures plot:
//   Fig. 4  -> invalidations, upgrades (S->E/M transitions) per queue push
//   Fig. 11b/13 -> snoops (+ upgrades)
//   Fig. 11c/14 -> mem_txns (DRAM read + write bursts)

#include <cstdint>

#include "common/stats.hpp"

namespace vl::mem {

struct MemStats {
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t snoops = 0;         ///< Bus transactions that snooped peers.
  std::uint64_t invalidations = 0;  ///< Peer lines invalidated.
  std::uint64_t upgrades = 0;       ///< S -> E/M ownership upgrades.
  std::uint64_t c2c_transfers = 0;  ///< Dirty lines sourced cache-to-cache.
  std::uint64_t writebacks = 0;     ///< L1 -> LLC dirty evictions.
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t injections = 0;        ///< VLRD stashes accepted by an L1.
  std::uint64_t inject_rejects = 0;    ///< Stash attempts refused (flag unset).
  std::uint64_t device_writes = 0;     ///< Non-snooping device-memory ops.

  std::uint64_t mem_txns() const { return dram_reads + dram_writes; }

  MemStats diff(const MemStats& base) const {
    MemStats d;
    d.l1_hits = l1_hits - base.l1_hits;
    d.l1_misses = l1_misses - base.l1_misses;
    d.llc_hits = llc_hits - base.llc_hits;
    d.llc_misses = llc_misses - base.llc_misses;
    d.snoops = snoops - base.snoops;
    d.invalidations = invalidations - base.invalidations;
    d.upgrades = upgrades - base.upgrades;
    d.c2c_transfers = c2c_transfers - base.c2c_transfers;
    d.writebacks = writebacks - base.writebacks;
    d.dram_reads = dram_reads - base.dram_reads;
    d.dram_writes = dram_writes - base.dram_writes;
    d.injections = injections - base.injections;
    d.inject_rejects = inject_rejects - base.inject_rejects;
    d.device_writes = device_writes - base.device_writes;
    return d;
  }

  StatSet to_statset() const {
    StatSet s;
    s.add("l1_hits", l1_hits);
    s.add("l1_misses", l1_misses);
    s.add("llc_hits", llc_hits);
    s.add("llc_misses", llc_misses);
    s.add("snoops", snoops);
    s.add("invalidations", invalidations);
    s.add("upgrades", upgrades);
    s.add("c2c_transfers", c2c_transfers);
    s.add("writebacks", writebacks);
    s.add("dram_reads", dram_reads);
    s.add("dram_writes", dram_writes);
    s.add("injections", injections);
    s.add("inject_rejects", inject_rejects);
    s.add("device_writes", device_writes);
    return s;
  }
};

}  // namespace vl::mem
