#include "mem/hierarchy.hpp"

#include <algorithm>
#include <cassert>

namespace vl::mem {

Hierarchy::Hierarchy(sim::EventQueue& eq, std::uint32_t num_cores,
                     const sim::CacheConfig& cfg)
    : eq_(eq), cfg_(cfg), llc_(cfg.llc_size, cfg.llc_assoc) {
  l1_.reserve(num_cores);
  for (std::uint32_t i = 0; i < num_cores; ++i)
    l1_.emplace_back(cfg.l1_size, cfg.l1_assoc);
}

Tick Hierarchy::bus_slot(Tick cost) {
  const Tick start = std::max(eq_.now(), bus_busy_until_);
  bus_busy_until_ = start + cost;
  return start + cost;  // transaction completes at slot end
}

Tick Hierarchy::dram_access(bool write) {
  if (write)
    ++stats_.dram_writes;
  else
    ++stats_.dram_reads;
  const Tick start = std::max(eq_.now(), dram_busy_until_);
  dram_busy_until_ = start + cfg_.dram_gap;  // burst spacing = bandwidth cap
  return (start - eq_.now()) + cfg_.dram_lat;
}

void Hierarchy::llc_fetch(Addr line, Tick& lat) {
  lat += cfg_.llc_hit;
  if (TagEntry* e = llc_.find(line)) {
    ++stats_.llc_hits;
    llc_.touch(*e);
    return;
  }
  ++stats_.llc_misses;
  lat += dram_access(/*write=*/false);
  llc_insert(line, /*dirty=*/false, lat);
}

void Hierarchy::llc_insert(Addr line, bool dirty, Tick& lat) {
  if (TagEntry* e = llc_.find(line)) {
    e->dirty = e->dirty || dirty;
    llc_.touch(*e);
    return;
  }
  TagEntry* v = llc_.victim(line);
  if (v->valid() && v->dirty) {
    lat += 0;  // writeback is off the critical path; only count the burst
    dram_access(/*write=*/true);
  }
  *v = TagEntry{};
  v->line = line;
  v->state = Mesi::kShared;  // LLC state is presence-only in this model
  v->dirty = dirty;
  llc_.touch(*v);
}

TagEntry& Hierarchy::fill_l1(CoreId core, Addr line, Mesi state, Tick& lat) {
  TagStore& l1 = l1_[core];
  TagEntry* v = l1.victim(line);
  if (v->valid() && holds_dirty(v->state)) {
    ++stats_.writebacks;
    llc_insert(v->line, /*dirty=*/true, lat);
  }
  *v = TagEntry{};
  v->line = line;
  v->state = state;
  l1.touch(*v);
  return *v;
}

Hierarchy::Outcome Hierarchy::access_line(CoreId core, Addr line,
                                          bool exclusive) {
  TagStore& l1 = l1_[core];
  Tick lat = cfg_.l1_hit;

  if (TagEntry* e = l1.find(line)) {
    l1.touch(*e);
    if (!exclusive) {  // read: any valid state serves
      ++stats_.l1_hits;
      return {lat};
    }
    if (e->state == Mesi::kModified) {
      ++stats_.l1_hits;
      return {lat};
    }
    if (e->state == Mesi::kExclusive) {  // silent E->M upgrade
      ++stats_.l1_hits;
      e->state = Mesi::kModified;
      trace(core, line, "E->M");
      return {lat};
    }
    // S -> M: ownership upgrade transaction (this is the Fig. 4 event).
    ++stats_.l1_hits;  // data was present; only ownership was missing
    ++stats_.upgrades;
    ++stats_.snoops;
    for (std::uint32_t c = 0; c < l1_.size(); ++c) {
      if (c == core) continue;
      if (TagEntry* p = l1_[c].find(line); p && p->valid()) {
        ++stats_.invalidations;
        p->state = Mesi::kInvalid;
        p->pushable = false;
        trace(c, line, "inval");
      }
    }
    e->state = Mesi::kModified;
    trace(core, line, "S->M");
    const Tick done = bus_slot(cfg_.bus_hop + cfg_.snoop_cost);
    return {lat + (done - eq_.now())};
  }

  // L1 miss: full bus transaction.
  ++stats_.l1_misses;
  ++stats_.snoops;
  Tick xact = cfg_.bus_hop;

  bool peer_has = false;
  bool from_peer = false;
  for (std::uint32_t c = 0; c < l1_.size(); ++c) {
    if (c == core) continue;
    TagEntry* p = l1_[c].find(line);
    if (!p || !p->valid()) continue;
    peer_has = true;
    if (holds_dirty(p->state)) {
      // The dirty holder sources the line cache-to-cache.
      ++stats_.c2c_transfers;
      xact += cfg_.c2c_transfer;
      from_peer = true;
      if (!exclusive && cfg_.protocol == sim::Protocol::kMoesi) {
        // MOESI: keep the dirty data as Owned — no LLC writeback; this
        // cache stays responsible for sourcing and eventual writeback.
        p->state = Mesi::kOwned;
        trace(c, line, "->O");
      } else if (cfg_.protocol == sim::Protocol::kMesi) {
        // MESI has no Owned state: sharing a dirty line forces the
        // writeback (and an RFO transfers ownership through the LLC too).
        ++stats_.writebacks;
        Tick dummy = 0;
        llc_insert(line, /*dirty=*/true, dummy);
      }
      // MOESI exclusive: direct dirty transfer, requester becomes M below.
    } else {
      xact += cfg_.snoop_cost;
    }
    if (exclusive) {
      ++stats_.invalidations;
      p->state = Mesi::kInvalid;
      p->pushable = false;
      trace(c, line, "inval");
    } else if (p->state == Mesi::kExclusive || p->state == Mesi::kModified) {
      p->state = Mesi::kShared;
      trace(c, line, "->S");
    }
  }

  if (!from_peer) {
    llc_fetch(line, xact);
  }

  const Mesi new_state = exclusive ? Mesi::kModified
                         : peer_has && !exclusive ? Mesi::kShared
                                                  : Mesi::kExclusive;
  Tick lat2 = 0;
  fill_l1(core, line, new_state, lat2);
  trace(core, line,
        new_state == Mesi::kModified  ? "fill M"
        : new_state == Mesi::kShared ? "fill S"
                                     : "fill E");
  const Tick done = bus_slot(xact + lat2);
  return {lat + (done - eq_.now())};
}

void Hierarchy::issue(const sim::MemRequest& req,
                      std::function<void(sim::MemResult)> done) {
  assert(req.core < l1_.size());
  const Addr line = line_of(req.addr);
  const bool exclusive = req.op != sim::MemOp::kLoad &&
                         req.op != sim::MemOp::kLoadLine;
  const Outcome out = access_line(req.core, line, exclusive);

  // Functional commit at the completion tick keeps racing RMWs atomic and
  // sequentially consistent (single-threaded event loop).
  const sim::MemRequest r = req;
  eq_.schedule_in(out.latency, [this, r, done = std::move(done)] {
    sim::MemResult res;
    switch (r.op) {
      case sim::MemOp::kLoad:
        res.value = mem_.read(r.addr, r.size);
        break;
      case sim::MemOp::kStore:
        mem_.write(r.addr, r.arg0, r.size);
        break;
      case sim::MemOp::kCas64: {
        const std::uint64_t cur = mem_.read(r.addr, 8);
        res.value = cur;
        res.ok = cur == r.arg0;
        if (res.ok) mem_.write(r.addr, r.arg1, 8);
        break;
      }
      case sim::MemOp::kFetchAdd64: {
        const std::uint64_t cur = mem_.read(r.addr, 8);
        res.value = cur;
        mem_.write(r.addr, cur + r.arg0, 8);
        break;
      }
      case sim::MemOp::kSwap64: {
        res.value = mem_.read(r.addr, 8);
        mem_.write(r.addr, r.arg0, 8);
        break;
      }
      case sim::MemOp::kLoadLine:
        mem_.read_line(r.addr, r.buf);
        break;
      case sim::MemOp::kStoreLine:
        mem_.write_line(r.addr, r.buf);
        break;
    }
    done(res);
  });
}

Tick Hierarchy::device_hop(Tick extra_cost) {
  ++stats_.device_writes;
  const Tick done = bus_slot(cfg_.bus_hop + extra_cost);
  return done;
}

bool Hierarchy::inject(CoreId target, Addr line_addr, const void* data) {
  assert(target < l1_.size());
  TagEntry* e = l1_[target].find(line_of(line_addr));
  if (!e || !e->valid() || !e->pushable) {
    ++stats_.inject_rejects;
    return false;
  }
  ++stats_.injections;
  e->state = Mesi::kExclusive;
  e->pushable = false;
  l1_[target].touch(*e);
  mem_.write_line(line_addr, data);
  trace(target, line_of(line_addr), "inject");
  return true;
}

Tick Hierarchy::select_line(CoreId core, Addr line_addr) {
  // vl_select behaves "just as any store would": line fetched exclusive.
  const Outcome out = access_line(core, line_of(line_addr), /*exclusive=*/true);
  return out.latency;
}

bool Hierarchy::set_pushable(CoreId core, Addr line_addr, bool on) {
  TagEntry* e = l1_[core].find(line_of(line_addr));
  if (!e || !e->valid()) return false;
  e->pushable = on;
  return true;
}

void Hierarchy::clear_pushable(CoreId core) {
  l1_[core].for_each_valid([](TagEntry& e) { e.pushable = false; });
}

void Hierarchy::zero_and_exclusive(CoreId core, Addr line_addr) {
  mem_.zero_line(line_addr);
  if (TagEntry* e = l1_[core].find(line_of(line_addr)); e && e->valid()) {
    e->state = Mesi::kExclusive;
    e->pushable = false;
  }
}

Mesi Hierarchy::l1_state(CoreId core, Addr line_addr) const {
  const TagEntry* e = l1_[core].find(line_of(line_addr));
  return e && e->valid() ? e->state : Mesi::kInvalid;
}

bool Hierarchy::l1_pushable(CoreId core, Addr line_addr) const {
  const TagEntry* e = l1_[core].find(line_of(line_addr));
  return e && e->valid() && e->pushable;
}

}  // namespace vl::mem
