#include "mem/tag_store.hpp"

#include <cassert>

namespace vl::mem {

namespace {
std::uint32_t pow2_sets(std::uint32_t size_bytes, std::uint32_t assoc) {
  const std::uint32_t lines = size_bytes / kLineSize;
  assert(lines >= assoc && lines % assoc == 0);
  return lines / assoc;
}
}  // namespace

TagStore::TagStore(std::uint32_t size_bytes, std::uint32_t assoc)
    : sets_(pow2_sets(size_bytes, assoc)),
      assoc_(assoc),
      frames_(static_cast<std::size_t>(sets_) * assoc_) {}

TagEntry* TagStore::find(Addr line_addr) {
  TagEntry* base = &frames_[static_cast<std::size_t>(set_of(line_addr)) * assoc_];
  for (std::uint32_t w = 0; w < assoc_; ++w)
    if (base[w].valid() && base[w].line == line_addr) return &base[w];
  return nullptr;
}

const TagEntry* TagStore::find(Addr line_addr) const {
  return const_cast<TagStore*>(this)->find(line_addr);
}

TagEntry* TagStore::victim(Addr line_addr) {
  TagEntry* base = &frames_[static_cast<std::size_t>(set_of(line_addr)) * assoc_];
  TagEntry* lru = &base[0];
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (!base[w].valid()) return &base[w];
    if (base[w].lru < lru->lru) lru = &base[w];
  }
  return lru;
}

}  // namespace vl::mem
