#pragma once
// Snooping MESI cache hierarchy: per-core private L1D, shared mostly-
// inclusive LLC, DRAM with a simple bandwidth model, all hanging off one
// atomic coherence bus. Implements sim::MemoryPort for the cores and
// exposes the device/injection hooks the VLRD needs:
//
//   * device writes are non-snooping bus transactions (vl_push/vl_fetch),
//   * inject() stashes a whole line into a target L1, gated by the
//     "pushable" tag bit exactly as § III-B specifies.
//
// Timing model: the bus serializes transactions (bus_busy_until_); each
// transaction's latency is composed from the CacheConfig costs. Because the
// protocol runs on an atomic bus there are no transient states — tag-state
// changes apply at transaction grant, functional data commits at the
// completion event (see DESIGN.md for why this preserves correctness).

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "mem/main_memory.hpp"
#include "mem/stats.hpp"
#include "mem/tag_store.hpp"
#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/mem_port.hpp"

namespace vl::mem {

class Hierarchy : public sim::MemoryPort {
 public:
  Hierarchy(sim::EventQueue& eq, std::uint32_t num_cores,
            const sim::CacheConfig& cfg);

  // --- sim::MemoryPort -------------------------------------------------
  void issue(const sim::MemRequest& req,
             std::function<void(sim::MemResult)> done) override;

  // --- functional access (setup / checkpointing, no timing) ------------
  MainMemory& backing() { return mem_; }
  const MainMemory& backing() const { return mem_; }

  // --- device-side interface (used by isa::VlPort and the VLRD) --------

  /// A non-snooping device-memory write/read slot on the coherence network.
  /// Returns the tick at which the device observes the request.
  Tick device_hop(Tick extra_cost = 0);

  /// Stash `data` into core `target`'s L1 at `line_addr`. Succeeds only if
  /// the line is resident with its pushable bit set; on success the line
  /// becomes Exclusive, pushable clears, and the payload commits to the
  /// backing store. Returns false (and counts a reject) otherwise.
  bool inject(CoreId target, Addr line_addr, const void* data);

  /// vl_select side effect: obtain the line in Exclusive state in `core`'s
  /// L1 (RFO if needed). Returns the latency of the fill.
  Tick select_line(CoreId core, Addr line_addr);

  /// vl_fetch side effect: set the pushable bit (line must be resident —
  /// select_line() is always called first per the ISA contract).
  /// Returns false if the line has been evicted since selection.
  bool set_pushable(CoreId core, Addr line_addr, bool on);

  /// Clear every pushable bit in `core`'s L1 (context switch / migration).
  void clear_pushable(CoreId core);

  /// Zero a producer line after a successful vl_push copy-over; the line
  /// stays resident in Exclusive state (§ III, "zeroed and exclusive").
  void zero_and_exclusive(CoreId core, Addr line_addr);

  /// Read a line's committed content (VLRD pulls the pushed payload).
  void peek_line(Addr line_addr, void* out) const { mem_.read_line(line_addr, out); }

  // --- introspection ----------------------------------------------------
  const MemStats& stats() const { return stats_; }
  MemStats& stats() { return stats_; }
  Mesi l1_state(CoreId core, Addr line_addr) const;
  bool l1_pushable(CoreId core, Addr line_addr) const;
  sim::EventQueue& eq() { return eq_; }
  const sim::CacheConfig& cfg() const { return cfg_; }

  /// Optional trace hook fired on every coherence transaction
  /// (used by the Fig. 3-style lock-line trace test).
  using TraceHook =
      std::function<void(Tick, CoreId, Addr, const char* what)>;
  void set_trace(TraceHook h) { trace_ = std::move(h); }

 private:
  struct Outcome {
    Tick latency = 0;
  };

  /// Obtain `line` in `core`'s L1 with at least the required right.
  /// exclusive=false -> readable (S/E); true -> writable (M).
  Outcome access_line(CoreId core, Addr line, bool exclusive);

  /// Allocate a frame in core's L1 for `line`, evicting as needed.
  TagEntry& fill_l1(CoreId core, Addr line, Mesi state, Tick& lat);

  /// LLC lookup/fill; adds latency and DRAM traffic to `lat`.
  void llc_fetch(Addr line, Tick& lat);
  void llc_insert(Addr line, bool dirty, Tick& lat);

  Tick bus_slot(Tick cost);
  Tick dram_access(bool write);

  void trace(CoreId c, Addr a, const char* what) {
    if (trace_) trace_(eq_.now(), c, a, what);
  }

  sim::EventQueue& eq_;
  sim::CacheConfig cfg_;
  MainMemory mem_;
  std::vector<TagStore> l1_;  // one per core
  TagStore llc_;
  MemStats stats_;
  Tick bus_busy_until_ = 0;
  Tick dram_busy_until_ = 0;
  TraceHook trace_;
};

}  // namespace vl::mem
