#include "mem/main_memory.hpp"

#include <cassert>

namespace vl::mem {

const Line MainMemory::kZeroLine{};

Line& MainMemory::line(Addr a) { return lines_[line_of(a)]; }

std::uint64_t MainMemory::read(Addr a, unsigned size) const {
  assert(size == 1 || size == 2 || size == 4 || size == 8);
  assert(line_offset(a) + size <= kLineSize && "access crosses line");
  auto it = lines_.find(line_of(a));
  const Line& l = it == lines_.end() ? kZeroLine : it->second;
  std::uint64_t v = 0;
  std::memcpy(&v, l.data() + line_offset(a), size);
  return v;
}

void MainMemory::write(Addr a, std::uint64_t v, unsigned size) {
  assert(size == 1 || size == 2 || size == 4 || size == 8);
  assert(line_offset(a) + size <= kLineSize && "access crosses line");
  std::memcpy(line(a).data() + line_offset(a), &v, size);
}

void MainMemory::read_line(Addr a, void* out) const {
  auto it = lines_.find(line_of(a));
  const Line& l = it == lines_.end() ? kZeroLine : it->second;
  std::memcpy(out, l.data(), kLineSize);
}

void MainMemory::write_line(Addr a, const void* in) {
  std::memcpy(line(a).data(), in, kLineSize);
}

void MainMemory::zero_line(Addr a) { line(a).fill(0); }

}  // namespace vl::mem
