#pragma once
// Lifecycle plane: tenant churn and device reconfiguration as scheduled,
// deterministic mid-run events — the scenario space the static presets
// cannot express (ROADMAP item 4), layered on the same (tick, seq) event
// discipline as the fault plane.
//
//   join@TICK:tenant=NAME     tenant starts (or resumes) producing at TICK
//   leave@TICK:tenant=NAME    tenant's producers quiesce at TICK
//   reconfig@TICK[:channel=C] SQI re-registration: the consumer of channel
//                             C (omitted = every channel) drops its armed
//                             demand and re-registers — the paper § III-B
//                             migration path, VL backends only
//
// Clauses are semicolon-separated; a tenant whose FIRST event is a join
// starts inactive (it joins mid-run), otherwise it starts active and its
// first leave quiesces it. Like FaultSpec, a LifecycleSpec is a dumb value
// type — parse/summary round-trip, and the same spec replays the same
// event sequence byte-for-byte.
//
// The LifecyclePlane turns the spec into run behaviour:
//   * producers consult next_active() at the top of each injection lap:
//     active → proceed; paused → sleep to the next join tick; departed
//     for good → forfeit the remaining budget (never generated, so the
//     conservation identity generated == delivered + dropped stays exact,
//     and the count-carrying termination pills still drain workers).
//   * workers consult take_reconfig() between receive laps and call
//     Channel::reconfigure(), which for VL channels is Consumer::migrate()
//     onto the same thread — every pushable tag drops, in-flight
//     injections reject and recover through the § III-B path, and the
//     landed-frame sweep (PR 6) guarantees nothing strands: zero loss.
//   * the engine schedules a quota re-carve (runtime::size_quotas over the
//     classes active at that instant) at every join/leave boundary, so
//     hardware quotas track the live tenant mix.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace vl::replay {

struct LifecycleEvent {
  enum class Kind : std::uint8_t { kJoin, kLeave, kReconfig };
  Kind kind = Kind::kJoin;
  Tick at = 0;
  std::string tenant;  ///< join/leave: tenant name.
  int channel = -1;    ///< reconfig: channel index (-1 = every channel).
};

const char* to_string(LifecycleEvent::Kind k);

struct LifecycleSpec {
  std::vector<LifecycleEvent> events;

  bool empty() const { return events.empty(); }
  bool has_reconfig() const;
  bool has_churn() const;  ///< Any join/leave events.
  /// One-line rendering in the parse grammar (round-trips through parse()).
  std::string summary() const;
  /// Parse the grammar above. Throws std::invalid_argument on malformed
  /// input.
  static LifecycleSpec parse(const std::string& text);
};

/// Live lifecycle state for one run. Constructed by the engine from the
/// spec plus the run's tenant names (index order = tenant index); all
/// queries are pure functions of (spec, now) plus one-shot reconfig
/// consumption, so identical runs replay identically.
class LifecyclePlane {
 public:
  static constexpr Tick kNever = std::numeric_limits<Tick>::max();

  LifecyclePlane(const LifecycleSpec& spec,
                 const std::vector<std::string>& tenant_names);

  const LifecycleSpec& spec() const { return spec_; }

  /// Producer pacing: 0 = tenant is active at `now`, produce; kNever =
  /// departed with no future join, forfeit the rest; otherwise the tick
  /// of the next join (sleep until then and re-check).
  Tick next_active(int tenant, Tick now) const;

  /// True when the tenant has any lifecycle windows at all (tenants with
  /// no events are always active and skip the per-lap check).
  bool tenant_has_events(int tenant) const {
    return !windows_[static_cast<std::size_t>(tenant)].empty() ||
           !starts_active_[static_cast<std::size_t>(tenant)];
  }

  /// Worker hook: consume (at most one per call) a pending reconfig event
  /// for channel `chan` whose tick has passed. An event naming a channel
  /// fires once; a wildcard event (channel = -1) fires once per channel.
  bool take_reconfig(int chan, Tick now);

  /// Sorted, de-duplicated join/leave ticks — where the engine schedules
  /// quota re-carves.
  const std::vector<Tick>& churn_boundaries() const { return boundaries_; }

  /// Tenant indices active at `now` (for the re-carve's class-presence
  /// computation; boundary ticks count as post-transition).
  bool tenant_active_at(int tenant, Tick now) const;

  // Run counters (reports and tests).
  void note_forfeit(std::uint64_t n) { forfeited_ += n; }
  void note_reconfig_applied() { ++reconfigs_applied_; }
  void note_recarve() { ++recarves_; }
  std::uint64_t forfeited() const { return forfeited_; }
  std::uint64_t reconfigs_applied() const { return reconfigs_applied_; }
  std::uint64_t recarves() const { return recarves_; }

 private:
  struct Window {  ///< Half-open [from, to) inactive span.
    Tick from = 0;
    Tick to = kNever;
  };

  LifecycleSpec spec_;
  /// Per-tenant inactive windows, ascending; an always-inactive tail has
  /// to == kNever.
  std::vector<std::vector<Window>> windows_;
  std::vector<bool> starts_active_;
  std::vector<Tick> boundaries_;
  /// Per reconfig event: channels it already fired for.
  std::vector<std::vector<int>> reconfig_fired_;
  std::uint64_t forfeited_ = 0;
  std::uint64_t reconfigs_applied_ = 0;
  std::uint64_t recarves_ = 0;
};

}  // namespace vl::replay
