#include "replay/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace vl::replay {

namespace {

constexpr char kMagic[4] = {'V', 'L', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}
std::uint32_t get_u32(const std::string& s, std::size_t& p) {
  if (p + 4 > s.size()) throw std::invalid_argument("trace: truncated u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(s[p++]))
         << (8 * i);
  return v;
}
std::uint64_t get_u64(const std::string& s, std::size_t& p) {
  if (p + 8 > s.size()) throw std::invalid_argument("trace: truncated u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(s[p++]))
         << (8 * i);
  return v;
}
void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}
std::string get_str(const std::string& s, std::size_t& p) {
  const std::uint32_t n = get_u32(s, p);
  if (p + n > s.size()) throw std::invalid_argument("trace: truncated string");
  std::string v = s.substr(p, n);
  p += n;
  return v;
}

/// Metadata value of a `# key=value` comment line, or "" when absent.
std::string meta_value(const std::string& line, const char* key) {
  const std::string want = std::string("# ") + key + "=";
  if (line.rfind(want, 0) != 0) return "";
  return line.substr(want.size());
}

}  // namespace

std::string Trace::csv() const {
  std::string out;
  out += "# scenario=" + scenario + "\n";
  out += "# backend=" + backend + "\n";
  out += "# seed=" + std::to_string(seed) + "\n";
  out += "# producers=" + std::to_string(producers) + "\n";
  out += "# tenants=" + std::to_string(tenants) + "\n";
  out += "# sharded=" + std::to_string(sharded ? 1 : 0) + "\n";
  out += "tick,tenant,producer,class,words,dst\n";
  char buf[96];
  for (const auto& r : records) {
    std::snprintf(buf, sizeof buf, "%llu,%u,%u,%u,%u,%llu\n",
                  static_cast<unsigned long long>(r.tick), r.tenant, r.pid,
                  static_cast<unsigned>(r.cls), r.words,
                  static_cast<unsigned long long>(r.dst));
    out += buf;
  }
  return out;
}

Trace Trace::parse_csv(const std::string& text) {
  Trace t;
  std::size_t pos = 0;
  bool header_seen = false;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::string v;
      if (!(v = meta_value(line, "scenario")).empty()) t.scenario = v;
      else if (!(v = meta_value(line, "backend")).empty()) t.backend = v;
      else if (!(v = meta_value(line, "seed")).empty())
        t.seed = std::strtoull(v.c_str(), nullptr, 10);
      else if (!(v = meta_value(line, "producers")).empty())
        t.producers = static_cast<std::uint32_t>(
            std::strtoul(v.c_str(), nullptr, 10));
      else if (!(v = meta_value(line, "tenants")).empty())
        t.tenants = static_cast<std::uint32_t>(
            std::strtoul(v.c_str(), nullptr, 10));
      else if (!(v = meta_value(line, "sharded")).empty())
        t.sharded = v == "1";
      continue;
    }
    if (!header_seen) {  // the column-name row
      if (line.rfind("tick,", 0) != 0)
        throw std::invalid_argument("trace csv: missing header row");
      header_seen = true;
      continue;
    }
    TraceRecord r;
    unsigned long long tick = 0, dst = 0;
    unsigned tenant = 0, pid = 0, cls = 0, words = 0;
    if (std::sscanf(line.c_str(), "%llu,%u,%u,%u,%u,%llu", &tick, &tenant,
                    &pid, &cls, &words, &dst) != 6)
      throw std::invalid_argument("trace csv: bad row: " + line);
    r.tick = tick;
    r.tenant = static_cast<std::uint16_t>(tenant);
    r.pid = static_cast<std::uint16_t>(pid);
    if (cls >= kQosClasses)
      throw std::invalid_argument("trace csv: bad class: " + line);
    r.cls = static_cast<QosClass>(cls);
    if (words < 1 || words > 7)
      throw std::invalid_argument("trace csv: bad words: " + line);
    r.words = static_cast<std::uint8_t>(words);
    r.dst = dst;
    t.records.push_back(r);
  }
  if (!header_seen)
    throw std::invalid_argument("trace csv: missing header row");
  return t;
}

std::string Trace::binary() const {
  std::string out;
  out.append(kMagic, sizeof kMagic);
  put_u32(out, kVersion);
  put_str(out, scenario);
  put_str(out, backend);
  put_u64(out, seed);
  put_u32(out, producers);
  put_u32(out, tenants);
  out.push_back(sharded ? 1 : 0);
  put_u64(out, records.size());
  for (const auto& r : records) {
    put_u64(out, r.tick);
    out.push_back(static_cast<char>(r.tenant));
    out.push_back(static_cast<char>(r.tenant >> 8));
    out.push_back(static_cast<char>(r.pid));
    out.push_back(static_cast<char>(r.pid >> 8));
    out.push_back(static_cast<char>(r.cls));
    out.push_back(static_cast<char>(r.words));
    put_u64(out, r.dst);
  }
  return out;
}

Trace Trace::parse_binary(const std::string& bytes) {
  if (bytes.size() < 8 || std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    throw std::invalid_argument("trace: bad magic (not a VLTR file)");
  std::size_t p = sizeof kMagic;
  const std::uint32_t ver = get_u32(bytes, p);
  if (ver != kVersion)
    throw std::invalid_argument("trace: unsupported version " +
                                std::to_string(ver));
  Trace t;
  t.scenario = get_str(bytes, p);
  t.backend = get_str(bytes, p);
  t.seed = get_u64(bytes, p);
  t.producers = get_u32(bytes, p);
  t.tenants = get_u32(bytes, p);
  if (p >= bytes.size()) throw std::invalid_argument("trace: truncated");
  t.sharded = bytes[p++] != 0;
  const std::uint64_t n = get_u64(bytes, p);
  t.records.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    TraceRecord r;
    r.tick = get_u64(bytes, p);
    if (p + 6 > bytes.size()) throw std::invalid_argument("trace: truncated");
    r.tenant = static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(bytes[p]) |
        (static_cast<std::uint8_t>(bytes[p + 1]) << 8));
    r.pid = static_cast<std::uint16_t>(
        static_cast<std::uint8_t>(bytes[p + 2]) |
        (static_cast<std::uint8_t>(bytes[p + 3]) << 8));
    const auto cls = static_cast<std::uint8_t>(bytes[p + 4]);
    if (cls >= kQosClasses)
      throw std::invalid_argument("trace: bad class byte");
    r.cls = static_cast<QosClass>(cls);
    r.words = static_cast<std::uint8_t>(bytes[p + 5]);
    if (r.words < 1 || r.words > 7)
      throw std::invalid_argument("trace: bad words byte");
    p += 6;
    r.dst = get_u64(bytes, p);
    t.records.push_back(r);
  }
  return t;
}

bool Trace::save(const std::string& path) const {
  const bool as_csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  const std::string body = as_csv ? csv() : binary();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const std::size_t n = std::fwrite(body.data(), 1, body.size(), f);
  const bool ok = n == body.size() && std::fclose(f) == 0;
  if (n != body.size()) std::fclose(f);
  return ok;
}

Trace Trace::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw std::invalid_argument("trace: cannot open " + path);
  std::string body;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) body.append(buf, n);
  std::fclose(f);
  if (body.size() >= 4 && std::memcmp(body.data(), kMagic, 4) == 0)
    return parse_binary(body);
  return parse_csv(body);
}

void TraceRecorder::begin(const std::string& scenario,
                          const std::string& backend, std::uint64_t seed,
                          std::uint32_t producers, std::uint32_t tenants,
                          bool sharded) {
  meta_.scenario = scenario;
  meta_.backend = backend;
  meta_.seed = seed;
  meta_.producers = producers;
  meta_.tenants = tenants;
  meta_.sharded = sharded;
  streams_.assign(producers, {});
}

Trace TraceRecorder::finish() const {
  Trace t = meta_;
  std::size_t total = 0;
  for (const auto& s : streams_) total += s.size();
  t.records.reserve(total);
  // Merge by (tick, pid): streams are individually tick-ordered, so a
  // stable merge keyed on tick with pid as the tiebreak gives one total
  // order no host-thread interleaving can perturb.
  std::vector<std::size_t> cursor(streams_.size(), 0);
  for (std::size_t filled = 0; filled < total; ++filled) {
    std::size_t best = streams_.size();
    for (std::size_t p = 0; p < streams_.size(); ++p) {
      if (cursor[p] >= streams_[p].size()) continue;
      if (best == streams_.size() ||
          streams_[p][cursor[p]].tick < streams_[best][cursor[best]].tick)
        best = p;
    }
    t.records.push_back(streams_[best][cursor[best]++]);
  }
  return t;
}

TraceArrival::TraceArrival(const Trace& trace, std::uint16_t pid)
    : trace_(&trace) {
  for (std::uint32_t i = 0; i < trace.records.size(); ++i)
    if (trace.records[i].pid == pid) idx_.push_back(i);
}

}  // namespace vl::replay
