#include "replay/lifecycle.hpp"

#include <algorithm>
#include <stdexcept>

namespace vl::replay {

const char* to_string(LifecycleEvent::Kind k) {
  switch (k) {
    case LifecycleEvent::Kind::kJoin: return "join";
    case LifecycleEvent::Kind::kLeave: return "leave";
    case LifecycleEvent::Kind::kReconfig: return "reconfig";
  }
  return "?";
}

bool LifecycleSpec::has_reconfig() const {
  for (const auto& e : events)
    if (e.kind == LifecycleEvent::Kind::kReconfig) return true;
  return false;
}

bool LifecycleSpec::has_churn() const {
  for (const auto& e : events)
    if (e.kind != LifecycleEvent::Kind::kReconfig) return true;
  return false;
}

std::string LifecycleSpec::summary() const {
  std::string out;
  for (const auto& e : events) {
    if (!out.empty()) out += ';';
    out += to_string(e.kind);
    out += '@' + std::to_string(e.at);
    if (e.kind == LifecycleEvent::Kind::kReconfig) {
      if (e.channel >= 0) out += ":channel=" + std::to_string(e.channel);
    } else {
      out += ":tenant=" + e.tenant;
    }
  }
  return out;
}

namespace {

[[noreturn]] void bad(const std::string& clause, const char* why) {
  throw std::invalid_argument("lifecycle spec: " + std::string(why) +
                              " in clause '" + clause + "'");
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

LifecycleEvent parse_clause(const std::string& clause) {
  const std::size_t at = clause.find('@');
  if (at == std::string::npos) bad(clause, "missing '@TICK'");
  const std::string kind = clause.substr(0, at);
  LifecycleEvent e;
  if (kind == "join") e.kind = LifecycleEvent::Kind::kJoin;
  else if (kind == "leave") e.kind = LifecycleEvent::Kind::kLeave;
  else if (kind == "reconfig") e.kind = LifecycleEvent::Kind::kReconfig;
  else bad(clause, "unknown event kind");

  std::size_t colon = clause.find(':', at);
  const std::string tick_s = clause.substr(
      at + 1, (colon == std::string::npos ? clause.size() : colon) - at - 1);
  if (tick_s.empty() ||
      tick_s.find_first_not_of("0123456789") != std::string::npos)
    bad(clause, "bad tick");
  e.at = std::strtoull(tick_s.c_str(), nullptr, 10);

  // key=value pairs after ':', comma-separated.
  std::size_t p = colon == std::string::npos ? clause.size() : colon + 1;
  while (p < clause.size()) {
    std::size_t comma = clause.find(',', p);
    if (comma == std::string::npos) comma = clause.size();
    const std::string kv = clause.substr(p, comma - p);
    p = comma + 1;
    const std::size_t eq = kv.find('=');
    if (eq == std::string::npos) bad(clause, "expected key=value");
    const std::string key = kv.substr(0, eq);
    const std::string val = kv.substr(eq + 1);
    if (key == "tenant" && e.kind != LifecycleEvent::Kind::kReconfig) {
      if (val.empty()) bad(clause, "empty tenant name");
      e.tenant = val;
    } else if (key == "channel" &&
               e.kind == LifecycleEvent::Kind::kReconfig) {
      e.channel = static_cast<int>(std::strtol(val.c_str(), nullptr, 10));
    } else {
      bad(clause, "unknown key");
    }
  }
  if (e.kind != LifecycleEvent::Kind::kReconfig && e.tenant.empty())
    bad(clause, "join/leave need tenant=NAME");
  return e;
}

}  // namespace

LifecycleSpec LifecycleSpec::parse(const std::string& text) {
  LifecycleSpec spec;
  std::size_t p = 0;
  while (p <= text.size()) {
    std::size_t semi = text.find(';', p);
    if (semi == std::string::npos) semi = text.size();
    const std::string clause = trim(text.substr(p, semi - p));
    p = semi + 1;
    if (clause.empty()) continue;
    spec.events.push_back(parse_clause(clause));
  }
  return spec;
}

LifecyclePlane::LifecyclePlane(const LifecycleSpec& spec,
                               const std::vector<std::string>& tenant_names)
    : spec_(spec) {
  const std::size_t n = tenant_names.size();
  windows_.resize(n);
  starts_active_.assign(n, true);
  reconfig_fired_.assign(spec_.events.size(), {});

  // Per-tenant event streams, tick-ascending (stable within equal ticks).
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<const LifecycleEvent*> evs;
    for (const auto& e : spec_.events)
      if (e.kind != LifecycleEvent::Kind::kReconfig &&
          e.tenant == tenant_names[t])
        evs.push_back(&e);
    std::stable_sort(evs.begin(), evs.end(),
                     [](const LifecycleEvent* a, const LifecycleEvent* b) {
                       return a->at < b->at;
                     });
    bool active = evs.empty() ||
                  evs.front()->kind != LifecycleEvent::Kind::kJoin;
    starts_active_[t] = active;
    Tick open = 0;  // start of the current inactive span
    for (const auto* e : evs) {
      if (e->kind == LifecycleEvent::Kind::kLeave && active) {
        open = e->at;
        active = false;
      } else if (e->kind == LifecycleEvent::Kind::kJoin && !active) {
        windows_[t].push_back({open, e->at});
        active = true;
      }
    }
    if (!active) windows_[t].push_back({open, kNever});
  }

  for (const auto& e : spec_.events) {
    if (e.kind == LifecycleEvent::Kind::kReconfig) continue;
    if (std::find(boundaries_.begin(), boundaries_.end(), e.at) ==
        boundaries_.end())
      boundaries_.push_back(e.at);
    bool known = false;
    for (const auto& name : tenant_names)
      if (name == e.tenant) known = true;
    if (!known)
      throw std::invalid_argument("lifecycle spec: unknown tenant '" +
                                  e.tenant + "'");
  }
  std::sort(boundaries_.begin(), boundaries_.end());
}

Tick LifecyclePlane::next_active(int tenant, Tick now) const {
  for (const auto& w : windows_[static_cast<std::size_t>(tenant)]) {
    if (now < w.from) return 0;      // before this inactive span: active
    if (now < w.to) return w.to;     // inside it: sleep to the join (or never)
  }
  return 0;
}

bool LifecyclePlane::tenant_active_at(int tenant, Tick now) const {
  return next_active(tenant, now) == 0;
}

bool LifecyclePlane::take_reconfig(int chan, Tick now) {
  for (std::size_t i = 0; i < spec_.events.size(); ++i) {
    const auto& e = spec_.events[i];
    if (e.kind != LifecycleEvent::Kind::kReconfig) continue;
    if (e.at > now) continue;
    if (e.channel >= 0 && e.channel != chan) continue;
    auto& fired = reconfig_fired_[i];
    if (std::find(fired.begin(), fired.end(), chan) != fired.end()) continue;
    fired.push_back(chan);
    return true;
  }
  return false;
}

}  // namespace vl::replay
