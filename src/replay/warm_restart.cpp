#include "replay/warm_restart.hpp"

#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "runtime/machine.hpp"
#include "runtime/vl_queue.hpp"
#include "sim/task.hpp"
#include "squeue/caf.hpp"

namespace vl::replay {
namespace {

// --- little-endian wire helpers (same discipline as trace.cpp) -------------

void put32(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void put64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}
void put_str(std::string& s, const std::string& v) {
  put32(s, static_cast<std::uint32_t>(v.size()));
  s.append(v);
}

struct Reader {
  const std::string& s;
  std::size_t off = 0;

  void need(std::size_t n) const {
    if (off + n > s.size())
      throw std::invalid_argument("warm-restart snapshot: truncated");
  }
  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(s[off++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(s[off++]))
           << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(s[off++]))
           << (8 * i);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string v = s.substr(off, n);
    off += n;
    return v;
  }
};

constexpr char kMagic[4] = {'V', 'L', 'S', 'S'};
constexpr std::uint32_t kVersion = 1;

// --- drill shape ------------------------------------------------------------

constexpr int kChannels = 2;
constexpr int kProducersPerChannel = 2;
constexpr int kPerProducer = 12;  ///< 48 messages total, under the 64-slot
                                  ///< prodBuf / 64-credit CAF budget.
constexpr std::size_t kDrainBefore = 8;  ///< Per channel, pre-snapshot.

/// Bijective 64-bit mix (splitmix64 finalizer): distinct message ids map
/// to distinct stamp values, so the conservation multiset catches any
/// loss/duplication and the digest tracks content, not just counts.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t stamp(std::uint64_t seed, int channel, int producer, int seq) {
  // Hash the seed before combining: XOR-ing a raw small seed with the
  // small seq would only permute the stamp multiset across seeds, and the
  // order-independent digest would not see the difference.
  return mix64(mix64(seed) ^ (static_cast<std::uint64_t>(channel) << 48) ^
               (static_cast<std::uint64_t>(producer) << 40) ^
               static_cast<std::uint64_t>(seq));
}

/// Order-independent delivery digest: FNV-1a over the sorted multiset.
std::uint64_t digest_of(std::vector<std::uint64_t> vals) {
  std::sort(vals.begin(), vals.end());
  std::uint64_t h = 14695981039346656037ull;
  for (const std::uint64_t v : vals)
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  return h;
}

// Actor coroutines. Free functions (not capturing lambdas): a coroutine
// lambda's captures die with the lambda object, but these frames hold
// their references as parameters, alive until the drill's vectors go out
// of scope after Machine::run() drains.

sim::Co<void> produce_vl(runtime::Producer& p,
                         const std::vector<std::uint64_t>& vals) {
  for (const std::uint64_t v : vals) co_await p.enqueue1(v);
}

sim::Co<void> consume_vl(runtime::Consumer& c, std::size_t n,
                         std::vector<std::uint64_t>& out) {
  for (std::size_t i = 0; i < n; ++i) out.push_back(co_await c.dequeue1());
}

/// Quiesce: drop the demand lease, then sweep every frame that already
/// landed in the endpoint ring (PR 6's out-of-order landing recovery).
/// Afterwards everything undelivered is device-resident.
sim::Co<void> quiesce_vl(runtime::Consumer& c,
                         std::vector<std::uint64_t>& out) {
  c.release_ahead();
  while (true) {
    auto f = co_await c.sweep_landed();
    if (!f) break;
    for (const std::uint64_t v : f->elems) out.push_back(v);
  }
}

sim::Co<void> produce_caf(squeue::Channel& ch, sim::SimThread t,
                          const std::vector<std::uint64_t>& vals) {
  for (const std::uint64_t v : vals) co_await ch.send1(t, v);
}

sim::Co<void> consume_caf(squeue::Channel& ch, sim::SimThread t, std::size_t n,
                          std::vector<std::uint64_t>& out) {
  for (std::size_t i = 0; i < n; ++i) out.push_back(co_await ch.recv1(t));
}

void finish_report(WarmRestartReport& rep,
                   const std::vector<std::uint64_t>& produced,
                   const std::vector<std::uint64_t>& before,
                   const std::vector<std::uint64_t>& after) {
  rep.produced = produced.size();
  rep.delivered_before = before.size();
  rep.delivered_after = after.size();

  std::map<std::uint64_t, long> balance;
  for (const std::uint64_t v : produced) ++balance[v];
  std::vector<std::uint64_t> delivered = before;
  delivered.insert(delivered.end(), after.begin(), after.end());
  for (const std::uint64_t v : delivered) --balance[v];
  for (const auto& [v, n] : balance) {
    if (n > 0) rep.lost += static_cast<std::uint64_t>(n);
    if (n < 0) rep.duplicated += static_cast<std::uint64_t>(-n);
  }
  rep.digest = digest_of(std::move(delivered));
}

// --- VL drill ---------------------------------------------------------------

WarmRestartReport vl_drill(squeue::Backend b, std::uint64_t seed) {
  const sim::SystemConfig cfg = squeue::config_for(b);
  WarmRestartReport rep;
  rep.backend = squeue::to_string(b);

  std::vector<std::uint64_t> produced;
  std::vector<std::uint64_t> before;  // delivered pre-snapshot (+ sweep)
  std::vector<std::uint64_t> after;   // delivered post-restore
  Snapshot snap;
  snap.backend = rep.backend;

  {
    runtime::Machine mA(cfg);
    runtime::VlQueueLib lib(mA);
    std::vector<runtime::QueueHandle> h;
    for (int c = 0; c < kChannels; ++c)
      h.push_back(lib.open("wr" + std::to_string(c)));

    std::vector<runtime::Producer> prods;
    std::vector<std::vector<std::uint64_t>> vals;
    prods.reserve(kChannels * kProducersPerChannel);
    vals.reserve(kChannels * kProducersPerChannel);
    const auto ncores = static_cast<CoreId>(mA.num_cores());
    for (int c = 0; c < kChannels; ++c)
      for (int p = 0; p < kProducersPerChannel; ++p) {
        prods.push_back(lib.make_producer(
            h[c],
            mA.thread_on((c * kProducersPerChannel + p) % ncores)));
        std::vector<std::uint64_t> v;
        for (int i = 0; i < kPerProducer; ++i) {
          v.push_back(stamp(seed, c, p, i));
          produced.push_back(v.back());
        }
        vals.push_back(std::move(v));
      }
    std::vector<runtime::Consumer> cons;
    cons.reserve(kChannels);
    for (int c = 0; c < kChannels; ++c)
      cons.push_back(lib.make_consumer(
          h[c],
          mA.thread_on((kChannels * kProducersPerChannel + c) % ncores)));

    for (std::size_t i = 0; i < prods.size(); ++i)
      sim::spawn(produce_vl(prods[i], vals[i]));
    for (auto& c : cons) sim::spawn(consume_vl(c, kDrainBefore, before));
    mA.run();

    for (auto& c : cons) sim::spawn(quiesce_vl(c, before));
    mA.run();

    // Every undelivered message is now device-resident. Snapshot data +
    // the quota knobs (config-then-data on restore).
    for (int c = 0; c < kChannels; ++c) {
      const auto resident =
          mA.cluster().device(h[c].vlrd_id).snapshot_resident();
      Snapshot::QueueState qs;
      qs.name = "wr" + std::to_string(c);
      qs.vlrd_id = h[c].vlrd_id;
      qs.sqi = h[c].sqi;
      qs.lines = resident[h[c].sqi];
      snap.queues.push_back(std::move(qs));
    }
    const sim::VlrdConfig& vc = mA.cluster().cfg();
    for (std::size_t i = 0; i < kQosClasses; ++i)
      snap.vl_class_quota[i] = vc.class_quota[i];
    snap.vl_per_sqi_quota = vc.per_sqi_quota;
  }  // Machine A fully torn down here.

  const std::string bytes = snap.serialize();
  rep.snapshot_bytes = bytes.size();
  const Snapshot restored = Snapshot::deserialize(bytes);
  if (!(restored == snap))
    throw std::runtime_error("warm-restart: snapshot serialize round trip");
  for (const auto& qs : restored.queues) rep.resident += qs.lines.size();

  {
    runtime::Machine mB(cfg);
    runtime::VlQueueLib lib(mB);
    std::vector<runtime::QueueHandle> h;
    for (const auto& qs : restored.queues) {
      h.push_back(lib.open(qs.name));
      // Creation order reproduces the (device, SQI) map; anything else
      // means the rebuild diverged from the snapshot's world.
      if (h.back().vlrd_id != qs.vlrd_id || h.back().sqi != qs.sqi)
        throw std::runtime_error(
            "warm-restart: rebuilt queue map diverged from snapshot");
    }

    for (std::size_t i = 0; i < kQosClasses; ++i)
      mB.cluster().set_class_quota(static_cast<QosClass>(i),
                                   restored.vl_class_quota[i]);
    mB.cluster().set_per_sqi_quota(restored.vl_per_sqi_quota);

    // Replay the resident lines through the normal device port in their
    // snapshot (delivery) order. The buffer is empty and the resident set
    // respected the quotas before the restart, so every push must land.
    for (const auto& qs : restored.queues)
      for (const mem::Line& line : qs.lines)
        if (!mB.cluster().device(qs.vlrd_id).push(qs.sqi, line))
          throw std::runtime_error("warm-restart: restore push NACKed");

    std::vector<runtime::Consumer> cons;
    cons.reserve(restored.queues.size());
    const auto ncores = static_cast<CoreId>(mB.num_cores());
    for (std::size_t c = 0; c < restored.queues.size(); ++c)
      cons.push_back(
          lib.make_consumer(h[c], mB.thread_on(c % ncores)));
    for (std::size_t c = 0; c < cons.size(); ++c)
      sim::spawn(consume_vl(cons[c], restored.queues[c].lines.size(), after));
    mB.run();

    for (const auto& qs : restored.queues)
      if (mB.cluster().device(qs.vlrd_id).queued_data(qs.sqi) != 0)
        throw std::runtime_error(
            "warm-restart: rebuilt device not drained");
  }

  finish_report(rep, produced, before, after);
  return rep;
}

// --- CAF drill --------------------------------------------------------------

WarmRestartReport caf_drill(std::uint64_t seed) {
  const sim::SystemConfig cfg = squeue::config_for(squeue::Backend::kCaf);
  WarmRestartReport rep;
  rep.backend = squeue::to_string(squeue::Backend::kCaf);

  std::vector<std::uint64_t> produced;
  std::vector<std::uint64_t> before;
  std::vector<std::uint64_t> after;
  Snapshot snap;
  snap.backend = rep.backend;

  {
    runtime::Machine mA(cfg);
    squeue::CafDevice dev(mA, cfg.caf);
    std::vector<std::unique_ptr<squeue::SimCaf>> chs;
    for (int c = 0; c < kChannels; ++c)
      chs.push_back(std::make_unique<squeue::SimCaf>(dev, 1));

    std::vector<std::vector<std::uint64_t>> vals;
    for (int c = 0; c < kChannels; ++c)
      for (int p = 0; p < kProducersPerChannel; ++p) {
        std::vector<std::uint64_t> v;
        for (int i = 0; i < kPerProducer; ++i) {
          v.push_back(stamp(seed, c, p, i));
          produced.push_back(v.back());
        }
        vals.push_back(std::move(v));
      }
    const auto ncores = static_cast<CoreId>(mA.num_cores());
    for (int c = 0; c < kChannels; ++c)
      for (int p = 0; p < kProducersPerChannel; ++p)
        sim::spawn(produce_caf(
            *chs[c],
            mA.thread_on((c * kProducersPerChannel + p) % ncores),
            vals[static_cast<std::size_t>(c * kProducersPerChannel + p)]));
    for (int c = 0; c < kChannels; ++c)
      sim::spawn(consume_caf(
          *chs[c],
          mA.thread_on((kChannels * kProducersPerChannel + c) % ncores),
          kDrainBefore, before));
    mA.run();

    // No in-flight state to quiesce: CAF words live in device SRAM the
    // moment enq() returns, and a drained run leaves no open frame grants
    // (snapshot_queue asserts that).
    if (dev.num_queues() != kChannels)
      throw std::runtime_error("warm-restart: unexpected CAF queue count");
    for (std::uint32_t q = 0; q < dev.num_queues(); ++q) {
      Snapshot::QueueState qs;
      qs.name = "caf" + std::to_string(q);
      qs.sqi = q;  // device queue id
      for (const auto& [v, cls] : dev.snapshot_queue(q))
        qs.words.emplace_back(v, static_cast<std::uint8_t>(cls));
      snap.queues.push_back(std::move(qs));
    }
    for (std::size_t i = 0; i < kQosClasses; ++i)
      snap.caf_class_credits[i] =
          dev.class_credit(static_cast<QosClass>(i));
  }

  const std::string bytes = snap.serialize();
  rep.snapshot_bytes = bytes.size();
  const Snapshot restored = Snapshot::deserialize(bytes);
  if (!(restored == snap))
    throw std::runtime_error("warm-restart: snapshot serialize round trip");
  for (const auto& qs : restored.queues) rep.resident += qs.words.size();

  {
    runtime::Machine mB(cfg);
    squeue::CafDevice dev(mB, cfg.caf);
    std::vector<std::unique_ptr<squeue::SimCaf>> chs;
    for (int c = 0; c < kChannels; ++c)
      chs.push_back(std::make_unique<squeue::SimCaf>(dev, 1));
    if (dev.num_queues() != restored.queues.size())
      throw std::runtime_error(
          "warm-restart: rebuilt queue map diverged from snapshot");

    for (std::size_t i = 0; i < kQosClasses; ++i)
      dev.set_class_credit(static_cast<QosClass>(i),
                           restored.caf_class_credits[i]);

    // The queues are empty and the resident words fit the credit budget
    // before the restart, so every enqueue must be granted.
    for (const auto& qs : restored.queues)
      for (const auto& [v, cls] : qs.words)
        if (!dev.enq(qs.sqi, v, qos_class_from_byte(cls)))
          throw std::runtime_error("warm-restart: restore enq refused");

    const auto ncores = static_cast<CoreId>(mB.num_cores());
    for (std::size_t c = 0; c < restored.queues.size(); ++c)
      sim::spawn(consume_caf(*chs[c], mB.thread_on(c % ncores),
                             restored.queues[c].words.size(), after));
    mB.run();

    for (std::uint32_t q = 0; q < dev.num_queues(); ++q)
      if (dev.depth(q) != 0)
        throw std::runtime_error(
            "warm-restart: rebuilt device not drained");
  }

  finish_report(rep, produced, before, after);
  return rep;
}

}  // namespace

// --- Snapshot wire format ---------------------------------------------------

std::string Snapshot::serialize() const {
  std::string s(kMagic, sizeof(kMagic));
  put32(s, kVersion);
  put_str(s, backend);
  for (std::size_t i = 0; i < kQosClasses; ++i) put32(s, vl_class_quota[i]);
  put32(s, vl_per_sqi_quota);
  for (std::size_t i = 0; i < kQosClasses; ++i) put32(s, caf_class_credits[i]);
  put32(s, static_cast<std::uint32_t>(queues.size()));
  for (const QueueState& q : queues) {
    put_str(s, q.name);
    put32(s, q.vlrd_id);
    put32(s, q.sqi);
    put32(s, static_cast<std::uint32_t>(q.lines.size()));
    for (const mem::Line& l : q.lines)
      s.append(reinterpret_cast<const char*>(l.data()), l.size());
    put32(s, static_cast<std::uint32_t>(q.words.size()));
    for (const auto& [v, cls] : q.words) {
      put64(s, v);
      s.push_back(static_cast<char>(cls));
    }
  }
  return s;
}

Snapshot Snapshot::deserialize(const std::string& bytes) {
  Reader r{bytes};
  r.need(sizeof(kMagic));
  if (bytes.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0)
    throw std::invalid_argument("warm-restart snapshot: bad magic");
  r.off = sizeof(kMagic);
  if (r.u32() != kVersion)
    throw std::invalid_argument("warm-restart snapshot: unknown version");

  Snapshot snap;
  snap.backend = r.str();
  for (std::size_t i = 0; i < kQosClasses; ++i)
    snap.vl_class_quota[i] = r.u32();
  snap.vl_per_sqi_quota = r.u32();
  for (std::size_t i = 0; i < kQosClasses; ++i)
    snap.caf_class_credits[i] = r.u32();
  const std::uint32_t nq = r.u32();
  for (std::uint32_t qi = 0; qi < nq; ++qi) {
    QueueState q;
    q.name = r.str();
    q.vlrd_id = r.u32();
    q.sqi = r.u32();
    const std::uint32_t nl = r.u32();
    for (std::uint32_t i = 0; i < nl; ++i) {
      mem::Line l;
      for (auto& b : l) b = r.u8();
      q.lines.push_back(l);
    }
    const std::uint32_t nw = r.u32();
    for (std::uint32_t i = 0; i < nw; ++i) {
      const std::uint64_t v = r.u64();
      const std::uint8_t cls = r.u8();
      q.words.emplace_back(v, cls);
    }
    snap.queues.push_back(std::move(q));
  }
  if (r.off != bytes.size())
    throw std::invalid_argument("warm-restart snapshot: trailing bytes");
  return snap;
}

std::string WarmRestartReport::text() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "warm-restart backend=%s produced=%llu before=%llu "
                "resident=%llu after=%llu lost=%llu dup=%llu "
                "digest=0x%016llx bytes=%zu",
                backend.c_str(),
                static_cast<unsigned long long>(produced),
                static_cast<unsigned long long>(delivered_before),
                static_cast<unsigned long long>(resident),
                static_cast<unsigned long long>(delivered_after),
                static_cast<unsigned long long>(lost),
                static_cast<unsigned long long>(duplicated),
                static_cast<unsigned long long>(digest), snapshot_bytes);
  return buf;
}

WarmRestartReport run_warm_restart(squeue::Backend backend,
                                   std::uint64_t seed) {
  switch (backend) {
    case squeue::Backend::kVl:
    case squeue::Backend::kVlIdeal:
      return vl_drill(backend, seed);
    case squeue::Backend::kCaf:
      return caf_drill(seed);
    default:
      throw std::invalid_argument(
          std::string("warm-restart: backend '") +
          squeue::to_string(backend) +
          "' keeps its ring in host memory — only the device backends "
          "(vl, vlideal, caf) have restorable device state");
  }
}

}  // namespace vl::replay
