#pragma once
// Trace record/replay plane (ROADMAP item 4).
//
// A Trace is the production-shaped counterpart of the synthetic
// ArrivalSpec presets: the per-message stream an engine run actually
// emitted at its send boundary — (tick, tenant, producer, class, size,
// destination) per message copy — in a form that can be saved, diffed,
// and replayed through traffic::run / run_sharded on any backend.
//
//   * TraceRecorder taps the engines via obs::RunHooks::recorder. Each
//     producer appends to its own stream (race-free under the sharded
//     engine's threaded stepping); finish() merges the streams into one
//     deterministic (tick, producer, sequence) order, so two identical
//     runs record byte-identical traces.
//   * TraceArrival is an ArrivalProcess over one producer's recorded
//     stream. next_gap() reconstructs the *absolute* recorded generation
//     tick (gap = record.tick - now, clamped at 0), so a replayed
//     producer that is not backlogged stamps every message at exactly
//     the tick the recorded run did; class, payload width, and routing
//     come from the record rather than the spec's RNG draws.
//
// Replay semantics: the trace is the post-shed stream — records exist
// only for copies that actually entered a channel sub-batch — so a
// replaying producer skips drop_depth shedding, fault-plane loss/dup,
// and produce_compute (all already reflected in the recorded ticks).
// Replayed per-tenant delivered counts therefore match the recorded run
// exactly, and latency percentiles track it closely (the headline 5%
// tolerance is CI-gated by tools/replay_gate.py).
//
// File formats: CSV (`#`-prefixed metadata lines, then one row per
// record) for eyeballing and external tooling, and a packed
// little-endian binary ("VLTR") for bulk traces. Both round-trip
// byte-identically; save()/load() pick by extension/magic.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "traffic/arrival.hpp"

namespace vl::replay {

/// One message copy crossing the engine send boundary.
struct TraceRecord {
  Tick tick = 0;             ///< Generation (stamp) tick.
  std::uint16_t tenant = 0;  ///< Tenant index within the spec.
  std::uint16_t pid = 0;     ///< Producer id (global pid when sharded).
  QosClass cls = QosClass::kStandard;
  std::uint8_t words = 1;    ///< Payload words (1..7).
  std::uint64_t dst = 0;     ///< Channel index (classic engine) or logical
                             ///< destination tenant id (sharded engine).

  bool operator==(const TraceRecord&) const = default;
};

struct Trace {
  // Metadata, validated against the spec at replay time.
  std::string scenario;
  std::string backend;
  std::uint64_t seed = 0;
  std::uint32_t producers = 0;  ///< Producer streams (spec.producers after
                                ///< scaling).
  std::uint32_t tenants = 0;
  bool sharded = false;
  std::vector<TraceRecord> records;  ///< (tick, pid, seq) order.

  bool empty() const { return records.empty(); }

  /// Render/parse the CSV form (header comments + data rows).
  std::string csv() const;
  static Trace parse_csv(const std::string& text);

  /// Render/parse the packed binary form ("VLTR" magic).
  std::string binary() const;
  static Trace parse_binary(const std::string& bytes);

  /// Write to `path` — CSV when it ends in ".csv", binary otherwise.
  /// Returns false on I/O failure.
  bool save(const std::string& path) const;
  /// Read either format back (sniffs the magic). Throws
  /// std::invalid_argument on unreadable/malformed input.
  static Trace load(const std::string& path);
};

/// Engine-side tap. Attach via obs::RunHooks::recorder; the engines call
/// begin() once with the run's shape, then on_send() for every message
/// copy that enters a channel. Per-pid streams are preallocated by
/// begin(), so concurrent shards appending to different pids never race.
class TraceRecorder {
 public:
  void begin(const std::string& scenario, const std::string& backend,
             std::uint64_t seed, std::uint32_t producers,
             std::uint32_t tenants, bool sharded);

  void on_send(std::uint16_t pid, std::uint16_t tenant, QosClass cls,
               std::uint8_t words, std::uint64_t dst, Tick tick) {
    streams_[pid].push_back(TraceRecord{tick, tenant, pid, cls, words, dst});
  }

  /// Merge the per-producer streams into one trace ordered by
  /// (tick, pid, per-pid sequence) — a deterministic total order
  /// independent of host-thread interleaving.
  Trace finish() const;

 private:
  Trace meta_;
  std::vector<std::vector<TraceRecord>> streams_;
};

/// Replay cursor over one producer's recorded stream, shaped as an
/// ArrivalProcess so the engines' pacing loop drives it like any other
/// arrival. next_gap() does NOT advance the cursor — the engine reads
/// class/width/destination from record() at the reconstructed tick, then
/// calls advance().
class TraceArrival final : public traffic::ArrivalProcess {
 public:
  TraceArrival(const Trace& trace, std::uint16_t pid);

  Tick next_gap(Tick now) override {
    if (done()) return 0;
    const Tick at = record().tick;
    return at > now ? at - now : 0;
  }

  bool done() const { return cur_ >= idx_.size(); }
  std::size_t size() const { return idx_.size(); }
  const TraceRecord& record() const { return trace_->records[idx_[cur_]]; }
  void advance() { ++cur_; }

 private:
  const Trace* trace_;
  std::vector<std::uint32_t> idx_;  ///< Indices of this pid's records.
  std::size_t cur_ = 0;
};

}  // namespace vl::replay
