#pragma once
// Warm-restart drill (ROADMAP item 4, sonic-swss warmrestart reconcile
// discipline): prove that a routing device's resident state can be
// quiesced, snapshotted, serialized, torn down with the whole Machine,
// and restored into a freshly built Machine with zero message loss or
// duplication.
//
// The drill, per hardware backend:
//   1. build Machine A, open two queues, inject a known message multiset;
//      consumers drain part of it (delivered-before);
//   2. quiesce: consumers release their demand leases and sweep landed
//      frames (PR 6's out-of-order landing recovery), so every remaining
//      message is *device-resident* — nothing is in flight;
//   3. snapshot the device state into a serializable Snapshot — VLRD:
//      per-SQI resident lines in delivery order (Vlrd::snapshot_resident)
//      plus the quota knobs; CAF: per-queue resident words + class credit
//      caps — then serialize -> bytes -> deserialize (the round trip IS
//      the drill: a snapshot that can't survive serialization can't
//      survive a restart);
//   4. tear down Machine A entirely; build Machine B from the same
//      config, re-open the queues (creation order reproduces the SQI /
//      queue-id map), restore knobs then data;
//   5. drain everything and check conservation: the delivered multiset
//      (before + after) must equal the produced multiset — zero lost,
//      zero duplicated — with an order-independent digest that is
//      byte-identical across reruns.
//
// Software rings (BLFQ/ZMQ) are rejected: their state lives in host
// memory, not a device — there is nothing to warm-restart.

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "mem/hierarchy.hpp"
#include "squeue/factory.hpp"

namespace vl::replay {

/// Serializable device-resident state. Binary format "VLSS" (little
/// endian); round-trips byte-identically.
struct Snapshot {
  std::string backend;  ///< squeue::to_string of the recorded backend.

  struct QueueState {
    std::string name;          ///< Channel / shm name.
    std::uint32_t vlrd_id = 0; ///< VL routing device (CAF: 0).
    std::uint32_t sqi = 0;     ///< VL SQI (CAF: device queue id).
    /// VL: resident 64 B message lines, delivery order.
    std::vector<mem::Line> lines;
    /// CAF: resident words (value, class byte), FIFO order.
    std::vector<std::pair<std::uint64_t, std::uint8_t>> words;

    bool operator==(const QueueState&) const = default;
  };
  std::vector<QueueState> queues;

  // Knob state restored before the data (config-then-data, the
  // warm-restart reconcile order).
  std::uint32_t vl_class_quota[kQosClasses] = {0, 0, 0};
  std::uint32_t vl_per_sqi_quota = 0;
  std::uint32_t caf_class_credits[kQosClasses] = {0, 0, 0};

  std::string serialize() const;
  /// Throws std::invalid_argument on malformed input.
  static Snapshot deserialize(const std::string& bytes);

  bool operator==(const Snapshot&) const = default;
};

struct WarmRestartReport {
  std::string backend;
  std::uint64_t produced = 0;
  std::uint64_t delivered_before = 0;  ///< Drained pre-snapshot (incl. the
                                       ///< quiesce sweep).
  std::uint64_t resident = 0;          ///< Messages captured in the snapshot.
  std::uint64_t delivered_after = 0;   ///< Drained from the rebuilt machine.
  std::uint64_t lost = 0;        ///< Produced but never delivered.
  std::uint64_t duplicated = 0;  ///< Delivered more times than produced.
  std::size_t snapshot_bytes = 0;
  std::uint64_t digest = 0;  ///< FNV-1a over the sorted delivered multiset —
                             ///< order-independent, byte-identical across
                             ///< reruns.

  bool conserved() const { return lost == 0 && duplicated == 0; }
  /// One-line deterministic summary (CI compares two runs with cmp).
  std::string text() const;
};

/// Run the drill. `backend` must be kVl, kVlIdeal, or kCaf; throws
/// std::invalid_argument otherwise. `seed` perturbs the message values
/// (not the shape), so distinct seeds prove the digest tracks content.
WarmRestartReport run_warm_restart(squeue::Backend backend,
                                   std::uint64_t seed = 1);

}  // namespace vl::replay
