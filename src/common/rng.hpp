#pragma once
// Deterministic xoshiro256** PRNG (public-domain algorithm by Blackman &
// Vigna). The simulator never uses std::random_device or time-based seeds:
// every stochastic choice in workloads and tests is reproducible from the
// seed recorded in the experiment config.

#include <cstdint>

namespace vl {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    auto next = [&seed] {
      std::uint64_t z = (seed += 0x9e3779b97f4a7c15ull);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    for (auto& w : s_) w = next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 yields 0.
  std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : next() % bound;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace vl
