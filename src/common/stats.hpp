#pragma once
// Lightweight named-counter and histogram facilities.
//
// StatSet is the *snapshot* view of the telemetry system: a cold,
// map-backed bag of named values that supports diff around a region of
// interest (the same way the paper reads gem5 stats around the ROI),
// merge across shards, and to_string. Live counters belong in
// obs::Registry (src/obs/registry.hpp) — hot paths hold pointer-stable
// handles there and Registry::snapshot() exports into a StatSet, so
// everything downstream of a snapshot keeps using this type.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vl {

/// A group of named monotonic counters with snapshot/diff support.
class StatSet {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  void clear() { counters_.clear(); }

  /// Returns (*this - base), treating missing counters in base as zero.
  StatSet diff(const StatSet& base) const {
    StatSet out;
    for (const auto& [k, v] : counters_) {
      const std::uint64_t b = base.get(k);
      if (v > b) out.counters_[k] = v - b;
    }
    return out;
  }

  /// Merge another set into this one (summing counters).
  void merge(const StatSet& other) {
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
  }

  const std::map<std::string, std::uint64_t>& raw() const { return counters_; }

  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
};

/// Streaming summary statistics (count/mean/min/max) without storing samples.
class Summary {
 public:
  void record(double x) {
    if (n_ == 0 || x < min_) min_ = x;
    if (n_ == 0 || x > max_) max_ = x;
    // Welford update keeps mean numerically stable over long runs.
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0, m2_ = 0.0, min_ = 0.0, max_ = 0.0;
};

/// Fixed-bucket linear histogram for latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void record(double x) {
    summary_.record(x);
    if (x < lo_) {
      ++underflow_;
    } else if (x >= hi_) {
      ++overflow_;
    } else {
      const auto b = static_cast<std::size_t>(
          (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size()));
      ++counts_[b];
    }
  }

  const Summary& summary() const { return summary_; }
  const std::vector<std::uint64_t>& buckets() const { return counts_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  double bucket_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0;
  Summary summary_;
};

/// Exact-percentile sample store. The simulator is deterministic and runs
/// are bounded, so storing every sample and sorting on demand is both exact
/// and cheap — no estimator error in reported tail latencies.
class Samples {
 public:
  void record(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }

  std::size_t count() const { return xs_.size(); }
  double mean() const;

  /// p in [0, 100]; nearest-rank percentile. 0 with no samples.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  void clear() {
    xs_.clear();
    sorted_ = false;
  }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

/// Geometric mean of a series of ratios; used for the paper's 2.09x headline.
double geomean(const std::vector<double>& xs);

}  // namespace vl
