#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <sstream>

namespace vl {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
        c != '-' && c != '+' && c != 'e' && c != 'E' && c != 'x' && c != '%')
      return false;
  }
  return true;
}
}  // namespace

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size() && i < width.size(); ++i)
      width[i] = std::max(width[i], row[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : "";
      os << "  ";
      if (looks_numeric(cell)) {
        os << std::string(width[i] - cell.size(), ' ') << cell;
      } else {
        os << cell << std::string(width[i] - cell.size(), ' ');
      }
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 2;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace vl
