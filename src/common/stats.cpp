#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace vl {

std::string StatSet::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : counters_) os << k << " = " << v << '\n';
  return os.str();
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs_) acc += x;
  return acc / static_cast<double>(xs_.size());
}

double Samples::percentile(double p) const {
  if (xs_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  if (p <= 0.0) return xs_.front();
  if (p >= 100.0) return xs_.back();
  // Nearest-rank: ceil(p/100 * N), 1-based.
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(xs_.size())));
  return xs_[rank - 1];
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / static_cast<double>(xs.size()));
}

}  // namespace vl
