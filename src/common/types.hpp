#pragma once
// Fundamental simulator-wide types and cache-line constants.
//
// All addresses in the simulator live in a single flat "simulated physical
// address" space (the runtime maps virtual addresses 1:1 onto it, see
// runtime/address_space.hpp). Lines are the paper's 64 B coherence granule.

#include <cstdint>
#include <cstddef>

namespace vl {

using Tick = std::uint64_t;   ///< Simulated time, in picosecond-scale ticks.
using Addr = std::uint64_t;   ///< Simulated physical/virtual address.
using CoreId = std::uint32_t; ///< Processing-element identifier.
using Sqi = std::uint32_t;    ///< Shared Queue Identifier (paper SQI).

inline constexpr std::size_t kLineSize = 64;       ///< Coherence granule (B).
inline constexpr std::size_t kLineShift = 6;
inline constexpr Addr kLineMask = ~static_cast<Addr>(kLineSize - 1);

inline constexpr Addr line_of(Addr a) { return a & kLineMask; }
inline constexpr std::size_t line_offset(Addr a) {
  return static_cast<std::size_t>(a & (kLineSize - 1));
}

/// Sentinel for "no index" in the VLRD's hardware linked lists.
inline constexpr std::uint16_t kNil = 0xffff;

/// Tenant service class, the QoS vocabulary shared by the traffic layer
/// (per-tenant class + SLO) and the hardware models that enforce it (CAF
/// per-class credit caps, VLRD per-class prodBuf quotas). kStandard is 0 so
/// untagged traffic — every workload outside the QoS scenarios — stays in
/// the default class with no behaviour change.
enum class QosClass : std::uint8_t { kStandard = 0, kLatency = 1, kBulk = 2 };
inline constexpr std::size_t kQosClasses = 3;

inline constexpr const char* to_string(QosClass c) {
  switch (c) {
    case QosClass::kStandard: return "standard";
    case QosClass::kLatency: return "latency";
    case QosClass::kBulk: return "bulk";
  }
  return "?";
}

/// Decode a QosClass from the reserved byte of a Fig. 10 control region
/// (the wire encoding shared by the runtime's frame codec and the routing
/// device). Untagged bytes read 0 == kStandard; out-of-range values clamp
/// into the standard class rather than indexing off a quota table.
inline constexpr QosClass qos_class_from_byte(std::uint8_t b) {
  return b < kQosClasses ? static_cast<QosClass>(b) : QosClass::kStandard;
}

/// Relative buffer/credit weight of a class: a latency-class queue gets 4x
/// the enqueue capacity of a bulk-class one, so back-pressure lands on bulk
/// traffic first while the latency class keeps headroom.
inline constexpr std::uint32_t qos_weight(QosClass c) {
  switch (c) {
    case QosClass::kLatency: return 4;
    case QosClass::kStandard: return 2;
    case QosClass::kBulk: return 1;
  }
  return 1;
}

/// Byte offset of the Fig. 10 message-line control region (2 B at the
/// line's most significant bytes). Shared between the runtime's frame
/// codec (runtime/vl_queue.hpp) and the routing device, which reads it to
/// tell a drained consumer line (ctrl == 0) from an undrained one.
inline constexpr std::size_t kLineCtrlOffset = 62;

}  // namespace vl
