#pragma once
// Fundamental simulator-wide types and cache-line constants.
//
// All addresses in the simulator live in a single flat "simulated physical
// address" space (the runtime maps virtual addresses 1:1 onto it, see
// runtime/address_space.hpp). Lines are the paper's 64 B coherence granule.

#include <cstdint>
#include <cstddef>

namespace vl {

using Tick = std::uint64_t;   ///< Simulated time, in picosecond-scale ticks.
using Addr = std::uint64_t;   ///< Simulated physical/virtual address.
using CoreId = std::uint32_t; ///< Processing-element identifier.
using Sqi = std::uint32_t;    ///< Shared Queue Identifier (paper SQI).

inline constexpr std::size_t kLineSize = 64;       ///< Coherence granule (B).
inline constexpr std::size_t kLineShift = 6;
inline constexpr Addr kLineMask = ~static_cast<Addr>(kLineSize - 1);

inline constexpr Addr line_of(Addr a) { return a & kLineMask; }
inline constexpr std::size_t line_offset(Addr a) {
  return static_cast<std::size_t>(a & (kLineSize - 1));
}

/// Sentinel for "no index" in the VLRD's hardware linked lists.
inline constexpr std::uint16_t kNil = 0xffff;

/// Byte offset of the Fig. 10 message-line control region (2 B at the
/// line's most significant bytes). Shared between the runtime's frame
/// codec (runtime/vl_queue.hpp) and the routing device, which reads it to
/// tell a drained consumer line (ctrl == 0) from an undrained one.
inline constexpr std::size_t kLineCtrlOffset = 62;

}  // namespace vl
