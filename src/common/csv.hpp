#pragma once
// Minimal CSV writer (RFC-4180-style quoting) for exporting experiment
// matrices to analysis tools. Numeric cells are written bare; text cells
// are quoted only when they contain a delimiter, quote, or newline.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace vl {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header) : cols_(header.size()) {
    row(std::move(header));
  }

  /// Append one row; must match the header width.
  void row(std::vector<std::string> cells);

  /// Convenience: start a row builder.
  class Row {
   public:
    explicit Row(CsvWriter& w) : w_(w) {}
    Row& col(const std::string& s) {
      cells_.push_back(s);
      return *this;
    }
    Row& col(double v, int precision = 6);
    Row& col(std::uint64_t v) {
      cells_.push_back(std::to_string(v));
      return *this;
    }
    ~Row() { w_.row(std::move(cells_)); }

   private:
    CsvWriter& w_;
    std::vector<std::string> cells_;
  };
  Row add() { return Row(*this); }

  /// The document so far (header + rows, "\n" line endings).
  std::string str() const { return out_.str(); }

  std::size_t rows_written() const { return rows_; }  // includes header

  /// Quote a single cell per RFC 4180 (exposed for testing).
  static std::string escape(const std::string& cell);

 private:
  std::size_t cols_;
  std::size_t rows_ = 0;
  std::ostringstream out_;
};

}  // namespace vl
