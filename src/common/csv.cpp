#include "common/csv.hpp"

#include <cassert>
#include <cstdio>

namespace vl {

std::string CsvWriter::escape(const std::string& cell) {
  bool needs_quotes = false;
  for (char c : cell) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';  // double the quote
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(std::vector<std::string> cells) {
  assert(cells.size() == cols_ && "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

CsvWriter::Row& CsvWriter::Row::col(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  cells_.push_back(buf);
  return *this;
}

}  // namespace vl
