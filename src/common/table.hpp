#pragma once
// Minimal aligned-text table writer used by every bench binary so that
// regenerated paper tables/figures share one consistent plain-text format.

#include <string>
#include <vector>

namespace vl {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Render with column alignment; numeric-looking cells right-align.
  std::string render() const;

  /// Helper: format a double with the given precision.
  static std::string num(double v, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vl
