// Quickstart: the smallest complete Virtual-Link program.
//
// Builds the Table III machine, opens one VL queue the POSIX-style way
// (shm_open + mmap, Fig. 8b), then runs a producer thread on core 0 and a
// consumer thread on core 1 exchanging 1000 messages through the routing
// device — and shows the punchline: zero snoops, zero DRAM traffic.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "runtime/machine.hpp"
#include "runtime/vl_queue.hpp"

using namespace vl;

int main() {
  // 1. The machine: 16 cores, MESI hierarchy, one VLRD on the bus.
  runtime::Machine machine;
  runtime::VlQueueLib lib(machine);

  // 2. Open a queue by name (allocates a SQI) and create one endpoint per
  //    side. Each endpoint owns a private device address and a small
  //    circular buffer of user-space cache lines.
  const runtime::QueueHandle q = lib.open("quickstart_queue");
  auto producer = lib.make_producer(q, machine.thread_on(0));
  auto consumer = lib.make_consumer(q, machine.thread_on(1));

  constexpr int kMessages = 1000;

  // 3. Simulated threads are plain coroutines.
  sim::spawn([](runtime::Producer& p) -> sim::Co<void> {
    for (std::uint64_t i = 0; i < kMessages; ++i)
      co_await p.enqueue1(i * i);
  }(producer));

  std::uint64_t checksum = 0;
  sim::spawn([](runtime::Consumer& c, std::uint64_t* sum) -> sim::Co<void> {
    for (int i = 0; i < kMessages; ++i) *sum += co_await c.dequeue1();
  }(consumer, &checksum));

  // 4. Run to completion and inspect.
  machine.run();

  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < kMessages; ++i) expect += i * i;

  const auto& st = machine.mem().stats();
  std::printf("delivered %d messages, checksum %s\n", kMessages,
              checksum == expect ? "OK" : "MISMATCH");
  std::printf("simulated time: %.1f us\n", machine.ns(machine.now()) / 1000.0);
  std::printf("cache-line injections: %llu\n",
              static_cast<unsigned long long>(st.injections));
  std::printf("snoops: %llu, invalidations: %llu, DRAM transactions: %llu\n",
              static_cast<unsigned long long>(st.snoops),
              static_cast<unsigned long long>(st.invalidations),
              static_cast<unsigned long long>(st.mem_txns()));
  std::printf("(after warm-up, steady-state VL traffic is zero shared "
              "coherent state — the paper's core claim)\n");
  return checksum == expect ? 0 : 1;
}
