// Packet steering: an M:N use of Virtual-Link, the configuration software
// queues struggle with most. A receive thread classifies packets into two
// traffic classes; each class fans out over a pool of worker cores through
// one shared M:N channel per class (no per-worker queues, no shared
// head/tail words); workers report to a statistics sink.
//
// Demonstrates: multiple SQIs, M:N endpoints on one SQI, back-pressure
// when a class is oversubscribed, and per-class in-order delivery from a
// single producer.
//
//   $ ./examples/packet_steering

#include <cstdio>
#include <vector>

#include "squeue/factory.hpp"

using namespace vl;

namespace {

constexpr int kPackets = 400;
constexpr int kFastWorkers = 3;
constexpr int kSlowWorkers = 2;

}  // namespace

int main() {
  runtime::Machine m(squeue::config_for(squeue::Backend::kVl));
  squeue::ChannelFactory factory(m, squeue::Backend::kVl);

  auto fast = factory.make("class_fast");   // latency-sensitive class
  auto slow = factory.make("class_bulk");   // bulk class
  auto stats = factory.make("stats");       // workers -> sink (M:1)

  // RX/classifier on core 0: even flow ids are "fast", odd are "bulk".
  sim::spawn([](squeue::Channel& fast, squeue::Channel& slow,
                sim::SimThread t) -> sim::Co<void> {
    for (std::uint64_t p = 0; p < kPackets; ++p) {
      co_await t.compute(40);  // parse headers
      const std::uint64_t flow = p % 8;
      if (flow % 2 == 0)
        co_await fast.send1(t, p);
      else
        co_await slow.send1(t, p);
    }
    // Poison pills, one per worker.
    for (int w = 0; w < kFastWorkers; ++w)
      co_await fast.send1(t, ~std::uint64_t{0});
    for (int w = 0; w < kSlowWorkers; ++w)
      co_await slow.send1(t, ~std::uint64_t{0});
  }(*fast, *slow, m.thread_on(0)));

  // Worker pools: fast on cores 1..3, bulk on cores 4..5.
  auto worker = [](squeue::Channel& in, squeue::Channel& out,
                   sim::SimThread t, Tick service) -> sim::Co<void> {
    std::uint64_t handled = 0;
    for (;;) {
      const std::uint64_t pkt = co_await in.recv1(t);
      if (pkt == ~std::uint64_t{0}) break;
      co_await t.compute(service);
      ++handled;
    }
    co_await out.send1(t, handled);
  };
  for (int w = 0; w < kFastWorkers; ++w)
    sim::spawn(worker(*fast, *stats, m.thread_on(static_cast<CoreId>(1 + w)),
                      60));
  for (int w = 0; w < kSlowWorkers; ++w)
    sim::spawn(worker(*slow, *stats,
                      m.thread_on(static_cast<CoreId>(1 + kFastWorkers + w)),
                      400));

  // Statistics sink on core 15.
  std::uint64_t total = 0;
  sim::spawn([](squeue::Channel& stats, sim::SimThread t,
                std::uint64_t* total) -> sim::Co<void> {
    for (int w = 0; w < kFastWorkers + kSlowWorkers; ++w)
      *total += co_await stats.recv1(t);
  }(*stats, m.thread_on(15), &total));

  m.run();

  std::printf("steered %llu / %d packets across %d workers in %.1f us\n",
              static_cast<unsigned long long>(total), kPackets,
              kFastWorkers + kSlowWorkers, m.ns(m.now()) / 1000.0);
  const auto& st = m.mem().stats();
  std::printf("injections: %llu, inject retries: %llu, snoops: %llu\n",
              static_cast<unsigned long long>(st.injections),
              static_cast<unsigned long long>(st.inject_rejects),
              static_cast<unsigned long long>(st.snoops));
  std::printf("VLRD push NACKs (back-pressure events): %llu\n",
              static_cast<unsigned long long>(m.vlrd().stats().push_nacks));
  return total == kPackets ? 0 : 1;
}
