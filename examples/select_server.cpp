// Select server: one service core multiplexing several request queues with
// Channel API v2's Selector — the wait-any idiom behind every event loop,
// RPC dispatcher, and NIC completion-ring servicer.
//
// Three client pools (interactive / api / batch) each own a request queue;
// one server core parks on all three at once and wakes on whichever is
// ready first, servicing in deterministic rotating order. No hand-rolled
// poll loop over the queues, no per-queue thread.
//
// Runs the same application over ZMQ (where the selector parks on the
// rings' readiness futexes — zero events while idle) and over Virtual-Link
// (where it polls the endpoints' control words at the § III-B discovery
// cadence), and self-checks that every request was served exactly once.
//
//   $ ./examples/select_server

#include <cstdio>
#include <memory>
#include <vector>

#include "squeue/factory.hpp"
#include "squeue/selector.hpp"

using namespace vl;

namespace {

struct Pool {
  const char* name;
  int clients;
  int requests_per_client;
  Tick think_time;  // cycles between a client's requests
};

constexpr Pool kPools[] = {
    {"interactive", 2, 40, 900},
    {"api", 3, 60, 500},
    {"batch", 1, 120, 150},
};
constexpr int kNumPools = 3;
constexpr std::uint64_t kDone = ~std::uint64_t{0};

int total_requests() {
  int n = 0;
  for (const Pool& p : kPools) n += p.clients * p.requests_per_client;
  return n;
}

struct RunOut {
  double us;
  std::uint64_t served[kNumPools] = {0, 0, 0};
  bool ok = true;
};

RunOut run_app(squeue::Backend backend) {
  runtime::Machine m(squeue::config_for(backend));
  squeue::ChannelFactory factory(m, backend);

  std::vector<std::unique_ptr<squeue::Channel>> queues;
  squeue::Selector sel;
  for (int q = 0; q < kNumPools; ++q) {
    queues.push_back(
        factory.make(std::string("req_") + kPools[q].name, 256));
    sel.add(*queues.back());
  }

  // Clients: each sends `requests_per_client` tagged requests, then one
  // done-marker per pool (sent by client 0 after its last request... the
  // server counts done-markers per pool to know when a pool finished).
  CoreId core = 1;
  int finishers[kNumPools];
  for (int q = 0; q < kNumPools; ++q) finishers[q] = kPools[q].clients;
  for (int q = 0; q < kNumPools; ++q) {
    for (int c = 0; c < kPools[q].clients; ++c) {
      sim::spawn([](squeue::Channel& ch, sim::SimThread t, const Pool& p,
                    int q, int c) -> sim::Co<void> {
        for (int i = 0; i < p.requests_per_client; ++i) {
          co_await t.compute(p.think_time);
          co_await ch.send1(
              t, (static_cast<std::uint64_t>(q) << 32) |
                     static_cast<std::uint64_t>(c * 1'000'000 + i));
        }
        co_await ch.send1(t, kDone);  // this client is finished
      }(*queues[static_cast<std::size_t>(q)],
        m.thread_on(core++), kPools[q], q, c));
    }
  }

  // The server: one core, wait-any across all request queues.
  RunOut out;
  sim::spawn([](squeue::Selector& sel, sim::SimThread t, RunOut* out,
                int* finishers) -> sim::Co<void> {
    int open_pools = kNumPools;
    while (open_pools > 0) {
      const squeue::Selector::Item item = co_await sel.recv_any(t);
      if (item.msg.w[0] == kDone) {
        if (--finishers[item.index] == 0) --open_pools;
        continue;
      }
      const auto pool = static_cast<std::size_t>(item.msg.w[0] >> 32);
      if (pool != item.index) out->ok = false;  // routing integrity
      co_await t.compute(120);  // service the request
      ++out->served[pool];
    }
  }(sel, m.thread_on(0), &out, finishers));

  m.run();
  out.us = m.ns(m.now()) / 1000.0;
  return out;
}

}  // namespace

int main() {
  std::printf("select server: 1 core serving %d pools, %d requests total\n\n",
              kNumPools, total_requests());
  bool all_ok = true;
  for (squeue::Backend b :
       {squeue::Backend::kZmq, squeue::Backend::kVl}) {
    const RunOut r = run_app(b);
    std::uint64_t served = 0;
    bool ok = r.ok;
    std::printf("%-10s %8.1f us  served:", squeue::to_string(b), r.us);
    for (int q = 0; q < kNumPools; ++q) {
      std::printf(" %s=%llu", kPools[q].name,
                  static_cast<unsigned long long>(r.served[q]));
      ok = ok &&
           r.served[q] == static_cast<std::uint64_t>(
                              kPools[q].clients * kPools[q].requests_per_client);
      served += r.served[q];
    }
    std::printf("  [%s]\n", ok ? "OK" : "MISMATCH");
    all_ok = all_ok && ok && served == static_cast<std::uint64_t>(total_requests());
  }
  return all_ok ? 0 : 1;
}
