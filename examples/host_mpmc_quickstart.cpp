// Host-thread quickstart for the native concurrency library: the bounded
// lock-free MPMC queue and locks run on real std::threads (no simulator).
// This is the library a downstream user links when they want the software
// baseline the paper measures in Figs. 1/2.
//
//   $ ./examples/host_mpmc_quickstart

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "native/mpmc_queue.hpp"
#include "native/spsc_ring.hpp"

using namespace vl::native;

int main() {
  constexpr int kProducers = 3;
  constexpr std::uint64_t kPerProducer = 100000;

  MpmcQueue<std::uint64_t> q(1024);
  std::atomic<std::uint64_t> checksum{0};

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.emplace_back([&] {  // consumer
    std::uint64_t local = 0;
    for (std::uint64_t i = 0; i < kProducers * kPerProducer; ++i)
      local += q.pop();
    checksum.store(local);
  });
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i)
        q.push(static_cast<std::uint64_t>(p) + i);
    });
  }
  for (auto& t : threads) t.join();
  const auto t1 = std::chrono::steady_clock::now();

  std::uint64_t expect = 0;
  for (int p = 0; p < kProducers; ++p)
    for (std::uint64_t i = 0; i < kPerProducer; ++i) expect += p + i;

  const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::printf("MPMC: %llu messages in %.1f ms (%.0f ns/msg), checksum %s\n",
              static_cast<unsigned long long>(kProducers * kPerProducer), ms,
              ms * 1e6 / (kProducers * kPerProducer),
              checksum.load() == expect ? "OK" : "MISMATCH");

  // SPSC ring: the 1:1 fast path.
  SpscRing<std::uint64_t> ring(256);
  std::uint64_t got = 0;
  std::thread cons([&] {
    for (std::uint64_t i = 0; i < 100000; ++i) {
      std::optional<std::uint64_t> v;
      while (!(v = ring.try_pop())) {
      }
      got += *v;
    }
  });
  for (std::uint64_t i = 0; i < 100000; ++i)
    while (!ring.try_push(i)) {
    }
  cons.join();
  std::printf("SPSC: transferred 100000 items, sum %llu\n",
              static_cast<unsigned long long>(got));
  return checksum.load() == expect ? 0 : 1;
}
