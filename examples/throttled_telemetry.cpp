// Throttled telemetry: the § II back-pressure story end to end.
//
// Twelve sensor threads push readings to one aggregator over a single VL
// queue whose routing-device buffer is deliberately small. A naive sensor
// retries failed pushes in a tight loop, burning device round trips on
// NACKs; an AIMD-throttled sensor (runtime::Throttle) converges on its
// fair share of the aggregator's service rate. Each reading carries its
// send tick, so the aggregator reports end-to-end latency percentiles.
//
//   $ ./examples/throttled_telemetry

#include <cstdio>
#include <span>
#include <vector>

#include "common/stats.hpp"
#include "runtime/machine.hpp"
#include "runtime/throttle.hpp"
#include "runtime/vl_queue.hpp"

using namespace vl;

namespace {
constexpr int kSensors = 12;
constexpr int kPerSensor = 40;

struct RunResult {
  std::uint64_t nacks = 0;
  double p50 = 0, p99 = 0;
  double total_us = 0;
};

RunResult run(bool throttled) {
  sim::SystemConfig cfg;
  cfg.vlrd.prod_entries = 8;  // small device buffer: pressure is real
  runtime::Machine machine(cfg);
  runtime::VlQueueLib lib(machine);
  const auto q = lib.open("telemetry");

  std::vector<runtime::Producer> sensors;
  for (int s = 0; s < kSensors; ++s)
    sensors.push_back(
        lib.make_producer(q, machine.thread_on(static_cast<CoreId>(s))));
  auto aggregator = lib.make_consumer(q, machine.thread_on(13));

  for (int s = 0; s < kSensors; ++s) {
    sim::spawn([](runtime::Producer& p, runtime::Machine& m, int id,
                  bool use_throttle) -> sim::Co<void> {
      runtime::Throttle th;
      for (int i = 0; i < kPerSensor; ++i) {
        for (;;) {
          if (use_throttle) co_await th.pace(p.thread());
          const std::uint64_t words[3] = {
              static_cast<std::uint64_t>(id), static_cast<std::uint64_t>(i),
              m.now()};  // reading carries its send tick
          const bool ok = co_await p.try_enqueue(
              std::span<const std::uint64_t>(words, 3));
          th.on_result(ok);
          if (ok) break;
          if (!use_throttle) co_await p.thread().compute(8);  // hot retry
        }
        co_await p.thread().compute(150);  // sensor sampling interval
      }
    }(sensors[s], machine, s, throttled));
  }

  Samples latencies;
  sim::spawn([](runtime::Consumer& c, runtime::Machine& m,
                Samples* lat) -> sim::Co<void> {
    for (int i = 0; i < kSensors * kPerSensor; ++i) {
      const auto msg = co_await c.dequeue();
      lat->record(m.ns(m.now() - msg[2]));
      co_await c.thread().compute(400);  // aggregation work per reading
    }
  }(aggregator, machine, &latencies));
  machine.run();

  RunResult r;
  r.nacks = machine.vlrd_stats().push_nacks;
  r.p50 = latencies.percentile(50);
  r.p99 = latencies.percentile(99);
  r.total_us = machine.ns(machine.now()) / 1000.0;
  return r;
}
}  // namespace

int main() {
  const RunResult naive = run(false);
  const RunResult paced = run(true);
  std::printf("%-22s %12s %12s\n", "", "naive retry", "AIMD-paced");
  std::printf("%-22s %12llu %12llu\n", "device push NACKs",
              static_cast<unsigned long long>(naive.nacks),
              static_cast<unsigned long long>(paced.nacks));
  std::printf("%-22s %9.0f ns %9.0f ns\n", "latency P50", naive.p50,
              paced.p50);
  std::printf("%-22s %9.0f ns %9.0f ns\n", "latency P99", naive.p99,
              paced.p99);
  std::printf("%-22s %9.1f us %9.1f us\n", "total run", naive.total_us,
              paced.total_us);
  const bool pass = paced.nacks < naive.nacks;
  std::printf("\nThe consumer is the bottleneck either way, so total time "
              "barely moves;\nwhat pacing buys is the wasted device traffic "
              "(NACKs) and the tail.\n%s\n", pass ? "OK" : "FAILED");
  return pass ? 0 : 1;
}
