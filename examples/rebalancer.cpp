// Rebalancer: VL endpoints surviving OS thread migration (paper § III-B).
//
// A 4-producer / 2-consumer work-distribution queue runs while an "OS load
// balancer" periodically migrates the consumers between cores. Every
// migration drops the consumer's pushable tags, so any injection in flight
// toward the old core is rejected and the data stays with the routing
// device until the consumer re-registers from its new core — the paper's
// loss-free migration story, end to end.
//
// Also demonstrates multi-VLRD (two routing devices, Fig. 9 bits J:N+1):
// the work queue and the completion queue land on different devices.
//
//   $ ./examples/rebalancer

#include <cstdio>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/vl_queue.hpp"

using namespace vl;

namespace {
constexpr int kTasks = 200;
constexpr int kProducers = 4;
constexpr int kConsumers = 2;
}  // namespace

int main() {
  runtime::Machine machine(sim::SystemConfig::table3_multi(2));
  runtime::VlQueueLib lib(machine);

  const auto work_q = lib.open("work");         // lands on device 0
  const auto done_q = lib.open("completions");  // lands on device 1
  std::printf("work queue on VLRD %u, completion queue on VLRD %u\n",
              work_q.vlrd_id, done_q.vlrd_id);

  // Producers: cores 0..3, each enqueues kTasks/kProducers task ids.
  std::vector<runtime::Producer> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.push_back(
        lib.make_producer(work_q, machine.thread_on(static_cast<CoreId>(p))));
  for (int p = 0; p < kProducers; ++p) {
    sim::spawn([](runtime::Producer& prod, int base) -> sim::Co<void> {
      for (int i = 0; i < kTasks / kProducers; ++i)
        co_await prod.enqueue1(static_cast<std::uint64_t>(base + i));
    }(producers[p], p * (kTasks / kProducers)));
  }

  // Consumers: start on cores 8/9, migrate to a new core every 8 tasks —
  // the "rebalancer" walking them across cores 8..15.
  std::vector<runtime::Consumer> consumers;
  std::vector<runtime::Producer> completers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.push_back(lib.make_consumer(
        work_q, machine.thread_on(static_cast<CoreId>(8 + c))));
    completers.push_back(lib.make_producer(
        done_q, machine.thread_on(static_cast<CoreId>(8 + c))));
  }
  for (int c = 0; c < kConsumers; ++c) {
    sim::spawn([](runtime::Consumer& cons, runtime::Producer& done,
                  runtime::Machine& m, int self) -> sim::Co<void> {
      for (int i = 0; i < kTasks / kConsumers; ++i) {
        const std::uint64_t task = co_await cons.dequeue1();
        co_await done.enqueue1(task);
        if (i % 8 == 7) {
          const CoreId next =
              static_cast<CoreId>(8 + (self + i / 8 + 1) % 8);
          cons.migrate(m.thread_on(next));
          done.migrate(m.thread_on(next));
        }
      }
    }(consumers[c], completers[c], machine, c));
  }

  // Collector drains the completion queue and checks exactly-once delivery.
  auto collector = lib.make_consumer(done_q, machine.thread_on(7));
  std::vector<bool> seen(kTasks, false);
  int dupes = 0;
  sim::spawn([](runtime::Consumer& coll, std::vector<bool>* seen,
                int* dupes) -> sim::Co<void> {
    for (int i = 0; i < kTasks; ++i) {
      const auto task = co_await coll.dequeue1();
      if ((*seen)[task]) ++*dupes;
      (*seen)[task] = true;
    }
  }(collector, &seen, &dupes));

  machine.run();

  int delivered = 0;
  for (bool b : seen) delivered += b ? 1 : 0;
  const auto vs = machine.vlrd_stats();
  std::printf("tasks completed exactly once: %d / %d (duplicates: %d)\n",
              delivered, kTasks, dupes);
  std::printf("rejected injections recovered by refetch: %llu\n",
              static_cast<unsigned long long>(vs.inject_retry));
  std::printf("device pushes: %llu across %u VLRDs\n",
              static_cast<unsigned long long>(vs.pushes),
              machine.cluster().size());
  const bool pass = delivered == kTasks && dupes == 0;
  std::printf("%s\n", pass ? "OK" : "FAILED");
  return pass ? 0 : 1;
}
