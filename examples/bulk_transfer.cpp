// Bulk transfer: moving payloads bigger than a cache line with indirect
// buffers (paper § III-D: "Messages larger than a cache line can be
// incorporated via indirect buffers as pointers", VirtIO-1.1 style).
//
// A 3-stage camera pipeline on one Table III machine:
//
//   capture (core 0) --frames--> detect (core 4) --frames--> encode (core 8)
//
// 4 KiB "frames" travel by descriptor through two VL channels sharing one
// region pool. The detect stage works zero-copy: it reads the frame in
// place and forwards the same region, so each frame body is written once
// and read twice while only two-word descriptors cross the queues. The
// 8-region pool back-pressures capture whenever 8 frames are in flight.
//
//   $ ./examples/bulk_transfer

#include <cstdio>
#include <vector>

#include "indirect/indirect.hpp"
#include "runtime/machine.hpp"
#include "squeue/factory.hpp"

using namespace vl;
using indirect::Descriptor;
using indirect::IndirectChannel;
using indirect::RegionPool;

namespace {
constexpr int kFrames = 64;
constexpr std::size_t kFrameBytes = 4096;

// Deterministic frame body: byte j of frame i is (i * 31 + j) mod 256.
std::vector<std::uint8_t> make_frame(int i) {
  std::vector<std::uint8_t> f(kFrameBytes);
  for (std::size_t j = 0; j < kFrameBytes; ++j)
    f[j] = static_cast<std::uint8_t>(i * 31 + j);
  return f;
}
}  // namespace

int main() {
  runtime::Machine machine{squeue::config_for(squeue::Backend::kVl)};
  squeue::ChannelFactory factory(machine, squeue::Backend::kVl);

  auto cap_to_det = factory.make("capture_to_detect", 32, 2);
  auto det_to_enc = factory.make("detect_to_encode", 32, 2);
  RegionPool pool(machine, kFrameBytes, 8);
  IndirectChannel stage1(machine, *cap_to_det, pool);
  IndirectChannel stage2(machine, *det_to_enc, pool);

  // Capture: allocate a region per frame, write the 4 KiB body, send the
  // descriptor downstream.
  sim::spawn([](IndirectChannel& out, sim::SimThread t) -> sim::Co<void> {
    for (int i = 0; i < kFrames; ++i) {
      const auto frame = make_frame(i);
      co_await out.send_bytes(t, frame);
    }
  }(stage1, machine.thread_on(0)));

  // Detect: zero-copy — inspect the frame in place and forward the same
  // region. Ownership passes straight through; no copy, no recycle here.
  std::uint64_t detections = 0;
  sim::spawn([](IndirectChannel& in, IndirectChannel& out, sim::SimThread t,
                std::uint64_t* found) -> sim::Co<void> {
    for (int i = 0; i < kFrames; ++i) {
      const Descriptor d = co_await in.recv_region(t);
      const auto body = co_await in.read_region(t, d);
      *found += body[0] % 3 == 0 ? 1 : 0;  // toy "object detector"
      co_await out.send_region(t, d);      // forward without copying
    }
  }(stage1, stage2, machine.thread_on(4), &detections));

  // Encode: consume by copy (recycles the region back to the pool).
  int frames_ok = 0;
  sim::spawn([](IndirectChannel& in, sim::SimThread t, int* ok) -> sim::Co<void> {
    for (int i = 0; i < kFrames; ++i) {
      const auto frame = co_await in.recv_bytes(t);
      bool good = frame.size() == kFrameBytes;
      if (good)
        for (std::size_t j = 0; j < 16; ++j)
          good &= frame[j] == static_cast<std::uint8_t>(i * 31 + j);
      *ok += good ? 1 : 0;
    }
  }(stage2, machine.thread_on(8), &frames_ok));

  machine.run();

  const auto& st = machine.mem().stats();
  std::printf("frames delivered intact: %d / %d\n", frames_ok, kFrames);
  std::printf("toy detections: %llu\n",
              static_cast<unsigned long long>(detections));
  std::printf("regions free after run: %u / %u (no leaks)\n",
              pool.free_count(), pool.capacity());
  std::printf("simulated time: %.1f us  (%.0f ns per 4 KiB frame)\n",
              machine.ns(machine.now()) / 1000.0,
              machine.ns(machine.now()) / kFrames);
  std::printf("DRAM transactions: %llu, snoops: %llu\n",
              static_cast<unsigned long long>(st.mem_txns()),
              static_cast<unsigned long long>(st.snoops));
  const bool pass = frames_ok == kFrames && pool.free_count() == 8;
  std::printf("%s\n", pass ? "OK" : "FAILED");
  return pass ? 0 : 1;
}
