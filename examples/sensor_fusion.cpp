// Sensor fusion: the paper's motivating scenario — many fine-grained
// streaming producers feeding one fusion kernel, where per-message
// synchronization cost decides whether parallelization pays off at all.
//
// 12 simulated sensor threads each publish readings (timestamp, sensor id,
// value) as 3-word messages into one M:1 channel; a fusion thread on core
// 15 maintains a running filter per sensor. The same application runs over
// BLFQ and over Virtual-Link, and the example prints the end-to-end time
// and coherence traffic of both — a small-scale Fig. 11 you can read in
// two seconds.
//
//   $ ./examples/sensor_fusion

#include <cstdio>

#include "squeue/factory.hpp"

using namespace vl;

namespace {

constexpr int kSensors = 12;
constexpr int kReadingsPerSensor = 150;

struct RunOut {
  double us;
  std::uint64_t snoops;
  std::uint64_t dram;
};

RunOut run_app(squeue::Backend backend) {
  runtime::Machine m(squeue::config_for(backend));
  squeue::ChannelFactory factory(m, backend);
  auto ch = factory.make("sensors", /*capacity_hint=*/4096, /*msg_words=*/3);

  // Sensors: cores 0..11, one reading every ~200 cycles of "sampling".
  for (int s = 0; s < kSensors; ++s) {
    sim::spawn([](squeue::Channel& ch, sim::SimThread t, int id) -> sim::Co<void> {
      for (int i = 0; i < kReadingsPerSensor; ++i) {
        co_await t.compute(200);  // sample + pre-process
        squeue::Msg reading;
        reading.n = 3;
        reading.w[0] = static_cast<std::uint64_t>(i);        // timestamp
        reading.w[1] = static_cast<std::uint64_t>(id);       // sensor
        reading.w[2] = static_cast<std::uint64_t>(id * 37 + i);  // value
        co_await ch.send(t, reading);
      }
    }(*ch, m.thread_on(static_cast<CoreId>(s)), s));
  }

  // Fusion kernel: exponential moving average per sensor.
  sim::spawn([](squeue::Channel& ch, sim::SimThread t,
                runtime::Machine& m) -> sim::Co<void> {
    const Addr state = m.alloc(kSensors * 8);
    for (int i = 0; i < kSensors * kReadingsPerSensor; ++i) {
      const squeue::Msg r = co_await ch.recv(t);
      const Addr slot = state + r.w[1] * 8;
      const std::uint64_t ema = co_await t.load(slot, 8);
      co_await t.compute(30);  // filter update
      co_await t.store(slot, (ema * 7 + r.w[2]) / 8, 8);
    }
  }(*ch, m.thread_on(15), m));

  m.run();
  return {m.ns(m.now()) / 1000.0, m.mem().stats().snoops,
          m.mem().stats().mem_txns()};
}

}  // namespace

int main() {
  std::printf("sensor fusion: %d sensors x %d readings -> 1 fusion core\n\n",
              kSensors, kReadingsPerSensor);
  const RunOut blfq = run_app(squeue::Backend::kBlfq);
  const RunOut vl = run_app(squeue::Backend::kVl);

  std::printf("%-14s %12s %10s %10s\n", "backend", "time (us)", "snoops",
              "DRAM txns");
  std::printf("%-14s %12.1f %10llu %10llu\n", "BLFQ", blfq.us,
              static_cast<unsigned long long>(blfq.snoops),
              static_cast<unsigned long long>(blfq.dram));
  std::printf("%-14s %12.1f %10llu %10llu\n", "Virtual-Link", vl.us,
              static_cast<unsigned long long>(vl.snoops),
              static_cast<unsigned long long>(vl.dram));
  std::printf("\nVL speedup: %.2fx\n", blfq.us / vl.us);
  return 0;
}
