// Sensor fusion: the paper's motivating scenario — many fine-grained
// streaming producers feeding one fusion kernel, where per-message
// synchronization cost decides whether parallelization pays off at all.
//
// 12 simulated sensor threads each publish readings (timestamp, sensor id,
// value) as 3-word messages into one M:1 channel; a fusion thread on core
// 15 maintains a running filter per sensor. The same application runs over
// BLFQ and over Virtual-Link, and the example prints the end-to-end time
// and coherence traffic of both — a small-scale Fig. 11 you can read in
// two seconds.
//
// Channel API v2: sensors inject readings in small batches (send_many — on
// VL a whole run of lines goes out under one port transaction and one
// prodBuf acquisition) and the fusion kernel drains opportunistically with
// recv_many, the way a real DSP services its input FIFO.
//
//   $ ./examples/sensor_fusion

#include <cstdio>
#include <span>
#include <vector>

#include "squeue/factory.hpp"

using namespace vl;

namespace {

constexpr int kSensors = 12;
constexpr int kReadingsPerSensor = 150;

constexpr int kBatch = 5;  // readings coalesced per injection

struct RunOut {
  double us;
  std::uint64_t snoops;
  std::uint64_t dram;
  std::uint64_t value_sum;  ///< Sum of delivered reading values (self-check).
};

RunOut run_app(squeue::Backend backend) {
  runtime::Machine m(squeue::config_for(backend));
  squeue::ChannelFactory factory(m, backend);
  auto ch = factory.make("sensors", /*capacity_hint=*/4096, /*msg_words=*/3);

  // Sensors: cores 0..11, one reading every ~200 cycles of "sampling",
  // injected in batches of kBatch.
  for (int s = 0; s < kSensors; ++s) {
    sim::spawn([](squeue::Channel& ch, sim::SimThread t, int id) -> sim::Co<void> {
      std::vector<squeue::Msg> batch;
      for (int i = 0; i < kReadingsPerSensor; ++i) {
        co_await t.compute(200);  // sample + pre-process
        squeue::Msg reading;
        reading.n = 3;
        reading.w[0] = static_cast<std::uint64_t>(i);        // timestamp
        reading.w[1] = static_cast<std::uint64_t>(id);       // sensor
        reading.w[2] = static_cast<std::uint64_t>(id * 37 + i);  // value
        batch.push_back(reading);
        if (batch.size() == kBatch || i + 1 == kReadingsPerSensor) {
          co_await ch.send_many(t, batch);  // one amortized injection
          batch.clear();
        }
      }
    }(*ch, m.thread_on(static_cast<CoreId>(s)), s));
  }

  // Fusion kernel: exponential moving average per sensor, servicing its
  // input FIFO a drained run at a time.
  std::uint64_t value_sum = 0;
  sim::spawn([](squeue::Channel& ch, sim::SimThread t, runtime::Machine& m,
                std::uint64_t* sum) -> sim::Co<void> {
    const Addr state = m.alloc(kSensors * 8);
    std::vector<squeue::Msg> run(8);
    int remaining = kSensors * kReadingsPerSensor;
    while (remaining > 0) {
      const std::size_t got = co_await ch.recv_many(
          t, std::span<squeue::Msg>(run.data(), run.size()));
      for (std::size_t k = 0; k < got; ++k) {
        const squeue::Msg& r = run[k];
        const Addr slot = state + r.w[1] * 8;
        const std::uint64_t ema = co_await t.load(slot, 8);
        co_await t.compute(30);  // filter update
        co_await t.store(slot, (ema * 7 + r.w[2]) / 8, 8);
        *sum += r.w[2];
      }
      remaining -= static_cast<int>(got);
    }
  }(*ch, m.thread_on(15), m, &value_sum));

  m.run();
  return {m.ns(m.now()) / 1000.0, m.mem().stats().snoops,
          m.mem().stats().mem_txns(), value_sum};
}

}  // namespace

int main() {
  std::printf("sensor fusion: %d sensors x %d readings -> 1 fusion core "
              "(batch %d)\n\n",
              kSensors, kReadingsPerSensor, kBatch);
  const RunOut blfq = run_app(squeue::Backend::kBlfq);
  const RunOut vl = run_app(squeue::Backend::kVl);

  std::printf("%-14s %12s %10s %10s\n", "backend", "time (us)", "snoops",
              "DRAM txns");
  std::printf("%-14s %12.1f %10llu %10llu\n", "BLFQ", blfq.us,
              static_cast<unsigned long long>(blfq.snoops),
              static_cast<unsigned long long>(blfq.dram));
  std::printf("%-14s %12.1f %10llu %10llu\n", "Virtual-Link", vl.us,
              static_cast<unsigned long long>(vl.snoops),
              static_cast<unsigned long long>(vl.dram));
  std::printf("\nVL speedup: %.2fx\n", blfq.us / vl.us);

  // Self-check: every reading delivered exactly once on both backends.
  std::uint64_t expect = 0;
  for (int id = 0; id < kSensors; ++id)
    for (int i = 0; i < kReadingsPerSensor; ++i)
      expect += static_cast<std::uint64_t>(id * 37 + i);
  const bool ok = blfq.value_sum == expect && vl.value_sum == expect;
  std::printf("delivery checksum: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
