// Trace value-type coverage: CSV and binary round trips are lossless and
// byte-identical, the recorder merges per-producer streams into one
// deterministic order, TraceArrival reconstructs absolute recorded ticks,
// and malformed inputs throw instead of yielding garbage traces.

#include "replay/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

namespace vl::replay {
namespace {

Trace sample_trace() {
  Trace t;
  t.scenario = "qos-incast";
  t.backend = "VL64";
  t.seed = 42;
  t.producers = 2;
  t.tenants = 3;
  t.sharded = false;
  t.records = {
      {100, 0, 0, QosClass::kLatency, 1, 0},
      {100, 1, 1, QosClass::kBulk, 7, 3},
      {250, 0, 0, QosClass::kStandard, 3, 1},
      {900, 2, 1, QosClass::kLatency, 1, 2},
  };
  return t;
}

TEST(Trace, CsvRoundTripIsLossless) {
  const Trace t = sample_trace();
  const Trace back = Trace::parse_csv(t.csv());
  EXPECT_EQ(back.scenario, t.scenario);
  EXPECT_EQ(back.backend, t.backend);
  EXPECT_EQ(back.seed, t.seed);
  EXPECT_EQ(back.producers, t.producers);
  EXPECT_EQ(back.tenants, t.tenants);
  EXPECT_EQ(back.sharded, t.sharded);
  EXPECT_EQ(back.records, t.records);
  // Render -> parse -> render is byte-identical (CI diffs trace files).
  EXPECT_EQ(back.csv(), t.csv());
}

TEST(Trace, BinaryRoundTripIsLossless) {
  const Trace t = sample_trace();
  const Trace back = Trace::parse_binary(t.binary());
  EXPECT_EQ(back.records, t.records);
  EXPECT_EQ(back.binary(), t.binary());
  EXPECT_EQ(back.scenario, t.scenario);
}

TEST(Trace, MalformedInputsThrow) {
  EXPECT_THROW(Trace::parse_binary("nope"), std::invalid_argument);
  EXPECT_THROW(Trace::parse_binary(""), std::invalid_argument);
  // Truncated binary: chop the valid serialization mid-record.
  const std::string bin = sample_trace().binary();
  EXPECT_THROW(Trace::parse_binary(bin.substr(0, bin.size() - 3)),
               std::invalid_argument);
  EXPECT_THROW(Trace::load("/nonexistent/trace.csv"), std::invalid_argument);
}

TEST(Trace, SaveLoadPicksFormatByExtension) {
  const Trace t = sample_trace();
  const std::string csv_path = ::testing::TempDir() + "trace_rt.csv";
  const std::string bin_path = ::testing::TempDir() + "trace_rt.vltr";
  ASSERT_TRUE(t.save(csv_path));
  ASSERT_TRUE(t.save(bin_path));
  EXPECT_EQ(Trace::load(csv_path).records, t.records);
  EXPECT_EQ(Trace::load(bin_path).records, t.records);
  std::remove(csv_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(TraceRecorder, MergesStreamsInTickPidSeqOrder) {
  TraceRecorder rec;
  rec.begin("s", "VL64", 7, /*producers=*/3, /*tenants=*/1, false);
  // Appended out of producer order, as concurrent shards would.
  rec.on_send(/*pid=*/2, 0, QosClass::kStandard, 1, 0, /*tick=*/50);
  rec.on_send(/*pid=*/0, 0, QosClass::kStandard, 1, 0, /*tick=*/50);
  rec.on_send(/*pid=*/1, 0, QosClass::kStandard, 1, 0, /*tick=*/10);
  rec.on_send(/*pid=*/0, 0, QosClass::kStandard, 1, 0, /*tick=*/60);
  const Trace t = rec.finish();
  ASSERT_EQ(t.records.size(), 4u);
  EXPECT_EQ(t.records[0].tick, 10u);  // earliest tick first
  EXPECT_EQ(t.records[1].pid, 0u);    // tick tie broken by pid
  EXPECT_EQ(t.records[2].pid, 2u);
  EXPECT_EQ(t.records[3].tick, 60u);
  EXPECT_EQ(t.producers, 3u);
}

TEST(TraceArrival, ReconstructsAbsoluteRecordedTicks) {
  const Trace t = sample_trace();
  TraceArrival a(t, /*pid=*/0);  // records at ticks 100 and 250
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.next_gap(0), 100u);
  EXPECT_EQ(a.next_gap(40), 60u);
  EXPECT_EQ(a.next_gap(100), 0u);
  EXPECT_EQ(a.next_gap(500), 0u);  // backlogged: fire immediately
  EXPECT_EQ(a.record().cls, QosClass::kLatency);
  a.advance();
  EXPECT_EQ(a.record().tick, 250u);
  EXPECT_EQ(a.record().words, 3u);
  a.advance();
  EXPECT_TRUE(a.done());
  EXPECT_EQ(a.next_gap(0), 0u);
}

TEST(TraceArrival, FiltersByProducer) {
  const Trace t = sample_trace();
  TraceArrival a(t, /*pid=*/1);  // ticks 100 and 900
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.record().cls, QosClass::kBulk);
  a.advance();
  EXPECT_EQ(a.record().tick, 900u);
}

}  // namespace
}  // namespace vl::replay
