// Record/replay through the traffic engines: a recorded run replayed on
// the same cell reproduces per-tenant counts exactly (the trace is the
// post-shed stream) and the latency distribution tick-for-tick; replay is
// deterministic; re-recording a replay reproduces the trace; shape and
// engine-kind mismatches throw instead of replaying garbage.

#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/hooks.hpp"
#include "replay/trace.hpp"
#include "traffic/engine.hpp"
#include "traffic/sharded_engine.hpp"

namespace vl::traffic {
namespace {

using squeue::Backend;

/// Record `scenario` on `backend` and return (recorded result, trace).
struct Recorded {
  EngineResult result;
  replay::Trace trace;
};

Recorded record(const std::string& scenario, Backend b, std::uint64_t seed) {
  ScenarioSpec spec = *find_scenario(scenario);
  spec.supervisor = false;
  replay::TraceRecorder rec;
  obs::RunHooks hooks;
  hooks.recorder = &rec;
  EngineResult r = run_spec(spec, b, seed, /*scale=*/1, &hooks);
  return {std::move(r), rec.finish()};
}

EngineResult replay(const std::string& scenario, Backend b,
                    const replay::Trace& t, std::uint64_t seed) {
  ScenarioSpec spec = *find_scenario(scenario);
  spec.supervisor = false;
  spec.replay = &t;
  return run_spec(spec, b, seed);
}

TEST(ReplayEngine, ReproducesRecordedRunExactly) {
  for (Backend b : {Backend::kVl, Backend::kCaf}) {
    const Recorded rec = record("qos-incast", b, 42);
    ASSERT_FALSE(rec.trace.empty());
    EXPECT_EQ(rec.trace.records.size(),
              static_cast<std::size_t>(rec.result.metrics.total_delivered()));

    const EngineResult rep = replay("qos-incast", b, rec.trace, 42);
    ASSERT_EQ(rep.metrics.tenants.size(), rec.result.metrics.tenants.size());
    for (std::size_t i = 0; i < rep.metrics.tenants.size(); ++i) {
      const TenantMetrics& a = rec.result.metrics.tenants[i];
      const TenantMetrics& r = rep.metrics.tenants[i];
      EXPECT_EQ(r.delivered, a.delivered) << a.tenant;
      EXPECT_EQ(r.sent, a.sent) << a.tenant;
      // Same backend, same pacing: the latency distribution reproduces
      // tick-for-tick, far inside the headline 5% tolerance.
      EXPECT_EQ(r.latency.percentile(99), a.latency.percentile(99))
          << a.tenant;
    }
  }
}

TEST(ReplayEngine, ReplayIsDeterministic) {
  const Recorded rec = record("qos-incast", Backend::kVl, 7);
  const EngineResult a = replay("qos-incast", Backend::kVl, rec.trace, 7);
  const EngineResult b = replay("qos-incast", Backend::kVl, rec.trace, 7);
  EXPECT_EQ(a.csv(), b.csv());
}

TEST(ReplayEngine, ReRecordingAReplayReproducesTheTrace) {
  const Recorded rec = record("qos-incast", Backend::kVl, 42);
  ScenarioSpec spec = *find_scenario("qos-incast");
  spec.supervisor = false;
  spec.replay = &rec.trace;
  replay::TraceRecorder rerec;
  obs::RunHooks hooks;
  hooks.recorder = &rerec;
  (void)run_spec(spec, Backend::kVl, 42, 1, &hooks);
  EXPECT_EQ(rerec.finish().records, rec.trace.records);
}

TEST(ReplayEngine, ForeignBackendReplayConservesEveryRecord) {
  // The trace is the post-shed stream: replayed on a different backend,
  // every recorded copy must still be delivered (channels are lossless).
  const Recorded rec = record("qos-incast", Backend::kVl, 42);
  for (Backend b :
       {Backend::kBlfq, Backend::kZmq, Backend::kVlIdeal, Backend::kCaf}) {
    const EngineResult rep = replay("qos-incast", b, rec.trace, 42);
    EXPECT_EQ(rep.metrics.total_delivered(),
              static_cast<std::uint64_t>(rec.trace.records.size()))
        << squeue::to_string(b);
    for (const TenantMetrics& t : rep.metrics.tenants)
      EXPECT_EQ(t.dropped, 0u) << t.tenant;
  }
}

TEST(ReplayEngine, ShapeMismatchThrows) {
  const Recorded rec = record("qos-incast", Backend::kVl, 42);
  ScenarioSpec other = *find_scenario("incast-burst");  // different shape
  other.supervisor = false;
  other.replay = &rec.trace;
  EXPECT_THROW(run_spec(other, Backend::kVl, 42), std::invalid_argument);
}

TEST(ReplayEngine, EngineKindMismatchThrows) {
  replay::Trace t;
  t.scenario = "shard-diurnal";
  t.sharded = true;  // recorded by the sharded engine
  t.producers = 8;
  t.tenants = 3;
  ScenarioSpec spec = *find_scenario("qos-incast");
  spec.replay = &t;
  EXPECT_THROW(run_spec(spec, Backend::kVl, 42), std::invalid_argument);
}

TEST(ReplayEngine, ShardedRecordReplayRoundTrip) {
  ShardedOptions opts;
  opts.shards = 2;
  opts.population = 4000;
  opts.messages = 2048;
  replay::TraceRecorder rec;
  obs::RunHooks hooks;
  hooks.recorder = &rec;
  ShardedOptions ropts = opts;
  ropts.obs = &hooks;
  const ScenarioSpec spec = *find_scenario("shard-diurnal");
  const auto recorded = run_sharded(spec, Backend::kVl, 42, ropts);
  const replay::Trace trace = rec.finish();
  ASSERT_TRUE(trace.sharded);
  ASSERT_FALSE(trace.empty());

  ScenarioSpec rspec = spec;
  rspec.replay = &trace;
  const auto replayed = run_sharded(rspec, Backend::kVl, 42, opts);
  EXPECT_EQ(replayed.engine.metrics.total_delivered(),
            recorded.engine.metrics.total_delivered());

  // A classic-engine replay of a sharded trace must be rejected.
  ScenarioSpec classic = *find_scenario("qos-incast");
  classic.replay = &trace;
  EXPECT_THROW(run_spec(classic, Backend::kVl, 42), std::invalid_argument);
}

}  // namespace
}  // namespace vl::traffic
