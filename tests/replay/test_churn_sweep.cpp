// Satellite: the PR 6 landed-frame sweep under churn. A consumer leaving
// (releasing its demand lease) and rejoining mid-traffic must not strand
// frames that already landed past its poll cursor — sweep_landed() must
// recover every landed line, and messages in flight at the leave instant
// must reject back to the device and redeliver after the rejoin.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/vl_queue.hpp"
#include "traffic/engine.hpp"

namespace vl::runtime {
namespace {

using sim::Co;
using sim::spawn;

TEST(ChurnSweep, LeaveRecoversLandedFramesPastTheCursor) {
  // Arm 8 lines ahead, land 6 frames, consume only 2: lines 2..5 hold
  // landed frames past the cursor. On leave, the sweep must surface all
  // four — an in-order-only poll would strand them forever (no later
  // message refills the skipped lines at a traffic tail).
  Machine m;
  VlQueueLib lib(m);
  const auto q = lib.open("q");
  auto prod = lib.make_producer(q, m.thread_on(0));
  auto cons = lib.make_consumer(q, m.thread_on(5));
  std::vector<std::uint64_t> dequeued, swept;
  spawn([](Consumer& c, Producer& p, Machine& m,
           std::vector<std::uint64_t>* deq,
           std::vector<std::uint64_t>* swp) -> Co<void> {
    co_await c.arm_ahead(8);
    for (std::uint64_t i = 0; i < 6; ++i) co_await p.enqueue1(i);
    deq->push_back(co_await c.dequeue1());
    deq->push_back(co_await c.dequeue1());
    // Let every accepted line finish its device->endpoint injection, so
    // nothing is in flight when the lease drops.
    co_await sim::Delay(m.eq(), 5000);
    c.release_ahead();  // leave: drop the demand lease
    while (true) {
      auto f = co_await c.sweep_landed();
      if (!f) break;
      for (std::uint64_t v : f->elems) swp->push_back(v);
    }
  }(cons, prod, m, &dequeued, &swept));
  m.run();
  ASSERT_EQ(dequeued.size(), 2u);
  ASSERT_EQ(swept.size(), 4u) << "landed frames past the cursor stranded";
  std::vector<std::uint64_t> all = dequeued;
  all.insert(all.end(), swept.begin(), swept.end());
  std::sort(all.begin(), all.end());
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(all[i], i);
  EXPECT_EQ(m.vlrd().queued_data(q.sqi), 0u);
}

TEST(ChurnSweep, LeaveRejoinMidTrafficLosesNothing) {
  // A producer streams 32 messages while the consumer leaves mid-drain
  // (lease released, thread migrated) and rejoins on another core.
  // In-flight injections at the leave instant reject back to the device;
  // landed frames are swept; the rejoined consumer drains the rest —
  // exactly-once delivery of the full multiset.
  Machine m;
  VlQueueLib lib(m);
  const auto q = lib.open("q");
  auto prod = lib.make_producer(q, m.thread_on(0));
  auto cons = lib.make_consumer(q, m.thread_on(4));
  constexpr std::uint64_t kMsgs = 32;
  std::vector<std::uint64_t> got;
  spawn([](Producer& p) -> Co<void> {
    for (std::uint64_t i = 0; i < kMsgs; ++i) co_await p.enqueue1(i);
  }(prod));
  spawn([](Consumer& c, Machine& m, std::vector<std::uint64_t>* out)
            -> Co<void> {
    for (int i = 0; i < 8; ++i) out->push_back(co_await c.dequeue1());
    // Leave: drop the lease with traffic still in flight, move cores.
    c.release_ahead();
    c.migrate(m.thread_on(6));
    // Rejoin: first recover whatever already landed in our ring…
    while (true) {
      auto f = co_await c.sweep_landed();
      if (!f) break;
      for (std::uint64_t v : f->elems) out->push_back(v);
    }
    // …then drain the rest through fresh registrations.
    while (out->size() < kMsgs) out->push_back(co_await c.dequeue1());
  }(cons, m, &got));
  m.run();
  ASSERT_EQ(got.size(), kMsgs);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end())
      << "duplicate delivery";
  for (std::uint64_t i = 0; i < kMsgs; ++i) EXPECT_EQ(got[i], i);
  EXPECT_EQ(m.vlrd().queued_data(q.sqi), 0u) << "messages stranded on device";
}

TEST(ChurnSweep, EngineReconfigUnderLoadConservesOnVlBackends) {
  // The engine-level form: a wildcard SQI re-registration fires on every
  // channel mid-traffic (Channel::reconfigure -> Consumer::migrate, the
  // § III-B path) and must not lose or duplicate a single message.
  using squeue::Backend;
  for (Backend b : {Backend::kVl, Backend::kVlIdeal}) {
    traffic::ScenarioSpec spec = *traffic::find_scenario("qos-incast");
    spec.supervisor = false;
    spec.lifecycle = replay::LifecycleSpec::parse(
        "reconfig@20000;leave@30000:tenant=bulk;join@45000:tenant=bulk");
    const traffic::EngineResult r = traffic::run_spec(spec, b, 42);
    for (const traffic::TenantMetrics& t : r.metrics.tenants) {
      EXPECT_EQ(t.generated, t.delivered + t.dropped)
          << squeue::to_string(b) << "/" << t.tenant;
      EXPECT_EQ(t.sent, t.delivered) << squeue::to_string(b) << "/" << t.tenant;
    }
  }
}

}  // namespace
}  // namespace vl::runtime
