// Lifecycle plane: spec parse/summary round trips, the plane's pure
// (spec, now) queries, reconfig one-shot consumption, and engine-level
// churn — tenants leaving and rejoining mid-run keep the conservation
// identity generated == delivered + dropped exact on every backend, and
// churned runs stay deterministic.

#include "replay/lifecycle.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "traffic/engine.hpp"

namespace vl::replay {
namespace {

TEST(LifecycleSpec, ParseSummaryRoundTrip) {
  const char* text =
      "leave@30000:tenant=bulk;join@45000:tenant=bulk;reconfig@20000";
  const LifecycleSpec s = LifecycleSpec::parse(text);
  ASSERT_EQ(s.events.size(), 3u);
  EXPECT_EQ(s.events[0].kind, LifecycleEvent::Kind::kLeave);
  EXPECT_EQ(s.events[0].at, 30000u);
  EXPECT_EQ(s.events[0].tenant, "bulk");
  EXPECT_EQ(s.events[2].kind, LifecycleEvent::Kind::kReconfig);
  EXPECT_EQ(s.events[2].channel, -1);
  EXPECT_TRUE(s.has_churn());
  EXPECT_TRUE(s.has_reconfig());
  EXPECT_EQ(LifecycleSpec::parse(s.summary()).summary(), s.summary());
}

TEST(LifecycleSpec, ParseChannelScopedReconfig) {
  const LifecycleSpec s = LifecycleSpec::parse("reconfig@500:channel=2");
  ASSERT_EQ(s.events.size(), 1u);
  EXPECT_EQ(s.events[0].channel, 2);
  EXPECT_FALSE(s.has_churn());
}

TEST(LifecycleSpec, MalformedInputsThrow) {
  EXPECT_THROW(LifecycleSpec::parse("frobnicate@100"), std::invalid_argument);
  EXPECT_THROW(LifecycleSpec::parse("join@"), std::invalid_argument);
  EXPECT_THROW(LifecycleSpec::parse("join@100"), std::invalid_argument);
  EXPECT_THROW(LifecycleSpec::parse("leave@xyz:tenant=a"),
               std::invalid_argument);
}

TEST(LifecyclePlane, WindowsAndNextActive) {
  const LifecycleSpec s =
      LifecycleSpec::parse("leave@100:tenant=a;join@300:tenant=a");
  const LifecyclePlane p(s, {"a", "b"});
  // Tenant a: active, inactive over [100, 300), active again.
  EXPECT_EQ(p.next_active(0, 0), 0u);
  EXPECT_EQ(p.next_active(0, 100), 300u);
  EXPECT_EQ(p.next_active(0, 299), 300u);
  EXPECT_EQ(p.next_active(0, 300), 0u);
  EXPECT_TRUE(p.tenant_has_events(0));
  // Tenant b has no events: always active, skips the per-lap check.
  EXPECT_EQ(p.next_active(1, 12345), 0u);
  EXPECT_FALSE(p.tenant_has_events(1));
  // Active-tenant census around the boundaries.
  EXPECT_TRUE(p.tenant_active_at(0, 0));
  EXPECT_FALSE(p.tenant_active_at(0, 150));
  EXPECT_TRUE(p.tenant_active_at(0, 300));
  ASSERT_EQ(p.churn_boundaries().size(), 2u);
  EXPECT_EQ(p.churn_boundaries()[0], 100u);
  EXPECT_EQ(p.churn_boundaries()[1], 300u);
}

TEST(LifecyclePlane, FirstEventJoinStartsInactive) {
  const LifecycleSpec s = LifecycleSpec::parse("join@500:tenant=late");
  const LifecyclePlane p(s, {"late"});
  EXPECT_EQ(p.next_active(0, 0), 500u);
  EXPECT_EQ(p.next_active(0, 500), 0u);
}

TEST(LifecyclePlane, LeaveWithNoRejoinForfeitsForever) {
  const LifecycleSpec s = LifecycleSpec::parse("leave@100:tenant=a");
  const LifecyclePlane p(s, {"a"});
  EXPECT_EQ(p.next_active(0, 100), LifecyclePlane::kNever);
}

TEST(LifecyclePlane, ReconfigFiresOncePerChannel) {
  const LifecycleSpec s = LifecycleSpec::parse("reconfig@100");
  LifecyclePlane p(s, {"a"});
  EXPECT_FALSE(p.take_reconfig(0, 50));  // not due yet
  EXPECT_TRUE(p.take_reconfig(0, 100));
  EXPECT_FALSE(p.take_reconfig(0, 200));  // wildcard: once per channel
  EXPECT_TRUE(p.take_reconfig(1, 200));   // other channels still due
  EXPECT_FALSE(p.take_reconfig(1, 300));

  LifecyclePlane named(LifecycleSpec::parse("reconfig@100:channel=1"), {"a"});
  EXPECT_FALSE(named.take_reconfig(0, 200));  // wrong channel
  EXPECT_TRUE(named.take_reconfig(1, 200));
  EXPECT_FALSE(named.take_reconfig(1, 300));  // named event fires once
}

// --- engine-level churn ------------------------------------------------------

TEST(LifecycleEngine, ChurnConservesOnEveryBackend) {
  using squeue::Backend;
  for (Backend b : {Backend::kBlfq, Backend::kZmq, Backend::kVl,
                    Backend::kVlIdeal, Backend::kCaf}) {
    traffic::ScenarioSpec spec = *traffic::find_scenario("qos-incast");
    spec.supervisor = false;
    spec.lifecycle =
        LifecycleSpec::parse("leave@30000:tenant=bulk;join@45000:tenant=bulk");
    const traffic::EngineResult r = traffic::run_spec(spec, b, 42);
    for (const traffic::TenantMetrics& t : r.metrics.tenants) {
      EXPECT_EQ(t.generated, t.delivered + t.dropped)
          << squeue::to_string(b) << "/" << t.tenant;
      EXPECT_GT(t.delivered, 0u) << squeue::to_string(b) << "/" << t.tenant;
    }
  }
}

TEST(LifecycleEngine, ChurnedRunIsDeterministic) {
  traffic::ScenarioSpec spec = *traffic::find_scenario("qos-incast");
  spec.supervisor = false;
  spec.lifecycle =
      LifecycleSpec::parse("leave@30000:tenant=bulk;join@45000:tenant=bulk");
  const traffic::EngineResult a = traffic::run_spec(spec, squeue::Backend::kVl, 42);
  const traffic::EngineResult b = traffic::run_spec(spec, squeue::Backend::kVl, 42);
  EXPECT_EQ(a.csv(), b.csv());
}

TEST(LifecycleEngine, UnknownTenantThrows) {
  traffic::ScenarioSpec spec = *traffic::find_scenario("qos-incast");
  spec.lifecycle = LifecycleSpec::parse("leave@100:tenant=nosuch");
  EXPECT_THROW(traffic::run_spec(spec, squeue::Backend::kVl, 42),
               std::invalid_argument);
}

TEST(LifecycleEngine, ReconfigRejectedOffTheVlBackends) {
  traffic::ScenarioSpec spec = *traffic::find_scenario("qos-incast");
  spec.lifecycle = LifecycleSpec::parse("reconfig@20000");
  EXPECT_THROW(traffic::run_spec(spec, squeue::Backend::kZmq, 42),
               std::invalid_argument);
  EXPECT_THROW(traffic::run_spec(spec, squeue::Backend::kCaf, 42),
               std::invalid_argument);
}

}  // namespace
}  // namespace vl::replay
