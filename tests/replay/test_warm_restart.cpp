// Warm-restart drill: device-resident state survives quiesce -> snapshot
// -> serialize -> full Machine teardown -> rebuild -> restore with zero
// loss and zero duplication, the snapshot wire format round-trips and
// rejects malformed input, and the conservation digest is deterministic
// across reruns but tracks message content.

#include "replay/warm_restart.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace vl::replay {
namespace {

using squeue::Backend;

TEST(WarmRestart, ConservesOnEveryDeviceBackend) {
  for (Backend b : {Backend::kVl, Backend::kVlIdeal, Backend::kCaf}) {
    const WarmRestartReport r = run_warm_restart(b);
    EXPECT_TRUE(r.conserved()) << r.text();
    EXPECT_EQ(r.lost, 0u);
    EXPECT_EQ(r.duplicated, 0u);
    EXPECT_EQ(r.delivered_before + r.delivered_after, r.produced) << r.text();
    EXPECT_GT(r.resident, 0u)
        << "an empty snapshot proves nothing: " << r.text();
    EXPECT_EQ(r.delivered_after, r.resident)
        << "the rebuilt machine must drain exactly the snapshot";
    EXPECT_GT(r.snapshot_bytes, 0u);
  }
}

TEST(WarmRestart, ReportIsDeterministicAcrossReruns) {
  for (Backend b : {Backend::kVl, Backend::kCaf}) {
    const WarmRestartReport a = run_warm_restart(b, 9);
    const WarmRestartReport c = run_warm_restart(b, 9);
    EXPECT_EQ(a.text(), c.text()) << squeue::to_string(b);
  }
}

TEST(WarmRestart, DigestTracksMessageContent) {
  // Same shape, different seed -> different payloads -> different digest;
  // the digest is over the delivered multiset, not the run shape.
  const WarmRestartReport a = run_warm_restart(Backend::kVl, 1);
  const WarmRestartReport b = run_warm_restart(Backend::kVl, 2);
  EXPECT_NE(a.digest, b.digest);
  EXPECT_EQ(a.produced, b.produced);
}

TEST(WarmRestart, VlAndIdealDeliverTheSameMultiset) {
  // The drill injects the same values on both VLRD models; the
  // order-independent digest must agree even though timing differs.
  const WarmRestartReport real = run_warm_restart(Backend::kVl, 5);
  const WarmRestartReport ideal = run_warm_restart(Backend::kVlIdeal, 5);
  EXPECT_EQ(real.digest, ideal.digest);
}

TEST(WarmRestart, SoftwareBackendsAreRejected) {
  EXPECT_THROW(run_warm_restart(Backend::kBlfq), std::invalid_argument);
  EXPECT_THROW(run_warm_restart(Backend::kZmq), std::invalid_argument);
}

TEST(Snapshot, SerializeRoundTripsByteIdentically) {
  Snapshot s;
  s.backend = "VL64";
  s.vl_class_quota[0] = 8;
  s.vl_class_quota[2] = 48;
  s.vl_per_sqi_quota = 16;
  Snapshot::QueueState q;
  q.name = "wr0";
  q.vlrd_id = 0;
  q.sqi = 3;
  mem::Line line{};
  line[0] = 0xab;
  line[63] = 0xcd;
  q.lines.push_back(line);
  s.queues.push_back(q);
  Snapshot::QueueState cq;
  cq.name = "caf1";
  cq.sqi = 1;
  cq.words.emplace_back(0xdeadbeefULL, std::uint8_t{2});
  s.queues.push_back(cq);

  const std::string bytes = s.serialize();
  const Snapshot back = Snapshot::deserialize(bytes);
  EXPECT_EQ(back, s);
  EXPECT_EQ(back.serialize(), bytes);
}

TEST(Snapshot, MalformedInputThrows) {
  EXPECT_THROW(Snapshot::deserialize(""), std::invalid_argument);
  EXPECT_THROW(Snapshot::deserialize("XXXX"), std::invalid_argument);
  Snapshot s;
  s.backend = "CAF";
  const std::string bytes = s.serialize();
  EXPECT_THROW(Snapshot::deserialize(bytes.substr(0, bytes.size() - 1)),
               std::invalid_argument);
  EXPECT_THROW(Snapshot::deserialize(bytes + "x"), std::invalid_argument);
}

}  // namespace
}  // namespace vl::replay
