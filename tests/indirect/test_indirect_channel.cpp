// IndirectChannel integration tests: bulk payloads must arrive intact over
// every queue backend, regions must never be double-owned, and the
// channel-recycled pool must keep the free list off shared coherent state.

#include "indirect/indirect.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "squeue/factory.hpp"

namespace vl::indirect {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;
using squeue::Backend;
using squeue::ChannelFactory;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  std::uint8_t x = seed;
  for (auto& b : v) {
    x = static_cast<std::uint8_t>(x * 167 + 13);
    b = x;
  }
  return v;
}

TEST(Descriptor, MsgRoundTrip) {
  const Descriptor d{0x12345640, 1999};
  const Descriptor r = Descriptor::from_msg(d.to_msg());
  EXPECT_EQ(r.addr, d.addr);
  EXPECT_EQ(r.len, d.len);
}

TEST(IndirectChannel, SinglePayloadRoundTrip) {
  Machine m;
  ChannelFactory f(m, Backend::kBlfq);
  auto ch = f.make("bulk", 16, 2);
  RegionPool pool(m, 2048, 4);
  IndirectChannel ic(m, *ch, pool);
  const auto payload = pattern(1500, 7);  // an MTU-ish packet
  std::vector<std::uint8_t> got;
  spawn([](IndirectChannel& ic, SimThread t,
           const std::vector<std::uint8_t>* p) -> Co<void> {
    co_await ic.send_bytes(t, *p);
  }(ic, m.thread_on(0), &payload));
  spawn([](IndirectChannel& ic, SimThread t,
           std::vector<std::uint8_t>* out) -> Co<void> {
    *out = co_await ic.recv_bytes(t);
  }(ic, m.thread_on(1), &got));
  m.run();
  EXPECT_EQ(got, payload);
  EXPECT_EQ(pool.free_count(), 4u);  // region recycled
}

TEST(IndirectChannel, UnalignedLengthsArePreserved) {
  // Lengths that are not multiples of the line size must round-trip exactly
  // (the tail line is zero-padded on the wire but truncated on receive).
  Machine m;
  ChannelFactory f(m, Backend::kBlfq);
  auto ch = f.make("bulk", 16, 2);
  RegionPool pool(m, 1024, 4);
  IndirectChannel ic(m, *ch, pool);
  const std::vector<std::size_t> lens = {1, 63, 64, 65, 127, 128, 1000, 1024};
  std::vector<std::vector<std::uint8_t>> got;
  spawn([](IndirectChannel& ic, SimThread t,
           const std::vector<std::size_t>* lens) -> Co<void> {
    for (std::size_t i = 0; i < lens->size(); ++i)
      co_await ic.send_bytes(
          t, pattern((*lens)[i], static_cast<std::uint8_t>(i + 1)));
  }(ic, m.thread_on(0), &lens));
  spawn([](IndirectChannel& ic, SimThread t, std::size_t n,
           std::vector<std::vector<std::uint8_t>>* out) -> Co<void> {
    for (std::size_t i = 0; i < n; ++i)
      out->push_back(co_await ic.recv_bytes(t));
  }(ic, m.thread_on(1), lens.size(), &got));
  m.run();
  ASSERT_EQ(got.size(), lens.size());
  for (std::size_t i = 0; i < lens.size(); ++i) {
    EXPECT_EQ(got[i].size(), lens[i]) << "payload " << i;
    EXPECT_EQ(got[i], pattern(lens[i], static_cast<std::uint8_t>(i + 1)))
        << "payload " << i;
  }
}

TEST(IndirectChannel, ZeroCopyReceiveDefersRelease) {
  Machine m;
  ChannelFactory f(m, Backend::kBlfq);
  auto ch = f.make("bulk", 16, 2);
  RegionPool pool(m, 512, 2);
  IndirectChannel ic(m, *ch, pool);
  const auto payload = pattern(300, 3);
  std::vector<std::uint8_t> got;
  std::uint32_t free_while_held = 99;
  spawn([](IndirectChannel& ic, SimThread t,
           const std::vector<std::uint8_t>* p) -> Co<void> {
    co_await ic.send_bytes(t, *p);
  }(ic, m.thread_on(0), &payload));
  spawn([](IndirectChannel& ic, RegionPool& pool, SimThread t,
           std::vector<std::uint8_t>* out,
           std::uint32_t* free_held) -> Co<void> {
    const Descriptor d = co_await ic.recv_region(t);
    *free_held = pool.free_count();  // region still owned by us
    *out = co_await ic.read_region(t, d);
    co_await ic.release(t, d);
  }(ic, pool, m.thread_on(1), &got, &free_while_held));
  m.run();
  EXPECT_EQ(got, payload);
  EXPECT_EQ(free_while_held, 1u);   // one of two regions held
  EXPECT_EQ(pool.free_count(), 2u); // and returned afterwards
}

TEST(IndirectChannel, PoolBackPressureBoundsPayloadMemory) {
  // With a 2-region pool and a slow consumer, the producer must stall on
  // acquire: at most 2 payloads are ever in flight regardless of channel
  // capacity. This is § II's back-pressure requirement applied to bulk data.
  Machine m;
  ChannelFactory f(m, Backend::kBlfq);
  auto ch = f.make("bulk", 64, 2);
  RegionPool pool(m, kLineSize, 2);
  IndirectChannel ic(m, *ch, pool);
  std::uint64_t max_in_flight = 0;
  int received = 0;
  spawn([](IndirectChannel& ic, RegionPool& pool, SimThread t,
           std::uint64_t* max_if) -> Co<void> {
    const auto p = pattern(kLineSize, 1);
    for (int i = 0; i < 12; ++i) {
      co_await ic.send_bytes(t, p);
      *max_if = std::max<std::uint64_t>(*max_if, pool.capacity() -
                                                     pool.free_count());
    }
  }(ic, pool, m.thread_on(0), &max_in_flight));
  spawn([](IndirectChannel& ic, SimThread t, int* received) -> Co<void> {
    for (int i = 0; i < 12; ++i) {
      co_await t.compute(3000);  // slow consumer
      (void)co_await ic.recv_bytes(t);
      ++*received;
    }
  }(ic, m.thread_on(1), &received));
  m.run();
  EXPECT_EQ(received, 12);
  EXPECT_LE(max_in_flight, 2u);
  EXPECT_EQ(pool.free_count(), 2u);
}

// --- every backend moves bulk payloads --------------------------------------

class IndirectOverBackend : public ::testing::TestWithParam<Backend> {};

TEST_P(IndirectOverBackend, MnPayloadsExactlyOnce) {
  Machine m(squeue::config_for(GetParam()));
  ChannelFactory f(m, GetParam());
  auto ch = f.make("bulk", 32, 2);
  RegionPool pool(m, 1024, 8);
  IndirectChannel ic(m, *ch, pool);
  constexpr int kProducers = 2, kConsumers = 2, kEach = 6;
  std::vector<std::vector<std::uint8_t>> got;
  for (int p = 0; p < kProducers; ++p) {
    spawn([](IndirectChannel& ic, SimThread t, int base) -> Co<void> {
      for (int i = 0; i < kEach; ++i)
        co_await ic.send_bytes(
            t, pattern(900, static_cast<std::uint8_t>(base * kEach + i + 1)));
    }(ic, m.thread_on(static_cast<CoreId>(p)), p));
  }
  for (int c = 0; c < kConsumers; ++c) {
    spawn([](IndirectChannel& ic, SimThread t,
             std::vector<std::vector<std::uint8_t>>* out) -> Co<void> {
      for (int i = 0; i < kProducers * kEach / kConsumers; ++i)
        out->push_back(co_await ic.recv_bytes(t));
    }(ic, m.thread_on(static_cast<CoreId>(4 + c)), &got));
  }
  m.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kProducers * kEach));
  // Every sent pattern arrives exactly once (seed identifies the payload).
  std::vector<std::uint8_t> seeds;
  for (const auto& g : got) {
    ASSERT_EQ(g.size(), 900u);
    // Recover the seed: pattern() makes byte0 = seed*167+13.
    for (std::uint8_t s = 1; s <= kProducers * kEach; ++s)
      if (g == pattern(900, s)) seeds.push_back(s);
  }
  std::sort(seeds.begin(), seeds.end());
  ASSERT_EQ(seeds.size(), got.size());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  EXPECT_EQ(pool.free_count(), 8u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, IndirectOverBackend,
                         ::testing::Values(Backend::kBlfq, Backend::kZmq,
                                           Backend::kVl, Backend::kVlIdeal,
                                           Backend::kCaf),
                         [](const auto& info) {
                           // to_string(kVlIdeal) is "VL(ideal)", which is
                           // not a valid gtest name.
                           switch (info.param) {
                             case Backend::kBlfq: return "BLFQ";
                             case Backend::kZmq: return "ZMQ";
                             case Backend::kVl: return "VL";
                             case Backend::kVlIdeal: return "VLideal";
                             case Backend::kCaf: return "CAF";
                           }
                           return "unknown";
                         });

// --- ChannelRegionPool -------------------------------------------------------

TEST(ChannelRegionPool, RecyclesThroughChannel) {
  Machine m;
  ChannelFactory f(m, Backend::kBlfq);
  auto data_ch = f.make("data", 32, 2);
  auto free_ch = f.make("freelist", 32, 1);
  ChannelRegionPool pool(m, *free_ch, 512, 4);
  IndirectChannel ic(m, *data_ch, pool);
  const auto payload = pattern(500, 9);
  std::vector<std::uint8_t> got;
  spawn(pool.seed(m.thread_on(2)));
  spawn([](IndirectChannel& ic, SimThread t,
           const std::vector<std::uint8_t>* p) -> Co<void> {
    for (int i = 0; i < 6; ++i) co_await ic.send_bytes(t, *p);
  }(ic, m.thread_on(0), &payload));
  spawn([](IndirectChannel& ic, SimThread t,
           std::vector<std::uint8_t>* out) -> Co<void> {
    for (int i = 0; i < 6; ++i) *out = co_await ic.recv_bytes(t);
  }(ic, m.thread_on(1), &got));
  m.run();
  EXPECT_TRUE(pool.seeded());
  EXPECT_EQ(got, payload);
  EXPECT_EQ(pool.free_count(), 4u);
}

TEST(ChannelRegionPool, VlRecycledFreeListAvoidsSharedCas) {
  // The point of the channel-recycled pool: with a VL free list, the
  // recycle path itself touches zero shared coherent state, while every
  // Treiber acquire/release CASes the shared head word (plus the next-index
  // array). Exercise the pools *alone* — no payload traffic — so the
  // comparison isolates exactly the free-list synchronization cost instead
  // of region-reuse cache locality.
  auto run_with = [](bool treiber) {
    Machine m(squeue::config_for(Backend::kVl));
    ChannelFactory f(m, Backend::kVl);
    std::unique_ptr<squeue::Channel> free_ch;
    std::unique_ptr<PoolBase> pool;
    if (treiber) {
      pool = std::make_unique<RegionPool>(m, 512, 6);
    } else {
      free_ch = f.make("freelist", 32, 1);
      auto cp = std::make_unique<ChannelRegionPool>(m, *free_ch, 512, 6);
      spawn(cp->seed(m.thread_on(6)));
      pool = std::move(cp);
    }
    for (int p = 0; p < 2; ++p) {
      spawn([](PoolBase& pool, SimThread t) -> Co<void> {
        for (int i = 0; i < 24; ++i) {
          const Addr r = co_await pool.acquire(t);
          co_await t.compute(50);
          co_await pool.release(t, r);
        }
      }(*pool, m.thread_on(static_cast<CoreId>(p))));
    }
    m.run();
    return m.mem().stats().upgrades;
  };
  const auto treiber_upgrades = run_with(true);
  const auto channel_upgrades = run_with(false);
  EXPECT_LT(channel_upgrades, treiber_upgrades);
}

}  // namespace
}  // namespace vl::indirect
