// RegionPool unit + property tests: the Treiber-stack free list must hand
// out each region exactly once, survive concurrent acquire/release storms
// without ABA corruption, and apply back-pressure when drained.

#include "indirect/indirect.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace vl::indirect {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;

TEST(RegionPool, RegionGeometryRoundsUpToLines) {
  Machine m;
  RegionPool p(m, 100, 4);  // 100 B -> 2 lines
  EXPECT_EQ(p.region_bytes(), 2 * kLineSize);
  EXPECT_EQ(p.capacity(), 4u);
  EXPECT_EQ(p.free_count(), 4u);
}

TEST(RegionPool, RegionsAreLineAlignedAndDisjoint) {
  Machine m;
  RegionPool p(m, 3 * kLineSize, 8);
  std::set<Addr> seen;
  for (std::uint32_t i = 0; i < 8; ++i) {
    const Addr a = p.region_addr(i);
    EXPECT_EQ(a % kLineSize, 0u);
    EXPECT_EQ(p.index_of(a), i);
    seen.insert(a);
  }
  EXPECT_EQ(seen.size(), 8u);
  // Consecutive regions do not overlap.
  EXPECT_GE(p.region_addr(1) - p.region_addr(0), p.region_bytes());
}

TEST(RegionPool, AcquireDrainsThenTryAcquireFails) {
  Machine m;
  RegionPool p(m, kLineSize, 3);
  std::vector<Addr> got;
  bool exhausted_seen = false;
  spawn([](RegionPool& p, SimThread t, std::vector<Addr>* got,
           bool* exhausted) -> Co<void> {
    for (int i = 0; i < 3; ++i) got->push_back(co_await p.acquire(t));
    auto r = co_await p.try_acquire(t);
    *exhausted = !r.has_value();
  }(p, m.thread_on(0), &got, &exhausted_seen));
  m.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_TRUE(exhausted_seen);
  EXPECT_EQ(p.free_count(), 0u);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end());
}

TEST(RegionPool, ReleaseReturnsRegionToService) {
  Machine m;
  RegionPool p(m, kLineSize, 1);
  int cycles = 0;
  spawn([](RegionPool& p, SimThread t, int* cycles) -> Co<void> {
    for (int i = 0; i < 5; ++i) {
      const Addr a = co_await p.acquire(t);
      co_await p.release(t, a);
      ++*cycles;
    }
  }(p, m.thread_on(0), &cycles));
  m.run();
  EXPECT_EQ(cycles, 5);
  EXPECT_EQ(p.free_count(), 1u);
}

TEST(RegionPool, BlockingAcquireWaitsForRelease) {
  Machine m;
  RegionPool p(m, kLineSize, 1);
  Tick acquired_at = 0;
  spawn([](RegionPool& p, SimThread t, Tick* when) -> Co<void> {
    const Addr a = co_await p.acquire(t);
    co_await t.compute(5000);  // hold the only region for a long time
    co_await p.release(t, a);
    (void)when;
  }(p, m.thread_on(0), &acquired_at));
  spawn([](RegionPool& p, SimThread t, Tick* when) -> Co<void> {
    co_await t.compute(100);  // let the holder win the first acquire
    const Addr a = co_await p.acquire(t);
    *when = t.core->eq().now();
    co_await p.release(t, a);
  }(p, m.thread_on(1), &acquired_at));
  m.run();
  EXPECT_GE(acquired_at, 5000u);  // could not proceed until the release
}

TEST(RegionPool, LifoRecycling) {
  // A Treiber stack is LIFO: the most recently released region is the next
  // one handed out — good for cache locality (the paper's "keep data on the
  // fast path" argument applies to payload regions too).
  Machine m;
  RegionPool p(m, kLineSize, 4);
  Addr a = 0, b = 0;
  std::vector<Addr> again;
  spawn([](RegionPool& p, SimThread t, Addr* a, Addr* b,
           std::vector<Addr>* again) -> Co<void> {
    *a = co_await p.acquire(t);
    *b = co_await p.acquire(t);
    co_await p.release(t, *b);
    co_await p.release(t, *a);
    again->push_back(co_await p.acquire(t));
    again->push_back(co_await p.acquire(t));
  }(p, m.thread_on(0), &a, &b, &again));
  m.run();
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(again[0], a);  // released last, acquired first
  EXPECT_EQ(again[1], b);
}

// --- concurrency properties --------------------------------------------------

struct StormParam {
  int threads;
  std::uint32_t regions;
  int iters;
};

class RegionPoolStorm : public ::testing::TestWithParam<StormParam> {};

TEST_P(RegionPoolStorm, ExclusiveOwnershipUnderContention) {
  // Property: at no instant do two threads hold the same region. Each holder
  // writes its thread id into the region and re-reads it after a delay; any
  // double-allocation (ABA bug) would show as a torn owner word.
  const auto P = GetParam();
  Machine m;
  RegionPool pool(m, kLineSize, P.regions);
  int violations = 0;
  int total_holds = 0;
  for (int th = 0; th < P.threads; ++th) {
    spawn([](RegionPool& p, SimThread t, std::uint64_t self, int iters,
             int* violations, int* holds) -> Co<void> {
      for (int i = 0; i < iters; ++i) {
        const Addr r = co_await p.acquire(t);
        co_await t.store(r, self, 8);
        co_await t.compute(20 + (self * 7 + i) % 40);
        const std::uint64_t owner = co_await t.load(r, 8);
        if (owner != self) ++*violations;
        ++*holds;
        co_await p.release(t, r);
      }
    }(pool, m.thread_on(static_cast<CoreId>(th)), th + 1, P.iters,
      &violations, &total_holds));
  }
  m.run();
  EXPECT_EQ(violations, 0);
  EXPECT_EQ(total_holds, P.threads * P.iters);
  EXPECT_EQ(pool.free_count(), P.regions);  // no leaks
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, RegionPoolStorm,
    ::testing::Values(StormParam{2, 1, 20}, StormParam{4, 2, 15},
                      StormParam{4, 4, 15}, StormParam{8, 3, 10},
                      StormParam{8, 8, 12}, StormParam{12, 5, 8}),
    [](const auto& info) {
      return "t" + std::to_string(info.param.threads) + "_r" +
             std::to_string(info.param.regions) + "_i" +
             std::to_string(info.param.iters);
    });

TEST(RegionPool, FreeCountConservedAcrossStorm) {
  Machine m;
  RegionPool pool(m, 2 * kLineSize, 6);
  for (int th = 0; th < 6; ++th) {
    spawn([](RegionPool& p, SimThread t, int iters) -> Co<void> {
      for (int i = 0; i < 10; ++i) {
        const Addr r = co_await p.acquire(t);
        co_await t.compute(10);
        co_await p.release(t, r);
      }
      (void)iters;
    }(pool, m.thread_on(static_cast<CoreId>(th)), 10));
  }
  m.run();
  EXPECT_EQ(pool.free_count(), 6u);
}

TEST(RegionPool, CasTrafficShowsOnCoherenceCounters) {
  // The shared-freelist design touches one hot line from every thread; the
  // MESI model must see that as snoops/invalidations (this is the contrast
  // the ChannelRegionPool ablation measures).
  Machine m;
  RegionPool pool(m, kLineSize, 8);
  const auto before = m.mem().stats();
  for (int th = 0; th < 4; ++th) {
    spawn([](RegionPool& p, SimThread t) -> Co<void> {
      for (int i = 0; i < 8; ++i) {
        const Addr r = co_await p.acquire(t);
        co_await p.release(t, r);
      }
    }(pool, m.thread_on(static_cast<CoreId>(th))));
  }
  m.run();
  const auto after = m.mem().stats();
  EXPECT_GT(after.snoops, before.snoops);
  EXPECT_GT(after.invalidations, before.invalidations);
}

}  // namespace
}  // namespace vl::indirect
