// Chained-descriptor tests (VirtIO 1.1 chains): payloads spanning several
// regions must round-trip exactly, regions must recycle fully, and chains
// must honour pool back-pressure without deadlock.

#include "indirect/indirect.hpp"

#include <gtest/gtest.h>

#include "squeue/factory.hpp"

namespace vl::indirect {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;
using squeue::Backend;
using squeue::ChannelFactory;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  std::uint8_t x = seed;
  for (auto& b : v) {
    x = static_cast<std::uint8_t>(x * 167 + 13);
    b = x;
  }
  return v;
}

TEST(Chained, MaxChainedBytesReflectsPool) {
  Machine m;
  ChannelFactory f(m, Backend::kBlfq);
  auto ch = f.make("c", 16, 7);
  RegionPool pool(m, 1024, 16);
  IndirectChannel ic(m, *ch, pool);
  EXPECT_EQ(ic.max_chained_bytes(), 6u * 1024u);
}

TEST(Chained, MultiRegionPayloadRoundTrips) {
  Machine m;
  ChannelFactory f(m, Backend::kBlfq);
  auto ch = f.make("c", 16, 7);
  RegionPool pool(m, 512, 8);
  IndirectChannel ic(m, *ch, pool);
  const auto payload = pattern(512 * 2 + 300, 5);  // 2.6 regions -> chain of 3
  std::vector<std::uint8_t> got;
  spawn([](IndirectChannel& ic, SimThread t,
           const std::vector<std::uint8_t>* p) -> Co<void> {
    co_await ic.send_chained(t, *p);
  }(ic, m.thread_on(0), &payload));
  spawn([](IndirectChannel& ic, SimThread t,
           std::vector<std::uint8_t>* out) -> Co<void> {
    *out = co_await ic.recv_chained(t);
  }(ic, m.thread_on(1), &got));
  m.run();
  EXPECT_EQ(got, payload);
  EXPECT_EQ(pool.free_count(), 8u);  // whole chain recycled
}

TEST(Chained, SingleRegionChainStillWorks) {
  Machine m;
  ChannelFactory f(m, Backend::kBlfq);
  auto ch = f.make("c", 16, 7);
  RegionPool pool(m, 1024, 4);
  IndirectChannel ic(m, *ch, pool);
  const auto payload = pattern(100, 2);
  std::vector<std::uint8_t> got;
  spawn([](IndirectChannel& ic, SimThread t,
           const std::vector<std::uint8_t>* p) -> Co<void> {
    co_await ic.send_chained(t, *p);
  }(ic, m.thread_on(0), &payload));
  spawn([](IndirectChannel& ic, SimThread t,
           std::vector<std::uint8_t>* out) -> Co<void> {
    *out = co_await ic.recv_chained(t);
  }(ic, m.thread_on(1), &got));
  m.run();
  EXPECT_EQ(got, payload);
}

TEST(Chained, ExactRegionMultipleHasNoPartialTail) {
  Machine m;
  ChannelFactory f(m, Backend::kBlfq);
  auto ch = f.make("c", 16, 7);
  RegionPool pool(m, 256, 8);
  IndirectChannel ic(m, *ch, pool);
  const auto payload = pattern(256 * 4, 9);  // exactly 4 regions
  std::vector<std::uint8_t> got;
  spawn([](IndirectChannel& ic, SimThread t,
           const std::vector<std::uint8_t>* p) -> Co<void> {
    co_await ic.send_chained(t, *p);
  }(ic, m.thread_on(0), &payload));
  spawn([](IndirectChannel& ic, SimThread t,
           std::vector<std::uint8_t>* out) -> Co<void> {
    *out = co_await ic.recv_chained(t);
  }(ic, m.thread_on(1), &got));
  m.run();
  EXPECT_EQ(got, payload);
  EXPECT_EQ(pool.free_count(), 8u);
}

TEST(Chained, StreamOfChainsOverVl) {
  Machine m{squeue::config_for(Backend::kVl)};
  ChannelFactory f(m, Backend::kVl);
  auto ch = f.make("c", 16, 7);
  RegionPool pool(m, 512, 6);
  IndirectChannel ic(m, *ch, pool);
  constexpr int kMsgs = 8;
  std::vector<std::vector<std::uint8_t>> got;
  spawn([](IndirectChannel& ic, SimThread t) -> Co<void> {
    for (int i = 0; i < kMsgs; ++i)
      co_await ic.send_chained(
          t, pattern(700 + 300 * (i % 3), static_cast<std::uint8_t>(i + 1)));
  }(ic, m.thread_on(0)));
  spawn([](IndirectChannel& ic, SimThread t,
           std::vector<std::vector<std::uint8_t>>* out) -> Co<void> {
    for (int i = 0; i < kMsgs; ++i)
      out->push_back(co_await ic.recv_chained(t));
  }(ic, m.thread_on(1), &got));
  m.run();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kMsgs));
  for (int i = 0; i < kMsgs; ++i)
    EXPECT_EQ(got[i],
              pattern(700 + 300 * (i % 3), static_cast<std::uint8_t>(i + 1)))
        << "chain " << i;
  EXPECT_EQ(pool.free_count(), 6u);
}

TEST(Chained, BackPressureWithSmallPoolDoesNotDeadlock) {
  // Pool of 3 regions, chains of 2-3: the producer must wait for the
  // consumer's releases; with a FIFO 1:1 channel this cannot deadlock
  // because the consumer always drains the oldest chain first.
  Machine m;
  ChannelFactory f(m, Backend::kBlfq);
  auto ch = f.make("c", 16, 7);
  RegionPool pool(m, 128, 3);
  IndirectChannel ic(m, *ch, pool);
  int received = 0;
  spawn([](IndirectChannel& ic, SimThread t) -> Co<void> {
    for (int i = 0; i < 10; ++i)
      co_await ic.send_chained(
          t, pattern(128 * 2 + 17, static_cast<std::uint8_t>(i + 1)));
  }(ic, m.thread_on(0)));
  spawn([](IndirectChannel& ic, SimThread t, int* received) -> Co<void> {
    for (int i = 0; i < 10; ++i) {
      const auto v = co_await ic.recv_chained(t);
      EXPECT_EQ(v.size(), 128u * 2 + 17);
      ++*received;
    }
  }(ic, m.thread_on(1), &received));
  m.run();
  EXPECT_EQ(received, 10);
  EXPECT_EQ(pool.free_count(), 3u);
}

}  // namespace
}  // namespace vl::indirect
