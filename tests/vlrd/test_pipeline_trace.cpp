// Reproduction of paper Table I: the 3-stage address-mapping pipeline's
// cycle-by-cycle behaviour on the worked example.
//
// Scenario (colors from Fig. 7 / Table I):
//   consBuf[0] <- blue consumer request   (SQI "blue")
//   consBuf[1] <- orange consumer request (SQI "orange")
//   prodBuf[0] <- blue data
//   prodBuf[1] <- green data              (SQI "green", no consumer)
//   prodBuf[2] <- blue data
// All five packets are buffered before the pipeline starts (burst buffering,
// § III-A trade-off 1). Expected per-cycle behaviour, translated from
// Table I (the paper's example uses 1-based buffer indices; ours are
// 0-based):
//   cyc 1: S1 reads linkTab[blue]   for consBuf[0] -> prodHead=NULL
//   cyc 2: S1 reads linkTab[orange] for consBuf[1] -> prodHead=NULL
//          S2 miss for consBuf[0] (no blue data yet)
//   cyc 3: S1 reads linkTab[blue]   for prodBuf[0] -> consHead=0 *via RAW
//          forwarding from S3's same-cycle append of consBuf[0]*
//          S2 miss for consBuf[1]; S3 appends blue consumer
//   cyc 4: S1 reads linkTab[green]  for prodBuf[1] -> consHead=NULL
//          S2 HIT for prodBuf[0] (blue data matches waiting blue request)
//          S3 appends orange consumer
//   cyc 5: S1 reads linkTab[blue]   for prodBuf[2] -> consHead=NULL (the
//          blue request was consumed this same cycle - forwarded)
//          S2 miss for prodBuf[1] (no green request)
//          S3 maps prodBuf[0] -> OUT (POHR/POTR now track it)

#include <gtest/gtest.h>

#include <vector>

#include "mem/hierarchy.hpp"
#include "vlrd/vlrd.hpp"

namespace vl::vlrd {
namespace {

constexpr Sqi kBlue = 1, kOrange = 0, kGreen = 2;

class PipelineTraceTest : public ::testing::Test {
 protected:
  sim::EventQueue eq;
  sim::CacheConfig ccfg;
  mem::Hierarchy hier{eq, 2, ccfg};
  sim::VlrdConfig vcfg;
  std::vector<PipeTraceRow> rows;

  void run_scenario() {
    Vlrd dev(eq, hier, vcfg);
    dev.set_pipe_trace([this](const PipeTraceRow& r) { rows.push_back(r); });

    mem::Line blue{}, green{};
    blue.fill(0xb1);
    green.fill(0x91);

    // Consumer targets must be armed for the eventual injection.
    hier.select_line(1, 0x8000);
    hier.set_pushable(1, 0x8000, true);
    hier.select_line(1, 0x8040);
    hier.set_pushable(1, 0x8040, true);

    // Burst-buffer all packets before any pipeline cycle runs (all calls at
    // tick 0; the first cycle fires at tick 1).
    ASSERT_TRUE(dev.fetch(kBlue, 0x8000, 1));    // consBuf[0]
    ASSERT_TRUE(dev.fetch(kOrange, 0x8040, 1));  // consBuf[1]
    ASSERT_TRUE(dev.push(kBlue, blue));          // prodBuf[0]
    ASSERT_TRUE(dev.push(kGreen, green));        // prodBuf[1]
    ASSERT_TRUE(dev.push(kBlue, blue));          // prodBuf[2]

    eq.run();
    stats = dev.stats();
    blue_waiting = dev.queued_data(kBlue);
    green_waiting = dev.queued_data(kGreen);
    orange_reqs = dev.queued_requests(kOrange);
  }

  VlrdStats stats;
  std::uint32_t blue_waiting = 0, green_waiting = 0, orange_reqs = 0;
};

TEST_F(PipelineTraceTest, TableOneCycleByCycle) {
  run_scenario();
  ASSERT_GE(rows.size(), 5u);

  // Cycle 1: stage 1 latches consBuf[0] (blue); linkTab read gives NULL.
  EXPECT_TRUE(rows[0].s1_valid);
  EXPECT_TRUE(rows[0].s1_consumer);
  EXPECT_EQ(rows[0].s1_idx, 0);
  EXPECT_EQ(rows[0].s1_sqi, kBlue);
  EXPECT_EQ(rows[0].s1_head, kNil);  // prodHead = NULL
  EXPECT_EQ(rows[0].s1_tail, kNil);  // consTail = NULL
  EXPECT_FALSE(rows[0].s2_valid);
  EXPECT_FALSE(rows[0].s3_valid);

  // Cycle 2: stage 1 latches consBuf[1] (orange); stage 2 misses for blue.
  EXPECT_TRUE(rows[1].s1_valid);
  EXPECT_TRUE(rows[1].s1_consumer);
  EXPECT_EQ(rows[1].s1_idx, 1);
  EXPECT_EQ(rows[1].s1_sqi, kOrange);
  EXPECT_EQ(rows[1].s1_head, kNil);
  EXPECT_TRUE(rows[1].s2_valid);
  EXPECT_FALSE(rows[1].s2_hit);  // miss: no blue data yet

  // Cycle 3: stage 3 appends the blue request; stage 1 reads linkTab[blue]
  // for prodBuf[0] and must see consHead=0 via same-cycle RAW forwarding.
  EXPECT_TRUE(rows[2].s3_valid);
  EXPECT_TRUE(rows[2].s3_consumer);
  EXPECT_FALSE(rows[2].s3_hit);  // the append (miss) commits
  EXPECT_TRUE(rows[2].s1_valid);
  EXPECT_FALSE(rows[2].s1_consumer);
  EXPECT_EQ(rows[2].s1_idx, 0);    // prodBuf[0]
  EXPECT_EQ(rows[2].s1_sqi, kBlue);
  EXPECT_EQ(rows[2].s1_head, 0);   // RAW: consHead just written = consBuf[0]
  EXPECT_TRUE(rows[2].s2_valid);
  EXPECT_FALSE(rows[2].s2_hit);    // orange request misses

  // Cycle 4: stage 2 HIT for blue data against the waiting blue request;
  // stage 3 appends the orange request; stage 1 reads green -> NULL.
  EXPECT_TRUE(rows[3].s2_valid);
  EXPECT_TRUE(rows[3].s2_hit);
  EXPECT_TRUE(rows[3].s3_valid);
  EXPECT_TRUE(rows[3].s3_consumer);
  EXPECT_TRUE(rows[3].s1_valid);
  EXPECT_EQ(rows[3].s1_sqi, kGreen);
  EXPECT_EQ(rows[3].s1_head, kNil);  // no green consumer

  // Cycle 5: stage 3 commits the blue mapping (prodBuf[0] -> OUT); stage 1
  // reads linkTab[blue] for prodBuf[2] and sees consHead=NULL again
  // (forwarded: the request was consumed this cycle). Stage 2 misses for
  // green data.
  EXPECT_TRUE(rows[4].s3_valid);
  EXPECT_TRUE(rows[4].s3_hit);
  EXPECT_FALSE(rows[4].s3_consumer);  // producer entry retired the mapping
  EXPECT_EQ(rows[4].s3_idx, 0);       // prodBuf[0]
  EXPECT_TRUE(rows[4].s1_valid);
  EXPECT_EQ(rows[4].s1_sqi, kBlue);
  EXPECT_EQ(rows[4].s1_head, kNil);   // RAW-forwarded NULL
  EXPECT_TRUE(rows[4].s2_valid);
  EXPECT_FALSE(rows[4].s2_hit);       // green miss
}

TEST_F(PipelineTraceTest, EndStateMatchesTableOne) {
  run_scenario();
  // One blue message mapped+injected; the second blue datum waits (its
  // request was already consumed); green data waits with no consumer; the
  // orange request waits with no data.
  EXPECT_EQ(stats.matches, 1u);
  EXPECT_EQ(stats.inject_ok, 1u);
  EXPECT_EQ(blue_waiting, 1u);
  EXPECT_EQ(green_waiting, 1u);
  EXPECT_EQ(orange_reqs, 1u);
  EXPECT_EQ(hier.backing().read(0x8000, 1), 0xb1u);  // blue payload landed
}

TEST_F(PipelineTraceTest, TraceStringsMentionLinkTabReads) {
  run_scenario();
  EXPECT_NE(rows[0].stage1.find("prodHead,consTail"), std::string::npos);
  EXPECT_NE(rows[1].stage2.find("miss"), std::string::npos);
  EXPECT_NE(rows[3].stage2.find("hit"), std::string::npos);
}

}  // namespace
}  // namespace vl::vlrd
