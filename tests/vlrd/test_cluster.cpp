// Cluster (multi-VLRD) tests: address routing, device isolation, stat
// aggregation, and end-to-end VL channels spread across devices.

#include "vlrd/cluster.hpp"

#include <gtest/gtest.h>

#include "runtime/machine.hpp"
#include "runtime/vl_queue.hpp"
#include "squeue/vl_channel.hpp"

namespace vl::vlrd {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;

TEST(Cluster, SizeMatchesConfig) {
  Machine m(sim::SystemConfig::table3_multi(4));
  EXPECT_EQ(m.cluster().size(), 4u);
}

TEST(Cluster, SingleDeviceDefault) {
  Machine m;
  EXPECT_EQ(m.cluster().size(), 1u);
  EXPECT_EQ(&m.cluster().device(0), &m.vlrd());
}

TEST(Cluster, RouteDecodesVlrdIdBits) {
  Machine m(sim::SystemConfig::table3_multi(3));
  for (std::uint32_t id = 0; id < 3; ++id) {
    const Addr va = encode({id, /*sqi=*/5, /*page=*/0, /*slot64=*/1});
    EXPECT_EQ(&m.cluster().route(va), &m.cluster().device(id));
  }
}

TEST(Cluster, DevicesHaveIndependentBuffers) {
  // Filling device 0's prodBuf must not consume device 1's capacity: pushes
  // on device 1 still succeed after device 0 NACKs.
  sim::SystemConfig cfg = sim::SystemConfig::table3_multi(2);
  cfg.vlrd.prod_entries = 4;
  Machine m(cfg);
  mem::Line data{};
  for (int i = 0; i < 4; ++i)
    EXPECT_TRUE(m.cluster().device(0).push(0, data)) << i;
  EXPECT_FALSE(m.cluster().device(0).push(0, data));  // device 0 full
  EXPECT_TRUE(m.cluster().device(1).push(0, data));   // device 1 unaffected
  EXPECT_EQ(m.cluster().device(0).stats().push_nacks, 1u);
  EXPECT_EQ(m.cluster().device(1).stats().push_nacks, 0u);
}

TEST(Cluster, TotalStatsSumsDevices) {
  Machine m(sim::SystemConfig::table3_multi(2));
  mem::Line data{};
  m.cluster().device(0).push(1, data);
  m.cluster().device(0).push(1, data);
  m.cluster().device(1).push(1, data);
  const VlrdStats s = m.vlrd_stats();
  EXPECT_EQ(s.pushes, 3u);
}

TEST(Cluster, TotalStatsAggregatesQuotaNacks) {
  // Regression: total_stats() summed push_nacks but dropped the
  // push_quota_nacks breakdown, so cluster-wide QoS telemetry read zero.
  sim::SystemConfig cfg = sim::SystemConfig::table3_multi(2);
  cfg.vlrd.per_sqi_quota = 1;
  Machine m(cfg);
  mem::Line data{};
  for (std::uint32_t d = 0; d < 2; ++d) {
    EXPECT_TRUE(m.cluster().device(d).push(1, data));
    EXPECT_FALSE(m.cluster().device(d).push(1, data));  // over SQI quota
    EXPECT_EQ(m.cluster().device(d).stats().push_quota_nacks, 1u);
  }
  const VlrdStats s = m.vlrd_stats();
  EXPECT_EQ(s.push_quota_nacks, 2u);
}

TEST(Cluster, RejectsTooManyDevices) {
  sim::SystemConfig cfg;
  cfg.vlrd.num_devices = (1u << kVlrdIdBits) + 1;
#ifdef NDEBUG
  GTEST_SKIP() << "assert-based guard requires a debug build";
#else
  EXPECT_DEATH(Machine m(cfg), "device count");
#endif
}

TEST(ClusterIntegration, QueuesSpreadRoundRobinAcrossDevices) {
  Machine m(sim::SystemConfig::table3_multi(2));
  runtime::VlQueueLib lib(m);
  const auto a = lib.open("qa");
  const auto b = lib.open("qb");
  const auto c = lib.open("qc");
  EXPECT_EQ(a.vlrd_id, 0u);
  EXPECT_EQ(b.vlrd_id, 1u);
  EXPECT_EQ(c.vlrd_id, 0u);
  // Same name reopens the same queue on the same device.
  const auto a2 = lib.open("qa");
  EXPECT_EQ(a2.desc, a.desc);
}

TEST(ClusterIntegration, ChannelsOnDistinctDevicesDeliver) {
  // Two VL channels land on different routing devices; both must deliver
  // their messages exactly once, with traffic visible on the right device.
  Machine m(sim::SystemConfig::table3_multi(2));
  runtime::VlQueueLib lib(m);
  squeue::VlChannel ch0(lib, "dev0_q");
  squeue::VlChannel ch1(lib, "dev1_q");
  std::vector<std::uint64_t> got0, got1;
  spawn([](squeue::Channel& ch, SimThread t) -> Co<void> {
    for (std::uint64_t i = 0; i < 10; ++i) co_await ch.send1(t, 100 + i);
  }(ch0, m.thread_on(0)));
  spawn([](squeue::Channel& ch, SimThread t) -> Co<void> {
    for (std::uint64_t i = 0; i < 10; ++i) co_await ch.send1(t, 200 + i);
  }(ch1, m.thread_on(1)));
  spawn([](squeue::Channel& ch, SimThread t,
           std::vector<std::uint64_t>* out) -> Co<void> {
    for (int i = 0; i < 10; ++i) out->push_back(co_await ch.recv1(t));
  }(ch0, m.thread_on(2), &got0));
  spawn([](squeue::Channel& ch, SimThread t,
           std::vector<std::uint64_t>* out) -> Co<void> {
    for (int i = 0; i < 10; ++i) out->push_back(co_await ch.recv1(t));
  }(ch1, m.thread_on(3), &got1));
  m.run();
  ASSERT_EQ(got0.size(), 10u);
  ASSERT_EQ(got1.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(got0[i], 100u + i);  // 1:1 VL channels preserve FIFO order
    EXPECT_EQ(got1[i], 200u + i);
  }
  EXPECT_GE(m.cluster().device(0).stats().pushes, 10u);
  EXPECT_GE(m.cluster().device(1).stats().pushes, 10u);
}

TEST(ClusterIntegration, SameSqiOnDifferentDevicesIsolated) {
  // Descriptor (device 1, SQI 0) and (device 0, SQI 0) share the SQI number
  // but are distinct queues: a message pushed to one must never surface on
  // the other.
  Machine m(sim::SystemConfig::table3_multi(2));
  runtime::VlQueueLib lib(m);
  const auto qa = lib.open("qa");  // device 0, sqi 0
  const auto qb = lib.open("qb");  // device 1, sqi 0
  ASSERT_EQ(qa.sqi, qb.sqi);
  ASSERT_NE(qa.vlrd_id, qb.vlrd_id);
  squeue::VlChannel cha(lib, "qa");
  squeue::VlChannel chb(lib, "qb");
  std::uint64_t got = 0;
  spawn([](squeue::Channel& ch, SimThread t) -> Co<void> {
    co_await ch.send1(t, 777);
  }(cha, m.thread_on(0)));
  spawn([](squeue::Channel& ch, SimThread t, std::uint64_t* out) -> Co<void> {
    *out = co_await ch.recv1(t);
  }(cha, m.thread_on(1), &got));
  m.run();
  EXPECT_EQ(got, 777u);
  EXPECT_EQ(m.cluster().device(1).queued_data(qb.sqi), 0u);
  EXPECT_EQ(m.cluster().device(1).stats().pushes, 0u);
}

}  // namespace
}  // namespace vl::vlrd
