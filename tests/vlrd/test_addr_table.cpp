// AddrTable (§ III-C2 alternative addressing) tests: CAM behaviour, the
// compact-page supervisor path, end-to-end VL traffic under table routing,
// the +1-cycle cost, and the PA-window accounting both schemes trade.

#include "vlrd/addr_table.hpp"

#include <gtest/gtest.h>

#include "isa/vl_port.hpp"
#include "runtime/machine.hpp"
#include "runtime/vl_queue.hpp"
#include "squeue/vl_channel.hpp"

namespace vl::vlrd {
namespace {

using runtime::Machine;
using runtime::Prot;
using runtime::Supervisor;
using sim::Co;
using sim::SimThread;
using sim::spawn;

TEST(AddrTable, InsertLookupErase) {
  AddrTable t(4);
  EXPECT_TRUE(t.insert(0x1000, 0, 7));
  auto hit = t.lookup(0x1000);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->sqi, 7u);
  EXPECT_EQ(hit->vlrd_id, 0u);
  t.erase(0x1000);
  EXPECT_FALSE(t.lookup(0x1000).has_value());
}

TEST(AddrTable, MatchesAnySlotWithinThePage) {
  AddrTable t(4);
  t.insert(0x2000, 1, 3);
  for (Addr off : {Addr{0}, Addr{64}, Addr{640}, Addr{4032}}) {
    auto hit = t.lookup(0x2000 + off);
    ASSERT_TRUE(hit.has_value()) << off;
    EXPECT_EQ(hit->sqi, 3u);
    EXPECT_EQ(hit->vlrd_id, 1u);
  }
  EXPECT_FALSE(t.lookup(0x3000).has_value());  // next page: miss
}

TEST(AddrTable, CapacityBoundsCamRows) {
  AddrTable t(2);
  EXPECT_TRUE(t.insert(0x1000, 0, 0));
  EXPECT_TRUE(t.insert(0x2000, 0, 1));
  EXPECT_FALSE(t.insert(0x3000, 0, 2));  // CAM full
  EXPECT_EQ(t.size(), 2u);
  // Re-mapping an existing page is not a new row.
  EXPECT_TRUE(t.insert(0x1000, 0, 9));
  EXPECT_EQ(t.lookup(0x1000)->sqi, 9u);
}

TEST(AddrTable, WindowAccounting) {
  // The bit-field scheme reserves SQIs x pages x 4 KiB whether used or not;
  // the table scheme pays 4 KiB per mapped page. (The paper's example: 16
  // SQIs cost 67 MiB of PA space under bit-field addressing.)
  EXPECT_EQ(AddrTable::bitfield_window_bytes(),
            (Addr{1} << kSqiBits) * (Addr{1} << kPageBits) * 4096);
  EXPECT_EQ(AddrTable::table_window_bytes(3), Addr{3} * 4096);
  EXPECT_LT(AddrTable::table_window_bytes(64),
            AddrTable::bitfield_window_bytes());
}

sim::SystemConfig table_cfg() {
  sim::SystemConfig cfg;
  cfg.vlrd.addressing = sim::Addressing::kAddrTable;
  return cfg;
}

TEST(AddrTableSupervisor, CompactPagesAndCamRows) {
  Machine m(table_cfg());
  Supervisor sup;
  sup.attach_addr_table(&m.cluster().addr_table());
  const int q = sup.shm_open("q");
  const Addr p0 = *sup.vl_mmap(q, Prot::kWrite);
  const Addr p1 = *sup.vl_mmap(q, Prot::kRead);
  EXPECT_EQ(p0, kDeviceBase);          // compact bump allocation
  EXPECT_EQ(p1, kDeviceBase + 4096);
  EXPECT_EQ(m.cluster().addr_table().size(), 2u);
  EXPECT_EQ(sup.pa_window_bytes(), Addr{2} * 4096);
  sup.vl_munmap(p1);
  EXPECT_EQ(m.cluster().addr_table().size(), 1u);  // CAM row reclaimed
}

TEST(AddrTableSupervisor, MmapFailsWhenCamFull) {
  sim::SystemConfig cfg = table_cfg();
  cfg.vlrd.addr_table_capacity = 1;
  Machine m(cfg);
  Supervisor sup;
  sup.attach_addr_table(&m.cluster().addr_table());
  const int q = sup.shm_open("q");
  EXPECT_TRUE(sup.vl_mmap(q, Prot::kWrite).has_value());
  EXPECT_FALSE(sup.vl_mmap(q, Prot::kRead).has_value());  // CAM full
}

TEST(AddrTableSupervisor, BitFieldWindowIsFixed) {
  Supervisor sup(2);  // bit-field mode, two devices
  EXPECT_EQ(sup.pa_window_bytes(), 2 * AddrTable::bitfield_window_bytes());
}

TEST(AddrTableIntegration, VlChannelDeliversUnderTableRouting) {
  Machine m(table_cfg());
  runtime::VlQueueLib lib(m);
  squeue::VlChannel ch(lib, "tq");
  std::vector<std::uint64_t> got;
  spawn([](squeue::Channel& ch, SimThread t) -> Co<void> {
    for (std::uint64_t i = 0; i < 20; ++i) co_await ch.send1(t, i);
  }(ch, m.thread_on(0)));
  spawn([](squeue::Channel& ch, SimThread t,
           std::vector<std::uint64_t>* out) -> Co<void> {
    for (int i = 0; i < 20; ++i) out->push_back(co_await ch.recv1(t));
  }(ch, m.thread_on(1), &got));
  m.run();
  ASSERT_EQ(got.size(), 20u);
  for (std::uint64_t i = 0; i < 20; ++i) EXPECT_EQ(got[i], i);
}

TEST(AddrTableIntegration, UnmappedAddressFaults) {
  Machine m(table_cfg());
  int rc_push = -1, rc_fetch = -1;
  const Addr user_line = m.alloc(kLineSize);
  const Addr bogus = kDeviceBase + 77 * 4096;  // never mmapped
  spawn([](Machine& m, SimThread t, Addr line, Addr dev, int* rp,
           int* rf) -> Co<void> {
    isa::VlPort& port = m.vl_port(t.core->id());
    co_await port.vl_select(t.tid, line);
    *rp = co_await port.vl_push(t.tid, dev);
    co_await port.vl_select(t.tid, line);
    *rf = co_await port.vl_fetch(t.tid, dev);
  }(m, m.thread_on(0), user_line, bogus, &rc_push, &rc_fetch));
  m.run();
  EXPECT_EQ(rc_push, isa::kVlFault);
  EXPECT_EQ(rc_fetch, isa::kVlFault);
  EXPECT_EQ(m.vlrd().stats().pushes, 0u);  // never reached a device
}

TEST(AddrTableIntegration, TableRoutingCostsOneExtraCycle) {
  // Same 1:1 exchange under both schemes; the CAM path must be slower, and
  // by a bounded amount (≈ the configured extra cycles per op).
  auto run_one = [](sim::SystemConfig cfg) {
    Machine m(cfg);
    runtime::VlQueueLib lib(m);
    squeue::VlChannel ch(lib, "q");
    spawn([](squeue::Channel& ch, SimThread t) -> Co<void> {
      for (std::uint64_t i = 0; i < 50; ++i) co_await ch.send1(t, i);
    }(ch, m.thread_on(0)));
    spawn([](squeue::Channel& ch, SimThread t) -> Co<void> {
      for (int i = 0; i < 50; ++i) (void)co_await ch.recv1(t);
    }(ch, m.thread_on(1)));
    m.run();
    return m.now();
  };
  const Tick bitfield = run_one(sim::SystemConfig::table3());
  const Tick table = run_one(table_cfg());
  EXPECT_GT(table, bitfield);
  // 100 messages -> ~200 device ops; allow generous slack for second-order
  // scheduling shifts but insist the delta stays within a few cycles/op.
  EXPECT_LT(table, bitfield + 200 * 8);
}

TEST(AddrTableIntegration, MultiDeviceTableRouting) {
  sim::SystemConfig cfg = table_cfg();
  cfg.vlrd.num_devices = 2;
  Machine m(cfg);
  runtime::VlQueueLib lib(m);
  squeue::VlChannel ch0(lib, "q0");  // device 0
  squeue::VlChannel ch1(lib, "q1");  // device 1
  std::uint64_t a = 0, b = 0;
  spawn([](squeue::Channel& c0, squeue::Channel& c1, SimThread t) -> Co<void> {
    co_await c0.send1(t, 11);
    co_await c1.send1(t, 22);
  }(ch0, ch1, m.thread_on(0)));
  spawn([](squeue::Channel& c, SimThread t, std::uint64_t* out) -> Co<void> {
    *out = co_await c.recv1(t);
  }(ch0, m.thread_on(1), &a));
  spawn([](squeue::Channel& c, SimThread t, std::uint64_t* out) -> Co<void> {
    *out = co_await c.recv1(t);
  }(ch1, m.thread_on(2), &b));
  m.run();
  EXPECT_EQ(a, 11u);
  EXPECT_EQ(b, 22u);
  EXPECT_GE(m.cluster().device(0).stats().pushes, 1u);
  EXPECT_GE(m.cluster().device(1).stats().pushes, 1u);
}

// --- buffer-management ablation (§ III-A trade-off 2) ------------------------

TEST(BufferMgmt, BitvectorStillDeliversExactlyOnce) {
  sim::SystemConfig cfg;
  cfg.vlrd.buffer_mgmt = sim::BufferMgmt::kBitvector;
  Machine m(cfg);
  runtime::VlQueueLib lib(m);
  squeue::VlChannel ch(lib, "q");
  std::vector<std::uint64_t> got;
  for (int p = 0; p < 2; ++p) {
    spawn([](squeue::Channel& ch, SimThread t, int base) -> Co<void> {
      for (int i = 0; i < 15; ++i)
        co_await ch.send1(t, static_cast<std::uint64_t>(base * 100 + i));
    }(ch, m.thread_on(static_cast<CoreId>(p)), p));
  }
  spawn([](squeue::Channel& ch, SimThread t,
           std::vector<std::uint64_t>* out) -> Co<void> {
    for (int i = 0; i < 30; ++i) out->push_back(co_await ch.recv1(t));
  }(ch, m.thread_on(4), &got));
  m.run();
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got.size(), 30u);
  EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end());
}

TEST(BufferMgmt, ScanCostGrowsWithBufferSize) {
  // The § III-A rationale: per-step cost is flat for linked lists but grows
  // with the buffer for the bitvector scan. Measure the same workload on a
  // small and a large VLRD under both schemes.
  auto run_one = [](sim::BufferMgmt mgmt, std::uint32_t entries) {
    sim::SystemConfig cfg;
    cfg.vlrd.buffer_mgmt = mgmt;
    cfg.vlrd.prod_entries = entries;
    cfg.vlrd.cons_entries = entries;
    Machine m(cfg);
    runtime::VlQueueLib lib(m);
    squeue::VlChannel ch(lib, "q");
    spawn([](squeue::Channel& ch, SimThread t) -> Co<void> {
      for (std::uint64_t i = 0; i < 40; ++i) co_await ch.send1(t, i);
    }(ch, m.thread_on(0)));
    spawn([](squeue::Channel& ch, SimThread t) -> Co<void> {
      for (int i = 0; i < 40; ++i) (void)co_await ch.recv1(t);
    }(ch, m.thread_on(1)));
    m.run();
    return m.now();
  };
  const Tick ll_small = run_one(sim::BufferMgmt::kLinkedList, 64);
  const Tick ll_large = run_one(sim::BufferMgmt::kLinkedList, 1024);
  const Tick bv_small = run_one(sim::BufferMgmt::kBitvector, 64);
  const Tick bv_large = run_one(sim::BufferMgmt::kBitvector, 1024);
  // Linked lists: buffer size does not change per-step cost.
  EXPECT_EQ(ll_small, ll_large);
  // Bitvector: strictly slower than LL, and worse as the buffer grows.
  EXPECT_GT(bv_small, ll_small);
  EXPECT_GT(bv_large, bv_small);
}

}  // namespace
}  // namespace vl::vlrd
