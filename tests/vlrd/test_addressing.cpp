// Fig. 9 device-PA bit-field encoding tests.

#include "vlrd/addressing.hpp"

#include <gtest/gtest.h>

namespace vl::vlrd {
namespace {

TEST(Addressing, RoundTripAllFields) {
  DeviceAddr in{/*vlrd_id=*/3, /*sqi=*/42, /*page=*/17, /*slot64=*/63};
  const Addr a = encode(in);
  EXPECT_TRUE(is_device_addr(a));
  const DeviceAddr out = decode(a);
  EXPECT_EQ(out.vlrd_id, 3u);
  EXPECT_EQ(out.sqi, 42u);
  EXPECT_EQ(out.page, 17u);
  EXPECT_EQ(out.slot64, 63u);
}

TEST(Addressing, SqiLivesInBitsNTo18) {
  const Addr a = encode({0, 1, 0, 0});
  EXPECT_EQ((a >> 18) & 0x3f, 1u);
  const Addr b = encode({0, 63, 0, 0});
  EXPECT_EQ((b >> 18) & 0x3f, 63u);
}

TEST(Addressing, PageInBits17To12) {
  const Addr a = encode({0, 0, 31, 0});
  EXPECT_EQ((a >> 12) & 0x3f, 31u);
}

TEST(Addressing, EndpointsAre64ByteAligned) {
  for (std::uint32_t slot = 0; slot < 64; ++slot) {
    const Addr a = encode({0, 5, 2, slot});
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(decode(a).slot64, slot);
  }
}

TEST(Addressing, DistinctEndpointsDistinctAddresses) {
  const Addr a = encode({0, 1, 0, 0});
  const Addr b = encode({0, 1, 0, 1});
  const Addr c = encode({0, 1, 1, 0});
  const Addr d = encode({0, 2, 0, 0});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_EQ(b - a, 64u);
}

TEST(Addressing, CacheableAddressesAreNotDevice) {
  EXPECT_FALSE(is_device_addr(0x1000'0000));
  EXPECT_FALSE(is_device_addr(0x0));
  EXPECT_TRUE(is_device_addr(kDeviceBase));
}

}  // namespace
}  // namespace vl::vlrd
