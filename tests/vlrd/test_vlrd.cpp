// Functional tests of the routing device: matching, ordering, back-pressure,
// rejection/retry, and the VL(ideal) reference model.

#include "vlrd/vlrd.hpp"

#include <gtest/gtest.h>

#include "mem/hierarchy.hpp"
#include "sim/core.hpp"

namespace vl::vlrd {
namespace {

mem::Line make_line(std::uint8_t fill) {
  mem::Line l{};
  l.fill(fill);
  return l;
}

struct VlrdFixture : ::testing::Test {
  sim::EventQueue eq;
  sim::CacheConfig ccfg;
  mem::Hierarchy hier{eq, 4, ccfg};
  sim::VlrdConfig vcfg;

  /// Prepare a consumer line: resident in `core`'s L1 with pushable set
  /// (what vl_select + vl_fetch do on the core side).
  void arm_consumer_line(CoreId core, Addr line) {
    hier.select_line(core, line);
    ASSERT_TRUE(hier.set_pushable(core, line, true));
  }
};

TEST_F(VlrdFixture, DataThenRequestMatches) {
  Vlrd dev(eq, hier, vcfg);
  ASSERT_TRUE(dev.push(/*sqi=*/1, make_line(0xaa)));
  eq.run();  // pipeline appends the data to SQI 1's list
  EXPECT_EQ(dev.queued_data(1), 1u);

  arm_consumer_line(2, 0x8000);
  ASSERT_TRUE(dev.fetch(1, 0x8000, 2));
  eq.run();
  EXPECT_EQ(dev.stats().matches, 1u);
  EXPECT_EQ(dev.stats().inject_ok, 1u);
  EXPECT_EQ(dev.queued_data(1), 0u);
  EXPECT_EQ(hier.backing().read(0x8000, 1), 0xaau);
  EXPECT_EQ(hier.l1_state(2, 0x8000), mem::Mesi::kExclusive);
}

TEST_F(VlrdFixture, RequestThenDataMatches) {
  Vlrd dev(eq, hier, vcfg);
  arm_consumer_line(3, 0x9000);
  ASSERT_TRUE(dev.fetch(5, 0x9000, 3));
  eq.run();
  EXPECT_EQ(dev.queued_requests(5), 1u);

  ASSERT_TRUE(dev.push(5, make_line(0xbb)));
  eq.run();
  EXPECT_EQ(dev.stats().inject_ok, 1u);
  EXPECT_EQ(hier.backing().read(0x9000, 1), 0xbbu);
}

TEST_F(VlrdFixture, FifoOrderPreservedPerSqi) {
  Vlrd dev(eq, hier, vcfg);
  for (std::uint8_t i = 1; i <= 5; ++i) ASSERT_TRUE(dev.push(7, make_line(i)));
  eq.run();
  EXPECT_EQ(dev.queued_data(7), 5u);

  for (std::uint8_t i = 1; i <= 5; ++i) {
    const Addr tgt = 0xa000 + static_cast<Addr>(i - 1) * kLineSize;
    arm_consumer_line(1, tgt);
    ASSERT_TRUE(dev.fetch(7, tgt, 1));
    eq.run();
    EXPECT_EQ(hier.backing().read(tgt, 1), i) << "message " << int(i);
  }
}

TEST_F(VlrdFixture, SqisAreIsolated) {
  Vlrd dev(eq, hier, vcfg);
  ASSERT_TRUE(dev.push(1, make_line(0x11)));
  ASSERT_TRUE(dev.push(2, make_line(0x22)));
  eq.run();

  arm_consumer_line(0, 0xb000);
  ASSERT_TRUE(dev.fetch(2, 0xb000, 0));  // ask SQI 2, must get 0x22
  eq.run();
  EXPECT_EQ(hier.backing().read(0xb000, 1), 0x22u);
  EXPECT_EQ(dev.queued_data(1), 1u);  // SQI 1 untouched
}

TEST_F(VlrdFixture, PushNacksWhenProdBufFull) {
  vcfg.prod_entries = 4;
  Vlrd dev(eq, hier, vcfg);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(dev.push(1, make_line(1)));
  eq.run();  // all four now parked in the LINK list, slots still occupied
  EXPECT_FALSE(dev.push(1, make_line(2)));  // back-pressure
  EXPECT_EQ(dev.stats().push_nacks, 1u);

  // Draining one message frees a slot again.
  arm_consumer_line(1, 0xc000);
  ASSERT_TRUE(dev.fetch(1, 0xc000, 1));
  eq.run();
  EXPECT_TRUE(dev.push(1, make_line(3)));
}

TEST_F(VlrdFixture, FetchNacksWhenConsBufFull) {
  vcfg.cons_entries = 2;
  Vlrd dev(eq, hier, vcfg);
  arm_consumer_line(0, 0xd000);
  arm_consumer_line(0, 0xd040);
  arm_consumer_line(0, 0xd080);
  ASSERT_TRUE(dev.fetch(1, 0xd000, 0));
  ASSERT_TRUE(dev.fetch(1, 0xd040, 0));
  eq.run();
  EXPECT_FALSE(dev.fetch(1, 0xd080, 0));
  EXPECT_EQ(dev.stats().fetch_nacks, 1u);
}

TEST_F(VlrdFixture, FetchReissueIsIdempotent) {
  Vlrd dev(eq, hier, vcfg);
  arm_consumer_line(0, 0xe000);
  ASSERT_TRUE(dev.fetch(3, 0xe000, 0));
  eq.run();
  EXPECT_EQ(dev.queued_requests(3), 1u);
  // Same target re-issued (consumer recovery path): no duplicate entry.
  ASSERT_TRUE(dev.fetch(3, 0xe000, 0));
  eq.run();
  EXPECT_EQ(dev.queued_requests(3), 1u);
}

TEST_F(VlrdFixture, RejectedInjectionKeepsDataAndRedelivers) {
  Vlrd dev(eq, hier, vcfg);
  // Consumer registered demand but its pushable bit was cleared before the
  // stash landed (context switch): injection must be rejected and the data
  // retained by the VLRD.
  arm_consumer_line(2, 0xf000);
  ASSERT_TRUE(dev.fetch(4, 0xf000, 2));
  eq.run();
  hier.clear_pushable(2);  // context switch on core 2

  ASSERT_TRUE(dev.push(4, make_line(0x77)));
  eq.run();
  EXPECT_EQ(dev.stats().inject_retry, 1u);
  EXPECT_EQ(dev.stats().inject_ok, 0u);
  EXPECT_EQ(dev.queued_data(4), 1u);  // data stays with the VLRD
  EXPECT_EQ(hier.backing().read(0xf000, 1), 0u);

  // Consumer is rescheduled and re-issues the request (§ III-B).
  arm_consumer_line(2, 0xf000);
  ASSERT_TRUE(dev.fetch(4, 0xf000, 2));
  eq.run();
  EXPECT_EQ(dev.stats().inject_ok, 1u);
  EXPECT_EQ(hier.backing().read(0xf000, 1), 0x77u);
}

TEST_F(VlrdFixture, BuffersSharedAcrossSqis) {
  vcfg.prod_entries = 8;
  Vlrd dev(eq, hier, vcfg);
  // Interleave pushes on 4 SQIs; the shared buffer holds them all.
  for (int round = 0; round < 2; ++round)
    for (Sqi s = 0; s < 4; ++s)
      ASSERT_TRUE(dev.push(s, make_line(static_cast<std::uint8_t>(s * 16 + round))));
  eq.run();
  for (Sqi s = 0; s < 4; ++s) EXPECT_EQ(dev.queued_data(s), 2u);
  EXPECT_EQ(dev.prod_free_slots(), 0u);
}

TEST_F(VlrdFixture, ManyToOneIncastPattern) {
  Vlrd dev(eq, hier, vcfg);
  // 15 producers push to one SQI; one consumer drains 15 messages.
  for (int p = 0; p < 15; ++p)
    ASSERT_TRUE(dev.push(9, make_line(static_cast<std::uint8_t>(p + 1))));
  eq.run();
  std::uint64_t sum = 0;
  for (int i = 0; i < 15; ++i) {
    const Addr tgt = 0x20000 + static_cast<Addr>(i) * kLineSize;
    arm_consumer_line(0, tgt);
    ASSERT_TRUE(dev.fetch(9, tgt, 0));
    eq.run();
    sum += hier.backing().read(tgt, 1);
  }
  EXPECT_EQ(sum, 15u * 16u / 2u);
  EXPECT_EQ(dev.stats().inject_ok, 15u);
}

TEST_F(VlrdFixture, IdealModeNeverNacks) {
  auto icfg = sim::SystemConfig::table3_ideal();
  Vlrd dev(eq, hier, icfg.vlrd);
  for (int i = 0; i < 10000; ++i) ASSERT_TRUE(dev.push(1, make_line(1)));
  EXPECT_EQ(dev.stats().push_nacks, 0u);
  EXPECT_EQ(dev.queued_data(1), 10000u);
}

TEST_F(VlrdFixture, IdealModeDeliversInOrder) {
  auto icfg = sim::SystemConfig::table3_ideal();
  Vlrd dev(eq, hier, icfg.vlrd);
  for (std::uint8_t i = 1; i <= 3; ++i) dev.push(2, make_line(i));
  for (std::uint8_t i = 1; i <= 3; ++i) {
    const Addr tgt = 0x30000 + static_cast<Addr>(i) * kLineSize;
    arm_consumer_line(1, tgt);
    dev.fetch(2, tgt, 1);
    eq.run();
    EXPECT_EQ(hier.backing().read(tgt, 1), i);
  }
}

TEST_F(VlrdFixture, FreeSlotSearchRotates) {
  vcfg.prod_entries = 4;
  Vlrd dev(eq, hier, vcfg);
  // Fill, drain one, refill: the freed slot must be found again (PIFR wraps).
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(dev.push(1, make_line(1)));
  eq.run();
  arm_consumer_line(0, 0x40000);
  ASSERT_TRUE(dev.fetch(1, 0x40000, 0));
  eq.run();
  ASSERT_TRUE(dev.push(1, make_line(2)));
  eq.run();
  EXPECT_FALSE(dev.push(1, make_line(3)));
}

TEST_F(VlrdFixture, CoupledIoBouncesBursts) {
  // § III-A trade-off 1: without the decoupling IN partitions the device
  // accepts one packet per cycle — a back-to-back burst gets NACKed while
  // the mapping pipeline is busy with the first packet.
  vcfg.coupled_io = true;
  Vlrd dev(eq, hier, vcfg);
  ASSERT_TRUE(dev.push(1, make_line(1)));   // accepted: pipeline idle
  EXPECT_FALSE(dev.push(1, make_line(2)));  // same-burst arrival: bounced
  EXPECT_EQ(dev.stats().push_nacks, 1u);
  eq.run();  // pipeline drains the first packet
  EXPECT_TRUE(dev.push(1, make_line(3)));   // accepted again
}

TEST_F(VlrdFixture, DecoupledIoAbsorbsBursts) {
  // Default (paper) design: the same burst is buffered, no NACKs.
  Vlrd dev(eq, hier, vcfg);
  ASSERT_TRUE(dev.push(1, make_line(1)));
  ASSERT_TRUE(dev.push(1, make_line(2)));
  ASSERT_TRUE(dev.push(1, make_line(3)));
  EXPECT_EQ(dev.stats().push_nacks, 0u);
  eq.run();
  EXPECT_EQ(dev.queued_data(1), 3u);
}

TEST_F(VlrdFixture, CoupledIoBouncesFetchBursts) {
  vcfg.coupled_io = true;
  Vlrd dev(eq, hier, vcfg);
  arm_consumer_line(0, 0x50000);
  arm_consumer_line(1, 0x51000);
  ASSERT_TRUE(dev.fetch(1, 0x50000, 0));
  EXPECT_FALSE(dev.fetch(1, 0x51000, 1));
  EXPECT_EQ(dev.stats().fetch_nacks, 1u);
  eq.run();
  EXPECT_TRUE(dev.fetch(1, 0x51000, 1));
}

TEST_F(VlrdFixture, PerSqiQuotaBoundsAHogQueue) {
  // § V CAF contrast: with a quota, a hog SQI cannot monopolize prodBuf —
  // it NACKs at its credit limit while another SQI still gets slots.
  vcfg.per_sqi_quota = 3;
  vcfg.prod_entries = 8;
  Vlrd dev(eq, hier, vcfg);
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(dev.push(/*sqi=*/1, make_line(1))) << i;
  EXPECT_FALSE(dev.push(1, make_line(1)));  // hog at quota
  EXPECT_TRUE(dev.push(2, make_line(2)));   // victim unaffected
  EXPECT_EQ(dev.stats().push_nacks, 1u);
}

TEST_F(VlrdFixture, QuotaCreditReturnsOnDelivery) {
  vcfg.per_sqi_quota = 1;
  Vlrd dev(eq, hier, vcfg);
  ASSERT_TRUE(dev.push(1, make_line(0x11)));
  EXPECT_FALSE(dev.push(1, make_line(0x22)));  // credit exhausted
  arm_consumer_line(0, 0x60000);
  ASSERT_TRUE(dev.fetch(1, 0x60000, 0));
  eq.run();  // match + inject returns the credit
  EXPECT_EQ(hier.backing().read(0x60000, 1), 0x11u);
  EXPECT_TRUE(dev.push(1, make_line(0x22)));  // credit back
}

TEST_F(VlrdFixture, SharedBufferLetsHogStarveVictim) {
  // The paper's shared design (quota = 0): the hog can take every slot.
  vcfg.prod_entries = 4;
  Vlrd dev(eq, hier, vcfg);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(dev.push(1, make_line(1)));
  EXPECT_FALSE(dev.push(2, make_line(2)));  // victim NACKed too
}

/// A line whose Fig. 10 control byte tags it with a service class.
mem::Line classed_line(QosClass cls, std::uint8_t fill = 0x5a) {
  mem::Line l{};
  l.fill(fill);
  l[kLineCtrlOffset] = static_cast<std::uint8_t>(cls);
  return l;
}

TEST_F(VlrdFixture, ClassQuotaBoundsBulkWithinAnSqi) {
  // QoS partitioning inside one SQI: bulk is NACKed at its class quota
  // while latency traffic on the *same* SQI keeps enqueueing, and the NACK
  // reports as a quota (park-per-SQI) rather than a full buffer.
  vcfg.class_quota[static_cast<std::size_t>(QosClass::kBulk)] = 2;
  Vlrd dev(eq, hier, vcfg);
  ASSERT_TRUE(dev.push(1, classed_line(QosClass::kBulk)));
  ASSERT_TRUE(dev.push(1, classed_line(QosClass::kBulk)));
  eq.run();
  EXPECT_FALSE(dev.push(1, classed_line(QosClass::kBulk)));
  EXPECT_EQ(dev.last_push_nack(), Vlrd::PushNack::kQuota);
  EXPECT_EQ(dev.stats().push_quota_nacks, 1u);
  EXPECT_TRUE(dev.push(1, classed_line(QosClass::kLatency)));
  eq.run();
  EXPECT_EQ(dev.queued_data(1), 3u);

  // Delivery returns the *bulk* class credit.
  arm_consumer_line(0, 0x70000);
  ASSERT_TRUE(dev.fetch(1, 0x70000, 0));
  eq.run();
  EXPECT_TRUE(dev.push(1, classed_line(QosClass::kBulk)));
}

TEST_F(VlrdFixture, FullBufferReportsFullNotQuota) {
  vcfg.prod_entries = 2;
  Vlrd dev(eq, hier, vcfg);
  ASSERT_TRUE(dev.push(1, classed_line(QosClass::kBulk)));
  ASSERT_TRUE(dev.push(1, classed_line(QosClass::kBulk)));
  EXPECT_FALSE(dev.push(2, classed_line(QosClass::kLatency)));
  EXPECT_EQ(dev.last_push_nack(), Vlrd::PushNack::kFull);
}

TEST_F(VlrdFixture, PushRetryCallbackNamesTheFreedSqi) {
  // The counted-wake contract: an injection reports which SQI freed quota
  // so the runtime wakes that SQI's parked producers plus one
  // buffer-space waiter, not the whole herd.
  Vlrd dev(eq, hier, vcfg);
  std::vector<Sqi> freed;
  dev.set_push_retry_callback([&](std::optional<Sqi> s) {
    ASSERT_TRUE(s.has_value());
    freed.push_back(*s);
  });
  ASSERT_TRUE(dev.push(3, make_line(0x33)));
  arm_consumer_line(0, 0x71000);
  ASSERT_TRUE(dev.fetch(3, 0x71000, 0));
  eq.run();
  ASSERT_EQ(freed.size(), 1u);
  EXPECT_EQ(freed[0], 3u);
}

}  // namespace
}  // namespace vl::vlrd
