// Property-based tests: the routing device must conserve messages — every
// pushed line is delivered exactly once to exactly one registered consumer
// of the same SQI, in per-SQI FIFO order — under arbitrary interleavings
// of pushes, fetches, rejected injections, and back-pressure. Seeds
// parameterize the interleavings.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "mem/hierarchy.hpp"
#include "vlrd/vlrd.hpp"

namespace vl::vlrd {
namespace {

class VlrdRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VlrdRandomTest, ConservationAndFifoUnderRandomInterleaving) {
  sim::EventQueue eq;
  sim::CacheConfig ccfg;
  mem::Hierarchy hier(eq, 4, ccfg);
  sim::VlrdConfig vcfg;
  Vlrd dev(eq, hier, vcfg);
  Xoshiro256 rng(GetParam());

  constexpr int kSqis = 4;
  constexpr int kOps = 400;

  std::map<Sqi, std::uint64_t> next_payload;   // per-SQI push sequence
  std::map<Sqi, std::uint64_t> accepted;       // pushes the device ACKed
  std::map<Sqi, std::vector<Addr>> targets;    // armed consumer lines
  Addr next_line = 0x100000;

  for (int op = 0; op < kOps; ++op) {
    const Sqi sqi = static_cast<Sqi>(rng.below(kSqis));
    if (rng.below(2) == 0) {
      mem::Line data{};
      const std::uint64_t payload =
          (static_cast<std::uint64_t>(sqi) << 32) | next_payload[sqi];
      std::memcpy(data.data(), &payload, 8);
      if (dev.push(sqi, data)) {
        ++next_payload[sqi];
        ++accepted[sqi];
      }
    } else {
      const Addr line = next_line;
      next_line += kLineSize;
      const CoreId core = static_cast<CoreId>(rng.below(4));
      hier.select_line(core, line);
      hier.set_pushable(core, line, true);
      if (dev.fetch(sqi, line, core)) targets[sqi].push_back(line);
    }
    // Occasionally let the device drain.
    if (rng.below(4) == 0) eq.run();
  }
  eq.run();

  // Check: for each SQI, the first min(pushes, fetches) messages were
  // delivered to the first registered targets, in order, payload intact.
  for (int s = 0; s < kSqis; ++s) {
    const Sqi sqi = static_cast<Sqi>(s);
    const std::uint64_t delivered =
        std::min<std::uint64_t>(accepted[sqi], targets[sqi].size());
    for (std::uint64_t i = 0; i < delivered; ++i) {
      const std::uint64_t got = hier.backing().read(targets[sqi][i], 8);
      const std::uint64_t want = (static_cast<std::uint64_t>(sqi) << 32) | i;
      ASSERT_EQ(got, want) << "sqi=" << sqi << " msg=" << i;
    }
    // Leftovers must still be queued, not lost.
    const std::uint64_t queued = dev.queued_data(sqi);
    ASSERT_EQ(queued, accepted[sqi] - delivered) << "sqi=" << sqi;
  }
  // Global inject accounting.
  std::uint64_t total_delivered = 0;
  for (auto& [s, a] : accepted)
    total_delivered +=
        std::min<std::uint64_t>(a, targets[s].size());
  EXPECT_EQ(dev.stats().inject_ok, total_delivered);
}

TEST_P(VlrdRandomTest, RejectionRecoveryNeverLosesData) {
  sim::EventQueue eq;
  sim::CacheConfig ccfg;
  mem::Hierarchy hier(eq, 2, ccfg);
  sim::VlrdConfig vcfg;
  Vlrd dev(eq, hier, vcfg);
  Xoshiro256 rng(GetParam() ^ 0xabcdef);

  constexpr Sqi kSqi = 1;
  constexpr int kMsgs = 40;
  int delivered = 0;
  Addr line = 0x200000;

  for (int i = 0; i < kMsgs; ++i) {
    mem::Line data{};
    data[0] = static_cast<std::uint8_t>(i + 1);
    // Register the consumer, sometimes sabotage it (context switch) before
    // the data arrives so the injection is rejected.
    hier.select_line(1, line);
    hier.set_pushable(1, line, true);
    ASSERT_TRUE(dev.fetch(kSqi, line, 1));
    eq.run();
    const bool sabotage = rng.below(3) == 0;
    if (sabotage) hier.clear_pushable(1);

    ASSERT_TRUE(dev.push(kSqi, data));
    eq.run();

    if (sabotage) {
      // Recovery: the consumer re-arms and re-issues the fetch.
      EXPECT_EQ(hier.backing().read(line, 1), 0u);
      hier.select_line(1, line);
      hier.set_pushable(1, line, true);
      ASSERT_TRUE(dev.fetch(kSqi, line, 1));
      eq.run();
    }
    ASSERT_EQ(hier.backing().read(line, 1),
              static_cast<std::uint64_t>(i + 1));
    ++delivered;
    line += kLineSize;
  }
  EXPECT_EQ(delivered, kMsgs);
  EXPECT_EQ(dev.queued_data(kSqi), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VlrdRandomTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u));

}  // namespace
}  // namespace vl::vlrd
