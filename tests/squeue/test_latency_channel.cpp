// LatencyChannel tests: the timestamp word must be transparent to user
// payloads, recorded latencies must be positive, causally sane, and scale
// with the configured ns-per-tick; plus Samples percentile unit checks.

#include "squeue/latency_channel.hpp"

#include <gtest/gtest.h>

#include "squeue/blfq.hpp"
#include "squeue/factory.hpp"

namespace vl::squeue {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;

TEST(Samples, PercentilesNearestRank) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.record(i);
  EXPECT_EQ(s.percentile(50), 50.0);
  EXPECT_EQ(s.percentile(99), 99.0);
  EXPECT_EQ(s.percentile(100), 100.0);
  EXPECT_EQ(s.percentile(0), 1.0);
  EXPECT_EQ(s.percentile(1), 1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_EQ(s.count(), 100u);
}

TEST(Samples, SingleSampleIsEveryPercentile) {
  Samples s;
  s.record(42.0);
  EXPECT_EQ(s.percentile(1), 42.0);
  EXPECT_EQ(s.median(), 42.0);
  EXPECT_EQ(s.percentile(99), 42.0);
}

TEST(Samples, RecordAfterSortingStillExact) {
  Samples s;
  s.record(3);
  s.record(1);
  EXPECT_EQ(s.median(), 1.0);  // nearest-rank of {1,3} at p50 -> rank 1
  s.record(2);                 // triggers resort on next query
  EXPECT_EQ(s.median(), 2.0);
  EXPECT_EQ(s.percentile(100), 3.0);
}

TEST(Samples, EmptyIsZero) {
  Samples s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
}

TEST(LatencyChannel, PayloadUnchangedAndLatencyPositive) {
  Machine m;
  SimBlfq inner(m, 64);
  LatencyChannel ch(inner, m.eq(), m.cfg().ns_per_tick);
  // Built outside the coroutine: GCC 12 rejects initializer_list
  // temporaries inside coroutine bodies ("array used as initializer").
  const Msg sent = Msg::words({0xdead, 0xbeef, 0xcafe});
  Msg got;
  spawn([](Channel& q, SimThread t, Msg msg) -> Co<void> {
    co_await q.send(t, msg);
  }(ch, m.thread_on(0), sent));
  spawn([](Channel& q, SimThread t, Msg* out) -> Co<void> {
    *out = co_await q.recv(t);
  }(ch, m.thread_on(1), &got));
  m.run();
  EXPECT_EQ(got, sent);
  ASSERT_EQ(ch.latencies().count(), 1u);
  EXPECT_GT(ch.latencies().mean(), 0.0);
}

TEST(LatencyChannel, QueueingDelayShowsInTail) {
  // A consumer that starts late leaves early messages queued: their
  // recorded latency must include the waiting time, so the max is far
  // above the min.
  Machine m;
  SimBlfq inner(m, 64);
  LatencyChannel ch(inner, m.eq(), 1.0);  // raw ticks
  spawn([](Channel& q, SimThread t) -> Co<void> {
    for (std::uint64_t i = 0; i < 10; ++i) co_await q.send1(t, i);
  }(ch, m.thread_on(0)));
  spawn([](Channel& q, SimThread t) -> Co<void> {
    co_await t.compute(50000);  // arrive late
    for (int i = 0; i < 10; ++i) (void)co_await q.recv1(t);
  }(ch, m.thread_on(1)));
  m.run();
  ASSERT_EQ(ch.latencies().count(), 10u);
  EXPECT_GT(ch.latencies().percentile(100), 50000.0 * 0.9);
}

TEST(LatencyChannel, ScalesByNsPerTick) {
  auto run_with = [](double ns_per_tick) {
    Machine m;
    SimBlfq inner(m, 64);
    LatencyChannel ch(inner, m.eq(), ns_per_tick);
    spawn([](Channel& q, SimThread t) -> Co<void> {
      co_await q.send1(t, 1);
    }(ch, m.thread_on(0)));
    spawn([](Channel& q, SimThread t) -> Co<void> {
      (void)co_await q.recv1(t);
    }(ch, m.thread_on(1)));
    m.run();
    return ch.latencies().mean();
  };
  const double raw = run_with(1.0);
  const double ns = run_with(0.5);
  EXPECT_DOUBLE_EQ(ns, raw * 0.5);  // deterministic: identical timelines
}

TEST(LatencyChannel, WorksOverVlBackend) {
  Machine m{config_for(Backend::kVl)};
  ChannelFactory f(m, Backend::kVl);
  auto inner = f.make("lat", 0, 2);
  LatencyChannel ch(*inner, m.eq(), m.cfg().ns_per_tick);
  spawn([](Channel& q, SimThread t) -> Co<void> {
    for (std::uint64_t i = 0; i < 20; ++i) co_await q.send1(t, i);
  }(ch, m.thread_on(0)));
  spawn([](Channel& q, SimThread t) -> Co<void> {
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t v = co_await q.recv1(t);
      EXPECT_EQ(v, static_cast<std::uint64_t>(i));  // FIFO preserved
    }
  }(ch, m.thread_on(1)));
  m.run();
  EXPECT_EQ(ch.latencies().count(), 20u);
  EXPECT_GT(ch.latencies().percentile(99), 0.0);
}

}  // namespace
}  // namespace vl::squeue
