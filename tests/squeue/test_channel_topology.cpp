// Topology-parameterized channel properties: the M:N matrix every backend
// must honour (the paper's Table II spans 1:1, 15:1, 1:N, M:1 and mixed
// shapes), plus whole-simulation determinism — two identical runs must
// produce bit-identical timing and traffic, which is what makes every
// figure in this repo exactly reproducible.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <tuple>

#include "squeue/factory.hpp"

namespace vl::squeue {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;

// --- M:N matrix --------------------------------------------------------------

using Topo = std::tuple<Backend, int, int>;  // backend, producers, consumers

class ChannelTopology : public ::testing::TestWithParam<Topo> {};

TEST_P(ChannelTopology, ExactlyOnceWithPerProducerFifo) {
  const auto [backend, prods, cons] = GetParam();
  Machine m(config_for(backend));
  ChannelFactory f(m, backend);
  auto ch = f.make("topo");
  // Totals chosen so every consumer receives the same share.
  const int per_prod = 12 * cons;
  const int total = prods * per_prod;
  const int per_cons = total / cons;

  for (int p = 0; p < prods; ++p) {
    spawn([](Channel& q, SimThread t, int base, int n) -> Co<void> {
      for (int i = 0; i < n; ++i)
        co_await q.send1(t, static_cast<std::uint64_t>(base) * 10000 + i);
    }(*ch, m.thread_on(static_cast<CoreId>(p)), p, per_prod));
  }
  std::vector<std::uint64_t> got;
  for (int c = 0; c < cons; ++c) {
    spawn([](Channel& q, SimThread t, std::vector<std::uint64_t>* out,
             int n) -> Co<void> {
      for (int i = 0; i < n; ++i) out->push_back(co_await q.recv1(t));
    }(*ch, m.thread_on(static_cast<CoreId>(8 + c)), &got, per_cons));
  }
  m.run();

  std::sort(got.begin(), got.end());
  ASSERT_EQ(got.size(), static_cast<std::size_t>(total));
  EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end());
  // Every expected value arrived.
  for (int p = 0; p < prods; ++p)
    for (int i = 0; i < per_prod; i += per_prod / 3)
      EXPECT_TRUE(std::binary_search(
          got.begin(), got.end(),
          static_cast<std::uint64_t>(p) * 10000 + i));
}

std::string backend_name(Backend b) {
  // to_string(kVlIdeal) is "VL(ideal)" — not a valid gtest name.
  switch (b) {
    case Backend::kBlfq: return "BLFQ";
    case Backend::kZmq: return "ZMQ";
    case Backend::kVl: return "VL";
    case Backend::kVlIdeal: return "VLideal";
    case Backend::kCaf: return "CAF";
  }
  return "unknown";
}

std::string topo_name(const ::testing::TestParamInfo<Topo>& info) {
  const auto [b, p, c] = info.param;
  return backend_name(b) + "_" + std::to_string(p) + "p" +
         std::to_string(c) + "c";
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChannelTopology,
    ::testing::Combine(::testing::Values(Backend::kBlfq, Backend::kZmq,
                                         Backend::kVl, Backend::kVlIdeal,
                                         Backend::kCaf),
                       ::testing::Values(1, 4),
                       ::testing::Values(1, 4)),
    topo_name);

INSTANTIATE_TEST_SUITE_P(
    Asymmetric, ChannelTopology,
    ::testing::Values(Topo{Backend::kVl, 7, 2}, Topo{Backend::kVl, 2, 7},
                      Topo{Backend::kBlfq, 7, 2}, Topo{Backend::kZmq, 2, 7},
                      Topo{Backend::kCaf, 6, 3}),
    topo_name);

// --- determinism --------------------------------------------------------------

class BackendDeterminism : public ::testing::TestWithParam<Backend> {};

TEST_P(BackendDeterminism, IdenticalRunsProduceIdenticalTimingAndTraffic) {
  auto run_once = [&](std::uint64_t* ticks) {
    Machine m(config_for(GetParam()));
    ChannelFactory f(m, GetParam());
    auto ch = f.make("det");
    for (int p = 0; p < 3; ++p) {
      spawn([](Channel& q, SimThread t, int base) -> Co<void> {
        for (int i = 0; i < 20; ++i)
          co_await q.send1(t, static_cast<std::uint64_t>(base * 100 + i));
      }(*ch, m.thread_on(static_cast<CoreId>(p)), p));
    }
    spawn([](Channel& q, SimThread t) -> Co<void> {
      for (int i = 0; i < 60; ++i) (void)co_await q.recv1(t);
    }(*ch, m.thread_on(9)));
    m.run();
    *ticks = m.now();
    return m.mem().stats();
  };
  std::uint64_t t1 = 0, t2 = 0;
  const auto s1 = run_once(&t1);
  const auto s2 = run_once(&t2);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(s1.snoops, s2.snoops);
  EXPECT_EQ(s1.invalidations, s2.invalidations);
  EXPECT_EQ(s1.upgrades, s2.upgrades);
  EXPECT_EQ(s1.dram_reads, s2.dram_reads);
  EXPECT_EQ(s1.dram_writes, s2.dram_writes);
  EXPECT_EQ(s1.l1_hits, s2.l1_hits);
  EXPECT_EQ(s1.l1_misses, s2.l1_misses);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendDeterminism,
                         ::testing::Values(Backend::kBlfq, Backend::kZmq,
                                           Backend::kVl, Backend::kVlIdeal,
                                           Backend::kCaf),
                         [](const auto& info) {
                           return backend_name(info.param);
                         });

}  // namespace
}  // namespace vl::squeue
