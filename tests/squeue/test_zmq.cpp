#include "squeue/zmq.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "squeue/blfq.hpp"

namespace vl::squeue {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;

TEST(SimZmq, RoundTrip) {
  Machine m;
  SimZmq q(m, 16);
  std::uint64_t got = 0;
  spawn([](Channel& q, SimThread t) -> Co<void> {
    co_await q.send1(t, 42);
  }(q, m.thread_on(0)));
  spawn([](Channel& q, SimThread t, std::uint64_t* out) -> Co<void> {
    *out = co_await q.recv1(t);
  }(q, m.thread_on(1), &got));
  m.run();
  EXPECT_EQ(got, 42u);
}

TEST(SimZmq, HighWaterMarkBoundsDepth) {
  Machine m;
  SimZmq q(m, 8);  // tiny HWM
  int sent = 0;
  std::uint64_t max_depth = 0;
  spawn([](SimZmq& q, SimThread t, int* sent, std::uint64_t* maxd) -> Co<void> {
    for (std::uint64_t i = 0; i < 40; ++i) {
      co_await q.send1(t, i);
      ++*sent;
      *maxd = std::max(*maxd, q.depth());
    }
  }(q, m.thread_on(0), &sent, &max_depth));
  spawn([](Channel& q, SimThread t) -> Co<void> {
    co_await t.compute(30000);  // slow consumer: producer must block at HWM
    for (int i = 0; i < 40; ++i) (void)co_await q.recv1(t);
  }(q, m.thread_on(1)));
  m.run();
  EXPECT_EQ(sent, 40);
  EXPECT_LE(max_depth, 8u);  // back-pressure held the line
}

TEST(SimZmq, MpmcExactlyOnce) {
  Machine m;
  SimZmq q(m, 64);
  std::vector<std::uint64_t> got;
  for (int p = 0; p < 3; ++p) {
    spawn([](Channel& q, SimThread t, int base) -> Co<void> {
      for (int i = 0; i < 30; ++i)
        co_await q.send1(t, static_cast<std::uint64_t>(base * 100 + i));
    }(q, m.thread_on(static_cast<CoreId>(p)), p));
  }
  for (int c = 0; c < 3; ++c) {
    spawn([](Channel& q, SimThread t, std::vector<std::uint64_t>* out) -> Co<void> {
      for (int i = 0; i < 30; ++i) out->push_back(co_await q.recv1(t));
    }(q, m.thread_on(static_cast<CoreId>(4 + c)), &got));
  }
  m.run();
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got.size(), 90u);
  EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end());
}

TEST(SimZmq, HeavyContentionConverges) {
  // Regression guard for the deterministic-phase-lock livelock: with many
  // same-period contenders, identical fixed backoffs once locked this test
  // into a repeating schedule where producers never won the lock. The
  // jittered backoff must keep it converging.
  Machine m;
  SimZmq q(m, 32);
  int received = 0;
  for (int p = 0; p < 6; ++p) {
    spawn([](Channel& q, SimThread t, int base) -> Co<void> {
      for (int i = 0; i < 12; ++i)
        co_await q.send1(t, static_cast<std::uint64_t>(base * 100 + i));
    }(q, m.thread_on(static_cast<CoreId>(p)), p));
  }
  for (int c = 0; c < 6; ++c) {
    spawn([](Channel& q, SimThread t, int* received) -> Co<void> {
      for (int i = 0; i < 12; ++i) {
        (void)co_await q.recv1(t);
        ++*received;
      }
    }(q, m.thread_on(static_cast<CoreId>(8 + c)), &received));
  }
  m.run();
  EXPECT_EQ(received, 72);
}

TEST(SimZmq, CostsMoreSoftwareTimePerOpThanBlfq) {
  // ZMQ's modelled socket overhead should make an uncontended 1:1 exchange
  // slower than BLFQ's — the Fig. 11 halo/bitonic effect.
  auto run_one = [](auto make_q) {
    Machine m;
    auto q = make_q(m);
    spawn([](Channel& q, SimThread t) -> Co<void> {
      for (std::uint64_t i = 0; i < 50; ++i) co_await q.send1(t, i);
    }(*q, m.thread_on(0)));
    spawn([](Channel& q, SimThread t) -> Co<void> {
      for (int i = 0; i < 50; ++i) (void)co_await q.recv1(t);
    }(*q, m.thread_on(1)));
    m.run();
    return m.now();
  };
  const Tick blfq = run_one([](Machine& m) {
    return std::make_unique<SimBlfq>(m, 64);
  });
  const Tick zmq = run_one([](Machine& m) {
    return std::make_unique<SimZmq>(m, 64);
  });
  EXPECT_GT(zmq, blfq);
}

}  // namespace
}  // namespace vl::squeue
