// Shared-channel demand leases (VL backend): try_recv_many's burst
// registration pins messages to the calling endpoint, so with more than
// one consumer it must behave as a lease — arm, drain, release — or the
// unclaimed remainder idles in a ring nobody polls and the channel can
// never be drained to empty by the other consumer.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "runtime/machine.hpp"
#include "runtime/vl_queue.hpp"
#include "squeue/vl_channel.hpp"

namespace vl::squeue {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;

TEST(VlDemandLease, TwoConsumersDrainASharedChannelToEmpty) {
  Machine m;
  runtime::VlQueueLib lib(m);
  VlChannel ch(lib, "lease_q");
  constexpr std::uint64_t kSends = 16;

  std::vector<std::uint64_t> got_a, got_b;
  bool drained_clean = false;
  spawn([](VlChannel& q, Machine& mm, std::vector<std::uint64_t>* a,
           std::vector<std::uint64_t>* b, bool* clean) -> Co<void> {
    const SimThread prod = mm.thread_on(0);
    const SimThread ca = mm.thread_on(1);
    const SimThread cb = mm.thread_on(2);
    // Create both consumer endpoints before any traffic flows, so the
    // channel is genuinely shared from the first registration on.
    (void)co_await q.try_recv(ca);
    (void)co_await q.try_recv(cb);

    for (std::uint64_t i = 0; i < kSends; ++i)
      co_await q.send1(prod, 100 + i);

    std::vector<Msg> buf(8);
    // Consumer A bursts for half the traffic. Each call arms up to 8 ring
    // lines; the lease release at the end of the call is what keeps the
    // not-yet-injected remainder claimable by B.
    for (int spins = 0; a->size() < kSends / 2 && spins < 1000; ++spins) {
      const std::size_t want = kSends / 2 - a->size();
      const std::size_t got = co_await q.try_recv_many(
          ca, std::span<Msg>(buf.data(), std::min<std::size_t>(want, 8)));
      for (std::size_t k = 0; k < got; ++k) a->push_back(buf[k].w[0]);
      if (!got) co_await sim::Delay(mm.eq(), 64);
    }
    // Consumer B must be able to drain everything A left behind.
    for (int spins = 0; a->size() + b->size() < kSends && spins < 1000;
         ++spins) {
      const std::size_t got =
          co_await q.try_recv_many(cb, std::span<Msg>(buf.data(), 8));
      for (std::size_t k = 0; k < got; ++k) b->push_back(buf[k].w[0]);
      if (!got) co_await sim::Delay(mm.eq(), 64);
    }
    // Nothing may linger: the device backlog is gone and both endpoints
    // probe empty.
    const auto ra = co_await q.try_recv(ca);
    const auto rb = co_await q.try_recv(cb);
    *clean = q.depth() == 0 && ra.status == RecvStatus::kEmpty &&
             rb.status == RecvStatus::kEmpty;
  }(ch, m, &got_a, &got_b, &drained_clean));
  m.run();

  EXPECT_EQ(got_a.size(), kSends / 2);
  EXPECT_EQ(got_a.size() + got_b.size(), kSends);
  EXPECT_TRUE(drained_clean);
  std::vector<std::uint64_t> all = got_a;
  all.insert(all.end(), got_b.begin(), got_b.end());
  std::sort(all.begin(), all.end());
  for (std::uint64_t i = 0; i < kSends; ++i) EXPECT_EQ(all[i], 100 + i) << i;
}

}  // namespace
}  // namespace vl::squeue
