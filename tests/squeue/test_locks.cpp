#include "squeue/locks.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace vl::squeue {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;

enum class LockKind { kCas, kSpin, kTicket, kMcs };

std::unique_ptr<SimLock> make_lock(Machine& m, LockKind k) {
  switch (k) {
    case LockKind::kCas: return std::make_unique<SimCasLock>(m);
    case LockKind::kSpin: return std::make_unique<SimSpinLock>(m);
    case LockKind::kTicket: return std::make_unique<SimTicketLock>(m);
    case LockKind::kMcs: return std::make_unique<SimMcsLock>(m);
  }
  return nullptr;
}

class LockParamTest : public ::testing::TestWithParam<LockKind> {};

TEST_P(LockParamTest, MutualExclusionUnderContention) {
  Machine m;
  auto lock = make_lock(m, GetParam());
  const Addr counter = m.alloc(kLineSize);
  const Addr in_cs = m.alloc(kLineSize);
  bool violated = false;

  auto worker = [](SimLock& l, SimThread t, Addr counter, Addr in_cs,
                   bool* violated) -> Co<void> {
    for (int i = 0; i < 25; ++i) {
      co_await l.acquire(t);
      // Non-atomic read-modify-write: only safe under mutual exclusion.
      const std::uint64_t flag = co_await t.load(in_cs, 8);
      if (flag != 0) *violated = true;
      co_await t.store(in_cs, 1, 8);
      const std::uint64_t v = co_await t.load(counter, 8);
      co_await t.compute(7);
      co_await t.store(counter, v + 1, 8);
      co_await t.store(in_cs, 0, 8);
      co_await l.release(t);
    }
  };
  for (CoreId c = 0; c < 6; ++c) spawn(worker(*lock, m.thread_on(c), counter, in_cs, &violated));
  m.run();
  EXPECT_FALSE(violated);
  EXPECT_EQ(m.mem().backing().read(counter, 8), 6u * 25u);
}

TEST_P(LockParamTest, ContentionCostGrowsWithThreads) {
  // Fig. 2's shape: per-acquisition time rises with contender count.
  auto time_per_op = [&](int threads) {
    Machine m;
    auto lock = make_lock(m, GetParam());
    const int per = 30;
    for (int c = 0; c < threads; ++c) {
      spawn([](SimLock& l, SimThread t, int per) -> Co<void> {
        for (int i = 0; i < per; ++i) {
          co_await l.acquire(t);
          co_await l.release(t);
        }
      }(*lock, m.thread_on(static_cast<CoreId>(c)), per));
    }
    m.run();
    return static_cast<double>(m.now()) / (threads * per);
  };
  EXPECT_GT(time_per_op(8), time_per_op(1) * 1.5);
}

INSTANTIATE_TEST_SUITE_P(AllLocks, LockParamTest,
                         ::testing::Values(LockKind::kCas, LockKind::kSpin,
                                           LockKind::kTicket, LockKind::kMcs),
                         [](const auto& info) {
                           switch (info.param) {
                             case LockKind::kCas: return "Cas";
                             case LockKind::kSpin: return "Spin";
                             case LockKind::kTicket: return "Ticket";
                             case LockKind::kMcs: return "Mcs";
                           }
                           return "?";
                         });

TEST(McsLock, IsFifoFair) {
  Machine m;
  SimMcsLock lock(m);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    spawn([](SimMcsLock& l, Machine& m, SimThread t, int id,
             std::vector<int>* ord) -> Co<void> {
      co_await sim::Delay(m.eq(), static_cast<Tick>(id) * 50);
      co_await l.acquire(t);
      ord->push_back(id);
      co_await t.compute(400);
      co_await l.release(t);
    }(lock, m, m.thread_on(static_cast<CoreId>(i)), i, &order));
  }
  m.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(McsLock, WaitersDoNotBounceTheSharedLine) {
  // The MCS property, measured: with many waiters parked, the spin lock's
  // waiting traffic hits the lock line (snoops on release), while MCS
  // waiters poll only their own node lines. Compare invalidations per
  // acquisition under equal contention.
  auto invals_per_op = [](bool mcs) {
    Machine m;
    std::unique_ptr<SimLock> l;
    if (mcs)
      l = std::make_unique<SimMcsLock>(m);
    else
      l = std::make_unique<SimCasLock>(m);
    constexpr int kThreads = 8, kPer = 12;
    for (CoreId c = 0; c < kThreads; ++c) {
      spawn([](SimLock& l, SimThread t) -> Co<void> {
        for (int i = 0; i < kPer; ++i) {
          co_await l.acquire(t);
          co_await t.compute(60);
          co_await l.release(t);
        }
      }(*l, m.thread_on(c)));
    }
    m.run();
    return static_cast<double>(m.mem().stats().invalidations) /
           (kThreads * kPer);
  };
  EXPECT_LT(invals_per_op(true), invals_per_op(false));
}

TEST(TicketLock, IsFifoFair) {
  Machine m;
  SimTicketLock lock(m);
  std::vector<int> order;
  // Stagger arrival; ticket lock must grant in arrival order.
  for (int i = 0; i < 4; ++i) {
    spawn([](SimTicketLock& l, Machine& m, SimThread t, int id,
             std::vector<int>* ord) -> Co<void> {
      co_await sim::Delay(m.eq(), static_cast<Tick>(id) * 50);
      co_await l.acquire(t);
      ord->push_back(id);
      co_await t.compute(400);  // hold long enough that all queue up
      co_await l.release(t);
    }(lock, m, m.thread_on(static_cast<CoreId>(i)), i, &order));
  }
  m.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace vl::squeue
