// Backend-parameterized property suite: every queue implementation the
// paper compares must satisfy the same channel contract (delivery,
// exactly-once, per-producer FIFO, payload integrity), even though their
// mechanisms — shared CAS indices, locks, cache-line routing, register
// transfers — differ completely.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hpp"
#include "squeue/factory.hpp"

namespace vl::squeue {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;

class ChannelContract : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    machine = std::make_unique<Machine>(config_for(GetParam()));
    factory = std::make_unique<ChannelFactory>(*machine, GetParam());
  }
  std::unique_ptr<Machine> machine;
  std::unique_ptr<ChannelFactory> factory;
};

TEST_P(ChannelContract, DeliversOneMessage) {
  auto ch = factory->make("c1");
  std::uint64_t got = 0;
  spawn([](Channel& q, SimThread t) -> Co<void> {
    co_await q.send1(t, 777);
  }(*ch, machine->thread_on(0)));
  spawn([](Channel& q, SimThread t, std::uint64_t* out) -> Co<void> {
    *out = co_await q.recv1(t);
  }(*ch, machine->thread_on(1), &got));
  machine->run();
  EXPECT_EQ(got, 777u);
}

TEST_P(ChannelContract, PerProducerFifo) {
  auto ch = factory->make("c2");
  std::vector<std::uint64_t> got;
  spawn([](Channel& q, SimThread t) -> Co<void> {
    for (std::uint64_t i = 0; i < 60; ++i) co_await q.send1(t, i);
  }(*ch, machine->thread_on(0)));
  spawn([](Channel& q, SimThread t, std::vector<std::uint64_t>* out) -> Co<void> {
    for (int i = 0; i < 60; ++i) out->push_back(co_await q.recv1(t));
  }(*ch, machine->thread_on(1), &got));
  machine->run();
  ASSERT_EQ(got.size(), 60u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST_P(ChannelContract, MultiWordPayloadIntegrity) {
  // Fixed 4-word frames (CAF frames are fixed-length per channel).
  auto ch = factory->make("c3", 0, /*msg_words=*/4);
  Xoshiro256 rng(2024);
  std::vector<Msg> sent;
  for (int i = 0; i < 20; ++i) {
    Msg m;
    m.n = 4;
    for (std::uint8_t w = 0; w < m.n; ++w) m.w[w] = rng.next();
    sent.push_back(m);
  }
  std::vector<Msg> got;
  spawn([](Channel& q, SimThread t, const std::vector<Msg>* msgs) -> Co<void> {
    for (const Msg& m : *msgs) co_await q.send(t, m);
  }(*ch, machine->thread_on(0), &sent));
  spawn([](Channel& q, SimThread t, std::vector<Msg>* out, int n) -> Co<void> {
    for (int i = 0; i < n; ++i) out->push_back(co_await q.recv(t));
  }(*ch, machine->thread_on(1), &got, static_cast<int>(sent.size())));
  machine->run();
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i)
    EXPECT_EQ(got[i], sent[i]) << "message " << i;
}

TEST_P(ChannelContract, ManyToOneExactlyOnce) {
  auto ch = factory->make("c4");
  constexpr int kProds = 6, kPer = 25;
  std::vector<std::uint64_t> got;
  for (int p = 0; p < kProds; ++p) {
    spawn([](Channel& q, SimThread t, int base) -> Co<void> {
      for (int i = 0; i < kPer; ++i)
        co_await q.send1(t, static_cast<std::uint64_t>(base) * 1000 + i);
    }(*ch, machine->thread_on(static_cast<CoreId>(p)), p));
  }
  spawn([](Channel& q, SimThread t, std::vector<std::uint64_t>* out) -> Co<void> {
    for (int i = 0; i < kProds * kPer; ++i)
      out->push_back(co_await q.recv1(t));
  }(*ch, machine->thread_on(7), &got));
  machine->run();

  std::sort(got.begin(), got.end());
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kProds * kPer));
  EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end());
  // Per-producer FIFO also holds within the merged stream.
  std::map<std::uint64_t, std::uint64_t> last;
  for (std::uint64_t v : got) {
    const std::uint64_t p = v / 1000;
    EXPECT_GE(v, last.count(p) ? last[p] : 0u);
    last[p] = v;
  }
}

TEST_P(ChannelContract, TwoChannelsDoNotInterfere) {
  auto a = factory->make("c5a");
  auto b = factory->make("c5b");
  std::uint64_t ga = 0, gb = 0;
  spawn([](Channel& q, SimThread t) -> Co<void> {
    co_await q.send1(t, 0xa);
  }(*a, machine->thread_on(0)));
  spawn([](Channel& q, SimThread t) -> Co<void> {
    co_await q.send1(t, 0xb);
  }(*b, machine->thread_on(2)));
  spawn([](Channel& q, SimThread t, std::uint64_t* g) -> Co<void> {
    *g = co_await q.recv1(t);
  }(*a, machine->thread_on(1), &ga));
  spawn([](Channel& q, SimThread t, std::uint64_t* g) -> Co<void> {
    *g = co_await q.recv1(t);
  }(*b, machine->thread_on(3), &gb));
  machine->run();
  EXPECT_EQ(ga, 0xau);
  EXPECT_EQ(gb, 0xbu);
}

TEST_P(ChannelContract, PingPongTerminates) {
  auto fwd = factory->make("c6f");
  auto bwd = factory->make("c6b");
  int rounds = 0;
  spawn([](Channel& f, Channel& b, SimThread t) -> Co<void> {
    for (std::uint64_t i = 0; i < 30; ++i) {
      co_await f.send1(t, i);
      const std::uint64_t r = co_await b.recv1(t);
      EXPECT_EQ(r, i * 2);
    }
  }(*fwd, *bwd, machine->thread_on(0)));
  spawn([](Channel& f, Channel& b, SimThread t, int* rounds) -> Co<void> {
    for (int i = 0; i < 30; ++i) {
      const std::uint64_t v = co_await f.recv1(t);
      co_await b.send1(t, v * 2);
      ++*rounds;
    }
  }(*fwd, *bwd, machine->thread_on(1), &rounds));
  machine->run();
  EXPECT_EQ(rounds, 30);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ChannelContract,
    ::testing::Values(Backend::kBlfq, Backend::kZmq, Backend::kVl,
                      Backend::kVlIdeal, Backend::kCaf),
    [](const auto& info) {
      switch (info.param) {
        case Backend::kBlfq: return "BLFQ";
        case Backend::kZmq: return "ZMQ";
        case Backend::kVl: return "VL";
        case Backend::kVlIdeal: return "VLideal";
        case Backend::kCaf: return "CAF";
      }
      return "?";
    });

}  // namespace
}  // namespace vl::squeue
