#include "squeue/caf.hpp"

#include <gtest/gtest.h>

namespace vl::squeue {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;

TEST(CafDevice, QueuesAreIndependent) {
  Machine m;
  CafDevice dev(m, 4);
  const auto q0 = dev.open_queue();
  const auto q1 = dev.open_queue();
  EXPECT_TRUE(dev.enq(q0, 1));
  EXPECT_TRUE(dev.enq(q1, 2));
  std::uint64_t v = 0;
  EXPECT_TRUE(dev.deq(q1, v));
  EXPECT_EQ(v, 2u);
  EXPECT_TRUE(dev.deq(q0, v));
  EXPECT_EQ(v, 1u);
  EXPECT_FALSE(dev.deq(q0, v));  // empty
}

TEST(CafDevice, CreditManagementBoundsQueue) {
  Machine m;
  CafDevice dev(m, 3);
  const auto q = dev.open_queue();
  EXPECT_TRUE(dev.enq(q, 1));
  EXPECT_TRUE(dev.enq(q, 2));
  EXPECT_TRUE(dev.enq(q, 3));
  EXPECT_FALSE(dev.enq(q, 4));  // out of credits
  std::uint64_t v;
  EXPECT_TRUE(dev.deq(q, v));
  EXPECT_TRUE(dev.enq(q, 4));  // credit returned
}

TEST(CafDevice, ClassCreditCapsPartitionTheBudget) {
  // QoS credit management: bulk may occupy at most its cap even while the
  // queue as a whole has credits left, and freeing a bulk word returns
  // *that class's* credit, not anyone else's.
  Machine m;
  sim::CafConfig qos;
  qos.credits_per_queue = 8;
  qos.class_credits[static_cast<std::size_t>(QosClass::kLatency)] = 4;
  qos.class_credits[static_cast<std::size_t>(QosClass::kBulk)] = 2;
  CafDevice dev(m, qos);
  const auto q = dev.open_queue();

  EXPECT_TRUE(dev.enq(q, 1, QosClass::kBulk));
  EXPECT_TRUE(dev.enq(q, 2, QosClass::kBulk));
  EXPECT_FALSE(dev.enq(q, 3, QosClass::kBulk));  // bulk cap hit at 2/8
  EXPECT_TRUE(dev.enq(q, 4, QosClass::kLatency));  // latency unaffected
  EXPECT_EQ(dev.class_depth(q, QosClass::kBulk), 2u);
  EXPECT_EQ(dev.class_depth(q, QosClass::kLatency), 1u);

  std::uint64_t v = 0;
  EXPECT_TRUE(dev.deq(q, v));  // FIFO: frees the oldest (bulk) word
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(dev.enq(q, 3, QosClass::kBulk));  // bulk credit came back
  EXPECT_FALSE(dev.enq(q, 5, QosClass::kBulk));
}

TEST(CafDevice, WholeBudgetStillCapsEveryClass) {
  Machine m;
  sim::CafConfig qos;
  qos.credits_per_queue = 2;
  qos.class_credits[static_cast<std::size_t>(QosClass::kLatency)] = 8;
  CafDevice dev(m, qos);
  const auto q = dev.open_queue();
  EXPECT_TRUE(dev.enq(q, 1, QosClass::kLatency));
  EXPECT_TRUE(dev.enq(q, 2, QosClass::kLatency));
  // Class cap (8) exceeds the queue budget (2): the budget wins.
  EXPECT_FALSE(dev.enq(q, 3, QosClass::kLatency));
}

TEST(SimCaf, RoundTripSingleWord) {
  Machine m;
  CafDevice dev(m);
  SimCaf q(dev);
  std::uint64_t got = 0;
  spawn([](Channel& q, SimThread t) -> Co<void> {
    co_await q.send1(t, 0xbeef);
  }(q, m.thread_on(0)));
  spawn([](Channel& q, SimThread t, std::uint64_t* out) -> Co<void> {
    *out = co_await q.recv1(t);
  }(q, m.thread_on(1), &got));
  m.run();
  EXPECT_EQ(got, 0xbeefu);
}

TEST(SimCaf, MultiWordMessageCostsOneTripPerWord) {
  // A 7-word frame costs 7 register transfers each way; the device-write
  // count must reflect register granularity (this is the Fig. 15 effect).
  Machine m;
  CafDevice dev(m);
  SimCaf q(dev, /*msg_words=*/7);
  const auto base = m.mem().stats().device_writes;
  const Msg big = Msg::words({1, 2, 3, 4, 5, 6, 7});
  Msg got;
  spawn([](Channel& q, SimThread t, Msg msg) -> Co<void> {
    co_await q.send(t, msg);
  }(q, m.thread_on(0), big));
  spawn([](Channel& q, SimThread t, Msg* out) -> Co<void> {
    *out = co_await q.recv(t);
  }(q, m.thread_on(1), &got));
  m.run();
  EXPECT_EQ(got, big);
  // 7 enqueue trips + at least 7 dequeue trips (empty polls may add more).
  EXPECT_GE(m.mem().stats().device_writes - base, 14u);
}

TEST(SimCaf, BlockedProducerResumesAfterDrain) {
  Machine m;
  CafDevice dev(m, 2);  // two credits only
  SimCaf q(dev);
  int sent = 0;
  spawn([](Channel& q, SimThread t, int* sent) -> Co<void> {
    for (std::uint64_t i = 0; i < 10; ++i) {
      co_await q.send1(t, i);
      ++*sent;
    }
  }(q, m.thread_on(0), &sent));
  spawn([](Channel& q, SimThread t) -> Co<void> {
    co_await t.compute(5000);
    for (int i = 0; i < 10; ++i) (void)co_await q.recv1(t);
  }(q, m.thread_on(1)));
  m.run();
  EXPECT_EQ(sent, 10);
  EXPECT_EQ(q.depth(), 0u);
}

TEST(SimCaf, PayloadsStayInDeviceSram) {
  // Unlike BLFQ, queued CAF payloads cause no DRAM traffic.
  Machine m;
  CafDevice dev(m, 256);
  SimCaf q(dev);
  const auto base = m.mem().stats().mem_txns();
  spawn([](Channel& q, SimThread t) -> Co<void> {
    for (std::uint64_t i = 0; i < 100; ++i) co_await q.send1(t, i);
  }(q, m.thread_on(0)));
  spawn([](Channel& q, SimThread t) -> Co<void> {
    for (int i = 0; i < 100; ++i) (void)co_await q.recv1(t);
  }(q, m.thread_on(1)));
  m.run();
  EXPECT_EQ(m.mem().stats().mem_txns() - base, 0u);
}

}  // namespace
}  // namespace vl::squeue
