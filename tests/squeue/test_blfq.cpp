#include "squeue/blfq.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace vl::squeue {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;

TEST(SimBlfq, SingleMessageRoundTrip) {
  Machine m;
  SimBlfq q(m, 16);
  std::uint64_t got = 0;
  spawn([](Channel& q, SimThread t) -> Co<void> {
    co_await q.send1(t, 0xcafe);
  }(q, m.thread_on(0)));
  spawn([](Channel& q, SimThread t, std::uint64_t* out) -> Co<void> {
    *out = co_await q.recv1(t);
  }(q, m.thread_on(1), &got));
  m.run();
  EXPECT_EQ(got, 0xcafeu);
}

TEST(SimBlfq, FifoWithSingleProducer) {
  Machine m;
  SimBlfq q(m, 64);
  std::vector<std::uint64_t> got;
  spawn([](Channel& q, SimThread t) -> Co<void> {
    for (std::uint64_t i = 0; i < 100; ++i) co_await q.send1(t, i);
  }(q, m.thread_on(0)));
  spawn([](Channel& q, SimThread t, std::vector<std::uint64_t>* out) -> Co<void> {
    for (int i = 0; i < 100; ++i) out->push_back(co_await q.recv1(t));
  }(q, m.thread_on(1), &got));
  m.run();
  ASSERT_EQ(got.size(), 100u);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(SimBlfq, MpmcDeliversEveryMessageExactlyOnce) {
  Machine m;
  SimBlfq q(m, 256);
  constexpr int kProds = 4, kCons = 4, kPer = 50;
  std::vector<std::uint64_t> got;
  for (int p = 0; p < kProds; ++p) {
    spawn([](Channel& q, SimThread t, int base) -> Co<void> {
      for (int i = 0; i < kPer; ++i)
        co_await q.send1(t, static_cast<std::uint64_t>(base * 1000 + i));
    }(q, m.thread_on(static_cast<CoreId>(p)), p));
  }
  for (int c = 0; c < kCons; ++c) {
    spawn([](Channel& q, SimThread t, std::vector<std::uint64_t>* out) -> Co<void> {
      for (int i = 0; i < kProds * kPer / kCons; ++i)
        out->push_back(co_await q.recv1(t));
    }(q, m.thread_on(static_cast<CoreId>(kProds + c)), &got));
  }
  m.run();
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kProds * kPer));
  EXPECT_EQ(std::adjacent_find(got.begin(), got.end()), got.end());  // unique
  for (int p = 0; p < kProds; ++p)
    EXPECT_TRUE(std::binary_search(got.begin(), got.end(),
                                   static_cast<std::uint64_t>(p * 1000)));
}

TEST(SimBlfq, MultiWordMessagesSurviveIntact) {
  Machine m;
  SimBlfq q(m, 16);
  const Msg sent = Msg::words({1, 2, 3, 4, 5, 6, 7});
  Msg got;
  spawn([](Channel& q, SimThread t, Msg msg) -> Co<void> {
    co_await q.send(t, msg);
  }(q, m.thread_on(0), sent));
  spawn([](Channel& q, SimThread t, Msg* out) -> Co<void> {
    *out = co_await q.recv(t);
  }(q, m.thread_on(1), &got));
  m.run();
  EXPECT_EQ(got, sent);
}

TEST(SimBlfq, SharedIndicesGenerateCoherenceTraffic) {
  // The motivating observation (Figs. 1/4): contended CAS on shared
  // head/tail drives invalidations and upgrades.
  Machine m;
  SimBlfq q(m, 1024);
  for (int p = 0; p < 4; ++p) {
    spawn([](Channel& q, SimThread t) -> Co<void> {
      for (int i = 0; i < 50; ++i) co_await q.send1(t, 1);
    }(q, m.thread_on(static_cast<CoreId>(p))));
  }
  spawn([](Channel& q, SimThread t) -> Co<void> {
    for (int i = 0; i < 200; ++i) (void)co_await q.recv1(t);
  }(q, m.thread_on(5)));
  m.run();
  EXPECT_GT(m.mem().stats().invalidations, 100u);
  EXPECT_GT(m.mem().stats().upgrades, 0u);
}

TEST(SimBlfq, DepthTracksOccupancy) {
  Machine m;
  SimBlfq q(m, 64);
  spawn([](Channel& q, SimThread t) -> Co<void> {
    for (std::uint64_t i = 0; i < 10; ++i) co_await q.send1(t, i);
  }(q, m.thread_on(0)));
  m.run();
  EXPECT_EQ(q.depth(), 10u);
}

}  // namespace
}  // namespace vl::squeue
