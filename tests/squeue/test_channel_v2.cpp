// Channel API v2 contract, parameterized over every backend: typed
// non-blocking results, real depth() accounting, batch-vs-single delivery
// equivalence, and Msg::qos carried through the data path (software rings
// included).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "squeue/factory.hpp"

namespace vl::squeue {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;

class ChannelV2 : public ::testing::TestWithParam<Backend> {
 protected:
  void SetUp() override {
    machine = std::make_unique<Machine>(config_for(GetParam()));
    factory = std::make_unique<ChannelFactory>(*machine, GetParam());
  }
  std::unique_ptr<Machine> machine;
  std::unique_ptr<ChannelFactory> factory;
};

// depth() must track device/ring occupancy exactly: k undrained sends show
// k queued messages, and draining j of them leaves k - j.
TEST_P(ChannelV2, DepthTracksOccupancy) {
  auto ch = factory->make("d1", 64);
  constexpr int kSends = 6;  // below every backend's buffer/quota bound
  spawn([](Channel& q, SimThread t) -> Co<void> {
    for (std::uint64_t i = 0; i < kSends; ++i) co_await q.send1(t, i);
  }(*ch, machine->thread_on(0)));
  machine->run();
  EXPECT_EQ(ch->depth(), static_cast<std::uint64_t>(kSends));

  spawn([](Channel& q, SimThread t) -> Co<void> {
    for (int i = 0; i < 2; ++i) (void)co_await q.recv1(t);
  }(*ch, machine->thread_on(1)));
  machine->run();
  // VL counts the device-resident backlog: lines already injected into the
  // consumer's armed endpoint lines (but not yet drained) are off-device,
  // so depth() may run below k - j there — but never above, and software
  // rings and CAF are exact.
  EXPECT_LE(ch->depth(), static_cast<std::uint64_t>(kSends - 2));
  if (GetParam() != Backend::kVl && GetParam() != Backend::kVlIdeal)
    EXPECT_EQ(ch->depth(), static_cast<std::uint64_t>(kSends - 2));
}

// try_recv on an empty channel reports kEmpty (no blocking, no delivery);
// after a send it delivers the message.
TEST_P(ChannelV2, TryRecvReportsEmptyThenDelivers) {
  auto ch = factory->make("d2");
  RecvStatus first = RecvStatus::kOk;
  std::uint64_t got = 0;
  spawn([](Channel& q, SimThread t, RecvStatus* first,
           std::uint64_t* got) -> Co<void> {
    const RecvResult r0 = co_await q.try_recv(t);
    *first = r0.status;
    co_await q.send1(t, 99);
    for (;;) {
      const RecvResult r1 = co_await q.try_recv(t);
      if (r1.ok()) {
        *got = r1.msg.w[0];
        co_return;
      }
      co_await t.compute(32);  // discovery latency on the probing backends
    }
  }(*ch, machine->thread_on(0), &first, &got));
  machine->run();
  EXPECT_EQ(first, RecvStatus::kEmpty);
  EXPECT_EQ(got, 99u);
}

// try_send must report kFull (not block, not drop) once the backend's
// bound is hit. BLFQ's paper model is unbounded and VL-ideal has no
// buffer bound, so the bounded backends are the interesting ones here.
TEST_P(ChannelV2, TrySendReportsFull) {
  if (GetParam() == Backend::kBlfq || GetParam() == Backend::kVlIdeal)
    GTEST_SKIP() << "backend is modelled unbounded";
  auto ch = factory->make("d3", /*capacity_hint=*/4);
  SendStatus final_status = SendStatus::kOk;
  std::uint64_t accepted = 0;
  spawn([](Channel& q, SimThread t, SendStatus* st,
           std::uint64_t* accepted) -> Co<void> {
    for (int i = 0; i < 512; ++i) {
      const SendResult r = co_await q.try_send(t, Msg::one(7));
      if (!r.ok()) {
        *st = r.status;
        co_return;
      }
      ++*accepted;
    }
  }(*ch, machine->thread_on(0), &final_status, &accepted));
  machine->run();
  EXPECT_NE(final_status, SendStatus::kOk);
  EXPECT_GT(accepted, 0u);
  EXPECT_LT(accepted, 512u);
}

// Batched send_many/recv_many must deliver exactly the multiset a
// single-message loop delivers — same payloads, nothing lost, nothing
// duplicated — under a concurrent M:1 load.
constexpr int kProds = 4, kPer = 40;

TEST_P(ChannelV2, BatchMatchesSingleDeliveryMultiset) {
  auto deliver = [&](bool batched) {
    SetUp();  // fresh machine per flavour
    auto ch = factory->make(batched ? "b1" : "b2", 256);
    for (int p = 0; p < kProds; ++p) {
      spawn([](Channel& q, SimThread t, int base, bool batched) -> Co<void> {
        std::vector<Msg> msgs;
        for (int i = 0; i < kPer; ++i)
          msgs.push_back(
              Msg::one(static_cast<std::uint64_t>(base) * 1000 + i));
        if (batched) {
          for (std::size_t at = 0; at < msgs.size(); at += 8)
            co_await q.send_many(
                t, std::span<const Msg>(msgs.data() + at,
                                        std::min<std::size_t>(
                                            8, msgs.size() - at)));
        } else {
          for (const Msg& m : msgs) co_await q.send(t, m);
        }
      }(*ch, machine->thread_on(static_cast<CoreId>(p)), p, batched));
    }
    auto out = std::make_shared<std::vector<std::uint64_t>>();
    spawn([](Channel& q, SimThread t, std::shared_ptr<std::vector<std::uint64_t>> out,
             bool batched) -> Co<void> {
      int remaining = kProds * kPer;
      std::vector<Msg> buf(8);
      while (remaining > 0) {
        if (batched) {
          const std::size_t got =
              co_await q.recv_many(t, std::span<Msg>(buf.data(), buf.size()));
          for (std::size_t k = 0; k < got; ++k) out->push_back(buf[k].w[0]);
          remaining -= static_cast<int>(got);
        } else {
          out->push_back(co_await q.recv1(t));
          --remaining;
        }
      }
    }(*ch, machine->thread_on(7), out, batched));
    machine->run();
    std::sort(out->begin(), out->end());
    return *out;
  };

  const auto batched = deliver(true);
  const auto single = deliver(false);
  ASSERT_EQ(batched.size(), static_cast<std::size_t>(kProds * kPer));
  EXPECT_EQ(batched, single);  // identical delivered multiset
}

// Msg::qos must survive the data path on EVERY backend — through the
// software rings' cells (the regression this pins: ZMQ/BLFQ used to drop
// it on copy-in), CAF's per-word class tracking, and VL's ctrl byte.
TEST_P(ChannelV2, QosCarriedThroughDataPath) {
  auto ch = factory->make("q1", 64);
  const QosClass classes[] = {QosClass::kLatency, QosClass::kBulk,
                              QosClass::kStandard, QosClass::kBulk,
                              QosClass::kLatency};
  std::vector<QosClass> got;
  spawn([](Channel& q, SimThread t, const QosClass* cls) -> Co<void> {
    for (int i = 0; i < 5; ++i) {
      Msg m = Msg::one(static_cast<std::uint64_t>(i));
      m.qos = cls[i];
      co_await q.send(t, m);
    }
  }(*ch, machine->thread_on(0), classes));
  spawn([](Channel& q, SimThread t, std::vector<QosClass>* got) -> Co<void> {
    for (int i = 0; i < 5; ++i) {
      const Msg m = co_await q.recv(t);
      got->push_back(m.qos);
    }
  }(*ch, machine->thread_on(1), &got));
  machine->run();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[i], classes[i]) << "message " << i;
}

// A batched span that alternates service classes must deliver completely:
// a backend whose batch grant is per class (CAF) ends its run at every
// class boundary, and a full grant at such a boundary must read as
// progress, not back-pressure (the send_many wrapper would otherwise park
// on the credit futex with credits to spare — regression pin).
TEST_P(ChannelV2, MixedClassBatchDelivers) {
  auto ch = factory->make("mx", 64);
  std::vector<Msg> batch;
  for (int i = 0; i < 10; ++i) {
    Msg m = Msg::one(static_cast<std::uint64_t>(i));
    m.qos = (i % 2) ? QosClass::kBulk : QosClass::kLatency;
    batch.push_back(m);
  }
  // No consumer yet: the whole span must land without any drain-side
  // wakeups — the buggy path parked after the first class run and only a
  // consumer could have rescued it.
  spawn([](Channel& q, SimThread t, const std::vector<Msg>* batch) -> Co<void> {
    co_await q.send_many(t, *batch);
  }(*ch, machine->thread_on(0), &batch));
  machine->run();
  EXPECT_EQ(ch->depth(), 10u);

  std::vector<std::uint64_t> got;
  spawn([](Channel& q, SimThread t, std::vector<std::uint64_t>* got) -> Co<void> {
    for (int i = 0; i < 10; ++i) got->push_back(co_await q.recv1(t));
  }(*ch, machine->thread_on(1), &got));
  machine->run();
  ASSERT_EQ(got.size(), 10u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, ChannelV2,
    ::testing::Values(Backend::kBlfq, Backend::kZmq, Backend::kVl,
                      Backend::kVlIdeal, Backend::kCaf),
    [](const auto& info) {
      switch (info.param) {
        case Backend::kBlfq: return "BLFQ";
        case Backend::kZmq: return "ZMQ";
        case Backend::kVl: return "VL";
        case Backend::kVlIdeal: return "VLideal";
        case Backend::kCaf: return "CAF";
      }
      return "?";
    });

}  // namespace
}  // namespace vl::squeue
