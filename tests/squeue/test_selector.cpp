// Selector (wait-any) contract: delivery without loss across N endpoints,
// deterministic service order (two identical runs must match exactly —
// the qos-incast smoke pattern applied at channel level), and zero-event
// parking where the backends expose readiness futexes.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "squeue/factory.hpp"
#include "squeue/selector.hpp"

namespace vl::squeue {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;

struct Served {
  std::vector<std::pair<std::size_t, std::uint64_t>> items;
  std::uint64_t events = 0;
};

/// One producer per channel at staggered rates; one selector consumer
/// records (endpoint index, payload) in service order.
Served run_select(Backend b, int nchan, int per_chan) {
  Machine m(config_for(b));
  ChannelFactory f(m, b);
  std::vector<std::unique_ptr<Channel>> chans;
  Selector sel;
  for (int c = 0; c < nchan; ++c) {
    chans.push_back(f.make("sel" + std::to_string(c), 64));
    sel.add(*chans.back());
  }
  for (int c = 0; c < nchan; ++c) {
    spawn([](Channel& ch, SimThread t, int c, int per) -> Co<void> {
      for (int i = 0; i < per; ++i) {
        co_await t.compute(static_cast<Tick>(120 + 70 * c));  // staggered
        co_await ch.send1(t, static_cast<std::uint64_t>(c) * 1000 + i);
      }
    }(*chans[static_cast<std::size_t>(c)],
      m.thread_on(static_cast<CoreId>(c)), c, per_chan));
  }
  Served out;
  spawn([](Selector& sel, SimThread t, int total, Served* out) -> Co<void> {
    for (int i = 0; i < total; ++i) {
      const Selector::Item item = co_await sel.recv_any(t);
      out->items.emplace_back(item.index, item.msg.w[0]);
    }
  }(sel, m.thread_on(static_cast<CoreId>(nchan)), nchan * per_chan, &out));
  m.run();
  out.events = m.eq().executed();
  return out;
}

class SelectorContract : public ::testing::TestWithParam<Backend> {};

TEST_P(SelectorContract, DeliversEverythingExactlyOnce) {
  const Served s = run_select(GetParam(), 4, 25);
  ASSERT_EQ(s.items.size(), 100u);
  // Per-endpoint FIFO and exactly-once.
  std::vector<std::uint64_t> next(4, 0);
  for (const auto& [idx, v] : s.items) {
    ASSERT_LT(idx, 4u);
    EXPECT_EQ(v, idx * 1000 + next[idx]);
    ++next[idx];
  }
  for (int c = 0; c < 4; ++c) EXPECT_EQ(next[static_cast<std::size_t>(c)], 25u);
}

TEST_P(SelectorContract, DeterministicServiceOrder) {
  // Two identical runs must serve byte-identical sequences AND execute the
  // same number of kernel events — the determinism property the CI smoke
  // asserts for whole scenarios, pinned at the selector level.
  const Served a = run_select(GetParam(), 3, 30);
  const Served b = run_select(GetParam(), 3, 30);
  EXPECT_EQ(a.items, b.items);
  EXPECT_EQ(a.events, b.events);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SelectorContract,
    ::testing::Values(Backend::kBlfq, Backend::kZmq, Backend::kVl,
                      Backend::kVlIdeal, Backend::kCaf),
    [](const auto& info) {
      switch (info.param) {
        case Backend::kBlfq: return "BLFQ";
        case Backend::kZmq: return "ZMQ";
        case Backend::kVl: return "VL";
        case Backend::kVlIdeal: return "VLideal";
        case Backend::kCaf: return "CAF";
      }
      return "?";
    });

// ZMQ exposes readiness futexes on every endpoint, so an idle selector is
// parked — it must cost ZERO events while blocked (the park_any property).
TEST(SelectorPark, IdleSelectorCostsNoEvents) {
  Machine m(config_for(Backend::kZmq));
  ChannelFactory f(m, Backend::kZmq);
  auto a = f.make("pa", 16);
  auto b = f.make("pb", 16);
  Selector sel;
  sel.add(*a);
  sel.add(*b);

  std::uint64_t got = 0;
  spawn([](Selector& sel, SimThread t, std::uint64_t* got) -> Co<void> {
    const Selector::Item item = co_await sel.recv_any(t);
    *got = item.msg.w[0];
  }(sel, m.thread_on(0), &got));
  // Let the selector probe everything once and park.
  m.run();
  const std::uint64_t idle_events = m.eq().executed();

  // A long quiet period passes; the parked selector must add nothing.
  spawn([](SimThread t) -> Co<void> {
    co_await t.compute(100000);
  }(m.thread_on(2)));
  m.run();
  const std::uint64_t after_quiet = m.eq().executed();
  EXPECT_LT(after_quiet - idle_events, 10u);

  // A publish on the second endpoint wakes it through the futex.
  spawn([](Channel& ch, SimThread t) -> Co<void> {
    co_await ch.send1(t, 4242);
  }(*b, m.thread_on(1)));
  m.run();
  EXPECT_EQ(got, 4242u);
}

}  // namespace
}  // namespace vl::squeue
