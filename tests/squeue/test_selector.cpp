// Selector (wait-any) contract: delivery without loss across N endpoints,
// deterministic service order (two identical runs must match exactly —
// the qos-incast smoke pattern applied at channel level), and zero-event
// parking where the backends expose readiness futexes.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "squeue/factory.hpp"
#include "squeue/selector.hpp"

namespace vl::squeue {
namespace {

using runtime::Machine;
using sim::Co;
using sim::SimThread;
using sim::spawn;

struct Served {
  std::vector<std::pair<std::size_t, std::uint64_t>> items;
  std::uint64_t events = 0;
};

/// One producer per channel at staggered rates; one selector consumer
/// records (endpoint index, payload) in service order.
Served run_select(Backend b, int nchan, int per_chan) {
  Machine m(config_for(b));
  ChannelFactory f(m, b);
  std::vector<std::unique_ptr<Channel>> chans;
  Selector sel;
  for (int c = 0; c < nchan; ++c) {
    chans.push_back(f.make("sel" + std::to_string(c), 64));
    sel.add(*chans.back());
  }
  for (int c = 0; c < nchan; ++c) {
    spawn([](Channel& ch, SimThread t, int c, int per) -> Co<void> {
      for (int i = 0; i < per; ++i) {
        co_await t.compute(static_cast<Tick>(120 + 70 * c));  // staggered
        co_await ch.send1(t, static_cast<std::uint64_t>(c) * 1000 + i);
      }
    }(*chans[static_cast<std::size_t>(c)],
      m.thread_on(static_cast<CoreId>(c)), c, per_chan));
  }
  Served out;
  spawn([](Selector& sel, SimThread t, int total, Served* out) -> Co<void> {
    for (int i = 0; i < total; ++i) {
      const Selector::Item item = co_await sel.recv_any(t);
      out->items.emplace_back(item.index, item.msg.w[0]);
    }
  }(sel, m.thread_on(static_cast<CoreId>(nchan)), nchan * per_chan, &out));
  m.run();
  out.events = m.eq().executed();
  return out;
}

class SelectorContract : public ::testing::TestWithParam<Backend> {};

TEST_P(SelectorContract, DeliversEverythingExactlyOnce) {
  const Served s = run_select(GetParam(), 4, 25);
  ASSERT_EQ(s.items.size(), 100u);
  // Per-endpoint FIFO and exactly-once.
  std::vector<std::uint64_t> next(4, 0);
  for (const auto& [idx, v] : s.items) {
    ASSERT_LT(idx, 4u);
    EXPECT_EQ(v, idx * 1000 + next[idx]);
    ++next[idx];
  }
  for (int c = 0; c < 4; ++c) EXPECT_EQ(next[static_cast<std::size_t>(c)], 25u);
}

TEST_P(SelectorContract, DeterministicServiceOrder) {
  // Two identical runs must serve byte-identical sequences AND execute the
  // same number of kernel events — the determinism property the CI smoke
  // asserts for whole scenarios, pinned at the selector level.
  const Served a = run_select(GetParam(), 3, 30);
  const Served b = run_select(GetParam(), 3, 30);
  EXPECT_EQ(a.items, b.items);
  EXPECT_EQ(a.events, b.events);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SelectorContract,
    ::testing::Values(Backend::kBlfq, Backend::kZmq, Backend::kVl,
                      Backend::kVlIdeal, Backend::kCaf),
    [](const auto& info) {
      switch (info.param) {
        case Backend::kBlfq: return "BLFQ";
        case Backend::kZmq: return "ZMQ";
        case Backend::kVl: return "VL";
        case Backend::kVlIdeal: return "VLideal";
        case Backend::kCaf: return "CAF";
      }
      return "?";
    });

// --- shared (multi-consumer) channels under barrier-style drains ------------
// Two Selectors over the same Channel set, splitting the traffic by fixed
// quota — the shape a barrier-style drain produces when endpoints are
// shared. Contract: across all consumers every message is delivered
// exactly once, the channels drain to empty, and the whole interleaving is
// deterministic.
//
// This holds on the software queues (shared in-memory rings — any core may
// pop) and on CAF (the device dequeue register serves whoever reads it).
// It deliberately does NOT cover VL: the paper's VLRD routes lines into
// per-(core, thread) consumption buffers against registered demand, so a
// line attracted by one consumer's probe is invisible to every other —
// multi-consumer sharing is unsupported by that hardware model, which is
// why bsp::World gives every channel exactly one consumer (one per
// directed topology edge).

struct SharedServed {
  // Per consumer: (endpoint index, payload) in service order.
  std::vector<std::vector<std::pair<std::size_t, std::uint64_t>>> per;
  std::uint64_t events = 0;
  std::size_t depth_left = 0;
};

SharedServed run_shared(Backend b, int per_chan, int quota0) {
  constexpr int kChans = 2;
  const int total = kChans * per_chan;
  Machine m(config_for(b));
  ChannelFactory f(m, b);
  std::vector<std::unique_ptr<Channel>> chans;
  for (int c = 0; c < kChans; ++c)
    chans.push_back(f.make("sh" + std::to_string(c), 64));

  for (int c = 0; c < kChans; ++c) {
    spawn([](Channel& ch, SimThread t, int c, int per) -> Co<void> {
      for (int i = 0; i < per; ++i) {
        co_await t.compute(static_cast<Tick>(90 + 55 * c));
        co_await ch.send1(t, static_cast<std::uint64_t>(c) * 1000 + i);
      }
    }(*chans[static_cast<std::size_t>(c)],
      m.thread_on(static_cast<CoreId>(c)), c, per_chan));
  }

  // Two consumers, each with its own Selector over BOTH channels, draining
  // fixed quotas that sum to the total (how bsp barrier drains split
  // traffic: each knows exactly how many messages it owes).
  SharedServed out;
  out.per.resize(2);
  Selector sel0, sel1;
  for (auto& ch : chans) {
    sel0.add(*ch);
    sel1.add(*ch);
  }
  const int quotas[2] = {quota0, total - quota0};
  Selector* sels[2] = {&sel0, &sel1};
  for (int k = 0; k < 2; ++k) {
    spawn([](Selector& sel, SimThread t, int quota,
             std::vector<std::pair<std::size_t, std::uint64_t>>* log)
              -> Co<void> {
      for (int i = 0; i < quota; ++i) {
        const Selector::Item item = co_await sel.recv_any(t);
        log->emplace_back(item.index, item.msg.w[0]);
      }
    }(*sels[k], m.thread_on(static_cast<CoreId>(kChans + k)), quotas[k],
      &out.per[static_cast<std::size_t>(k)]));
  }
  m.run();
  out.events = m.eq().executed();
  for (auto& ch : chans) out.depth_left += ch->depth();
  return out;
}

class SharedSelector : public ::testing::TestWithParam<Backend> {};

TEST_P(SharedSelector, ExactlyOnceAcrossConsumersAndDrainsToEmpty) {
  const int per_chan = 40, quota0 = 55;  // uneven split of 80
  const SharedServed s = run_shared(GetParam(), per_chan, quota0);
  ASSERT_EQ(s.per[0].size(), 55u);
  ASSERT_EQ(s.per[1].size(), 25u);
  EXPECT_EQ(s.depth_left, 0u);  // drained to empty

  // Exactly-once across BOTH consumers: the union multiset is exactly the
  // produced set, and each consumer's view of one endpoint is in FIFO
  // order (a shared consumer may skip ahead, but never reorder or dup).
  std::vector<std::uint64_t> seen;
  for (const auto& log : s.per) {
    std::vector<std::uint64_t> next_floor(2, 0);
    for (const auto& [idx, v] : log) {
      ASSERT_LT(idx, 2u);
      const std::uint64_t seq = v % 1000;
      EXPECT_EQ(v / 1000, idx);
      EXPECT_GE(seq, next_floor[idx]);  // FIFO within this consumer's view
      next_floor[idx] = seq + 1;
      seen.push_back(v);
    }
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(2 * per_chan));
  for (int c = 0; c < 2; ++c)
    for (int i = 0; i < per_chan; ++i)
      EXPECT_EQ(seen[static_cast<std::size_t>(c * per_chan + i)],
                static_cast<std::uint64_t>(c) * 1000 +
                    static_cast<std::uint64_t>(i));
}

TEST_P(SharedSelector, ByteIdenticalAcrossRuns) {
  const SharedServed a = run_shared(GetParam(), 30, 35);
  const SharedServed b = run_shared(GetParam(), 30, 35);
  EXPECT_EQ(a.per, b.per);
  EXPECT_EQ(a.events, b.events);
}

INSTANTIATE_TEST_SUITE_P(
    SharedCapableBackends, SharedSelector,
    ::testing::Values(Backend::kBlfq, Backend::kZmq, Backend::kCaf),
    [](const auto& info) {
      switch (info.param) {
        case Backend::kBlfq: return "BLFQ";
        case Backend::kZmq: return "ZMQ";
        case Backend::kVl: return "VL";
        case Backend::kVlIdeal: return "VLideal";
        case Backend::kCaf: return "CAF";
      }
      return "?";
    });

// ZMQ exposes readiness futexes on every endpoint, so an idle selector is
// parked — it must cost ZERO events while blocked (the park_any property).
TEST(SelectorPark, IdleSelectorCostsNoEvents) {
  Machine m(config_for(Backend::kZmq));
  ChannelFactory f(m, Backend::kZmq);
  auto a = f.make("pa", 16);
  auto b = f.make("pb", 16);
  Selector sel;
  sel.add(*a);
  sel.add(*b);

  std::uint64_t got = 0;
  spawn([](Selector& sel, SimThread t, std::uint64_t* got) -> Co<void> {
    const Selector::Item item = co_await sel.recv_any(t);
    *got = item.msg.w[0];
  }(sel, m.thread_on(0), &got));
  // Let the selector probe everything once and park.
  m.run();
  const std::uint64_t idle_events = m.eq().executed();

  // A long quiet period passes; the parked selector must add nothing.
  spawn([](SimThread t) -> Co<void> {
    co_await t.compute(100000);
  }(m.thread_on(2)));
  m.run();
  const std::uint64_t after_quiet = m.eq().executed();
  EXPECT_LT(after_quiet - idle_events, 10u);

  // A publish on the second endpoint wakes it through the futex.
  spawn([](Channel& ch, SimThread t) -> Co<void> {
    co_await ch.send1(t, 4242);
  }(*b, m.thread_on(1)));
  m.run();
  EXPECT_EQ(got, 4242u);
}

}  // namespace
}  // namespace vl::squeue
