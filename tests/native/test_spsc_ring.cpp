#include "native/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace vl::native {
namespace {

TEST(SpscRing, FifoSingleThread) {
  SpscRing<int> r(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(9));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(*r.try_pop(), i);
  EXPECT_FALSE(r.try_pop().has_value());
}

TEST(SpscRing, InterleavedPushPop) {
  SpscRing<int> r(4);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(r.try_push(i));
    EXPECT_EQ(*r.try_pop(), i);
  }
}

TEST(SpscRing, TwoThreadStress) {
  constexpr std::uint64_t kN = 200000;
  SpscRing<std::uint64_t> r(64);
  std::uint64_t expect = 0;
  bool ok = true;

  std::thread consumer([&] {
    while (expect < kN) {
      if (auto v = r.try_pop()) {
        if (*v != expect) {
          ok = false;
          return;
        }
        ++expect;
      }
    }
  });
  for (std::uint64_t i = 0; i < kN; ++i)
    while (!r.try_push(i)) {
    }
  consumer.join();
  EXPECT_TRUE(ok);
  EXPECT_EQ(expect, kN);
}

}  // namespace
}  // namespace vl::native
