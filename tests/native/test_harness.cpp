#include "native/harness.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "native/lockhammer.hpp"

namespace vl::native {
namespace {

TEST(Lockhammer, ReportsPlausibleNumbers) {
  const auto r = run_lockhammer(LockKind::kCas, 2, 5000);
  EXPECT_EQ(r.threads, 2);
  EXPECT_EQ(r.total_ops, 10000u);
  EXPECT_GT(r.ns_per_op, 0.0);
  EXPECT_LT(r.ns_per_op, 1e7);  // sanity: < 10 ms per op
}

TEST(Lockhammer, AllKindsRun) {
  for (auto k : {LockKind::kCas, LockKind::kSpin, LockKind::kTicket}) {
    const auto r = run_lockhammer(k, 1, 2000);
    EXPECT_GT(r.ns_per_op, 0.0) << to_string(k);
  }
}

TEST(Harness, MpmcPushScalingRuns) {
  const auto r = mpmc_push_scaling(2, 20000);
  EXPECT_EQ(r.producers, 2);
  EXPECT_EQ(r.total_msgs, 40000u);
  EXPECT_GT(r.ns_per_push, 0.0);
}

TEST(Harness, LineTransferFloorPositive) {
  // The floor measurement ping-pongs a cache line between two spinning
  // threads; without at least two hardware contexts every handoff costs a
  // scheduler timeslice (~10 ms) and the number means nothing.
  if (std::thread::hardware_concurrency() < 2)
    GTEST_SKIP() << "needs >= 2 CPUs for a meaningful transfer floor";
  const double ns = line_transfer_floor_ns(20000);
  EXPECT_GT(ns, 0.0);
  EXPECT_LT(ns, 1e6);
}

TEST(Lockhammer, ToStringNames) {
  EXPECT_STREQ(to_string(LockKind::kCas), "cas_lock");
  EXPECT_STREQ(to_string(LockKind::kSpin), "spin_lock");
  EXPECT_STREQ(to_string(LockKind::kTicket), "ticket_lock");
}

}  // namespace
}  // namespace vl::native
