#include "native/locks.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

namespace vl::native {
namespace {

template <class Lock>
void exclusion_test() {
  Lock lock;
  std::uint64_t counter = 0;
  constexpr int kThreads = 4;
  // On a single hardware context every FIFO handoff (ticket/MCS) can cost
  // a scheduler timeslice while the next-in-line spins; keep the iteration
  // count small enough there that worst-case scheduling stays bounded.
  const std::uint64_t kPer =
      std::thread::hardware_concurrency() < 2 ? 2000 : 50000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPer; ++i) {
        std::lock_guard<Lock> g(lock);
        ++counter;  // data race unless the lock works
      }
    });
  }
  for (auto& t : pool) t.join();
  EXPECT_EQ(counter, kThreads * kPer);
}

TEST(CasLock, MutualExclusion) { exclusion_test<CasLock>(); }
TEST(SpinLock, MutualExclusion) { exclusion_test<SpinLock>(); }
TEST(TicketLock, MutualExclusion) { exclusion_test<TicketLock>(); }
TEST(McsLock, MutualExclusion) { exclusion_test<McsLock>(); }

TEST(McsLock, UncontendedLockUnlockCycles) {
  McsLock l;
  for (int i = 0; i < 1000; ++i) {
    l.lock();
    l.unlock();
  }
  // Reaching here without hanging proves the tail CAS handoff is sound
  // in the no-successor path.
  SUCCEED();
}

TEST(CasLock, TryLockSemantics) {
  CasLock l;
  EXPECT_TRUE(l.try_lock());
  EXPECT_FALSE(l.try_lock());
  l.unlock();
  EXPECT_TRUE(l.try_lock());
  l.unlock();
}

TEST(SpinLock, TryLockSemantics) {
  SpinLock l;
  EXPECT_TRUE(l.try_lock());
  EXPECT_FALSE(l.try_lock());
  l.unlock();
}

TEST(TicketLock, HandoffAcrossThreads) {
  TicketLock l;
  l.lock();
  std::thread t([&] { l.lock(); l.unlock(); });
  l.unlock();
  t.join();  // must not hang: ticket handoff works
}

}  // namespace
}  // namespace vl::native
