// EndpointRouter (software VLRD for host threads) tests: exactly-once
// delivery across M:N topologies, per-producer FIFO, back-pressure on the
// producer's private ring, and clean drain at shutdown.

#include "native/endpoint_router.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace vl::native {
namespace {

TEST(EndpointRouter, OneToOneDeliversInOrder) {
  EndpointRouter<std::uint64_t> r(64);
  auto& prod = r.add_producer();
  auto& cons = r.add_consumer();
  r.start();
  constexpr int kN = 500;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kN; ++i) prod.push(i);
  });
  std::vector<std::uint64_t> got;
  got.reserve(kN);
  for (int i = 0; i < kN; ++i) got.push_back(cons.pop());
  producer.join();
  r.stop();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kN));
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
  EXPECT_EQ(got.front(), 0u);
  EXPECT_EQ(got.back(), static_cast<std::uint64_t>(kN - 1));
}

TEST(EndpointRouter, ManyToManyExactlyOnce) {
  constexpr int kProds = 3, kCons = 2, kPer = 200;
  EndpointRouter<std::uint64_t> r(64);
  std::vector<EndpointRouter<std::uint64_t>::Producer*> prods;
  std::vector<EndpointRouter<std::uint64_t>::Consumer*> cons;
  for (int i = 0; i < kProds; ++i) prods.push_back(&r.add_producer());
  for (int i = 0; i < kCons; ++i) cons.push_back(&r.add_consumer());
  r.start();

  std::vector<std::thread> threads;
  for (int p = 0; p < kProds; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPer; ++i)
        prods[p]->push(static_cast<std::uint64_t>(p) * 100000 + i);
    });
  }
  std::vector<std::vector<std::uint64_t>> got(kCons);
  std::atomic<int> remaining{kProds * kPer};
  for (int c = 0; c < kCons; ++c) {
    threads.emplace_back([&, c] {
      // Consumers pull until the global count is exhausted; a consumer may
      // see more or fewer than total/kCons (router balances by occupancy).
      for (;;) {
        if (auto v = cons[c]->try_pop()) {
          got[c].push_back(*v);
          if (remaining.fetch_sub(1) == 1) return;
        } else if (remaining.load() <= 0) {
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  r.stop();

  std::vector<std::uint64_t> all;
  for (const auto& g : got) all.insert(all.end(), g.begin(), g.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kProds * kPer));
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  // Per-producer FIFO within each consumer's stream.
  for (const auto& g : got) {
    std::vector<std::uint64_t> last(kProds, 0);
    for (std::uint64_t v : g) {
      const auto p = static_cast<std::size_t>(v / 100000);
      EXPECT_GE(v, last[p]);
      last[p] = v;
    }
  }
}

TEST(EndpointRouter, BackPressureOnPrivateRing) {
  // Router not started: the producer's private ring must fill at exactly
  // its capacity and try_push must fail without blocking.
  EndpointRouter<int> r(8);
  auto& prod = r.add_producer();
  (void)r.add_consumer();
  int accepted = 0;
  while (prod.try_push(accepted)) ++accepted;
  EXPECT_EQ(accepted, 8);
}

TEST(EndpointRouter, DrainsEverythingOnStop) {
  EndpointRouter<int> r(128);
  auto& prod = r.add_producer();
  auto& cons = r.add_consumer();
  r.start();
  for (int i = 0; i < 100; ++i) prod.push(i);
  // Consume concurrently with shutdown: stop() must not lose messages.
  std::thread consumer([&] {
    for (int i = 0; i < 100; ++i) (void)cons.pop();
  });
  consumer.join();
  r.stop();
  EXPECT_EQ(r.routed(), 100u);
  EXPECT_FALSE(cons.try_pop().has_value());
}

TEST(EndpointRouter, RoutedCounterMatchesTraffic) {
  EndpointRouter<int> r(64);
  auto& p1 = r.add_producer();
  auto& p2 = r.add_producer();
  auto& cons = r.add_consumer();
  r.start();
  std::thread t1([&] {
    for (int i = 0; i < 50; ++i) p1.push(i);
  });
  std::thread t2([&] {
    for (int i = 0; i < 50; ++i) p2.push(i);
  });
  int got = 0;
  while (got < 100) {
    if (cons.try_pop()) ++got;
  }
  t1.join();
  t2.join();
  r.stop();
  EXPECT_EQ(r.routed(), 100u);
}

}  // namespace
}  // namespace vl::native
