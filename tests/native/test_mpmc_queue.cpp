#include "native/mpmc_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

namespace vl::native {
namespace {

TEST(MpmcQueue, SingleThreadFifo) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());  // empty
}

TEST(MpmcQueue, WrapsAroundManyLaps) {
  MpmcQueue<int> q(4);
  for (int lap = 0; lap < 100; ++lap) {
    for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push(lap * 4 + i));
    for (int i = 0; i < 4; ++i) EXPECT_EQ(*q.try_pop(), lap * 4 + i);
  }
}

TEST(MpmcQueue, SizeApprox) {
  MpmcQueue<int> q(16);
  EXPECT_EQ(q.size_approx(), 0u);
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.size_approx(), 2u);
  q.pop();
  EXPECT_EQ(q.size_approx(), 1u);
}

TEST(MpmcQueue, MovesOnlyTypes) {
  MpmcQueue<std::unique_ptr<int>> q(4);
  q.push(std::make_unique<int>(42));
  auto v = q.pop();
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, 42);
}

TEST(MpmcQueue, ConcurrentMpmcExactlyOnce) {
  constexpr int kProds = 4, kCons = 4;
  constexpr std::uint64_t kPer = 20000;
  MpmcQueue<std::uint64_t> q(1024);
  std::vector<std::vector<std::uint64_t>> got(kCons);
  std::vector<std::thread> threads;

  for (int c = 0; c < kCons; ++c) {
    threads.emplace_back([&, c] {
      auto& out = got[c];
      out.reserve(kPer * kProds / kCons);
      for (std::uint64_t i = 0; i < kPer * kProds / kCons; ++i)
        out.push_back(q.pop());
    });
  }
  for (int p = 0; p < kProds; ++p) {
    threads.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < kPer; ++i)
        q.push(static_cast<std::uint64_t>(p) * kPer + i);
    });
  }
  for (auto& t : threads) t.join();

  std::vector<std::uint64_t> all;
  for (auto& g : got) all.insert(all.end(), g.begin(), g.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<std::size_t>(kProds) * kPer);
  // Exactly the set {0 .. kProds*kPer-1}: nothing lost, nothing duplicated.
  for (std::uint64_t i = 0; i < all.size(); ++i) ASSERT_EQ(all[i], i);
}

TEST(MpmcQueue, PerProducerOrderPreserved) {
  constexpr std::uint64_t kPer = 50000;
  MpmcQueue<std::uint64_t> q(256);
  std::vector<std::uint64_t> got;
  got.reserve(2 * kPer);

  std::thread consumer([&] {
    for (std::uint64_t i = 0; i < 2 * kPer; ++i) got.push_back(q.pop());
  });
  std::thread p1([&] {
    for (std::uint64_t i = 0; i < kPer; ++i) q.push(i * 2);  // evens
  });
  std::thread p2([&] {
    for (std::uint64_t i = 0; i < kPer; ++i) q.push(i * 2 + 1);  // odds
  });
  p1.join();
  p2.join();
  consumer.join();

  std::uint64_t last_even = 0, last_odd = 0;
  bool first_even = true, first_odd = true;
  for (std::uint64_t v : got) {
    if (v % 2 == 0) {
      if (!first_even) ASSERT_GT(v, last_even);
      last_even = v;
      first_even = false;
    } else {
      if (!first_odd) ASSERT_GT(v, last_odd);
      last_odd = v;
      first_odd = false;
    }
  }
}

}  // namespace
}  // namespace vl::native
