#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace vl {
namespace {

TEST(StatSet, AddAndGet) {
  StatSet s;
  EXPECT_EQ(s.get("x"), 0u);
  s.add("x");
  s.add("x", 4);
  EXPECT_EQ(s.get("x"), 5u);
}

TEST(StatSet, DiffDropsNonPositive) {
  StatSet a, b;
  a.add("grew", 10);
  a.add("same", 3);
  b.add("grew", 4);
  b.add("same", 3);
  b.add("only_base", 7);
  StatSet d = a.diff(b);
  EXPECT_EQ(d.get("grew"), 6u);
  EXPECT_EQ(d.get("same"), 0u);
  EXPECT_EQ(d.get("only_base"), 0u);
}

TEST(StatSet, Merge) {
  StatSet a, b;
  a.add("x", 2);
  b.add("x", 3);
  b.add("y", 1);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 5u);
  EXPECT_EQ(a.get("y"), 1u);
}

TEST(Summary, WelfordMeanVariance) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.record(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.record(-1.0);
  h.record(0.0);
  h.record(9.999);
  h.record(10.0);
  h.record(5.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(5), 5.0);
}

TEST(Geomean, MatchesHandComputation) {
  EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
  EXPECT_EQ(geomean({}), 0.0);
}

}  // namespace
}  // namespace vl
