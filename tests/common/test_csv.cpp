// CsvWriter tests: RFC-4180 quoting rules, row-width enforcement, and the
// fluent row builder used by bench/run_matrix.

#include "common/csv.hpp"

#include <gtest/gtest.h>

namespace vl {
namespace {

TEST(Csv, HeaderAndPlainRows) {
  CsvWriter w({"a", "b"});
  w.row({"1", "2"});
  EXPECT_EQ(w.str(), "a,b\n1,2\n");
  EXPECT_EQ(w.rows_written(), 2u);
}

TEST(Csv, EscapeOnlyWhenNeeded) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("has,comma"), "\"has,comma\"");
  EXPECT_EQ(CsvWriter::escape("has\"quote"), "\"has\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("has\nnewline"), "\"has\nnewline\"");
  EXPECT_EQ(CsvWriter::escape(""), "");
}

TEST(Csv, QuotedCellsRoundTripInDocument) {
  CsvWriter w({"name", "note"});
  w.row({"x,y", "say \"hi\""});
  EXPECT_EQ(w.str(), "name,note\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(Csv, RowBuilderMixedTypes) {
  CsvWriter w({"s", "f", "u"});
  w.add().col(std::string("id")).col(3.14159, 2).col(std::uint64_t{42});
  EXPECT_EQ(w.str(), "s,f,u\nid,3.14,42\n");
}

TEST(Csv, BuilderWritesOnDestruction) {
  CsvWriter w({"only"});
  {
    auto r = w.add();
    r.col(std::string("deferred"));
    EXPECT_EQ(w.rows_written(), 1u);  // not yet flushed
  }
  EXPECT_EQ(w.rows_written(), 2u);
}

#ifndef NDEBUG
TEST(Csv, WidthMismatchAsserts) {
  CsvWriter w({"a", "b"});
  EXPECT_DEATH(w.row({"only-one"}), "width");
}
#endif

}  // namespace
}  // namespace vl
