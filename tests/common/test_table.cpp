#include "common/table.hpp"

#include <gtest/gtest.h>

namespace vl {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.25"});
  t.add_row({"b", "10"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
  // Numeric cells right-align: "10" should be preceded by spaces to match
  // the "value" column width.
  EXPECT_NE(out.find("  10"), std::string::npos);
}

TEST(TextTable, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(2.0949, 2), "2.09");
  EXPECT_EQ(TextTable::num(1.0, 0), "1");
}

TEST(TextTable, HandlesShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.render());
}

}  // namespace
}  // namespace vl
