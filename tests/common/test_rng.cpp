#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace vl {
namespace {

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Xoshiro, BelowRespectsBound) {
  Xoshiro256 r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(17), 17u);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Xoshiro, BelowCoversRange) {
  Xoshiro256 r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 r(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

}  // namespace
}  // namespace vl
