#include "mem/tag_store.hpp"

#include <gtest/gtest.h>

namespace vl::mem {
namespace {

TEST(TagStore, GeometryFromSizeAndAssoc) {
  TagStore t(32 * 1024, 2);  // paper L1: 32 KiB, 2-way
  EXPECT_EQ(t.num_sets(), 256u);
  EXPECT_EQ(t.assoc(), 2u);
  TagStore llc(1024 * 1024, 16);  // paper LLC: 1 MiB, 16-way
  EXPECT_EQ(llc.num_sets(), 1024u);
}

TEST(TagStore, FindMissesOnEmpty) {
  TagStore t(4096, 2);
  EXPECT_EQ(t.find(0x1000), nullptr);
}

TEST(TagStore, InsertAndFind) {
  TagStore t(4096, 2);
  TagEntry* v = t.victim(0x1000);
  v->line = 0x1000;
  v->state = Mesi::kExclusive;
  t.touch(*v);
  TagEntry* f = t.find(0x1000);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->state, Mesi::kExclusive);
}

TEST(TagStore, VictimPrefersInvalidWay) {
  TagStore t(4096, 2);  // 32 sets
  // Fill one way of set for line 0x0.
  TagEntry* a = t.victim(0x0);
  a->line = 0x0;
  a->state = Mesi::kModified;
  t.touch(*a);
  // Same set: line 32 sets * 64 B later.
  const Addr same_set = 32 * 64;
  TagEntry* b = t.victim(same_set);
  EXPECT_FALSE(b->valid());  // picked the empty way, not the valid one
}

TEST(TagStore, VictimEvictsLru) {
  TagStore t(4096, 2);
  const Addr s = 0x0, conflict1 = 32 * 64, conflict2 = 64 * 64;
  auto insert = [&](Addr line) {
    TagEntry* v = t.victim(line);
    v->line = line;
    v->state = Mesi::kShared;
    t.touch(*v);
  };
  insert(s);
  insert(conflict1);
  // Touch s so conflict1 is LRU.
  t.touch(*t.find(s));
  TagEntry* v = t.victim(conflict2);
  EXPECT_EQ(v->line, conflict1);
}

TEST(TagStore, ForEachValidVisitsAll) {
  TagStore t(4096, 2);
  for (Addr a = 0; a < 10 * 64; a += 64) {
    TagEntry* v = t.victim(a);
    v->line = a;
    v->state = Mesi::kShared;
    t.touch(*v);
  }
  int n = 0;
  t.for_each_valid([&](TagEntry&) { ++n; });
  EXPECT_EQ(n, 10);
}

TEST(TagStore, MesiToString) {
  EXPECT_STREQ(to_string(Mesi::kInvalid), "I");
  EXPECT_STREQ(to_string(Mesi::kShared), "S");
  EXPECT_STREQ(to_string(Mesi::kExclusive), "E");
  EXPECT_STREQ(to_string(Mesi::kModified), "M");
}

}  // namespace
}  // namespace vl::mem
