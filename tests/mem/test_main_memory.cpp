#include "mem/main_memory.hpp"

#include <gtest/gtest.h>

namespace vl::mem {
namespace {

TEST(MainMemory, FreshLinesReadZero) {
  MainMemory m;
  EXPECT_EQ(m.read(0x1234, 8), 0u);
  EXPECT_EQ(m.resident_lines(), 0u);  // reads don't allocate
}

TEST(MainMemory, ScalarRoundTrip) {
  MainMemory m;
  m.write(0x100, 0xa5, 1);
  m.write(0x108, 0xbeef, 2);
  m.write(0x110, 0x12345678, 4);
  m.write(0x118, 0xdeadbeefcafebabe, 8);
  EXPECT_EQ(m.read(0x100, 1), 0xa5u);
  EXPECT_EQ(m.read(0x108, 2), 0xbeefu);
  EXPECT_EQ(m.read(0x110, 4), 0x12345678u);
  EXPECT_EQ(m.read(0x118, 8), 0xdeadbeefcafebabeull);
}

TEST(MainMemory, WritesWithinOneLineShareStorage) {
  MainMemory m;
  m.write(0x200, 0xff, 1);
  m.write(0x23f, 0xee, 1);  // last byte of same line
  EXPECT_EQ(m.resident_lines(), 1u);
}

TEST(MainMemory, LineRoundTrip) {
  MainMemory m;
  Line in{}, out{};
  for (int i = 0; i < 64; ++i) in[i] = static_cast<std::uint8_t>(255 - i);
  m.write_line(0x310, in.data());  // unaligned addr maps to its line
  m.read_line(0x300, out.data());
  EXPECT_EQ(in, out);
}

TEST(MainMemory, ZeroLineClears) {
  MainMemory m;
  m.write(0x400, 0xffffffffffffffff, 8);
  m.zero_line(0x400);
  EXPECT_EQ(m.read(0x400, 8), 0u);
}

TEST(MainMemory, SmallWriteDoesNotClobberNeighbors) {
  MainMemory m;
  m.write(0x500, 0x1111111111111111, 8);
  m.write(0x502, 0xab, 1);
  EXPECT_EQ(m.read(0x500, 8), 0x11111111'11ab1111ull);
}

}  // namespace
}  // namespace vl::mem
