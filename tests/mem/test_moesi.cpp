// MOESI protocol-variant tests (ablation, CacheConfig::protocol): the
// Owned state must absorb the LLC writeback MESI pays whenever a dirty
// line is read by another core, keep sourcing subsequent readers, and
// still hand ownership over cleanly on writes and evictions.

#include <gtest/gtest.h>

#include "mem/hierarchy.hpp"
#include "sim/core.hpp"

namespace vl::mem {
namespace {

using sim::Co;
using sim::EventQueue;
using sim::SimThread;
using sim::spawn;

struct MoesiFixture : ::testing::Test {
  EventQueue eq;
  sim::CacheConfig ccfg;
  std::unique_ptr<Hierarchy> hier;
  sim::CoreConfig ccore;
  std::vector<std::unique_ptr<sim::Core>> cores;
  std::vector<SimThread> threads;

  void build(sim::Protocol proto) {
    ccfg.protocol = proto;
    hier = std::make_unique<Hierarchy>(eq, 4, ccfg);
    for (CoreId i = 0; i < 4; ++i) {
      cores.push_back(std::make_unique<sim::Core>(eq, i, *hier, ccore));
      threads.push_back(cores.back()->make_thread());
    }
  }
};

TEST_F(MoesiFixture, ReadSnoopOfModifiedYieldsOwnedNotWriteback) {
  build(sim::Protocol::kMoesi);
  spawn([](SimThread w, SimThread r) -> Co<void> {
    co_await w.store(0x1000, 7, 8);  // core 0: M
    co_await r.load(0x1000, 8);      // core 1 reads: 0 -> O, 1 -> S
  }(threads[0], threads[1]));
  eq.run();
  EXPECT_EQ(hier->l1_state(0, 0x1000), Mesi::kOwned);
  EXPECT_EQ(hier->l1_state(1, 0x1000), Mesi::kShared);
  EXPECT_EQ(hier->stats().writebacks, 0u);       // the MOESI saving
  EXPECT_EQ(hier->stats().c2c_transfers, 1u);
}

TEST_F(MoesiFixture, MesiBaselinePaysTheWriteback) {
  build(sim::Protocol::kMesi);
  spawn([](SimThread w, SimThread r) -> Co<void> {
    co_await w.store(0x1000, 7, 8);
    co_await r.load(0x1000, 8);
  }(threads[0], threads[1]));
  eq.run();
  EXPECT_EQ(hier->l1_state(0, 0x1000), Mesi::kShared);  // M -> S
  EXPECT_EQ(hier->stats().writebacks, 1u);
  EXPECT_EQ(hier->stats().c2c_transfers, 1u);
}

TEST_F(MoesiFixture, OwnerKeepsSourcingLaterReaders) {
  build(sim::Protocol::kMoesi);
  // The initial store write-allocates through the LLC (one unavoidable
  // DRAM fetch), so measure the sharing chain against a post-store
  // baseline: sourcing readers from the owner must need no memory at all.
  spawn([](SimThread w) -> Co<void> {
    co_await w.store(0x1000, 7, 8);
  }(threads[0]));
  eq.run();
  const MemStats base = hier->stats();
  spawn([](SimThread r1, SimThread r2) -> Co<void> {
    co_await r1.load(0x1000, 8);
    co_await r2.load(0x1000, 8);  // owner (still O) sources again
  }(threads[1], threads[2]));
  eq.run();
  const MemStats d = hier->stats().diff(base);
  EXPECT_EQ(hier->l1_state(0, 0x1000), Mesi::kOwned);
  EXPECT_EQ(hier->l1_state(2, 0x1000), Mesi::kShared);
  EXPECT_EQ(d.c2c_transfers, 2u);
  EXPECT_EQ(d.writebacks, 0u);
  EXPECT_EQ(d.dram_reads, 0u);  // never needed memory
}

TEST_F(MoesiFixture, WriteInvalidatesOwnerAndSharers) {
  build(sim::Protocol::kMoesi);
  spawn([](SimThread w, SimThread r, SimThread x) -> Co<void> {
    co_await w.store(0x1000, 7, 8);   // 0: M
    co_await r.load(0x1000, 8);       // 0: O, 1: S
    co_await x.store(0x1000, 9, 8);   // 2 RFOs: all others I
  }(threads[0], threads[1], threads[2]));
  eq.run();
  EXPECT_EQ(hier->l1_state(0, 0x1000), Mesi::kInvalid);
  EXPECT_EQ(hier->l1_state(1, 0x1000), Mesi::kInvalid);
  EXPECT_EQ(hier->l1_state(2, 0x1000), Mesi::kModified);
  EXPECT_GE(hier->stats().invalidations, 2u);
}

TEST_F(MoesiFixture, OwnedUpgradeOnOwnWrite) {
  build(sim::Protocol::kMoesi);
  spawn([](SimThread w, SimThread r) -> Co<void> {
    co_await w.store(0x1000, 7, 8);
    co_await r.load(0x1000, 8);      // 0: O, 1: S
    co_await w.store(0x1000, 8, 8);  // owner writes again: O -> M, 1 inval
  }(threads[0], threads[1]));
  eq.run();
  EXPECT_EQ(hier->l1_state(0, 0x1000), Mesi::kModified);
  EXPECT_EQ(hier->l1_state(1, 0x1000), Mesi::kInvalid);
  EXPECT_GE(hier->stats().upgrades, 1u);
}

TEST_F(MoesiFixture, EvictedOwnerWritesBack) {
  build(sim::Protocol::kMoesi);
  // Make line X Owned on core 0, then stream enough conflicting lines
  // through core 0's L1 set to evict it: the eviction must write back.
  spawn([](SimThread w, SimThread r) -> Co<void> {
    co_await w.store(0x1000, 7, 8);
    co_await r.load(0x1000, 8);  // 0: O
    // L1 is 32 KiB 2-way => 256 sets x 64 B; stride 16 KiB maps to the
    // same set. Two fills evict the LRU way.
    co_await w.load(0x1000 + 16 * 1024, 8);
    co_await w.load(0x1000 + 32 * 1024, 8);
    co_await w.load(0x1000 + 48 * 1024, 8);
  }(threads[0], threads[1]));
  eq.run();
  EXPECT_EQ(hier->l1_state(0, 0x1000), Mesi::kInvalid);  // evicted
  EXPECT_GE(hier->stats().writebacks, 1u);               // dirty data saved
}

TEST_F(MoesiFixture, ProducerConsumerTrafficCheaperUnderMoesi) {
  // The ablation's point in miniature: a producer repeatedly writes a line
  // a consumer repeatedly reads. MESI pays a writeback per handoff; MOESI
  // pays none (until eviction).
  auto run_proto = [](sim::Protocol proto) {
    EventQueue eq;
    sim::CacheConfig ccfg;
    ccfg.protocol = proto;
    Hierarchy hier(eq, 2, ccfg);
    sim::CoreConfig ccore;
    sim::Core c0(eq, 0, hier, ccore), c1(eq, 1, hier, ccore);
    spawn([](SimThread w, SimThread r) -> Co<void> {
      for (int i = 0; i < 20; ++i) {
        co_await w.store(0x2000, static_cast<std::uint64_t>(i), 8);
        (void)co_await r.load(0x2000, 8);
      }
    }(c0.make_thread(), c1.make_thread()));
    eq.run();
    return hier.stats().writebacks;
  };
  EXPECT_EQ(run_proto(sim::Protocol::kMoesi), 0u);
  EXPECT_GE(run_proto(sim::Protocol::kMesi), 20u);
}

}  // namespace
}  // namespace vl::mem
