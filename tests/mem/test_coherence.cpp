// Coherence-protocol behaviour tests, including the Fig. 3 scenario from the
// paper: a single "lock" line bouncing between three cores under atomic
// updates, driving invalidate traffic proportional to the number of sharers.

#include <gtest/gtest.h>

#include "mem/hierarchy.hpp"
#include "sim/core.hpp"

namespace vl::mem {
namespace {

using sim::Co;
using sim::EventQueue;
using sim::SimThread;
using sim::spawn;

struct CohFixture : ::testing::Test {
  EventQueue eq;
  sim::CacheConfig ccfg;
  Hierarchy hier{eq, 4, ccfg};
  sim::CoreConfig ccore;
  std::vector<std::unique_ptr<sim::Core>> cores;
  std::vector<SimThread> threads;

  void SetUp() override {
    for (CoreId i = 0; i < 4; ++i) {
      cores.push_back(std::make_unique<sim::Core>(eq, i, hier, ccore));
      threads.push_back(cores.back()->make_thread());
    }
  }
};

TEST_F(CohFixture, FirstLoadFillsExclusive) {
  spawn([](SimThread t) -> Co<void> { co_await t.load(0x1000, 8); }(threads[0]));
  eq.run();
  EXPECT_EQ(hier.l1_state(0, 0x1000), Mesi::kExclusive);
  EXPECT_EQ(hier.stats().l1_misses, 1u);
}

TEST_F(CohFixture, SecondReaderDemotesToShared) {
  spawn([](SimThread a, SimThread b) -> Co<void> {
    co_await a.load(0x1000, 8);
    co_await b.load(0x1000, 8);
  }(threads[0], threads[1]));
  eq.run();
  EXPECT_EQ(hier.l1_state(0, 0x1000), Mesi::kShared);
  EXPECT_EQ(hier.l1_state(1, 0x1000), Mesi::kShared);
}

TEST_F(CohFixture, StoreMissGoesModifiedAndInvalidatesSharers) {
  spawn([](SimThread a, SimThread b, SimThread c) -> Co<void> {
    co_await a.load(0x1000, 8);
    co_await b.load(0x1000, 8);
    co_await c.store(0x1000, 1, 8);
  }(threads[0], threads[1], threads[2]));
  eq.run();
  EXPECT_EQ(hier.l1_state(2, 0x1000), Mesi::kModified);
  EXPECT_EQ(hier.l1_state(0, 0x1000), Mesi::kInvalid);
  EXPECT_EQ(hier.l1_state(1, 0x1000), Mesi::kInvalid);
  EXPECT_EQ(hier.stats().invalidations, 2u);
}

TEST_F(CohFixture, UpgradeFromSharedCountsAsUpgrade) {
  spawn([](SimThread a, SimThread b) -> Co<void> {
    co_await a.load(0x1000, 8);
    co_await b.load(0x1000, 8);   // both Shared now
    co_await a.store(0x1000, 7, 8);  // S->M upgrade
  }(threads[0], threads[1]));
  eq.run();
  EXPECT_EQ(hier.stats().upgrades, 1u);
  EXPECT_EQ(hier.stats().invalidations, 1u);
  EXPECT_EQ(hier.l1_state(0, 0x1000), Mesi::kModified);
}

TEST_F(CohFixture, SilentExclusiveToModified) {
  spawn([](SimThread a) -> Co<void> {
    co_await a.load(0x1000, 8);      // E
    co_await a.store(0x1000, 7, 8);  // silent E->M
  }(threads[0]));
  eq.run();
  EXPECT_EQ(hier.stats().upgrades, 0u);
  EXPECT_EQ(hier.stats().snoops, 1u);  // only the initial fill
}

TEST_F(CohFixture, DirtyLineSourcedCacheToCache) {
  spawn([](SimThread a, SimThread b) -> Co<void> {
    co_await a.store(0x1000, 5, 8);  // M in core 0
    co_await b.load(0x1000, 8);      // must come from core 0
  }(threads[0], threads[1]));
  eq.run();
  EXPECT_EQ(hier.stats().c2c_transfers, 1u);
  EXPECT_EQ(hier.l1_state(0, 0x1000), Mesi::kShared);
  EXPECT_EQ(hier.l1_state(1, 0x1000), Mesi::kShared);
}

// The Fig. 3 scenario: a lock word hammered by 3 cores. Invalidation count
// must scale with the number of contenders, which is the paper's core
// motivation for removing shared state from the queue fast path.
TEST_F(CohFixture, LockLineBouncePropagatesInvalidations) {
  auto hammer = [](SimThread t, int rounds) -> Co<void> {
    for (int i = 0; i < rounds; ++i) {
      std::uint64_t cur = co_await t.load(0x2000, 8);
      co_await t.cas64(0x2000, cur, cur + 1);
    }
  };
  for (int c = 0; c < 3; ++c) spawn(hammer(threads[c], 20));
  eq.run();
  const auto& st = hier.stats();
  EXPECT_GT(st.invalidations, 20u);
  EXPECT_GT(st.snoops, 40u);
}

TEST_F(CohFixture, MoreSharersMeansMoreInvalidations) {
  // Sweep 2 vs 4 contending cores on separate lines; the 4-core line must
  // see strictly more invalidations. (Empirical Fig. 4 trend.)
  auto run_contenders = [&](int n, Addr addr) {
    EventQueue eq2;
    Hierarchy h2(eq2, 4, ccfg);
    std::vector<std::unique_ptr<sim::Core>> cs;
    for (CoreId i = 0; i < 4; ++i)
      cs.push_back(std::make_unique<sim::Core>(eq2, i, h2, ccore));
    auto hammer = [](SimThread t, Addr a) -> Co<void> {
      for (int i = 0; i < 25; ++i) co_await t.fetch_add64(a, 1);
    };
    for (int i = 0; i < n; ++i) spawn(hammer(cs[i]->make_thread(), addr));
    eq2.run();
    return h2.stats().invalidations;
  };
  EXPECT_GT(run_contenders(4, 0x3000), run_contenders(2, 0x3000));
}

TEST_F(CohFixture, CapacityEvictionWritesBack) {
  // Write more distinct lines than L1 capacity; dirty victims must write
  // back and eventually spill to DRAM traffic via LLC pressure.
  spawn([](SimThread t) -> Co<void> {
    // 32 KiB L1 = 512 lines; touch 4x that.
    for (Addr i = 0; i < 2048; ++i)
      co_await t.store(0x100000 + i * kLineSize, i, 8);
  }(threads[0]));
  eq.run();
  EXPECT_GT(hier.stats().writebacks, 0u);
}

TEST_F(CohFixture, WorkingSetBeyondLlcHitsDram) {
  spawn([](SimThread t) -> Co<void> {
    // 1 MiB LLC = 16384 lines; stream 3x that read-only.
    for (Addr i = 0; i < 3 * 16384; ++i)
      co_await t.load(0x10000000 + i * kLineSize, 8);
  }(threads[0]));
  eq.run();
  EXPECT_GT(hier.stats().dram_reads, 16384u);
}

TEST_F(CohFixture, InjectRequiresPushableFlag) {
  Line data{};
  data[0] = 0x42;
  // Not resident at all -> reject.
  EXPECT_FALSE(hier.inject(1, 0x4000, data.data()));
  EXPECT_EQ(hier.stats().inject_rejects, 1u);

  spawn([](SimThread t) -> Co<void> { co_await t.load(0x4000, 8); }(threads[1]));
  eq.run();
  // Resident but pushable unset -> reject.
  EXPECT_FALSE(hier.inject(1, 0x4000, data.data()));

  ASSERT_TRUE(hier.set_pushable(1, 0x4000, true));
  EXPECT_TRUE(hier.inject(1, 0x4000, data.data()));
  EXPECT_EQ(hier.backing().read(0x4000, 1), 0x42u);
  EXPECT_EQ(hier.l1_state(1, 0x4000), Mesi::kExclusive);
  // Pushable is one-shot.
  EXPECT_FALSE(hier.l1_pushable(1, 0x4000));
  EXPECT_FALSE(hier.inject(1, 0x4000, data.data()));
}

TEST_F(CohFixture, ClearPushableDropsAllFlags) {
  spawn([](SimThread t) -> Co<void> {
    co_await t.load(0x5000, 8);
    co_await t.load(0x5040, 8);
  }(threads[0]));
  eq.run();
  hier.set_pushable(0, 0x5000, true);
  hier.set_pushable(0, 0x5040, true);
  hier.clear_pushable(0);
  EXPECT_FALSE(hier.l1_pushable(0, 0x5000));
  EXPECT_FALSE(hier.l1_pushable(0, 0x5040));
}

TEST_F(CohFixture, SelectLineGrantsExclusive) {
  const Tick lat = hier.select_line(0, 0x6000);
  EXPECT_GT(lat, 0u);
  EXPECT_EQ(hier.l1_state(0, 0x6000), Mesi::kModified);  // store-class fill
}

TEST_F(CohFixture, ZeroAndExclusiveAfterPush) {
  spawn([](SimThread t) -> Co<void> {
    co_await t.store(0x7000, 0xff, 8);
  }(threads[0]));
  eq.run();
  hier.zero_and_exclusive(0, 0x7000);
  EXPECT_EQ(hier.backing().read(0x7000, 8), 0u);
  EXPECT_EQ(hier.l1_state(0, 0x7000), Mesi::kExclusive);
}

TEST_F(CohFixture, InvalidationClearsPushable) {
  spawn([](SimThread a) -> Co<void> { co_await a.load(0x8000, 8); }(threads[0]));
  eq.run();
  hier.set_pushable(0, 0x8000, true);
  // Another core takes the line exclusively; the pushable bit must drop so
  // a stale injection cannot land (§ III-B eviction rule).
  spawn([](SimThread b) -> Co<void> { co_await b.store(0x8000, 1, 8); }(threads[1]));
  eq.run();
  EXPECT_FALSE(hier.l1_pushable(0, 0x8000));
}

TEST_F(CohFixture, TraceHookSeesTransitions) {
  std::vector<std::string> events;
  hier.set_trace([&](Tick, CoreId c, Addr, const char* what) {
    events.push_back(std::to_string(c) + ":" + what);
  });
  spawn([](SimThread a, SimThread b) -> Co<void> {
    co_await a.load(0x9000, 8);
    co_await b.store(0x9000, 1, 8);
  }(threads[0], threads[1]));
  eq.run();
  // Expect a fill on core 0, then invalidation of core 0 + fill M on core 1.
  bool saw_fill0 = false, saw_inval0 = false, saw_fillM1 = false;
  for (const auto& e : events) {
    if (e == "0:fill E") saw_fill0 = true;
    if (e == "0:inval") saw_inval0 = true;
    if (e == "1:fill M") saw_fillM1 = true;
  }
  EXPECT_TRUE(saw_fill0);
  EXPECT_TRUE(saw_inval0);
  EXPECT_TRUE(saw_fillM1);
}

}  // namespace
}  // namespace vl::mem
